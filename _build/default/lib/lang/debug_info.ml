type location = Frame of int | Static of int

type variable = {
  var_name : string;
  size : int;
  location : location;
  is_param : bool;
  is_array : bool;
  is_static : bool;
}

type func = { id : int; name : string; vars : variable list }

type global = { g_name : string; g_addr : int; g_size : int; g_is_array : bool }

type t = {
  functions : func array;
  globals : global list;
  data_end : int;
  init_words : (int * int) list;
}

let find_func t id =
  if id < 0 || id >= Array.length t.functions then
    invalid_arg (Printf.sprintf "Debug_info.find_func: unknown function id %d" id);
  t.functions.(id)

let func_by_name t name = Array.find_opt (fun f -> f.name = name) t.functions

let global_by_name t name = List.find_opt (fun g -> g.g_name = name) t.globals

let pp_location ppf = function
  | Frame off -> Format.fprintf ppf "fp%+d" off
  | Static addr -> Format.fprintf ppf "0x%x" addr

let pp ppf t =
  Format.fprintf ppf "globals:@\n";
  List.iter
    (fun g -> Format.fprintf ppf "  %s: 0x%x (%d bytes)@\n" g.g_name g.g_addr g.g_size)
    t.globals;
  Array.iter
    (fun f ->
      Format.fprintf ppf "function %s (id %d):@\n" f.name f.id;
      List.iter
        (fun v ->
          Format.fprintf ppf "  %s: %a (%d bytes)%s%s@\n" v.var_name pp_location
            v.location v.size
            (if v.is_param then " param" else "")
            (if v.is_static then " static" else ""))
        f.vars)
    t.functions
