lib/util/text_table.ml: List String
