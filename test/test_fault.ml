(* Tests for the fault-injection harness (Ebp_util.Fault) and the
   corruption hardening it exercises: CRC-32 sealing of trace-cache
   entries, detection of arbitrary bit flips and truncations, quarantine
   semantics, store retries, and the cache-directory integrity scan. *)

module Fault = Ebp_util.Fault
module Crc32 = Ebp_util.Crc32
module Interval = Ebp_util.Interval
module Object_desc = Ebp_trace.Object_desc
module Trace = Ebp_trace.Trace
module Write_index = Ebp_trace.Write_index
module Trace_cache = Ebp_trace.Trace_cache

let iv lo hi = Interval.make ~lo ~hi

(* Every test leaves the global fault registry disabled. *)
let with_rules ?seed rules f =
  Fault.configure ?seed rules;
  Fun.protect ~finally:Fault.reset f

let rule pattern trigger action = { Fault.pattern; trigger; action }

(* --- Crc32 --- *)

let test_crc32_known_values () =
  Alcotest.(check int) "empty" 0 (Crc32.string "");
  (* The standard CRC-32 check value. *)
  Alcotest.(check int) "123456789" 0xCBF43926 (Crc32.string "123456789");
  Alcotest.(check int) "sub window agrees" (Crc32.string "456")
    (Crc32.sub "123456789" ~pos:3 ~len:3);
  Alcotest.check_raises "bad window" (Invalid_argument "Crc32.sub") (fun () ->
      ignore (Crc32.sub "abc" ~pos:2 ~len:2))

let test_crc32_sensitivity () =
  let base = Crc32.string "the quick brown fox" in
  Alcotest.(check bool) "one-byte change detected" false
    (base = Crc32.string "the quick brown foy");
  Alcotest.(check bool) "truncation detected" false
    (base = Crc32.string "the quick brown fo")

(* --- Fault primitives --- *)

let test_fault_disabled_is_noop () =
  let p = Fault.point "t.disabled" in
  Fault.reset ();
  Alcotest.(check bool) "inactive" false (Fault.active ());
  Alcotest.(check bool) "no action" true (Fault.fires p = None);
  Fault.check p;
  Alcotest.(check string) "mangle passes through" "data" (Fault.mangle p "data")

let test_fault_nth_fires_exactly_once () =
  let p = Fault.point "t.nth" in
  with_rules [ rule "t.nth" (Fault.Nth 2) Fault.Fail ] (fun () ->
      Fault.check p;
      Alcotest.check_raises "second evaluation fires"
        (Fault.Injected "t.nth") (fun () -> Fault.check p);
      Fault.check p)

let test_fault_glob_patterns () =
  let inside = Fault.point "t.glob.inner" in
  let outside = Fault.point "t.other" in
  with_rules [ rule "t.glob.*" Fault.Always Fault.Fail ] (fun () ->
      Alcotest.(check bool) "prefix glob matches" true
        (Fault.fires inside <> None);
      Alcotest.(check bool) "non-matching point untouched" true
        (Fault.fires outside = None));
  with_rules [ rule "*" Fault.Always Fault.Fail ] (fun () ->
      Alcotest.(check bool) "bare star matches everything" true
        (Fault.fires outside <> None))

let test_fault_probability_deterministic () =
  let p = Fault.point "t.prob" in
  let count () =
    let n = ref 0 in
    for _ = 1 to 200 do
      if Fault.fires p <> None then incr n
    done;
    !n
  in
  let a =
    with_rules ~seed:11 [ rule "t.prob" (Fault.Probability 0.5) Fault.Fail ] count
  in
  let b =
    with_rules ~seed:11 [ rule "t.prob" (Fault.Probability 0.5) Fault.Fail ] count
  in
  Alcotest.(check int) "same seed, same firings" a b;
  Alcotest.(check bool) "roughly half fire" true (a > 50 && a < 150)

let test_fault_mangle_bitflip () =
  let p = Fault.point "t.flip" in
  with_rules [ rule "t.flip" Fault.Always Fault.Bit_flip ] (fun () ->
      let data = "hello, fault world" in
      let mangled = Fault.mangle p data in
      Alcotest.(check int) "length preserved" (String.length data)
        (String.length mangled);
      let flipped_bits = ref 0 in
      String.iteri
        (fun i c ->
          let x = Char.code c lxor Char.code mangled.[i] in
          for b = 0 to 7 do
            if x land (1 lsl b) <> 0 then incr flipped_bits
          done)
        data;
      Alcotest.(check int) "exactly one bit flipped" 1 !flipped_bits)

let test_fault_mangle_truncate () =
  let p = Fault.point "t.trunc" in
  with_rules [ rule "t.trunc" Fault.Always Fault.Truncate ] (fun () ->
      let data = "0123456789abcdef" in
      let mangled = Fault.mangle p data in
      Alcotest.(check bool) "strictly shorter" true
        (String.length mangled < String.length data);
      Alcotest.(check string) "is a prefix"
        (String.sub data 0 (String.length mangled))
        mangled)

let test_fault_kill_raises_killed () =
  let p = Fault.point "t.kill" in
  with_rules [ rule "t.kill" Fault.Always Fault.Kill ] (fun () ->
      Alcotest.check_raises "check raises Killed" (Fault.Killed "t.kill")
        (fun () -> Fault.check p);
      Alcotest.check_raises "mangle raises Killed" (Fault.Killed "t.kill")
        (fun () -> ignore (Fault.mangle p "data")))

let test_fault_configure_rebinds_and_resets () =
  let p = Fault.point "t.rebind" in
  with_rules [ rule "t.rebind" (Fault.Nth 1) Fault.Fail ] (fun () ->
      Alcotest.check_raises "first eval fires" (Fault.Injected "t.rebind")
        (fun () -> Fault.check p);
      (* Reconfiguring resets evaluation counts: Nth 1 fires again. *)
      Fault.configure [ rule "t.rebind" (Fault.Nth 1) Fault.Fail ];
      Alcotest.check_raises "fires again after reconfigure"
        (Fault.Injected "t.rebind") (fun () -> Fault.check p));
  Alcotest.(check bool) "reset disables" false (Fault.active ())

(* --- spec parsing --- *)

let test_spec_parsing () =
  (match Fault.parse_spec "seed=5; trace_cache.*:p=0.25:bitflip, loader.run:nth=3:kill" with
  | Error msg -> Alcotest.fail msg
  | Ok (seed, rules) ->
      Alcotest.(check int) "seed" 5 seed;
      Alcotest.(check int) "two rules" 2 (List.length rules);
      match rules with
      | [ a; b ] ->
          Alcotest.(check string) "first pattern" "trace_cache.*" a.Fault.pattern;
          Alcotest.(check bool) "first trigger" true
            (a.Fault.trigger = Fault.Probability 0.25);
          Alcotest.(check bool) "first action" true (a.Fault.action = Fault.Bit_flip);
          Alcotest.(check bool) "second rule" true
            (b.Fault.trigger = Fault.Nth 3 && b.Fault.action = Fault.Kill)
      | _ -> Alcotest.fail "rule shape");
  (match Fault.parse_spec "a:always:fail" with
  | Ok (0, [ r ]) ->
      Alcotest.(check bool) "always/fail" true
        (r.Fault.trigger = Fault.Always && r.Fault.action = Fault.Fail)
  | _ -> Alcotest.fail "single clause");
  List.iter
    (fun bad ->
      match Fault.parse_spec bad with
      | Ok _ -> Alcotest.failf "accepted bad spec %S" bad
      | Error _ -> ())
    [
      "nonsense"; "a:b"; "a:nth=0:fail"; "a:nth=x:fail"; "a:p=2:fail";
      "a:p=x:fail"; "a:always:explode"; "seed=abc"; "a:b:c:d";
    ]

(* --- sealed cache entries --- *)

let small_trace () =
  let b = Trace.Builder.create () in
  let g = Object_desc.Global { var = "g" } in
  let h = Object_desc.Heap { context = [ "main" ]; seq = 1 } in
  Trace.Builder.add_install b g (iv 100 103);
  for i = 0 to 19 do
    Trace.Builder.add_write b (iv (100 + (4 * (i mod 3))) (103 + (4 * (i mod 3)))) ~pc:i
  done;
  Trace.Builder.add_install b h (iv 4096 4127);
  Trace.Builder.add_write b (iv 4100 4103) ~pc:77;
  Trace.Builder.add_remove b h (iv 4096 4127);
  Trace.Builder.add_remove b g (iv 100 103);
  Trace.Builder.finish b

let with_temp_cache_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ebp-fault-test-%d-%d" (Unix.getpid ())
         (Random.int 100000))
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let store_exn ~dir ~key trace =
  match Trace_cache.store ~dir ~key trace with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("store: " ^ msg)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_raw path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

(* Any single bit flip anywhere in a stored entry — header, meta, payload,
   or trailer — must read as a miss (CRC-32 detects all single-bit
   errors), never as a decode of different events. [lookup_decoded] is
   the tier the seal guards; the full [lookup] would mask the damage by
   serving the intact columnar sidecar, which is the point of the
   sidecar (see the corrupt-sidecar cases in test_parallel.ml). *)
let test_every_bitflip_detected () =
  with_temp_cache_dir (fun dir ->
      let key = Trace_cache.make_key ~name:"flip" ~source:"s" ~seed:1 () in
      store_exn ~dir ~key (small_trace ());
      let path = Filename.concat dir (key ^ ".trace") in
      let original = read_file path in
      let len = String.length original in
      let step = max 1 (len / 96) in
      let i = ref 0 in
      while !i < len do
        let bit = !i mod 8 in
        let b = Bytes.of_string original in
        Bytes.set b !i
          (Char.chr (Char.code (Bytes.get b !i) lxor (1 lsl bit)));
        write_raw path (Bytes.unsafe_to_string b);
        (match Trace_cache.lookup_decoded ~dir ~key with
        | None -> ()
        | Some _ -> Alcotest.failf "flip at byte %d/%d not detected" !i len);
        (* The corrupt file was quarantined; restore the entry. *)
        let corpse = path ^ ".corrupt" in
        if Sys.file_exists corpse then Sys.remove corpse;
        write_raw path original;
        i := !i + step
      done;
      Alcotest.(check bool) "pristine entry still hits" true
        (Trace_cache.lookup_decoded ~dir ~key <> None))

let test_every_truncation_detected () =
  with_temp_cache_dir (fun dir ->
      let key = Trace_cache.make_key ~name:"cut" ~source:"s" ~seed:2 () in
      store_exn ~dir ~key (small_trace ());
      let path = Filename.concat dir (key ^ ".trace") in
      let original = read_file path in
      let len = String.length original in
      let step = max 1 (len / 64) in
      let cut = ref 0 in
      while !cut < len do
        write_raw path (String.sub original 0 !cut);
        (match Trace_cache.lookup_decoded ~dir ~key with
        | None -> ()
        | Some _ -> Alcotest.failf "truncation to %d/%d not detected" !cut len);
        let corpse = path ^ ".corrupt" in
        if Sys.file_exists corpse then Sys.remove corpse;
        write_raw path original;
        cut := !cut + step
      done)

let test_quarantine_semantics () =
  with_temp_cache_dir (fun dir ->
      let key = Trace_cache.make_key ~name:"q" ~source:"s" ~seed:3 () in
      let trace = small_trace () in
      store_exn ~dir ~key trace;
      let path = Filename.concat dir (key ^ ".trace") in
      let data = read_file path in
      write_raw path (String.sub data 0 (String.length data - 4));
      let logged = ref [] in
      Trace_cache.set_quarantine_log (fun ~file ~reason ->
          logged := (file, reason) :: !logged);
      Fun.protect
        ~finally:(fun () ->
          Trace_cache.set_quarantine_log (fun ~file:_ ~reason:_ -> ()))
        (fun () ->
          Alcotest.(check bool) "corrupt entry is a miss" true
            (Trace_cache.lookup_decoded ~dir ~key = None);
          Alcotest.(check bool) "quarantine hook fired" true
            (List.mem_assoc (key ^ ".trace") !logged);
          Alcotest.(check bool) "renamed aside" true
            (Sys.file_exists (path ^ ".corrupt") && not (Sys.file_exists path));
          let kinds =
            List.map
              (fun e -> e.Trace_cache.entry_kind)
              (Trace_cache.entries ~dir)
          in
          Alcotest.(check bool) "classified as corrupt" true
            (List.mem Trace_cache.Corrupt_entry kinds);
          (* Graceful fallback: re-storing under the same key recovers. *)
          store_exn ~dir ~key trace;
          Alcotest.(check bool) "re-recorded entry hits" true
            (Trace_cache.lookup ~dir ~key <> None);
          (* GC reclaims the corpse before touching live entries. *)
          let removed, _ = Trace_cache.gc ~dir ~max_bytes:max_int in
          Alcotest.(check int) "gc removed the corpse" 1 removed;
          Alcotest.(check bool) "live entry survived gc" true
            (Trace_cache.lookup ~dir ~key <> None)))

let test_store_retries_transient_fault () =
  with_temp_cache_dir (fun dir ->
      let key = Trace_cache.make_key ~name:"retry" ~source:"s" ~seed:4 () in
      with_rules
        [ rule "trace_cache.store.io" (Fault.Nth 1) Fault.Fail ]
        (fun () -> store_exn ~dir ~key (small_trace ()));
      Alcotest.(check bool) "entry landed despite the fault" true
        (Trace_cache.lookup ~dir ~key <> None))

let test_store_gives_up_on_persistent_fault () =
  with_temp_cache_dir (fun dir ->
      let key = Trace_cache.make_key ~name:"give-up" ~source:"s" ~seed:5 () in
      with_rules
        [ rule "trace_cache.store.io" Fault.Always Fault.Fail ]
        (fun () ->
          match Trace_cache.store ~dir ~key (small_trace ()) with
          | Ok () -> Alcotest.fail "store succeeded under a persistent fault"
          | Error msg ->
              Alcotest.(check bool) "error names the point" true
                (String.length msg > 0)))

let test_lookup_transient_fault_is_plain_miss () =
  with_temp_cache_dir (fun dir ->
      let key = Trace_cache.make_key ~name:"transient" ~source:"s" ~seed:6 () in
      store_exn ~dir ~key (small_trace ());
      with_rules
        [ rule "trace_cache.lookup.data" (Fault.Nth 1) Fault.Fail ]
        (fun () ->
          Alcotest.(check bool) "injected read fault is a miss" true
            (Trace_cache.lookup_decoded ~dir ~key = None);
          (* A transient fault must not destroy the (intact) entry. *)
          Alcotest.(check bool) "entry not quarantined" true
            (Sys.file_exists (Filename.concat dir (key ^ ".trace")));
          Alcotest.(check bool) "next lookup hits" true
            (Trace_cache.lookup_decoded ~dir ~key <> None));
      (* The mapped tier's own transient fault point behaves the same:
         a plain miss (served by the decoded fallback), no quarantine. *)
      with_rules
        [ rule "trace.codec.map" (Fault.Nth 1) Fault.Fail ]
        (fun () ->
          (match Trace_cache.lookup ~dir ~key with
          | Some (t, _) ->
              Alcotest.(check bool) "fault degrades to the decoded tier"
                false
                (Ebp_trace.Trace.is_mapped t)
          | None -> Alcotest.fail "decoded fallback should still hit");
          Alcotest.(check bool) "sidecar not quarantined" true
            (Sys.file_exists (Filename.concat dir (key ^ ".ebpt3")))))

let test_mangled_store_detected_on_lookup () =
  (* Corruption injected while writing (bit flip after sealing) must land
     on disk — in both the canonical entry and the columnar sidecar — and
     then be caught on the way back in. While fault injection is active,
     mapped lookups verify the full payload CRC (the structural-only fast
     path is for production loads, where [ebp cache verify] is the
     backstop), so the lookup quarantines both mangled files and misses. *)
  with_temp_cache_dir (fun dir ->
      let key = Trace_cache.make_key ~name:"mangled" ~source:"s" ~seed:7 () in
      with_rules
        [ rule "trace_cache.store.data" Fault.Always Fault.Bit_flip ]
        (fun () ->
          store_exn ~dir ~key (small_trace ());
          Alcotest.(check bool) "mangled entry is a miss, not bad data" true
            (Trace_cache.lookup ~dir ~key = None));
      Alcotest.(check bool) "canonical entry quarantined" true
        (Sys.file_exists (Filename.concat dir (key ^ ".trace.corrupt")));
      Alcotest.(check bool) "sidecar quarantined" true
        (Sys.file_exists (Filename.concat dir (key ^ ".ebpt3.corrupt"))))

(* --- verify --- *)

let test_verify_scan () =
  with_temp_cache_dir (fun dir ->
      let trace = small_trace () in
      let k1 = Trace_cache.make_key ~name:"v1" ~source:"s" ~seed:8 () in
      let k2 = Trace_cache.make_key ~name:"v2" ~source:"s" ~seed:9 () in
      store_exn ~dir ~key:k1 trace;
      store_exn ~dir ~key:k2 trace;
      (match
         Trace_cache.store_index ~dir ~key:k1 ~page_sizes:[ 4096 ]
           (Write_index.build ~page_sizes:[ 4096 ] trace)
       with
      | Ok () -> ()
      | Error msg -> Alcotest.fail ("store_index: " ^ msg));
      let path = Filename.concat dir (k2 ^ ".trace") in
      let data = read_file path in
      write_raw path (String.sub data 0 (String.length data / 2));
      (* Two traces, their two columnar sidecars, and one index. *)
      let r = Trace_cache.verify ~quarantine:false ~dir () in
      Alcotest.(check int) "five entries checked" 5 r.Trace_cache.checked;
      Alcotest.(check int) "four intact" 4 r.Trace_cache.intact;
      Alcotest.(check (list string)) "the corrupt one is named"
        [ k2 ^ ".trace" ]
        (List.map fst r.Trace_cache.corrupt);
      Alcotest.(check bool) "no-quarantine left the file" true
        (Sys.file_exists path);
      let r = Trace_cache.verify ~dir () in
      Alcotest.(check int) "still flagged" 1 (List.length r.Trace_cache.corrupt);
      Alcotest.(check bool) "now quarantined" true
        (Sys.file_exists (path ^ ".corrupt") && not (Sys.file_exists path));
      let r = Trace_cache.verify ~dir () in
      Alcotest.(check int) "corpses skipped on the next scan" 4
        r.Trace_cache.checked;
      Alcotest.(check (list string)) "clean report" []
        (List.map fst r.Trace_cache.corrupt))

let test_index_lookup_corruption_is_miss () =
  with_temp_cache_dir (fun dir ->
      let trace = small_trace () in
      let key = Trace_cache.make_key ~name:"widx" ~source:"s" ~seed:10 () in
      let index = Write_index.build ~page_sizes:[ 4096 ] trace in
      (match Trace_cache.store_index ~dir ~key ~page_sizes:[ 4096 ] index with
      | Ok () -> ()
      | Error msg -> Alcotest.fail ("store_index: " ^ msg));
      (match Trace_cache.lookup_index ~dir ~key ~page_sizes:[ 4096 ] with
      | Some back ->
          Alcotest.(check bool) "round-trips" true (Write_index.equal index back)
      | None -> Alcotest.fail "index lookup after store");
      let file =
        key ^ "." ^ Trace_cache.index_key ~key ~page_sizes:[ 4096 ] ^ ".widx"
      in
      let path = Filename.concat dir file in
      let data = read_file path in
      let b = Bytes.of_string data in
      Bytes.set b (String.length data / 2)
        (Char.chr (Char.code (Bytes.get b (String.length data / 2)) lxor 1));
      write_raw path (Bytes.unsafe_to_string b);
      Alcotest.(check bool) "corrupt index is a miss" true
        (Trace_cache.lookup_index ~dir ~key ~page_sizes:[ 4096 ] = None);
      Alcotest.(check bool) "and quarantined" true
        (Sys.file_exists (path ^ ".corrupt")))

let () =
  Alcotest.run "fault"
    [
      ( "crc32",
        [
          Alcotest.test_case "known values" `Quick test_crc32_known_values;
          Alcotest.test_case "sensitivity" `Quick test_crc32_sensitivity;
        ] );
      ( "fault points",
        [
          Alcotest.test_case "disabled is a no-op" `Quick
            test_fault_disabled_is_noop;
          Alcotest.test_case "nth fires exactly once" `Quick
            test_fault_nth_fires_exactly_once;
          Alcotest.test_case "glob patterns" `Quick test_fault_glob_patterns;
          Alcotest.test_case "probability is seeded" `Quick
            test_fault_probability_deterministic;
          Alcotest.test_case "bitflip flips one bit" `Quick
            test_fault_mangle_bitflip;
          Alcotest.test_case "truncate is a strict prefix" `Quick
            test_fault_mangle_truncate;
          Alcotest.test_case "kill raises Killed" `Quick
            test_fault_kill_raises_killed;
          Alcotest.test_case "configure rebinds and resets" `Quick
            test_fault_configure_rebinds_and_resets;
          Alcotest.test_case "spec parsing" `Quick test_spec_parsing;
        ] );
      ( "sealed entries",
        [
          Alcotest.test_case "every bit flip detected" `Quick
            test_every_bitflip_detected;
          Alcotest.test_case "every truncation detected" `Quick
            test_every_truncation_detected;
          Alcotest.test_case "quarantine semantics" `Quick
            test_quarantine_semantics;
          Alcotest.test_case "store retries transient faults" `Quick
            test_store_retries_transient_fault;
          Alcotest.test_case "store gives up eventually" `Quick
            test_store_gives_up_on_persistent_fault;
          Alcotest.test_case "transient lookup fault is a plain miss" `Quick
            test_lookup_transient_fault_is_plain_miss;
          Alcotest.test_case "mangled store caught on lookup" `Quick
            test_mangled_store_detected_on_lookup;
        ] );
      ( "verify",
        [
          Alcotest.test_case "integrity scan" `Quick test_verify_scan;
          Alcotest.test_case "corrupt index is a miss" `Quick
            test_index_lookup_corruption_is_miss;
        ] );
    ]
