examples/strategy_comparison.ml: Ebp_core Ebp_lang Ebp_machine Ebp_runtime List Printf
