module Interval = Ebp_util.Interval
module Instr = Ebp_isa.Instr
module Reg = Ebp_isa.Reg
module Program = Ebp_isa.Program
module Metrics = Ebp_obs.Metrics

type stop_reason = Halted of int | Out_of_fuel | Machine_error of string

(* Published as batch deltas when [run] returns (and one at a time from
   [step]), never per instruction, so the hot loop stays metric-free. *)
let m_steps = Metrics.counter "machine.steps"
let m_stores = Metrics.counter "machine.stores"

(* The program is predecoded at [create] into flat parallel int arrays —
   one opcode dispatch, no boxed [Instr.t] traversal, no per-step
   allocation. Operand meaning per opcode (unused fields are 0):

     op              rd        r1        r2     sub          imm
     0  Nop          -         -         -      -            -
     1  Halt         -         -         -      -            -
     2  Li           dest      -         -      -            value
     3  Mv           dest      src       -      -            -
     4  Lw           dest      base      -      -            offset
     5  Lb           dest      base      -      -            offset
     6  Sw           value     base      -      -            offset
     7  Sb           value     base      -      -            offset
     8  Br           -         lhs       rhs    cond index   target pc
     9  Jmp          -         -         -      -            target pc
     10 Jal          -         -         -      -            target pc
     11 Jalr         -         dest reg  -      -            -
     12 Ret          -         -         -      -            -
     13 Syscall      -         -         -      -            number
     14 Trap         -         -         -      -            code
     15 Chk          -         base      -      width        offset
     16 Enter        -         -         -      -            func id
     17 Leave        -         -         -      -            func id
     18 Alu          dest      lhs       rhs    alu index    -
     19 Alui         dest      lhs       -      alu index    value

   Branch/jump targets are resolved to absolute pcs at decode time, and
   the cost model is folded into [d_cost] so the loop charges cycles with
   one array read. *)

let op_nop = 0
let op_halt = 1
let op_li = 2
let op_mv = 3
let op_lw = 4
let op_lb = 5
let op_sw = 6
let op_sb = 7
let op_br = 8
let op_jmp = 9
let op_jal = 10
let op_jalr = 11
let op_ret = 12
let op_syscall = 13
let op_trap = 14
let op_chk = 15
let op_enter = 16
let op_leave = 17
let op_alu = 18
let op_alui = 19

let alu_index : Instr.alu_op -> int = function
  | Add -> 0
  | Sub -> 1
  | Mul -> 2
  | Div -> 3
  | Rem -> 4
  | And -> 5
  | Or -> 6
  | Xor -> 7
  | Sll -> 8
  | Srl -> 9
  | Sra -> 10
  | Slt -> 11
  | Sle -> 12
  | Seq -> 13
  | Sne -> 14

let cond_index : Instr.cond -> int = function
  | Eq -> 0
  | Ne -> 1
  | Lt -> 2
  | Ge -> 3
  | Gt -> 4
  | Le -> 5

type t = {
  mem : Memory.t;
  costs : Cost_model.t;
  prog : Program.t;
  code_len : int;
  d_op : int array;
  d_rd : int array;
  d_r1 : int array;
  d_r2 : int array;
  d_sub : int array;
  d_imm : int array;
  d_cost : int array;
  d_implicit : bool array;
  regs : int array;
  mutable pc : int;
  mutable cycles : int;
  mutable executed : int;
  mutable stores : int;
  mutable funcs : int list;
  mutable halted : int option;
  monitor_regs : Interval.t option array;
  mutable live_monitors : int;
  mutable store_hook :
    (t -> addr:int -> width:int -> value:int -> pc:int -> implicit:bool -> unit) option;
  mutable enter_hook : (t -> int -> unit) option;
  mutable leave_hook : (t -> int -> unit) option;
  mutable syscall_handler : (t -> int -> unit) option;
  mutable trap_handler : (t -> code:int -> trap_pc:int -> unit) option;
  mutable write_fault_handler :
    (t -> addr:int -> width:int -> value:int -> pc:int -> unit) option;
  mutable view_fault_handler :
    (t -> addr:int -> width:int -> value:int -> pc:int -> unit) option;
  mutable monitor_fault_handler :
    (t -> reg:int -> addr:int -> width:int -> pc:int -> unit) option;
  mutable chk_handler : (t -> range:Interval.t -> pc:int -> unit) option;
}

let reg_ra = Reg.to_int Reg.ra
let reg_v0 = Reg.to_int Reg.v0

let target_index = function
  | Instr.Abs i -> i
  | Instr.Label l -> invalid_arg ("Machine: unresolved label " ^ l)

let create ?mem ?(costs = Cost_model.default) ?(monitor_reg_count = 4) prog =
  if not (Program.is_resolved prog) then
    invalid_arg "Machine.create: program has unresolved labels";
  if monitor_reg_count < 0 then
    invalid_arg "Machine.create: negative monitor register count";
  let mem = match mem with Some m -> m | None -> Memory.create () in
  let items = Program.items prog in
  let n = Array.length items in
  let d_op = Array.make n 0 in
  let d_rd = Array.make n 0 in
  let d_r1 = Array.make n 0 in
  let d_r2 = Array.make n 0 in
  let d_sub = Array.make n 0 in
  let d_imm = Array.make n 0 in
  let d_cost = Array.make n 0 in
  let d_implicit = Array.make n false in
  for i = 0 to n - 1 do
    let { Program.instr; implicit } = items.(i) in
    d_implicit.(i) <- implicit;
    d_cost.(i) <- Cost_model.cost costs instr;
    (match instr with
    | Nop -> d_op.(i) <- op_nop
    | Halt -> d_op.(i) <- op_halt
    | Li (rd, imm) ->
        d_op.(i) <- op_li;
        d_rd.(i) <- Reg.to_int rd;
        d_imm.(i) <- imm
    | Mv (rd, rs) ->
        d_op.(i) <- op_mv;
        d_rd.(i) <- Reg.to_int rd;
        d_r1.(i) <- Reg.to_int rs
    | Alu (op, rd, r1, r2) ->
        d_op.(i) <- op_alu;
        d_rd.(i) <- Reg.to_int rd;
        d_r1.(i) <- Reg.to_int r1;
        d_r2.(i) <- Reg.to_int r2;
        d_sub.(i) <- alu_index op
    | Alui (op, rd, r1, imm) ->
        d_op.(i) <- op_alui;
        d_rd.(i) <- Reg.to_int rd;
        d_r1.(i) <- Reg.to_int r1;
        d_sub.(i) <- alu_index op;
        d_imm.(i) <- imm
    | Lw (rd, rs, off) ->
        d_op.(i) <- op_lw;
        d_rd.(i) <- Reg.to_int rd;
        d_r1.(i) <- Reg.to_int rs;
        d_imm.(i) <- off
    | Lb (rd, rs, off) ->
        d_op.(i) <- op_lb;
        d_rd.(i) <- Reg.to_int rd;
        d_r1.(i) <- Reg.to_int rs;
        d_imm.(i) <- off
    | Sw (rd, rs, off) ->
        d_op.(i) <- op_sw;
        d_rd.(i) <- Reg.to_int rd;
        d_r1.(i) <- Reg.to_int rs;
        d_imm.(i) <- off
    | Sb (rd, rs, off) ->
        d_op.(i) <- op_sb;
        d_rd.(i) <- Reg.to_int rd;
        d_r1.(i) <- Reg.to_int rs;
        d_imm.(i) <- off
    | Br (c, r1, r2, target) ->
        d_op.(i) <- op_br;
        d_r1.(i) <- Reg.to_int r1;
        d_r2.(i) <- Reg.to_int r2;
        d_sub.(i) <- cond_index c;
        d_imm.(i) <- target_index target
    | Jmp target ->
        d_op.(i) <- op_jmp;
        d_imm.(i) <- target_index target
    | Jal target ->
        d_op.(i) <- op_jal;
        d_imm.(i) <- target_index target
    | Jalr rs ->
        d_op.(i) <- op_jalr;
        d_r1.(i) <- Reg.to_int rs
    | Ret -> d_op.(i) <- op_ret
    | Syscall n -> d_op.(i) <- op_syscall; d_imm.(i) <- n
    | Trap code -> d_op.(i) <- op_trap; d_imm.(i) <- code
    | Chk { base; off; width } ->
        d_op.(i) <- op_chk;
        d_r1.(i) <- Reg.to_int base;
        d_sub.(i) <- width;
        d_imm.(i) <- off
    | Enter f -> d_op.(i) <- op_enter; d_imm.(i) <- f
    | Leave f -> d_op.(i) <- op_leave; d_imm.(i) <- f)
  done;
  {
    mem;
    costs;
    prog;
    code_len = n;
    d_op;
    d_rd;
    d_r1;
    d_r2;
    d_sub;
    d_imm;
    d_cost;
    d_implicit;
    regs = Array.make Reg.count 0;
    pc = 0;
    cycles = 0;
    executed = 0;
    stores = 0;
    funcs = [];
    halted = None;
    monitor_regs = Array.make monitor_reg_count None;
    live_monitors = 0;
    store_hook = None;
    enter_hook = None;
    leave_hook = None;
    syscall_handler = None;
    trap_handler = None;
    write_fault_handler = None;
    view_fault_handler = None;
    monitor_fault_handler = None;
    chk_handler = None;
  }

let memory t = t.mem
let program t = t.prog

let truncate32 v =
  let v = v land 0xFFFFFFFF in
  if v land 0x80000000 <> 0 then v - 0x100000000 else v

let get_reg t r = t.regs.(Reg.to_int r)

let set_reg t r v =
  let i = Reg.to_int r in
  if i <> 0 then t.regs.(i) <- truncate32 v

(* Register writes from the decoded loop: [rd] is already an int index. *)
let[@inline] write_reg t rd v = if rd <> 0 then t.regs.(rd) <- truncate32 v

let pc t = t.pc
let set_pc t pc = t.pc <- pc
let cycles t = t.cycles
let charge t c = t.cycles <- t.cycles + c
let instructions_executed t = t.executed
let func_stack t = t.funcs
let halt t code = t.halted <- Some code

let set_store_hook t h = t.store_hook <- h
let set_enter_hook t h = t.enter_hook <- h
let set_leave_hook t h = t.leave_hook <- h
let set_syscall_handler t h = t.syscall_handler <- h
let set_trap_handler t h = t.trap_handler <- h
let set_write_fault_handler t h = t.write_fault_handler <- h
let set_view_fault_handler t h = t.view_fault_handler <- h
let set_monitor_fault_handler t h = t.monitor_fault_handler <- h
let set_chk_handler t h = t.chk_handler <- h

(* --- execution-state snapshots (checkpoint support) ---

   Everything [step] mutates except memory (checkpointed separately as
   dirty-page deltas) and the hooks (re-attached by the restore path —
   closures capture the consumer's state, which the consumer snapshots
   itself). *)

type snapshot = {
  s_regs : int array;
  s_pc : int;
  s_cycles : int;
  s_executed : int;
  s_stores : int;
  s_funcs : int list;
  s_halted : int option;
  s_monitor_regs : Interval.t option array;
  s_live_monitors : int;
}

let snapshot t =
  {
    s_regs = Array.copy t.regs;
    s_pc = t.pc;
    s_cycles = t.cycles;
    s_executed = t.executed;
    s_stores = t.stores;
    s_funcs = t.funcs;
    s_halted = t.halted;
    s_monitor_regs = Array.copy t.monitor_regs;
    s_live_monitors = t.live_monitors;
  }

let restore t s =
  if
    Array.length s.s_regs <> Array.length t.regs
    || Array.length s.s_monitor_regs <> Array.length t.monitor_regs
  then invalid_arg "Machine.restore: snapshot from a different machine shape";
  Array.blit s.s_regs 0 t.regs 0 (Array.length t.regs);
  t.pc <- s.s_pc;
  t.cycles <- s.s_cycles;
  t.executed <- s.s_executed;
  t.stores <- s.s_stores;
  t.funcs <- s.s_funcs;
  t.halted <- s.s_halted;
  Array.blit s.s_monitor_regs 0 t.monitor_regs 0 (Array.length t.monitor_regs);
  t.live_monitors <- s.s_live_monitors

let monitor_reg_count t = Array.length t.monitor_regs

let check_monitor_idx t i =
  if i < 0 || i >= Array.length t.monitor_regs then
    invalid_arg (Printf.sprintf "Machine: monitor register %d out of range" i)

(* [live_monitors] counts the [Some _] slots so stores can skip the scan
   (and the Interval allocation) entirely while no monitors are armed —
   the overwhelmingly common case during phase-1 trace recording. *)
let set_monitor_reg t i v =
  check_monitor_idx t i;
  (match (t.monitor_regs.(i), v) with
  | None, Some _ -> t.live_monitors <- t.live_monitors + 1
  | Some _, None -> t.live_monitors <- t.live_monitors - 1
  | None, None | Some _, Some _ -> ());
  t.monitor_regs.(i) <- v

let monitor_reg t i =
  check_monitor_idx t i;
  t.monitor_regs.(i)

(* First armed monitor register overlapping [lo, hi], or -1. *)
let monitor_hit_raw t ~lo ~hi =
  let regs = t.monitor_regs in
  let n = Array.length regs in
  let rec go i =
    if i >= n then -1
    else
      match Array.unsafe_get regs i with
      | Some m when Interval.lo m <= hi && lo <= Interval.hi m -> i
      | Some _ | None -> go (i + 1)
  in
  go 0

exception Stop of stop_reason

let stop_error fmt = Printf.ksprintf (fun msg -> raise (Stop (Machine_error msg))) fmt

let alu_eval_sub sub a b instr_pc =
  match sub with
  | 0 (* Add *) -> a + b
  | 1 (* Sub *) -> a - b
  | 2 (* Mul *) -> a * b
  | 3 (* Div *) ->
      if b = 0 then stop_error "division by zero at pc %d" instr_pc else a / b
  | 4 (* Rem *) ->
      if b = 0 then stop_error "division by zero at pc %d" instr_pc else a mod b
  | 5 (* And *) -> a land b
  | 6 (* Or *) -> a lor b
  | 7 (* Xor *) -> a lxor b
  | 8 (* Sll *) -> a lsl (b land 31)
  | 9 (* Srl *) -> (a land 0xFFFFFFFF) lsr (b land 31)
  | 10 (* Sra *) -> a asr (b land 31)
  | 11 (* Slt *) -> if a < b then 1 else 0
  | 12 (* Sle *) -> if a <= b then 1 else 0
  | 13 (* Seq *) -> if a = b then 1 else 0
  | _ (* Sne *) -> if a <> b then 1 else 0

let cond_eval_sub sub a b =
  match sub with
  | 0 (* Eq *) -> a = b
  | 1 (* Ne *) -> a <> b
  | 2 (* Lt *) -> a < b
  | 3 (* Ge *) -> a >= b
  | 4 (* Gt *) -> a > b
  | _ (* Le *) -> a <= b

(* Execute a store. Order of events (§2, §3.1): protection is checked
   before the write (VM faults are barriers at the page level); hardware
   monitor notification happens after the write has succeeded. *)
let exec_store t instr_pc ~addr ~width ~value ~implicit =
  match
    if width = 4 then Memory.store_word t.mem addr value
    else Memory.store_byte t.mem addr value
  with
  | () ->
      t.pc <- instr_pc + 1;
      t.stores <- t.stores + 1;
      if t.live_monitors > 0 then begin
        let reg = monitor_hit_raw t ~lo:addr ~hi:(addr + width - 1) in
        if reg >= 0 then
          match t.monitor_fault_handler with
          | Some h -> h t ~reg ~addr ~width ~pc:instr_pc
          | None -> ()
      end;
      (match t.store_hook with
      | Some h -> h t ~addr ~width ~value ~pc:instr_pc ~implicit
      | None -> ())
  | exception Memory.Write_fault _ -> (
      match t.write_fault_handler with
      | Some h ->
          t.pc <- instr_pc + 1;
          h t ~addr ~width ~value ~pc:instr_pc
      | None -> stop_error "unhandled write fault at 0x%x (pc %d)" addr instr_pc)
  | exception Memory.View_fault _ -> (
      match t.view_fault_handler with
      | Some h ->
          t.pc <- instr_pc + 1;
          h t ~addr ~width ~value ~pc:instr_pc
      | None -> stop_error "unhandled view fault at 0x%x (pc %d)" addr instr_pc)

(* Execute the instruction at [t.pc]. Assumes the pc is in range and the
   machine is not halted; raises [Stop] instead of returning a reason so
   the steady state allocates nothing. Hook-visible pc convention, kept
   bit-for-bit from the boxed interpreter: Chk/Enter/Leave handlers run
   with [pc] still at the instruction; store/syscall/trap/write-fault
   handlers run with [pc] already advanced past it. *)
let exec_one t =
  let i = t.pc in
  t.executed <- t.executed + 1;
  t.cycles <- t.cycles + Array.unsafe_get t.d_cost i;
  (match Array.unsafe_get t.d_op i with
  | 0 (* Nop *) -> t.pc <- i + 1
  | 1 (* Halt *) -> raise (Stop (Halted t.regs.(reg_v0)))
  | 2 (* Li *) ->
      write_reg t t.d_rd.(i) t.d_imm.(i);
      t.pc <- i + 1
  | 3 (* Mv *) ->
      write_reg t t.d_rd.(i) t.regs.(t.d_r1.(i));
      t.pc <- i + 1
  | 4 (* Lw *) ->
      write_reg t t.d_rd.(i) (Memory.load_word t.mem (t.regs.(t.d_r1.(i)) + t.d_imm.(i)));
      t.pc <- i + 1
  | 5 (* Lb *) ->
      write_reg t t.d_rd.(i) (Memory.load_byte t.mem (t.regs.(t.d_r1.(i)) + t.d_imm.(i)));
      t.pc <- i + 1
  | 6 (* Sw *) ->
      exec_store t i
        ~addr:(t.regs.(t.d_r1.(i)) + t.d_imm.(i))
        ~width:4 ~value:t.regs.(t.d_rd.(i))
        ~implicit:(Array.unsafe_get t.d_implicit i)
  | 7 (* Sb *) ->
      exec_store t i
        ~addr:(t.regs.(t.d_r1.(i)) + t.d_imm.(i))
        ~width:1
        ~value:(t.regs.(t.d_rd.(i)) land 0xff)
        ~implicit:(Array.unsafe_get t.d_implicit i)
  | 8 (* Br *) ->
      if cond_eval_sub t.d_sub.(i) t.regs.(t.d_r1.(i)) t.regs.(t.d_r2.(i)) then
        t.pc <- t.d_imm.(i)
      else t.pc <- i + 1
  | 9 (* Jmp *) -> t.pc <- t.d_imm.(i)
  | 10 (* Jal *) ->
      write_reg t reg_ra (i + 1);
      t.pc <- t.d_imm.(i)
  | 11 (* Jalr *) ->
      let dest = t.regs.(t.d_r1.(i)) in
      write_reg t reg_ra (i + 1);
      t.pc <- dest
  | 12 (* Ret *) -> t.pc <- t.regs.(reg_ra)
  | 13 (* Syscall *) -> (
      match t.syscall_handler with
      | Some h ->
          t.pc <- i + 1;
          h t t.d_imm.(i)
      | None -> stop_error "syscall %d with no handler at pc %d" t.d_imm.(i) i)
  | 14 (* Trap *) -> (
      match t.trap_handler with
      | Some h ->
          t.pc <- i + 1;
          h t ~code:t.d_imm.(i) ~trap_pc:i
      | None -> stop_error "trap %d with no handler at pc %d" t.d_imm.(i) i)
  | 15 (* Chk *) ->
      (match t.chk_handler with
      | Some h ->
          let lo = t.regs.(t.d_r1.(i)) + t.d_imm.(i) in
          h t ~range:(Interval.of_base_size ~base:lo ~size:t.d_sub.(i)) ~pc:i
      | None -> ());
      t.pc <- i + 1
  | 16 (* Enter *) ->
      let f = t.d_imm.(i) in
      t.funcs <- f :: t.funcs;
      (match t.enter_hook with Some h -> h t f | None -> ());
      t.pc <- i + 1
  | 17 (* Leave *) ->
      let f = t.d_imm.(i) in
      (match t.funcs with g :: rest when g = f -> t.funcs <- rest | _ -> ());
      (match t.leave_hook with Some h -> h t f | None -> ());
      t.pc <- i + 1
  | 18 (* Alu *) ->
      write_reg t t.d_rd.(i)
        (alu_eval_sub t.d_sub.(i) t.regs.(t.d_r1.(i)) t.regs.(t.d_r2.(i)) i);
      t.pc <- i + 1
  | _ (* Alui *) ->
      write_reg t t.d_rd.(i)
        (alu_eval_sub t.d_sub.(i) t.regs.(t.d_r1.(i)) t.d_imm.(i) i);
      t.pc <- i + 1);
  (* A handler may have requested an orderly halt. *)
  match t.halted with Some code -> raise (Stop (Halted code)) | None -> ()

let step t =
  match t.halted with
  | Some code -> Some (Halted code)
  | None ->
      if t.pc < 0 || t.pc >= t.code_len then
        Some (Machine_error (Printf.sprintf "pc out of range: %d" t.pc))
      else begin
        let stores0 = t.stores in
        let result =
          match exec_one t with () -> None | exception Stop reason -> Some reason
        in
        Metrics.incr m_steps;
        Metrics.add m_stores (t.stores - stores0);
        result
      end

let run ?(fuel = 200_000_000) t =
  let executed0 = t.executed and stores0 = t.stores in
  let finish reason =
    Metrics.add m_steps (t.executed - executed0);
    Metrics.add m_stores (t.stores - stores0);
    reason
  in
  try
    if fuel > 0 then
      (match t.halted with
      | Some code -> raise (Stop (Halted code))
      | None -> ());
    for _ = 1 to fuel do
      if t.pc < 0 || t.pc >= t.code_len then
        stop_error "pc out of range: %d" t.pc;
      exec_one t
    done;
    finish Out_of_fuel
  with
  | Stop reason -> finish reason
  | Memory.Bad_address { addr; what } ->
      finish
        (Machine_error (Printf.sprintf "%s: bad address 0x%x (pc %d)" what addr t.pc))
