(** Obviously-correct reference implementation of the monitor map.

    Keeps the set of monitored word indices in a hash set. Used by the
    property-based tests as an oracle for {!Monitor_map} and
    {!Interval_map}, and by nothing else — it is O(words) per operation. *)

type t

val create : unit -> t
val install : t -> Ebp_util.Interval.t -> unit
val remove : t -> Ebp_util.Interval.t -> unit
val overlaps : t -> Ebp_util.Interval.t -> bool
val monitored_words : t -> int
val is_empty : t -> bool
