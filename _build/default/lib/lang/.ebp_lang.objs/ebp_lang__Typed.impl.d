lib/lang/typed.ml: Ast
