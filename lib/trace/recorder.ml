module Machine = Ebp_machine.Machine
module Reg = Ebp_isa.Reg
module Debug_info = Ebp_lang.Debug_info
module Loader = Ebp_runtime.Loader
module Allocator = Ebp_runtime.Allocator

(* Per-function data the enter hook needs, precomputed at attach time so
   entering a function does no debug-info traversal. [vars] holds the
   non-static variables in declaration order. *)
type fn_info = { fname : string; vars : Debug_info.variable array }

(* Where the recorder's events go. The batch path is a {!Trace.Builder};
   the streaming path is a {!Stream.Writer}; the checkpoint-seek path is
   a bare counter. All three see the identical event sequence — that is
   the whole equivalence argument, so the hooks below are written once,
   against this record. *)
type sink = {
  register : Object_desc.t -> int;
  install : int -> lo:int -> hi:int -> unit;
  remove : int -> lo:int -> hi:int -> unit;
  write : lo:int -> hi:int -> pc:int -> unit;
}

let builder_sink b =
  {
    register = (fun obj -> Trace.Builder.register b obj);
    install = (fun id ~lo ~hi -> Trace.Builder.add_install_id b id ~lo ~hi);
    remove = (fun id ~lo ~hi -> Trace.Builder.add_remove_id b id ~lo ~hi);
    write = (fun ~lo ~hi ~pc -> Trace.Builder.add_write_raw b ~lo ~hi ~pc);
  }

let stream_sink w =
  {
    register = (fun obj -> Stream.Writer.register w obj);
    install = (fun id ~lo ~hi -> Stream.Writer.add_install_id w id ~lo ~hi);
    remove = (fun id ~lo ~hi -> Stream.Writer.add_remove_id w id ~lo ~hi);
    write = (fun ~lo ~hi ~pc -> Stream.Writer.add_write_raw w ~lo ~hi ~pc);
  }

(* A sink that only advances (event, object) counters — what the
   checkpoint seek uses to find "the machine just before event [w]"
   without building any trace. Counters are mutable so a restore can
   pre-load them from a checkpoint. *)
type counters = { mutable c_events : int; mutable c_objs : int }

let counting_sink c =
  {
    register = (fun _ -> let id = c.c_objs in c.c_objs <- id + 1; id);
    install = (fun _ ~lo:_ ~hi:_ -> c.c_events <- c.c_events + 1);
    remove = (fun _ ~lo:_ ~hi:_ -> c.c_events <- c.c_events + 1);
    write = (fun ~lo:_ ~hi:_ ~pc:_ -> c.c_events <- c.c_events + 1);
  }

type t = {
  sink : sink;
  builder : Trace.Builder.t option;  (* the batch path's, for [finish] *)
  debug : Debug_info.t;
  loader : Loader.t;
  fn_info : fn_info array;  (* indexed by function id *)
  acts : int array;  (* per-function activation count *)
  mutable frames : int array list;
      (* per live activation: packed (object id, lo, hi) triples *)
  heap_live : (int, int * int * int) Hashtbl.t;  (* addr -> id, lo, hi *)
  mutable heap_seq : int;
  mutable statics : (int * int * int) list;  (* globals + static locals *)
  mutable finished : bool;
}

let var_bounds ~fp (v : Debug_info.variable) =
  let base =
    match v.Debug_info.location with
    | Debug_info.Frame off -> fp + off
    | Debug_info.Static addr -> addr
  in
  (base, base + v.Debug_info.size - 1)

(* Enter/leave run once per call — with store recording, the hottest hook
   sites in phase 1. Each activation's locals are fresh objects by
   construction (the activation count is part of the descriptor), so they
   are [register]ed — no intern hashing — and their ids carried in the
   frame so leave never looks a descriptor up again. *)
let on_enter t machine fid =
  let info = t.fn_info.(fid) in
  let fp = Machine.get_reg machine Reg.fp in
  let act = t.acts.(fid) + 1 in
  t.acts.(fid) <- act;
  let vars = info.vars in
  let n = Array.length vars in
  let frame = Array.make (n * 3) 0 in
  for i = 0 to n - 1 do
    let v = Array.unsafe_get vars i in
    let lo, hi = var_bounds ~fp v in
    let id =
      t.sink.register
        (Object_desc.Local
           { func = info.fname; var = v.Debug_info.var_name; inst = act })
    in
    t.sink.install id ~lo ~hi;
    frame.(i * 3) <- id;
    frame.((i * 3) + 1) <- lo;
    frame.((i * 3) + 2) <- hi
  done;
  t.frames <- frame :: t.frames

let remove_frame t frame =
  let n = Array.length frame / 3 in
  for i = 0 to n - 1 do
    t.sink.remove frame.(i * 3) ~lo:frame.((i * 3) + 1) ~hi:frame.((i * 3) + 2)
  done

let on_leave t _machine _fid =
  match t.frames with
  | frame :: rest ->
      remove_frame t frame;
      t.frames <- rest
  | [] -> ()

let context_names t machine =
  List.map
    (fun fid -> (Debug_info.find_func t.debug fid).Debug_info.name)
    (Machine.func_stack machine)

let on_alloc_event t event =
  match event with
  | Allocator.Alloc { addr; size } ->
      t.heap_seq <- t.heap_seq + 1;
      let obj =
        Object_desc.Heap
          { context = context_names t (Loader.machine t.loader); seq = t.heap_seq }
      in
      let id = t.sink.register obj in
      let lo = addr and hi = addr + size - 1 in
      t.sink.install id ~lo ~hi;
      Hashtbl.replace t.heap_live addr (id, lo, hi)
  | Allocator.Free { addr; size = _ } -> (
      match Hashtbl.find_opt t.heap_live addr with
      | Some (id, lo, hi) ->
          t.sink.remove id ~lo ~hi;
          Hashtbl.remove t.heap_live addr
      | None -> ())
  | Allocator.Realloc { old_addr; old_size = _; new_addr; new_size } -> (
      (* Same object, possibly relocated (footnote 4): remove the old
         range, install the new one under the same descriptor. *)
      match Hashtbl.find_opt t.heap_live old_addr with
      | Some (id, lo, hi) ->
          t.sink.remove id ~lo ~hi;
          Hashtbl.remove t.heap_live old_addr;
          let lo = new_addr and hi = new_addr + new_size - 1 in
          t.sink.install id ~lo ~hi;
          Hashtbl.replace t.heap_live new_addr (id, lo, hi)
      | None -> ())

(* The store hook runs once per user-code store — the hottest call site
   in phase 1 — so the write is pushed as raw ints, no Interval. *)
let on_store t _machine ~addr ~width ~value:_ ~pc ~implicit =
  if not implicit then t.sink.write ~lo:addr ~hi:(addr + width - 1) ~pc

let make ?builder sink loader =
  let debug = Loader.debug loader in
  let fn_info =
    Array.map
      (fun (f : Debug_info.func) ->
        {
          fname = f.Debug_info.name;
          vars =
            Array.of_list
              (List.filter
                 (fun (v : Debug_info.variable) -> not v.Debug_info.is_static)
                 f.Debug_info.vars);
        })
      debug.Debug_info.functions
  in
  {
    sink;
    builder;
    debug;
    loader;
    fn_info;
    acts = Array.make (Array.length fn_info) 0;
    frames = [];
    heap_live = Hashtbl.create 64;
    heap_seq = 0;
    statics = [];
    finished = false;
  }

let set_hooks t =
  let machine = Loader.machine t.loader in
  Machine.set_enter_hook machine (Some (on_enter t));
  Machine.set_leave_hook machine (Some (on_leave t));
  Machine.set_store_hook machine (Some (on_store t));
  Allocator.set_event_hook (Loader.allocator t.loader) (Some (on_alloc_event t))

let install_statics t =
  let install_static obj ~lo ~hi =
    let id = t.sink.register obj in
    t.sink.install id ~lo ~hi;
    t.statics <- (id, lo, hi) :: t.statics
  in
  (* Globals and static locals exist for the whole run: install up front. *)
  List.iter
    (fun (g : Debug_info.global) ->
      install_static
        (Object_desc.Global { var = g.Debug_info.g_name })
        ~lo:g.Debug_info.g_addr
        ~hi:(g.Debug_info.g_addr + g.Debug_info.g_size - 1))
    t.debug.Debug_info.globals;
  Array.iter
    (fun (f : Debug_info.func) ->
      List.iter
        (fun (v : Debug_info.variable) ->
          if v.Debug_info.is_static then begin
            let lo, hi = var_bounds ~fp:0 v in
            install_static
              (Object_desc.Local_static
                 { func = f.Debug_info.name; var = v.Debug_info.var_name })
              ~lo ~hi
          end)
        f.Debug_info.vars)
    t.debug.Debug_info.functions

let attach_sink sink loader =
  let t = make sink loader in
  install_statics t;
  set_hooks t;
  t

let attach ?hint loader =
  let b = Trace.Builder.create ?hint () in
  let t = make ~builder:b (builder_sink b) loader in
  install_statics t;
  set_hooks t;
  t

let attach_stream w loader = attach_sink (stream_sink w) loader

(* --- recorder-state snapshots (checkpoint support) --- *)

type snapshot = {
  r_acts : int array;
  r_frames : int array list;
  r_heap_live : (int, int * int * int) Hashtbl.t;
  r_heap_seq : int;
  r_statics : (int * int * int) list;
}

let snapshot t =
  {
    r_acts = Array.copy t.acts;
    r_frames = List.map Array.copy t.frames;
    r_heap_live = Hashtbl.copy t.heap_live;
    r_heap_seq = t.heap_seq;
    r_statics = t.statics;
  }

(* Re-attach onto a loader whose machine state was restored from a
   checkpoint: the statics (and everything else already recorded) must
   NOT be re-emitted — the bookkeeping is restored from the snapshot
   instead, and the sink continues mid-sequence. *)
let reattach sink loader s =
  let t = make sink loader in
  Array.blit s.r_acts 0 t.acts 0 (Array.length t.acts);
  t.frames <- List.map Array.copy s.r_frames;
  Hashtbl.iter (fun k v -> Hashtbl.replace t.heap_live k v) s.r_heap_live;
  t.heap_seq <- s.r_heap_seq;
  t.statics <- s.r_statics;
  set_hooks t;
  t

let finish_events t =
  if t.finished then invalid_arg "Recorder.finish: already finished";
  t.finished <- true;
  (* An exit() mid-call-chain leaves frames live; remove them innermost
     first, then leaked heap objects, then the statics. *)
  List.iter (fun frame -> remove_frame t frame) t.frames;
  t.frames <- [];
  Hashtbl.iter
    (fun _ (id, lo, hi) -> t.sink.remove id ~lo ~hi)
    t.heap_live;
  Hashtbl.reset t.heap_live;
  List.iter (fun (id, lo, hi) -> t.sink.remove id ~lo ~hi) t.statics;
  t.statics <- []

let finish t =
  finish_events t;
  match t.builder with
  | Some b -> Trace.Builder.finish b
  | None ->
      invalid_arg
        "Recorder.finish: no builder (streaming recorder; use finish_events)"

let record ?hint ?fuel loader =
  let t = attach ?hint loader in
  let result = Loader.run ?fuel loader in
  (result, finish t)

let record_source ?seed ?fuel source =
  Result.map
    (fun compiled ->
      let loader = Loader.load ?seed compiled in
      let result, trace = record ?fuel loader in
      (result, trace, compiled.Ebp_lang.Compiler.debug))
    (Ebp_lang.Compiler.compile source)

(* Streaming counterparts: the recorder's state never holds more than
   the writer's one pending block, so peak memory is O(block) no matter
   how long the trace is. *)

let record_stream ?fuel writer loader =
  let t = attach_stream writer loader in
  let result = Loader.run ?fuel loader in
  finish_events t;
  Stream.Writer.finish writer;
  result

let record_source_stream ?seed ?fuel ?block_events ?on_seal ~write source =
  Result.map
    (fun compiled ->
      let writer = Stream.Writer.create ?block_events ~write () in
      Option.iter (Stream.Writer.set_on_seal writer) on_seal;
      let loader = Loader.load ?seed compiled in
      let result = record_stream ?fuel writer loader in
      (result, Stream.Writer.events writer))
    (Ebp_lang.Compiler.compile source)
