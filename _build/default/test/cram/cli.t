The workload list is stable:

  $ ebp list
  compiler   expression scanner/parser/constant-folder (stands in for GCC v1.4 compiling rtl.c)
  typeset    dynamic-programming paragraph line breaker (stands in for CommonTeX v2.9 typesetting a 4-page document)
  circuit    Gauss-Seidel transient nodal analysis (stands in for Spice v3c1 transient analysis of a differential pair)
  lattice    stencil relaxation over a global lattice (stands in for QCD quantum-chromodynamics simulation)
  puzzle     best-first 8-puzzle search (stands in for BPS Bayesian problem solver (8-puzzle))

Running a MiniC file prints its output and reports simulated time on stderr:

  $ cat > tiny.mc <<'MC'
  > int main() {
  >   int i;
  >   int s;
  >   s = 0;
  >   for (i = 0; i < 10; i = i + 1) { s = s + i; }
  >   print_int(s);
  >   return 0;
  > }
  > MC
  $ ebp run tiny.mc 2>/dev/null
  45

Compile errors name the line:

  $ cat > broken.mc <<'MC'
  > int main() {
  >   return nope;
  > }
  > MC
  $ ebp run broken.mc
  ebp: line 2: undefined variable nope
  [1]

Tracing and replaying through a file agree with live session discovery:

  $ ebp trace tiny.mc -o tiny.trace 2>/dev/null
  $ ebp sessions --from-trace tiny.trace | tail -n 1
  3 sessions
  $ ebp sessions tiny.mc | tail -n 1
  3 sessions

The disassembler shows instrumented programs; CodePatch adds three
instructions per explicit store:

  $ ebp disasm tiny.mc | grep -c 'sw '
  7
  $ plain=$(ebp disasm tiny.mc | wc -l)
  $ patched=$(ebp disasm tiny.mc --patch cp | wc -l)
  $ echo $((patched - plain))
  12

The hoisting pass reports what it optimized (two explicit stores are
loop-invariant: i and s live at fixed frame offsets):

  $ ebp disasm tiny.mc --patch hcp 2>&1 >/dev/null
  ; 4 stores, 2 hoisted, 1 loops optimized

The scriptable debugger stops on a conditional data breakpoint:

  $ printf 'watch global g\nbreak 10\nrun\nquit\n' | ebp debug watchme.mc
  ebp: no workload or file named "watchme.mc"
  [1]
  $ cat > watchme.mc <<'MC'
  > int g;
  > int main() {
  >   int i;
  >   for (i = 0; i < 100; i = i + 1) { g = g + 1; }
  >   print_int(g);
  >   return 0;
  > }
  > MC
  $ printf 'watch global g\nbreak 10\nrun\nquit\n' | ebp debug watchme.mc | head -n 3
  watching global g
  breaking on the first write of 10
  stopped at data breakpoint:
