(* Tests for Ebp_isa: registers, instructions, programs, assembler. *)

module Reg = Ebp_isa.Reg
module Instr = Ebp_isa.Instr
module Program = Ebp_isa.Program
module Asm = Ebp_isa.Asm

(* --- Reg --- *)

let test_reg_names_roundtrip () =
  for i = 0 to Reg.count - 1 do
    let r = Reg.of_int i in
    match Reg.of_name (Reg.name r) with
    | Some r' -> Alcotest.(check int) "roundtrip" i (Reg.to_int r')
    | None -> Alcotest.fail ("name did not parse: " ^ Reg.name r)
  done

let test_reg_raw_names () =
  (match Reg.of_name "r31" with
  | Some r -> Alcotest.(check int) "r31" 31 (Reg.to_int r)
  | None -> Alcotest.fail "r31 should parse");
  Alcotest.(check bool) "bogus" true (Reg.of_name "r99" = None);
  Alcotest.(check bool) "garbage" true (Reg.of_name "xyz" = None)

let test_reg_bounds () =
  Alcotest.check_raises "oob" (Invalid_argument "Reg.of_int: 32 outside [0,31]")
    (fun () -> ignore (Reg.of_int 32));
  Alcotest.check_raises "t8" (Invalid_argument "Reg.t_: index outside [0,7]")
    (fun () -> ignore (Reg.t_ 8))

let test_reg_conventions () =
  Alcotest.(check int) "zero" 0 (Reg.to_int Reg.zero);
  Alcotest.(check string) "fp name" "fp" (Reg.name Reg.fp);
  Alcotest.(check string) "t3 name" "t3" (Reg.name (Reg.t_ 3));
  Alcotest.(check bool) "a regs contiguous" true
    (Reg.to_int Reg.a5 = Reg.to_int Reg.a0 + 5)

(* --- Instr --- *)

let test_instr_store_predicates () =
  let sw = Instr.Sw (Reg.t_ 0, Reg.fp, -4) in
  let sb = Instr.Sb (Reg.t_ 0, Reg.fp, -4) in
  let lw = Instr.Lw (Reg.t_ 0, Reg.fp, -4) in
  Alcotest.(check bool) "sw is store" true (Instr.is_store sw);
  Alcotest.(check bool) "sb is store" true (Instr.is_store sb);
  Alcotest.(check bool) "lw is not" false (Instr.is_store lw);
  Alcotest.(check (option int)) "sw width" (Some 4) (Instr.store_width sw);
  Alcotest.(check (option int)) "sb width" (Some 1) (Instr.store_width sb);
  Alcotest.(check (option int)) "lw width" None (Instr.store_width lw)

let test_instr_targets () =
  let br = Instr.Br (Instr.Eq, Reg.t_ 0, Reg.zero, Instr.Label "x") in
  (match Instr.branch_target br with
  | Some (Instr.Label "x") -> ()
  | _ -> Alcotest.fail "expected label x");
  let br' = Instr.with_target br (Instr.Abs 7) in
  (match Instr.branch_target br' with
  | Some (Instr.Abs 7) -> ()
  | _ -> Alcotest.fail "expected Abs 7");
  Alcotest.check_raises "no target"
    (Invalid_argument "Instr.with_target: instruction has no target") (fun () ->
      ignore (Instr.with_target Instr.Nop (Instr.Abs 0)))

(* --- Program --- *)

let sample_instrs =
  [
    Instr.Li (Reg.t_ 0, 5);
    Instr.Sw (Reg.t_ 0, Reg.fp, -4);
    Instr.Br (Instr.Ne, Reg.t_ 0, Reg.zero, Instr.Label "loop");
    Instr.Halt;
  ]

let test_program_resolve () =
  let p = Program.of_instrs ~labels:[ ("loop", 0) ] sample_instrs in
  Alcotest.(check bool) "unresolved" false (Program.is_resolved p);
  match Program.resolve p with
  | Error e -> Alcotest.fail e
  | Ok p -> (
      Alcotest.(check bool) "resolved" true (Program.is_resolved p);
      match Program.get p 2 with
      | Instr.Br (_, _, _, Instr.Abs 0) -> ()
      | i -> Alcotest.fail ("bad resolution: " ^ Instr.to_string i))

let test_program_resolve_missing () =
  let p = Program.of_instrs [ Instr.Jmp (Instr.Label "nowhere") ] in
  match Program.resolve p with
  | Error msg ->
      Alcotest.(check string) "error names label" "undefined label: nowhere" msg
  | Ok _ -> Alcotest.fail "should not resolve"

let test_program_duplicate_label () =
  Alcotest.check_raises "dup"
    (Invalid_argument "Program.of_items: duplicate label x") (fun () ->
      ignore (Program.of_instrs ~labels:[ ("x", 0); ("x", 1) ] sample_instrs))

let test_program_stores_excludes_implicit () =
  let items =
    [
      { Program.instr = Instr.Sw (Reg.ra, Reg.sp, 4); implicit = true };
      { Program.instr = Instr.Sw (Reg.t_ 0, Reg.fp, -4); implicit = false };
      { Program.instr = Instr.Sb (Reg.t_ 1, Reg.fp, -8); implicit = false };
      { Program.instr = Instr.Nop; implicit = false };
    ]
  in
  let p = Program.of_items items in
  Alcotest.(check int) "two explicit stores" 2 (List.length (Program.stores p));
  Alcotest.(check bool) "first flagged" true (Program.implicit p 0)

let test_program_set_append () =
  let p = Program.of_instrs sample_instrs in
  let p2 = Program.set p 0 Instr.Nop in
  Alcotest.(check bool) "set changed copy" true (Program.get p2 0 = Instr.Nop);
  Alcotest.(check bool) "original untouched" true
    (Program.get p 0 = Instr.Li (Reg.t_ 0, 5));
  let p3, base = Program.append p [ { Program.instr = Instr.Halt; implicit = false } ] in
  Alcotest.(check int) "append index" 4 base;
  Alcotest.(check int) "new length" 5 (Program.length p3)

(* --- Asm --- *)

let asm_source =
  {|
; a tiny program
main:
  li   t0, 10
  li   t1, 0
loop:
  addi t1, t1, 1
  sw   t1, -4(fp)
  !sw  ra, 4(sp)
  blt  t1, t0, loop
  chk  -4(fp), 4
  jal  helper
  halt
helper:
  mv   v0, t1
  ret
|}

let test_asm_parse () =
  match Asm.parse asm_source with
  | Error e -> Alcotest.fail e
  | Ok p ->
      Alcotest.(check int) "instruction count" 11 (Program.length p);
      Alcotest.(check (option int)) "main label" (Some 0) (Program.label_index p "main");
      Alcotest.(check (option int)) "loop label" (Some 2) (Program.label_index p "loop");
      Alcotest.(check bool) "implicit store flagged" true (Program.implicit p 4);
      (match Program.get p 6 with
      | Instr.Chk { off = -4; width = 4; _ } -> ()
      | i -> Alcotest.fail ("chk parse: " ^ Instr.to_string i))

let test_asm_roundtrip () =
  match Asm.parse asm_source with
  | Error e -> Alcotest.fail e
  | Ok p -> (
      let printed = Asm.print p in
      match Asm.parse printed with
      | Error e -> Alcotest.fail ("reparse: " ^ e)
      | Ok p2 ->
          Alcotest.(check int) "same length" (Program.length p) (Program.length p2);
          for i = 0 to Program.length p - 1 do
            if not (Instr.equal (Program.get p i) (Program.get p2 i)) then
              Alcotest.fail
                (Printf.sprintf "instr %d differs: %s vs %s" i
                   (Instr.to_string (Program.get p i))
                   (Instr.to_string (Program.get p2 i)));
            if Program.implicit p i <> Program.implicit p2 i then
              Alcotest.fail (Printf.sprintf "implicit flag %d differs" i)
          done)

let test_asm_errors () =
  (match Asm.parse "  bogus t0, t1" with
  | Error msg ->
      Alcotest.(check bool) "line number" true
        (String.length msg >= 6 && String.sub msg 0 6 = "line 1")
  | Ok _ -> Alcotest.fail "should fail");
  (match Asm.parse "  jmp missing\n" |> Result.get_ok |> Ebp_isa.Program.resolve with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "undefined label should not resolve");
  match Asm.parse_resolved "  li t0, 1\n  halt\n" with
  | Ok p -> Alcotest.(check bool) "resolved" true (Program.is_resolved p)
  | Error e -> Alcotest.fail e

let test_asm_abs_targets () =
  match Asm.parse_resolved "  jmp @1\n  halt\n" with
  | Error e -> Alcotest.fail e
  | Ok p -> (
      match Program.get p 0 with
      | Instr.Jmp (Instr.Abs 1) -> ()
      | i -> Alcotest.fail (Instr.to_string i))

(* Round-trip property over random instructions. *)
let instr_gen =
  let open QCheck2.Gen in
  let reg = map Reg.of_int (int_range 0 31) in
  let off = int_range (-4096) 4096 in
  let alu =
    oneofl
      [ Instr.Add; Instr.Sub; Instr.Mul; Instr.Div; Instr.Rem; Instr.And;
        Instr.Or; Instr.Xor; Instr.Sll; Instr.Srl; Instr.Sra; Instr.Slt;
        Instr.Sle; Instr.Seq; Instr.Sne ]
  in
  let cond =
    oneofl [ Instr.Eq; Instr.Ne; Instr.Lt; Instr.Ge; Instr.Gt; Instr.Le ]
  in
  oneof
    [
      return Instr.Nop;
      return Instr.Halt;
      return Instr.Ret;
      map2 (fun r i -> Instr.Li (r, i)) reg (int_range (-100000) 100000);
      map2 (fun a b -> Instr.Mv (a, b)) reg reg;
      map3 (fun op (a, b) c -> Instr.Alu (op, a, b, c)) alu (pair reg reg) reg;
      map3 (fun op (a, b) i -> Instr.Alui (op, a, b, i)) alu (pair reg reg) off;
      map3 (fun a b o -> Instr.Lw (a, b, o)) reg reg off;
      map3 (fun a b o -> Instr.Sw (a, b, o)) reg reg off;
      map3 (fun a b o -> Instr.Lb (a, b, o)) reg reg off;
      map3 (fun a b o -> Instr.Sb (a, b, o)) reg reg off;
      map3
        (fun c (a, b) t -> Instr.Br (c, a, b, Instr.Abs t))
        cond (pair reg reg) (int_range 0 100);
      map (fun t -> Instr.Jmp (Instr.Abs t)) (int_range 0 100);
      map (fun t -> Instr.Jal (Instr.Abs t)) (int_range 0 100);
      map (fun r -> Instr.Jalr r) reg;
      map (fun n -> Instr.Syscall n) (int_range 0 20);
      map (fun n -> Instr.Trap n) (int_range 0 1000);
      map2 (fun base (off, width) -> Instr.Chk { base; off; width }) reg
        (pair off (oneofl [ 1; 4 ]));
      map (fun f -> Instr.Enter f) (int_range 0 50);
      map (fun f -> Instr.Leave f) (int_range 0 50);
    ]

let prop_disasm_asm_roundtrip =
  QCheck2.Test.make ~name:"print/parse round-trips any program" ~count:200
    QCheck2.Gen.(list_size (int_range 1 30) instr_gen)
    (fun instrs ->
      let p = Program.of_instrs instrs in
      match Asm.parse (Asm.print p) with
      | Error _ -> false
      | Ok p2 ->
          Program.length p = Program.length p2
          && List.for_all
               (fun i -> Instr.equal (Program.get p i) (Program.get p2 i))
               (List.init (Program.length p) Fun.id))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "isa"
    [
      ( "reg",
        [
          Alcotest.test_case "name roundtrip" `Quick test_reg_names_roundtrip;
          Alcotest.test_case "raw names" `Quick test_reg_raw_names;
          Alcotest.test_case "bounds" `Quick test_reg_bounds;
          Alcotest.test_case "conventions" `Quick test_reg_conventions;
        ] );
      ( "instr",
        [
          Alcotest.test_case "store predicates" `Quick test_instr_store_predicates;
          Alcotest.test_case "targets" `Quick test_instr_targets;
        ] );
      ( "program",
        [
          Alcotest.test_case "resolve" `Quick test_program_resolve;
          Alcotest.test_case "resolve missing" `Quick test_program_resolve_missing;
          Alcotest.test_case "duplicate label" `Quick test_program_duplicate_label;
          Alcotest.test_case "stores exclude implicit" `Quick
            test_program_stores_excludes_implicit;
          Alcotest.test_case "set/append" `Quick test_program_set_append;
        ] );
      ( "asm",
        [
          Alcotest.test_case "parse" `Quick test_asm_parse;
          Alcotest.test_case "roundtrip sample" `Quick test_asm_roundtrip;
          Alcotest.test_case "errors" `Quick test_asm_errors;
          Alcotest.test_case "absolute targets" `Quick test_asm_abs_targets;
          q prop_disasm_asm_roundtrip;
        ] );
    ]
