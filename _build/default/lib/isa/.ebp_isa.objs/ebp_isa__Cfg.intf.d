lib/isa/cfg.mli: Instr Program Reg
