(* Indexed phase-2 replay: per-session counting variables computed by
   binary-searched range counts over a Write_index instead of rescanning
   the trace. Bit-identical to Replay.replay_shard (the scan engine) by
   construction — see the .mli for the counting identities and the
   semantics quirks deliberately preserved.

   The central structure is the SEGMENT: a maximal run of words (pages)
   of the session's monitored ranges that share the same covering
   install/remove events, hence the same live windows. A local variable
   installed on every one of 46k calls contributes one segment with 46k
   windows — not 46k hashtable entries — and a monitored megabyte-sized
   array contributes one segment whose counting loop visits only the
   words the trace ever wrote (the posting keys), not every word. *)

module Trace = Ebp_trace.Trace
module W = Ebp_trace.Write_index
module Metrics = Ebp_obs.Metrics
module Obs_span = Ebp_obs.Span

(* [replay.sessions] / [replay.shards] are the same metrics Replay
   registers (registration is idempotent by name), so the totals hold
   whichever engine ran. The indexed-only counters are accumulated in
   shard-local refs and published once per shard — the counting loops
   themselves stay metrics-free. *)
let m_sessions = Metrics.counter "replay.sessions"
let m_shards = Metrics.counter "replay.shards"
let m_segments = Metrics.counter "replay.indexed.segments"
let m_range_queries = Metrics.counter "replay.indexed.range_queries"

(* Small growable int vector. *)
module Vec = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 8 0; len = 0 }

  let push v x =
    if v.len = Array.length v.data then begin
      let bigger = Array.make (2 * v.len) 0 in
      Array.blit v.data 0 bigger 0 v.len;
      v.data <- bigger
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let to_array v = Array.sub v.data 0 v.len
end

(* Live windows are open event-index intervals (a, b): a session is live
   for writes at positions t with a < t < b. Stored flattened as
   [a0; b0; a1; b1; ...], sorted and disjoint. *)

(* Is event [t] inside some window? Binary search on window starts. *)
let window_contains windows t =
  let n = Array.length windows / 2 in
  (* Largest i with windows.(2i) < t. *)
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if windows.(2 * mid) < t then lo := mid + 1 else hi := mid
  done;
  !lo > 0 && t < windows.((2 * (!lo - 1)) + 1)

(* --- grouping timeline entries by identical range --- *)

(* One group = all install/remove events of the session whose range maps
   to exactly the words (pages) [g_lo, g_hi], as packed
   ((ev lsl 1) lor tag) values. Keyed by g_lo in the table; distinct
   g_hi under one g_lo are rare (address reuse at different sizes).
   [runs] records where a pushed value broke ascending order: the Vec is
   then a concatenation of sorted runs (per-object timelines are
   chronological), merged without a comparison-closure sort later. *)
type group = {
  g_lo : int;
  g_hi : int;
  evs : Vec.t;
  runs : Vec.t;
  mutable last : int;
}

(* A session's timeline revisits the same range consecutively (every
   install/remove of one object, and of stack-slot reuse) — memoize the
   last group per granularity so the common case is one push. *)
type grouping = {
  tbl : (int, group list ref) Hashtbl.t;
  mutable memo_lo : int;
  mutable memo_hi : int;
  mutable memo : group option;
  mutable count : int;
}

let make_grouping n =
  { tbl = Hashtbl.create n; memo_lo = -1; memo_hi = -1; memo = None; count = 0 }

let push_group g packed =
  if packed < g.last then Vec.push g.runs g.evs.Vec.len;
  g.last <- packed;
  Vec.push g.evs packed

let add_item gr ~lo ~hi packed =
  match gr.memo with
  | Some g when gr.memo_lo = lo && gr.memo_hi = hi -> push_group g packed
  | _ ->
      let gs =
        match Hashtbl.find_opt gr.tbl lo with
        | Some gs -> gs
        | None ->
            let gs = ref [] in
            Hashtbl.add gr.tbl lo gs;
            gs
      in
      let g =
        match List.find_opt (fun g -> g.g_hi = hi) !gs with
        | Some g -> g
        | None ->
            let g =
              { g_lo = lo; g_hi = hi; evs = Vec.create (); runs = Vec.create ();
                last = min_int }
            in
            gs := g :: !gs;
            gr.count <- gr.count + 1;
            g
      in
      gr.memo_lo <- lo;
      gr.memo_hi <- hi;
      gr.memo <- Some g;
      push_group g packed

let groups_of_grouping gr =
  match gr.count, gr.memo with
  | 0, _ -> [||]
  | 1, Some g -> [| g |] (* single-range sessions: no collect, no sort *)
  | _ ->
      let acc = ref [] in
      Hashtbl.iter (fun _ gs -> acc := List.rev_append !gs !acc) gr.tbl;
      let arr = Array.of_list !acc in
      Array.sort
        (fun a b ->
          if a.g_lo <> b.g_lo then compare a.g_lo b.g_lo
          else compare a.g_hi b.g_hi)
        arr;
      arr

(* Merge two sorted int array slices with direct comparisons. *)
let merge_into src alo alen blo blen dst off =
  let i = ref alo and j = ref blo and k = ref off in
  let aend = alo + alen and bend = blo + blen in
  while !i < aend && !j < bend do
    let a = Array.unsafe_get src !i and b = Array.unsafe_get src !j in
    if a <= b then begin
      Array.unsafe_set dst !k a;
      incr i
    end
    else begin
      Array.unsafe_set dst !k b;
      incr j
    end;
    incr k
  done;
  while !i < aend do
    Array.unsafe_set dst !k (Array.unsafe_get src !i);
    incr i;
    incr k
  done;
  while !j < bend do
    Array.unsafe_set dst !k (Array.unsafe_get src !j);
    incr j;
    incr k
  done

(* Bottom-up balanced merge of the sorted runs [starts.(r), starts.(r+1))
   of [arr]: n log(runs) direct int comparisons, no comparison closure. *)
let merge_runs arr starts nruns =
  let n = Array.length arr in
  let a = ref arr and b = ref (Array.make n 0) in
  let width = ref 1 in
  while !width < nruns do
    let r = ref 0 in
    while !r < nruns do
      let lo = starts.(!r) in
      let mid = starts.(min nruns (!r + !width)) in
      let hi = starts.(min nruns (!r + (2 * !width))) in
      merge_into !a lo (mid - lo) mid (hi - mid) !b lo;
      r := !r + (2 * !width)
    done;
    let t = !a in
    a := !b;
    b := t;
    width := 2 * !width
  done;
  !a

(* A group's events as one ascending run: already sorted when fed by a
   single object (the common case — runs is empty); otherwise merge its
   recorded runs (per-object timelines are chronological, so the Vec is a
   concatenation of sorted runs; event positions are distinct). *)
let sorted_events g =
  if g.runs.Vec.len = 0 then Vec.to_array g.evs
  else begin
    let nruns = g.runs.Vec.len + 1 in
    (* Run r occupies [starts.(r), starts.(r+1)). *)
    let starts = Array.make (nruns + 1) 0 in
    Array.blit g.runs.Vec.data 0 starts 1 g.runs.Vec.len;
    starts.(nruns) <- g.evs.Vec.len;
    merge_runs (Vec.to_array g.evs) starts nruns
  end

(* A group prepared for segment building: its range plus its events as
   one sorted array. The page-granularity pgroups of a view are derived
   from the word pgroups by shifting the range — a word's bytes share a
   page, so page range = word range lsr (page shift - 2). The event
   array is shared, not copied, and ranges that collide after shifting
   merge in the cluster sweep below. *)
type pgroup = { p_lo : int; p_hi : int; p_evs : int array }

let pgroups_of_grouping gr =
  Array.map
    (fun g -> { p_lo = g.g_lo; p_hi = g.g_hi; p_evs = sorted_events g })
    (groups_of_grouping gr)

let shift_pgroups sh wpg =
  let arr =
    Array.map (fun g -> { g with p_lo = g.p_lo lsr sh; p_hi = g.p_hi lsr sh }) wpg
  in
  Array.sort
    (fun a b ->
      if a.p_lo <> b.p_lo then compare a.p_lo b.p_lo
      else compare a.p_hi b.p_hi)
    arr;
  arr

(* --- liveness automatons (windows from a sorted event run) --- *)

(* Word-granularity liveness follows the scan engine's id_set semantics:
   idempotent install (a second covering install while live is a no-op)
   and absolute remove (any covering remove kills the word, even if
   another matching object still covers it). *)
let word_windows ~events packed =
  let wins = Vec.create () in
  let live = ref false and start = ref 0 in
  Array.iter
    (fun p ->
      let ev = p lsr 1 in
      if p land 1 = 0 then begin
        if not !live then begin
          live := true;
          start := ev
        end
      end
      else if !live then begin
        live := false;
        Vec.push wins !start;
        Vec.push wins ev
      end)
    packed;
  if !live then begin
    Vec.push wins !start;
    Vec.push wins events
  end;
  (Vec.to_array wins, 0, 0)

(* Page-granularity liveness is refcounted (the scan engine's
   (session, page) -> count table): protect on 0 -> 1, unprotect on
   1 -> 0, removes without a matching install are no-ops. Also returns
   the per-page transition counts. *)
let page_windows ~events packed =
  let wins = Vec.create () in
  let protects = ref 0 and unprotects = ref 0 in
  let count = ref 0 and start = ref 0 in
  Array.iter
    (fun p ->
      let ev = p lsr 1 in
      if p land 1 = 0 then begin
        incr count;
        if !count = 1 then begin
          incr protects;
          start := ev
        end
      end
      else if !count > 0 then begin
        decr count;
        if !count = 0 then begin
          incr unprotects;
          Vec.push wins !start;
          Vec.push wins ev
        end
      end)
    packed;
  if !count > 0 then begin
    Vec.push wins !start;
    Vec.push wins events
  end;
  (Vec.to_array wins, !protects, !unprotects)

(* --- segments --- *)

(* Sorted disjoint word (page) runs, each with its windows; [prot] and
   [unprot] accumulate the per-key protection transitions times the run
   width (every page of a segment undergoes the same transitions). *)
type segs = {
  s_lo : int array;
  s_hi : int array;
  s_wins : int array array;
  prot : int;
  unprot : int;
}

(* Decompose the session's (sorted) pgroups into segments. Groups whose
   ranges don't overlap any other — the overwhelmingly common case — map
   1:1 to segments. Transitively overlapping groups (address reuse at
   different extents, objects sharing a page) form a cluster, swept at
   its range breakpoints; the covering groups' events are merged per
   sub-segment. *)
let build_segments ~events ~windows_of groups =
  let n = Array.length groups in
  let lo = Vec.create () and hi = Vec.create () in
  let wins = ref [] and nsegs = ref 0 in
  let prot = ref 0 and unprot = ref 0 in
  let emit s_lo s_hi w p u =
    (* A protect always opens a window, so a windowless segment (e.g. all
       removes) carries no transitions and no live time: skip it. *)
    if Array.length w > 0 then begin
      Vec.push lo s_lo;
      Vec.push hi s_hi;
      wins := w :: !wins;
      incr nsegs;
      prot := !prot + (p * (s_hi - s_lo + 1));
      unprot := !unprot + (u * (s_hi - s_lo + 1))
    end
  in
  let i = ref 0 in
  while !i < n do
    let j = ref (!i + 1) in
    let max_hi = ref groups.(!i).p_hi in
    while !j < n && groups.(!j).p_lo <= !max_hi do
      if groups.(!j).p_hi > !max_hi then max_hi := groups.(!j).p_hi;
      incr j
    done;
    (if !j = !i + 1 then begin
       let g = groups.(!i) in
       let w, p, u = windows_of ~events g.p_evs in
       emit g.p_lo g.p_hi w p u
     end
     else begin
       let k = !j - !i in
       let cluster = Array.sub groups !i k in
       let bounds = Array.make (2 * k) 0 in
       Array.iteri
         (fun x g ->
           bounds.(2 * x) <- g.p_lo;
           bounds.((2 * x) + 1) <- g.p_hi + 1)
         cluster;
       Array.sort Int.compare bounds;
       (* Sweep the breakpoints keeping the set of groups overlapping the
          current sub-segment. Breakpoints include every g_lo and
          g_hi + 1, so an overlapping group covers the whole sub-segment
          — the active set IS the covering set, no per-segment rescan of
          the cluster. *)
       let active = ref [] and next = ref 0 in
       for b = 0 to (2 * k) - 2 do
         let s_lo = bounds.(b) and s_next = bounds.(b + 1) in
         if s_lo < s_next && s_lo <= !max_hi then begin
           let s_hi = s_next - 1 in
           while !next < k && cluster.(!next).p_lo <= s_lo do
             active := !next :: !active;
             incr next
           done;
           active := List.filter (fun x -> cluster.(x).p_hi >= s_lo) !active;
           let total =
             List.fold_left
               (fun acc x -> acc + Array.length cluster.(x).p_evs)
               0 !active
           in
           if total > 0 then begin
             (* Concatenate the covering groups' sorted runs and merge
                them — each is already sorted, so no closure sort. *)
             let merged = Array.make total 0 in
             let starts = Vec.create () in
             let off = ref 0 in
             List.iter
               (fun x ->
                 let evs = cluster.(x).p_evs in
                 Vec.push starts !off;
                 Array.blit evs 0 merged !off (Array.length evs);
                 off := !off + Array.length evs)
               !active;
             let nruns = starts.Vec.len in
             Vec.push starts total;
             let merged = merge_runs merged (Vec.to_array starts) nruns in
             let w, p, u = windows_of ~events merged in
             emit s_lo s_hi w p u
           end
         end
       done
     end);
    i := !j
  done;
  {
    s_lo = Vec.to_array lo;
    s_hi = Vec.to_array hi;
    s_wins = Array.of_list (List.rev !wins);
    prot = !prot;
    unprot = !unprot;
  }

(* Windows of key [x], or [||]: binary search for the segment holding x. *)
let windows_at segs x =
  let n = Array.length segs.s_lo in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if segs.s_lo.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  if !lo > 0 && x <= segs.s_hi.(!lo - 1) then segs.s_wins.(!lo - 1) else [||]

(* --- counting --- *)

(* Writes of posting key [ki] inside any of [wins]. *)
let count_over p ki wins = W.count_within p ki ~windows:wins

(* Same, over the intersection of two sorted disjoint window runs. *)
let count_over_intersection p ki wa wb =
  let acc = ref 0 in
  let na = Array.length wa / 2 and nb = Array.length wb / 2 in
  let i = ref 0 and j = ref 0 in
  while !i < na && !j < nb do
    let a_lo = wa.(2 * !i) and a_hi = wa.((2 * !i) + 1) in
    let b_lo = wb.(2 * !j) and b_hi = wb.((2 * !j) + 1) in
    let lo = max a_lo b_lo and hi = min a_hi b_hi in
    if lo < hi then acc := !acc + W.count_at p ki ~after:lo ~before:hi;
    if a_hi < b_hi then incr i else incr j
  done;
  !acc

(* touched = Σ per-key window counts − Σ boundary-span counts where both
   sides were live (they were counted at both keys). Exact because a
   narrow write touches at most 2 adjacent keys (the index keeps wider
   writes out of the postings at word level; at page level a write's
   first/last pages are the only keys by construction). *)
let count_union ~queries writes spans segs =
  let acc = ref 0 in
  let nsegs = Array.length segs.s_lo in
  for si = 0 to nsegs - 1 do
    let lo = segs.s_lo.(si) and hi = segs.s_hi.(si) in
    let wins = segs.s_wins.(si) in
    let k0, k1 = W.key_range writes ~lo ~hi in
    for ki = k0 to k1 - 1 do
      acc := !acc + count_over writes ki wins
    done;
    let s0, s1 = W.key_range spans ~lo ~hi in
    queries := !queries + (k1 - k0) + (s1 - s0);
    for ki = s0 to s1 - 1 do
      let k = W.key_at spans ki in
      if k < hi then acc := !acc - count_over spans ki wins
      else if si + 1 < nsegs && segs.s_lo.(si + 1) = hi + 1 then
        (* Span (hi, hi+1) into the next segment: subtract only where
           both sides were live. *)
        acc :=
          !acc - count_over_intersection spans ki wins segs.s_wins.(si + 1)
    done
  done;
  !acc

let replay_shard ~index ~page_sizes trace sessions =
  Obs_span.with_span "replay.indexed.shard" @@ fun () ->
  let sessions_arr = Array.of_list sessions in
  let nsessions = Array.length sessions_arr in
  (* Shard-local accumulators, published as metrics once at the end. *)
  let queries = ref 0 and segments = ref 0 in
  let views =
    List.map
      (fun ps ->
        match W.page_view index ~page_size:ps with
        | Some v -> (ps, v, W.page_shift v)
        | None ->
            invalid_arg
              (Printf.sprintf
                 "Indexed_replay: index holds no page view for size %d" ps))
      page_sizes
  in
  let events = W.events index in
  let total_writes = W.total_writes index in
  (* Invert object matching once — via the candidate index, O(objects),
     not the scan engine's objects x sessions test matrix. Descending oid
     iteration leaves each list ascending, so group events arrive nearly
     chronological (fewer runs to merge). *)
  let lookup = Session.index sessions in
  let session_objs = Array.make nsessions [] in
  let objs = Trace.objects trace in
  for oid = Array.length objs - 1 downto 0 do
    List.iter
      (fun s -> session_objs.(s) <- oid :: session_objs.(s))
      (lookup objs.(oid))
  done;
  let word_writes = W.word_writes index and word_spans = W.word_spans index in
  let counts_for s =
    let installs = ref 0 and removes = ref 0 in
    (* One timeline pass fills the word-granularity range groups; page
       granularities are derived from them below by range shifting. *)
    let word_tbl = make_grouping 16 in
    List.iter
      (fun oid ->
        W.iter_object_timeline index oid (fun ~ev ~is_install ~lo ~hi ->
            if is_install then incr installs else incr removes;
            let packed = (ev lsl 1) lor if is_install then 0 else 1 in
            add_item word_tbl ~lo:(lo lsr 2) ~hi:(hi lsr 2) packed))
      session_objs.(s);
    let wgroups = pgroups_of_grouping word_tbl in
    let wsegs = build_segments ~events ~windows_of:word_windows wgroups in
    segments := !segments + Array.length wsegs.s_lo;
    let hits = ref (count_union ~queries word_writes word_spans wsegs) in
    (* Writes covering 3+ words are absent from the postings; a hit iff
       any covered word is live. Empty for machine-recorded traces. *)
    W.iter_wide_word_writes index (fun ~ev ~first ~last ->
        let rec any w =
          w <= last && (window_contains (windows_at wsegs w) ev || any (w + 1))
        in
        if any first then incr hits);
    let vm =
      List.map
        (fun (page_size, view, shift) ->
          let psegs =
            build_segments ~events ~windows_of:page_windows
              (shift_pgroups (shift - 2) wgroups)
          in
          segments := !segments + Array.length psegs.s_lo;
          let touches =
            ref
              (count_union ~queries (W.page_writes view) (W.page_spans view)
                 psegs)
          in
          (* A write spanning non-adjacent pages is in the postings at
             both its first and last page; drop the double count when
             both were live. *)
          W.iter_wide_page_writes view (fun ~ev ~first ~last ->
              if
                window_contains (windows_at psegs first) ev
                && window_contains (windows_at psegs last) ev
              then decr touches);
          {
            Counts.page_size;
            protects = psegs.prot;
            unprotects = psegs.unprot;
            (* Every hit lands on an active page: misses-on-active-pages
               = touches - hits, as in the scan engine. *)
            active_page_misses = !touches - !hits;
          })
        views
    in
    {
      Counts.installs = !installs;
      removes = !removes;
      hits = !hits;
      misses = total_writes - !hits;
      vm;
    }
  in
  let rows = List.mapi (fun s session -> (session, counts_for s)) sessions in
  Metrics.incr m_shards;
  Metrics.add m_sessions nsessions;
  Metrics.add m_segments !segments;
  Metrics.add m_range_queries !queries;
  rows
