lib/machine/machine.ml: Array Cost_model Ebp_isa Ebp_util Memory Printf
