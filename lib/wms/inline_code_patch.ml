module Interval = Ebp_util.Interval
module Instr = Ebp_isa.Instr
module Reg = Ebp_isa.Reg
module Program = Ebp_isa.Program
module Machine = Ebp_machine.Machine
module Memory = Ebp_machine.Memory

let l1_base = 0x0200_0000
let arena_base = 0x0201_0000
let chunk_shift = 22 (* 4 MiB chunks: address bits 31..22 *)
let words_per_chunk = 1 lsl 20
let map_stride = 1 lsl 20 (* one byte per word -> 1 MiB per chunk map *)

type patched = {
  prog : Program.t;
  original_length : int;
  store_count : int;
  trap_sites : (int, Instr.t) Hashtbl.t;  (* trap code (= store idx) -> store *)
}

let store_parts = function
  | Instr.Sw (rd, rs, off) -> (rd, rs, off, 4)
  | Instr.Sb (rd, rs, off) -> (rd, rs, off, 1)
  | _ -> invalid_arg "Inline_code_patch: not a store"

let item instr = { Program.instr; implicit = false }

(* The inline check sequence for the store at [idx]. Clobbers only the
   patch-reserved registers k0/k1. *)
let stub_for instr ~idx =
  let _, rs, off, _ = store_parts instr in
  fun base ->
    [
      item instr;  (* the store runs first: notify-after-write, §2 *)
      item (Instr.Alui (Instr.Add, Reg.k0, rs, off));      (* k0 = address *)
      item (Instr.Alui (Instr.Srl, Reg.k1, Reg.k0, chunk_shift));
      item (Instr.Alui (Instr.Sll, Reg.k1, Reg.k1, 2));
      item (Instr.Lw (Reg.k1, Reg.k1, l1_base));           (* k1 = L1[chunk] *)
      item (Instr.Br (Instr.Eq, Reg.k1, Reg.zero, Instr.Abs (base + 12)));
      item (Instr.Alui (Instr.Srl, Reg.k0, Reg.k0, 2));    (* word index *)
      item (Instr.Alui (Instr.And, Reg.k0, Reg.k0, words_per_chunk - 1));
      item (Instr.Alu (Instr.Add, Reg.k1, Reg.k1, Reg.k0));
      item (Instr.Lb (Reg.k1, Reg.k1, 0));                 (* map byte *)
      item (Instr.Br (Instr.Eq, Reg.k1, Reg.zero, Instr.Abs (base + 12)));
      item (Instr.Trap idx);                               (* monitor hit *)
      item (Instr.Jmp (Instr.Abs (idx + 1)));              (* base + 12 *)
    ]

let stub_length = 12

let instrument orig =
  if not (Program.is_resolved orig) then
    invalid_arg "Inline_code_patch.instrument: program has unresolved labels";
  let original_length = Program.length orig in
  let stores = Program.stores orig in
  let trap_sites = Hashtbl.create 64 in
  let prog =
    List.fold_left
      (fun prog (idx, instr) ->
        Hashtbl.replace trap_sites idx instr;
        let base = Program.length prog in
        let stub = stub_for instr ~idx base in
        assert (List.length stub = stub_length + 1);
        let prog, s = Program.append prog stub in
        assert (s = base);
        Program.set prog idx (Instr.Jmp (Instr.Abs s)))
      orig stores
  in
  { prog; original_length; store_count = List.length stores; trap_sites }

(* Each stub slot maps back to the original store index for attribution. *)
let original_site p pc =
  if pc < p.original_length then None
  else begin
    let stub_index = (pc - p.original_length) / (stub_length + 1) in
    (* Recover the idx from the stub's final jump. *)
    let jmp_pc = p.original_length + (stub_index * (stub_length + 1)) + stub_length in
    if jmp_pc >= Program.length p.prog then None
    else
      match Program.get p.prog jmp_pc with
      | Instr.Jmp (Instr.Abs next) -> Some (next - 1)
      | _ -> None
  end

let program p = p.prog
let patched_stores p = p.store_count

let expansion p =
  float_of_int (Program.length p.prog) /. float_of_int p.original_length

type t = {
  machine : Machine.t;
  timing : Timing.t;
  patched : patched;
  stats : Wms.stats;
  notify : Wms.notification -> unit;
  chunk_maps : (int, int) Hashtbl.t;  (* chunk index -> byte-map base *)
  mutable next_map : int;
  mutable words : int;  (* currently monitored words *)
}

let on_trap t machine ~code ~trap_pc:_ =
  match Hashtbl.find_opt t.patched.trap_sites code with
  | None -> ()
  | Some store ->
      let _, rs, off, width = store_parts store in
      (* rs is intact: the stub clobbers only k0/k1. *)
      let addr = Machine.get_reg machine rs + off in
      t.stats.Wms.hits <- t.stats.Wms.hits + 1;
      t.notify { Wms.write = Interval.of_base_size ~base:addr ~size:width; pc = code }

let attach ?(timing = Timing.sparcstation2) patched machine ~notify =
  let t =
    {
      machine;
      timing;
      patched;
      stats = Wms.fresh_stats ();
      notify;
      chunk_maps = Hashtbl.create 8;
      next_map = arena_base;
      words = 0;
    }
  in
  Machine.set_trap_handler machine (Some (on_trap t));
  t

let chunk_map t chunk =
  match Hashtbl.find_opt t.chunk_maps chunk with
  | Some base -> base
  | None ->
      let base = t.next_map in
      t.next_map <- t.next_map + map_stride;
      Hashtbl.add t.chunk_maps chunk base;
      Memory.privileged_store_word (Machine.memory t.machine)
        (l1_base + (chunk * 4))
        base;
      base

let set_words t range value =
  let mem = Machine.memory t.machine in
  let first = Interval.lo range lsr 2 and last = Interval.hi range lsr 2 in
  for w = first to last do
    let chunk = w lsr 20 in
    let base = chunk_map t chunk in
    let addr = base + (w land (words_per_chunk - 1)) in
    let old = Memory.load_byte mem addr in
    if old <> value then begin
      Memory.privileged_store_byte mem addr value;
      t.words <- t.words + (if value <> 0 then 1 else -1)
    end
  done

let install t range =
  Machine.charge t.machine (Timing.cycles t.timing.Timing.software_update_us);
  set_words t range 1;
  t.stats.Wms.installs <- t.stats.Wms.installs + 1;
  Ok ()

let remove t range =
  Machine.charge t.machine (Timing.cycles t.timing.Timing.software_update_us);
  set_words t range 0;
  t.stats.Wms.removes <- t.stats.Wms.removes + 1;
  Ok ()

let strategy t =
  {
    Wms.name = "CodePatch-inline";
    install = install t;
    remove = remove t;
    active_monitors = (fun () -> t.words);
    extras = (fun () -> []);
  }

let stats t = t.stats
let mapped_chunks t = Hashtbl.length t.chunk_maps
let monitored_words t = t.words
