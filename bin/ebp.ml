(* ebp — command-line front end for the data-breakpoints experiment.

   Subcommands:
     list                      list the benchmark workloads
     run <workload|file.mc>    compile and run a MiniC program
     trace <workload> [-o F]   record a program event trace (--cached to
                               reuse the on-disk trace cache)
     sessions <workload>       discover monitor sessions and their counts
     experiment [--only T1..]  run the full experiment and print reports
                               (-j N for N domains, --cache-dir for the
                               phase-1 trace cache, --engine scan|indexed
                               for the phase-2 replay engine)
     disasm <file.mc>          compile a MiniC file and print its assembly *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let source_of_arg arg =
  match Ebp_workloads.Workload.by_name arg with
  | Some w -> Ok (w.Ebp_workloads.Workload.source, w.Ebp_workloads.Workload.seed)
  | None ->
      if Sys.file_exists arg then Ok (read_file arg, 42)
      else Error (Printf.sprintf "no workload or file named %S" arg)

let exit_err msg =
  prerr_endline ("ebp: " ^ msg);
  exit 1

(* --- list --- *)

let list_cmd =
  let doc = "List the benchmark workloads." in
  let f () =
    List.iter
      (fun w ->
        Printf.printf "%-10s %s (stands in for %s)\n" w.Ebp_workloads.Workload.name
          w.Ebp_workloads.Workload.description w.Ebp_workloads.Workload.paper_analogue)
      Ebp_workloads.Workload.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const f $ const ())

(* --- run --- *)

let target_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD|FILE.mc")

let seed_arg =
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let run_cmd =
  let doc = "Compile and run a MiniC program or named workload." in
  let f target seed =
    match source_of_arg target with
    | Error msg -> exit_err msg
    | Ok (source, default_seed) -> (
        let seed = Option.value ~default:default_seed seed in
        match Ebp_runtime.Loader.run_source ~seed source with
        | Error msg -> exit_err msg
        | Ok r ->
            print_string r.Ebp_runtime.Loader.output;
            (match r.Ebp_runtime.Loader.runtime_error with
            | Some e -> exit_err ("runtime error: " ^ e)
            | None -> ());
            (match r.Ebp_runtime.Loader.status with
            | Ebp_machine.Machine.Halted code ->
                Printf.eprintf "[%d instructions, %d cycles, %.1f ms simulated]\n"
                  r.Ebp_runtime.Loader.instructions r.Ebp_runtime.Loader.cycles
                  (Ebp_machine.Cost_model.ms_of_cycles r.Ebp_runtime.Loader.cycles);
                exit code
            | Ebp_machine.Machine.Out_of_fuel -> exit_err "out of fuel"
            | Ebp_machine.Machine.Machine_error msg -> exit_err msg))
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const f $ target_arg $ seed_arg)

(* --- trace --- *)

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Trace cache directory (default: \\$XDG_CACHE_HOME/ebp or \
           ~/.cache/ebp).")

let trace_cmd =
  let doc = "Record a program event trace (phase 1)." in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write a binary trace to $(docv) instead of a summary to stdout.")
  in
  let text_arg =
    Arg.(value & flag & info [ "text" ] ~doc:"Dump the trace as text to stdout.")
  in
  let cached_arg =
    Arg.(
      value & flag
      & info [ "cached" ]
          ~doc:
            "Consult the on-disk trace cache: load the trace without \
             executing anything when it is already cached, record and \
             cache it otherwise.")
  in
  let f target out text cached cache_dir =
    match source_of_arg target with
    | Error msg -> exit_err msg
    | Ok (source, seed) -> (
        let record () =
          match Ebp_trace.Recorder.record_source ~seed source with
          | Error msg -> exit_err msg
          | Ok (_result, trace, _debug) -> trace
        in
        let trace =
          if not cached then record ()
          else begin
            let dir =
              Option.value cache_dir
                ~default:(Ebp_trace.Trace_cache.default_dir ())
            in
            let key =
              Ebp_trace.Trace_cache.make_key ~name:target ~source ~seed ()
            in
            match Ebp_trace.Trace_cache.lookup ~dir ~key with
            | Some (trace, _meta) ->
                Printf.eprintf "phase 1: cache hit, no execution (%d events)\n"
                  (Ebp_trace.Trace.length trace);
                trace
            | None ->
                let trace = record () in
                (match Ebp_trace.Trace_cache.store ~dir ~key trace with
                | Ok () ->
                    Printf.eprintf "phase 1: traced and cached (%d events)\n"
                      (Ebp_trace.Trace.length trace)
                | Error msg ->
                    Printf.eprintf "phase 1: traced; cache store failed: %s\n"
                      msg);
                trace
          end
        in
        (match out with
        | Some path ->
            let oc = open_out_bin path in
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () -> Ebp_trace.Trace.write_binary oc trace);
            Printf.eprintf "wrote %d events to %s\n"
              (Ebp_trace.Trace.length trace) path
        | None -> ());
        if text then print_string (Ebp_trace.Trace.to_text trace)
        else if out = None then
          Format.printf "%a@." Ebp_trace.Trace.pp_stats
            (Ebp_trace.Trace.stats trace))
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const f $ target_arg $ out_arg $ text_arg $ cached_arg $ cache_dir_arg)

let engine_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("indexed", Ebp_sessions.Replay.Indexed);
             ("scan", Ebp_sessions.Replay.Scan);
           ])
        Ebp_sessions.Replay.Indexed
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Phase-2 replay engine: $(b,indexed) (default; preprocesses the \
           trace into a temporal write index and counts each session by \
           binary-searched range counts) or $(b,scan) (one pass over the \
           trace per shard). Both produce bit-identical results.")

(* --- sessions --- *)

let sessions_cmd =
  let doc =
    "Discover monitor sessions and replay a trace against them (phase 2). \
     The trace comes from running the program, or from a binary trace file \
     saved with $(b,ebp trace -o)."
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Include sessions with zero monitor hits.")
  in
  let from_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "from-trace" ] ~docv:"FILE"
          ~doc:"Replay a saved binary trace instead of running anything; the \
                positional argument is ignored.")
  in
  let f target all from engine =
    let trace =
      match from with
      | Some path -> (
          if not (Sys.file_exists path) then
            exit_err (Printf.sprintf "no trace file %S" path);
          let ic = open_in_bin path in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () ->
              match Ebp_trace.Trace.read_binary ic with
              | Ok t -> t
              | Error msg -> exit_err ("bad trace file: " ^ msg)))
      | None -> (
          match source_of_arg target with
          | Error msg -> exit_err msg
          | Ok (source, seed) -> (
              match Ebp_trace.Recorder.record_source ~seed source with
              | Error msg -> exit_err msg
              | Ok (_result, trace, _debug) -> trace))
    in
    let results =
      Ebp_sessions.Replay.discover_and_replay ~engine ~keep_hitless:all trace
    in
    List.iter
      (fun (s, c) ->
        Format.printf "%-50s %a@." (Ebp_sessions.Session.to_string s)
          Ebp_sessions.Counts.pp c)
      results;
    Printf.printf "%d sessions\n" (List.length results)
  in
  let target_or_dash =
    Arg.(value & pos 0 string "-" & info [] ~docv:"WORKLOAD|FILE.mc")
  in
  Cmd.v (Cmd.info "sessions" ~doc)
    Term.(const f $ target_or_dash $ all_arg $ from_arg $ engine_arg)

(* --- experiment --- *)

let experiment_cmd =
  let doc = "Run the full simulation experiment and print the paper's artifacts." in
  let only_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "only" ] ~docv:"ARTIFACT"
          ~doc:
            "Print a single artifact: table1, table2, table3, table4, fig7, \
             fig8, fig9, breakdown, expansion.")
  in
  let workloads_arg =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "workloads" ] ~docv:"NAMES"
          ~doc:"Comma-separated subset of workloads to run.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Run the experiment engine on $(docv) domains: workloads trace \
             in parallel and each replay is sharded. Output is identical \
             for every $(docv).")
  in
  let f only workloads jobs cache_dir engine =
    let workloads =
      match workloads with
      | None -> Ebp_workloads.Workload.all
      | Some names ->
          List.map
            (fun n ->
              match Ebp_workloads.Workload.by_name n with
              | Some w -> w
              | None -> exit_err (Printf.sprintf "unknown workload %S" n))
            names
    in
    match
      Ebp_core.Experiment.run ~workloads ~domains:jobs ?cache_dir ~engine
        ~log:prerr_endline ()
    with
    | Error msg -> exit_err msg
    | Ok t -> (
        let module E = Ebp_core.Experiment in
        match only with
        | None -> print_string (E.full_report t)
        | Some "table1" -> print_string (E.table1 t)
        | Some "table2" -> print_string (E.table2 t)
        | Some "table3" -> print_string (E.table3 t)
        | Some "table4" -> print_string (E.table4 t)
        | Some "fig7" -> print_string (E.figure t ~stat:E.Max)
        | Some "fig8" -> print_string (E.figure t ~stat:E.P90)
        | Some "fig9" -> print_string (E.figure t ~stat:E.T_mean)
        | Some "breakdown" -> print_string (E.breakdown_report t)
        | Some "expansion" -> print_string (E.code_expansion_report t)
        | Some other -> exit_err (Printf.sprintf "unknown artifact %S" other))
  in
  Cmd.v (Cmd.info "experiment" ~doc)
    Term.(
      const f $ only_arg $ workloads_arg $ jobs_arg $ cache_dir_arg $ engine_arg)

(* --- debug --- *)

let debug_cmd =
  let doc = "Interactive watchpoint debugger (scriptable via a pipe)." in
  let f target seed =
    match source_of_arg target with
    | Error msg -> exit_err msg
    | Ok (source, default_seed) ->
        exit (Debug_repl.run ~source ~seed:(Option.value ~default:default_seed seed))
  in
  Cmd.v (Cmd.info "debug" ~doc) Term.(const f $ target_arg $ seed_arg)

(* --- disasm --- *)

let disasm_cmd =
  let doc = "Compile a MiniC program and print its assembly listing." in
  let patch_arg =
    Arg.(
      value
      & opt (some (enum [ ("tp", `Tp); ("cp", `Cp); ("hcp", `Hcp) ])) None
      & info [ "patch" ] ~docv:"STRATEGY"
          ~doc:
            "Show the program after an instrumentation pass: $(b,tp) \
             (TrapPatch), $(b,cp) (CodePatch), or $(b,hcp) (CodePatch with \
             loop hoisting).")
  in
  let f target patch =
    match source_of_arg target with
    | Error msg -> exit_err msg
    | Ok (source, _seed) -> (
        match Ebp_lang.Compiler.compile source with
        | Error msg -> exit_err msg
        | Ok compiled ->
            let base = compiled.Ebp_lang.Compiler.program in
            let program =
              match patch with
              | None -> base
              | Some `Tp -> Ebp_wms.Trap_patch.program (Ebp_wms.Trap_patch.instrument base)
              | Some `Cp -> Ebp_wms.Code_patch.program (Ebp_wms.Code_patch.instrument base)
              | Some `Hcp ->
                  let patched = Ebp_wms.Hoisted_code_patch.instrument base in
                  Printf.eprintf "; %d stores, %d hoisted, %d loops optimized\n"
                    (Ebp_wms.Hoisted_code_patch.patched_stores patched)
                    (Ebp_wms.Hoisted_code_patch.hoisted_stores patched)
                    (Ebp_wms.Hoisted_code_patch.loops_optimized patched);
                  Ebp_wms.Hoisted_code_patch.program patched
            in
            print_string (Ebp_isa.Asm.print program))
  in
  Cmd.v (Cmd.info "disasm" ~doc) Term.(const f $ target_arg $ patch_arg)

let () =
  let doc = "Efficient data breakpoints: write-monitor-service experiment" in
  let info = Cmd.info "ebp" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; trace_cmd; sessions_cmd; experiment_cmd; disasm_cmd; debug_cmd ]))
