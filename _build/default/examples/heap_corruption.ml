(* Finding a stray-pointer bug with a data breakpoint.

   This is the paper's motivating scenario (§1): "identify pointer uses
   that are inadvertently modifying an otherwise unrelated data structure".

   The MiniC program keeps a heap-allocated name table whose checksum
   mysteriously changes. Nothing in the source ever writes to the table
   after initialization — the culprit is an off-by-one loop in
   [reset_counters] that runs one element past the end of an adjacent
   heap block.

   A data breakpoint on the table pinpoints the offending store in one
   run: the hit's function is [reset_counters], not any table-touching
   code. A control breakpoint could not catch this — there is no table
   code to break in.

   Run with: dune exec examples/heap_corruption.exe *)

let program =
  {|
int table_checksum_before;
int table_checksum_after;

int checksum(int* t, int n) {
  int i;
  int c;
  c = 0;
  for (i = 0; i < n; i = i + 1) {
    c = c + t[i] * (i + 1);
  }
  return c;
}

// BUG: the loop bound should be i < 10; i <= 10 writes one element past
// the end of the counters block, into whatever the allocator placed next.
void reset_counters(int* counters) {
  int i;
  for (i = 0; i <= 10; i = i + 1) {
    counters[i] = 0;
  }
}

int main() {
  int* counters;
  int* table;
  int i;
  counters = malloc(40);           // 10 counters
  table = malloc(40);              // 10 table entries, right after it
  for (i = 0; i < 10; i = i + 1) {
    table[i] = 100 + i;
    counters[i] = i;
  }
  table_checksum_before = checksum(table, 10);
  reset_counters(counters);        // corrupts table[0]
  table_checksum_after = checksum(table, 10);
  print_int(table_checksum_before);
  print_int(table_checksum_after);
  return 0;
}
|}

let () =
  let dbg =
    match Ebp_core.Debugger.load_source program with
    | Ok d -> d
    | Error msg -> failwith ("compile error: " ^ msg)
  in
  (* Watch the 2nd heap object allocated in main: the table. *)
  Ebp_core.Debugger.watch_alloc dbg ~site:"main" ~nth:2;
  let result = Ebp_core.Debugger.run dbg in
  print_string result.Ebp_runtime.Loader.output;
  print_newline ();
  (* The expected writes come from main's init loop. Anything writing the
     table from another function is the corruption. *)
  let hits = Ebp_core.Debugger.hits dbg in
  let legit, stray =
    List.partition
      (fun (h : Ebp_core.Debugger.hit) -> h.func = Some "main")
      hits
  in
  Printf.printf "%d legitimate initialization writes (from main)\n"
    (List.length legit);
  List.iter
    (fun (h : Ebp_core.Debugger.hit) ->
      Printf.printf
        "CORRUPTION: %s written at pc %d inside %s — the stray pointer bug\n"
        (Ebp_util.Interval.to_string h.Ebp_core.Debugger.write)
        h.Ebp_core.Debugger.pc
        (Option.value ~default:"?" h.Ebp_core.Debugger.func))
    stray;
  if stray = [] then print_endline "no corruption detected (unexpected)"
