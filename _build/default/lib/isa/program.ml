type item = { instr : Instr.t; implicit : bool }

type t = { items : item array; labels : (string * int) list }

let of_items ?(labels = []) items =
  let items = Array.of_list items in
  let n = Array.length items in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (name, idx) ->
      if Hashtbl.mem seen name then
        invalid_arg (Printf.sprintf "Program.of_items: duplicate label %s" name);
      if idx < 0 || idx > n then
        invalid_arg
          (Printf.sprintf "Program.of_items: label %s out of range (%d)" name idx);
      Hashtbl.add seen name ())
    labels;
  { items; labels }

let of_instrs ?labels instrs =
  of_items ?labels (List.map (fun instr -> { instr; implicit = false }) instrs)

let length t = Array.length t.items

let check t i name =
  if i < 0 || i >= Array.length t.items then
    invalid_arg
      (Printf.sprintf "Program.%s: index %d outside [0,%d)" name i
         (Array.length t.items))

let get t i =
  check t i "get";
  t.items.(i).instr

let implicit t i =
  check t i "implicit";
  t.items.(i).implicit

let items t = Array.copy t.items

let label_index t name = List.assoc_opt name t.labels
let labels t = t.labels

let resolve t =
  let missing = ref None in
  let resolve_target = function
    | Instr.Abs _ as a -> a
    | Instr.Label l -> (
        match label_index t l with
        | Some i -> Instr.Abs i
        | None ->
            if !missing = None then missing := Some l;
            Instr.Abs 0)
  in
  let items =
    Array.map
      (fun item ->
        match Instr.branch_target item.instr with
        | None -> item
        | Some target ->
            { item with instr = Instr.with_target item.instr (resolve_target target) })
      t.items
  in
  match !missing with
  | Some l -> Error (Printf.sprintf "undefined label: %s" l)
  | None -> Ok { t with items }

let is_resolved t =
  Array.for_all
    (fun item ->
      match Instr.branch_target item.instr with
      | Some (Instr.Label _) -> false
      | Some (Instr.Abs _) | None -> true)
    t.items

let set t i instr =
  check t i "set";
  let items = Array.copy t.items in
  items.(i) <- { items.(i) with instr };
  { t with items }

let append t extra =
  let first = Array.length t.items in
  { t with items = Array.append t.items (Array.of_list extra) }, first

let stores t =
  let acc = ref [] in
  Array.iteri
    (fun i item ->
      if Instr.is_store item.instr && not item.implicit then
        acc := (i, item.instr) :: !acc)
    t.items;
  List.rev !acc

let fold f t init =
  let acc = ref init in
  Array.iteri (fun i item -> acc := f i item !acc) t.items;
  !acc

let pp ppf t =
  let by_index = Hashtbl.create 16 in
  List.iter (fun (name, idx) -> Hashtbl.add by_index idx name) t.labels;
  Array.iteri
    (fun i item ->
      List.iter
        (fun name -> Format.fprintf ppf "%s:@\n" name)
        (Hashtbl.find_all by_index i);
      Format.fprintf ppf "  %4d  %a%s@\n" i Instr.pp item.instr
        (if item.implicit then "  ; implicit" else ""))
    t.items
