module Interval = Ebp_util.Interval
module Machine = Ebp_machine.Machine

type t = {
  machine : Machine.t;
  timing : Timing.t;
  stats : Wms.stats;
  notify : Wms.notification -> unit;
}

let on_monitor_fault t machine ~reg:_ ~addr ~width ~pc =
  Machine.charge machine (Timing.cycles t.timing.Timing.nh_fault_handler_us);
  t.stats.Wms.hits <- t.stats.Wms.hits + 1;
  t.notify { Wms.write = Interval.of_base_size ~base:addr ~size:width; pc }

let attach ?(timing = Timing.sparcstation2) machine ~notify =
  let t = { machine; timing; stats = Wms.fresh_stats (); notify } in
  Machine.set_monitor_fault_handler machine (Some (on_monitor_fault t));
  t

let capacity t = Machine.monitor_reg_count t.machine

let find_reg t p =
  let n = capacity t in
  let rec go i = if i >= n then None else if p (Machine.monitor_reg t.machine i) then Some i else go (i + 1) in
  go 0

let install t range =
  match find_reg t (( = ) None) with
  | None ->
      Error
        (Printf.sprintf "out of monitor registers (%d in use): cannot monitor %s"
           (capacity t) (Interval.to_string range))
  | Some i ->
      Machine.set_monitor_reg t.machine i (Some range);
      t.stats.Wms.installs <- t.stats.Wms.installs + 1;
      Ok ()

let remove t range =
  match
    find_reg t (function Some m -> Interval.equal m range | None -> false)
  with
  | None -> Error (Printf.sprintf "no monitor register holds %s" (Interval.to_string range))
  | Some i ->
      Machine.set_monitor_reg t.machine i None;
      t.stats.Wms.removes <- t.stats.Wms.removes + 1;
      Ok ()

let active t =
  let n = capacity t in
  let rec go i acc =
    if i >= n then acc
    else go (i + 1) (if Machine.monitor_reg t.machine i <> None then acc + 1 else acc)
  in
  go 0 0

let strategy t =
  {
    Wms.name = "NativeHardware";
    install = install t;
    remove = remove t;
    active_monitors = (fun () -> active t);
    extras = (fun () -> []);
  }

let stats t = t.stats
