lib/util/interval.ml: Format Int Printf
