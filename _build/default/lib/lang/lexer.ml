type spanned = { token : Token.t; line : int }

let keywords =
  [
    ("int", Token.Kw_int); ("void", Token.Kw_void); ("if", Token.Kw_if);
    ("else", Token.Kw_else); ("while", Token.Kw_while); ("for", Token.Kw_for);
    ("return", Token.Kw_return); ("break", Token.Kw_break);
    ("continue", Token.Kw_continue); ("static", Token.Kw_static);
  ]

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c
let is_hex_digit c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

exception Lex_error of string

let tokenize source =
  let n = String.length source in
  let tokens = ref [] in
  let line = ref 1 in
  let emit token = tokens := { token; line = !line } :: !tokens in
  let pos = ref 0 in
  let peek k = if !pos + k < n then Some source.[!pos + k] else None in
  let advance () =
    (if source.[!pos] = '\n' then incr line);
    incr pos
  in
  let fail msg = raise (Lex_error (Printf.sprintf "line %d: %s" !line msg)) in
  try
    while !pos < n do
      let c = source.[!pos] in
      if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
      else if c = '/' && peek 1 = Some '/' then
        while !pos < n && source.[!pos] <> '\n' do
          advance ()
        done
      else if c = '/' && peek 1 = Some '*' then begin
        advance ();
        advance ();
        let closed = ref false in
        while (not !closed) && !pos < n do
          if source.[!pos] = '*' && peek 1 = Some '/' then begin
            advance ();
            advance ();
            closed := true
          end
          else advance ()
        done;
        if not !closed then fail "unterminated block comment"
      end
      else if is_digit c then begin
        let start = !pos in
        if c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') then begin
          advance ();
          advance ();
          while !pos < n && is_hex_digit source.[!pos] do
            advance ()
          done
        end
        else
          while !pos < n && is_digit source.[!pos] do
            advance ()
          done;
        let text = String.sub source start (!pos - start) in
        match int_of_string_opt text with
        | Some v -> emit (Token.Int_lit v)
        | None -> fail (Printf.sprintf "bad integer literal %S" text)
      end
      else if is_ident_start c then begin
        let start = !pos in
        while !pos < n && is_ident_char source.[!pos] do
          advance ()
        done;
        let text = String.sub source start (!pos - start) in
        match List.assoc_opt text keywords with
        | Some kw -> emit kw
        | None -> emit (Token.Ident text)
      end
      else begin
        let two tok = advance (); advance (); emit tok in
        let one tok = advance (); emit tok in
        match (c, peek 1) with
        | '&', Some '&' -> two Token.And_and
        | '|', Some '|' -> two Token.Or_or
        | '=', Some '=' -> two Token.Eq_eq
        | '!', Some '=' -> two Token.Bang_eq
        | '<', Some '=' -> two Token.Le
        | '>', Some '=' -> two Token.Ge
        | '<', Some '<' -> two Token.Shl
        | '>', Some '>' -> two Token.Shr
        | '+', _ -> one Token.Plus
        | '-', _ -> one Token.Minus
        | '*', _ -> one Token.Star
        | '/', _ -> one Token.Slash
        | '%', _ -> one Token.Percent
        | '&', _ -> one Token.Amp
        | '|', _ -> one Token.Pipe
        | '^', _ -> one Token.Caret
        | '~', _ -> one Token.Tilde
        | '!', _ -> one Token.Bang
        | '=', _ -> one Token.Assign
        | '<', _ -> one Token.Lt
        | '>', _ -> one Token.Gt
        | '(', _ -> one Token.Lparen
        | ')', _ -> one Token.Rparen
        | '{', _ -> one Token.Lbrace
        | '}', _ -> one Token.Rbrace
        | '[', _ -> one Token.Lbracket
        | ']', _ -> one Token.Rbracket
        | ',', _ -> one Token.Comma
        | ';', _ -> one Token.Semi
        | _ -> fail (Printf.sprintf "unexpected character %C" c)
      end
    done;
    emit Token.Eof;
    Ok (List.rev !tokens)
  with Lex_error msg -> Error msg
