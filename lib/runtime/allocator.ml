type event =
  | Alloc of { addr : int; size : int }
  | Free of { addr : int; size : int }
  | Realloc of { old_addr : int; old_size : int; new_addr : int; new_size : int }

type t = {
  base : int;
  limit : int;
  mutable free_list : (int * int) list;  (* (addr, size), ascending, coalesced *)
  allocated : (int, int) Hashtbl.t;  (* addr -> size *)
  mutable hook : (event -> unit) option;
}

let align4 n = (n + 3) land lnot 3

let create ?(base = Ebp_lang.Layout.heap_base) ?(limit = Ebp_lang.Layout.heap_limit) () =
  if base land 3 <> 0 || limit land 3 <> 0 then
    invalid_arg "Allocator.create: unaligned heap bounds";
  if limit <= base then invalid_arg "Allocator.create: empty heap";
  {
    base;
    limit;
    free_list = [ (base, limit - base) ];
    allocated = Hashtbl.create 64;
    hook = None;
  }

let set_event_hook t hook = t.hook <- hook

let fire t event = match t.hook with Some h -> h event | None -> ()

let alloc_block t size =
  let size = max 4 (align4 size) in
  let rec take acc = function
    | [] -> None
    | (addr, block_size) :: rest when block_size >= size ->
        let remaining =
          if block_size = size then rest else (addr + size, block_size - size) :: rest
        in
        Some (addr, List.rev_append acc remaining)
    | block :: rest -> take (block :: acc) rest
  in
  match take [] t.free_list with
  | None -> None
  | Some (addr, free_list) ->
      t.free_list <- free_list;
      Hashtbl.replace t.allocated addr size;
      Some (addr, size)

let malloc t size =
  match alloc_block t size with
  | None -> None
  | Some (addr, size) ->
      fire t (Alloc { addr; size });
      Some addr

(* Insert a block into the free list, coalescing with neighbours. *)
let release t addr size =
  let rec insert = function
    | [] -> [ (addr, size) ]
    | (a, s) :: rest ->
        if addr + size < a then (addr, size) :: (a, s) :: rest
        else if addr + size = a then (addr, size + s) :: rest
        else if a + s = addr then
          match insert_after (a, s + size) rest with l -> l
        else (a, s) :: insert rest
  and insert_after (a, s) = function
    | (a2, s2) :: rest when a + s = a2 -> (a, s + s2) :: rest
    | rest -> (a, s) :: rest
  in
  t.free_list <- insert t.free_list

let free_block t addr =
  match Hashtbl.find_opt t.allocated addr with
  | None -> Error (Printf.sprintf "free of non-allocated address 0x%x" addr)
  | Some size ->
      Hashtbl.remove t.allocated addr;
      release t addr size;
      Ok size

let free t addr =
  match free_block t addr with
  | Error _ as e -> e
  | Ok size ->
      fire t (Free { addr; size });
      Ok ()

let realloc t addr size ~copy =
  if addr = 0 then
    match alloc_block t size with
    | None -> Ok None
    | Some (new_addr, new_size) ->
        fire t (Alloc { addr = new_addr; size = new_size });
        Ok (Some new_addr)
  else
    match Hashtbl.find_opt t.allocated addr with
    | None -> Error (Printf.sprintf "realloc of non-allocated address 0x%x" addr)
    | Some old_size -> (
        let wanted = max 4 (align4 size) in
        if wanted <= old_size then begin
          (* Shrink in place; the object keeps its full original extent in
             the allocator (C allows this) but reports the new size. *)
          fire t (Realloc { old_addr = addr; old_size; new_addr = addr; new_size = old_size });
          Ok (Some addr)
        end
        else
          match alloc_block t wanted with
          | None -> Ok None
          | Some (new_addr, new_size) ->
              copy ~src:addr ~dst:new_addr ~len:(min old_size new_size);
              Hashtbl.remove t.allocated addr;
              release t addr old_size;
              fire t (Realloc { old_addr = addr; old_size; new_addr; new_size });
              Ok (Some new_addr))

let size_of t addr = Hashtbl.find_opt t.allocated addr

let live_blocks t =
  Hashtbl.fold (fun addr size acc -> (addr, size) :: acc) t.allocated []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let live_bytes t = Hashtbl.fold (fun _ size acc -> acc + size) t.allocated 0
let free_bytes t = List.fold_left (fun acc (_, s) -> acc + s) 0 t.free_list

(* --- snapshots (checkpoint support) ---

   The free list is an immutable list (shared, not copied); the live-set
   table is copied. The hook is not part of a snapshot — it belongs to
   whoever attached it. *)

type snapshot = { s_free : (int * int) list; s_allocated : (int, int) Hashtbl.t }

let snapshot t = { s_free = t.free_list; s_allocated = Hashtbl.copy t.allocated }

let restore t s =
  t.free_list <- s.s_free;
  Hashtbl.reset t.allocated;
  Hashtbl.iter (fun addr size -> Hashtbl.replace t.allocated addr size) s.s_allocated
