(* Streaming sealed-block trace format (EBPB1).

   A stream is a header followed by self-contained, CRC-sealed records:

     header:  magic "EBPB1", uvarint block_events
     record:  tag byte ('B' block | 'F' fin)
              uvarint payload length
              payload bytes
              CRC-32 of the payload, 4 bytes LE

   Block payload (struct-of-arrays, EBPT2's column encodings restarted
   per block so every block decodes independently):

     uvarint ndescs, then per new object: uvarint length + descriptor
       (objects appear in the block where they are registered, in id
       order — concatenating the tables of all blocks is the trace's
       object table)
     uvarint count
     column 1: w0 (tagged object word) as uvarint, per event
     column 2: lo, zigzag-varint delta against the previous event's lo
     column 3: hi - lo as uvarint
     column 4: pc, zigzag-varint delta, write events only

   Fin payload: uvarint total events, uvarint total objects — a
   consistency check that the stream was closed deliberately.

   The prefix-consistency guarantee: any byte prefix of a live stream
   parses into the trace of all *sealed* blocks (the high-water mark);
   a torn tail — a record cut mid-way or failing its CRC — ends the
   prefix instead of failing the read. Only a header that never parses,
   or a record whose bytes are CRC-intact but semantically inconsistent
   (a writer bug, not a torn write), is a hard error. *)

let magic = "EBPB1"
let default_block_events = 65536
let rec_block = 'B'
let rec_fin = 'F'

(* Raw-event tags, as in Trace.iter_raw: 0 install, 1 remove, 2 write. *)
let tag_write = 2

let add_uvarint buf v =
  let rec go v =
    if 0 <= v && v < 0x80 then Buffer.add_char buf (Char.unsafe_chr v)
    else begin
      Buffer.add_char buf (Char.unsafe_chr (0x80 lor (v land 0x7f)));
      go (v lsr 7)
    end
  in
  go v

let[@inline] zigzag v = (v lsl 1) lxor (v asr 62)
let[@inline] unzigzag v = (v lsr 1) lxor (-(v land 1))
let add_svarint buf v = add_uvarint buf (zigzag v)

let encode_header ~block_events =
  let buf = Buffer.create 16 in
  Buffer.add_string buf magic;
  add_uvarint buf block_events;
  Buffer.contents buf

module Writer = struct
  type on_seal =
    first:int ->
    count:int ->
    nobjs:int ->
    ((tag:int -> obj:int -> lo:int -> hi:int -> pc:int -> unit) -> unit) ->
    unit

  type t = {
    block_events : int;
    write : string -> unit;
    mutable on_seal : on_seal option;
    data : int array; (* pending events, stride 4: w0 lo hi pc *)
    mutable pending : int;
    mutable sealed : int;
    mutable total_objs : int;
    (* Descriptor strings registered since the last seal, reversed. The
       writer never retains descriptors of sealed blocks — its state is
       O(block), which is the whole point of the stream. *)
    mutable pending_descs : string list;
    mutable npending_descs : int;
    mutable finished : bool;
  }

  let p_seal = Ebp_util.Fault.point "stream.seal"
  let m_blocks = Ebp_obs.Metrics.counter "stream.blocks_sealed"
  let m_retries = Ebp_obs.Metrics.counter "stream.seal.retries"
  let m_events = Ebp_obs.Metrics.counter "stream.events_sealed"

  let create ?(block_events = default_block_events) ~write () =
    if block_events <= 0 then
      invalid_arg "Stream.Writer.create: block_events must be positive";
    write (encode_header ~block_events);
    {
      block_events;
      write;
      on_seal = None;
      data = Array.make (4 * block_events) 0;
      pending = 0;
      sealed = 0;
      total_objs = 0;
      pending_descs = [];
      npending_descs = 0;
      finished = false;
    }

  let set_on_seal w f = w.on_seal <- Some f
  let block_events w = w.block_events
  let events w = w.sealed + w.pending
  let sealed_events w = w.sealed
  let pending_events w = w.pending
  let object_count w = w.total_objs

  let register w obj =
    let id = w.total_objs in
    w.total_objs <- id + 1;
    w.pending_descs <- Object_desc.to_string obj :: w.pending_descs;
    w.npending_descs <- w.npending_descs + 1;
    id

  let iter_pending w f =
    for i = 0 to w.pending - 1 do
      let base = 4 * i in
      let w0 = w.data.(base) in
      let tag = w0 land 3 in
      f ~tag
        ~obj:(if tag = tag_write then -1 else w0 lsr 2)
        ~lo:w.data.(base + 1) ~hi:w.data.(base + 2)
        ~pc:(if tag = tag_write then w.data.(base + 3) else -1)
    done

  let encode_block w =
    let buf = Buffer.create (256 + (w.pending * 6)) in
    add_uvarint buf w.npending_descs;
    List.iter
      (fun s ->
        add_uvarint buf (String.length s);
        Buffer.add_string buf s)
      (List.rev w.pending_descs);
    add_uvarint buf w.pending;
    for i = 0 to w.pending - 1 do
      add_uvarint buf w.data.(4 * i)
    done;
    let prev_lo = ref 0 in
    for i = 0 to w.pending - 1 do
      let lo = w.data.((4 * i) + 1) in
      add_svarint buf (lo - !prev_lo);
      prev_lo := lo
    done;
    for i = 0 to w.pending - 1 do
      add_uvarint buf (w.data.((4 * i) + 2) - w.data.((4 * i) + 1))
    done;
    let prev_pc = ref 0 in
    for i = 0 to w.pending - 1 do
      if w.data.(4 * i) land 3 = tag_write then begin
        let pc = w.data.((4 * i) + 3) in
        add_svarint buf (pc - !prev_pc);
        prev_pc := pc
      end
    done;
    Buffer.contents buf

  let emit_record w tag payload =
    let buf = Buffer.create (String.length payload + 16) in
    Buffer.add_char buf tag;
    add_uvarint buf (String.length payload);
    Buffer.add_string buf payload;
    let crc = Ebp_util.Crc32.string payload in
    let b = Bytes.create 4 in
    Bytes.set_int32_le b 0 (Int32.of_int crc);
    Buffer.add_bytes buf b;
    w.write (Buffer.contents buf)

  (* stream.seal models a transient sink failure: like the cache's store
     path it gets three attempts before the failure propagates to the
     recorder (which surfaces it as a recording error — a sealed prefix
     on disk is still a valid stream). *)
  let check_seal () =
    let rec attempt n =
      try Ebp_util.Fault.check p_seal
      with Ebp_util.Fault.Injected _ when n < 3 ->
        Ebp_obs.Metrics.incr m_retries;
        attempt (n + 1)
    in
    attempt 1

  let seal w =
    if w.pending > 0 || w.npending_descs > 0 then begin
      let payload = encode_block w in
      check_seal ();
      emit_record w rec_block payload;
      Ebp_obs.Metrics.incr m_blocks;
      Ebp_obs.Metrics.add m_events w.pending;
      let first = w.sealed and count = w.pending in
      w.sealed <- first + count;
      (match w.on_seal with
      | Some f -> f ~first ~count ~nobjs:w.total_objs (iter_pending w)
      | None -> ());
      w.pending <- 0;
      w.pending_descs <- [];
      w.npending_descs <- 0
    end

  let add w w0 lo hi pc =
    if w.finished then invalid_arg "Stream.Writer: writer is finished";
    let base = 4 * w.pending in
    w.data.(base) <- w0;
    w.data.(base + 1) <- lo;
    w.data.(base + 2) <- hi;
    w.data.(base + 3) <- pc;
    w.pending <- w.pending + 1;
    if w.pending = w.block_events then seal w

  let add_install_id w id ~lo ~hi = add w (id lsl 2) lo hi (-1)
  let add_remove_id w id ~lo ~hi = add w ((id lsl 2) lor 1) lo hi (-1)
  let add_write_raw w ~lo ~hi ~pc = add w tag_write lo hi pc

  let finish w =
    if not w.finished then begin
      seal w;
      let buf = Buffer.create 16 in
      add_uvarint buf w.sealed;
      add_uvarint buf w.total_objs;
      emit_record w rec_fin (Buffer.contents buf);
      w.finished <- true
    end
end

(* --- reading --- *)

type prefix = { trace : Trace.t; high_water : int; complete : bool }

(* [Bad] aborts the whole read (the stream is not a torn tail but an
   inconsistent one); [Cut] ends the prefix at the last sealed record. *)
exception Bad of string
exception Cut

(* Bounded decoder over one CRC-verified payload: overrunning it is a
   [Bad] (the bytes are provably intact, so a short payload is a writer
   inconsistency, not a torn write). *)
module Payload = struct
  type t = { s : string; stop : int; mutable pos : int }

  let make s ~pos ~len = { s; stop = pos + len; pos }
  let at_end p = p.pos = p.stop

  let byte p =
    if p.pos >= p.stop then raise (Bad "short record");
    let c = Char.code p.s.[p.pos] in
    p.pos <- p.pos + 1;
    c

  let uvarint p =
    let v = ref 0 and shift = ref 0 and continue = ref true in
    while !continue do
      let b = byte p in
      if !shift > 56 then raise (Bad "varint too long");
      v := !v lor ((b land 0x7f) lsl !shift);
      shift := !shift + 7;
      if b < 0x80 then continue := false
    done;
    !v

  let svarint p = unzigzag (uvarint p)

  let string p n =
    if n < 0 || p.pos + n > p.stop then raise (Bad "short record");
    let str = String.sub p.s p.pos n in
    p.pos <- p.pos + n;
    str
end

let decode_block b payload =
  let p = payload in
  let ndescs = Payload.uvarint p in
  for _ = 1 to ndescs do
    let str = Payload.string p (Payload.uvarint p) in
    match Object_desc.of_string str with
    | Some obj -> ignore (Trace.Builder.register b obj)
    | None -> raise (Bad ("bad object descriptor: " ^ str))
  done;
  let count = Payload.uvarint p in
  let w0s = Array.init count (fun _ -> Payload.uvarint p) in
  let los = Array.make count 0 in
  let prev = ref 0 in
  for i = 0 to count - 1 do
    prev := !prev + Payload.svarint p;
    los.(i) <- !prev
  done;
  let widths = Array.init count (fun _ -> Payload.uvarint p) in
  let prev_pc = ref 0 in
  for i = 0 to count - 1 do
    let w0 = w0s.(i) in
    let tag = w0 land 3 in
    let lo = los.(i) in
    let hi = lo + widths.(i) in
    if tag = tag_write then begin
      prev_pc := !prev_pc + Payload.svarint p;
      Trace.Builder.add_write_raw b ~lo ~hi ~pc:!prev_pc
    end
    else if tag <= 1 then begin
      let id = w0 lsr 2 in
      if id >= Trace.Builder.object_count b then
        raise (Bad "object id out of range");
      if tag = 0 then Trace.Builder.add_install_id b id ~lo ~hi
      else Trace.Builder.add_remove_id b id ~lo ~hi
    end
    else raise (Bad "unknown event tag")
  done;
  if not (Payload.at_end p) then raise (Bad "trailing bytes in block")

let decode_fin b payload =
  let p = payload in
  let total_events = Payload.uvarint p in
  let total_objs = Payload.uvarint p in
  if not (Payload.at_end p) then raise (Bad "trailing bytes in fin");
  if total_events <> Trace.Builder.length b then
    raise (Bad "fin event count does not match stream");
  if total_objs <> Trace.Builder.object_count b then
    raise (Bad "fin object count does not match stream")

let read_raw s =
  let len = String.length s in
  if len < String.length magic || String.sub s 0 (String.length magic) <> magic
  then Error "bad stream magic"
  else begin
    (* The header rides no CRC: it is written once at create time, so a
       file that has one at all has it whole — parse it as a payload
       bounded by the file. *)
    let hdr = Payload.make s ~pos:(String.length magic) ~len:(min 10 (len - String.length magic)) in
    match
      let block_events =
        try Payload.uvarint hdr with Bad _ -> raise (Bad "truncated header")
      in
      if block_events <= 0 then raise (Bad "bad block size");
      let b = Trace.Builder.create ~hint:block_events () in
      let high_water = ref 0 in
      let complete = ref false in
      let stop = ref false in
      let pos = ref hdr.Payload.pos in
      while (not !stop) && not !complete do
        if !pos >= len then stop := true
        else begin
          let record_start = !pos in
          match
            (* Record framing: torn or corrupt → [Cut], ending the
               prefix at the previous record. *)
            let need n = if !pos + n > len then raise Cut in
            let byte () =
              need 1;
              let c = Char.code s.[!pos] in
              incr pos;
              c
            in
            let plen =
              let _tag = byte () in
              let v = ref 0 and shift = ref 0 and continue = ref true in
              while !continue do
                let b = byte () in
                if !shift > 56 then raise Cut;
                v := !v lor ((b land 0x7f) lsl !shift);
                shift := !shift + 7;
                if b < 0x80 then continue := false
              done;
              !v
            in
            need (plen + 4);
            let payload_pos = !pos in
            let stored_crc =
              Int32.to_int (String.get_int32_le s (payload_pos + plen))
              land 0xffffffff
            in
            if Ebp_util.Crc32.sub s ~pos:payload_pos ~len:plen <> stored_crc
            then raise Cut;
            (s.[record_start], payload_pos, plen)
          with
          | exception Cut ->
              pos := record_start;
              stop := true
          | tag, payload_pos, plen ->
              let payload = Payload.make s ~pos:payload_pos ~len:plen in
              pos := payload_pos + plen + 4;
              if tag = rec_block then begin
                decode_block b payload;
                high_water := Trace.Builder.length b
              end
              else if tag = rec_fin then begin
                decode_fin b payload;
                complete := true
              end
              else raise (Bad "unknown record tag")
        end
      done;
      ( {
          trace = Trace.Builder.finish b;
          high_water = !high_water;
          complete = !complete;
        },
        !pos )
    with
    | exception Bad msg -> Error ("malformed stream: " ^ msg)
    | result -> Ok result
  end

let read_prefix s = Result.map fst (read_raw s)

let read s =
  match read_raw s with
  | Error _ as e -> e
  | Ok (p, consumed) ->
      if not p.complete then
        Error
          (Printf.sprintf "truncated stream: no fin record after event %d"
             p.high_water)
      else if consumed <> String.length s then
        Error "trailing bytes after stream fin"
      else Ok p.trace

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | s -> read s

let read_prefix_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | s -> read_prefix s
