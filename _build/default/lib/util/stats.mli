(** Descriptive statistics used by the paper's Table 4.

    The paper reports, per program and strategy, the minimum, maximum, mean,
    "T-Mean" (mean over the observations between the 10th and 90th
    percentiles), and the 90th and 98th percentiles of relative overhead. *)

type summary = {
  n : int;
  min : float;
  max : float;
  mean : float;
  t_mean : float;  (** mean of observations within [p10, p90] *)
  p90 : float;
  p98 : float;
  stddev : float;
}

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [[0, 100]], by linear interpolation between
    order statistics (the common "linear" / R type-7 definition). The input
    need not be sorted; it is not modified.
    @raise Invalid_argument on an empty array or [p] outside [[0, 100]]. *)

val mean : float array -> float
(** @raise Invalid_argument on an empty array. *)

val stddev : float array -> float
(** Population standard deviation. @raise Invalid_argument on empty input. *)

val trimmed_mean : float array -> lo_pct:float -> hi_pct:float -> float
(** Mean of the observations [x] with [percentile lo_pct <= x <= percentile
    hi_pct]. Falls back to the plain mean when the trim empties the sample. *)

val summarize : float array -> summary
(** @raise Invalid_argument on an empty array. *)

val pp_summary : Format.formatter -> summary -> unit
