(** Trace generation (phase 1): run an instrumented program once and record
    its program event trace.

    This is the OCaml equivalent of the paper's assembly post-processing
    (§6): it attaches to a loaded program and

    - installs monitors for globals and static locals at start of run;
    - on every function entry, installs monitors for that activation's
      automatic variables (from debug info + the live frame pointer), and
      removes them on exit — "write monitors for automatic variables are
      installed and removed on function boundaries";
    - tracks heap objects through the allocator's event hook, preserving
      object identity across [realloc];
    - records a [Write] event for every explicit user-code store (implicit
      frame bookkeeping and allocator writes never appear).

    At {!finish}, Remove events are emitted for everything still live so
    install/remove counts balance. *)

type t

(** Where the recorder's events go: the batch path is a trace builder,
    the streaming path a {!Stream.Writer}, the checkpoint-seek path a
    bare counter. Every sink sees the identical event sequence — the
    hooks are written once against this record, which is the equivalence
    argument between the batch and streaming pipelines. *)
type sink = {
  register : Object_desc.t -> int;
  install : int -> lo:int -> hi:int -> unit;
  remove : int -> lo:int -> hi:int -> unit;
  write : lo:int -> hi:int -> pc:int -> unit;
}

val builder_sink : Trace.Builder.t -> sink
val stream_sink : Stream.Writer.t -> sink

type counters = { mutable c_events : int; mutable c_objs : int }

val counting_sink : counters -> sink
(** A sink that only advances the counters — what checkpoint seek uses to
    find "the machine just before event [w]" without building a trace.
    The counters are mutable so a checkpoint restore can pre-load them. *)

val attach : ?hint:int -> Ebp_runtime.Loader.t -> t
(** Install hooks on the loader's machine and allocator. The recorder owns
    the machine's store/enter/leave hooks and the allocator's event hook
    from this point. [hint] sizes the trace builder to the expected event
    count (see {!Trace.Builder.create}). *)

val attach_sink : sink -> Ebp_runtime.Loader.t -> t
(** As {!attach}, but events go to [sink] and {!finish} is unavailable
    (use {!finish_events}). *)

val attach_stream : Stream.Writer.t -> Ebp_runtime.Loader.t -> t
(** [attach_sink (stream_sink w)]: the streaming pipeline's entry
    point. After the run, call {!finish_events} then
    {!Stream.Writer.finish}. *)

val finish : t -> Trace.t
(** Emit final removes and freeze the trace. Call after the run
    completes. Only for {!attach}ed recorders.
    @raise Invalid_argument on a sink-attached recorder. *)

val finish_events : t -> unit
(** The sink-agnostic half of {!finish}: emit the balancing removes for
    everything still live (frames innermost first, then leaked heap
    objects, then statics). *)

(** {2 Snapshots}

    Checkpoint support: the recorder's bookkeeping (activation counts,
    live frames, live heap objects, statics) — everything needed to
    continue emitting the same event sequence after the machine is
    restored mid-run. *)

type snapshot

val snapshot : t -> snapshot

val reattach : sink -> Ebp_runtime.Loader.t -> snapshot -> t
(** Attach onto a checkpoint-restored loader: hooks are installed and the
    bookkeeping restored from [snapshot], but nothing is re-emitted (in
    particular, statics are not re-installed — they are already in the
    recorded prefix). *)

val record :
  ?hint:int -> ?fuel:int -> Ebp_runtime.Loader.t ->
  Ebp_runtime.Loader.run_result * Trace.t
(** Convenience: attach, run, finish. *)

val record_source :
  ?seed:int -> ?fuel:int -> string ->
  (Ebp_runtime.Loader.run_result * Trace.t * Ebp_lang.Debug_info.t, string) result
(** Compile MiniC source and record a run of it. *)

val record_stream :
  ?fuel:int -> Stream.Writer.t -> Ebp_runtime.Loader.t ->
  Ebp_runtime.Loader.run_result
(** Streaming convenience: {!attach_stream}, run, {!finish_events},
    {!Stream.Writer.finish}. Peak recorder-side memory is the writer's
    one pending block (O(block)), independent of trace length. *)

val record_source_stream :
  ?seed:int -> ?fuel:int -> ?block_events:int ->
  ?on_seal:Stream.Writer.on_seal -> write:(string -> unit) -> string ->
  (Ebp_runtime.Loader.run_result * int, string) result
(** Compile MiniC source and stream-record a run of it through a fresh
    {!Stream.Writer} emitting to [write]; returns the run result and the
    total event count. The completed stream {!Stream.read} back is
    byte-identical (under {!Trace.encode}) to what {!record_source}
    builds — the workload synthesizer's large traces go through here so
    generation never materializes the whole trace. *)
