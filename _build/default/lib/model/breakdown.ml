let mean_percentages overheads =
  let sums = Hashtbl.create 8 in
  let counted = ref 0 in
  List.iter
    (fun (o : Strategy_model.overhead) ->
      if o.Strategy_model.total_us > 0.0 then begin
        incr counted;
        List.iter
          (fun (var, us) ->
            let share = us /. o.Strategy_model.total_us *. 100.0 in
            let current = Option.value ~default:0.0 (Hashtbl.find_opt sums var) in
            Hashtbl.replace sums var (current +. share))
          o.Strategy_model.breakdown
      end)
    overheads;
  if !counted = 0 then []
  else
    Hashtbl.fold (fun var sum acc -> (var, sum /. float_of_int !counted) :: acc) sums []
    |> List.sort (fun (_, a) (_, b) -> Float.compare b a)

let pp ppf shares =
  List.iter (fun (var, pct) -> Format.fprintf ppf "%s=%.1f%% " var pct) shares
