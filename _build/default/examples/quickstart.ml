(* Quickstart: set a data breakpoint on a global variable.

   Compiles a small MiniC program, loads it under the CodePatch strategy
   (the paper's recommended implementation), watches the global [total],
   and prints a line for every write that modifies it — including the
   "surprise" write made through a pointer, the kind of modification a
   plain source scan for [total =] would never find.

   Run with: dune exec examples/quickstart.exe *)

let program =
  {|
int total;

void add(int x) {
  total = total + x;
}

void sneaky(int* p) {
  *p = 999;          // modifies total through an alias
}

int main() {
  add(3);
  add(4);
  sneaky(&total);
  add(10);
  print_int(total);
  return 0;
}
|}

let () =
  let dbg =
    match Ebp_core.Debugger.load_source program with
    | Ok d -> d
    | Error msg -> failwith ("compile error: " ^ msg)
  in
  (match Ebp_core.Debugger.watch_global dbg "total" with
  | Ok () -> ()
  | Error msg -> failwith msg);
  Ebp_core.Debugger.on_hit dbg (fun hit ->
      Printf.printf "breakpoint: total = %d after write at pc %d in %s (%s)\n"
        hit.Ebp_core.Debugger.value hit.pc
        (Option.value ~default:"?" hit.Ebp_core.Debugger.func)
        (match hit.Ebp_core.Debugger.instr with
        | Some i -> Ebp_isa.Instr.to_string i
        | None -> "?"));
  let result = Ebp_core.Debugger.run dbg in
  print_string result.Ebp_runtime.Loader.output;
  Printf.printf "%d hits; program wrote total from %d distinct sites\n"
    (List.length (Ebp_core.Debugger.hits dbg))
    (List.length
       (List.sort_uniq Int.compare
          (List.map (fun (h : Ebp_core.Debugger.hit) -> h.pc)
             (Ebp_core.Debugger.hits dbg))))
