  $ ebp list
  $ cat > tiny.mc <<'MC'
  > int main() {
  >   int i;
  >   int s;
  >   s = 0;
  >   for (i = 0; i < 10; i = i + 1) { s = s + i; }
  >   print_int(s);
  >   return 0;
  > }
  > MC
  $ ebp run tiny.mc 2>/dev/null
  $ cat > broken.mc <<'MC'
  > int main() {
  >   return nope;
  > }
  > MC
  $ ebp run broken.mc
  $ ebp trace tiny.mc -o tiny.trace 2>/dev/null
  $ ebp sessions --from-trace tiny.trace | tail -n 1
  $ ebp sessions tiny.mc | tail -n 1
  $ ebp disasm tiny.mc | grep -c 'sw '
  $ plain=$(ebp disasm tiny.mc | wc -l)
  $ patched=$(ebp disasm tiny.mc --patch cp | wc -l)
  $ echo $((patched - plain))
  $ ebp disasm tiny.mc --patch hcp 2>&1 >/dev/null
  $ printf 'watch global g\nbreak 10\nrun\nquit\n' | ebp debug watchme.mc
  $ cat > watchme.mc <<'MC'
  > int g;
  > int main() {
  >   int i;
  >   for (i = 0; i < 100; i = i + 1) { g = g + 1; }
  >   print_int(g);
  >   return 0;
  > }
  > MC
  $ printf 'watch global g\nbreak 10\nrun\nquit\n' | ebp debug watchme.mc | head -n 3
