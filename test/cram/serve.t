The resident trace service end to end: start a daemon, query it with
clients, check the served report is byte-identical to the batch CLI, read
its metrics, and shut it down gracefully.

  $ ebp serve --socket ebp.sock --lru-capacity 4 --queue-limit 8 \
  >   --cache-dir cache --metrics serve.ndjson 2> serve.log &

The client retries its connect, so it safely races the daemon's bind:

  $ ebp client ping --socket ebp.sock
  pong

A served session report is byte-identical to the batch pipeline:

  $ ebp client sessions circuit --socket ebp.sock > served.txt
  $ ebp sessions circuit > batch.txt
  $ diff served.txt batch.txt && echo identical
  identical
  $ tail -n 1 served.txt
  103 sessions

A second query for the same trace is a warm hit — no re-record. The
stats frame carries the live serve.* counters:

  $ ebp client sessions circuit --socket ebp.sock --tenant other > /dev/null
  $ ebp client stats --socket ebp.sock --raw > stats.ndjson
  $ grep '"name":"serve.store.warm_hits"' stats.ndjson | grep -o '"value":[0-9]*'
  "value":1
  $ grep '"name":"serve.store.cold_records"' stats.ndjson | grep -o '"value":[0-9]*'
  "value":1

Served experiment artifacts render through the same path as the batch
CLI. An unknown artifact is a service-level error, not a hang:

  $ ebp client experiment --socket ebp.sock --only tableX 2>&1
  ebp: server error (unknown-artifact): unknown artifact "tableX"
  [1]

Graceful shutdown: the daemon acks, drains, writes its metrics snapshot,
and exits zero:

  $ ebp client shutdown --socket ebp.sock
  server shutting down
  $ wait $!
  $ sed 's/pid [0-9]*/pid N/' serve.log
  ebp serve: listening on ebp.sock (pid N)
  ebp serve: drained and stopped
  $ test -f serve.ndjson && echo snapshot-written
  snapshot-written
  $ test -S ebp.sock || echo socket-unlinked
  socket-unlinked
