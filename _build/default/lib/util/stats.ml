type summary = {
  n : int;
  min : float;
  max : float;
  mean : float;
  t_mean : float;
  p90 : float;
  p98 : float;
  stddev : float;
}

let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg ("Stats." ^ name ^ ": empty input")

let percentile xs p =
  check_nonempty "percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p outside [0,100]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let mean xs =
  check_nonempty "mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let stddev xs =
  check_nonempty "stddev" xs;
  let m = mean xs in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
    /. float_of_int (Array.length xs)
  in
  sqrt var

let trimmed_mean xs ~lo_pct ~hi_pct =
  check_nonempty "trimmed_mean" xs;
  let lo = percentile xs lo_pct and hi = percentile xs hi_pct in
  let kept = Array.of_list (List.filter (fun x -> lo <= x && x <= hi) (Array.to_list xs)) in
  if Array.length kept = 0 then mean xs else mean kept

let summarize xs =
  check_nonempty "summarize" xs;
  let min = Array.fold_left Float.min xs.(0) xs in
  let max = Array.fold_left Float.max xs.(0) xs in
  {
    n = Array.length xs;
    min;
    max;
    mean = mean xs;
    t_mean = trimmed_mean xs ~lo_pct:10.0 ~hi_pct:90.0;
    p90 = percentile xs 90.0;
    p98 = percentile xs 98.0;
    stddev = stddev xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "{n=%d; min=%.2f; max=%.2f; mean=%.2f; t_mean=%.2f; p90=%.2f; p98=%.2f}"
    s.n s.min s.max s.mean s.t_mean s.p90 s.p98
