lib/core/experiment.mli: Ebp_model Ebp_sessions Ebp_wms Ebp_workloads
