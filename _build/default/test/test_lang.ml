(* Tests for Ebp_lang: lexer, parser, semantic analysis, and — through the
   runtime — end-to-end correctness of generated code. *)

module Token = Ebp_lang.Token
module Lexer = Ebp_lang.Lexer
module Parser = Ebp_lang.Parser
module Ast = Ebp_lang.Ast
module Sema = Ebp_lang.Sema
module Compiler = Ebp_lang.Compiler
module Debug_info = Ebp_lang.Debug_info
module Loader = Ebp_runtime.Loader

(* Run a MiniC program and return its printed output lines as ints. *)
let run_ints ?seed src =
  match Loader.run_source ?seed src with
  | Error msg -> Alcotest.failf "compile error: %s" msg
  | Ok r -> (
      (match r.Loader.runtime_error with
      | Some e -> Alcotest.failf "runtime error: %s" e
      | None -> ());
      match r.Loader.status with
      | Ebp_machine.Machine.Halted 0 ->
          List.filter_map int_of_string_opt
            (String.split_on_char '\n' r.Loader.output)
      | Ebp_machine.Machine.Halted c -> Alcotest.failf "exit code %d" c
      | Ebp_machine.Machine.Out_of_fuel -> Alcotest.fail "out of fuel"
      | Ebp_machine.Machine.Machine_error m -> Alcotest.fail m)

let check_prints name src expected = Alcotest.(check (list int)) name expected (run_ints src)

let expect_compile_error name src fragment =
  match Compiler.compile src with
  | Ok _ -> Alcotest.failf "%s: expected a compile error" name
  | Error msg ->
      let contains s sub =
        let n = String.length sub in
        let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      if not (contains msg fragment) then
        Alcotest.failf "%s: error %S does not mention %S" name msg fragment

(* --- Lexer --- *)

let test_lexer_tokens () =
  match Lexer.tokenize "int x = 0x1F + 42; // comment\n/* block\n*/ x <= y" with
  | Error e -> Alcotest.fail e
  | Ok spanned ->
      let tokens = List.map (fun s -> s.Lexer.token) spanned in
      Alcotest.(check bool) "sequence" true
        (tokens
        = [ Token.Kw_int; Token.Ident "x"; Token.Assign; Token.Int_lit 31;
            Token.Plus; Token.Int_lit 42; Token.Semi; Token.Ident "x";
            Token.Le; Token.Ident "y"; Token.Eof ])

let test_lexer_line_numbers () =
  match Lexer.tokenize "int\nx\n=\n1;" with
  | Error e -> Alcotest.fail e
  | Ok spanned ->
      Alcotest.(check int) "x on line 2" 2 (List.nth spanned 1).Lexer.line;
      Alcotest.(check int) "1 on line 4" 4 (List.nth spanned 3).Lexer.line

let test_lexer_errors () =
  (match Lexer.tokenize "int $bad;" with
  | Error msg -> Alcotest.(check bool) "mentions line" true (String.sub msg 0 4 = "line")
  | Ok _ -> Alcotest.fail "expected error");
  match Lexer.tokenize "/* unterminated" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unterminated comment accepted"

(* --- Parser --- *)

let test_parser_expression_precedence () =
  (* 2 + 3 * 4 parses as 2 + (3 * 4); verified by evaluation. *)
  check_prints "precedence"
    "int main() { print_int(2 + 3 * 4); print_int((2 + 3) * 4); return 0; }"
    [ 14; 20 ]

let test_parser_rejects_garbage () =
  (match Parser.parse "int main() { 1 +; }" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad expression");
  (match Parser.parse "int main() { int a[0]; }" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted zero-size array");
  match Parser.parse "int f(" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted truncated input"

let test_parser_assignment_targets () =
  (match Parser.parse "int main() { 1 = 2; }" with
  | Error msg ->
      Alcotest.(check bool) "not assignable" true
        (String.length msg > 0)
  | Ok _ -> Alcotest.fail "accepted literal assignment");
  match Parser.parse "int main() { int x; x = 1; return x; }" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_parser_structure () =
  match Parser.parse "int g; int a[3]; int f(int x) { return x; } int main() { return 0; }" with
  | Error e -> Alcotest.fail e
  | Ok prog ->
      Alcotest.(check int) "globals" 2 (List.length prog.Ast.globals);
      Alcotest.(check int) "functions" 2 (List.length prog.Ast.funcs);
      let arr = List.nth prog.Ast.globals 1 in
      Alcotest.(check (option int)) "array size" (Some 3) arr.Ast.v_array

let test_parse_expr_helper () =
  match Parser.parse_expr "1 + f(x, *p) * a[2]" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

(* --- Sema errors --- *)

let test_sema_undefined_var () =
  expect_compile_error "undefined var" "int main() { return nope; }" "undefined variable"

let test_sema_undefined_func () =
  expect_compile_error "undefined func" "int main() { return nope(); }" "undefined function"

let test_sema_arity () =
  expect_compile_error "arity"
    "int f(int a, int b) { return a + b; } int main() { return f(1); }"
    "expects 2 argument(s)"

let test_sema_builtin_arity () =
  expect_compile_error "builtin arity" "int main() { free(1, 2); return 0; }"
    "expects 1 argument"

let test_sema_no_main () = expect_compile_error "no main" "int f() { return 1; }" "no main"

let test_sema_main_params () =
  expect_compile_error "main params" "int main(int argc) { return 0; }"
    "main must take no parameters"

let test_sema_break_outside_loop () =
  expect_compile_error "stray break" "int main() { break; }" "break outside a loop"

let test_sema_too_many_params () =
  expect_compile_error "7 params"
    "int f(int a, int b, int c, int d, int e, int f, int g) { return 0; } int main() { return 0; }"
    "more than 6 parameters"

let test_sema_nonconst_global_init () =
  expect_compile_error "global init" "int g = rand(5); int main() { return 0; }"
    "must be a constant"

let test_sema_duplicate_function () =
  expect_compile_error "dup func"
    "int f() { return 1; } int f() { return 2; } int main() { return 0; }"
    "duplicate function"

let test_sema_deref_int () =
  expect_compile_error "deref int" "int main() { int x; return *x; }"
    "cannot dereference"

let test_sema_assign_to_array () =
  expect_compile_error "assign array" "int a[3]; int main() { a = 0; return 0; }"
    "cannot assign to an array"

let test_sema_ptr_plus_ptr () =
  expect_compile_error "ptr+ptr"
    "int main() { int* p; int* q; return (p + q) == 0; }" "cannot add two pointers"

let test_sema_const_eval () =
  Alcotest.(check (option int)) "arith" (Some 14)
    (Result.get_ok (Parser.parse_expr "2 + 3 * 4") |> Sema.const_eval);
  Alcotest.(check (option int)) "shift" (Some 8)
    (Result.get_ok (Parser.parse_expr "1 << 3") |> Sema.const_eval);
  Alcotest.(check (option int)) "non-const" None
    (Result.get_ok (Parser.parse_expr "f(1)") |> Sema.const_eval)

(* --- end-to-end codegen correctness --- *)

let test_codegen_arith_ops () =
  check_prints "arith"
    {|int main() {
        print_int(17 / 5); print_int(17 % 5); print_int(0 - 17 / 5);
        print_int(6 & 3); print_int(6 | 3); print_int(6 ^ 3);
        print_int(1 << 10); print_int(1024 >> 3); print_int(~0);
        return 0; }|}
    [ 3; 2; -3; 2; 7; 5; 1024; 128; -1 ]

let test_codegen_comparisons () =
  check_prints "comparisons"
    {|int main() {
        print_int(3 < 4); print_int(4 < 3); print_int(3 <= 3);
        print_int(3 > 4); print_int(4 > 3); print_int(4 >= 4);
        print_int(5 == 5); print_int(5 != 5);
        return 0; }|}
    [ 1; 0; 1; 0; 1; 1; 1; 0 ]

let test_codegen_short_circuit () =
  (* The right operand must not evaluate when the left decides. *)
  check_prints "short circuit"
    {|int calls;
      int bump() { calls = calls + 1; return 1; }
      int main() {
        print_int(0 && bump());
        print_int(calls);
        print_int(1 || bump());
        print_int(calls);
        print_int(1 && bump());
        print_int(calls);
        print_int(2 && 3);
        return 0; }|}
    [ 0; 0; 1; 0; 1; 1; 1 ]

let test_codegen_unary () =
  check_prints "unary"
    "int main() { print_int(-5); print_int(!0); print_int(!7); print_int(- -3); return 0; }"
    [ -5; 1; 0; 3 ]

let test_codegen_recursion () =
  check_prints "fib"
    {|int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
      int main() { print_int(fib(15)); return 0; }|}
    [ 610 ]

let test_codegen_mutual_recursion () =
  check_prints "mutual"
    {|int is_even(int n) { if (n == 0) { return 1; } return is_odd(n - 1); }
      int is_odd(int n) { if (n == 0) { return 0; } return is_even(n - 1); }
      int main() { print_int(is_even(10)); print_int(is_odd(10)); return 0; }|}
    [ 1; 0 ]

let test_codegen_pointers () =
  check_prints "pointers"
    {|void set(int* p, int v) { *p = v; }
      int main() {
        int x;
        int* p;
        p = &x;
        set(p, 41);
        *p = *p + 1;
        print_int(x);
        return 0; }|}
    [ 42 ]

let test_codegen_pointer_arith () =
  check_prints "ptr arith"
    {|int a[5];
      int main() {
        int* p;
        int* q;
        int i;
        for (i = 0; i < 5; i = i + 1) { a[i] = i * 10; }
        p = a;
        q = p + 3;
        print_int(*q);
        print_int(*(q - 2));
        print_int(q - p);
        p = p + 1;
        print_int(*p);
        return 0; }|}
    [ 30; 10; 3; 10 ]

let test_codegen_arrays_local () =
  check_prints "local array"
    {|int main() {
        int a[4];
        int i;
        int s;
        for (i = 0; i < 4; i = i + 1) { a[i] = i + 1; }
        s = 0;
        for (i = 0; i < 4; i = i + 1) { s = s + a[i]; }
        print_int(s);
        return 0; }|}
    [ 10 ]

let test_codegen_globals_init () =
  check_prints "global init"
    {|int g = 5 * 8 + 2;
      int h;
      int main() { print_int(g); print_int(h); return 0; }|}
    [ 42; 0 ]

let test_codegen_statics_persist () =
  check_prints "static persists"
    {|int counter() { static int n = 100; n = n + 1; return n; }
      int main() {
        print_int(counter()); print_int(counter()); print_int(counter());
        return 0; }|}
    [ 101; 102; 103 ]

let test_codegen_shadowing () =
  check_prints "shadowing"
    {|int main() {
        int x;
        x = 1;
        {
          int x;
          x = 2;
          print_int(x);
        }
        print_int(x);
        return 0; }|}
    [ 2; 1 ]

let test_codegen_for_break_continue () =
  check_prints "break/continue"
    {|int main() {
        int i;
        int s;
        s = 0;
        for (i = 0; i < 100; i = i + 1) {
          if (i % 2 == 0) { continue; }
          if (i > 10) { break; }
          s = s + i;
        }
        print_int(s);   // 1+3+5+7+9 = 25
        print_int(i);   // 11, loop variable after break
        return 0; }|}
    [ 25; 11 ]

let test_codegen_while () =
  check_prints "while"
    {|int main() {
        int n;
        int steps;
        n = 27;
        steps = 0;
        while (n != 1) {
          if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
          steps = steps + 1;
        }
        print_int(steps);
        return 0; }|}
    [ 111 ]

let test_codegen_six_params () =
  check_prints "six params"
    {|int f(int a, int b, int c, int d, int e, int g) {
        return a + 10 * b + 100 * c + 1000 * d + 10000 * e + 100000 * g;
      }
      int main() { print_int(f(1, 2, 3, 4, 5, 6)); return 0; }|}
    [ 654321 ]

let test_codegen_deep_expression () =
  (* Forces the register-stack spill path (depth > 8). *)
  check_prints "deep nesting"
    {|int main() {
        print_int(1 + (2 + (3 + (4 + (5 + (6 + (7 + (8 + (9 + (10 + (11 + 12)))))))))));
        print_int(((((((((1 + 2) * 3) + 4) * 5) + 6) * 7) + 8) * 9));
        return 0; }|}
    [ 78; 4545 ]

let test_codegen_call_in_deep_expression () =
  check_prints "call under depth"
    {|int id(int x) { return x; }
      int main() {
        print_int(id(1) + (id(2) + (id(3) + (id(4) + (id(5) + (id(6) + (id(7) + (id(8) + id(9)))))))));
        return 0; }|}
    [ 45 ]

let test_codegen_nested_calls () =
  check_prints "nested calls"
    {|int add(int a, int b) { return a + b; }
      int main() { print_int(add(add(1, 2), add(add(3, 4), 5))); return 0; }|}
    [ 15 ]

let test_codegen_void_function () =
  check_prints "void"
    {|int g;
      void set_g(int v) { g = v; }
      void nop() { return; }
      int main() { set_g(9); nop(); print_int(g); return 0; }|}
    [ 9 ]

let test_codegen_fallthrough_returns_zero () =
  check_prints "fallthrough"
    {|int f(int x) { if (x > 0) { return 7; } }
      int main() { print_int(f(1)); print_int(f(0)); return 0; }|}
    [ 7; 0 ]

let test_codegen_exprs_as_stmts () =
  check_prints "expression statement"
    {|int calls;
      int bump() { calls = calls + 1; return calls; }
      int main() { bump(); bump(); print_int(calls); return 0; }|}
    [ 2 ]

(* --- debug info --- *)

let compile_ok src =
  match Compiler.compile src with
  | Ok c -> c
  | Error e -> Alcotest.failf "compile error: %s" e

let test_debug_info_layout () =
  let c =
    compile_ok
      {|int g;
        int arr[10];
        int f(int p) { int x; int buf[3]; static int s; s = p; x = s; return x + buf[0]; }
        int main() { return f(1); }|}
  in
  let d = c.Compiler.debug in
  (* Globals are laid out from data_base, word-aligned, in order. *)
  (match d.Debug_info.globals with
  | [ g; arr ] ->
      Alcotest.(check int) "g addr" Ebp_lang.Layout.data_base g.Debug_info.g_addr;
      Alcotest.(check int) "g size" 4 g.Debug_info.g_size;
      Alcotest.(check int) "arr addr" (Ebp_lang.Layout.data_base + 4) arr.Debug_info.g_addr;
      Alcotest.(check int) "arr size" 40 arr.Debug_info.g_size;
      Alcotest.(check bool) "arr flagged" true arr.Debug_info.g_is_array
  | _ -> Alcotest.fail "expected two globals");
  (* Function f: param p, local x, array buf, static s. *)
  match Debug_info.func_by_name d "f" with
  | None -> Alcotest.fail "no f"
  | Some f ->
      Alcotest.(check int) "var count" 4 (List.length f.Debug_info.vars);
      let var name =
        List.find (fun v -> v.Debug_info.var_name = name) f.Debug_info.vars
      in
      Alcotest.(check bool) "p is param" true (var "p").Debug_info.is_param;
      (match (var "p").Debug_info.location with
      | Debug_info.Frame off -> Alcotest.(check bool) "p below fp" true (off < 0)
      | Debug_info.Static _ -> Alcotest.fail "param should be on the frame");
      (match (var "s").Debug_info.location with
      | Debug_info.Static addr ->
          Alcotest.(check bool) "static in data segment" true
            (addr >= Ebp_lang.Layout.data_base && addr < d.Debug_info.data_end)
      | Debug_info.Frame _ -> Alcotest.fail "static should not be on the frame");
      Alcotest.(check int) "buf size" 12 (var "buf").Debug_info.size;
      (* Frame slots must not overlap. *)
      let frame_slots =
        List.filter_map
          (fun v ->
            match v.Debug_info.location with
            | Debug_info.Frame off -> Some (off, v.Debug_info.size)
            | Debug_info.Static _ -> None)
          f.Debug_info.vars
      in
      let sorted = List.sort (fun (a, _) (b, _) -> Int.compare a b) frame_slots in
      let rec no_overlap = function
        | (o1, s1) :: ((o2, _) :: _ as rest) ->
            if o1 + s1 > o2 then Alcotest.fail "frame slots overlap";
            no_overlap rest
        | _ -> ()
      in
      no_overlap sorted

let test_debug_info_function_ids () =
  let c =
    compile_ok "int a() { return 1; } int b() { return 2; } int main() { return 0; }"
  in
  let d = c.Compiler.debug in
  Array.iteri
    (fun i f -> Alcotest.(check int) "id matches index" i f.Debug_info.id)
    d.Debug_info.functions

let test_no_variables_in_registers () =
  (* Every read of a variable loads from memory: two reads of x in a row
     must produce two loads. This pins the paper's "no variables were
     allocated to registers" property. *)
  let c = compile_ok "int main() { int x; x = 1; return x + x; }" in
  let p = c.Compiler.program in
  let loads = ref 0 in
  Ebp_isa.Program.fold
    (fun _ item acc ->
      (match item.Ebp_isa.Program.instr with
      | Ebp_isa.Instr.Lw (_, base, _) when Ebp_isa.Reg.equal base Ebp_isa.Reg.fp ->
          incr loads
      | _ -> ());
      acc)
    p ();
  Alcotest.(check bool) "two fp-relative loads for x + x" true (!loads >= 2)


(* --- differential fuzzing: compiled code vs a reference evaluator --- *)

(* Random integer expressions over two variables, avoiding division (whose
   by-zero behaviour differs between the reference and the machine) and
   shifts (whose out-of-range counts are masked differently). The compiled
   program must print exactly what the OCaml reference computes, 32-bit
   wrapped. *)
type fuzz_expr =
  | F_const of int
  | F_var_a
  | F_var_b
  | F_neg of fuzz_expr
  | F_not of fuzz_expr
  | F_add of fuzz_expr * fuzz_expr
  | F_sub of fuzz_expr * fuzz_expr
  | F_mul of fuzz_expr * fuzz_expr
  | F_and of fuzz_expr * fuzz_expr
  | F_or of fuzz_expr * fuzz_expr
  | F_xor of fuzz_expr * fuzz_expr
  | F_lt of fuzz_expr * fuzz_expr
  | F_eq of fuzz_expr * fuzz_expr
  | F_land of fuzz_expr * fuzz_expr
  | F_lor of fuzz_expr * fuzz_expr

let rec fuzz_to_c = function
  | F_const c -> if c < 0 then Printf.sprintf "(0 - %d)" (-c) else string_of_int c
  | F_var_a -> "a"
  | F_var_b -> "b"
  | F_neg e -> Printf.sprintf "(-%s)" (fuzz_to_c e)
  | F_not e -> Printf.sprintf "(!%s)" (fuzz_to_c e)
  | F_add (x, y) -> Printf.sprintf "(%s + %s)" (fuzz_to_c x) (fuzz_to_c y)
  | F_sub (x, y) -> Printf.sprintf "(%s - %s)" (fuzz_to_c x) (fuzz_to_c y)
  | F_mul (x, y) -> Printf.sprintf "(%s * %s)" (fuzz_to_c x) (fuzz_to_c y)
  | F_and (x, y) -> Printf.sprintf "(%s & %s)" (fuzz_to_c x) (fuzz_to_c y)
  | F_or (x, y) -> Printf.sprintf "(%s | %s)" (fuzz_to_c x) (fuzz_to_c y)
  | F_xor (x, y) -> Printf.sprintf "(%s ^ %s)" (fuzz_to_c x) (fuzz_to_c y)
  | F_lt (x, y) -> Printf.sprintf "(%s < %s)" (fuzz_to_c x) (fuzz_to_c y)
  | F_eq (x, y) -> Printf.sprintf "(%s == %s)" (fuzz_to_c x) (fuzz_to_c y)
  | F_land (x, y) -> Printf.sprintf "(%s && %s)" (fuzz_to_c x) (fuzz_to_c y)
  | F_lor (x, y) -> Printf.sprintf "(%s || %s)" (fuzz_to_c x) (fuzz_to_c y)

let wrap32 v =
  let v = v land 0xFFFFFFFF in
  if v land 0x80000000 <> 0 then v - 0x100000000 else v

let rec fuzz_eval ~a ~b = function
  | F_const c -> wrap32 c
  | F_var_a -> a
  | F_var_b -> b
  | F_neg e -> wrap32 (-fuzz_eval ~a ~b e)
  | F_not e -> if fuzz_eval ~a ~b e = 0 then 1 else 0
  | F_add (x, y) -> wrap32 (fuzz_eval ~a ~b x + fuzz_eval ~a ~b y)
  | F_sub (x, y) -> wrap32 (fuzz_eval ~a ~b x - fuzz_eval ~a ~b y)
  | F_mul (x, y) -> wrap32 (fuzz_eval ~a ~b x * fuzz_eval ~a ~b y)
  | F_and (x, y) -> fuzz_eval ~a ~b x land fuzz_eval ~a ~b y
  | F_or (x, y) -> fuzz_eval ~a ~b x lor fuzz_eval ~a ~b y
  | F_xor (x, y) -> fuzz_eval ~a ~b x lxor fuzz_eval ~a ~b y
  | F_lt (x, y) -> if fuzz_eval ~a ~b x < fuzz_eval ~a ~b y then 1 else 0
  | F_eq (x, y) -> if fuzz_eval ~a ~b x = fuzz_eval ~a ~b y then 1 else 0
  | F_land (x, y) ->
      if fuzz_eval ~a ~b x <> 0 && fuzz_eval ~a ~b y <> 0 then 1 else 0
  | F_lor (x, y) ->
      if fuzz_eval ~a ~b x <> 0 || fuzz_eval ~a ~b y <> 0 then 1 else 0

let fuzz_gen =
  let open QCheck2.Gen in
  sized_size (int_range 1 24)
  @@ fix (fun self n ->
         if n <= 1 then
           oneof
             [ map (fun c -> F_const c) (int_range (-100000) 100000);
               return F_var_a; return F_var_b ]
         else
           let sub = self (n / 2) in
           oneof
             [
               map (fun e -> F_neg e) (self (n - 1));
               map (fun e -> F_not e) (self (n - 1));
               map2 (fun x y -> F_add (x, y)) sub sub;
               map2 (fun x y -> F_sub (x, y)) sub sub;
               map2 (fun x y -> F_mul (x, y)) sub sub;
               map2 (fun x y -> F_and (x, y)) sub sub;
               map2 (fun x y -> F_or (x, y)) sub sub;
               map2 (fun x y -> F_xor (x, y)) sub sub;
               map2 (fun x y -> F_lt (x, y)) sub sub;
               map2 (fun x y -> F_eq (x, y)) sub sub;
               map2 (fun x y -> F_land (x, y)) sub sub;
               map2 (fun x y -> F_lor (x, y)) sub sub;
             ])

let prop_compiled_matches_reference =
  QCheck2.Test.make ~name:"compiled expressions match reference evaluator"
    ~count:150
    QCheck2.Gen.(triple fuzz_gen (int_range (-1000) 1000) (int_range (-1000) 1000))
    (fun (e, a, b) ->
      let src =
        Printf.sprintf
          "int main() { int a; int b; a = %d; b = %d; print_int(%s); return 0; }"
          a b (fuzz_to_c e)
      in
      match run_ints src with
      | [ got ] -> got = fuzz_eval ~a ~b e
      | _ -> false)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "lang"
    [
      ("fuzz", [ q prop_compiled_matches_reference ]);
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "line numbers" `Quick test_lexer_line_numbers;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parser_expression_precedence;
          Alcotest.test_case "rejects garbage" `Quick test_parser_rejects_garbage;
          Alcotest.test_case "assignment targets" `Quick test_parser_assignment_targets;
          Alcotest.test_case "structure" `Quick test_parser_structure;
          Alcotest.test_case "parse_expr" `Quick test_parse_expr_helper;
        ] );
      ( "sema",
        [
          Alcotest.test_case "undefined var" `Quick test_sema_undefined_var;
          Alcotest.test_case "undefined func" `Quick test_sema_undefined_func;
          Alcotest.test_case "arity" `Quick test_sema_arity;
          Alcotest.test_case "builtin arity" `Quick test_sema_builtin_arity;
          Alcotest.test_case "no main" `Quick test_sema_no_main;
          Alcotest.test_case "main params" `Quick test_sema_main_params;
          Alcotest.test_case "stray break" `Quick test_sema_break_outside_loop;
          Alcotest.test_case "param limit" `Quick test_sema_too_many_params;
          Alcotest.test_case "global init const" `Quick test_sema_nonconst_global_init;
          Alcotest.test_case "duplicate function" `Quick test_sema_duplicate_function;
          Alcotest.test_case "deref int" `Quick test_sema_deref_int;
          Alcotest.test_case "assign to array" `Quick test_sema_assign_to_array;
          Alcotest.test_case "ptr+ptr" `Quick test_sema_ptr_plus_ptr;
          Alcotest.test_case "const eval" `Quick test_sema_const_eval;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "arith ops" `Quick test_codegen_arith_ops;
          Alcotest.test_case "comparisons" `Quick test_codegen_comparisons;
          Alcotest.test_case "short circuit" `Quick test_codegen_short_circuit;
          Alcotest.test_case "unary" `Quick test_codegen_unary;
          Alcotest.test_case "recursion" `Quick test_codegen_recursion;
          Alcotest.test_case "mutual recursion" `Quick test_codegen_mutual_recursion;
          Alcotest.test_case "pointers" `Quick test_codegen_pointers;
          Alcotest.test_case "pointer arith" `Quick test_codegen_pointer_arith;
          Alcotest.test_case "local arrays" `Quick test_codegen_arrays_local;
          Alcotest.test_case "globals init" `Quick test_codegen_globals_init;
          Alcotest.test_case "statics persist" `Quick test_codegen_statics_persist;
          Alcotest.test_case "shadowing" `Quick test_codegen_shadowing;
          Alcotest.test_case "for/break/continue" `Quick test_codegen_for_break_continue;
          Alcotest.test_case "while" `Quick test_codegen_while;
          Alcotest.test_case "six params" `Quick test_codegen_six_params;
          Alcotest.test_case "deep expression" `Quick test_codegen_deep_expression;
          Alcotest.test_case "call under depth" `Quick test_codegen_call_in_deep_expression;
          Alcotest.test_case "nested calls" `Quick test_codegen_nested_calls;
          Alcotest.test_case "void functions" `Quick test_codegen_void_function;
          Alcotest.test_case "fallthrough return" `Quick
            test_codegen_fallthrough_returns_zero;
          Alcotest.test_case "expression statements" `Quick test_codegen_exprs_as_stmts;
        ] );
      ( "debug info",
        [
          Alcotest.test_case "layout" `Quick test_debug_info_layout;
          Alcotest.test_case "function ids" `Quick test_debug_info_function_ids;
          Alcotest.test_case "no register variables" `Quick test_no_variables_in_registers;
        ] );
    ]
