(* Typed intermediate representation produced by semantic analysis.

   Name resolution is complete (variables refer to slot or global indices),
   pointer arithmetic scaling is explicit, [for] loops are desugared into a
   single loop node with an explicit step (so that [continue] can target
   it), and calls are split into user calls and runtime builtins. *)

type ty = Ast.ty

type builtin =
  | B_malloc
  | B_free
  | B_realloc
  | B_print_int
  | B_print_char
  | B_rand  (* rand(n): uniform in [0, n) *)
  | B_srand
  | B_exit  (* exit(code): stop the program immediately *)

type var_ref =
  | V_local of int  (* slot index within the enclosing function *)
  | V_global of int  (* index into the program's globals table *)

type texpr = { te : texpr_node; ty : ty }

and texpr_node =
  | T_int of int
  | T_load of tlvalue  (* read a scalar variable or memory word *)
  | T_addr of tlvalue  (* address-of; also array-to-pointer decay *)
  | T_unop of Ast.unop * texpr
  | T_binop of Ast.binop * texpr * texpr  (* scaling already applied *)
  | T_call of int * texpr list  (* function id *)
  | T_builtin of builtin * texpr list

and tlvalue =
  | TL_var of var_ref
  | TL_mem of texpr  (* store/load through a computed address *)

type tstmt =
  | TS_store of tlvalue * texpr
  | TS_expr of texpr
  | TS_if of texpr * tstmt list * tstmt list
  | TS_loop of { cond : texpr option; body : tstmt list; step : tstmt list }
      (* while/for; [step] runs on normal fallthrough and on [continue] *)
  | TS_return of texpr option
  | TS_break
  | TS_continue

type slot = {
  sl_name : string;  (* unique within the function (shadowing renamed) *)
  sl_source_name : string;  (* name as written *)
  sl_ty : ty;  (* element type for arrays *)
  sl_words : int;  (* 1 for scalars *)
  sl_is_array : bool;
  sl_static : bool;
  sl_param_index : int;  (* [-1] when not a parameter *)
  sl_static_init : int;  (* load-time value for statics; 0 otherwise *)
}

type tfunc = {
  tf_id : int;
  tf_name : string;
  tf_ret : ty;
  tf_param_count : int;
  tf_slots : slot array;  (* params first, then locals and statics *)
  tf_body : tstmt list;
}

type tglobal = {
  tg_name : string;
  tg_ty : ty;
  tg_words : int;
  tg_is_array : bool;
  tg_init : int;  (* load-time value; 0 for arrays *)
}

type tprogram = { t_globals : tglobal array; t_funcs : tfunc array }

let builtin_name = function
  | B_malloc -> "malloc"
  | B_free -> "free"
  | B_realloc -> "realloc"
  | B_print_int -> "print_int"
  | B_print_char -> "print_char"
  | B_rand -> "rand"
  | B_srand -> "srand"
  | B_exit -> "exit"

let builtin_of_name = function
  | "malloc" -> Some B_malloc
  | "free" -> Some B_free
  | "realloc" -> Some B_realloc
  | "print_int" -> Some B_print_int
  | "print_char" -> Some B_print_char
  | "rand" -> Some B_rand
  | "srand" -> Some B_srand
  | "exit" -> Some B_exit
  | _ -> None

(* Builtin signatures: argument count and result type. Argument types are
   checked loosely (int/pointer interchange is permitted, K&R style). *)
let builtin_arity = function
  | B_malloc | B_free | B_print_int | B_print_char | B_rand | B_srand | B_exit -> 1
  | B_realloc -> 2

let builtin_ret = function
  | B_malloc | B_realloc -> Ast.T_ptr Ast.T_int
  | B_free | B_print_int | B_print_char | B_srand | B_exit -> Ast.T_void
  | B_rand -> Ast.T_int
