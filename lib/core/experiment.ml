module Workload = Ebp_workloads.Workload
module Session = Ebp_sessions.Session
module Counts = Ebp_sessions.Counts
module Replay = Ebp_sessions.Replay
module Timing = Ebp_wms.Timing
module Model = Ebp_model.Strategy_model
module Stats = Ebp_util.Stats
module Text_table = Ebp_util.Text_table
module Bar_chart = Ebp_util.Bar_chart
module Obs_span = Ebp_obs.Span

type program_data = {
  run : Workload.run;
  sessions : (Session.t * Counts.t) list;
}

type t = {
  programs : program_data list;
  timing : Timing.t;
  page_sizes : int list;
  approaches : Model.approach list;
}

(* Granularities an approach needs counting data for (VM page sizes and VB
   view units), including under [Remote]. *)
let rec approach_sizes = function
  | Model.VM ps | Model.VB ps -> [ ps ]
  | Model.Remote a -> approach_sizes a
  | Model.NH | Model.TP | Model.CP -> []

let rec uses_vb = function
  | Model.VB _ -> true
  | Model.Remote a -> uses_vb a
  | Model.NH | Model.VM _ | Model.TP | Model.CP -> false

let run ?(workloads = Workload.all) ?(timing = Timing.sparcstation2)
    ?(page_sizes = Replay.default_page_sizes) ?approaches ?fuel ?(domains = 1)
    ?cache_dir ?engine ?(log = fun (_ : string) -> ()) () =
  let approaches =
    match approaches with
    | Some l -> l
    | None ->
        Model.NH
        :: List.map (fun ps -> Model.VM ps) page_sizes
        @ [ Model.TP; Model.CP ]
        @ List.map (fun ps -> Model.VB ps) page_sizes
  in
  (* Replay must count at every granularity the approaches reference. *)
  let page_sizes =
    page_sizes
    @ List.filter
        (fun ps -> not (List.mem ps page_sizes))
        (List.sort_uniq Int.compare (List.concat_map approach_sizes approaches))
  in
  (* [engine] is now an override: [None] (the default) hands each
     workload's engine choice to the cost-based {!Ebp_sessions.Planner},
     which prices scan vs index-build vs cached-index reuse per trace.
     Either way each workload's write index — like the trace it derives
     from — is a pure function of cached inputs, so it shares the trace
     cache: loaded when present, stored (best-effort) after a build. *)
  let index_key run = Workload.cache_key ?fuel run.Workload.workload in
  let index_for engine pool run =
    match engine with
    | Replay.Scan -> None
    | Replay.Indexed -> (
        let build () =
          Ebp_trace.Write_index.build ~pool ~page_sizes run.Workload.trace
        in
        match cache_dir with
        | None -> Some (build ())
        | Some dir -> (
            let key = index_key run in
            match Ebp_trace.Trace_cache.lookup_index ~dir ~key ~page_sizes with
            | Some index -> Some index
            | None ->
                let index = build () in
                (match
                   Ebp_trace.Trace_cache.store_index ~dir ~key ~page_sizes index
                 with
                | Ok () | Error _ -> ());
                Some index))
  in
  let index_source run =
    match cache_dir with
    | None -> Ebp_sessions.Planner.no_index_cache
    | Some dir ->
        let key = index_key run in
        {
          Ebp_sessions.Planner.cached =
            Ebp_trace.Trace_cache.index_cached ~dir ~key ~page_sizes;
          load =
            (fun () ->
              Ebp_trace.Trace_cache.lookup_index ~dir ~key ~page_sizes);
          store =
            (fun index ->
              match
                Ebp_trace.Trace_cache.store_index ~dir ~key ~page_sizes index
              with
              | Ok () | Error _ -> ());
        }
  in
  (* The top-level span brackets the whole experiment; the per-workload
     phase spans below carve it up on the trace-event timeline. *)
  Obs_span.with_span "experiment.run" @@ fun () ->
  Ebp_util.Domain_pool.with_pool ~domains (fun pool ->
      (* Phase 1, parallel across workloads: each task compiles and runs
         (or cache-loads) one workload; nothing is shared between tasks. *)
      let recordings =
        Ebp_util.Domain_pool.map pool
          (fun w ->
            Obs_span.with_span
              ~args:[ ("workload", w.Workload.name) ]
              "phase1.workload"
            @@ fun () ->
            match cache_dir with
            | Some dir -> Workload.record_cached ?fuel ~cache_dir:dir w
            | None -> Workload.record ?fuel w)
          workloads
      in
      (* Log after the batch, in workload order, so output is deterministic
         whatever the scheduling. *)
      List.iter
        (fun recording ->
          match recording with
          | Error _ -> ()
          | Ok run ->
              log
                (Printf.sprintf "phase 1 %-10s %s (%d events)"
                   run.Workload.workload.Workload.name
                   (if run.Workload.result = None then "cache hit, no execution"
                    else "traced")
                   (Ebp_trace.Trace.length run.Workload.trace)))
        recordings;
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | Error msg :: _ -> Error msg
        | Ok run :: rest -> collect (run :: acc) rest
      in
      (* Phase 2: workloads in order, each replay sharded over the pool —
         session populations are large, so the intra-workload split keeps
         every domain busy even with few workloads. *)
      Result.map
        (fun runs ->
          {
            programs =
              List.map
                (fun run ->
                  let sessions =
                    Obs_span.with_span
                      ~args:
                        [ ("workload", run.Workload.workload.Workload.name) ]
                      "phase2.workload"
                    @@ fun () ->
                    match engine with
                    | Some engine ->
                        Replay.discover_and_replay ~page_sizes ~pool ~engine
                          ?index:(index_for engine pool run)
                          run.Workload.trace
                    | None ->
                        Ebp_sessions.Planner.replay ~page_sizes ~pool
                          ~index_source:(index_source run)
                          run.Workload.trace
                  in
                  log
                    (Printf.sprintf "phase 2 %-10s %d sessions replayed"
                       run.Workload.workload.Workload.name
                       (List.length sessions));
                  { run; sessions })
                runs;
            timing;
            page_sizes;
            approaches;
          })
        (collect [] recordings))

let relative_overheads t pd approach =
  let base_ms = pd.run.Workload.base_ms in
  Array.of_list
    (List.map
       (fun (_, counts) ->
         Model.relative (Model.overhead t.timing approach counts) ~base_ms)
       pd.sessions)

(* --- Table 1 --- *)

let table1 t =
  let kind_count sessions kind =
    List.length (List.filter (fun (s, _) -> Session.kind s = kind) sessions)
  in
  let rows =
    List.map
      (fun pd ->
        pd.run.Workload.workload.Workload.name
        :: List.map
             (fun kind -> string_of_int (kind_count pd.sessions kind))
             Session.all_kinds
        @ [ Printf.sprintf "%.0f" pd.run.Workload.base_ms ])
      t.programs
  in
  "Table 1: monitor sessions studied (with >= 1 hit) and base execution time\n"
  ^ Text_table.render
      ~header:
        ([ "Program" ]
        @ List.map Session.kind_name Session.all_kinds
        @ [ "Exec (ms)" ])
      ~rows ()

(* --- Table 2 --- *)

let table2 t =
  let tv = t.timing in
  let rows =
    [
      [ "SoftwareUpdate"; Printf.sprintf "%.2f" tv.Timing.software_update_us ];
      [ "SoftwareLookup"; Printf.sprintf "%.2f" tv.Timing.software_lookup_us ];
      [ "NHFaultHandler"; Printf.sprintf "%.2f" tv.Timing.nh_fault_handler_us ];
      [ "VMFaultHandler"; Printf.sprintf "%.2f" tv.Timing.vm_fault_handler_us ];
      [ "VMProtectPage"; Printf.sprintf "%.2f" tv.Timing.vm_protect_us ];
      [ "VMUnprotectPage"; Printf.sprintf "%.2f" tv.Timing.vm_unprotect_us ];
      [ "TPFaultHandler"; Printf.sprintf "%.2f" tv.Timing.tp_fault_handler_us ];
    ]
    (* The VB rows (estimates, not Table 2 measurements) appear only when a
       VB approach is in play, keeping the four-strategy table unchanged. *)
    @ (if List.exists uses_vb t.approaches then
         [
           [ "VBExit"; Printf.sprintf "%.2f" tv.Timing.vb_exit_us ];
           [ "VBViewSwitch"; Printf.sprintf "%.2f" tv.Timing.vb_view_switch_us ];
           [ "VBViewUpdate"; Printf.sprintf "%.2f" tv.Timing.vb_view_update_us ];
         ]
       else [])
  in
  "Table 2: timing variable data (microseconds)\n"
  ^ Text_table.render ~header:[ "Timing Variable"; "Time (us)" ] ~rows ()

(* --- Table 3 --- *)

let mean_of f sessions =
  if sessions = [] then 0.0
  else
    List.fold_left (fun acc (_, c) -> acc +. float_of_int (f c)) 0.0 sessions
    /. float_of_int (List.length sessions)

let table3 t =
  let header =
    [ "Program"; "Install/Remove"; "MonitorHit"; "MonitorMiss" ]
    @ List.concat_map
        (fun ps ->
          let k = ps / 1024 in
          [
            Printf.sprintf "VM-%dK Prot/Unprot" k;
            Printf.sprintf "VM-%dK ActivePageMiss" k;
          ])
        t.page_sizes
  in
  let rows =
    List.map
      (fun pd ->
        let m f = mean_of f pd.sessions in
        [
          pd.run.Workload.workload.Workload.name;
          Printf.sprintf "%.0f" (m (fun c -> c.Counts.installs));
          Printf.sprintf "%.0f" (m (fun c -> c.Counts.hits));
          Printf.sprintf "%.0f" (m (fun c -> c.Counts.misses));
        ]
        @ List.concat_map
            (fun ps ->
              [
                Printf.sprintf "%.0f"
                  (m (fun c -> (Counts.vm_for c ~page_size:ps).Counts.protects));
                Printf.sprintf "%.0f"
                  (m (fun c ->
                       (Counts.vm_for c ~page_size:ps).Counts.active_page_misses));
              ])
            t.page_sizes)
      t.programs
  in
  "Table 3: mean counting variable data over all monitor sessions\n"
  ^ Text_table.render ~header ~rows ()

(* --- Table 4 --- *)

let table4 t =
  let header =
    "Program" :: "Statistic" :: List.map Model.name t.approaches
  in
  let fmt v =
    if Float.abs v >= 100.0 then Printf.sprintf "%.0f" v
    else Printf.sprintf "%.2f" v
  in
  let rows =
    List.concat_map
      (fun pd ->
        let summaries =
          List.map
            (fun a -> Stats.summarize (relative_overheads t pd a))
            t.approaches
        in
        let name = pd.run.Workload.workload.Workload.name in
        let row label f = (label, List.map (fun s -> fmt (f s)) summaries) in
        let lines =
          [
            row "Min" (fun s -> s.Stats.min);
            row "Max" (fun s -> s.Stats.max);
            row "T-Mean" (fun s -> s.Stats.t_mean);
            row "Mean" (fun s -> s.Stats.mean);
            row "90%" (fun s -> s.Stats.p90);
            row "98%" (fun s -> s.Stats.p98);
          ]
        in
        List.mapi
          (fun i (label, cells) -> (if i = 0 then name else "") :: label :: cells)
          lines)
      t.programs
  in
  Printf.sprintf
    "Table 4: relative overhead statistics over %s sessions per program\n"
    (String.concat "/"
       (List.map (fun pd -> string_of_int (List.length pd.sessions)) t.programs))
  ^ Text_table.render ~header ~rows ()

(* --- Figures 7, 8, 9 --- *)

type figure_stat = Max | P90 | T_mean

let figure t ~stat =
  let title, pick, log_scale =
    match stat with
    | Max ->
        ( "Figure 7: maximum relative overhead over all monitor sessions (log bars)",
          (fun s -> s.Stats.max),
          true )
    | P90 ->
        ( "Figure 8: 90th percentile relative overhead (log bars)",
          (fun s -> s.Stats.p90),
          true )
    | T_mean ->
        ( "Figure 9: mean relative overhead, sessions between 10th and 90th percentiles",
          (fun s -> s.Stats.t_mean),
          false )
  in
  let groups =
    List.map
      (fun pd ->
        {
          Bar_chart.name = pd.run.Workload.workload.Workload.name;
          series =
            List.map
              (fun a ->
                {
                  Bar_chart.label = Model.name a;
                  value = pick (Stats.summarize (relative_overheads t pd a));
                })
              t.approaches;
        })
      t.programs
  in
  Bar_chart.render ~log_scale ~title ~groups ()

(* --- Section 8 breakdown --- *)

let breakdown_report t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Overhead breakdown: mean share of each timing variable (Section 8)\n";
  List.iter
    (fun pd ->
      Buffer.add_string buf
        (Printf.sprintf "  %s:\n" pd.run.Workload.workload.Workload.name);
      List.iter
        (fun a ->
          let overheads =
            List.map (fun (_, c) -> Model.overhead t.timing a c) pd.sessions
          in
          let shares = Ebp_model.Breakdown.mean_percentages overheads in
          Buffer.add_string buf
            (Printf.sprintf "    %-6s %s\n" (Model.name a)
               (String.concat " "
                  (List.map (fun (v, p) -> Printf.sprintf "%s=%.1f%%" v p) shares))))
        t.approaches)
    t.programs;
  Buffer.contents buf

(* --- Section 8 code expansion --- *)

let code_expansion_report t =
  let rows =
    List.map
      (fun pd ->
        let prog = pd.run.Workload.compiled.Ebp_lang.Compiler.program in
        let stores = List.length (Ebp_isa.Program.stores prog) in
        let total = Ebp_isa.Program.length prog in
        let expansion = Ebp_wms.Code_patch.expansion_of_program prog in
        [
          pd.run.Workload.workload.Workload.name;
          string_of_int total;
          string_of_int stores;
          Printf.sprintf "%.1f%%" (100.0 *. float_of_int stores /. float_of_int total);
          Printf.sprintf "%.1f%%" ((expansion -. 1.0) *. 100.0);
        ])
      t.programs
  in
  "CodePatch static code expansion (Section 8; paper estimates 12-15%)\n"
  ^ Text_table.render
      ~header:[ "Program"; "Instructions"; "Stores"; "Store fraction"; "Expansion" ]
      ~rows ()

let extremes_report ?(top = 4) t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "Extreme points: most expensive sessions (Section 8 discussion)\n";
  List.iter
    (fun pd ->
      Buffer.add_string buf
        (Printf.sprintf "  %s:\n" pd.run.Workload.workload.Workload.name);
      List.iter
        (fun approach ->
          let overheads = relative_overheads t pd approach in
          let ranked =
            List.mapi (fun i (s, _) -> (s, overheads.(i))) pd.sessions
            |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
          in
          let rec take n = function
            | x :: rest when n > 0 -> x :: take (n - 1) rest
            | _ -> []
          in
          Buffer.add_string buf (Printf.sprintf "    %s worst:\n" (Model.name approach));
          List.iter
            (fun (session, ov) ->
              Buffer.add_string buf
                (Printf.sprintf "      %8.1fx  %s\n" ov (Session.to_string session)))
            (take top ranked))
        ([ Model.NH; Model.VM 4096 ]
        @
        (* The first VB granularity in play joins the extreme-point scan;
           absent any VB approach the report is byte-identical to before. *)
        match
          List.concat_map
            (fun a -> if uses_vb a then approach_sizes a else [])
            t.approaches
        with
        | g :: _ -> [ Model.VB g ]
        | [] -> []))
    t.programs;
  Buffer.contents buf

let full_report t =
  String.concat "\n"
    [
      table1 t;
      table2 t;
      table3 t;
      table4 t;
      figure t ~stat:Max;
      figure t ~stat:P90;
      figure t ~stat:T_mean;
      breakdown_report t;
      code_expansion_report t;
      extremes_report t;
    ]
