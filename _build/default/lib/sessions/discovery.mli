(** Session discovery (paper §8): "for each benchmark program, we discovered
    all instances of the monitor session types described in Section 5".

    Candidates are derived from the objects appearing in a trace:

    - each distinct local automatic variable → a OneLocalAuto session;
    - each function with any local (automatic or static) → AllLocalInFunc;
    - each global → OneGlobalStatic;
    - each heap object → OneHeap;
    - each function appearing in any heap object's allocation context →
      AllHeapInFunc.

    The paper then discards sessions with no monitor hits; that filtering
    happens after replay (see {!Replay}), not here. *)

val discover : Ebp_trace.Trace.t -> Session.t list
(** Deduplicated, in deterministic order (by kind, then definition order of
    first appearance). *)

val count_by_kind : Session.t list -> (Session.kind * int) list
