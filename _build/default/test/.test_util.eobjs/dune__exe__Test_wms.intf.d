test/test_wms.mli:
