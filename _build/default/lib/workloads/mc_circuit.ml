(* Spice analogue: transient nodal analysis by Gauss–Seidel relaxation in
   fixed-point (millivolt) arithmetic.

   Matches Spice's trace signature: a few hundred heap objects (per-node
   conductance rows plus per-timestep scratch vectors that are allocated
   and freed every step), moderate globals, and a relaxation kernel whose
   writes concentrate on the heap-resident voltage vectors. A waveform log
   grows via realloc, exercising realloc's keep-identity semantics. *)

let source =
  {|
// circuit: Gauss-Seidel transient analysis (Spice analogue)

int n_nodes;
int total_iters;
int steps_done;
int nonconverged;
int log_len;
int log_cap;

int** rows;      // per-node conductance row vectors (n of them)
int* diag;       // diagonal conductance, scaled by 1000
int* v_now;      // node voltages (mV)
int* i_src;      // source currents
int* wave_log;   // growable waveform log (realloc'd)

int abs_i(int x) {
  if (x < 0) {
    return 0 - x;
  }
  return x;
}

int* alloc_vec(int n) {
  return malloc(n * 4);
}

void build_circuit(int n) {
  int i;
  int j;
  int g;
  int* row;
  n_nodes = n;
  rows = malloc(n * 4);
  diag = alloc_vec(n);
  v_now = alloc_vec(n);
  i_src = alloc_vec(n);
  for (i = 0; i < n; i = i + 1) {
    row = alloc_vec(n);
    rows[i] = row;
    diag[i] = 0;
    for (j = 0; j < n; j = j + 1) {
      if (j != i && rand(100) < 18) {
        g = 50 + rand(400);
        row[j] = g;
        diag[i] = diag[i] + g;
      } else {
        row[j] = 0;
      }
    }
    diag[i] = diag[i] + 100 + rand(200);  // grounding conductance
    v_now[i] = 0;
    i_src[i] = 0;
  }
}

// One relaxation pass; returns the largest voltage change (mV).
int solve_pass() {
  int i;
  int j;
  int acc;
  int v;
  int delta;
  int maxd;
  int* row;
  maxd = 0;
  for (i = 0; i < n_nodes; i = i + 1) {
    acc = i_src[i];
    row = rows[i];
    for (j = 0; j < n_nodes; j = j + 1) {
      // v_i = (I_i + sum_j g_ij * v_j) / (sum_j g_ij + g_ground):
      // diagonally dominant, so the sweep converges.
      if (row[j] != 0) {
        acc = acc + row[j] * v_now[j] / 1000;
      }
    }
    v = acc * 1000 / diag[i];
    delta = abs_i(v - v_now[i]);
    v_now[i] = v;
    if (delta > maxd) {
      maxd = delta;
    }
  }
  return maxd;
}

// Relax until converged (< 2 mV change) or the iteration cap.
int solve_step(int cap) {
  int it;
  int maxd;
  int* scratch;
  scratch = alloc_vec(n_nodes);   // per-step temperature estimates
  it = 0;
  maxd = 1000000;
  while (it < cap && maxd >= 2) {
    maxd = solve_pass();
    scratch[it % n_nodes] = maxd;
    it = it + 1;
  }
  free(scratch);
  total_iters = total_iters + it;
  if (maxd >= 2) {
    nonconverged = nonconverged + 1;
  }
  return it;
}

void log_sample(int value) {
  if (log_len >= log_cap) {
    log_cap = log_cap * 2;
    wave_log = realloc(wave_log, log_cap * 4);
  }
  wave_log[log_len] = value;
  log_len = log_len + 1;
}

void transient(int steps) {
  int t;
  int probe;
  for (t = 0; t < steps; t = t + 1) {
    // Square-wave stimulus on node 0, small ramp on node 1.
    if ((t / 4) % 2 == 0) {
      i_src[0] = 5000;
    } else {
      i_src[0] = 0 - 2000;
    }
    i_src[1] = t * 37 % 1500;
    solve_step(40);
    for (probe = 0; probe < 4; probe = probe + 1) {
      log_sample(v_now[probe * (n_nodes / 4)]);
    }
    steps_done = steps_done + 1;
  }
}

int main() {
  int i;
  int checksum;
  srand(314);
  log_cap = 8;
  log_len = 0;
  wave_log = malloc(log_cap * 4);
  build_circuit(36);
  transient(24);
  print_int(steps_done);
  print_int(total_iters);
  print_int(nonconverged);
  print_int(log_len);
  checksum = 0;
  for (i = 0; i < log_len; i = i + 1) {
    checksum = (checksum + wave_log[i] * (i % 13 + 1)) % 1000000007;
  }
  print_int(checksum);
  return 0;
}
|}
