(* QCD analogue: iterative stencil relaxation over a global lattice.

   Matches QCD's trace signature: the most write events and the most
   monitor installs of the five programs (tiny helper functions called once
   per site create floods of local-variable monitors), hot induction
   variables (NativeHardware's worst case in §8), and zero heap. *)

let source =
  {|
// lattice: 48x48 integer field relaxation, double-buffered (QCD analogue)

int lat[2304];        // current field, 48 * 48
int nxt[2304];        // next field
int energy_hist[32];  // per-sweep change counts
int sweep_count;
int sites_changed;
int hot_links;

int neighbors_sum(int x, int y) {
  int s;
  int xm;
  int xp;
  int ym;
  int yp;
  xp = (x + 1) % 48;
  xm = (x + 47) % 48;
  yp = (y + 1) % 48;
  ym = (y + 47) % 48;
  s = lat[xp * 48 + y] + lat[xm * 48 + y] + lat[x * 48 + yp] + lat[x * 48 + ym];
  return s;
}

int update_site(int x, int y) {
  int s;
  int v;
  int nv;
  s = neighbors_sum(x, y);
  v = lat[x * 48 + y];
  nv = (s + v * 2) / 6 + ((s ^ v) & 1);
  nxt[x * 48 + y] = nv;
  if (nv != v) {
    return 1;
  }
  return 0;
}

int sweep() {
  int x;
  int y;
  int changed;
  changed = 0;
  for (x = 0; x < 48; x = x + 1) {
    for (y = 0; y < 48; y = y + 1) {
      changed = changed + update_site(x, y);
    }
  }
  for (x = 0; x < 2304; x = x + 1) {
    lat[x] = nxt[x];
  }
  return changed;
}

int count_hot_links() {
  int i;
  int n;
  n = 0;
  for (i = 0; i < 2303; i = i + 1) {
    if ((lat[i] ^ lat[i + 1]) & 1) {
      n = n + 1;
    }
  }
  return n;
}

int main() {
  int i;
  int s;
  int e;
  int checksum;
  srand(7);
  for (i = 0; i < 2304; i = i + 1) {
    lat[i] = rand(16);
  }
  for (s = 0; s < 20; s = s + 1) {
    e = sweep();
    energy_hist[s % 32] = e;
    sweep_count = sweep_count + 1;
    sites_changed = sites_changed + e;
  }
  hot_links = count_hot_links();
  print_int(sweep_count);
  print_int(sites_changed);
  print_int(hot_links);
  checksum = 0;
  for (i = 0; i < 2304; i = i + 1) {
    checksum = (checksum + lat[i] * (i % 7 + 1)) % 1000000007;
  }
  print_int(checksum);
  return 0;
}
|}
