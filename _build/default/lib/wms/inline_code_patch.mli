(** CodePatch with the monitor check compiled to real machine code.

    {!Code_patch} models the per-write check by charging the paper's
    measured [SoftwareLookup] time from a host-side handler. This variant
    instead implements the check the way a production WMS would (§3.3,
    §9): the address→monitor mapping lives {e in the debuggee's address
    space} and each store site is patched with an instruction sequence
    that walks it directly — no host involvement on the fast path at all.

    The in-memory structure is a two-level map chosen to be walkable in a
    dozen instructions using only the two patch-reserved registers
    [k0]/[k1]:

    - a level-1 table of 1024 words at {!l1_base}, indexed by address bits
      31..22 (one entry per 4 MiB chunk); zero means "no monitors in this
      chunk";
    - per mapped chunk, a byte map with one byte per machine word (1 MiB of
      sparse simulated memory), nonzero meaning "word monitored".

    The 13-instruction stub: compute the effective address, index the L1
    table, fall through to the store if the chunk is unmapped, otherwise
    load the word's map byte and trap to the notification handler when it
    is set. A miss on an unmapped chunk costs 7 machine cycles; a mapped
    chunk costs 12 — versus the 110 cycles (2.75 µs at 40 MHz) the paper
    measured for its subroutine-call check on a SPARCstation 2.

    Install/remove update the in-memory structure through the privileged
    memory interface (the debugger writing the debuggee, §3.4) and charge
    [SoftwareUpdate]. The test suite proves notification behaviour is
    identical to {!Code_patch} on live programs. *)

val l1_base : int
(** Debuggee address of the level-1 table (a reserved WMS region well away
    from the MiniC program layout). *)

val arena_base : int
(** Where per-chunk byte maps are allocated, 1 MiB apart. *)

type patched

val instrument : Ebp_isa.Program.t -> patched
(** The input must be resolved. *)

val program : patched -> Ebp_isa.Program.t
val patched_stores : patched -> int
val expansion : patched -> float
val original_site : patched -> int -> int option
(** Map a stub trap pc back to the original store index. *)

type t

val attach :
  ?timing:Timing.t ->
  patched ->
  Ebp_machine.Machine.t ->
  notify:(Wms.notification -> unit) ->
  t
(** Takes over the machine's trap handler. *)

val strategy : t -> Wms.strategy
val stats : t -> Wms.stats

val mapped_chunks : t -> int
(** Number of 4 MiB chunks with a live byte map. *)

val monitored_words : t -> int
