(* Tests for Ebp_machine: memory protection semantics, CPU execution,
   faults, traps, monitor registers, hooks. *)

module Interval = Ebp_util.Interval
module Memory = Ebp_machine.Memory
module Machine = Ebp_machine.Machine
module Cost_model = Ebp_machine.Cost_model
module Reg = Ebp_isa.Reg
module Instr = Ebp_isa.Instr

let assemble src =
  match Ebp_isa.Asm.parse_resolved src with
  | Ok p -> p
  | Error e -> Alcotest.failf "assembly error: %s" e

let run_expect_halt machine =
  match Machine.run machine with
  | Machine.Halted code -> code
  | Machine.Out_of_fuel -> Alcotest.fail "out of fuel"
  | Machine.Machine_error msg -> Alcotest.fail msg

(* --- Memory --- *)

let test_memory_word_roundtrip () =
  let m = Memory.create () in
  Memory.store_word m 0x1000 0x12345678;
  Alcotest.(check int) "read back" 0x12345678 (Memory.load_word m 0x1000);
  Memory.store_word m 0x1000 (-42);
  Alcotest.(check int) "negative sign-extends" (-42) (Memory.load_word m 0x1000)

let test_memory_byte_ops () =
  let m = Memory.create () in
  Memory.store_word m 0x2000 0x04030201;
  Alcotest.(check int) "little endian b0" 1 (Memory.load_byte m 0x2000);
  Alcotest.(check int) "little endian b3" 4 (Memory.load_byte m 0x2003);
  Memory.store_byte m 0x2001 0xff;
  Alcotest.(check int) "byte patch" 0x0403ff01 (Memory.load_word m 0x2000)

let test_memory_zero_fill () =
  let m = Memory.create () in
  Alcotest.(check int) "untouched word" 0 (Memory.load_word m 0x7fff0000);
  Alcotest.(check int) "no pages materialized" 0 (Memory.materialized_pages m)

let test_memory_alignment () =
  let m = Memory.create () in
  Alcotest.(check bool) "unaligned store raises" true
    (match Memory.store_word m 0x1002 1 with
    | () -> false
    | exception Memory.Bad_address _ -> true);
  Alcotest.(check bool) "negative addr raises" true
    (match Memory.load_byte m (-1) with
    | _ -> false
    | exception Memory.Bad_address _ -> true)

let test_memory_protection () =
  let m = Memory.create () in
  Memory.store_word m 0x3000 7;
  Memory.protect m ~page:(Memory.page_of m 0x3000) Memory.Read_only;
  Alcotest.(check int) "reads still allowed" 7 (Memory.load_word m 0x3000);
  Alcotest.(check bool) "write faults" true
    (match Memory.store_word m 0x3000 8 with
    | () -> false
    | exception Memory.Write_fault { addr = 0x3000; width = 4 } -> true
    | exception Memory.Write_fault _ -> false);
  Alcotest.(check int) "value unchanged after fault" 7 (Memory.load_word m 0x3000);
  Memory.privileged_store_word m 0x3000 8;
  Alcotest.(check int) "privileged bypasses" 8 (Memory.load_word m 0x3000);
  Memory.protect m ~page:(Memory.page_of m 0x3000) Memory.Read_write;
  Memory.store_word m 0x3000 9;
  Alcotest.(check int) "unprotected again" 9 (Memory.load_word m 0x3000)

let test_memory_protect_range () =
  let m = Memory.create ~page_size:4096 () in
  let range = Interval.make ~lo:4000 ~hi:9000 in
  Memory.protect_range m range Memory.Read_only;
  Alcotest.(check int) "three pages protected" 3 (Memory.protected_page_count m);
  Alcotest.(check (list int)) "pages of range" [ 0; 1; 2 ]
    (Memory.pages_of_range m range)

let test_memory_page_size_validation () =
  Alcotest.(check bool) "bad page size" true
    (match Memory.create ~page_size:3000 () with
    | _ -> false
    | exception Invalid_argument _ -> true)

let prop_memory_random_words =
  QCheck2.Test.make ~name:"random word writes read back" ~count:100
    QCheck2.Gen.(
      list_size (int_range 1 50)
        (pair (int_range 0 100_000) (int_range (-2147483648) 2147483647)))
    (fun writes ->
      let m = Memory.create () in
      let reference = Hashtbl.create 64 in
      List.iter
        (fun (slot, v) ->
          let addr = slot * 4 in
          Memory.store_word m addr v;
          Hashtbl.replace reference addr v)
        writes;
      Hashtbl.fold
        (fun addr v ok -> ok && Memory.load_word m addr = v)
        reference true)

(* --- Cost model --- *)

let test_cost_conversions () =
  Alcotest.(check int) "1us at 40MHz" 40 (Cost_model.cycles_of_us 1.0);
  Alcotest.(check int) "561us" 22440 (Cost_model.cycles_of_us 561.0);
  Alcotest.(check (float 1e-9)) "cycles to ms" 1.0
    (Cost_model.ms_of_cycles 40_000)

let test_cost_per_instr () =
  let c = Cost_model.default in
  Alcotest.(check int) "alu" c.Cost_model.alu
    (Cost_model.cost c (Instr.Alu (Instr.Add, Reg.t_ 0, Reg.t_ 0, Reg.t_ 1)));
  Alcotest.(check int) "div slower" c.Cost_model.div
    (Cost_model.cost c (Instr.Alui (Instr.Div, Reg.t_ 0, Reg.t_ 0, 2)));
  Alcotest.(check int) "markers free" 0 (Cost_model.cost c (Instr.Enter 0))

(* --- Machine execution --- *)

let test_machine_arith_program () =
  (* 6 * 7 given via a small loop: v0 = 6+6+...+6 (7 times) *)
  let p =
    assemble
      {|
  li t0, 0       ; acc
  li t1, 7       ; counter
loop:
  beq t1, zero, done
  addi t0, t0, 6
  subi t1, t1, 1
  jmp loop
done:
  mv v0, t0
  halt
|}
  in
  let m = Machine.create p in
  Alcotest.(check int) "42" 42 (run_expect_halt m)

let test_machine_wraps_32bit () =
  let p = assemble "  li t0, 2147483647\n  addi t0, t0, 1\n  mv v0, t0\n  halt\n" in
  let m = Machine.create p in
  Alcotest.(check int) "wraps to min_int32" (-2147483648) (run_expect_halt m)

let test_machine_zero_register () =
  let p = assemble "  li zero, 99\n  mv v0, zero\n  halt\n" in
  let m = Machine.create p in
  Alcotest.(check int) "zero stays zero" 0 (run_expect_halt m)

let test_machine_div_by_zero () =
  let p = assemble "  li t0, 1\n  li t1, 0\n  div t2, t0, t1\n  halt\n" in
  match Machine.run (Machine.create p) with
  | Machine.Machine_error msg ->
      Alcotest.(check bool) "mentions division" true
        (String.length msg >= 8 && String.sub msg 0 8 = "division")
  | _ -> Alcotest.fail "expected machine error"

let test_machine_pc_out_of_range () =
  let p = assemble "  jmp @99\n  halt\n" in
  match Machine.run (Machine.create p) with
  | Machine.Machine_error _ -> ()
  | _ -> Alcotest.fail "expected machine error"

let test_machine_fuel () =
  let p = assemble "spin:\n  jmp spin\n" in
  match Machine.run ~fuel:100 (Machine.create p) with
  | Machine.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected out of fuel"

let test_machine_call_ret () =
  let p =
    assemble
      {|
  li a0, 5
  jal double
  mv v0, v0
  halt
double:
  add v0, a0, a0
  ret
|}
  in
  Alcotest.(check int) "call/ret" 10 (run_expect_halt (Machine.create p))

let test_machine_jalr () =
  let p =
    assemble
      {|
  li t0, 4        ; instruction index of the target below
  jalr t0
  mv v0, v1
  halt
  li v1, 77     ; target of jalr
  ret
|}
  in
  Alcotest.(check int) "indirect call" 77 (run_expect_halt (Machine.create p))

let test_machine_store_hook () =
  let p =
    assemble
      {|
  li t0, 123
  li t1, 4096
  sw t0, 0(t1)
  !sw t0, 4(t1)
  sb t0, 8(t1)
  halt
|}
  in
  let m = Machine.create p in
  let seen = ref [] in
  Machine.set_store_hook m
    (Some
       (fun _m ~addr ~width ~value ~pc:_ ~implicit ->
         seen := (addr, width, value, implicit) :: !seen));
  ignore (run_expect_halt m);
  Alcotest.(check int) "three stores" 3 (List.length !seen);
  (match List.rev !seen with
  | [ (4096, 4, 123, false); (4100, 4, 123, true); (4104, 1, 123, false) ] -> ()
  | _ -> Alcotest.fail "unexpected store sequence")

let test_machine_enter_leave () =
  let p =
    assemble
      {|
  enter 0
  jal inner
  leave 0
  halt
inner:
  enter 1
  leave 1
  ret
|}
  in
  let m = Machine.create p in
  let events = ref [] in
  let depths = ref [] in
  Machine.set_enter_hook m
    (Some
       (fun m f ->
         events := `Enter f :: !events;
         depths := List.length (Machine.func_stack m) :: !depths));
  Machine.set_leave_hook m (Some (fun _ f -> events := `Leave f :: !events));
  ignore (run_expect_halt m);
  Alcotest.(check bool) "sequence" true
    (List.rev !events = [ `Enter 0; `Enter 1; `Leave 1; `Leave 0 ]);
  Alcotest.(check (list int)) "stack depths at enter" [ 1; 2 ]
    (List.rev !depths)

let test_machine_syscall () =
  let p = assemble "  li a0, 31\n  syscall 9\n  halt\n" in
  let m = Machine.create p in
  Machine.set_syscall_handler m
    (Some
       (fun m n ->
         Alcotest.(check int) "syscall number" 9 n;
         Machine.set_reg m Reg.v0 (Machine.get_reg m Reg.a0 * 2)));
  Alcotest.(check int) "handler result" 62 (run_expect_halt m)

let test_machine_syscall_unhandled () =
  let p = assemble "  syscall 1\n  halt\n" in
  match Machine.run (Machine.create p) with
  | Machine.Machine_error _ -> ()
  | _ -> Alcotest.fail "expected error"

let test_machine_trap_handler () =
  let p = assemble "  trap 55\n  li v0, 1\n  halt\n" in
  let m = Machine.create p in
  let got = ref None in
  Machine.set_trap_handler m
    (Some (fun _ ~code ~trap_pc -> got := Some (code, trap_pc)));
  Alcotest.(check int) "continues after trap" 1 (run_expect_halt m);
  Alcotest.(check (option (pair int int))) "trap code and pc" (Some (55, 0)) !got

let test_machine_write_fault_emulation () =
  let p =
    assemble
      {|
  li t0, 11
  li t1, 4096
  sw t0, 0(t1)
  lw v0, 0(t1)
  halt
|}
  in
  let m = Machine.create p in
  let mem = Machine.memory m in
  Memory.protect mem ~page:(Memory.page_of mem 4096) Memory.Read_only;
  let faults = ref 0 in
  Machine.set_write_fault_handler m
    (Some
       (fun m ~addr ~width ~value ~pc:_ ->
         incr faults;
         let mem = Machine.memory m in
         if width = 4 then Memory.privileged_store_word mem addr value
         else Memory.privileged_store_byte mem addr value));
  Alcotest.(check int) "emulated value visible" 11 (run_expect_halt m);
  Alcotest.(check int) "one fault" 1 !faults

let test_machine_write_fault_unhandled () =
  let p = assemble "  li t0, 1\n  li t1, 4096\n  sw t0, 0(t1)\n  halt\n" in
  let m = Machine.create p in
  let mem = Machine.memory m in
  Memory.protect mem ~page:(Memory.page_of mem 4096) Memory.Read_only;
  match Machine.run m with
  | Machine.Machine_error _ -> ()
  | _ -> Alcotest.fail "expected unhandled fault error"

let test_machine_monitor_registers () =
  let p =
    assemble
      {|
  li t0, 5
  li t1, 4096
  sw t0, 0(t1)    ; hit (covered)
  sw t0, 64(t1)   ; miss
  sw t0, 4(t1)    ; hit (word overlap)
  halt
|}
  in
  let m = Machine.create ~monitor_reg_count:2 p in
  Machine.set_monitor_reg m 0 (Some (Interval.make ~lo:4096 ~hi:4103));
  let hits = ref [] in
  Machine.set_monitor_fault_handler m
    (Some (fun _ ~reg ~addr ~width:_ ~pc:_ -> hits := (reg, addr) :: !hits));
  ignore (run_expect_halt m);
  Alcotest.(check (list (pair int int))) "two hits" [ (0, 4096); (0, 4100) ]
    (List.rev !hits);
  (* The write itself completed before notification (monitor, not barrier). *)
  Alcotest.(check int) "write landed" 5 (Memory.load_word (Machine.memory m) 4096)

let test_machine_monitor_reg_bounds () =
  let p = assemble "  halt\n" in
  let m = Machine.create ~monitor_reg_count:4 p in
  Alcotest.(check int) "count" 4 (Machine.monitor_reg_count m);
  Alcotest.check_raises "oob"
    (Invalid_argument "Machine: monitor register 4 out of range") (fun () ->
      Machine.set_monitor_reg m 4 None)

let test_machine_chk_handler () =
  let p = assemble "  li t1, 4096\n  chk 8(t1), 4\n  halt\n" in
  let m = Machine.create p in
  let got = ref None in
  Machine.set_chk_handler m (Some (fun _ ~range ~pc -> got := Some (range, pc)));
  ignore (run_expect_halt m);
  match !got with
  | Some (range, 1) ->
      Alcotest.(check string) "range" "[0x1008,0x100b]" (Interval.to_string range)
  | _ -> Alcotest.fail "chk handler not invoked correctly"

let test_machine_charge_cycles () =
  let p = assemble "  halt\n" in
  let m = Machine.create p in
  Machine.charge m 1000;
  ignore (Machine.run m);
  Alcotest.(check bool) "cycles include charge" true (Machine.cycles m >= 1000)

let test_machine_unresolved_rejected () =
  let p = Ebp_isa.Program.of_instrs [ Instr.Jmp (Instr.Label "x") ] in
  Alcotest.check_raises "unresolved"
    (Invalid_argument "Machine.create: program has unresolved labels") (fun () ->
      ignore (Machine.create p))


(* --- fuzz: random straight-line programs terminate cleanly --- *)

(* Random ALU/memory/branch soup over a safe address window, with only
   forward branches so every program terminates. Shared by the
   stops-cleanly property and the reference-interpreter differential. *)
let fuzz_program_gen =
  let open QCheck2.Gen in
  let reg = map Ebp_isa.Reg.of_int (int_range 1 27) in
  let addr_reg = map Ebp_isa.Reg.of_int (int_range 1 27) in
  let instr_gen n =
    oneof
      [
        map2 (fun r v -> Instr.Li (r, v)) reg (int_range (-1000) 1000);
        map3
          (fun op (a, b) c -> Instr.Alu (op, a, b, c))
          (oneofl [ Instr.Add; Instr.Sub; Instr.Mul; Instr.And; Instr.Xor ])
          (pair reg reg) reg;
        map2 (fun r b -> Instr.Lw (r, b, 8192)) reg addr_reg;
        map2 (fun r b -> Instr.Sw (r, b, 8192)) reg addr_reg;
        (* Forward branch within the program. *)
        map3
          (fun (a, b) c t -> Instr.Br (c, a, b, Instr.Abs t))
          (pair reg reg)
          (oneofl [ Instr.Eq; Instr.Ne; Instr.Lt ])
          (int_range (n + 1) (n + 5));
      ]
  in
  let* len = int_range 1 40 in
  flatten_l (List.init len instr_gen)

(* Pad so forward branch targets stay in range, halt, and point every
   register at a valid window so loads/stores with the fixed 8192 offset
   stay within bounds. Returns the padded code alongside the machine for
   the reference interpreter. *)
let fuzz_setup instrs =
  let code =
    Array.of_list (instrs @ List.init 6 (fun _ -> Instr.Nop) @ [ Instr.Halt ])
  in
  let m = Machine.create (Ebp_isa.Program.of_instrs (Array.to_list code)) in
  for i = 1 to 27 do
    Machine.set_reg m (Ebp_isa.Reg.of_int i) (4 * (i * 13 mod 1000))
  done;
  (code, m)

let prop_machine_fuzz_safe =
  (* Whatever the outcome (halt, error, fuel), the machine must return a
     stop_reason rather than raise. *)
  QCheck2.Test.make ~name:"random programs stop cleanly" ~count:200
    fuzz_program_gen
    (fun instrs ->
      let _, m = fuzz_setup instrs in
      match Machine.run ~fuel:10_000 m with
      | Machine.Halted _ | Machine.Out_of_fuel | Machine.Machine_error _ -> true)

(* --- differential testing against a reference interpreter --- *)

type ref_outcome = R_halt of int | R_fuel | R_error

(* An independent, deliberately naive interpreter for the subset the fuzz
   generator emits, over a word-keyed hashtable memory. The predecoded
   machine must agree with it exactly: stop reason, cycles, instruction
   count, and every register. *)
let reference_run ~fuel code regs =
  let truncate32 v =
    let v = v land 0xFFFFFFFF in
    if v land 0x80000000 <> 0 then v - 0x100000000 else v
  in
  let costs = Cost_model.default in
  let mem = Hashtbl.create 64 in
  let get r = regs.(Reg.to_int r) in
  let set r v =
    let i = Reg.to_int r in
    if i <> 0 then regs.(i) <- truncate32 v
  in
  let cycles = ref 0 and executed = ref 0 in
  let pc = ref 0 in
  let outcome = ref None in
  let remaining = ref fuel in
  while !outcome = None && !remaining > 0 do
    decr remaining;
    if !pc < 0 || !pc >= Array.length code then outcome := Some R_error
    else begin
      let instr = code.(!pc) in
      incr executed;
      cycles := !cycles + Cost_model.cost costs instr;
      match instr with
      | Instr.Nop -> incr pc
      | Instr.Halt -> outcome := Some (R_halt (get Reg.v0))
      | Instr.Li (rd, v) ->
          set rd v;
          incr pc
      | Instr.Alu (op, rd, a, b) ->
          let x = get a and y = get b in
          let v =
            match op with
            | Instr.Add -> x + y
            | Instr.Sub -> x - y
            | Instr.Mul -> x * y
            | Instr.And -> x land y
            | Instr.Xor -> x lxor y
            | _ -> Alcotest.fail "unexpected ALU op in fuzz program"
          in
          set rd v;
          incr pc
      | Instr.Lw (rd, base, off) ->
          let addr = get base + off in
          if addr < 0 || addr + 4 > 0x100000000 || addr land 3 <> 0 then
            outcome := Some R_error
          else begin
            set rd (Option.value ~default:0 (Hashtbl.find_opt mem addr));
            incr pc
          end
      | Instr.Sw (rs, base, off) ->
          let addr = get base + off in
          if addr < 0 || addr + 4 > 0x100000000 || addr land 3 <> 0 then
            outcome := Some R_error
          else begin
            Hashtbl.replace mem addr (get rs);
            incr pc
          end
      | Instr.Br (cond, a, b, target) ->
          let t =
            match target with
            | Instr.Abs i -> i
            | Instr.Label _ -> Alcotest.fail "unresolved label in fuzz program"
          in
          let x = get a and y = get b in
          let taken =
            match cond with
            | Instr.Eq -> x = y
            | Instr.Ne -> x <> y
            | Instr.Lt -> x < y
            | _ -> Alcotest.fail "unexpected branch cond in fuzz program"
          in
          pc := if taken then t else !pc + 1
      | _ -> Alcotest.fail "unexpected instruction in fuzz program"
    end
  done;
  let outcome = match !outcome with Some o -> o | None -> R_fuel in
  (outcome, !cycles, !executed)

let prop_machine_matches_reference =
  QCheck2.Test.make ~name:"predecoded machine matches reference interpreter"
    ~count:300 fuzz_program_gen
    (fun instrs ->
      let code, m = fuzz_setup instrs in
      let regs = Array.make 32 0 in
      for i = 1 to 27 do
        regs.(i) <- 4 * (i * 13 mod 1000)
      done;
      let fuel = 10_000 in
      let outcome, cycles, executed = reference_run ~fuel code regs in
      let stop = Machine.run ~fuel m in
      let stop_ok =
        match (stop, outcome) with
        | Machine.Halted a, R_halt b -> a = b
        | Machine.Out_of_fuel, R_fuel -> true
        | Machine.Machine_error _, R_error -> true
        | _ -> false
      in
      stop_ok
      && Machine.cycles m = cycles
      && Machine.instructions_executed m = executed
      &&
      let ok = ref true in
      for i = 0 to 27 do
        if Machine.get_reg m (Reg.of_int i) <> regs.(i) then ok := false
      done;
      !ok)

(* --- run vs step differential over the real workloads --- *)

module Workload = Ebp_workloads.Workload
module Loader = Ebp_runtime.Loader
module Recorder = Ebp_trace.Recorder
module Trace = Ebp_trace.Trace

(* [Machine.run]'s batched loop and [Machine.step]'s one-instruction path
   must be indistinguishable from the outside: same stop reason, same
   counters, same output, and bit-identical recorded traces on all five
   workloads. *)
let test_workloads_run_vs_step () =
  List.iter
    (fun (w : Workload.t) ->
      let run =
        match Workload.record w with
        | Ok run -> run
        | Error msg -> Alcotest.failf "%s: record failed: %s" w.Workload.name msg
      in
      let run_result = Option.get run.Workload.result in
      let compiled =
        match Ebp_lang.Compiler.compile w.Workload.source with
        | Ok c -> c
        | Error msg -> Alcotest.failf "%s: compile failed: %s" w.Workload.name msg
      in
      let loader = Loader.load ~seed:w.Workload.seed compiled in
      let recorder = Recorder.attach loader in
      let machine = Loader.machine loader in
      let rec drive () =
        match Machine.step machine with None -> drive () | Some reason -> reason
      in
      let status = drive () in
      let trace = Recorder.finish recorder in
      (match status with
      | Machine.Halted 0 -> ()
      | _ -> Alcotest.failf "%s: step-driven run did not halt cleanly" w.Workload.name);
      Alcotest.(check int)
        (w.Workload.name ^ ": cycles")
        run_result.Loader.cycles (Machine.cycles machine);
      Alcotest.(check int)
        (w.Workload.name ^ ": instructions")
        run_result.Loader.instructions
        (Machine.instructions_executed machine);
      Alcotest.(check string)
        (w.Workload.name ^ ": output")
        run_result.Loader.output (Loader.output loader);
      Alcotest.(check bool)
        (w.Workload.name ^ ": trace bytes identical")
        true
        (String.equal
           (Trace.encode run.Workload.trace)
           (Trace.encode trace)))
    Workload.all

(* --- observability counters --- *)

let test_machine_obs_counters () =
  let module Metrics = Ebp_obs.Metrics in
  Metrics.reset ();
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Metrics.reset ())
    (fun () ->
      let p =
        assemble
          {|
  li t0, 123
  li t1, 4096
  sw t0, 0(t1)
  sb t0, 8(t1)
  halt
|}
      in
      let m = Machine.create p in
      ignore (run_expect_halt m);
      let counter name =
        let snap = Metrics.snapshot () in
        match
          List.find_opt (fun (n, _, _) -> String.equal n name) snap.Metrics.counters
        with
        | Some (_, total, _) -> total
        | None -> Alcotest.failf "counter %s not registered" name
      in
      Alcotest.(check int) "machine.steps" (Machine.instructions_executed m)
        (counter "machine.steps");
      Alcotest.(check int) "machine.stores" 2 (counter "machine.stores"))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "machine"
    [
      ( "memory",
        [
          Alcotest.test_case "word roundtrip" `Quick test_memory_word_roundtrip;
          Alcotest.test_case "byte ops" `Quick test_memory_byte_ops;
          Alcotest.test_case "zero fill" `Quick test_memory_zero_fill;
          Alcotest.test_case "alignment" `Quick test_memory_alignment;
          Alcotest.test_case "protection" `Quick test_memory_protection;
          Alcotest.test_case "protect range" `Quick test_memory_protect_range;
          Alcotest.test_case "page size validation" `Quick
            test_memory_page_size_validation;
          q prop_memory_random_words;
        ] );
      ( "cost model",
        [
          Alcotest.test_case "conversions" `Quick test_cost_conversions;
          Alcotest.test_case "per instruction" `Quick test_cost_per_instr;
        ] );
      ( "execution",
        [
          Alcotest.test_case "arith loop" `Quick test_machine_arith_program;
          Alcotest.test_case "32-bit wrap" `Quick test_machine_wraps_32bit;
          Alcotest.test_case "zero register" `Quick test_machine_zero_register;
          Alcotest.test_case "div by zero" `Quick test_machine_div_by_zero;
          Alcotest.test_case "pc out of range" `Quick test_machine_pc_out_of_range;
          Alcotest.test_case "fuel" `Quick test_machine_fuel;
          Alcotest.test_case "call/ret" `Quick test_machine_call_ret;
          Alcotest.test_case "jalr" `Quick test_machine_jalr;
        ] );
      ( "hooks and faults",
        [
          Alcotest.test_case "store hook" `Quick test_machine_store_hook;
          Alcotest.test_case "enter/leave" `Quick test_machine_enter_leave;
          Alcotest.test_case "syscall" `Quick test_machine_syscall;
          Alcotest.test_case "syscall unhandled" `Quick test_machine_syscall_unhandled;
          Alcotest.test_case "trap handler" `Quick test_machine_trap_handler;
          Alcotest.test_case "write fault emulation" `Quick
            test_machine_write_fault_emulation;
          Alcotest.test_case "write fault unhandled" `Quick
            test_machine_write_fault_unhandled;
          Alcotest.test_case "monitor registers" `Quick test_machine_monitor_registers;
          Alcotest.test_case "monitor reg bounds" `Quick test_machine_monitor_reg_bounds;
          Alcotest.test_case "chk handler" `Quick test_machine_chk_handler;
          Alcotest.test_case "charge cycles" `Quick test_machine_charge_cycles;
          Alcotest.test_case "unresolved rejected" `Quick
            test_machine_unresolved_rejected;
          q prop_machine_fuzz_safe;
        ] );
      ( "differential",
        [
          q prop_machine_matches_reference;
          Alcotest.test_case "workloads: run vs step" `Slow
            test_workloads_run_vs_step;
          Alcotest.test_case "obs counters" `Quick test_machine_obs_counters;
        ] );
    ]
