lib/workloads/mc_circuit.ml:
