let format_name = "ebp-metrics"
let format_version = 1

let pairs_to_json ps = Json.List (List.map (fun (a, b) -> Json.List [ Json.Int a; Json.Int b ]) ps)

let to_ndjson (s : Metrics.snapshot) =
  let buf = Buffer.create 1024 in
  let line json =
    Buffer.add_string buf (Json.to_string json);
    Buffer.add_char buf '\n'
  in
  line
    (Json.Obj
       [
         ("type", Json.Str "meta");
         ("format", Json.Str format_name);
         ("version", Json.Int format_version);
       ]);
  List.iter
    (fun (name, value, per_domain) ->
      line
        (Json.Obj
           ([
              ("type", Json.Str "counter");
              ("name", Json.Str name);
              ("value", Json.Int value);
            ]
           @
           match per_domain with
           | [] -> []
           | ps -> [ ("domains", pairs_to_json ps) ])))
    s.Metrics.counters;
  List.iter
    (fun (name, value) ->
      line
        (Json.Obj
           [ ("type", Json.Str "gauge"); ("name", Json.Str name);
             ("value", Json.Float value) ]))
    s.Metrics.gauges;
  List.iter
    (fun (name, h) ->
      line
        (Json.Obj
           [
             ("type", Json.Str "histogram");
             ("name", Json.Str name);
             ("count", Json.Int h.Metrics.count);
             ("sum", Json.Int h.Metrics.sum);
             ("min", Json.Int (if h.Metrics.count = 0 then 0 else h.Metrics.min_v));
             ("max", Json.Int (if h.Metrics.count = 0 then 0 else h.Metrics.max_v));
             ("buckets", pairs_to_json h.Metrics.buckets);
           ]))
    s.Metrics.hists;
  Buffer.contents buf

(* --- parsing --- *)

let ( let* ) = Result.bind

let field_of name conv json what =
  match Option.bind (Json.member name json) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or mistyped field %S in %s" name what)

let pairs_of_json json what =
  match Json.to_list json with
  | None -> Error (Printf.sprintf "%s: expected an array of pairs" what)
  | Some xs ->
      let pair = function
        | Json.List [ a; b ] -> (
            match (Json.to_int a, Json.to_int b) with
            | Some a, Some b -> Ok (a, b)
            | _ -> Error (Printf.sprintf "%s: non-integer pair" what))
        | _ -> Error (Printf.sprintf "%s: expected [int, int] pairs" what)
      in
      List.fold_left
        (fun acc x ->
          let* acc = acc in
          let* p = pair x in
          Ok (p :: acc))
        (Ok []) xs
      |> Result.map List.rev

let of_ndjson text =
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "")
  in
  let parse_line (counters, gauges, hists) (lineno, line) =
    let fail msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
    match Json.of_string line with
    | Error msg -> fail ("bad JSON: " ^ msg)
    | Ok json -> (
        match Option.bind (Json.member "type" json) Json.to_str with
        | None -> fail "object has no \"type\" field"
        | Some "meta" -> (
            match Option.bind (Json.member "format" json) Json.to_str with
            | Some f when f = format_name -> Ok (counters, gauges, hists)
            | Some f -> fail (Printf.sprintf "unknown format %S" f)
            | None -> fail "meta line has no \"format\"")
        | Some "counter" ->
            Result.map_error (Printf.sprintf "line %d: %s" lineno)
              (let* name = field_of "name" Json.to_str json "counter" in
               let* value = field_of "value" Json.to_int json "counter" in
               let* domains =
                 match Json.member "domains" json with
                 | None -> Ok []
                 | Some d -> pairs_of_json d "counter domains"
               in
               Ok ((name, value, domains) :: counters, gauges, hists))
        | Some "gauge" ->
            Result.map_error (Printf.sprintf "line %d: %s" lineno)
              (let* name = field_of "name" Json.to_str json "gauge" in
               let* value = field_of "value" Json.to_float json "gauge" in
               Ok (counters, (name, value) :: gauges, hists))
        | Some "histogram" ->
            Result.map_error (Printf.sprintf "line %d: %s" lineno)
              (let* name = field_of "name" Json.to_str json "histogram" in
               let* count = field_of "count" Json.to_int json "histogram" in
               let* sum = field_of "sum" Json.to_int json "histogram" in
               let* min_v = field_of "min" Json.to_int json "histogram" in
               let* max_v = field_of "max" Json.to_int json "histogram" in
               let* buckets =
                 match Json.member "buckets" json with
                 | None -> Ok []
                 | Some b -> pairs_of_json b "histogram buckets"
               in
               Ok
                 ( counters,
                   gauges,
                   (name, { Metrics.count; sum; min_v; max_v; buckets }) :: hists ))
        | Some _ ->
            (* Unknown record types from a newer writer: skip. *)
            Ok (counters, gauges, hists))
  in
  let* counters, gauges, hists =
    List.fold_left
      (fun acc line ->
        let* acc = acc in
        parse_line acc line)
      (Ok ([], [], []))
      lines
  in
  let by_name_fst (a, _) (b, _) = String.compare a b in
  Ok
    {
      Metrics.counters =
        List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) counters;
      gauges = List.sort by_name_fst gauges;
      hists = List.sort by_name_fst hists;
    }
