examples/read_watch.ml: Ebp_lang Ebp_machine Ebp_runtime Ebp_util Ebp_wms List Option Printf
