(** Fixed-size bitsets.

    The write-monitor map of the paper (Appendix A.5) keeps, for each page
    holding an active monitor, a bitmap with one bit per machine word. This
    module provides the underlying bit operations. *)

type t

val create : int -> t
(** [create n] is a bitmap of [n] bits, all clear.
    @raise Invalid_argument if [n < 0]. *)

val length : t -> int

val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit

val set_range : t -> lo:int -> hi:int -> unit
(** Sets bits [lo..hi] inclusive. *)

val clear_range : t -> lo:int -> hi:int -> unit

val any_in_range : t -> lo:int -> hi:int -> bool
(** True when at least one bit in [lo..hi] inclusive is set. *)

val count : t -> int
(** Number of set bits. *)

val is_empty : t -> bool

val copy : t -> t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
