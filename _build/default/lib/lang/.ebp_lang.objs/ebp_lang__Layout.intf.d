lib/lang/layout.mli:
