module Interval = Ebp_util.Interval
module Machine = Ebp_machine.Machine
module Reg = Ebp_isa.Reg
module Debug_info = Ebp_lang.Debug_info
module Loader = Ebp_runtime.Loader
module Allocator = Ebp_runtime.Allocator

type t = {
  builder : Trace.Builder.t;
  debug : Debug_info.t;
  loader : Loader.t;
  activations : (string, int) Hashtbl.t;  (* function -> activation count *)
  mutable frames : (Object_desc.t * Interval.t) list list;  (* per live activation *)
  heap_live : (int, Object_desc.t * Interval.t) Hashtbl.t;  (* addr -> object *)
  mutable heap_seq : int;
  mutable statics : (Object_desc.t * Interval.t) list;  (* globals + static locals *)
  mutable finished : bool;
}

let var_range ~fp (v : Debug_info.variable) =
  match v.Debug_info.location with
  | Debug_info.Frame off -> Interval.of_base_size ~base:(fp + off) ~size:v.Debug_info.size
  | Debug_info.Static addr -> Interval.of_base_size ~base:addr ~size:v.Debug_info.size

let on_enter t machine fid =
  let func = Debug_info.find_func t.debug fid in
  let fp = Machine.get_reg machine Reg.fp in
  let act =
    let current = Option.value ~default:0 (Hashtbl.find_opt t.activations func.Debug_info.name) in
    Hashtbl.replace t.activations func.Debug_info.name (current + 1);
    current + 1
  in
  let installed =
    List.filter_map
      (fun (v : Debug_info.variable) ->
        if v.Debug_info.is_static then None
        else begin
          let obj =
            Object_desc.Local
              { func = func.Debug_info.name; var = v.Debug_info.var_name; inst = act }
          in
          let range = var_range ~fp v in
          Trace.Builder.add_install t.builder obj range;
          Some (obj, range)
        end)
      func.Debug_info.vars
  in
  t.frames <- installed :: t.frames

let on_leave t _machine _fid =
  match t.frames with
  | installed :: rest ->
      List.iter (fun (obj, range) -> Trace.Builder.add_remove t.builder obj range) installed;
      t.frames <- rest
  | [] -> ()

let context_names t machine =
  List.map
    (fun fid -> (Debug_info.find_func t.debug fid).Debug_info.name)
    (Machine.func_stack machine)

let on_alloc_event t event =
  match event with
  | Allocator.Alloc { addr; size } ->
      t.heap_seq <- t.heap_seq + 1;
      let obj =
        Object_desc.Heap
          { context = context_names t (Loader.machine t.loader); seq = t.heap_seq }
      in
      let range = Interval.of_base_size ~base:addr ~size in
      Trace.Builder.add_install t.builder obj range;
      Hashtbl.replace t.heap_live addr (obj, range)
  | Allocator.Free { addr; size = _ } -> (
      match Hashtbl.find_opt t.heap_live addr with
      | Some (obj, range) ->
          Trace.Builder.add_remove t.builder obj range;
          Hashtbl.remove t.heap_live addr
      | None -> ())
  | Allocator.Realloc { old_addr; old_size = _; new_addr; new_size } -> (
      (* Same object, possibly relocated (footnote 4): remove the old
         range, install the new one under the same descriptor. *)
      match Hashtbl.find_opt t.heap_live old_addr with
      | Some (obj, old_range) ->
          Trace.Builder.add_remove t.builder obj old_range;
          Hashtbl.remove t.heap_live old_addr;
          let range = Interval.of_base_size ~base:new_addr ~size:new_size in
          Trace.Builder.add_install t.builder obj range;
          Hashtbl.replace t.heap_live new_addr (obj, range)
      | None -> ())

let on_store t _machine ~addr ~width ~value:_ ~pc ~implicit =
  if not implicit then
    Trace.Builder.add_write t.builder (Interval.of_base_size ~base:addr ~size:width) ~pc

let attach loader =
  let debug = Loader.debug loader in
  let t =
    {
      builder = Trace.Builder.create ();
      debug;
      loader;
      activations = Hashtbl.create 32;
      frames = [];
      heap_live = Hashtbl.create 64;
      heap_seq = 0;
      statics = [];
      finished = false;
    }
  in
  (* Globals and static locals exist for the whole run: install up front. *)
  List.iter
    (fun (g : Debug_info.global) ->
      let obj = Object_desc.Global { var = g.Debug_info.g_name } in
      let range = Interval.of_base_size ~base:g.Debug_info.g_addr ~size:g.Debug_info.g_size in
      Trace.Builder.add_install t.builder obj range;
      t.statics <- (obj, range) :: t.statics)
    debug.Debug_info.globals;
  Array.iter
    (fun (f : Debug_info.func) ->
      List.iter
        (fun (v : Debug_info.variable) ->
          if v.Debug_info.is_static then begin
            let obj =
              Object_desc.Local_static
                { func = f.Debug_info.name; var = v.Debug_info.var_name }
            in
            let range = var_range ~fp:0 v in
            Trace.Builder.add_install t.builder obj range;
            t.statics <- (obj, range) :: t.statics
          end)
        f.Debug_info.vars)
    debug.Debug_info.functions;
  let machine = Loader.machine loader in
  Machine.set_enter_hook machine (Some (on_enter t));
  Machine.set_leave_hook machine (Some (on_leave t));
  Machine.set_store_hook machine (Some (on_store t));
  Allocator.set_event_hook (Loader.allocator loader) (Some (on_alloc_event t));
  t

let finish t =
  if t.finished then invalid_arg "Recorder.finish: already finished";
  t.finished <- true;
  (* An exit() mid-call-chain leaves frames live; remove them innermost
     first, then leaked heap objects, then the statics. *)
  List.iter
    (fun installed ->
      List.iter (fun (obj, range) -> Trace.Builder.add_remove t.builder obj range) installed)
    t.frames;
  t.frames <- [];
  Hashtbl.iter
    (fun _ (obj, range) -> Trace.Builder.add_remove t.builder obj range)
    t.heap_live;
  Hashtbl.reset t.heap_live;
  List.iter (fun (obj, range) -> Trace.Builder.add_remove t.builder obj range) t.statics;
  t.statics <- [];
  Trace.Builder.finish t.builder

let record ?fuel loader =
  let t = attach loader in
  let result = Loader.run ?fuel loader in
  (result, finish t)

let record_source ?seed ?fuel source =
  Result.map
    (fun compiled ->
      let loader = Loader.load ?seed compiled in
      let result, trace = record ?fuel loader in
      (result, trace, compiled.Ebp_lang.Compiler.debug))
    (Ebp_lang.Compiler.compile source)
