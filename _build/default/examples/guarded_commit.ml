(* Write barriers protecting committed data (the [SS91] scenario).

   §2 of the paper distinguishes write *monitors* (notify after the write
   succeeds) from write *barriers* (consulted before, may veto). Its §3.2
   cites Sullivan & Stonebraker's VLDB'91 work, which write-protects a
   DBMS's committed structures so that stray stores from buggy code cannot
   corrupt them.

   This example reproduces that discipline on the simulator: a "record
   table" is committed and guarded; a buggy maintenance routine then
   sweeps memory with an off-by-range loop. The barrier vetoes every
   stray store into the committed region — the program keeps running, the
   committed data survives, and the guard log names the culprit pc.

   Run with: dune exec examples/guarded_commit.exe *)

module Interval = Ebp_util.Interval
module Machine = Ebp_machine.Machine
module Memory = Ebp_machine.Memory
module Barrier = Ebp_wms.Write_barrier

let program =
  {|
int scratch[16];     // legitimately writable
int records[16];     // committed data, right after scratch in the data segment

void commit_records() {
  int i;
  for (i = 0; i < 16; i = i + 1) {
    records[i] = 1000 + i;
  }
}

// BUG: the "clear scratch" sweep runs past the end of scratch into the
// committed records (they are adjacent in the data segment).
void sloppy_clear() {
  int i;
  for (i = 0; i < 24; i = i + 1) {
    scratch[i] = 0;
  }
}

int main() {
  int i;
  int sum;
  commit_records();
  sloppy_clear();
  sum = 0;
  for (i = 0; i < 16; i = i + 1) {
    sum = sum + records[i];
  }
  print_int(sum);     // 1000+0 .. 1000+15 = 16120 iff records survived
  return 0;
}
|}

let () =
  let compiled =
    match Ebp_lang.Compiler.compile program with
    | Ok c -> c
    | Error e -> failwith ("compile error: " ^ e)
  in
  let debug = compiled.Ebp_lang.Compiler.debug in
  let records = Option.get (Ebp_lang.Debug_info.global_by_name debug "records") in
  let records_range =
    Interval.of_base_size ~base:records.Ebp_lang.Debug_info.g_addr
      ~size:records.Ebp_lang.Debug_info.g_size
  in
  let loader = Ebp_runtime.Loader.load compiled in
  let machine = Ebp_runtime.Loader.machine loader in
  let vetoed = ref [] in
  let barrier =
    Barrier.attach machine ~decide:(fun attempt ->
        vetoed := attempt :: !vetoed;
        Barrier.Deny)
  in
  (* Let commit_records run, then guard. Easiest hook: guard right after
     loading — but the commit itself must be allowed, so instead we guard
     lazily from the function-exit marker of commit_records. *)
  let commit_fid =
    (Option.get (Ebp_lang.Debug_info.func_by_name debug "commit_records"))
      .Ebp_lang.Debug_info.id
  in
  Machine.set_leave_hook machine
    (Some
       (fun _m fid ->
         if fid = commit_fid then
           match Barrier.guard barrier records_range with
           | Ok () -> print_endline "records committed and guarded"
           | Error e -> failwith e));
  let result = Ebp_runtime.Loader.run loader in
  print_string result.Ebp_runtime.Loader.output;
  Printf.printf
    "\nbarrier: %d stray stores vetoed, %d legitimate same-page writes allowed\n"
    (Barrier.denied barrier)
    (Barrier.bystanders barrier);
  List.iter
    (fun (a : Barrier.attempt) ->
      Printf.printf "  vetoed: write of %d to %s at pc %d\n" a.Barrier.value
        (Interval.to_string a.Barrier.write)
        a.Barrier.pc)
    (List.rev !vetoed);
  let sum = ref 0 in
  for i = 0 to 15 do
    sum :=
      !sum + Memory.load_word (Machine.memory machine)
               (records.Ebp_lang.Debug_info.g_addr + (4 * i))
  done;
  Printf.printf "committed records checksum: %d (%s)\n" !sum
    (if !sum = 16120 then "intact" else "CORRUPTED")
