module Interval = Ebp_util.Interval
module Instr = Ebp_isa.Instr
module Reg = Ebp_isa.Reg
module Program = Ebp_isa.Program

type stop_reason = Halted of int | Out_of_fuel | Machine_error of string

type t = {
  mem : Memory.t;
  costs : Cost_model.t;
  prog : Program.t;
  code : Program.item array;
  regs : int array;
  mutable pc : int;
  mutable cycles : int;
  mutable executed : int;
  mutable funcs : int list;
  mutable halted : int option;
  monitor_regs : Interval.t option array;
  mutable store_hook :
    (t -> addr:int -> width:int -> value:int -> pc:int -> implicit:bool -> unit) option;
  mutable enter_hook : (t -> int -> unit) option;
  mutable leave_hook : (t -> int -> unit) option;
  mutable syscall_handler : (t -> int -> unit) option;
  mutable trap_handler : (t -> code:int -> trap_pc:int -> unit) option;
  mutable write_fault_handler :
    (t -> addr:int -> width:int -> value:int -> pc:int -> unit) option;
  mutable monitor_fault_handler :
    (t -> reg:int -> addr:int -> width:int -> pc:int -> unit) option;
  mutable chk_handler : (t -> range:Interval.t -> pc:int -> unit) option;
}

let create ?mem ?(costs = Cost_model.default) ?(monitor_reg_count = 4) prog =
  if not (Program.is_resolved prog) then
    invalid_arg "Machine.create: program has unresolved labels";
  if monitor_reg_count < 0 then
    invalid_arg "Machine.create: negative monitor register count";
  let mem = match mem with Some m -> m | None -> Memory.create () in
  {
    mem;
    costs;
    prog;
    code = Program.items prog;
    regs = Array.make Reg.count 0;
    pc = 0;
    cycles = 0;
    executed = 0;
    funcs = [];
    halted = None;
    monitor_regs = Array.make monitor_reg_count None;
    store_hook = None;
    enter_hook = None;
    leave_hook = None;
    syscall_handler = None;
    trap_handler = None;
    write_fault_handler = None;
    monitor_fault_handler = None;
    chk_handler = None;
  }

let memory t = t.mem
let program t = t.prog

let truncate32 v =
  let v = v land 0xFFFFFFFF in
  if v land 0x80000000 <> 0 then v - 0x100000000 else v

let get_reg t r = t.regs.(Reg.to_int r)

let set_reg t r v =
  let i = Reg.to_int r in
  if i <> 0 then t.regs.(i) <- truncate32 v

let pc t = t.pc
let set_pc t pc = t.pc <- pc
let cycles t = t.cycles
let charge t c = t.cycles <- t.cycles + c
let instructions_executed t = t.executed
let func_stack t = t.funcs
let halt t code = t.halted <- Some code

let set_store_hook t h = t.store_hook <- h
let set_enter_hook t h = t.enter_hook <- h
let set_leave_hook t h = t.leave_hook <- h
let set_syscall_handler t h = t.syscall_handler <- h
let set_trap_handler t h = t.trap_handler <- h
let set_write_fault_handler t h = t.write_fault_handler <- h
let set_monitor_fault_handler t h = t.monitor_fault_handler <- h
let set_chk_handler t h = t.chk_handler <- h

let monitor_reg_count t = Array.length t.monitor_regs

let check_monitor_idx t i =
  if i < 0 || i >= Array.length t.monitor_regs then
    invalid_arg (Printf.sprintf "Machine: monitor register %d out of range" i)

let set_monitor_reg t i v =
  check_monitor_idx t i;
  t.monitor_regs.(i) <- v

let monitor_reg t i =
  check_monitor_idx t i;
  t.monitor_regs.(i)

let monitor_hit t range =
  let n = Array.length t.monitor_regs in
  let rec go i =
    if i >= n then None
    else
      match t.monitor_regs.(i) with
      | Some m when Interval.overlaps m range -> Some i
      | Some _ | None -> go (i + 1)
  in
  go 0

let alu_eval op a b =
  let bool_int c = if c then 1 else 0 in
  match (op : Instr.alu_op) with
  | Add -> Some (a + b)
  | Sub -> Some (a - b)
  | Mul -> Some (a * b)
  | Div -> if b = 0 then None else Some (a / b)
  | Rem -> if b = 0 then None else Some (a mod b)
  | And -> Some (a land b)
  | Or -> Some (a lor b)
  | Xor -> Some (a lxor b)
  | Sll -> Some (a lsl (b land 31))
  | Srl -> Some ((a land 0xFFFFFFFF) lsr (b land 31))
  | Sra -> Some (a asr (b land 31))
  | Slt -> Some (bool_int (a < b))
  | Sle -> Some (bool_int (a <= b))
  | Seq -> Some (bool_int (a = b))
  | Sne -> Some (bool_int (a <> b))

let cond_eval c a b =
  match (c : Instr.cond) with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Ge -> a >= b
  | Gt -> a > b
  | Le -> a <= b

let target_index = function
  | Instr.Abs i -> i
  | Instr.Label l -> invalid_arg ("Machine: unresolved label " ^ l)

(* Execute a store. Order of events (§2, §3.1): protection is checked
   before the write (VM faults are barriers at the page level); hardware
   monitor notification happens after the write has succeeded. *)
let exec_store t instr_pc ~addr ~width ~value ~implicit =
  let store () =
    if width = 4 then Memory.store_word t.mem addr value
    else Memory.store_byte t.mem addr value
  in
  match store () with
  | () ->
      t.pc <- instr_pc + 1;
      (match monitor_hit t (Interval.of_base_size ~base:addr ~size:width) with
      | Some reg -> (
          match t.monitor_fault_handler with
          | Some h -> h t ~reg ~addr ~width ~pc:instr_pc
          | None -> ())
      | None -> ());
      (match t.store_hook with
      | Some h -> h t ~addr ~width ~value ~pc:instr_pc ~implicit
      | None -> ());
      None
  | exception Memory.Write_fault _ -> (
      match t.write_fault_handler with
      | Some h ->
          t.pc <- instr_pc + 1;
          h t ~addr ~width ~value ~pc:instr_pc;
          None
      | None ->
          Some
            (Machine_error
               (Printf.sprintf "unhandled write fault at 0x%x (pc %d)" addr
                  instr_pc)))

let step t =
  match t.halted with
  | Some code -> Some (Halted code)
  | None ->
      if t.pc < 0 || t.pc >= Array.length t.code then
        Some (Machine_error (Printf.sprintf "pc out of range: %d" t.pc))
      else begin
        let { Program.instr; implicit } = t.code.(t.pc) in
        let instr_pc = t.pc in
        t.executed <- t.executed + 1;
        t.cycles <- t.cycles + Cost_model.cost t.costs instr;
        let continue () =
          t.pc <- instr_pc + 1;
          None
        in
        let result =
          match instr with
          | Nop -> continue ()
          | Halt -> Some (Halted (get_reg t Reg.v0))
          | Li (rd, imm) ->
              set_reg t rd imm;
              continue ()
          | Mv (rd, rs) ->
              set_reg t rd (get_reg t rs);
              continue ()
          | Alu (op, rd, r1, r2) -> (
              match alu_eval op (get_reg t r1) (get_reg t r2) with
              | Some v ->
                  set_reg t rd v;
                  continue ()
              | None ->
                  Some (Machine_error (Printf.sprintf "division by zero at pc %d" instr_pc)))
          | Alui (op, rd, r1, imm) -> (
              match alu_eval op (get_reg t r1) imm with
              | Some v ->
                  set_reg t rd v;
                  continue ()
              | None ->
                  Some (Machine_error (Printf.sprintf "division by zero at pc %d" instr_pc)))
          | Lw (rd, rs, off) ->
              set_reg t rd (Memory.load_word t.mem (get_reg t rs + off));
              continue ()
          | Lb (rd, rs, off) ->
              set_reg t rd (Memory.load_byte t.mem (get_reg t rs + off));
              continue ()
          | Sw (rd, rs, off) ->
              exec_store t instr_pc ~addr:(get_reg t rs + off) ~width:4
                ~value:(get_reg t rd) ~implicit
          | Sb (rd, rs, off) ->
              exec_store t instr_pc ~addr:(get_reg t rs + off) ~width:1
                ~value:(get_reg t rd land 0xff) ~implicit
          | Br (c, r1, r2, target) ->
              if cond_eval c (get_reg t r1) (get_reg t r2) then
                t.pc <- target_index target
              else t.pc <- instr_pc + 1;
              None
          | Jmp target ->
              t.pc <- target_index target;
              None
          | Jal target ->
              set_reg t Reg.ra (instr_pc + 1);
              t.pc <- target_index target;
              None
          | Jalr rs ->
              let dest = get_reg t rs in
              set_reg t Reg.ra (instr_pc + 1);
              t.pc <- dest;
              None
          | Ret ->
              t.pc <- get_reg t Reg.ra;
              None
          | Syscall n -> (
              match t.syscall_handler with
              | Some h ->
                  t.pc <- instr_pc + 1;
                  h t n;
                  None
              | None ->
                  Some
                    (Machine_error
                       (Printf.sprintf "syscall %d with no handler at pc %d" n instr_pc)))
          | Trap code -> (
              match t.trap_handler with
              | Some h ->
                  t.pc <- instr_pc + 1;
                  h t ~code ~trap_pc:instr_pc;
                  None
              | None ->
                  Some
                    (Machine_error
                       (Printf.sprintf "trap %d with no handler at pc %d" code instr_pc)))
          | Chk { base; off; width } ->
              let lo = get_reg t base + off in
              (match t.chk_handler with
              | Some h ->
                  h t ~range:(Interval.of_base_size ~base:lo ~size:width) ~pc:instr_pc
              | None -> ());
              continue ()
          | Enter f ->
              t.funcs <- f :: t.funcs;
              (match t.enter_hook with Some h -> h t f | None -> ());
              continue ()
          | Leave f ->
              (match t.funcs with
              | g :: rest when g = f -> t.funcs <- rest
              | _ -> ());
              (match t.leave_hook with Some h -> h t f | None -> ());
              continue ()
        in
        match result with
        | Some _ as stop -> stop
        | None -> (
            (* A handler may have requested an orderly halt. *)
            match t.halted with Some code -> Some (Halted code) | None -> None)
      end

exception Stop of stop_reason

let run ?(fuel = 200_000_000) t =
  try
    for _ = 1 to fuel do
      match step t with Some reason -> raise (Stop reason) | None -> ()
    done;
    Out_of_fuel
  with
  | Stop reason -> reason
  | Memory.Bad_address { addr; what } ->
      Machine_error (Printf.sprintf "%s: bad address 0x%x (pc %d)" what addr t.pc)
