(* Abstract syntax of MiniC.

   MiniC is the C subset the benchmark workloads are written in: 32-bit
   [int], pointers, fixed-size arrays of int (or of pointers), functions,
   static locals, and the usual expression operators. Strings, structs,
   floats, and function pointers are deliberately absent — the experiment
   needs write behaviour over locals/globals/heap, not full C. *)

type ty = T_int | T_ptr of ty | T_void

type unop = U_neg | U_not (* logical ! *) | U_bnot (* bitwise ~ *)

type binop =
  | B_add
  | B_sub
  | B_mul
  | B_div
  | B_rem
  | B_and
  | B_or
  | B_xor
  | B_shl
  | B_shr
  | B_land (* && *)
  | B_lor (* || *)
  | B_eq
  | B_ne
  | B_lt
  | B_le
  | B_gt
  | B_ge

type expr = { e : expr_node; e_line : int }

and expr_node =
  | E_int of int
  | E_var of string
  | E_unop of unop * expr
  | E_binop of binop * expr * expr
  | E_deref of expr
  | E_addr of lvalue
  | E_index of expr * expr
  | E_call of string * expr list

and lvalue = L_var of string | L_deref of expr | L_index of expr * expr

type var_decl = {
  v_name : string;
  v_ty : ty;  (* element type for arrays *)
  v_array : int option;  (* Some n for "ty name[n]" *)
  v_static : bool;
  v_init : expr option;
  v_line : int;
}

type stmt = { s : stmt_node; s_line : int }

and stmt_node =
  | S_decl of var_decl
  | S_assign of lvalue * expr
  | S_expr of expr
  | S_if of expr * block * block option
  | S_while of expr * block
  | S_for of stmt option * expr option * stmt option * block
  | S_return of expr option
  | S_break
  | S_continue
  | S_block of block

and block = stmt list

type func = {
  f_name : string;
  f_ret : ty;
  f_params : (string * ty) list;
  f_body : block;
  f_line : int;
}

type program = { globals : var_decl list; funcs : func list }

let rec pp_ty ppf = function
  | T_int -> Format.pp_print_string ppf "int"
  | T_void -> Format.pp_print_string ppf "void"
  | T_ptr t -> Format.fprintf ppf "%a*" pp_ty t

let ty_to_string t = Format.asprintf "%a" pp_ty t
let ty_equal (a : ty) (b : ty) = a = b
