(* Tests for Ebp_runtime: the heap allocator and the loader/syscall layer. *)

module Allocator = Ebp_runtime.Allocator
module Loader = Ebp_runtime.Loader
module Machine = Ebp_machine.Machine

let base = Ebp_lang.Layout.heap_base

let fresh () = Allocator.create ()

(* --- Allocator --- *)

let test_alloc_basic () =
  let a = fresh () in
  let p1 = Option.get (Allocator.malloc a 10) in
  let p2 = Option.get (Allocator.malloc a 4) in
  Alcotest.(check int) "first at heap base" base p1;
  Alcotest.(check bool) "disjoint" true (p2 >= p1 + 12);
  Alcotest.(check (option int)) "size rounded to words" (Some 12)
    (Allocator.size_of a p1);
  Alcotest.(check int) "live bytes" 16 (Allocator.live_bytes a)

let test_alloc_zero_size () =
  let a = fresh () in
  let p = Option.get (Allocator.malloc a 0) in
  Alcotest.(check (option int)) "minimal block" (Some 4) (Allocator.size_of a p)

let test_free_and_reuse () =
  let a = fresh () in
  let p1 = Option.get (Allocator.malloc a 16) in
  let _p2 = Option.get (Allocator.malloc a 16) in
  (match Allocator.free a p1 with Ok () -> () | Error e -> Alcotest.fail e);
  let p3 = Option.get (Allocator.malloc a 16) in
  Alcotest.(check int) "first-fit reuses the hole" p1 p3

let test_free_coalescing () =
  let a = fresh () in
  let p1 = Option.get (Allocator.malloc a 16) in
  let p2 = Option.get (Allocator.malloc a 16) in
  let p3 = Option.get (Allocator.malloc a 16) in
  ignore (Allocator.malloc a 16);
  (* Free in an order that requires both-side coalescing for the middle. *)
  ignore (Allocator.free a p1);
  ignore (Allocator.free a p3);
  ignore (Allocator.free a p2);
  let big = Option.get (Allocator.malloc a 48) in
  Alcotest.(check int) "coalesced hole fits a 48-byte block" p1 big

let test_free_errors () =
  let a = fresh () in
  let p = Option.get (Allocator.malloc a 8) in
  (match Allocator.free a (p + 4) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "interior free accepted");
  ignore (Allocator.free a p);
  match Allocator.free a p with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double free accepted"

let test_exhaustion () =
  let a = Allocator.create ~base ~limit:(base + 64) () in
  Alcotest.(check bool) "fits" true (Allocator.malloc a 32 <> None);
  Alcotest.(check bool) "exhausted" true (Allocator.malloc a 64 = None);
  Alcotest.(check bool) "smaller still fits" true (Allocator.malloc a 32 <> None)

let test_realloc_grow_copies () =
  let copied = ref [] in
  let copy ~src ~dst ~len = copied := (src, dst, len) :: !copied in
  let a = fresh () in
  let p = Option.get (Allocator.malloc a 8) in
  ignore (Allocator.malloc a 8);
  (* block the in-place growth *)
  match Allocator.realloc a p 32 ~copy with
  | Ok (Some p') ->
      Alcotest.(check bool) "moved" true (p' <> p);
      Alcotest.(check (list (triple int int int))) "copied old contents"
        [ (p, p', 8) ] !copied;
      Alcotest.(check bool) "old freed" true (Allocator.size_of a p = None)
  | Ok None -> Alcotest.fail "unexpected exhaustion"
  | Error e -> Alcotest.fail e

let test_realloc_shrink_in_place () =
  let a = fresh () in
  let p = Option.get (Allocator.malloc a 32) in
  match Allocator.realloc a p 8 ~copy:(fun ~src:_ ~dst:_ ~len:_ -> Alcotest.fail "no copy") with
  | Ok (Some p') -> Alcotest.(check int) "same address" p p'
  | _ -> Alcotest.fail "shrink failed"

let test_realloc_null_is_malloc () =
  let a = fresh () in
  match Allocator.realloc a 0 16 ~copy:(fun ~src:_ ~dst:_ ~len:_ -> ()) with
  | Ok (Some p) -> Alcotest.(check int) "allocates" base p
  | _ -> Alcotest.fail "realloc(0, n) failed"

let test_allocator_events () =
  let events = ref [] in
  let a = fresh () in
  Allocator.set_event_hook a (Some (fun e -> events := e :: !events));
  let p = Option.get (Allocator.malloc a 8) in
  let p' =
    match Allocator.realloc a p 64 ~copy:(fun ~src:_ ~dst:_ ~len:_ -> ()) with
    | Ok (Some p') -> p'
    | _ -> Alcotest.fail "realloc"
  in
  ignore (Allocator.free a p');
  match List.rev !events with
  | [ Allocator.Alloc { addr; size = 8 };
      Allocator.Realloc { old_addr; new_addr; new_size = 64; _ };
      Allocator.Free { addr = freed; size = 64 } ] ->
      Alcotest.(check int) "alloc addr" p addr;
      Alcotest.(check int) "realloc old" p old_addr;
      Alcotest.(check int) "realloc new" p' new_addr;
      Alcotest.(check int) "free addr" p' freed
  | _ -> Alcotest.fail "unexpected event sequence"

(* No two live blocks ever overlap, and free+malloc never loses bytes. *)
let prop_allocator_disjoint =
  let op_gen = QCheck2.Gen.(pair (int_range 0 2) (int_range 1 200)) in
  QCheck2.Test.make ~name:"live blocks stay disjoint" ~count:150
    QCheck2.Gen.(list_size (int_range 1 80) op_gen)
    (fun ops ->
      let a = Allocator.create ~base ~limit:(base + 4096) () in
      let live = ref [] in
      List.iter
        (fun (kind, size) ->
          match kind with
          | 0 | 1 -> (
              match Allocator.malloc a size with
              | Some p -> live := p :: !live
              | None -> ())
          | _ -> (
              match !live with
              | p :: rest ->
                  (match Allocator.free a p with
                  | Ok () -> ()
                  | Error e -> failwith e);
                  live := rest
              | [] -> ()))
        ops;
      let blocks = Allocator.live_blocks a in
      let rec disjoint = function
        | (a1, s1) :: ((a2, _) :: _ as rest) -> a1 + s1 <= a2 && disjoint rest
        | _ -> true
      in
      disjoint blocks
      && List.length blocks = List.length !live
      && Allocator.live_bytes a + Allocator.free_bytes a = 4096)

(* --- Loader / syscalls --- *)

let run src =
  match Loader.run_source src with
  | Ok r -> r
  | Error e -> Alcotest.failf "compile error: %s" e

let run_raw = run

let test_loader_print_output () =
  let r = run "int main() { print_int(42); print_char(65); print_char(10); return 0; }" in
  Alcotest.(check string) "output" "42\nA\n" r.Loader.output

let test_loader_exit_code () =
  let r = run "int main() { return 3; }" in
  match r.Loader.status with
  | Machine.Halted 3 -> ()
  | _ -> Alcotest.fail "expected exit 3"

let test_loader_malloc_returns_null_on_oom () =
  let r =
    run
      {|int main() {
          int* p;
          p = malloc(100000000);
          if (p == 0) { print_int(1); } else { print_int(0); }
          return 0; }|}
  in
  Alcotest.(check string) "null on exhaustion" "1\n" r.Loader.output

let test_loader_bad_free_is_runtime_error () =
  let r = run "int main() { free(12345); return 0; }" in
  Alcotest.(check bool) "runtime error recorded" true (r.Loader.runtime_error <> None);
  match r.Loader.status with
  | Machine.Halted -1 -> ()
  | _ -> Alcotest.fail "expected abnormal halt"

let test_loader_rand_deterministic () =
  let src =
    "int main() { print_int(rand(1000)); print_int(rand(1000)); return 0; }"
  in
  let r1 = Loader.run_source ~seed:7 src |> Result.get_ok in
  let r2 = Loader.run_source ~seed:7 src |> Result.get_ok in
  let r3 = Loader.run_source ~seed:8 src |> Result.get_ok in
  Alcotest.(check string) "same seed same stream" r1.Loader.output r2.Loader.output;
  Alcotest.(check bool) "different seed differs" true
    (r1.Loader.output <> r3.Loader.output)

let test_loader_srand () =
  let src =
    {|int main() {
        int a;
        int b;
        srand(99);
        a = rand(100000);
        srand(99);
        b = rand(100000);
        print_int(a == b);
        return 0; }|}
  in
  let r = run src in
  Alcotest.(check string) "srand resets the stream" "1\n" r.Loader.output

let test_loader_realloc_preserves_contents () =
  let r =
    run
      {|int main() {
          int* p;
          int i;
          int ok;
          p = malloc(20);
          for (i = 0; i < 5; i = i + 1) { p[i] = i * 7; }
          p = realloc(p, 400);
          ok = 1;
          for (i = 0; i < 5; i = i + 1) { if (p[i] != i * 7) { ok = 0; } }
          print_int(ok);
          return 0; }|}
  in
  Alcotest.(check string) "contents preserved" "1\n" r.Loader.output

let test_loader_global_initializers_applied () =
  let r = run "int g = 1234; int main() { print_int(g); return 0; }" in
  Alcotest.(check string) "init" "1234\n" r.Loader.output

let test_loader_cycle_accounting () =
  let r = run "int main() { return 0; }" in
  Alcotest.(check bool) "cycles counted" true (r.Loader.cycles > 0);
  Alcotest.(check bool) "instructions counted" true (r.Loader.instructions > 0);
  Alcotest.(check bool) "cycles >= instructions" true
    (r.Loader.cycles >= r.Loader.instructions)


let test_loader_exit_builtin () =
  let r = run_raw "int main() { print_int(1); exit(9); print_int(2); return 0; }" in
  Alcotest.(check string) "output stops at exit" "1\n" r.Loader.output;
  match r.Loader.status with
  | Machine.Halted 9 -> ()
  | _ -> Alcotest.fail "expected exit code 9"

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "runtime"
    [
      ( "allocator",
        [
          Alcotest.test_case "basic" `Quick test_alloc_basic;
          Alcotest.test_case "zero size" `Quick test_alloc_zero_size;
          Alcotest.test_case "free and reuse" `Quick test_free_and_reuse;
          Alcotest.test_case "coalescing" `Quick test_free_coalescing;
          Alcotest.test_case "free errors" `Quick test_free_errors;
          Alcotest.test_case "exhaustion" `Quick test_exhaustion;
          Alcotest.test_case "realloc grow" `Quick test_realloc_grow_copies;
          Alcotest.test_case "realloc shrink" `Quick test_realloc_shrink_in_place;
          Alcotest.test_case "realloc null" `Quick test_realloc_null_is_malloc;
          Alcotest.test_case "events" `Quick test_allocator_events;
          q prop_allocator_disjoint;
        ] );
      ( "loader",
        [
          Alcotest.test_case "print output" `Quick test_loader_print_output;
          Alcotest.test_case "exit code" `Quick test_loader_exit_code;
          Alcotest.test_case "malloc OOM -> null" `Quick
            test_loader_malloc_returns_null_on_oom;
          Alcotest.test_case "bad free" `Quick test_loader_bad_free_is_runtime_error;
          Alcotest.test_case "rand deterministic" `Quick test_loader_rand_deterministic;
          Alcotest.test_case "srand" `Quick test_loader_srand;
          Alcotest.test_case "realloc preserves" `Quick
            test_loader_realloc_preserves_contents;
          Alcotest.test_case "global initializers" `Quick
            test_loader_global_initializers_applied;
          Alcotest.test_case "cycle accounting" `Quick test_loader_cycle_accounting;
          Alcotest.test_case "exit builtin" `Quick test_loader_exit_builtin;
        ] );
    ]
