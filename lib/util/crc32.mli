(** CRC-32 (IEEE 802.3, polynomial [0xEDB88320], reflected).

    The integrity check sealing every on-disk trace-cache entry: cheap
    enough to run on every store and lookup, and — unlike a plain length
    check — it detects the single-bit flips and mid-file truncations the
    fault-injection harness throws at the cache. Not a cryptographic hash;
    the cache key (MD5 over content inputs) handles identity, the CRC only
    answers "did these bytes survive the disk?". *)

val string : string -> int
(** [string s] is the CRC-32 of all of [s], in [[0, 2^32)]. *)

val sub : string -> pos:int -> len:int -> int
(** CRC-32 of [len] bytes of [s] starting at [pos].
    @raise Invalid_argument if the range is outside [s]. *)
