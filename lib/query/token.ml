(* Lexical tokens of the trace query language (docs/QUERY.md). Keywords
   stay [Ident]s — they are contextual, and the parser's "expected
   'where'" messages read better against the word actually written. *)

type t =
  | Int of int
  | Ident of string
  | Session_spec of string  (* the raw text between [live(] and [)] *)
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Comma
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | Eof

let to_string = function
  | Int i -> string_of_int i
  | Ident s -> s
  | Session_spec s -> s
  | Lparen -> "("
  | Rparen -> ")"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Comma -> ","
  | Eq -> "="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eof -> "end of query"

(* [pos] is the 0-based byte offset of the token's first character in the
   query string — what the caret in a diagnostic points at. *)
type spanned = { token : t; pos : int }
