(** Address-space layout of compiled MiniC programs.

    The machine's memory is sparse, so these regions cost nothing until
    touched. Code lives outside data memory (the program counter indexes
    instructions, Harvard-style), which is safe for this experiment: the
    paper never monitors code. *)

val data_base : int
(** Globals and static locals, allocated upward from here. *)

val heap_base : int
val heap_size : int
val heap_limit : int
(** The [malloc] arena is [[heap_base, heap_limit)]. *)

val stack_top : int
(** The stack grows down from here; a gap separates it from the heap so
    stray pointer bugs fault loudly instead of corrupting silently. *)

val word_size : int
(** 4 bytes; MiniC [int] and pointers are one word. *)
