(** The one rendering path shared by the batch CLI and the trace service.

    [ebp sessions] / [ebp experiment] and the serve daemon's
    {!Protocol.Sessions_query} / {!Protocol.Experiment_query} must produce
    byte-identical text for the same inputs — the service is a resident
    cache in front of the same computation, not a different one. Both
    front ends therefore render through this module; the equivalence is by
    construction and enforced end-to-end by [test/test_serve.ml] and
    [test/cram/serve.t]. *)

val sessions_report :
  (Ebp_sessions.Session.t * Ebp_sessions.Counts.t) list -> string
(** One line per session ([%-50s] session, then the counts) followed by
    the ["%d sessions"] summary line — exactly what [ebp sessions]
    prints. *)

val model_report :
  ?timing:Ebp_wms.Timing.t ->
  (Ebp_sessions.Session.t * Ebp_sessions.Counts.t) list ->
  approaches:Ebp_model.Strategy_model.approach list ->
  string
(** Modeled total overhead (µs) of each session under each approach — what
    [ebp sessions --approaches] appends after {!sessions_report}. The
    counts must carry every granularity the approaches reference
    (replay with matching [page_sizes]). *)

val experiment_artifacts : string list
(** The valid [artifact] selectors, ["full"] first. *)

val experiment_report :
  Ebp_core.Experiment.t -> artifact:string -> (string, string) result
(** Render one artifact of a finished experiment: ["full"],
    ["table1".."table4"], ["fig7".."fig9"], ["breakdown"], or
    ["expansion"]. [Error _] names the unknown artifact. *)
