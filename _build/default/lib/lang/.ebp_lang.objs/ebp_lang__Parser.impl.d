lib/lang/parser.ml: Array Ast Lexer List Printf Token
