lib/wms/monitor_map.mli: Ebp_util
