(** Access breakpoints: read {e and} write monitoring via code patching.

    The paper's WMS monitors writes only — "a notification each time the
    program writes to a distinguished region of memory" (§1). A debugger
    also wants the symmetric question answered: {e who reads this value?}
    CodePatch generalizes directly, which is itself an argument for the
    paper's conclusion: neither monitor registers (write-only on the i386)
    nor write-protection faults extend to reads this easily.

    {!instrument} patches every explicit store {e and} every load:

    - store stubs are [store; check; jump back] (notify after the write
      succeeds, §2);
    - load stubs are [check; load; jump back] — the check must precede the
      load because a load may clobber its own base register
      ([lw t0, 0(t0)]), and for a read the value is unchanged either way.

    Read and write monitors are independent {!Monitor_map}s; a range can be
    watched for reads, writes, or both. Every check charges one
    [SoftwareLookup], so enabling read monitoring roughly doubles
    CodePatch's per-instruction tax (loads outnumber stores in compiled
    code) — the price of the extra service. *)

type access = Read | Write

type notification = {
  access : access;
  range : Ebp_util.Interval.t;
  pc : int;  (** original index of the load/store *)
}

type patched

val instrument : Ebp_isa.Program.t -> patched
(** The input must be resolved. Implicit stores are skipped as always;
    all loads are patched (the MiniC compiler's frame reloads read saved
    registers, never user variables, so they cannot false-hit). *)

val program : patched -> Ebp_isa.Program.t
val patched_stores : patched -> int
val patched_loads : patched -> int
val expansion : patched -> float

type t

val attach :
  ?timing:Timing.t ->
  patched ->
  Ebp_machine.Machine.t ->
  notify:(notification -> unit) ->
  t
(** Takes over the machine's [Chk] handler. *)

val install :
  t -> on:[ `Read | `Write | `Both ] -> Ebp_util.Interval.t -> (unit, string) result

val remove :
  t -> on:[ `Read | `Write | `Both ] -> Ebp_util.Interval.t -> (unit, string) result

val read_hits : t -> int
val write_hits : t -> int
val lookups : t -> int
