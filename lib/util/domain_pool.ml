(* Work-queue domain pool. One mutex guards the queue, the stop flag, and
   every batch's completion counter; two conditions signal "queue became
   nonempty" (workers) and "a task finished" (the caller waiting out the
   tail of a batch it can no longer help with). *)

module Metrics = Ebp_obs.Metrics
module Span = Ebp_obs.Span

(* Pool observability: per-domain task counts and busy time (the metrics
   shards are per-domain, so the snapshot breakdown IS the utilization
   picture), queue-wait latency, and one span per task for the timeline.
   All of it is gated on Metrics.is_enabled — the disabled path adds one
   branch per task, nothing per queue operation. *)
let m_tasks = Metrics.counter "pool.tasks"
let m_busy = Metrics.counter "pool.busy_ns"
let m_queue_wait = Metrics.histogram "pool.queue_wait_ns"
let m_task_retries = Metrics.counter "pool.task_retries"

let p_task = Fault.point "pool.task"

type t = {
  domains : int;
  mutex : Mutex.t;
  nonempty : Condition.t;  (* a task was queued, or shutdown began *)
  finished : Condition.t;  (* some task completed *)
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.stop do
    Condition.wait t.nonempty t.mutex
  done;
  match Queue.take_opt t.queue with
  | None ->
      (* Stopped with an empty queue. *)
      Mutex.unlock t.mutex
  | Some task ->
      Mutex.unlock t.mutex;
      task ();
      worker_loop t

let create ?(domains = Domain.recommended_domain_count ()) () =
  let domains = max 1 domains in
  let t =
    {
      domains;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      finished = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [||];
    }
  in
  t.workers <-
    Array.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let domains t = t.domains

(* Execute one task under the pool's observability: a [pool.task] span
   (which also histograms its duration) plus the per-domain task and
   busy-time counters. Only reached when metrics are enabled. *)
let exec_observed task =
  Metrics.incr m_tasks;
  let started_ns = Span.now_ns () in
  Fun.protect
    ~finally:(fun () -> Metrics.add m_busy (Span.now_ns () - started_ns))
    (fun () -> Span.with_span "pool.task" task)

let max_task_attempts = 8

(* Containment: a task that dies with an injected transient fault — at
   the [pool.task] point itself or at any fault point it evaluates while
   running — is retried in place, so one crashing shard costs a retry
   instead of poisoning the whole batch. [Fault.Killed] (a simulated
   process death) and every real exception still propagate to the batch's
   caller as before. Tasks must therefore stay idempotent, which the
   experiment's (record / build / replay) tasks are. *)
let contain task () =
  let rec attempt n =
    match
      Fault.check p_task;
      task ()
    with
    | v -> v
    | exception Fault.Injected _ when n + 1 < max_task_attempts ->
        Metrics.incr m_task_retries;
        attempt (n + 1)
  in
  attempt 0

(* Queued tasks additionally record the enqueue-to-dequeue latency. *)
let instrument task =
  if not (Metrics.is_enabled ()) then task
  else begin
    let enqueued_ns = Span.now_ns () in
    fun () ->
      Metrics.observe m_queue_wait (Span.now_ns () - enqueued_ns);
      exec_observed task
  end

let run t tasks =
  match tasks with
  | [] -> []
  | tasks when t.domains = 1 || List.compare_length_with tasks 1 = 0 ->
      List.map
        (fun task ->
          let task = if Fault.active () then contain task else task in
          if Metrics.is_enabled () then exec_observed task else task ())
        tasks
  | tasks ->
      let tasks = Array.of_list tasks in
      let n = Array.length tasks in
      let results = Array.make n None in
      let remaining = ref n in
      let wrap i =
        let task = tasks.(i) in
        let task = if Fault.active () then contain task else task in
        let task = instrument task in
        fun () ->
        let r =
          match task () with
          | v -> Ok v
          | exception e -> Error e
        in
        Mutex.lock t.mutex;
        results.(i) <- Some r;
        decr remaining;
        Condition.broadcast t.finished;
        Mutex.unlock t.mutex
      in
      Mutex.lock t.mutex;
      for i = 0 to n - 1 do
        Queue.add (wrap i) t.queue
      done;
      Condition.broadcast t.nonempty;
      (* The caller drains the queue alongside the workers, then waits for
         tasks still in flight elsewhere. *)
      let rec drain () =
        match Queue.take_opt t.queue with
        | Some task ->
            Mutex.unlock t.mutex;
            task ();
            Mutex.lock t.mutex;
            drain ()
        | None ->
            while !remaining > 0 do
              Condition.wait t.finished t.mutex
            done
      in
      drain ();
      Mutex.unlock t.mutex;
      Array.to_list
        (Array.map
           (function
             | Some (Ok v) -> v
             | Some (Error e) -> raise e
             | None -> assert false)
           results)

let map t f xs = run t (List.map (fun x () -> f x) xs)

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  let workers = t.workers in
  t.workers <- [||];
  Array.iter Domain.join workers

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
