lib/wms/access_code_patch.mli: Ebp_isa Ebp_machine Ebp_util Timing
