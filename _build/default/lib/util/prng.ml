type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* SplitMix64 (Steele, Lea, Flood 2014): tiny state, good statistical
   quality, and trivially reproducible across platforms. *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound <= 0";
  let mask = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  mask mod bound

let int_in t ~lo ~hi =
  if lo > hi then invalid_arg "Prng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t =
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits /. 9007199254740992.0 (* 2^53 *)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))
