lib/wms/native_hardware.mli: Ebp_machine Timing Wms
