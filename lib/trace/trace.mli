(** Program event traces (phase 1 of the paper's experiment, Figure 1).

    A trace is the session-independent record of one program run:

    - [Install (obj, range)] — a monitorable object came to life at [range];
    - [Remove (obj, range)] — it died (or moved, for realloc);
    - [Write (range, pc)] — a user-code store wrote [range].

    Install/Remove events exist for {e every} object any monitor session
    might care about; the phase-2 replay filters them per session. Writes
    from system calls, the allocator, and implicit frame bookkeeping are
    absent by construction (§6).

    Traces can hold millions of events, so they are stored packed (four
    integers per event, object descriptors interned in a side table); use
    {!iter_raw} for throughput-critical consumers. *)

type event =
  | Install of { obj : Object_desc.t; range : Ebp_util.Interval.t }
  | Remove of { obj : Object_desc.t; range : Ebp_util.Interval.t }
  | Write of { range : Ebp_util.Interval.t; pc : int }

type t

(** Growable trace under construction. *)
module Builder : sig
  type trace := t
  type t

  val create : ?hint:int -> unit -> t
  (** [hint] is the expected event count (default 1024): a builder sized
      to its workload never reallocates, and {!finish} can hand over its
      buffer without copying. A wrong hint only costs the usual doubling
      or one final copy. *)

  val add_install : t -> Object_desc.t -> Ebp_util.Interval.t -> unit
  val add_remove : t -> Object_desc.t -> Ebp_util.Interval.t -> unit
  val add_write : t -> Ebp_util.Interval.t -> pc:int -> unit

  val register : t -> Object_desc.t -> int
  (** Assign the next object id to [obj] without an intern lookup, for
      callers that know the descriptor is fresh (the recorder mints one
      per activation). Ids from [register] and from the interning
      {!add_install}/{!add_remove} share one sequence, so the two styles
      may be mixed — but feeding the same descriptor to both creates two
      ids for it. *)

  val add_install_id : t -> int -> lo:int -> hi:int -> unit
  val add_remove_id : t -> int -> lo:int -> hi:int -> unit
  (** Allocation-free install/remove of a registered object over
      [[lo, hi]]. Requires [lo <= hi] and an id from {!register} (or the
      interning adders). *)

  val add_write_raw : t -> lo:int -> hi:int -> pc:int -> unit
  (** Allocation-free equivalent of {!add_write} for the phase-1 hot
      path: records the write [[lo, hi]] without going through an
      {!Ebp_util.Interval.t}. Requires [lo <= hi]. *)

  val length : t -> int

  val finish : t -> trace
  (** Freeze the builder into a trace. When the buffer is exactly full
      (precise [hint]), ownership transfers without a copy — do not add
      events to a finished builder. *)
end

val length : t -> int
val get : t -> int -> event
val iter : t -> (event -> unit) -> unit

(** Raw iteration: [tag] 0 = install, 1 = remove, 2 = write; [obj] is an
    object id valid for {!object_of_id}, or [-1] for writes; the write range
    is [[lo, hi]]; [pc] is [-1] for install/remove. *)
val iter_raw : t -> (tag:int -> obj:int -> lo:int -> hi:int -> pc:int -> unit) -> unit

val object_count : t -> int
val object_of_id : t -> int -> Object_desc.t
val objects : t -> Object_desc.t array
(** All interned descriptors, indexed by object id. *)

(** Summary counts. *)
type stats = {
  events : int;
  installs : int;
  removes : int;
  writes : int;
  distinct_objects : int;
  write_bytes : int;  (** total bytes written *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

(** {2 Serialization} *)

val to_text : t -> string
(** One event per line: ["I <obj> <lo> <hi>"], ["R <obj> <lo> <hi>"],
    ["W <lo> <hi> <pc>"]. *)

val of_text : string -> (t, string) result

val codec_version : string
(** Magic/version tag of the binary codec ("EBPT2"). {!Trace_cache}
    hashes it into every key, so bumping it orphans old cache entries
    instead of misreading them. *)

val encode : t -> string
(** Serialize to the compact binary format: struct-of-arrays columns with
    LEB128 varints, delta-encoded [lo] and write-[pc] chains (see the
    codec comment in the implementation). A workload trace lands around
    5 bytes/event against 32 for the old fixed-width layout. *)

val decode : string -> (t, string) result
(** Inverse of {!encode}. Rejects bad magic, truncated or trailing bytes,
    unknown event tags, and out-of-range object ids. *)

val write_binary : out_channel -> t -> unit
(** [output_string oc (encode t)]. *)

val read_binary : in_channel -> (t, string) result
(** Decode a trace from [ic], consuming the channel to end-of-file (the
    trace must be the final payload of the file). *)
