(** Streaming sealed-block trace format (EBPB1).

    The batch pipeline materializes the whole trace in memory before
    anything downstream can look at it. A {e stream} instead emits the
    trace as a sequence of sealed, CRC'd blocks with a fixed event budget
    ({!default_block_events}): the writer's state is O(block), and any
    byte prefix of the file parses into the trace of all sealed blocks —
    the {e prefix-consistency guarantee} live queries are built on.
    Layout, seal/merge rules, and the consistency argument are documented
    in [docs/STREAMING.md].

    A completed stream {!read} back is byte-identical (under
    {!Trace.encode}) to the trace the batch recorder would have built
    from the same run — the blocks carry exactly the builder's packed
    events and descriptor table, split at block boundaries. *)

val magic : string
(** File magic ("EBPB1"). *)

val default_block_events : int
(** Events per sealed block (64Ki) unless overridden at writer
    creation. *)

(** {2 Writing} *)

module Writer : sig
  type t

  (** Called after each block is sealed and written, with the block's
      first (global) event position, its event count, the total objects
      registered so far, and an iterator over the block's raw events
      (same field conventions as {!Trace.iter_raw}). This is where the
      incremental {!Write_index.Incremental} merge and checkpointing
      hook in. *)
  type on_seal =
    first:int ->
    count:int ->
    nobjs:int ->
    ((tag:int -> obj:int -> lo:int -> hi:int -> pc:int -> unit) -> unit) ->
    unit

  val create : ?block_events:int -> write:(string -> unit) -> unit -> t
  (** A writer emitting to [write] (a file, a buffer, a socket). The
      stream header is written immediately. [write] must append
      faithfully; it is called once per sealed record.
      @raise Invalid_argument if [block_events] is not positive. *)

  val set_on_seal : t -> on_seal -> unit

  val register : t -> Object_desc.t -> int
  (** Assign the next object id, as {!Trace.Builder.register}. The
      descriptor is emitted in the next sealed block; the writer retains
      nothing for already-sealed blocks. *)

  val add_install_id : t -> int -> lo:int -> hi:int -> unit
  val add_remove_id : t -> int -> lo:int -> hi:int -> unit
  val add_write_raw : t -> lo:int -> hi:int -> pc:int -> unit
  (** As the {!Trace.Builder} adders. Appending the block-budget'th
      pending event seals and writes the block (evaluating the
      [stream.seal] fault point — transient faults get three attempts
      before propagating). *)

  val finish : t -> unit
  (** Seal the final partial block and write the fin record. The writer
      must not be used afterwards. Idempotent. *)

  val block_events : t -> int
  val events : t -> int
  (** Events appended so far (sealed + pending). *)

  val sealed_events : t -> int
  (** Events in sealed blocks — the stream's current high-water mark. *)

  val pending_events : t -> int
  val object_count : t -> int
end

(** {2 Reading} *)

type prefix = {
  trace : Trace.t;  (** the trace of every sealed block in the prefix *)
  high_water : int;
      (** events covered — [Trace.length trace], named for the live-query
          protocol that reports it *)
  complete : bool;  (** a valid fin record ended the stream *)
}

val read_prefix : string -> (prefix, string) result
(** Parse a (possibly still-growing) stream image. A torn tail — a
    record cut mid-way or failing its CRC — ends the prefix; only a
    missing/bad header or a record whose CRC-intact bytes are
    semantically inconsistent (a writer bug, not a torn write) is
    [Error]. *)

val read : string -> (Trace.t, string) result
(** Strict read of a completed stream: requires the fin record and no
    trailing bytes. *)

val read_file : string -> (Trace.t, string) result
val read_prefix_file : string -> (prefix, string) result
