(** The simulated CPU.

    Executes a resolved {!Ebp_isa.Program.t} over a {!Memory.t}, accumulating
    a cycle count. The machine provides every architectural facility the
    paper's four write-monitor strategies need:

    - {b hardware monitor registers} (NativeHardware): a small, configurable
      number of address-range registers; a store that overlaps an active one
      completes and then transfers control to the monitor-fault handler —
      write {e monitors}, not write barriers (§2);
    - {b page protection faults} (VirtualMemory): a store to a read-only page
      does not complete; the write-fault handler is expected to emulate it
      via the privileged memory interface and execution resumes after the
      faulting instruction;
    - {b software traps} (TrapPatch): [Trap n] invokes the registered trap
      handler with the trapping pc;
    - {b inline checks} (CodePatch): [Chk] invokes the check handler with the
      effective address range;
    - {b store/enter/leave hooks} (trace generation): every successful,
      directly-executed store is reported, together with function-boundary
      markers and the current dynamic function context.

    Handlers are ordinary OCaml closures standing in for the operating
    system's signal delivery; the time they model is charged explicitly with
    {!charge} by the strategy implementations. *)

type t

type stop_reason =
  | Halted of int  (** [Halt] executed or {!halt} called; carries exit code *)
  | Out_of_fuel
  | Machine_error of string
      (** invalid pc, unaligned access, division by zero, unhandled fault *)

val create :
  ?mem:Memory.t ->
  ?costs:Cost_model.t ->
  ?monitor_reg_count:int ->
  Ebp_isa.Program.t ->
  t
(** [monitor_reg_count] defaults to 4, the most any processor of the paper's
    era provided (§3.1). @raise Invalid_argument on an unresolved program. *)

val memory : t -> Memory.t
val program : t -> Ebp_isa.Program.t

val get_reg : t -> Ebp_isa.Reg.t -> int
val set_reg : t -> Ebp_isa.Reg.t -> int -> unit
(** Writes to register [zero] are ignored. Values are truncated to 32-bit
    two's complement. *)

val pc : t -> int
val set_pc : t -> int -> unit

val cycles : t -> int
val charge : t -> int -> unit
(** Add modeled service time (in cycles) to the cycle counter. *)

val instructions_executed : t -> int

val func_stack : t -> int list
(** Dynamic function context, innermost first, maintained by
    [Enter]/[Leave] markers. *)

val halt : t -> int -> unit
(** Request an orderly stop with the given exit code (used by the [exit]
    system call). *)

(** {2 Execution-state snapshots}

    Checkpoint support: a {!snapshot} captures everything {!step} mutates
    {e except} memory (checkpointed separately as dirty-page deltas — see
    {!Memory.take_dirty}) and the hooks (closures over consumer state;
    the restore path re-attaches them). Snapshots are plain data with no
    machine reference, so they can be serialized. *)

type snapshot

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Restore registers, pc, counters, the function stack, halt state, and
    monitor registers onto [t], which must have been created from the
    same program shape.
    @raise Invalid_argument on a shape mismatch. *)

(** {2 Hooks and handlers} *)

val set_store_hook :
  t -> (t -> addr:int -> width:int -> value:int -> pc:int -> implicit:bool -> unit) option -> unit
(** Called after every store that executes directly (not via a fault
    handler's emulation). *)

val set_enter_hook : t -> (t -> int -> unit) option -> unit
val set_leave_hook : t -> (t -> int -> unit) option -> unit

val set_syscall_handler : t -> (t -> int -> unit) option -> unit
(** Without a handler, [Syscall] is a machine error. *)

val set_trap_handler : t -> (t -> code:int -> trap_pc:int -> unit) option -> unit

val set_write_fault_handler :
  t -> (t -> addr:int -> width:int -> value:int -> pc:int -> unit) option -> unit
(** Invoked when a store hits a read-only page. The store has {e not} been
    performed; the handler must emulate it (privileged store) if execution
    is to proceed correctly. Resumes after the faulting instruction. *)

val set_view_fault_handler :
  t -> (t -> addr:int -> width:int -> value:int -> pc:int -> unit) option -> unit
(** Invoked when a store clears the guest protection but hits a page that is
    read-only in the hypervisor data view ({!Memory.view_protect}) — the VB
    strategy's hypervisor exit. Same contract as the write-fault handler:
    the store has not been performed and must be emulated to proceed. A
    guest {!Memory.Write_fault} on the same page wins (it is delivered
    first). *)

val set_monitor_fault_handler :
  t -> (t -> reg:int -> addr:int -> width:int -> pc:int -> unit) option -> unit
(** Invoked after a store that overlaps an active monitor register. *)

val set_chk_handler :
  t -> (t -> range:Ebp_util.Interval.t -> pc:int -> unit) option -> unit
(** Invoked by the [Chk] instruction. Without a handler, [Chk] is a no-op
    (unpatched programs never execute one). *)

(** {2 Hardware monitor registers} *)

val monitor_reg_count : t -> int
val set_monitor_reg : t -> int -> Ebp_util.Interval.t option -> unit
(** @raise Invalid_argument on an out-of-range register index. *)

val monitor_reg : t -> int -> Ebp_util.Interval.t option

(** {2 Execution} *)

val step : t -> stop_reason option
(** Execute one instruction; [None] means the machine can continue. *)

val run : ?fuel:int -> t -> stop_reason
(** Run until halt, error, or [fuel] instructions (default 200 million). *)
