lib/util/prng.mli:
