(** Blocking client for the {!Protocol} service, behind [ebp client].

    A client owns one connection and runs one request/response exchange at
    a time (the protocol permits pipelining; this client does not use it).
    {!connect} retries for a moment before giving up, so a client started
    concurrently with the daemon (CI, scripts) does not race its bind. *)

type t

val connect :
  ?tenant:string ->
  ?retries:int ->
  ?retry_delay:float ->
  socket_path:string ->
  unit ->
  (t, string) result
(** Connect to the daemon at [socket_path] and complete the
    [Hello]/[Hello_ok] exchange as [tenant] (default ["default"]).
    Retries the connection [retries] times (default 40) every
    [retry_delay] seconds (default 0.05) while the socket is absent or
    refusing, then fails with a human-readable reason. *)

val request : t -> Protocol.request -> (Protocol.response, string) result
(** Send one request and block for its response. [Error _] reports a
    transport or framing failure (connection closed, corrupt frame) —
    service-level failures arrive as {!Protocol.Error_resp} /
    {!Protocol.Overloaded} responses. *)

val close : t -> unit

val with_client :
  ?tenant:string ->
  ?retries:int ->
  socket_path:string ->
  (t -> ('a, string) result) ->
  ('a, string) result
(** Scope a connection: connect, apply, close (also on exceptions). *)
