bin/ebp.ml: Arg Cmd Cmdliner Debug_repl Ebp_core Ebp_isa Ebp_lang Ebp_machine Ebp_runtime Ebp_sessions Ebp_trace Ebp_wms Ebp_workloads Format Fun List Option Printf Sys Term
