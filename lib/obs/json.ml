type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- writer --- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | Str s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* --- parser --- *)

exception Parse of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else error (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let len = String.length word in
    if !pos + len <= n && String.sub s !pos len = word then begin
      pos := !pos + len;
      v
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then error "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then error "truncated \\u escape";
                   let code =
                     try int_of_string ("0x" ^ String.sub s !pos 4)
                     with Failure _ -> error "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* Encode the code point as UTF-8 (BMP only; surrogate
                      pairs are not needed by our own writer). *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
                     Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                   end
               | c -> error (Printf.sprintf "bad escape \\%C" c));
            go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let number_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && number_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> error (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> error "expected ',' or ']'"
          in
          items []
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            (k, parse_value ())
          in
          let rec fields acc =
            let f = field () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields (f :: acc)
            | Some '}' -> advance (); Obj (List.rev (f :: acc))
            | _ -> error "expected ',' or '}'"
          in
          fields []
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse (at, msg) -> Error (Printf.sprintf "at offset %d: %s" at msg)

(* --- accessors --- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_list = function List xs -> Some xs | _ -> None
