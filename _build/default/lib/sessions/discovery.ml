module Object_desc = Ebp_trace.Object_desc
module Trace = Ebp_trace.Trace

let discover trace =
  let seen = Hashtbl.create 256 in
  let sessions = ref [] in
  let add s =
    if not (Hashtbl.mem seen s) then begin
      Hashtbl.add seen s ();
      sessions := s :: !sessions
    end
  in
  Array.iter
    (fun (obj : Object_desc.t) ->
      match obj with
      | Object_desc.Local { func; var; inst = _ } ->
          add (Session.One_local_auto { func; var });
          add (Session.All_local_in_func { func })
      | Object_desc.Local_static { func; var = _ } ->
          add (Session.All_local_in_func { func })
      | Object_desc.Global { var } -> add (Session.One_global_static { var })
      | Object_desc.Heap { context; seq } -> (
          match context with
          | [] -> ()
          | site :: _ ->
              add (Session.One_heap { site; seq });
              let distinct = List.sort_uniq String.compare context in
              List.iter (fun func -> add (Session.All_heap_in_func { func })) distinct))
    (Trace.objects trace);
  let order s =
    match Session.kind s with
    | Session.K_one_local_auto -> 0
    | Session.K_all_local_in_func -> 1
    | Session.K_one_global_static -> 2
    | Session.K_one_heap -> 3
    | Session.K_all_heap_in_func -> 4
  in
  List.stable_sort
    (fun a b -> Int.compare (order a) (order b))
    (List.rev !sessions)

let count_by_kind sessions =
  List.map
    (fun kind ->
      (kind, List.length (List.filter (fun s -> Session.kind s = kind) sessions)))
    Session.all_kinds
