CLI error paths: bad input earns a one-line diagnostic naming the offending
input and a nonzero exit — never an uncaught exception backtrace.

A stats file that does not exist:

  $ ebp stats missing.ndjson
  ebp: no snapshot file "missing.ndjson"
  [1]

A directory where a file was expected, for both readers:

  $ mkdir somedir
  $ ebp stats somedir
  ebp: "somedir" is a directory
  [1]
  $ ebp sessions somedir
  ebp: "somedir" is a directory
  [1]

A malformed --faults spec names the clause it could not parse:

  $ ebp sessions circuit --faults garbage
  ebp: bad --faults spec: clause "garbage" is not seed=N or PATTERN:TRIGGER:ACTION
  [1]

An unwritable trace output path:

  $ ebp trace circuit -o nosuchdir/x.trace
  ebp: cannot write "nosuchdir/x.trace": nosuchdir/x.trace: No such file or directory
  [1]

A name that is neither a workload nor a file:

  $ ebp run no-such-workload.mc
  ebp: no workload or file named "no-such-workload.mc"
  [1]

A trace file that is not a trace:

  $ echo "not a trace" > bogus.trace
  $ ebp sessions --from-trace bogus.trace
  ebp: bad trace file: bad trace magic
  [1]
