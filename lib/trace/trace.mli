(** Program event traces (phase 1 of the paper's experiment, Figure 1).

    A trace is the session-independent record of one program run:

    - [Install (obj, range)] — a monitorable object came to life at [range];
    - [Remove (obj, range)] — it died (or moved, for realloc);
    - [Write (range, pc)] — a user-code store wrote [range].

    Install/Remove events exist for {e every} object any monitor session
    might care about; the phase-2 replay filters them per session. Writes
    from system calls, the allocator, and implicit frame bookkeeping are
    absent by construction (§6).

    Traces can hold millions of events, so they are stored packed (four
    integers per event, object descriptors interned in a side table); use
    {!iter_raw} for throughput-critical consumers. *)

type event =
  | Install of { obj : Object_desc.t; range : Ebp_util.Interval.t }
  | Remove of { obj : Object_desc.t; range : Ebp_util.Interval.t }
  | Write of { range : Ebp_util.Interval.t; pc : int }

type t

(** Growable trace under construction. *)
module Builder : sig
  type trace := t
  type t

  val create : ?hint:int -> unit -> t
  (** [hint] is the expected event count (default 1024): a builder sized
      to its workload never reallocates, and {!finish} can hand over its
      buffer without copying. A wrong hint only costs the usual doubling
      or one final copy. *)

  val add_install : t -> Object_desc.t -> Ebp_util.Interval.t -> unit
  val add_remove : t -> Object_desc.t -> Ebp_util.Interval.t -> unit
  val add_write : t -> Ebp_util.Interval.t -> pc:int -> unit

  val register : t -> Object_desc.t -> int
  (** Assign the next object id to [obj] without an intern lookup, for
      callers that know the descriptor is fresh (the recorder mints one
      per activation). Ids from [register] and from the interning
      {!add_install}/{!add_remove} share one sequence, so the two styles
      may be mixed — but feeding the same descriptor to both creates two
      ids for it. *)

  val add_install_id : t -> int -> lo:int -> hi:int -> unit
  val add_remove_id : t -> int -> lo:int -> hi:int -> unit
  (** Allocation-free install/remove of a registered object over
      [[lo, hi]]. Requires [lo <= hi] and an id from {!register} (or the
      interning adders). *)

  val add_write_raw : t -> lo:int -> hi:int -> pc:int -> unit
  (** Allocation-free equivalent of {!add_write} for the phase-1 hot
      path: records the write [[lo, hi]] without going through an
      {!Ebp_util.Interval.t}. Requires [lo <= hi]. *)

  val length : t -> int

  val object_count : t -> int
  (** Object ids assigned so far (by {!register} or the interning
      adders). *)

  val finish : t -> trace
  (** Freeze the builder into a trace. When the buffer is exactly full
      (precise [hint]), ownership transfers without a copy — do not add
      events to a finished builder. *)
end

val length : t -> int
val get : t -> int -> event
val iter : t -> (event -> unit) -> unit

val get_raw :
  t -> int -> (tag:int -> obj:int -> lo:int -> hi:int -> pc:int -> 'a) -> 'a
(** Positional {!iter_raw}: decode the single event at an index (same
    field conventions) and pass it to the continuation. The random-access
    counterpart consumers like the query engine use to fetch attributes
    of events found through the {!Write_index} posting lists. Raises
    [Invalid_argument] out of range. *)

(** Raw iteration: [tag] 0 = install, 1 = remove, 2 = write; [obj] is an
    object id valid for {!object_of_id}, or [-1] for writes; the write range
    is [[lo, hi]]; [pc] is [-1] for install/remove. *)
val iter_raw : t -> (tag:int -> obj:int -> lo:int -> hi:int -> pc:int -> unit) -> unit

val iter_raw_range :
  t -> start:int -> stop:int ->
  (tag:int -> obj:int -> lo:int -> hi:int -> pc:int -> unit) -> unit
(** {!iter_raw} over events [start..stop-1]. Raises [Invalid_argument] on
    a range outside [0..length t]. Parallel consumers (the chunked index
    build) split a trace with this. *)

val iter_raw_skipping :
  t ->
  skip:(min_lo:int -> max_hi:int -> bool) ->
  on_skip:(writes:int -> unit) ->
  (tag:int -> obj:int -> lo:int -> hi:int -> pc:int -> unit) -> unit
(** {!iter_raw}, except that on a mapped trace (see {!map_columnar}) a
    block of events containing only writes may be skipped wholesale:
    when its summary shows no install/remove events and
    [skip ~min_lo ~max_hi] returns [true] for the bounds of its write
    ranges, [on_skip ~writes] is called with the block's write count
    instead of visiting the events. Consumers that only need write
    {e counts} from regions provably outside every monitorable range
    (the scan engine) go several times faster on sparse traces. On heap
    traces this is exactly [iter_raw]. *)

val install_bounds : t -> (int * int) option
(** [Some (lo, hi)] covering every install/remove range in the trace —
    the address space outside it can never produce a session hit or page
    touch. Available only on mapped traces (the EBPT3 header carries it);
    [None] on heap traces or when the trace installs nothing. *)

val is_mapped : t -> bool
(** [true] when the trace's columns live in an mmap'd file rather than on
    the OCaml heap. Mapped traces are immutable, safe to share read-only
    across domains, and remain valid after the backing file is unlinked
    (the mapping holds the inode); the mapping is released when the trace
    is garbage collected. *)

val object_count : t -> int
val object_of_id : t -> int -> Object_desc.t
val objects : t -> Object_desc.t array
(** All interned descriptors, indexed by object id. *)

(** Summary counts. *)
type stats = {
  events : int;
  installs : int;
  removes : int;
  writes : int;
  distinct_objects : int;
  write_bytes : int;  (** total bytes written *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

(** {2 Serialization} *)

val to_text : t -> string
(** One event per line: ["I <obj> <lo> <hi>"], ["R <obj> <lo> <hi>"],
    ["W <lo> <hi> <pc>"]. *)

val of_text : string -> (t, string) result

val codec_version : string
(** Magic/version tag of the binary codec ("EBPT2"). {!Trace_cache}
    hashes it into every key, so bumping it orphans old cache entries
    instead of misreading them. *)

val encode : t -> string
(** Serialize to the compact binary format: struct-of-arrays columns with
    LEB128 varints, delta-encoded [lo] and write-[pc] chains (see the
    codec comment in the implementation). A workload trace lands around
    5 bytes/event against 32 for the old fixed-width layout. *)

val decode : string -> (t, string) result
(** Inverse of {!encode}. Rejects bad magic, truncated or trailing bytes,
    unknown event tags, and out-of-range object ids. *)

val write_binary : out_channel -> t -> unit
(** [output_string oc (encode t)]. *)

val read_binary : in_channel -> (t, string) result
(** Decode a trace from [ic], consuming the channel to end-of-file (the
    trace must be the final payload of the file). *)

(** {2 EBPT3 — the zero-copy columnar layout}

    EBPT3 stores the four event columns as raw 8-byte-aligned
    little-endian words so a warm load is a single [mmap]: no per-event
    decode, no heap allocation proportional to the trace, one physical
    copy shared by every domain and process that maps the file. Files are
    self-sealed ("EBPZ" + CRC-32 trailer) and carry per-block min/max
    summaries that {!iter_raw_skipping} turns into block skipping. The
    full layout and the mmap lifetime/safety rules are documented in
    [docs/PERFORMANCE.md]. *)

val columnar_version : string
(** Magic/version tag of the columnar codec ("EBPT3"); cache keys hash it
    alongside {!codec_version}. *)

val encode_columnar : ?meta:string -> t -> string
(** Serialize to a complete, self-sealed EBPT3 file image (header,
    [meta], object table, block summaries, columns, CRC trailer). Larger
    than {!encode} (32 B/event) — it buys load time with disk, so it is
    written as a cache {e sidecar}, never the canonical copy. *)

val decode_columnar : string -> (t * string, string) result
(** Fully-checked inverse of {!encode_columnar}: verifies the CRC, every
    header field against the file length, object descriptors, event tags
    and ids, and that the block summaries match the events. Returns a
    heap trace plus the embedded [meta]. This is the verification path
    ([ebp cache verify], the fuzzer's columnar oracle). *)

val map_columnar : ?verify:bool -> string -> (t * string, string) result
(** Map the EBPT3 file at [path] and return a trace reading its columns
    in place. Validates the header, object table, exact file length,
    trailer magic, and the whole w0 column (tags/object ids) — but not
    the payload CRC, whose cost would rival the decode being avoided;
    run [ebp cache verify] (or pass [~verify:true], which loads through
    {!decode_columnar}) for full integrity checking. Any validation
    failure or I/O error is [Error]; callers fall back to the EBPT2
    entry. Under fault injection the [trace.codec.map] point may raise
    {!Ebp_util.Fault.Injected} — a transient miss, distinct from a bad
    file. *)
