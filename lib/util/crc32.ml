(* Table-driven reflected CRC-32, one table lookup per byte. The table is
   built on first use; 256 ints, shared by every domain (read-only after
   construction, and idempotent to race on). *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let sub s ~pos ~len =
  if pos < 0 || len < 0 || pos > String.length s - len then
    invalid_arg "Crc32.sub";
  let table = Lazy.force table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c :=
      Array.unsafe_get table ((!c lxor Char.code (String.unsafe_get s i)) land 0xff)
      lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let string s = sub s ~pos:0 ~len:(String.length s)
