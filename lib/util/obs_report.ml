module Metrics = Ebp_obs.Metrics

let fmt_ns ns =
  if ns < 1_000 then Printf.sprintf "%dns" ns
  else if ns < 1_000_000 then Printf.sprintf "%.1fus" (float_of_int ns /. 1e3)
  else if ns < 1_000_000_000 then Printf.sprintf "%.1fms" (float_of_int ns /. 1e6)
  else Printf.sprintf "%.2fs" (float_of_int ns /. 1e9)

(* Upper bound of the bucket where the [q]-quantile observation falls —
   the tightest statement a log-bucketed histogram supports, hence the
   "p90 <=" column heads. *)
let quantile_upper (h : Metrics.hist) q =
  let rank = max 1 (int_of_float (Float.round (q *. float_of_int h.Metrics.count))) in
  let rec go cum = function
    | [] -> h.Metrics.max_v
    | (k, n) :: rest ->
        if cum + n >= rank then min (Metrics.bucket_upper k) h.Metrics.max_v
        else go (cum + n) rest
  in
  go 0 h.Metrics.buckets

let counters_table counters =
  let rows =
    List.map
      (fun (name, total, per_domain) ->
        let breakdown =
          match per_domain with
          | [] | [ _ ] -> ""
          | ps ->
              String.concat " "
                (List.map (fun (dom, v) -> Printf.sprintf "%d:%d" dom v) ps)
        in
        [ name; string_of_int total; breakdown ])
      counters
  in
  "counters\n"
  ^ Text_table.render ~header:[ "counter"; "value"; "per-domain" ] ~rows ()

let gauges_table gauges =
  let rows =
    List.map (fun (name, v) -> [ name; Printf.sprintf "%.12g" v ]) gauges
  in
  "gauges\n" ^ Text_table.render ~header:[ "gauge"; "value" ] ~rows ()

let hists_table hists =
  let rows =
    List.map
      (fun (name, h) ->
        if h.Metrics.count = 0 then [ name; "0"; "-"; "-"; "-"; "-"; "-" ]
        else
          [
            name;
            string_of_int h.Metrics.count;
            fmt_ns (h.Metrics.sum / h.Metrics.count);
            fmt_ns h.Metrics.min_v;
            fmt_ns h.Metrics.max_v;
            fmt_ns (quantile_upper h 0.5);
            fmt_ns (quantile_upper h 0.9);
          ])
      hists
  in
  "timings (log-bucketed histograms, ns)\n"
  ^ Text_table.render
      ~header:[ "histogram"; "count"; "mean"; "min"; "max"; "p50<="; "p90<=" ]
      ~rows ()

let render (s : Metrics.snapshot) =
  let sections =
    (if s.Metrics.counters = [] then [] else [ counters_table s.Metrics.counters ])
    @ (if s.Metrics.gauges = [] then [] else [ gauges_table s.Metrics.gauges ])
    @ if s.Metrics.hists = [] then [] else [ hists_table s.Metrics.hists ]
  in
  match sections with
  | [] -> "no metrics recorded\n"
  | sections -> String.concat "\n" sections
