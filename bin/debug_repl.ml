(* An interactive watchpoint debugger — the product surface the paper's
   WMS exists to support ("our hope is that data breakpoints will be
   routinely supported in future debuggers", §9).

   Reads commands from stdin (scriptable via a pipe):

     strategy nh|vm|tp|cp|cp+hoist|cp-inline|vb   choose the WMS (before run)
     watch global <name>                       data breakpoint on a global
     watch local <func> <var>                  armed per activation
     watch heap <func> <n>                     nth allocation by <func>
     break [<value>]                           stop on [the first hit /
                                               the first hit storing value]
     run                                       execute to completion or break
     hits [<n>]                                show the last n hits (default 10)
     errors                                    arming failures, if any
     info                                      strategy, watches, stats
     help                                      this text
     quit                                      leave

   Used by `ebp debug <workload|file.mc>`. *)

module Debugger = Ebp_core.Debugger
module Loader = Ebp_runtime.Loader
module Machine = Ebp_machine.Machine

type state = {
  compiled : Ebp_lang.Compiler.output;
  mutable strategy : Debugger.strategy_kind;
  mutable watches : (string * (Debugger.t -> unit)) list;  (* reversed *)
  mutable break_value : int option option;
      (* None = no break; Some None = any hit; Some (Some v) = value v *)
  mutable last : Debugger.t option;  (* debugger of the last run *)
  seed : int;
}

let help_text =
  {|commands:
  strategy nh|vm|tp|cp|cp+hoist|cp-inline|vb
  watch global <name> | watch local <func> <var> | watch heap <func> <n>
  break [<value>]
  run
  hits [<n>] | errors | info
  help | quit|}

let strategy_of_name = function
  | "nh" -> Some Debugger.Native_hardware
  | "vm" -> Some Debugger.Virtual_memory
  | "tp" -> Some Debugger.Trap_patch
  | "cp" -> Some Debugger.Code_patch
  | "cp+hoist" -> Some Debugger.Code_patch_hoisted
  | "cp-inline" -> Some Debugger.Code_patch_inline
  | "vb" -> Some Debugger.Virtual_breakpoint
  | _ -> None

(* One "name=value" list for whatever auxiliary counters the strategy
   keeps (VM page misses, VB view switches, ...); empty for most. *)
let extras_line dbg =
  match (Debugger.strategy dbg).Ebp_wms.Wms.extras () with
  | [] -> None
  | extras ->
      Some
        (String.concat " "
           (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) extras))

let pp_hit i (h : Debugger.hit) =
  Printf.printf "  #%-3d %s = %d at pc %d in %s  (%s)\n" i
    (Ebp_util.Interval.to_string h.Debugger.write)
    h.Debugger.value h.Debugger.pc
    (Option.value ~default:"?" h.Debugger.func)
    (match h.Debugger.instr with
    | Some instr -> Ebp_isa.Instr.to_string instr
    | None -> "?")

let cmd_run st =
  let dbg = Debugger.load ~strategy:st.strategy ~seed:st.seed st.compiled in
  List.iter (fun (_, arm) -> arm dbg) (List.rev st.watches);
  (match st.break_value with
  | None -> ()
  | Some None -> Debugger.break_when dbg (fun _ -> true)
  | Some (Some v) -> Debugger.break_when dbg (fun h -> h.Debugger.value = v));
  let result = Debugger.run dbg in
  print_string result.Loader.output;
  (match result.Loader.status with
  | Machine.Halted 42 when Debugger.break_hit dbg <> None ->
      print_endline "stopped at data breakpoint:";
      Option.iter (pp_hit 0) (Debugger.break_hit dbg)
  | Machine.Halted code -> Printf.printf "program exited with code %d\n" code
  | Machine.Out_of_fuel -> print_endline "out of fuel"
  | Machine.Machine_error msg -> Printf.printf "machine error: %s\n" msg);
  Printf.printf "%d hits, %d cycles (%.2f ms simulated)\n"
    (List.length (Debugger.hits dbg))
    (Debugger.cycles dbg)
    (Ebp_machine.Cost_model.ms_of_cycles (Debugger.cycles dbg));
  Option.iter (Printf.printf "counters: %s\n") (extras_line dbg);
  st.last <- Some dbg

let cmd_hits st n =
  match st.last with
  | None -> print_endline "nothing has run yet"
  | Some dbg ->
      let hits = Debugger.hits dbg in
      let total = List.length hits in
      let shown = min n total in
      Printf.printf "%d hits total, showing last %d:\n" total shown;
      List.iteri
        (fun i h -> if i >= total - shown then pp_hit i h)
        hits

let cmd_errors st =
  match st.last with
  | None -> print_endline "nothing has run yet"
  | Some dbg -> (
      match Debugger.errors dbg with
      | [] -> print_endline "no arming errors"
      | errors -> List.iter (fun e -> Printf.printf "  %s\n" e) errors)

let cmd_info st =
  Printf.printf "strategy: %s\n" (Debugger.strategy_name st.strategy);
  Printf.printf "watches (%d):\n" (List.length st.watches);
  List.iter (fun (desc, _) -> Printf.printf "  %s\n" desc) (List.rev st.watches);
  (match st.break_value with
  | None -> ()
  | Some None -> print_endline "break: on first hit"
  | Some (Some v) -> Printf.printf "break: on first write of %d\n" v);
  match st.last with
  | None -> ()
  | Some dbg ->
      Printf.printf "last run: %d hits, %d errors\n"
        (List.length (Debugger.hits dbg))
        (List.length (Debugger.errors dbg));
      Option.iter (Printf.printf "counters: %s\n") (extras_line dbg)

let handle st line =
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | [] -> true
  | [ "quit" ] | [ "q" ] | [ "exit" ] -> false
  | [ "help" ] ->
      print_endline help_text;
      true
  | [ "strategy"; name ] ->
      (match strategy_of_name name with
      | Some s ->
          st.strategy <- s;
          Printf.printf "strategy set to %s\n" (Debugger.strategy_name s)
      | None ->
          print_endline "unknown strategy (nh|vm|tp|cp|cp+hoist|cp-inline|vb)");
      true
  | [ "watch"; "global"; name ] ->
      st.watches <-
        ( Printf.sprintf "global %s" name,
          fun dbg ->
            match Debugger.watch_global dbg name with
            | Ok () -> ()
            | Error e -> Printf.printf "watch failed: %s\n" e )
        :: st.watches;
      Printf.printf "watching global %s\n" name;
      true
  | [ "watch"; "local"; func; var ] ->
      st.watches <-
        ( Printf.sprintf "local %s.%s" func var,
          fun dbg ->
            match Debugger.watch_local dbg ~func ~var with
            | Ok () -> ()
            | Error e -> Printf.printf "watch failed: %s\n" e )
        :: st.watches;
      Printf.printf "watching local %s.%s\n" func var;
      true
  | [ "watch"; "heap"; site; nth ] -> (
      match int_of_string_opt nth with
      | Some nth when nth > 0 ->
          st.watches <-
            ( Printf.sprintf "heap %s#%d" site nth,
              fun dbg -> Debugger.watch_alloc dbg ~site ~nth )
            :: st.watches;
          Printf.printf "watching allocation %s#%d\n" site nth;
          true
      | _ ->
          print_endline "usage: watch heap <func> <n>";
          true)
  | [ "break" ] ->
      st.break_value <- Some None;
      print_endline "breaking on the first hit";
      true
  | [ "break"; v ] -> (
      match int_of_string_opt v with
      | Some v ->
          st.break_value <- Some (Some v);
          Printf.printf "breaking on the first write of %d\n" v;
          true
      | None ->
          print_endline "usage: break [<value>]";
          true)
  | [ "run" ] | [ "r" ] ->
      cmd_run st;
      true
  | [ "hits" ] ->
      cmd_hits st 10;
      true
  | [ "hits"; n ] ->
      (match int_of_string_opt n with
      | Some n when n > 0 -> cmd_hits st n
      | _ -> print_endline "usage: hits [<n>]");
      true
  | [ "errors" ] ->
      cmd_errors st;
      true
  | [ "info" ] ->
      cmd_info st;
      true
  | _ ->
      print_endline "unknown command; try 'help'";
      true

let run ~source ~seed =
  match Ebp_lang.Compiler.compile source with
  | Error msg ->
      prerr_endline ("compile error: " ^ msg);
      1
  | Ok compiled ->
      let st =
        {
          compiled;
          strategy = Debugger.Code_patch;
          watches = [];
          break_value = None;
          last = None;
          seed;
        }
      in
      let interactive = Unix.isatty Unix.stdin in
      let rec loop () =
        if interactive then (
          print_string "(ebp) ";
          flush stdout);
        match In_channel.input_line stdin with
        | None -> ()
        | Some line -> if handle st line then loop ()
      in
      loop ();
      0
