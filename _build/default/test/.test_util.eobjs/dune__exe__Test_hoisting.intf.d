test/test_hoisting.mli:
