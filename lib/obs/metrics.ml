(* Sharding layout: every domain owns one [shard] (reached through
   domain-local storage, created on first update) whose cells only that
   domain writes; the registry mutex guards registration, the shard list,
   snapshots, and gauges — never the update path. Domain ids are process-
   unique, so merged per-domain breakdowns never alias. *)

type counter = int
type gauge = int
type histogram = int

let enabled = ref false
let set_enabled b = enabled := b
let is_enabled () = !enabled

(* --- bucket geometry --- *)

let nbuckets = 64

let log2_floor v =
  let v = ref v and r = ref 0 in
  if !v lsr 32 <> 0 then begin r := !r + 32; v := !v lsr 32 end;
  if !v lsr 16 <> 0 then begin r := !r + 16; v := !v lsr 16 end;
  if !v lsr 8 <> 0 then begin r := !r + 8; v := !v lsr 8 end;
  if !v lsr 4 <> 0 then begin r := !r + 4; v := !v lsr 4 end;
  if !v lsr 2 <> 0 then begin r := !r + 2; v := !v lsr 2 end;
  if !v lsr 1 <> 0 then incr r;
  !r

let bucket_of_value v = if v <= 0 then 0 else 1 + min (nbuckets - 2) (log2_floor v)
let bucket_upper k = if k = 0 then 0 else (1 lsl k) - 1

(* A histogram cell: [nbuckets] bucket counts followed by count, sum,
   min, max. *)
let idx_count = nbuckets
let idx_sum = nbuckets + 1
let idx_min = nbuckets + 2
let idx_max = nbuckets + 3
let cell_len = nbuckets + 4

(* --- registry --- *)

type kind = C | G | H

let mutex = Mutex.create ()
let kinds : (string, kind * int) Hashtbl.t = Hashtbl.create 64
let counter_names = ref ([] : string list) (* newest first; index = pos from end *)
let gauge_names = ref ([] : string list)
let hist_names = ref ([] : string list)
let ncounters = ref 0
let ngauges = ref 0
let nhists = ref 0
let gauge_values = ref (Array.make 8 0.0)
let gauge_set = ref (Array.make 8 false)

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let kind_name = function C -> "counter" | G -> "gauge" | H -> "histogram"

let register kind count names name =
  locked (fun () ->
      match Hashtbl.find_opt kinds name with
      | Some (k, i) when k = kind -> i
      | Some (k, _) ->
          invalid_arg
            (Printf.sprintf "Metrics: %S is a %s, not a %s" name (kind_name k)
               (kind_name kind))
      | None ->
          let i = !count in
          incr count;
          names := name :: !names;
          Hashtbl.add kinds name (kind, i);
          i)

let counter name = register C ncounters counter_names name
let histogram name = register H nhists hist_names name

let gauge name =
  let i = register G ngauges gauge_names name in
  locked (fun () ->
      let len = Array.length !gauge_values in
      if i >= len then begin
        let values = Array.make (max (i + 1) (2 * len)) 0.0 in
        let set = Array.make (Array.length values) false in
        Array.blit !gauge_values 0 values 0 len;
        Array.blit !gauge_set 0 set 0 len;
        gauge_values := values;
        gauge_set := set
      end);
  i

(* --- shards --- *)

type shard = {
  dom : int;
  mutable c : int array; (* counter cells, by counter index *)
  mutable h : int array array; (* histogram cells, by histogram index *)
}

let shards = ref ([] : shard list)

let shard_key =
  Domain.DLS.new_key (fun () ->
      let s =
        { dom = (Domain.self () :> int); c = Array.make 16 0; h = Array.make 8 [||] }
      in
      locked (fun () -> shards := s :: !shards);
      s)

let counter_cells s i =
  let c = s.c in
  if i < Array.length c then c
  else begin
    let bigger = Array.make (max (i + 1) (2 * Array.length c)) 0 in
    Array.blit c 0 bigger 0 (Array.length c);
    s.c <- bigger;
    bigger
  end

let hist_cell s i =
  let h =
    let h = s.h in
    if i < Array.length h then h
    else begin
      let bigger = Array.make (max (i + 1) (2 * Array.length h)) [||] in
      Array.blit h 0 bigger 0 (Array.length h);
      s.h <- bigger;
      bigger
    end
  in
  if Array.length h.(i) = 0 then h.(i) <- Array.make cell_len 0;
  h.(i)

(* --- updates --- *)

let add i n =
  if !enabled then begin
    let s = Domain.DLS.get shard_key in
    let c = counter_cells s i in
    c.(i) <- c.(i) + n
  end

let incr i = add i 1

let set i v =
  if !enabled then
    locked (fun () ->
        !gauge_values.(i) <- v;
        !gauge_set.(i) <- true)

let observe i v =
  if !enabled then begin
    let s = Domain.DLS.get shard_key in
    let cell = hist_cell s i in
    let b = bucket_of_value v in
    cell.(b) <- cell.(b) + 1;
    if cell.(idx_count) = 0 || v < cell.(idx_min) then cell.(idx_min) <- v;
    if cell.(idx_count) = 0 || v > cell.(idx_max) then cell.(idx_max) <- v;
    cell.(idx_count) <- cell.(idx_count) + 1;
    cell.(idx_sum) <- cell.(idx_sum) + v
  end

(* --- snapshots --- *)

type hist = {
  count : int;
  sum : int;
  min_v : int;
  max_v : int;
  buckets : (int * int) list;
}

type snapshot = {
  counters : (string * int * (int * int) list) list;
  gauges : (string * float) list;
  hists : (string * hist) list;
}

(* [names] is newest-first; index k lives at position (n - 1 - k). *)
let names_array names n =
  let arr = Array.make n "" in
  List.iteri (fun pos name -> arr.(n - 1 - pos) <- name) names;
  arr

let by_name_fst (a, _) (b, _) = String.compare a b

let snapshot () =
  locked (fun () ->
      let shards = List.sort (fun a b -> compare a.dom b.dom) !shards in
      let cnames = names_array !counter_names !ncounters in
      let counters =
        List.init !ncounters (fun i ->
            let per_domain =
              List.filter_map
                (fun s ->
                  if i < Array.length s.c && s.c.(i) <> 0 then Some (s.dom, s.c.(i))
                  else None)
                shards
            in
            let total = List.fold_left (fun acc (_, v) -> acc + v) 0 per_domain in
            (cnames.(i), total, per_domain))
        |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
      in
      let hnames = names_array !hist_names !nhists in
      let hists =
        List.init !nhists (fun i ->
            let merged = Array.make cell_len 0 in
            let seen = ref false in
            List.iter
              (fun s ->
                if i < Array.length s.h && Array.length s.h.(i) <> 0 then begin
                  let cell = s.h.(i) in
                  if cell.(idx_count) > 0 then begin
                    for b = 0 to nbuckets - 1 do
                      merged.(b) <- merged.(b) + cell.(b)
                    done;
                    if not !seen || cell.(idx_min) < merged.(idx_min) then
                      merged.(idx_min) <- cell.(idx_min);
                    if not !seen || cell.(idx_max) > merged.(idx_max) then
                      merged.(idx_max) <- cell.(idx_max);
                    merged.(idx_count) <- merged.(idx_count) + cell.(idx_count);
                    merged.(idx_sum) <- merged.(idx_sum) + cell.(idx_sum);
                    seen := true
                  end
                end)
              shards;
            let buckets = ref [] in
            for b = nbuckets - 1 downto 0 do
              if merged.(b) <> 0 then buckets := (b, merged.(b)) :: !buckets
            done;
            ( hnames.(i),
              {
                count = merged.(idx_count);
                sum = merged.(idx_sum);
                min_v = merged.(idx_min);
                max_v = merged.(idx_max);
                buckets = !buckets;
              } ))
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      let gnames = names_array !gauge_names !ngauges in
      let gauges =
        List.init !ngauges (fun i ->
            if !gauge_set.(i) then Some (gnames.(i), !gauge_values.(i)) else None)
        |> List.filter_map Fun.id
        |> List.sort by_name_fst
      in
      { counters; gauges; hists })

let reset () =
  locked (fun () ->
      List.iter
        (fun s ->
          Array.fill s.c 0 (Array.length s.c) 0;
          Array.iter (fun cell -> Array.fill cell 0 (Array.length cell) 0) s.h)
        !shards;
      Array.fill !gauge_set 0 (Array.length !gauge_set) false)
