(** Monitor sessions (paper §5).

    A monitor session is a program-independent description of what to watch
    during one debugging run. The five types are the paper's:

    - [One_local_auto] — a single local automatic variable; {e all}
      instantiations (activations) belong to the session;
    - [All_local_in_func] — every local variable of one function, including
      local statics;
    - [One_global_static] — a single global;
    - [One_heap] — a single heap object, identified by its allocating
      function and allocation sequence number (realloc preserves identity);
    - [All_heap_in_func] — every heap object allocated by [func] or by any
      function executing in [func]'s dynamic context. *)

type t =
  | One_local_auto of { func : string; var : string }
  | All_local_in_func of { func : string }
  | One_global_static of { var : string }
  | One_heap of { site : string; seq : int }
  | All_heap_in_func of { func : string }

type kind =
  | K_one_local_auto
  | K_all_local_in_func
  | K_one_global_static
  | K_one_heap
  | K_all_heap_in_func

val kind : t -> kind
val kind_name : kind -> string
val all_kinds : kind list

val matches : t -> Ebp_trace.Object_desc.t -> bool
(** Does an install/remove event for this object belong to the session? *)

val index : t list -> Ebp_trace.Object_desc.t -> int list
(** [index sessions] precomputes a reverse lookup over [sessions]:
    [index sessions obj] is the ascending list of positions [i] such that
    [matches (List.nth sessions i) obj]. Each object names its candidate
    sessions directly (an install event carries the function, variable, or
    allocation context the five session types key on), so a lookup costs
    O(candidates) hashes instead of a test against every session —
    the indexed replay engine's object-matching inversion. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
