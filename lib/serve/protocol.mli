(** The EBPS wire protocol: length-prefixed, CRC-sealed binary frames over
    a byte stream (in practice, a Unix-domain socket).

    One frame carries one request or one response. The layout reuses the
    machinery the on-disk codecs already trust — LEB128 varints for every
    integer and {!Ebp_util.Crc32} sealing every frame — so a truncated or
    bit-flipped frame is detected before any payload field is believed:

    {v
    offset  size  field
    0       4     magic "EBPS"
    4       1     protocol version (0x01)
    5       1     frame type tag
    6       var   payload length N (LEB128 varint)
    ..      N     payload (fields per frame type)
    ..      4     CRC-32 (LE) of every preceding byte of the frame
    v}

    Inside payloads: integers are LEB128 varints, strings are a varint
    byte count followed by the bytes, booleans one byte (0/1), lists a
    varint count followed by the elements. The full specification, with a
    worked hex example, is [docs/SERVICE.md].

    Version negotiation happens in-band: a client's first frame should be
    {!Hello} carrying the highest protocol version it speaks; the server
    answers {!Hello_ok} with the version it chose (currently always 1) or
    an {!Error_resp} with {!Unsupported_version}. The frame envelope's
    version byte is fixed per connection after that; a frame with an
    unexpected version byte is a framing error and closes the connection.

    The decoder is strict: bad magic, an unknown version or type tag, an
    oversized length, a CRC mismatch, or payload bytes left over after
    the typed fields all reject the frame ({!decode} returns [`Corrupt]),
    and a prefix of a frame is reported as [`Need_more], never misread. *)

val protocol_version : int
(** The (single, currently) protocol version this build speaks: 1. *)

val magic : string
(** ["EBPS"]. *)

val max_payload : int
(** Upper bound on a frame's payload length (64 MiB). The decoder rejects
    larger claims up front, so a corrupt length field cannot provoke an
    attacker-sized allocation. *)

(** Machine-readable error category carried by {!Error_resp}. *)
type error_code =
  | Bad_request  (** malformed or inapplicable request *)
  | Unknown_workload
  | Unknown_artifact
  | Unsupported_version
  | Shutting_down  (** server is draining; retry against a new instance *)
  | Internal

val error_code_name : error_code -> string
(** Stable kebab-case name, e.g. ["unknown-workload"]. *)

type request =
  | Hello of { tenant : string; max_version : int }
      (** Identify the connection's tenant (fairness and metrics key) and
          negotiate the protocol version. Optional; an un-helloed
          connection runs as tenant ["default"]. *)
  | Ping
  | Sessions_query of {
      name : string;  (** display / cache-key name of the program *)
      source : string;  (** MiniC translation unit, sent inline *)
      seed : int;
      engine : string;
          (** ["auto"] (planner decides), ["indexed"], or ["scan"] *)
      keep_hitless : bool;
    }
      (** Phase-2 replay: discover sessions in a trace of [source] and
          count them. The response [Report] is byte-identical to
          [ebp sessions] output for the same inputs. *)
  | Experiment_query of { workloads : string list; artifact : string }
      (** Run the experiment over the named workloads and render one
          artifact: ["full"], ["table1".."table4"], ["fig7".."fig9"],
          ["breakdown"], or ["expansion"]. *)
  | Query of {
      name : string;  (** display / cache-key name of the program *)
      source : string;  (** MiniC translation unit, sent inline *)
      seed : int;
      expr : string;  (** query text, docs/QUERY.md grammar *)
      engine : string;  (** ["auto"], ["indexed"], or ["scan"] *)
      format : string;  (** ["table"] or ["ndjson"] *)
    }
      (** Run a trace query against a trace of [source]. A malformed or
          ill-typed [expr] is answered with a [Bad_request] error frame
          carrying the one-line caret diagnostic — never a disconnect.
          The response [Report] is byte-identical to [ebp query] output
          for the same inputs, whichever engine runs it. *)
  | Live_query of {
      name : string;  (** display / live-job key name of the program *)
      source : string;  (** MiniC translation unit, sent inline *)
      seed : int;
      expr : string;  (** query text, docs/QUERY.md grammar *)
      format : string;  (** ["table"] or ["ndjson"] *)
      min_events : int;
          (** answer only once the sealed prefix strictly exceeds this
              many events (or the recording completed) — pass the
              previous answer's [high_water] to poll for progress, 0 for
              the first sealed block *)
    }
      (** Streaming-pipeline query: start (or join) an in-progress
          recording of [source] on the server, advance it, and answer
          [expr] over the {e sealed prefix} of the trace — before the
          recording finishes. Answered with {!Live_report} carrying the
          prefix's high-water timestamp. Once complete, the report is
          byte-identical to a {!Query} of the same inputs with engine
          [auto]. See docs/STREAMING.md. *)
  | Stats_query  (** Fetch the server's live metrics snapshot. *)
  | Shutdown
      (** Graceful shutdown: the server acks, drains its queue, refuses
          new work, flushes, and exits. *)

type response =
  | Hello_ok of { version : int; server : string }
  | Pong
  | Report of string  (** rendered report text, exactly as the batch CLI *)
  | Stats of string  (** NDJSON metrics snapshot ({!Ebp_obs.Export}) *)
  | Live_report of { report : string; high_water : int; complete : bool }
      (** Answer to {!Live_query}: [report] covers exactly the first
          [high_water] events of the recording (the sealed prefix);
          [complete] means the recording has finished and the report is
          the final, batch-identical answer. *)
  | Error_resp of { code : error_code; message : string }
  | Overloaded of { queued : int; limit : int }
      (** Backpressure: the admission queue is full. The request was not
          queued and will not be answered; resubmit later. *)
  | Shutdown_ack

type frame = Request of request | Response of response

val equal_frame : frame -> frame -> bool

val encode : frame -> string
(** The complete frame for one request or response, ready to write. *)

val encode_request : request -> string
val encode_response : response -> string

val decode :
  buf:string ->
  pos:int ->
  len:int ->
  [ `Frame of frame * int | `Need_more | `Corrupt of string ]
(** [decode ~buf ~pos ~len] examines the [len] bytes of [buf] starting at
    [pos] — the readable prefix of a stream. [`Frame (f, consumed)] hands
    back one complete, CRC-verified frame and how many bytes it occupied;
    [`Need_more] means the prefix is a valid but incomplete frame;
    [`Corrupt reason] means the stream can no longer be trusted (the
    connection should be torn down after a best-effort error response).
    Evaluates the [serve.frame.decode] fault point, so the robustness
    suite can reject frames at will. *)

val pp_frame : Format.formatter -> frame -> unit
(** One-line human description, for logs and test failures. *)
