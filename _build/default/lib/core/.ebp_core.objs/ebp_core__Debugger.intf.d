lib/core/debugger.mli: Ebp_isa Ebp_lang Ebp_runtime Ebp_util Ebp_wms
