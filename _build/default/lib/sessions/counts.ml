(* Counting variables (paper §7, Figure 2): per-session totals the
   analytical models consume. The VM-specific counters are computed per
   page size (the paper reports 4K and 8K). *)

type vm = {
  page_size : int;
  protects : int;  (** VMProtect_σ: page monitor count went 0 → 1 *)
  unprotects : int;  (** VMUnprotect_σ: page monitor count went 1 → 0 *)
  active_page_misses : int;
      (** VMActivePageMiss_σ: monitor misses that wrote a page holding an
          active monitor of this session *)
}

type t = {
  installs : int;  (** InstallMonitor_σ *)
  removes : int;  (** RemoveMonitor_σ *)
  hits : int;  (** MonitorHit_σ *)
  misses : int;  (** MonitorMiss_σ: every other write in the run *)
  vm : vm list;  (** one entry per requested page size *)
}

let vm_for t ~page_size =
  match List.find_opt (fun v -> v.page_size = page_size) t.vm with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Counts.vm_for: no counters for page size %d" page_size)

let pp ppf t =
  Format.fprintf ppf "installs=%d removes=%d hits=%d misses=%d" t.installs
    t.removes t.hits t.misses;
  List.iter
    (fun v ->
      Format.fprintf ppf " [%dK: protect=%d unprotect=%d active_miss=%d]"
        (v.page_size / 1024) v.protects v.unprotects v.active_page_misses)
    t.vm
