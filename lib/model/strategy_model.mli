(** The paper's analytical models (§7.1, Figures 3–6).

    Each model combines a monitor session's counting variables
    ({!Ebp_sessions.Counts.t}) with timing variables ({!Ebp_wms.Timing.t})
    to estimate the overhead the strategy would impose on that session.
    The total is the sum of four components — handling hits, handling
    misses, installing monitors, removing monitors — exactly as in the
    paper's figures:

    {v
    NH: hit = Hits × NHFaultHandler                          (Figure 3)
    VM: hit  = Hits × (VMFaultHandler + SoftwareLookup)      (Figure 4)
        miss = ActivePageMiss × (VMFaultHandler + SoftwareLookup)
        inst = Installs × (VMUnprotect + SoftwareUpdate + VMProtect)
               + Protects × VMProtect
        rem  = Removes × (VMUnprotect + SoftwareUpdate + VMProtect)
               + Unprotects × VMUnprotect
    TP: hit/miss = (Hits|Misses) × (TPFaultHandler + SoftwareLookup)
        inst/rem = (Installs|Removes) × SoftwareUpdate       (Figure 5)
    CP: hit/miss = (Hits|Misses) × SoftwareLookup
        inst/rem = (Installs|Removes) × SoftwareUpdate       (Figure 6)
    VB: hit  = Hits × (VBExit + VBViewSwitch + SoftwareLookup)
        miss = ActivePageMiss × (VBExit + VBViewSwitch + SoftwareLookup)
        inst = Installs × (VBViewUpdate + SoftwareUpdate)
               + Protects × VBViewUpdate
        rem  = Removes × (VBViewUpdate + SoftwareUpdate)
               + Unprotects × VBViewUpdate
    v}

    VB is not from the 1992 paper: it models the virtualization-based
    strategy of Price, {e Virtual Breakpoints for x86/64}
    ({{:https://arxiv.org/pdf/1801.09250}arXiv:1801.09250}) — EPT-style
    split code/data views. Its fault-generating sets are identical to VM at
    the view granularity (any store into a protected unit traps), but each
    trap is a hypervisor exit plus a view switch rather than a guest page
    fault, and protection changes are hypervisor view updates, invisible to
    the guest — no mprotect pair, no guest TLB shootdown. *)

type approach =
  | NH
  | VM of int  (** page size in bytes (the paper reports 4096 and 8192) *)
  | TP
  | CP
  | VB of int
      (** virtualization-based breakpoints (Price, arXiv:1801.09250): a
          hypervisor keeps a second, write-protected {e data view} of guest
          memory while instruction fetch rides the unmodified {e code view}.
          The argument is the view granularity in bytes (the protection unit
          of the second-level mapping, typically the page size). *)
  | Remote of approach
      (** the §3.4 ptrace-style variant: the WMS mapping lives in a separate
          address space (typically the debugger's), so every fault-driven
          event additionally pays a context-switch round trip. Applies to
          NH, VM, and TP; [Remote CP] is rejected — CodePatch's inline
          checks {e must} read the mapping in-process, which is exactly the
          paper's argument for keeping a little read-only WMS data in the
          debuggee (§3.4, §9). [Remote (VB _)] is accepted with the exit
          cost doubled instead: the VB debugger already runs outside the
          guest, so out-of-guest delivery costs one extra hypervisor exit
          per fault ([VBRemoteExit]), not a context-switch round trip. *)

val name : approach -> string
(** ["NH"], ["VM-4K"], ["VM-8K"], ["VM-<n>"], ["TP"], ["CP"], ["VB-4K"],
    ["VB-<n>"]; [Remote] appends ["-rem"]. *)

val long_name : approach -> string
(** ["NativeHardware"], ["VirtualMemory-4K"], ["VirtualBreakpoint-4K"], ... *)

val of_name : string -> (approach, string) result
(** Parse {!name} output back into an approach: [NH], [TP], [CP],
    [VM-<size>], [VB-<size>] (size in bytes, or [<n>K]), optionally
    suffixed [-rem]. Rejects [CP-rem] and nested [-rem] with an
    explanation. *)

val default_approaches : approach list
(** The paper's five columns plus the VB pair:
    [NH; VM 4096; VM 8192; TP; CP; VB 4096; VB 8192]. *)

(** Modeled overhead of one session under one approach, in microseconds. *)
type overhead = {
  hit_us : float;
  miss_us : float;
  install_us : float;
  remove_us : float;
  total_us : float;
  breakdown : (string * float) list;
      (** per timing variable, e.g. [("VMFaultHandler", 123.0)]; sums to
          [total_us] *)
}

val overhead : Ebp_wms.Timing.t -> approach -> Ebp_sessions.Counts.t -> overhead
(** @raise Invalid_argument for [VM ps] / [VB ps] when the counts lack page
    size [ps], and for [Remote CP] or nested [Remote]. *)

val relative : overhead -> base_ms:float -> float
(** Relative overhead: modeled overhead divided by base execution time
    (both in consistent units). [base_ms] must be positive. *)
