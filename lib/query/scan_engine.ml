(* The streaming scan engine: one pass over the trace, evaluating the
   predicate directly against each write while maintaining the active
   install windows the [live] atoms and [group by object] need. It is
   deliberately the simplest possible executor — the differential oracle
   the compiled engine is asserted against, the same role the scan
   replay engine plays for indexed replay. *)

module Trace = Ebp_trace.Trace
module Session = Ebp_sessions.Session

(* The predicate with [live] atoms numbered, so the pass keeps one
   active-window table per atom. *)
type ipred =
  | I_all
  | I_pc_cmp of Ast.cmp * int
  | I_pc_in of int * int
  | I_addr_in of int * int
  | I_time_in of int * int
  | I_live of int
  | I_and of ipred * ipred
  | I_or of ipred * ipred
  | I_not of ipred

let number_atoms pred =
  let atoms = ref [] in
  let n = ref 0 in
  let rec conv (p : Ast.pred) =
    match p with
    | Ast.All -> I_all
    | Ast.Pc_cmp (c, v) -> I_pc_cmp (c, v)
    | Ast.Pc_in (a, b) -> I_pc_in (a, b)
    | Ast.Addr_in (a, b) -> I_addr_in (a, b)
    | Ast.Time_in (a, b) -> I_time_in (a, b)
    | Ast.Live s ->
        atoms := s :: !atoms;
        incr n;
        I_live (!n - 1)
    | Ast.And (a, b) ->
        let a = conv a in
        I_and (a, conv b)
    | Ast.Or (a, b) ->
        let a = conv a in
        I_or (a, conv b)
    | Ast.Not a -> I_not (conv a)
  in
  let ip = conv pred in
  (ip, Array.of_list (List.rev !atoms))

let cmp_holds (c : Ast.cmp) x n =
  match c with
  | Ast.Eq -> x = n
  | Ast.Ne -> x <> n
  | Ast.Lt -> x < n
  | Ast.Le -> x <= n
  | Ast.Gt -> x > n
  | Ast.Ge -> x >= n

let run trace (q : Ast.query) : Qresult.raw =
  let ipred, atom_sessions = number_atoms q.Ast.pred in
  let natoms = Array.length atom_sessions in
  let nobjs = Trace.object_count trace in
  (* Which atoms each object id matches, precomputed once. *)
  let obj_atoms = Array.make nobjs [] in
  if natoms > 0 then
    for o = 0 to nobjs - 1 do
      let desc = Trace.object_of_id trace o in
      let matching = ref [] in
      for a = natoms - 1 downto 0 do
        if Session.matches atom_sessions.(a) desc then matching := a :: !matching
      done;
      obj_atoms.(o) <- !matching
    done;
  let active = Array.init natoms (fun _ -> Hashtbl.create 16) in
  let group_objects = q.Ast.group = Some Ast.G_object in
  let group_active : (int, int * int) Hashtbl.t = Hashtbl.create 16 in
  (* Aggregation state. *)
  let count = ref 0 in
  let distinct : (int, unit) Hashtbl.t = Hashtbl.create 64 in
  let groups : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let buckets : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let bump tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)) in
  let overlaps lo hi (alo, ahi) = lo <= ahi && hi >= alo in
  let live_hit a lo hi =
    let tbl = active.(a) in
    try
      Hashtbl.iter (fun _ r -> if overlaps lo hi r then raise Exit) tbl;
      false
    with Exit -> true
  in
  let rec eval p ~i ~lo ~hi ~pc =
    match p with
    | I_all -> true
    | I_pc_cmp (c, n) -> cmp_holds c pc n
    | I_pc_in (a, b) -> pc >= a && pc <= b
    | I_addr_in (a, b) -> lo <= b && hi >= a
    | I_time_in (a, b) -> i >= a && i <= b
    | I_live a -> live_hit a lo hi
    | I_and (a, b) -> eval a ~i ~lo ~hi ~pc && eval b ~i ~lo ~hi ~pc
    | I_or (a, b) -> eval a ~i ~lo ~hi ~pc || eval b ~i ~lo ~hi ~pc
    | I_not a -> not (eval a ~i ~lo ~hi ~pc)
  in
  let i = ref 0 in
  Trace.iter_raw trace (fun ~tag ~obj ~lo ~hi ~pc ->
      let pos = !i in
      incr i;
      if tag = 2 then begin
        if eval ipred ~i:pos ~lo ~hi ~pc then begin
          match (q.Ast.agg, q.Ast.group, q.Ast.bucket) with
          | Ast.Count_distinct Ast.D_pc, _, _ -> Hashtbl.replace distinct pc ()
          | Ast.Count_distinct Ast.D_word, _, _ ->
              for w = lo lsr 2 to hi lsr 2 do
                Hashtbl.replace distinct w ()
              done
          | Ast.Count, Some Ast.G_pc, _ -> bump groups pc
          | Ast.Count, Some Ast.G_object, _ ->
              (* A write can land in several live objects; it counts for
                 each (documented multi-count semantics). *)
              Hashtbl.iter
                (fun o r -> if overlaps lo hi r then bump groups o)
                group_active
          | Ast.Count, None, Some width -> bump buckets (pos / width)
          | Ast.Count, None, None -> incr count
        end
      end
      else begin
        (* tag 0 = install, 1 = remove; a re-install replaces the
           window's range, a remove ends it. *)
        List.iter
          (fun a ->
            if tag = 0 then Hashtbl.replace active.(a) obj (lo, hi)
            else Hashtbl.remove active.(a) obj)
          obj_atoms.(obj);
        if group_objects then
          if tag = 0 then Hashtbl.replace group_active obj (lo, hi)
          else Hashtbl.remove group_active obj
      end);
  let sorted_pairs tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  match (q.Ast.agg, q.Ast.group, q.Ast.bucket) with
  | Ast.Count_distinct _, _, _ -> Qresult.Count (Hashtbl.length distinct)
  | Ast.Count, Some _, _ -> Qresult.Groups (sorted_pairs groups)
  | Ast.Count, None, Some width ->
      Qresult.Buckets (List.map (fun (b, c) -> (b * width, c)) (sorted_pairs buckets))
  | Ast.Count, None, None -> Qresult.Count !count
