(* Entry layout: magic, 8-byte LE meta length, meta bytes, then the trace
   in the Trace binary codec. The version constant below is hashed into
   every key, so bumping it (e.g. on a codec change) silently orphans old
   entries instead of misreading them. *)

let version = "ebp-trace-cache-v1"
let magic = "EBPC1"

let default_dir () =
  let absolute p = String.length p > 0 && p.[0] = '/' in
  match Sys.getenv_opt "XDG_CACHE_HOME" with
  | Some dir when absolute dir -> Filename.concat dir "ebp"
  | _ -> (
      match Sys.getenv_opt "HOME" with
      | Some home when absolute home ->
          Filename.concat (Filename.concat home ".cache") "ebp"
      | _ -> ".ebp-cache")

let make_key ~name ~source ~seed ?fuel () =
  let fuel = match fuel with None -> "unlimited" | Some n -> string_of_int n in
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [ version; name; Digest.to_hex (Digest.string source);
            string_of_int seed; fuel ]))

let entry_path ~dir ~key = Filename.concat dir (key ^ ".trace")

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.is_directory dir -> ()
  end

let write_int oc v =
  for i = 0 to 7 do
    output_byte oc ((v lsr (8 * i)) land 0xff)
  done

let read_int ic =
  let v = ref 0 in
  for i = 0 to 7 do
    v := !v lor (input_byte ic lsl (8 * i))
  done;
  !v

let store ~dir ~key ?(meta = "") trace =
  match
    mkdir_p dir;
    let tmp = Filename.temp_file ~temp_dir:dir ("." ^ key) ".tmp" in
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
      (fun () ->
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc magic;
            write_int oc (String.length meta);
            output_string oc meta;
            Trace.write_binary oc trace);
        Sys.rename tmp (entry_path ~dir ~key))
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg

let index_key ~key ~page_sizes =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          (version :: key :: Write_index.codec_version
          :: List.map string_of_int page_sizes)))

let index_path ~dir ~key ~page_sizes =
  Filename.concat dir (index_key ~key ~page_sizes ^ ".widx")

let store_index ~dir ~key ~page_sizes index =
  match
    mkdir_p dir;
    let ikey = index_key ~key ~page_sizes in
    let tmp = Filename.temp_file ~temp_dir:dir ("." ^ ikey) ".tmp" in
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
      (fun () ->
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> Write_index.write_binary oc index);
        Sys.rename tmp (index_path ~dir ~key ~page_sizes))
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg

let lookup_index ~dir ~key ~page_sizes =
  let path = index_path ~dir ~key ~page_sizes in
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match Write_index.read_binary ic with
          | Ok index -> Some index
          | Error _ -> None
          | exception (End_of_file | Sys_error _ | Invalid_argument _) -> None)

let lookup ~dir ~key =
  let path = entry_path ~dir ~key in
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match
            let got = really_input_string ic (String.length magic) in
            if got <> magic then None
            else
              let len = read_int ic in
              let meta = really_input_string ic len in
              match Trace.read_binary ic with
              | Ok trace -> Some (trace, meta)
              | Error _ -> None
          with
          | entry -> entry
          | exception (End_of_file | Sys_error _ | Invalid_argument _) -> None)
