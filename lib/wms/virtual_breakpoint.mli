(** The VB strategy: virtualization-based breakpoints.

    Not one of the paper's four — this is the strategy of Price,
    {e Virtual Breakpoints for x86/64}
    ({{:https://arxiv.org/pdf/1801.09250}arXiv:1801.09250}), transplanted
    onto the simulator. A hypervisor maintains two second-level views of
    guest memory: instruction fetch rides the unmodified {e code view},
    while data accesses go through a {e data view} in which every unit
    holding an active monitor is write-protected
    ({!Ebp_machine.Memory.view_protect}). A store into a protected unit
    exits to the hypervisor, which switches to the data view, single-steps
    the store (collapsed to a privileged store here), consults the
    address→monitor mapping, and re-enters the guest.

    Structurally this is VirtualMemory with the protection domain hoisted
    out of the guest:

    - the guest never sees a protection change — no mprotect pair, no
      guest-visible fault, so there are no per-page double-fault storms and
      nothing for the debuggee to observe or subvert;
    - no code is patched (unlike TP/CP), so code pages stay byte-identical
      and self-checksumming programs are undisturbed;
    - each trap costs a hypervisor exit + view switch rather than a SunOS
      signal delivery, and mapping updates are hypervisor view updates.

    Like VM, stores to a protected unit that miss every monitor still trap
    (false sharing at the view granularity); {!view_miss_faults} counts
    them. Timing is charged to the machine's cycle counter from the
    [vb_*] fields of {!Timing.t}, keeping live runs and the
    {!Ebp_model.Strategy_model} [VB] prediction in agreement. *)

type t

val attach :
  ?timing:Timing.t ->
  ?granularity:int ->
  Ebp_machine.Machine.t ->
  notify:(Wms.notification -> unit) ->
  t
(** Attach to a machine: installs the view-fault handler. [granularity] is
    the protection unit of the data view in bytes — a positive power-of-two
    multiple of 4 (defaults to the machine's memory page size). *)

val install : t -> Ebp_util.Interval.t -> (unit, string) result
val remove : t -> Ebp_util.Interval.t -> (unit, string) result

val strategy : t -> Wms.strategy
(** First-class handle (name ["VirtualBreakpoint"]). Extras report
    [view_switch_faults] and [view_miss_faults]. *)

val stats : t -> Wms.stats

val view_switch_faults : t -> int
(** Total hypervisor exits taken (hits + misses). *)

val view_miss_faults : t -> int
(** Exits whose store hit a protected unit but no monitor — the VB
    analogue of {!Virtual_memory.page_miss_faults}. *)
