lib/util/bar_chart.ml: Buffer Float List Printf String
