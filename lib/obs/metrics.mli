(** Process-wide metrics registry: named counters, gauges, and log-bucketed
    histograms, with per-domain sharded cells.

    The design goal is a hot path that costs nothing when observability is
    off and almost nothing when it is on:

    - Disabled (the default), every update compiles down to one load and
      one conditional branch on the {!is_enabled} flag.
    - Enabled, an update touches only cells owned by the calling domain
      (reached through domain-local storage), so increments take no lock
      and cost about one array write. Shards are merged at {!snapshot}
      time.

    Metrics are registered by name; registering the same name twice
    returns the same metric, so modules can declare their instruments at
    top level without coordination. Names are dotted lowercase paths
    ([trace_cache.hits], [pool.busy_ns]); by convention every histogram
    records {e nanoseconds} and carries a [_ns] suffix (spans aggregate
    under [span.<name>], also in ns).

    Consistency contract: shard cells are plain (non-atomic) fields, so a
    snapshot taken while other domains are mid-update may miss their most
    recent writes. Updates made by a task submitted to
    [Ebp_util.Domain_pool] are visible to any snapshot taken after the
    batch returns (the pool's own synchronization orders them); in
    general, quiesce the domains you care about before snapshotting. *)

type counter
type gauge
type histogram

(** {1 The global switch} *)

val set_enabled : bool -> unit
(** Turns the whole subsystem on or off (initially off). Flip it before
    spawning the domains whose updates you want to see. *)

val is_enabled : unit -> bool

(** {1 Registration} *)

val counter : string -> counter
(** [counter name] registers (or finds) the monotonic counter [name].
    @raise Invalid_argument if [name] is registered with another kind. *)

val gauge : string -> gauge
(** A last-value-wins cell for low-frequency measurements (sizes, byte
    totals). Gauge writes take the registry lock; keep them rare. *)

val histogram : string -> histogram
(** A base-2 log-bucketed histogram of nonnegative integers (by
    convention, nanoseconds): bucket 0 holds values [<= 0], bucket [k]
    ([1..63]) holds [2^(k-1) <= v < 2^k]. Count, sum, min, and max are
    tracked exactly; the distribution is bucketed. *)

(** {1 Updates (hot path)} *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit
val observe : histogram -> int -> unit

(** {1 Snapshots} *)

type hist = {
  count : int;
  sum : int;
  min_v : int;  (** meaningful only when [count > 0] *)
  max_v : int;  (** meaningful only when [count > 0] *)
  buckets : (int * int) list;
      (** [(k, n)]: [n] values fell in bucket [k]; nonzero buckets only,
          ascending [k]. *)
}

type snapshot = {
  counters : (string * int * (int * int) list) list;
      (** name, merged total, and the per-domain breakdown
          [(domain_id, value)] of the shards that contributed (nonzero
          cells only, ascending domain id). *)
  gauges : (string * float) list;  (** gauges that have been set *)
  hists : (string * hist) list;
}
(** Every list is sorted by metric name, so equal registries with equal
    cells render and serialize identically. *)

val snapshot : unit -> snapshot
(** Merge all shards (live and dead domains alike) into one view. Zero
    counters and never-observed histograms are included with zero values;
    never-set gauges are omitted. *)

val reset : unit -> unit
(** Zero every cell and forget gauge values, keeping registrations. Only
    call while no other domain is updating. *)

(** {1 Bucket geometry} *)

val bucket_of_value : int -> int
(** The bucket index [observe] files a value under. *)

val bucket_upper : int -> int
(** Inclusive upper bound of bucket [k]: [0] for bucket 0, else
    [2^k - 1]. *)
