exception Parse_error of string

type state = { tokens : Lexer.spanned array; mutable pos : int }

let current st = st.tokens.(st.pos)
let peek_tok st = (current st).token
let peek2_tok st =
  if st.pos + 1 < Array.length st.tokens then Some st.tokens.(st.pos + 1).token
  else None

let line st = (current st).line

let fail st msg =
  raise (Parse_error (Printf.sprintf "line %d: %s (at %S)" (line st) msg
                        (Token.to_string (peek_tok st))))

let advance st = if st.pos + 1 < Array.length st.tokens then st.pos <- st.pos + 1

let eat st tok =
  if Token.equal (peek_tok st) tok then advance st
  else fail st (Printf.sprintf "expected %S" (Token.to_string tok))

let accept st tok =
  if Token.equal (peek_tok st) tok then begin
    advance st;
    true
  end
  else false

let ident st =
  match peek_tok st with
  | Token.Ident name ->
      advance st;
      name
  | _ -> fail st "expected an identifier"

(* --- types --- *)

let base_type st =
  match peek_tok st with
  | Token.Kw_int ->
      advance st;
      Ast.T_int
  | Token.Kw_void ->
      advance st;
      Ast.T_void
  | _ -> fail st "expected a type"

let with_stars st base =
  let rec go t = if accept st Token.Star then go (Ast.T_ptr t) else t in
  go base

let parse_type st = with_stars st (base_type st)

let starts_type st =
  match peek_tok st with Token.Kw_int | Token.Kw_void -> true | _ -> false

(* --- expressions --- *)

let binop_of_token = function
  | Token.Plus -> Some Ast.B_add
  | Token.Minus -> Some Ast.B_sub
  | Token.Star -> Some Ast.B_mul
  | Token.Slash -> Some Ast.B_div
  | Token.Percent -> Some Ast.B_rem
  | Token.Amp -> Some Ast.B_and
  | Token.Pipe -> Some Ast.B_or
  | Token.Caret -> Some Ast.B_xor
  | Token.Shl -> Some Ast.B_shl
  | Token.Shr -> Some Ast.B_shr
  | Token.And_and -> Some Ast.B_land
  | Token.Or_or -> Some Ast.B_lor
  | Token.Eq_eq -> Some Ast.B_eq
  | Token.Bang_eq -> Some Ast.B_ne
  | Token.Lt -> Some Ast.B_lt
  | Token.Le -> Some Ast.B_le
  | Token.Gt -> Some Ast.B_gt
  | Token.Ge -> Some Ast.B_ge
  | _ -> None

(* C precedence levels, highest binding first. *)
let precedence = function
  | Ast.B_mul | Ast.B_div | Ast.B_rem -> 10
  | Ast.B_add | Ast.B_sub -> 9
  | Ast.B_shl | Ast.B_shr -> 8
  | Ast.B_lt | Ast.B_le | Ast.B_gt | Ast.B_ge -> 7
  | Ast.B_eq | Ast.B_ne -> 6
  | Ast.B_and -> 5
  | Ast.B_xor -> 4
  | Ast.B_or -> 3
  | Ast.B_land -> 2
  | Ast.B_lor -> 1

let mk st e = { Ast.e; e_line = line st }

let rec parse_expr_prec st min_prec =
  let lhs = parse_unary st in
  climb st lhs min_prec

and climb st lhs min_prec =
  match binop_of_token (peek_tok st) with
  | Some op when precedence op >= min_prec ->
      let prec = precedence op in
      advance st;
      let rhs = parse_expr_prec st (prec + 1) in
      climb st { Ast.e = Ast.E_binop (op, lhs, rhs); e_line = lhs.Ast.e_line } min_prec
  | Some _ | None -> lhs

and parse_unary st =
  match peek_tok st with
  | Token.Minus ->
      advance st;
      mk st (Ast.E_unop (Ast.U_neg, parse_unary st))
  | Token.Bang ->
      advance st;
      mk st (Ast.E_unop (Ast.U_not, parse_unary st))
  | Token.Tilde ->
      advance st;
      mk st (Ast.E_unop (Ast.U_bnot, parse_unary st))
  | Token.Star ->
      advance st;
      mk st (Ast.E_deref (parse_unary st))
  | Token.Amp ->
      advance st;
      let e = parse_unary st in
      mk st (Ast.E_addr (lvalue_of_expr st e))
  | _ -> parse_postfix st

and parse_postfix st =
  let e = parse_primary st in
  let rec go e =
    if accept st Token.Lbracket then begin
      let idx = parse_expr_prec st 0 in
      eat st Token.Rbracket;
      go { Ast.e = Ast.E_index (e, idx); e_line = e.Ast.e_line }
    end
    else e
  in
  go e

and parse_primary st =
  match peek_tok st with
  | Token.Int_lit v ->
      advance st;
      { Ast.e = Ast.E_int v; e_line = line st }
  | Token.Ident name -> (
      let ln = line st in
      advance st;
      match peek_tok st with
      | Token.Lparen ->
          advance st;
          let args = parse_args st in
          eat st Token.Rparen;
          { Ast.e = Ast.E_call (name, args); e_line = ln }
      | _ -> { Ast.e = Ast.E_var name; e_line = ln })
  | Token.Lparen ->
      advance st;
      let e = parse_expr_prec st 0 in
      eat st Token.Rparen;
      e
  | _ -> fail st "expected an expression"

and parse_args st =
  if Token.equal (peek_tok st) Token.Rparen then []
  else begin
    let first = parse_expr_prec st 0 in
    let rec go acc = if accept st Token.Comma then go (parse_expr_prec st 0 :: acc) else List.rev acc in
    go [ first ]
  end

and lvalue_of_expr st (e : Ast.expr) =
  match e.Ast.e with
  | Ast.E_var name -> Ast.L_var name
  | Ast.E_deref inner -> Ast.L_deref inner
  | Ast.E_index (base, idx) -> Ast.L_index (base, idx)
  | Ast.E_int _ | Ast.E_unop _ | Ast.E_binop _ | Ast.E_addr _ | Ast.E_call _ ->
      fail st "expression is not assignable"

(* --- statements --- *)

let parse_var_decl st ~static =
  let v_line = line st in
  let elem_ty = parse_type st in
  let v_name = ident st in
  let v_array =
    if accept st Token.Lbracket then begin
      match peek_tok st with
      | Token.Int_lit n when n > 0 ->
          advance st;
          eat st Token.Rbracket;
          Some n
      | _ -> fail st "array size must be a positive integer literal"
    end
    else None
  in
  let v_init = if accept st Token.Assign then Some (parse_expr_prec st 0) else None in
  if v_array <> None && v_init <> None then
    fail st "array declarations cannot have initializers";
  { Ast.v_name; v_ty = elem_ty; v_array; v_static = static; v_init; v_line }

(* A "simple" statement usable in for-headers: declaration, assignment, or
   expression. Does not consume the trailing separator. *)
let rec parse_simple st =
  let s_line = line st in
  if Token.equal (peek_tok st) Token.Kw_static then begin
    advance st;
    { Ast.s = Ast.S_decl (parse_var_decl st ~static:true); s_line }
  end
  else if starts_type st then { Ast.s = Ast.S_decl (parse_var_decl st ~static:false); s_line }
  else begin
    let e = parse_expr_prec st 0 in
    if accept st Token.Assign then begin
      let lv = lvalue_of_expr st e in
      let rhs = parse_expr_prec st 0 in
      { Ast.s = Ast.S_assign (lv, rhs); s_line }
    end
    else { Ast.s = Ast.S_expr e; s_line }
  end

and parse_stmt st =
  let s_line = line st in
  match peek_tok st with
  | Token.Lbrace -> { Ast.s = Ast.S_block (parse_block st); s_line }
  | Token.Kw_if ->
      advance st;
      eat st Token.Lparen;
      let cond = parse_expr_prec st 0 in
      eat st Token.Rparen;
      let then_blk = parse_block_or_stmt st in
      let else_blk =
        if accept st Token.Kw_else then Some (parse_block_or_stmt st) else None
      in
      { Ast.s = Ast.S_if (cond, then_blk, else_blk); s_line }
  | Token.Kw_while ->
      advance st;
      eat st Token.Lparen;
      let cond = parse_expr_prec st 0 in
      eat st Token.Rparen;
      { Ast.s = Ast.S_while (cond, parse_block_or_stmt st); s_line }
  | Token.Kw_for ->
      advance st;
      eat st Token.Lparen;
      let init =
        if Token.equal (peek_tok st) Token.Semi then None else Some (parse_simple st)
      in
      eat st Token.Semi;
      let cond =
        if Token.equal (peek_tok st) Token.Semi then None
        else Some (parse_expr_prec st 0)
      in
      eat st Token.Semi;
      let step =
        if Token.equal (peek_tok st) Token.Rparen then None else Some (parse_simple st)
      in
      eat st Token.Rparen;
      { Ast.s = Ast.S_for (init, cond, step, parse_block_or_stmt st); s_line }
  | Token.Kw_return ->
      advance st;
      let value =
        if Token.equal (peek_tok st) Token.Semi then None
        else Some (parse_expr_prec st 0)
      in
      eat st Token.Semi;
      { Ast.s = Ast.S_return value; s_line }
  | Token.Kw_break ->
      advance st;
      eat st Token.Semi;
      { Ast.s = Ast.S_break; s_line }
  | Token.Kw_continue ->
      advance st;
      eat st Token.Semi;
      { Ast.s = Ast.S_continue; s_line }
  | _ ->
      let stmt = parse_simple st in
      eat st Token.Semi;
      stmt

and parse_block st =
  eat st Token.Lbrace;
  let rec go acc =
    if accept st Token.Rbrace then List.rev acc else go (parse_stmt st :: acc)
  in
  go []

and parse_block_or_stmt st =
  if Token.equal (peek_tok st) Token.Lbrace then parse_block st
  else [ parse_stmt st ]

(* --- top level --- *)

let parse_params st =
  eat st Token.Lparen;
  if accept st Token.Rparen then []
  else if Token.equal (peek_tok st) Token.Kw_void && peek2_tok st = Some Token.Rparen
  then begin
    advance st;
    advance st;
    []
  end
  else begin
    let param () =
      let ty = parse_type st in
      let name = ident st in
      (name, ty)
    in
    let first = param () in
    let rec go acc = if accept st Token.Comma then go (param () :: acc) else List.rev acc in
    let params = go [ first ] in
    eat st Token.Rparen;
    params
  end

let parse_top st =
  let globals = ref [] and funcs = ref [] in
  while not (Token.equal (peek_tok st) Token.Eof) do
    let f_line = line st in
    let static = accept st Token.Kw_static in
    let ty = parse_type st in
    let name = ident st in
    if Token.equal (peek_tok st) Token.Lparen then begin
      if static then fail st "static functions are not supported";
      let params = parse_params st in
      let body = parse_block st in
      funcs := { Ast.f_name = name; f_ret = ty; f_params = params; f_body = body; f_line } :: !funcs
    end
    else begin
      (* Re-parse the declaration tail: array suffix and initializer. *)
      let v_array =
        if accept st Token.Lbracket then begin
          match peek_tok st with
          | Token.Int_lit n when n > 0 ->
              advance st;
              eat st Token.Rbracket;
              Some n
          | _ -> fail st "array size must be a positive integer literal"
        end
        else None
      in
      let v_init = if accept st Token.Assign then Some (parse_expr_prec st 0) else None in
      eat st Token.Semi;
      globals :=
        { Ast.v_name = name; v_ty = ty; v_array; v_static = static; v_init; v_line = f_line }
        :: !globals
    end
  done;
  { Ast.globals = List.rev !globals; funcs = List.rev !funcs }

let with_state source f =
  match Lexer.tokenize source with
  | Error msg -> Error msg
  | Ok tokens -> (
      let st = { tokens = Array.of_list tokens; pos = 0 } in
      try Ok (f st) with Parse_error msg -> Error msg)

let parse source = with_state source parse_top

let parse_expr source =
  with_state source (fun st ->
      let e = parse_expr_prec st 0 in
      eat st Token.Eof;
      e)
