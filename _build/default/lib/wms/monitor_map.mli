(** The address→monitor mapping of Appendix A.5.

    "For each page that has an active write monitor we maintain a bitmap;
    each bit corresponds to a word of memory. Using the page number as a
    key, the bitmaps are stored in a hash table."

    Monitors are word-aligned (footnote 7): an installed range is widened to
    word boundaries, so a 1-byte monitor covers its whole 4-byte word.
    Higher-level clients compensate, exactly as the paper prescribes.

    Semantics are {e region-based}, matching a bitmap: installing two
    overlapping ranges and removing one clears the shared words. The
    experiment never installs overlapping monitors (distinct program objects
    occupy disjoint storage), so this never bites in practice. *)

type t

val create : ?page_size:int -> unit -> t
(** [page_size] in bytes; a positive multiple of 4 that is a power of two
    (default 4096). *)

val page_size : t -> int

val install : t -> Ebp_util.Interval.t -> unit
val remove : t -> Ebp_util.Interval.t -> unit

val overlaps : t -> Ebp_util.Interval.t -> bool
(** The SoftwareLookup operation: does any monitored word intersect the
    (byte-address) range? *)

val monitored_words : t -> int
val active_pages : t -> int
(** Pages currently holding at least one monitored word. *)

val page_is_active : t -> int -> bool
val is_empty : t -> bool
val clear : t -> unit
