(** ASCII grouped bar charts.

    Figures 7–9 of the paper are grouped bar charts (one group per benchmark
    program, one bar per strategy). This module renders the same data as
    horizontal ASCII bars so the bench harness output is self-contained. *)

type series = { label : string; value : float }
type group = { name : string; series : series list }

val render :
  ?width:int ->
  ?log_scale:bool ->
  title:string ->
  groups:group list ->
  unit ->
  string
(** [render ~title ~groups ()] draws one horizontal bar per series entry,
    grouped under each group name, scaled to the global maximum. [width]
    (default 50) is the maximum bar length in characters. With [log_scale]
    (default false) bars are proportional to [log10 (1 + value)], which keeps
    heavy-tailed data (e.g. Figure 7's maxima) readable. Values must be
    non-negative.
    @raise Invalid_argument on a negative value. *)
