type t = { bits : Bytes.t; length : int }

let create n =
  if n < 0 then invalid_arg "Bitmap.create: negative size";
  { bits = Bytes.make ((n + 7) / 8) '\000'; length = n }

let length t = t.length

let check t i name =
  if i < 0 || i >= t.length then
    invalid_arg (Printf.sprintf "Bitmap.%s: index %d out of [0,%d)" name i t.length)

let get t i =
  check t i "get";
  Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i =
  check t i "set";
  let byte = i lsr 3 in
  Bytes.unsafe_set t.bits byte
    (Char.chr (Char.code (Bytes.unsafe_get t.bits byte) lor (1 lsl (i land 7))))

let clear t i =
  check t i "clear";
  let byte = i lsr 3 in
  Bytes.unsafe_set t.bits byte
    (Char.chr (Char.code (Bytes.unsafe_get t.bits byte) land lnot (1 lsl (i land 7)) land 0xff))

let iter_range name f t ~lo ~hi =
  check t lo name;
  check t hi name;
  if lo > hi then invalid_arg (Printf.sprintf "Bitmap.%s: lo > hi" name);
  for i = lo to hi do
    f t i
  done

let set_range t ~lo ~hi = iter_range "set_range" set t ~lo ~hi
let clear_range t ~lo ~hi = iter_range "clear_range" clear t ~lo ~hi

let any_in_range t ~lo ~hi =
  check t lo "any_in_range";
  check t hi "any_in_range";
  if lo > hi then invalid_arg "Bitmap.any_in_range: lo > hi";
  (* Scan by bytes where possible: interior bytes can be tested whole. *)
  let rec scan i =
    if i > hi then false
    else if i land 7 = 0 && i + 7 <= hi then
      if Bytes.unsafe_get t.bits (i lsr 3) <> '\000' then true else scan (i + 8)
    else if get t i then true
    else scan (i + 1)
  in
  scan lo

let count t =
  let n = ref 0 in
  for i = 0 to t.length - 1 do
    if get t i then incr n
  done;
  !n

let is_empty t =
  let nbytes = Bytes.length t.bits in
  let rec go i = i >= nbytes || (Bytes.unsafe_get t.bits i = '\000' && go (i + 1)) in
  go 0

let copy t = { bits = Bytes.copy t.bits; length = t.length }
let equal a b = a.length = b.length && Bytes.equal a.bits b.bits

let pp ppf t =
  for i = 0 to t.length - 1 do
    Format.pp_print_char ppf (if get t i then '1' else '0')
  done
