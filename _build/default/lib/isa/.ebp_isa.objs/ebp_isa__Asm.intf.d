lib/isa/asm.mli: Program
