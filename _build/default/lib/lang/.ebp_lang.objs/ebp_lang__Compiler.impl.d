lib/lang/compiler.ml: Codegen Debug_info Ebp_isa Parser Result Sema
