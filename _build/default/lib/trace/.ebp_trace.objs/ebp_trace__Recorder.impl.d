lib/trace/recorder.ml: Array Ebp_isa Ebp_lang Ebp_machine Ebp_runtime Ebp_util Hashtbl List Object_desc Option Result Trace
