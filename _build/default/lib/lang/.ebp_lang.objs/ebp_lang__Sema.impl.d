lib/lang/sema.ml: Array Ast Format Hashtbl List Option Printf Typed
