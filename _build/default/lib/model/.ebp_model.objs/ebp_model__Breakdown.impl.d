lib/model/breakdown.ml: Float Format Hashtbl List Option Strategy_model
