(* Fault-point registry. Hot-path design mirrors Ebp_obs.Metrics: the
   [enabled] flag is a plain bool read without synchronization (configure
   happens-before the domains that evaluate points, same contract as
   Metrics.set_enabled), and everything behind the flag — the shared PRNG,
   per-point evaluation counts — is guarded by one mutex. *)

module Metrics = Ebp_obs.Metrics

type action = Fail | Bit_flip | Truncate | Kill
type trigger = Always | Nth of int | Probability of float
type rule = { pattern : string; trigger : trigger; action : action }

exception Injected of string
exception Killed of string

type point = {
  pt_name : string;
  counter : Metrics.counter;
  (* The first rule matching this point under the current configuration;
     recomputed by [configure] (and at registration for late points). *)
  mutable bound : (trigger * action) option;
  mutable evals : int;  (* evaluations since the last [configure] *)
}

let registry : (string, point) Hashtbl.t = Hashtbl.create 32
let mutex = Mutex.create ()
let enabled = ref false
let rules : rule list ref = ref []
let prng = ref (Prng.create 0)

let matches pattern name =
  if pattern = name || pattern = "*" then true
  else
    let n = String.length pattern in
    n > 0
    && pattern.[n - 1] = '*'
    && String.length name >= n - 1
    && String.sub name 0 (n - 1) = String.sub pattern 0 (n - 1)

let bind p =
  p.evals <- 0;
  p.bound <-
    List.find_map
      (fun r ->
        if matches r.pattern p.pt_name then Some (r.trigger, r.action) else None)
      !rules

let point name =
  Mutex.lock mutex;
  let p =
    match Hashtbl.find_opt registry name with
    | Some p -> p
    | None ->
        let p =
          {
            pt_name = name;
            counter = Metrics.counter ("fault." ^ name);
            bound = None;
            evals = 0;
          }
        in
        Hashtbl.add registry name p;
        bind p;
        p
  in
  Mutex.unlock mutex;
  p

let name p = p.pt_name

let configure ?(seed = 0) rs =
  Mutex.lock mutex;
  rules := rs;
  prng := Prng.create seed;
  Hashtbl.iter (fun _ p -> bind p) registry;
  Mutex.unlock mutex;
  enabled := rs <> []

let reset () = configure []
let active () = !enabled

(* PRNG draws under the mutex: points fire from pool workers. *)
let draw f =
  Mutex.lock mutex;
  let v = f !prng in
  Mutex.unlock mutex;
  v

let fires p =
  if not !enabled then None
  else
    match p.bound with
    | None -> None
    | Some (trigger, action) ->
        Mutex.lock mutex;
        p.evals <- p.evals + 1;
        let fire =
          match trigger with
          | Always -> true
          | Nth n -> p.evals = n
          | Probability pr -> Prng.float !prng < pr
        in
        Mutex.unlock mutex;
        if fire then begin
          Metrics.incr p.counter;
          Some action
        end
        else None

let check p =
  match fires p with
  | None -> ()
  | Some Kill -> raise (Killed p.pt_name)
  | Some (Fail | Bit_flip | Truncate) -> raise (Injected p.pt_name)

let mangle p data =
  match fires p with
  | None -> data
  | Some Fail -> raise (Injected p.pt_name)
  | Some Kill -> raise (Killed p.pt_name)
  | Some Bit_flip ->
      let len = String.length data in
      if len = 0 then data
      else begin
        let i = draw (fun g -> Prng.int g len) in
        let bit = draw (fun g -> Prng.int g 8) in
        let b = Bytes.of_string data in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
        Bytes.unsafe_to_string b
      end
  | Some Truncate ->
      let len = String.length data in
      if len = 0 then data else String.sub data 0 (draw (fun g -> Prng.int g len))

(* --- CLI spec parser --- *)

let split_on chars s =
  let out = ref [] and buf = Buffer.create 16 in
  String.iter
    (fun c ->
      if List.mem c chars then begin
        out := Buffer.contents buf :: !out;
        Buffer.clear buf
      end
      else Buffer.add_char buf c)
    s;
  out := Buffer.contents buf :: !out;
  List.rev_map String.trim !out |> List.filter (fun s -> s <> "")

let parse_trigger s =
  match s with
  | "always" -> Ok Always
  | _ -> (
      match String.index_opt s '=' with
      | Some i -> (
          let k = String.sub s 0 i
          and v = String.sub s (i + 1) (String.length s - i - 1) in
          match k with
          | "nth" -> (
              match int_of_string_opt v with
              | Some n when n >= 1 -> Ok (Nth n)
              | _ -> Error (Printf.sprintf "bad nth count %S" v))
          | "p" -> (
              match float_of_string_opt v with
              | Some p when p >= 0.0 && p <= 1.0 -> Ok (Probability p)
              | _ -> Error (Printf.sprintf "bad probability %S" v))
          | _ -> Error (Printf.sprintf "unknown trigger %S" s))
      | None -> Error (Printf.sprintf "unknown trigger %S" s))

let parse_action = function
  | "fail" -> Ok Fail
  | "bitflip" -> Ok Bit_flip
  | "truncate" -> Ok Truncate
  | "kill" -> Ok Kill
  | s -> Error (Printf.sprintf "unknown action %S" s)

let parse_spec spec =
  let clauses = split_on [ ';'; ',' ] spec in
  let rec go seed acc = function
    | [] -> Ok (seed, List.rev acc)
    | clause :: rest -> (
        match split_on [ ':' ] clause with
        | [ one ] -> (
            match String.index_opt one '=' with
            | Some i when String.sub one 0 i = "seed" -> (
                let v = String.sub one (i + 1) (String.length one - i - 1) in
                match int_of_string_opt v with
                | Some seed -> go seed acc rest
                | None -> Error (Printf.sprintf "bad seed %S" v))
            | _ ->
                Error
                  (Printf.sprintf
                     "clause %S is not seed=N or PATTERN:TRIGGER:ACTION" clause))
        | [ pattern; trigger; action ] -> (
            match (parse_trigger trigger, parse_action action) with
            | Ok trigger, Ok action ->
                go seed ({ pattern; trigger; action } :: acc) rest
            | Error e, _ | _, Error e -> Error e)
        | _ ->
            Error
              (Printf.sprintf
                 "clause %S is not seed=N or PATTERN:TRIGGER:ACTION" clause))
  in
  go 0 [] clauses

let configure_spec spec =
  Result.map (fun (seed, rs) -> configure ~seed rs) (parse_spec spec)
