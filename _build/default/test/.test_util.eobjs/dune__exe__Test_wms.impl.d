test/test_wms.ml: Alcotest Ebp_isa Ebp_machine Ebp_util Ebp_wms List QCheck2 QCheck_alcotest Result
