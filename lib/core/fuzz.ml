(* Differential fuzzing over generated MiniC programs.

   The generator is deterministic from its seed and emits programs as
   lists of droppable source units (a global declaration, a helper
   function, one statement group of main) so the shrinker can delete
   units wholesale and re-render, instead of mutating text. Programs are
   closed-world by construction: loops are bounded, recursion depth is
   masked, division and modulo are by positive constants, array and heap
   subscripts are masked to power-of-two bounds — so every generated
   program halts with exit code 0 well inside the default fuel, and any
   oracle failure is a real divergence, not an unlucky program.

   The oracles are the redundancies the codebase already maintains:
   [Machine.run] vs the single-[step] loop (independent execution loops),
   recorded vs unrecorded execution (tracing must not perturb the run),
   the five paper strategies armed identically over the same program
   (identical (pc, interval) notification sequences), the EBPT2, EBPT3
   and EBPW2 codec round-trips, the scan vs indexed replay engines, and
   the query language's compiled vs streaming engines (random well-typed
   queries drawn from the trace's own pcs, addresses and discovered
   sessions).

   Beyond fuzzing, [generate] doubles as a workload synthesizer: knobs
   append deterministic extra source units — hot write loops, heap
   churn, extra monitored globals — drawn from a separate PRNG stream so
   the default program is byte-identical to the knobless one. The bench
   harness uses this for its large synthetic query workload. *)

module Prng = Ebp_util.Prng
module Machine = Ebp_machine.Machine
module Loader = Ebp_runtime.Loader
module Trace = Ebp_trace.Trace
module Write_index = Ebp_trace.Write_index
module Replay = Ebp_sessions.Replay

type program = {
  globals : string list;
  funcs : (string * string list) list;  (* name, body lines *)
  main_body : string list;
}

let render p =
  let b = Buffer.create 1024 in
  List.iter (fun g -> Buffer.add_string b (g ^ "\n")) p.globals;
  List.iter
    (fun (name, body) ->
      Buffer.add_string b (Printf.sprintf "\nint %s(int a, int b) {\n" name);
      List.iter (fun l -> Buffer.add_string b ("  " ^ l ^ "\n")) body;
      Buffer.add_string b "}\n")
    p.funcs;
  Buffer.add_string b "\nint main() {\n";
  List.iter (fun l -> Buffer.add_string b ("  " ^ l ^ "\n")) p.main_body;
  Buffer.add_string b "}\n";
  Buffer.contents b

type knobs = {
  gen_events : int;
  gen_heap_churn : int;
  gen_session_density : int;
}

let default_knobs = { gen_events = 0; gen_heap_churn = 0; gen_session_density = 0 }

(* Knob-driven source units. Drawn from a PRNG stream independent of the
   base generator's, so turning a knob never disturbs the base program —
   with [default_knobs] nothing is drawn at all and [generate] is
   byte-identical to its knobless behaviour (pinned by test_fuzz.ml). *)
let synth_units ~seed k =
  if k = default_knobs then ([], [])
  else begin
    let g = Prng.create ((seed * 0x5bd1e995) lxor 0x2545f491) in
    let rand n = Prng.int g n in
    let globals = ref [] and groups = ref [] in
    let add_global l = globals := l :: !globals in
    let add_group l = groups := l :: !groups in
    (* Extra monitored globals, each written a handful of times so the
       sessions discovered on them have hits. *)
    for j = 0 to k.gen_session_density - 1 do
      add_global (Printf.sprintf "int q%d;" j);
      add_group
        (Printf.sprintf
           "q%d = t + %d; for (i = 0; i < %d; i = i + 1) { q%d = q%d + i; } t \
            = t + q%d;"
           j (rand 100) (4 + rand 8) j j j)
    done;
    (* Heap churn: allocation sites cycling through install / write /
       remove, so object timelines grow and heap sessions multiply. *)
    for _ = 1 to k.gen_heap_churn do
      let words = List.nth [ 8; 16; 32 ] (rand 3) in
      add_group
        (Printf.sprintf
           "p = malloc(%d); if (p != 0) { for (i = 0; i < %d; i = i + 1) { \
            p[i & %d] = i + %d; } t = t + p[%d]; free(p); }"
           (words * 4) words (words - 1) (rand 50) (rand words))
    done;
    (* Hot write loops: ~32k writes each, the event-count dial for large
       synthetic workloads (raise the fuel along with it). The iteration
       count is deliberately high relative to the unit's source size so
       a 10^7-event trace comes from a small program — trace length and
       compile time stay decoupled. *)
    if k.gen_events > 0 then begin
      add_global "int qhot[64];";
      for _ = 1 to k.gen_events do
        add_group
          (Printf.sprintf
             "for (i = 0; i < 16384; i = i + 1) { qhot[i & 63] = i * %d; t = \
              t + i; }"
             (1 + rand 7))
      done
    end;
    (List.rev !globals, List.rev !groups)
  end

let generate_knobbed ~knobs ~seed =
  let g = Prng.create seed in
  let rand n = Prng.int g n in
  let pick xs = List.nth xs (rand (List.length xs)) in
  let n_scalars = 2 + rand 3 in
  let n_arrays = 1 + rand 2 in
  let arr_sizes = Array.init n_arrays (fun _ -> pick [ 8; 16; 32 ]) in
  let globals =
    List.init n_scalars (fun i -> Printf.sprintf "int g%d;" i)
    @ List.init n_arrays (fun i -> Printf.sprintf "int arr%d[%d];" i arr_sizes.(i))
  in
  let scalars = List.init n_scalars (fun i -> Printf.sprintf "g%d" i) in
  (* Integer expressions over [vars]: every division/modulo is by a
     positive constant, shifts are by small constants. *)
  let rec expr vars depth =
    if depth = 0 || rand 3 = 0 then
      match rand 3 with
      | 0 -> string_of_int (rand 201 - 100)
      | _ -> if vars = [] then string_of_int (rand 50) else pick vars
    else
      let a = expr vars (depth - 1) in
      match rand 10 with
      | 0 -> Printf.sprintf "(%s + %s)" a (expr vars (depth - 1))
      | 1 -> Printf.sprintf "(%s - %s)" a (expr vars (depth - 1))
      | 2 -> Printf.sprintf "(%s * %s)" a (expr vars (depth - 1))
      | 3 -> Printf.sprintf "(%s ^ %s)" a (expr vars (depth - 1))
      | 4 -> Printf.sprintf "(%s & %s)" a (expr vars (depth - 1))
      | 5 -> Printf.sprintf "(%s | %s)" a (expr vars (depth - 1))
      | 6 -> Printf.sprintf "(%s << %d)" a (rand 5)
      | 7 -> Printf.sprintf "(%s >> %d)" a (rand 5)
      | 8 -> Printf.sprintf "(%s / %d)" a (1 + rand 9)
      | _ -> Printf.sprintf "(%s %% %d)" a (1 + rand 9)
  in
  let n_funcs = 1 + rand 3 in
  let func i =
    let ai = rand n_arrays in
    let mask = arr_sizes.(ai) - 1 in
    let mid =
      match rand 3 with
      | 0 ->
          Printf.sprintf "for (i = 0; i < %d; i = i + 1) { x = x + ((%s) ^ i); }"
            (1 + rand 8)
            (expr [ "a"; "b"; "x" ] 1)
      | 1 ->
          Printf.sprintf "if (%s > %s) { x = x - b; } else { x = x + a; }"
            (pick [ "a"; "b"; "x" ])
            (pick [ "a"; "b"; "x" ])
      | _ ->
          Printf.sprintf "x = x + arr%d[%s & %d];" ai
            (pick [ "a"; "b"; "x" ])
            mask
    in
    ( Printf.sprintf "f%d" i,
      [ "int x;"; "int i;";
        Printf.sprintf "x = %s;" (expr [ "a"; "b" ] 2);
        mid; "return x;" ] )
  in
  let funcs =
    List.init n_funcs func
    @ [ ("r0", [ "if (a <= 0) { return b; }"; "return r0(a - 1, b + (a ^ b));" ]) ]
  in
  let mvars = "t" :: scalars in
  let group () =
    match rand 8 with
    | 0 -> Printf.sprintf "t = t + %s;" (expr mvars 3)
    | 1 ->
        let gv = pick scalars in
        Printf.sprintf "%s = %s; t = t + %s;" gv (expr mvars 3) gv
    | 2 ->
        let a = rand n_arrays in
        let mask = arr_sizes.(a) - 1 in
        Printf.sprintf
          "for (i = 0; i < %d; i = i + 1) { arr%d[i & %d] = %s + i; } t = t + \
           arr%d[%d];"
          (4 + rand 12) a mask (expr mvars 2) a
          (rand arr_sizes.(a))
    | 3 ->
        Printf.sprintf
          "i = 0; while (i < %d) { i = i + 1; if ((i & 3) == %d) { continue; } \
           t = t + (i * %d); if (i > %d) { break; } }"
          (5 + rand 10) (rand 4) (1 + rand 5) (3 + rand 10)
    | 4 ->
        Printf.sprintf "t = t + f%d(%s, %s);" (rand n_funcs) (expr mvars 1)
          (expr mvars 1)
    | 5 ->
        Printf.sprintf "t = t + r0((%s) & 7, %s);" (expr mvars 1) (expr mvars 1)
    | 6 ->
        let words = pick [ 8; 16 ] in
        let idx = rand words in
        Printf.sprintf
          "p = malloc(%d); if (p != 0) { p[%d] = %s; t = t + p[%d]; free(p); }"
          (words * 4) idx (expr mvars 2) idx
    | _ -> Printf.sprintf "srand(%d); t = t + rand(%d);" (rand 1000) (1 + rand 50)
  in
  let n_groups = 4 + rand 5 in
  let base_groups = List.init n_groups (fun _ -> group ()) in
  let extra_globals, extra_groups = synth_units ~seed knobs in
  {
    globals = globals @ extra_globals;
    funcs;
    main_body =
      [ "int t;"; "int i;"; "int* p;"; "t = 0;" ]
      @ base_groups @ extra_groups
      @ [ "print_int(t);"; "return 0;" ];
  }

let generate ~seed = generate_knobbed ~knobs:default_knobs ~seed

(* --- oracles --- *)

let default_fuel = 2_000_000

let status_str = function
  | Machine.Halted n -> Printf.sprintf "halted %d" n
  | Machine.Out_of_fuel -> "out of fuel"
  | Machine.Machine_error m -> "machine error: " ^ m

(* A random well-typed query drawn from the trace's own material: real
   pcs (the index's pc posting keys), real write byte-ranges, and the
   sessions discovery actually found — so predicates mostly hit, and the
   engines' agreement is tested on non-empty results. *)
let random_query g ~events ~pcs ~spots ~sessions =
  let module Ast = Ebp_query.Ast in
  let rand = Prng.int g in
  let pick_pc () =
    if Array.length pcs = 0 then 4 + rand 1000 else pcs.(rand (Array.length pcs))
  in
  let atom () =
    match rand 8 with
    | 0 | 1 ->
        let c =
          match rand 6 with
          | 0 -> Ast.Eq
          | 1 -> Ast.Ne
          | 2 -> Ast.Lt
          | 3 -> Ast.Le
          | 4 -> Ast.Gt
          | _ -> Ast.Ge
        in
        Ast.Pc_cmp (c, pick_pc ())
    | 2 ->
        let a = pick_pc () and b = pick_pc () in
        Ast.Pc_in (min a b, max a b)
    | 3 | 4 ->
        if Array.length spots = 0 then Ast.All
        else
          let lo, hi = spots.(rand (Array.length spots)) in
          Ast.Addr_in (max 0 (lo - rand 64), hi + rand 64)
    | 5 ->
        let a = rand (events + 1) and b = rand (events + 1) in
        Ast.Time_in (min a b, max a b)
    | _ -> (
        match sessions with
        | [] -> Ast.All
        | l -> Ast.Live (List.nth l (rand (List.length l))))
  in
  let rec pred depth =
    if depth = 0 then atom ()
    else
      match rand 6 with
      | 0 -> Ast.And (pred (depth - 1), pred (depth - 1))
      | 1 -> Ast.Or (pred (depth - 1), pred (depth - 1))
      | 2 -> Ast.Not (pred (depth - 1))
      | _ -> atom ()
  in
  let pred = pred (1 + rand 2) in
  let top () = if Prng.bool g then Some (1 + rand 5) else None in
  match rand 8 with
  | 0 | 1 ->
      let field = if Prng.bool g then Ast.D_pc else Ast.D_word in
      { Ast.agg = Count_distinct field; pred; group = None; top = None;
        bucket = None }
  | 2 | 3 ->
      { Ast.agg = Count; pred; group = Some Ast.G_pc; top = top ();
        bucket = None }
  | 4 | 5 ->
      { Ast.agg = Count; pred; group = Some Ast.G_object; top = top ();
        bucket = None }
  | 6 ->
      { Ast.agg = Count; pred; group = None; top = None;
        bucket = Some (1 + rand (max 1 events)) }
  | _ -> { Ast.agg = Count; pred; group = None; top = None; bucket = None }

(* --- strategy equivalence --- *)

(* The five paper strategies are redundant implementations of the same
   observable contract: armed with the same monitor set over the same
   program, each must report the identical (pc, interval) notification
   sequence. The CP variants (hoisted, inline) are covered separately by
   the integration tests; here we pit the five distinct mechanisms
   against each other. *)
let equivalence_kinds =
  [
    Debugger.Native_hardware; Debugger.Virtual_memory; Debugger.Trap_patch;
    Debugger.Code_patch; Debugger.Virtual_breakpoint;
  ]

(* Monitors default to the program's globals, in declaration order,
   capped so Native_hardware's register file stays plausible and the
   shrinker has a small set to minimize. *)
let default_monitors (debug : Ebp_lang.Debug_info.t) =
  List.filteri (fun i _ -> i < 6)
    (List.map (fun g -> g.Ebp_lang.Debug_info.g_name) debug.globals)

let strategy_hits ~fuel ~seed ~monitors compiled kind =
  let name = Debugger.strategy_name kind in
  let dbg =
    Debugger.load ~strategy:kind ~seed
      ~monitor_reg_count:(max 4 (List.length monitors))
      compiled
  in
  let arm_failure =
    List.find_map
      (fun m ->
        match Debugger.watch_global dbg m with
        | Ok () -> None
        | Error e -> Some (Printf.sprintf "%s: watch %s: %s" name m e))
      monitors
  in
  match arm_failure with
  | Some e -> Error e
  | None -> (
      let result = Debugger.run ~fuel dbg in
      match Debugger.errors dbg with
      | e :: _ -> Error (Printf.sprintf "%s: arming error: %s" name e)
      | [] ->
          if result.Loader.status <> Machine.Halted 0 then
            Error
              (Printf.sprintf "%s: status: %s" name
                 (status_str result.Loader.status))
          else
            Ok
              (List.map
                 (fun h -> (h.Debugger.pc, h.Debugger.write))
                 (Debugger.hits dbg)))

let check_strategies ?(fuel = default_fuel) ~seed ?monitors source =
  match Ebp_lang.Compiler.compile source with
  | Error msg -> Error (Printf.sprintf "compile error: %s" msg)
  | Ok compiled -> (
      let monitors =
        match monitors with
        | Some ms -> ms
        | None -> default_monitors compiled.Ebp_lang.Compiler.debug
      in
      let runs =
        List.map
          (fun k -> (k, strategy_hits ~fuel ~seed ~monitors compiled k))
          equivalence_kinds
      in
      match
        List.find_map
          (fun (_, r) -> match r with Error e -> Some e | Ok _ -> None)
          runs
      with
      | Some e -> Error e
      | None -> (
          match List.map (fun (k, r) -> (k, Result.get_ok r)) runs with
          | [] | [ _ ] -> Ok ()
          | (k0, ref_hits) :: rest -> (
              match List.find_opt (fun (_, hs) -> hs <> ref_hits) rest with
              | None -> Ok ()
              | Some (k, hits) ->
                  let pp_hit (pc, w) =
                    Printf.sprintf "pc %d %s" pc
                      (Ebp_util.Interval.to_string w)
                  in
                  let show = function [] -> "end" | h :: _ -> pp_hit h in
                  let rec first_diff i a b =
                    match (a, b) with
                    | x :: a', y :: b' when x = y -> first_diff (i + 1) a' b'
                    | a, b ->
                        Printf.sprintf "hit %d is %s vs %s" i (show a) (show b)
                  in
                  Error
                    (Printf.sprintf
                       "%s vs %s: %d vs %d hits, first divergence: %s"
                       (Debugger.strategy_name k0)
                       (Debugger.strategy_name k) (List.length ref_hits)
                       (List.length hits)
                       (first_diff 0 ref_hits hits)))))

let check_source ?(fuel = default_fuel) ~seed source =
  let ( let* ) = Result.bind in
  let fail oracle fmt = Printf.ksprintf (fun d -> Error (oracle, d, None)) fmt in
  let* recorded, trace =
    match Ebp_trace.Recorder.record_source ~seed ~fuel source with
    | Error msg -> fail "record" "compile error: %s" msg
    | Ok (r, trace, _debug) -> (
        match (r.Loader.runtime_error, r.Loader.status) with
        | Some e, _ -> fail "record" "runtime error: %s" e
        | None, Machine.Halted 0 -> Ok (r, trace)
        | None, st -> fail "record" "status: %s" (status_str st))
  in
  (* Recording must not perturb execution. *)
  let* plain =
    match Loader.run_source ~seed ~fuel source with
    | Error msg -> fail "run-vs-record" "compile error: %s" msg
    | Ok r ->
        if r.Loader.status <> recorded.Loader.status then
          fail "run-vs-record" "status: %s vs %s" (status_str r.Loader.status)
            (status_str recorded.Loader.status)
        else if r.Loader.cycles <> recorded.Loader.cycles then
          fail "run-vs-record" "cycles: %d vs %d" r.Loader.cycles
            recorded.Loader.cycles
        else if r.Loader.instructions <> recorded.Loader.instructions then
          fail "run-vs-record" "instructions: %d vs %d" r.Loader.instructions
            recorded.Loader.instructions
        else if r.Loader.output <> recorded.Loader.output then
          fail "run-vs-record" "output: %S vs %S" r.Loader.output
            recorded.Loader.output
        else Ok r
  in
  (* [Machine.run]'s batch loop vs the single-step loop. *)
  let* () =
    match Ebp_lang.Compiler.compile source with
    | Error msg -> fail "step-vs-run" "compile error: %s" msg
    | Ok compiled ->
        let t = Loader.load ~seed compiled in
        let m = Loader.machine t in
        let rec drive budget =
          if budget = 0 then Machine.Out_of_fuel
          else
            match Machine.step m with
            | None -> drive (budget - 1)
            | Some r -> r
        in
        let status = drive fuel in
        if status <> plain.Loader.status then
          fail "step-vs-run" "status: %s vs %s" (status_str status)
            (status_str plain.Loader.status)
        else if Machine.cycles m <> plain.Loader.cycles then
          fail "step-vs-run" "cycles: %d vs %d" (Machine.cycles m)
            plain.Loader.cycles
        else if Machine.instructions_executed m <> plain.Loader.instructions
        then
          fail "step-vs-run" "instructions: %d vs %d"
            (Machine.instructions_executed m)
            plain.Loader.instructions
        else if Loader.output t <> plain.Loader.output then
          fail "step-vs-run" "output: %S vs %S" (Loader.output t)
            plain.Loader.output
        else Ok ()
  in
  (* The five watchpoint strategies, armed identically on the program's
     globals, must produce identical notification sequences. *)
  let* () =
    match check_strategies ~fuel ~seed source with
    | Ok () -> Ok ()
    | Error detail -> Error ("strategy-equivalence", detail, None)
  in
  let* () =
    let bytes = Trace.encode trace in
    match Trace.decode bytes with
    | Error msg -> fail "trace-codec" "decode: %s" msg
    | Ok trace' ->
        if Trace.encode trace' <> bytes then
          fail "trace-codec" "round-trip: re-encoded bytes differ"
        else Ok ()
  in
  (* The columnar codec must agree with the canonical EBPT2 bytes: a
     fully-checked decode of the EBPT3 image round-trips the metadata and
     re-encodes (canonically) to the same EBPT2 bytes. *)
  let* () =
    let bytes = Trace.encode_columnar ~meta:"fuzz" trace in
    match Trace.decode_columnar bytes with
    | Error msg -> fail "columnar-codec" "decode: %s" msg
    | Ok (trace', meta) ->
        if meta <> "fuzz" then
          fail "columnar-codec" "meta: %S round-tripped as %S" "fuzz" meta
        else if Trace.encode trace' <> Trace.encode trace then
          fail "columnar-codec" "round-trip: canonical bytes differ"
        else Ok ()
  in
  let page_sizes = Replay.default_page_sizes in
  let* index =
    let index = Write_index.build ~page_sizes trace in
    match Write_index.decode (Write_index.encode index) with
    | Error msg -> fail "index-codec" "decode: %s" msg
    | Ok index' ->
        if not (Write_index.equal index index') then
          fail "index-codec" "round-trip: index differs"
        else Ok index
  in
  (* Streaming pipeline vs batch: the same program re-recorded through
     the sealed-block writer — deliberately tiny blocks, so every seed
     crosses several block boundaries — must stream to a byte-identical
     trace, and the block-incremental index must equal the batch build. *)
  let* () =
    let buf = Buffer.create 4096 in
    let inc = Write_index.Incremental.create ~page_sizes in
    match
      Ebp_trace.Recorder.record_source_stream ~seed ~fuel ~block_events:64
        ~on_seal:(fun ~first:_ ~count ~nobjs iter ->
          Write_index.Incremental.add_block inc ~nobjs ~count iter)
        ~write:(Buffer.add_string buf) source
    with
    | Error msg -> fail "stream-vs-batch" "compile error: %s" msg
    | Ok (_res, _events) -> (
        match Ebp_trace.Stream.read (Buffer.contents buf) with
        | Error msg -> fail "stream-vs-batch" "stream read: %s" msg
        | Ok trace' ->
            if Trace.encode trace' <> Trace.encode trace then
              fail "stream-vs-batch" "streamed trace differs from batch"
            else (
              match Write_index.Incremental.snapshot inc with
              | None -> fail "stream-vs-batch" "incremental index degraded"
              | Some inc_index ->
                  if not (Write_index.equal inc_index index) then
                    fail "stream-vs-batch"
                      "incremental index differs from batch build"
                  else Ok ()))
  in
  let scan = Replay.discover_and_replay ~page_sizes ~engine:Replay.Scan trace in
  let indexed =
    Replay.discover_and_replay ~page_sizes ~engine:Replay.Indexed ~index trace
  in
  let* () =
    if scan <> indexed then
      if List.length scan <> List.length indexed then
        fail "scan-vs-indexed" "session count: %d vs %d" (List.length scan)
          (List.length indexed)
      else
        let diverging =
          List.find_opt
            (fun ((s, c), (s', c')) ->
              not (Ebp_sessions.Session.equal s s') || c <> c')
            (List.combine scan indexed)
        in
        match diverging with
        | Some ((s, _), _) ->
            fail "scan-vs-indexed" "counts differ for %s"
              (Ebp_sessions.Session.to_string s)
        | None -> fail "scan-vs-indexed" "results differ"
    else Ok ()
  in
  (* Compiled vs streaming query engines, on random well-typed queries. *)
  let g = Prng.create ((seed * 0x9e3779b9) lxor 0x51f15eed) in
  let pcp = Write_index.pc_writes index in
  let pcs =
    Array.init (Write_index.key_count pcp) (Write_index.key_at pcp)
  in
  let all = Write_index.all_write_positions index in
  let n_spots = min (Array.length all) 16 in
  let spots =
    Array.init n_spots (fun i ->
        Trace.get_raw trace
          all.(i * Array.length all / n_spots)
          (fun ~tag:_ ~obj:_ ~lo ~hi ~pc:_ -> (lo, hi)))
  in
  let sessions = List.map fst scan in
  let rec go k =
    if k = 0 then Ok ()
    else
      let q =
        random_query g ~events:(Trace.length trace) ~pcs ~spots ~sessions
      in
      match Ebp_query.Query.check_engines ~index trace q with
      | Ok _ -> go (k - 1)
      | Error msg ->
          Error ("query-engines", msg, Some (Ebp_query.Ast.to_string q))
  in
  go 8

type failure = {
  seed : int;
  oracle : string;
  detail : string;
  query : string option;
  monitors : string list option;
  program : program;
  source : string;
}

let check_program ?fuel ~seed program =
  let source = render program in
  match check_source ?fuel ~seed source with
  | Ok () -> Ok ()
  | Error (oracle, detail, query) ->
      Error { seed; oracle; detail; query; monitors = None; program; source }

let check_seed ?fuel ?knobs seed =
  let knobs = Option.value knobs ~default:default_knobs in
  check_program ?fuel ~seed (generate_knobbed ~knobs ~seed)

(* --- shrinking --- *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Two failures count as "the same bug" when the oracle matches and the
   detail agrees up to its first ':' — specific numbers (cycle counts,
   error positions) may drift as the program shrinks, but a candidate
   that fails a different oracle (or turns a divergence into a compile
   error) is a different bug and is rejected. *)
let same_class f (oracle, detail) =
  let head s =
    match String.index_opt s ':' with Some i -> String.sub s 0 i | None -> s
  in
  f.oracle = oracle && head f.detail = head detail

let drop_nth xs n = List.filteri (fun i _ -> i <> n) xs

(* Deleting a function also deletes every line calling it, so the
   candidate stays closed. *)
let without_func p name =
  let calls l = contains_sub l (name ^ "(") in
  {
    globals = p.globals;
    funcs =
      List.filter_map
        (fun (n, body) ->
          if n = name then None
          else Some (n, List.filter (fun l -> not (calls l)) body))
        p.funcs;
    main_body = List.filter (fun l -> not (calls l)) p.main_body;
  }

let candidates p =
  List.init (List.length p.main_body) (fun i ->
      { p with main_body = drop_nth p.main_body i })
  @ List.map (fun (name, _) -> without_func p name) p.funcs
  @ List.concat
      (List.mapi
         (fun j (_, body) ->
           List.init (List.length body) (fun i ->
               {
                 p with
                 funcs =
                   List.mapi
                     (fun j' (n, b) ->
                       if j = j' then (n, drop_nth b i) else (n, b))
                     p.funcs;
               }))
         p.funcs)
  @ List.init (List.length p.globals) (fun i ->
        { p with globals = drop_nth p.globals i })

(* Minimize the failing query against the (already shrunk) program: walk
   [Ast.shrink_candidates] greedily while the engines still disagree on
   the fixed trace, so a query-engines reproducer is minimal in both the
   program and the query. *)
let shrink_query ?fuel f =
  match f.query with
  | None -> f
  | Some text -> (
      match Ebp_query.Query.parse text with
      | Error _ -> f
      | Ok q0 -> (
          match Ebp_trace.Recorder.record_source ~seed:f.seed ?fuel f.source with
          | Error _ -> f
          | Ok (_, trace, _) ->
              let index =
                Write_index.build ~page_sizes:Replay.default_page_sizes trace
              in
              let fails q =
                match Ebp_query.Query.check_engines ~index trace q with
                | Error _ -> true
                | Ok _ -> false
              in
              if not (fails q0) then f
              else
                let rec fix q =
                  match
                    List.find_opt fails (Ebp_query.Ast.shrink_candidates q)
                  with
                  | Some q' -> fix q'
                  | None -> q
                in
                { f with query = Some (Ebp_query.Ast.to_string (fix q0)) }))

(* Minimize the monitor set of a strategy-equivalence failure against
   the (already shrunk) program: greedily drop monitors while the
   strategies still disagree, so the reproducer names only the
   watchpoints that matter. *)
let shrink_monitors ?fuel f =
  if f.oracle <> "strategy-equivalence" then f
  else
    match Ebp_lang.Compiler.compile f.source with
    | Error _ -> f
    | Ok compiled ->
        let initial =
          match f.monitors with
          | Some ms -> ms
          | None -> default_monitors compiled.Ebp_lang.Compiler.debug
        in
        let fails ms =
          ms <> []
          &&
          match check_strategies ?fuel ~seed:f.seed ~monitors:ms f.source with
          | Error _ -> true
          | Ok () -> false
        in
        if not (fails initial) then f
        else
          let rec fix ms =
            let rec try_drop i =
              if i >= List.length ms then ms
              else
                let ms' = drop_nth ms i in
                if fails ms' then fix ms' else try_drop (i + 1)
            in
            try_drop 0
          in
          { f with monitors = Some (fix initial) }

let shrink ?fuel f =
  (* Greedy fixpoint: take the first accepted deletion and restart. Every
     acceptance removes at least one source unit, so this terminates. *)
  let rec fix f =
    let rec try_candidates = function
      | [] -> f
      | p :: rest -> (
          match check_program ?fuel ~seed:f.seed p with
          | Ok () -> try_candidates rest
          | Error f' ->
              if same_class f (f'.oracle, f'.detail) then fix f'
              else try_candidates rest)
    in
    try_candidates (candidates f.program)
  in
  shrink_query ?fuel (shrink_monitors ?fuel (fix f))
