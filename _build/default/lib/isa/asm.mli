(** Textual assembler for the simulated ISA.

    The syntax is one instruction or label per line, [;] starts a comment,
    and the mnemonics match {!Instr.pp} output, so disassembling a program
    with {!Program.pp}-style formatting and re-assembling it round-trips:

    {v
    main:
      li   t0, 41
      alui add t0, t0, 1   ; rendered as "addi t0, t0, 1"
      sw   t0, -4(fp)
      beq  t0, zero, done
      jmp  main
    done:
      halt
    v}

    A [!] immediately before a mnemonic marks the instruction implicit
    (compiler bookkeeping, excluded from write traces):
    [  !sw ra, 4(sp)]. *)

val parse : string -> (Program.t, string) result
(** Parse assembly source into an unresolved program. The error string
    includes the 1-based line number. *)

val parse_resolved : string -> (Program.t, string) result
(** {!parse} followed by {!Program.resolve}. *)

val print : Program.t -> string
(** Render a program back to parseable assembly text. *)
