(** Differential fuzzing: generated MiniC programs checked against the
    codebase's built-in redundancies.

    A seed deterministically generates a small, always-terminating MiniC
    program (bounded loops, masked recursion depth and subscripts,
    constant divisors), which is then pushed through seven oracles:

    + {b record} — it compiles, runs without a runtime error, and halts
      with exit code 0;
    + {b run-vs-record} — recording a trace does not perturb execution
      (status, cycles, instructions, output);
    + {b step-vs-run} — the single-{!Ebp_machine.Machine.step} loop and
      {!Ebp_machine.Machine.run}'s batch loop agree exactly;
    + {b trace-codec} / {b columnar-codec} / {b index-codec} — the
      EBPT2, EBPT3 and EBPW1 codecs round-trip the recording
      bit-identically;
    + {b scan-vs-indexed} — both phase-2 replay engines produce identical
      session counts.

    A failure carries the offending program; {!shrink} deletes source
    units (statement groups, helper functions, globals) to a fixpoint
    while the {e same} oracle keeps failing, yielding a minimal
    reproducer. [ebp fuzz] drives this; a fixed-seed batch also runs in
    the tier-1 test suite. *)

type program = {
  globals : string list;  (** global declaration lines *)
  funcs : (string * string list) list;  (** helper name, body lines *)
  main_body : string list;  (** statement groups of [main] *)
}

val generate : seed:int -> program
(** Deterministic in [seed]. *)

val render : program -> string
(** Flatten to MiniC source. *)

val check_source : ?fuel:int -> seed:int -> string -> (unit, string * string) result
(** Run every oracle over one source string ([seed] seeds the program's
    PRNG). [Error (oracle, detail)] names the first oracle that failed.
    [fuel] (default 2,000,000) bounds each execution. *)

type failure = {
  seed : int;
  oracle : string;
  detail : string;
  program : program;
  source : string;
}

val check_program : ?fuel:int -> seed:int -> program -> (unit, failure) result

val check_seed : ?fuel:int -> int -> (unit, failure) result
(** [check_program] of [generate ~seed], executed with the same seed. *)

val shrink : ?fuel:int -> failure -> failure
(** Greedy delta-debugging: repeatedly delete the first source unit whose
    removal still fails the same oracle (details may drift, the oracle and
    error class may not), to a fixpoint. Deleting a helper function also
    deletes its call sites, so candidates stay well-formed. *)
