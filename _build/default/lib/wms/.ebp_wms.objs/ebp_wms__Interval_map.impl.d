lib/wms/interval_map.ml: Ebp_util List Printf
