(** Human-readable rendering of observability snapshots.

    Turns an {!Ebp_obs.Metrics.snapshot} into aligned {!Text_table}
    tables: one for counters (with the per-domain breakdown when more
    than one domain contributed), one for gauges, and one for histograms
    — rendered as durations, since by convention every histogram in this
    codebase records nanoseconds. Used by [ebp stats], the [--metrics]
    flags, and the bench harness's per-section metric dumps. *)

val render : Ebp_obs.Metrics.snapshot -> string
(** All three tables (sections with empty bodies are skipped), each
    preceded by a one-line heading. Deterministic for a given snapshot. *)

val fmt_ns : int -> string
(** A nanosecond count as a compact human duration ([741ns], [3.4us],
    [12.7ms], [2.10s]). *)
