module Interval = Ebp_util.Interval
module Bitmap = Ebp_util.Bitmap

type t = {
  page_size : int;
  page_shift : int;
  words_per_page : int;
  pages : (int, Bitmap.t) Hashtbl.t;
}

let create ?(page_size = 4096) () =
  if page_size <= 0 || page_size land (page_size - 1) <> 0 || page_size < 4 then
    invalid_arg "Monitor_map.create: page_size must be a power of two >= 4";
  let rec log2 n = if n = 1 then 0 else 1 + log2 (n lsr 1) in
  {
    page_size;
    page_shift = log2 page_size;
    words_per_page = page_size / 4;
    pages = Hashtbl.create 32;
  }

let page_size t = t.page_size

(* Word-aligned extent of a byte range: first and last word indices. *)
let word_extent range = (Interval.lo range lsr 2, Interval.hi range lsr 2)

let iter_page_words t ~first_word ~last_word f =
  let words_per_page = t.words_per_page in
  let first_page = first_word / words_per_page
  and last_page = last_word / words_per_page in
  for page = first_page to last_page do
    let page_first = page * words_per_page in
    let lo = max first_word page_first - page_first in
    let hi = min last_word (page_first + words_per_page - 1) - page_first in
    f page ~lo ~hi
  done

let install t range =
  let first_word, last_word = word_extent range in
  iter_page_words t ~first_word ~last_word (fun page ~lo ~hi ->
      let bitmap =
        match Hashtbl.find_opt t.pages page with
        | Some b -> b
        | None ->
            let b = Bitmap.create t.words_per_page in
            Hashtbl.add t.pages page b;
            b
      in
      Bitmap.set_range bitmap ~lo ~hi)

let remove t range =
  let first_word, last_word = word_extent range in
  iter_page_words t ~first_word ~last_word (fun page ~lo ~hi ->
      match Hashtbl.find_opt t.pages page with
      | None -> ()
      | Some bitmap ->
          Bitmap.clear_range bitmap ~lo ~hi;
          if Bitmap.is_empty bitmap then Hashtbl.remove t.pages page)

let overlaps t range =
  let first_word, last_word = word_extent range in
  let hit = ref false in
  iter_page_words t ~first_word ~last_word (fun page ~lo ~hi ->
      if not !hit then
        match Hashtbl.find_opt t.pages page with
        | None -> ()
        | Some bitmap -> if Bitmap.any_in_range bitmap ~lo ~hi then hit := true);
  !hit

let monitored_words t =
  Hashtbl.fold (fun _ bitmap acc -> acc + Bitmap.count bitmap) t.pages 0

let active_pages t = Hashtbl.length t.pages

let page_is_active t page = Hashtbl.mem t.pages page

let is_empty t = Hashtbl.length t.pages = 0

let clear t = Hashtbl.reset t.pages
