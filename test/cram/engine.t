The two phase-2 replay engines render identical reports: the scan engine
is one pass over the trace per shard, the indexed engine answers the same
counts from a temporal write index. A shared cache keeps phase 1 warm so
only the engines differ between runs.

  $ ebp experiment --workloads circuit --only table1 --cache-dir cache --engine scan 2>scan.err >scan.table
  $ cat scan.err
  phase 1 circuit    traced (329544 events)
  phase 2 circuit    103 sessions replayed
  $ ebp experiment --workloads circuit --only table1 --cache-dir cache --engine indexed 2>indexed.err >indexed.table
  $ cat indexed.err
  phase 1 circuit    cache hit, no execution (329544 events)
  phase 2 circuit    103 sessions replayed
  $ diff scan.table indexed.table

The default engine is indexed, so no flag gives the same report:

  $ ebp experiment --workloads circuit --only table1 --cache-dir cache 2>/dev/null | diff - indexed.table

The sessions command takes the same switch:

  $ cat > tiny.mc <<'MC'
  > int g;
  > int main() {
  >   int i;
  >   for (i = 0; i < 10; i = i + 1) { g = g + i; }
  >   print_int(g);
  >   return 0;
  > }
  > MC
  $ ebp sessions tiny.mc --engine scan > scan.sessions
  $ ebp sessions tiny.mc --engine indexed | diff scan.sessions -
