test/test_inline_cp.mli:
