test/test_trace.ml: Alcotest Array Ebp_trace Ebp_util Filename Fun Int List String Sys
