lib/wms/monitor_map.ml: Ebp_util Hashtbl
