module Metrics = Ebp_obs.Metrics
module Span = Ebp_obs.Span
module Fault = Ebp_util.Fault
module P = Protocol

let m_requests = Metrics.counter "serve.requests"
let m_queries = Metrics.counter "serve.queries"
let m_overloaded = Metrics.counter "serve.overloaded"
let m_coalesced = Metrics.counter "serve.coalesced"
let m_batches = Metrics.counter "serve.batches"
let m_accepts = Metrics.counter "serve.accepts"
let m_conn_errors = Metrics.counter "serve.conn_errors"
let m_bytes_in = Metrics.counter "serve.bytes_in"
let m_bytes_out = Metrics.counter "serve.bytes_out"
let m_queue_delay = Metrics.histogram "serve.queue_delay_ns"
let m_queue_depth = Metrics.gauge "serve.queue_depth"
let m_connections = Metrics.gauge "serve.connections"

let fp_accept = Fault.point "serve.accept"
let fp_read = Fault.point "serve.read"
let fp_write = Fault.point "serve.write"

(* Tenant names flow into metric names; force them into the dotted-path
   alphabet so an adversarial tenant cannot mint unreadable metrics. *)
let sanitize_tenant tenant =
  let ok = function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true | _ -> false in
  let tenant = if tenant = "" then "default" else tenant in
  String.map (fun c -> if ok c then c else '_') tenant

let tenant_latency tenant =
  Metrics.histogram (Printf.sprintf "serve.tenant.%s.latency_ns" tenant)

module Core = struct
  type config = {
    queue_limit : int;
    lru_capacity : int;
    domains : int;
    cache_dir : string option;
    server_name : string;
  }

  let default_config =
    {
      queue_limit = 64;
      lru_capacity = 8;
      domains = 1;
      cache_dir = None;
      server_name = "ebp serve/1.0.0";
    }

  type queued_query = {
    q_tenant : string;
    q_req : P.request;
    q_reply : P.response -> unit;
    q_enq_ns : int;
  }

  type t = {
    config : config;
    store : Trace_store.t;
    live : Live.t;
    pool : Ebp_util.Domain_pool.t;
    queues : (string, queued_query Queue.t) Hashtbl.t;
    ring : string Queue.t;
        (* round-robin cursor: every tenant with a nonempty queue appears
           at least once; stale names (emptied by coalescing) are skipped
           and dropped on pop *)
    mutable queued : int;
    mutable draining : bool;
  }

  let create config =
    let pool = Ebp_util.Domain_pool.create ~domains:(max 1 config.domains) () in
    {
      config;
      store =
        Trace_store.create ~capacity:config.lru_capacity
          ?cache_dir:config.cache_dir ~pool ();
      live = Live.create ();
      pool;
      queues = Hashtbl.create 8;
      ring = Queue.create ();
      queued = 0;
      draining = false;
    }

  let pending t = t.queued
  let draining t = t.draining
  let request_shutdown t = t.draining <- true

  (* --- execution --- *)

  (* [None] = let the planner decide. Parsed before the (possibly
     expensive) fetch so a bad engine string still fails fast. *)
  let engine_of_string = function
    | "auto" -> Ok None
    | "indexed" -> Ok (Some Ebp_sessions.Replay.Indexed)
    | "scan" -> Ok (Some Ebp_sessions.Replay.Scan)
    | other -> Error other

  let execute_query t (req : P.request) : P.response =
    match req with
    | P.Sessions_query { name; source; seed; engine; keep_hitless } -> (
        match engine_of_string engine with
        | Error other ->
            P.Error_resp
              {
                code = P.Bad_request;
                message = Printf.sprintf "unknown engine %S" other;
              }
        | Ok engine -> (
            match Trace_store.fetch t.store ~name ~source ~seed with
            | Error msg -> P.Error_resp { code = P.Bad_request; message = msg }
            | Ok (trace, index) ->
                let results =
                  match engine with
                  | Some engine ->
                      Ebp_sessions.Replay.discover_and_replay ~pool:t.pool
                        ~engine ~index ~keep_hitless trace
                  | None ->
                      (* The store always holds the index, so for the
                         planner "reuse" is free: the choice degenerates
                         to reuse-vs-scan, decided per trace. *)
                      Ebp_sessions.Planner.replay ~pool:t.pool ~keep_hitless
                        ~index_source:
                          {
                            Ebp_sessions.Planner.cached = true;
                            load = (fun () -> Some index);
                            store = ignore;
                          }
                        trace
                in
                P.Report (Render.sessions_report results)))
    | P.Experiment_query { workloads; artifact } -> (
        if not (List.mem artifact Render.experiment_artifacts) then
          P.Error_resp
            {
              code = P.Unknown_artifact;
              message = Printf.sprintf "unknown artifact %S" artifact;
            }
        else
          let resolved =
            List.fold_left
              (fun acc name ->
                match acc with
                | Error _ -> acc
                | Ok ws -> (
                    match Ebp_workloads.Workload.by_name name with
                    | Some w -> Ok (w :: ws)
                    | None -> Error name))
              (Ok []) workloads
          in
          match resolved with
          | Error name ->
              P.Error_resp
                {
                  code = P.Unknown_workload;
                  message = Printf.sprintf "unknown workload %S" name;
                }
          | Ok ws -> (
              let workloads =
                if ws = [] then Ebp_workloads.Workload.all else List.rev ws
              in
              match
                Ebp_core.Experiment.run ~workloads ~domains:t.config.domains
                  ?cache_dir:t.config.cache_dir ()
              with
              | Error msg -> P.Error_resp { code = P.Internal; message = msg }
              | Ok e -> (
                  match Render.experiment_report e ~artifact with
                  | Ok text -> P.Report text
                  | Error msg ->
                      P.Error_resp { code = P.Unknown_artifact; message = msg })))
    | P.Query { name; source; seed; expr; engine; format } -> (
        let bad message = P.Error_resp { code = P.Bad_request; message } in
        match
          ( Ebp_query.Query.engine_of_string engine,
            Ebp_query.Query.format_of_string format )
        with
        | Error msg, _ | _, Error msg -> bad msg
        | Ok engine, Ok format -> (
            match Ebp_query.Query.parse expr with
            | Error e -> bad (Ebp_query.Parser.error_line expr e)
            | Ok q -> (
                match Trace_store.fetch t.store ~name ~source ~seed with
                | Error msg -> bad msg
                | Ok (trace, index) ->
                    (* The store's prebuilt index rides along, so under
                       [auto] the planner prices reuse, not a build. *)
                    let execution =
                      Ebp_query.Query.run ~engine ~index ~pool:t.pool trace q
                    in
                    P.Report
                      (Ebp_query.Query.render ~format trace q
                         execution.Ebp_query.Query.raw))))
    | P.Live_query { name; source; seed; expr; format; min_events } -> (
        let bad message = P.Error_resp { code = P.Bad_request; message } in
        match Ebp_query.Query.format_of_string format with
        | Error msg -> bad msg
        | Ok format -> (
            match Ebp_query.Query.parse expr with
            | Error e -> bad (Ebp_query.Parser.error_line expr e)
            | Ok q -> (
                match Live.fetch t.live ~name ~source ~seed ~min_events with
                | Error msg -> bad msg
                | Ok p ->
                    (* Answer over the sealed prefix with the incremental
                       index (absent when fault-degraded — the planner
                       then prices a build or scan over the prefix). The
                       reason marks live decisions in the metrics; a
                       completed recording is a full trace again. *)
                    let reason =
                      if p.Live.p_complete then Ebp_sessions.Planner.Full
                      else Ebp_sessions.Planner.Partial_index
                    in
                    let execution =
                      Ebp_query.Query.run ?index:p.Live.p_index ~pool:t.pool
                        ~reason p.Live.p_trace q
                    in
                    P.Live_report
                      {
                        report =
                          Ebp_query.Query.render ~format p.Live.p_trace q
                            execution.Ebp_query.Query.raw;
                        high_water = p.Live.p_high_water;
                        complete = p.Live.p_complete;
                      })))
    | P.Hello _ | P.Ping | P.Stats_query | P.Shutdown ->
        P.Error_resp { code = P.Internal; message = "not a query" }

  let execute t req =
    (* A query must never take the daemon down — except a simulated crash
       from the fault harness, whose whole point is to stop the world. *)
    try execute_query t req with
    | Fault.Killed _ as e -> raise e
    | e ->
        P.Error_resp { code = P.Internal; message = Printexc.to_string e }

  (* --- admission --- *)

  let tenant_queue t tenant =
    match Hashtbl.find_opt t.queues tenant with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.replace t.queues tenant q;
        q

  let submit t ~tenant ~reply (req : P.request) =
    Metrics.incr m_requests;
    let tenant = sanitize_tenant tenant in
    match req with
    | P.Hello { max_version; _ } ->
        if max_version >= 1 then
          reply
            (P.Hello_ok
               { version = P.protocol_version; server = t.config.server_name })
        else
          reply
            (P.Error_resp
               {
                 code = P.Unsupported_version;
                 message =
                   Printf.sprintf
                     "server speaks protocol version %d; client maximum is %d"
                     P.protocol_version max_version;
               })
    | P.Ping -> reply P.Pong
    | P.Stats_query ->
        reply (P.Stats (Ebp_obs.Export.to_ndjson (Metrics.snapshot ())))
    | P.Shutdown ->
        t.draining <- true;
        reply P.Shutdown_ack
    | P.Sessions_query _ | P.Experiment_query _ | P.Query _ | P.Live_query _ ->
        if t.draining then
          reply
            (P.Error_resp
               { code = P.Shutting_down; message = "server is draining" })
        else if t.queued >= t.config.queue_limit then begin
          Metrics.incr m_overloaded;
          reply (P.Overloaded { queued = t.queued; limit = t.config.queue_limit })
        end
        else begin
          Metrics.incr m_queries;
          let q = tenant_queue t tenant in
          let was_empty = Queue.is_empty q in
          Queue.push
            { q_tenant = tenant; q_req = req; q_reply = reply;
              q_enq_ns = Span.now_ns () }
            q;
          if was_empty then Queue.push tenant t.ring;
          t.queued <- t.queued + 1;
          Metrics.set m_queue_depth (float_of_int t.queued)
        end

  (* --- dispatch --- *)

  let rec next_tenant t =
    if Queue.is_empty t.ring then None
    else
      let name = Queue.pop t.ring in
      match Hashtbl.find_opt t.queues name with
      | Some q when not (Queue.is_empty q) -> Some (name, q)
      | _ -> next_tenant t

  (* Remove every queued query identical to [req], across all tenants:
     they will all be answered by the one execution about to happen. *)
  let take_matching t req =
    let taken = ref [] in
    Hashtbl.iter
      (fun _name q ->
        if not (Queue.is_empty q) then begin
          let keep = Queue.create () in
          Queue.iter
            (fun item ->
              if item.q_req = req then taken := item :: !taken
              else Queue.push item keep)
            q;
          Queue.clear q;
          Queue.transfer keep q
        end)
      t.queues;
    List.rev !taken

  let dispatch_one t =
    match next_tenant t with
    | None -> false
    | Some (name, q) ->
        let primary = Queue.pop q in
        let coalesced = take_matching t primary.q_req in
        if not (Queue.is_empty q) then Queue.push name t.ring;
        let batch = primary :: coalesced in
        t.queued <- t.queued - List.length batch;
        Metrics.set m_queue_depth (float_of_int t.queued);
        Metrics.incr m_batches;
        Metrics.add m_coalesced (List.length coalesced);
        let start_ns = Span.now_ns () in
        List.iter
          (fun item -> Metrics.observe m_queue_delay (start_ns - item.q_enq_ns))
          batch;
        let resp = Span.with_span "serve.execute" (fun () -> execute t primary.q_req) in
        let done_ns = Span.now_ns () in
        List.iter
          (fun item ->
            Metrics.observe (tenant_latency item.q_tenant)
              (done_ns - item.q_enq_ns);
            item.q_reply resp)
          batch;
        true

  let drain t = while dispatch_one t do () done

  let shutdown t =
    drain t;
    Ebp_util.Domain_pool.shutdown t.pool
end

(* --- the socket event loop --- *)

type conn = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable tenant : string;
  mutable outbuf : string;
  mutable closing : bool;  (** close once [outbuf] is flushed *)
  mutable alive : bool;
}

let append_response conn resp =
  if conn.alive then conn.outbuf <- conn.outbuf ^ P.encode_response resp

let close_conn conn =
  if conn.alive then begin
    conn.alive <- false;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ())
  end

let handle_request core conn (req : P.request) =
  (match req with
  | P.Hello { tenant; _ } -> conn.tenant <- sanitize_tenant tenant
  | _ -> ());
  Core.submit core ~tenant:conn.tenant ~reply:(append_response conn) req

(* Parse every complete frame out of the connection's input buffer. On a
   corrupt stream, send a best-effort framing error and close: after a
   framing failure nothing later on the stream can be trusted. *)
let process_frames core conn =
  let s = Buffer.contents conn.inbuf in
  let len = String.length s in
  let pos = ref 0 in
  let corrupt = ref None in
  let continue = ref true in
  while !continue && !corrupt = None && !pos < len do
    match P.decode ~buf:s ~pos:!pos ~len:(len - !pos) with
    | `Need_more -> continue := false
    | `Corrupt msg -> corrupt := Some msg
    | `Frame (P.Request req, consumed) ->
        pos := !pos + consumed;
        handle_request core conn req
    | `Frame (P.Response _, consumed) ->
        pos := !pos + consumed;
        corrupt := Some "unexpected response frame from client"
  done;
  if !pos > 0 then begin
    let rest = String.sub s !pos (len - !pos) in
    Buffer.clear conn.inbuf;
    Buffer.add_string conn.inbuf rest
  end;
  match !corrupt with
  | None -> ()
  | Some message ->
      Metrics.incr m_conn_errors;
      append_response conn (P.Error_resp { code = P.Bad_request; message });
      conn.closing <- true

let read_conn core conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error _ ->
      Metrics.incr m_conn_errors;
      close_conn conn
  | 0 -> close_conn conn
  | n -> (
      Metrics.add m_bytes_in n;
      match Fault.mangle fp_read (Bytes.sub_string chunk 0 n) with
      | exception Fault.Injected _ ->
          Metrics.incr m_conn_errors;
          close_conn conn
      | data ->
          Buffer.add_string conn.inbuf data;
          process_frames core conn)

let flush_conn conn =
  if conn.alive && conn.outbuf <> "" then begin
    match Fault.mangle fp_write conn.outbuf with
    | exception Fault.Injected _ ->
        Metrics.incr m_conn_errors;
        close_conn conn
    | data -> (
        conn.outbuf <- data;
        match
          Unix.write_substring conn.fd conn.outbuf 0 (String.length conn.outbuf)
        with
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            ()
        | exception Unix.Unix_error _ ->
            Metrics.incr m_conn_errors;
            close_conn conn
        | n ->
            Metrics.add m_bytes_out n;
            conn.outbuf <-
              String.sub conn.outbuf n (String.length conn.outbuf - n))
  end;
  if conn.alive && conn.closing && conn.outbuf = "" then close_conn conn

(* Bind the listener, refusing to replace a live daemon and cleaning up a
   stale socket file from a crashed one (the crash-recovery story in
   docs/SERVICE.md). *)
let bind_listener socket_path =
  let addr = Unix.ADDR_UNIX socket_path in
  let cleanup_stale () =
    match (Unix.stat socket_path).Unix.st_kind with
    | Unix.S_SOCK ->
        let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        let live =
          try
            Unix.connect probe addr;
            true
          with Unix.Unix_error _ -> false
        in
        (try Unix.close probe with Unix.Unix_error _ -> ());
        if live then
          Error
            (Printf.sprintf "a live server already listens on %s" socket_path)
        else begin
          (* Stale socket from a crashed daemon: safe to reclaim. *)
          (try Sys.remove socket_path with Sys_error _ -> ());
          Ok ()
        end
    | _ ->
        Error
          (Printf.sprintf "%s exists and is not a socket; refusing to replace it"
             socket_path)
    | exception Unix.Unix_error _ -> Ok ()
  in
  match (if Sys.file_exists socket_path then cleanup_stale () else Ok ()) with
  | Error _ as e -> e
  | Ok () -> (
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      try
        Unix.bind fd addr;
        Unix.listen fd 64;
        Unix.set_nonblock fd;
        Ok fd
      with Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error
          (Printf.sprintf "cannot listen on %s: %s" socket_path
             (Unix.error_message e)))

(* How long a graceful shutdown waits for clients to read their replies
   before force-closing them. *)
let drain_grace_s = 5.0

let serve ?(on_ready = fun () -> ()) ~socket_path config () =
  match bind_listener socket_path with
  | Error _ as e -> e
  | Ok listen_fd ->
      let core = Core.create config in
      let stop_signal = ref false in
      let old_term =
        Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop_signal := true))
      and old_int =
        Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> stop_signal := true))
      and old_pipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
      let conns = ref [] in
      let listener_open = ref true in
      let drain_deadline = ref None in
      let close_listener () =
        if !listener_open then begin
          listener_open := false;
          (try Unix.close listen_fd with Unix.Unix_error _ -> ());
          (try Sys.remove socket_path with Sys_error _ -> ())
        end
      in
      let accept_burst () =
        let continue = ref true in
        while !continue do
          match Fault.check fp_accept with
          | exception Fault.Injected _ ->
              Metrics.incr m_conn_errors;
              continue := false
          | () -> (
              match Unix.accept listen_fd with
              | exception
                  Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                  continue := false
              | exception Unix.Unix_error _ -> continue := false
              | fd, _ ->
                  Unix.set_nonblock fd;
                  Metrics.incr m_accepts;
                  conns :=
                    {
                      fd;
                      inbuf = Buffer.create 256;
                      tenant = "default";
                      outbuf = "";
                      closing = false;
                      alive = true;
                    }
                    :: !conns)
        done
      in
      let finally () =
        close_listener ();
        List.iter close_conn !conns;
        Core.shutdown core;
        Sys.set_signal Sys.sigterm old_term;
        Sys.set_signal Sys.sigint old_int;
        Sys.set_signal Sys.sigpipe old_pipe
      in
      Fun.protect ~finally @@ fun () ->
      on_ready ();
      let finished = ref false in
      while not !finished do
        if !stop_signal then Core.request_shutdown core;
        if Core.draining core then begin
          close_listener ();
          if !drain_deadline = None then
            drain_deadline := Some (Unix.gettimeofday () +. drain_grace_s)
        end;
        conns := List.filter (fun c -> c.alive) !conns;
        Metrics.set m_connections (float_of_int (List.length !conns));
        let readable =
          (if !listener_open then [ listen_fd ] else [])
          @ List.filter_map
              (fun c -> if c.alive && not c.closing then Some c.fd else None)
              !conns
        and writable =
          List.filter_map
            (fun c -> if c.alive && c.outbuf <> "" then Some c.fd else None)
            !conns
        in
        let timeout = if Core.pending core > 0 then 0.0 else 0.2 in
        (match Unix.select readable writable [] timeout with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | rs, _ws, _ ->
            if !listener_open && List.memq listen_fd rs then accept_burst ();
            List.iter
              (fun c -> if c.alive && List.memq c.fd rs then read_conn core c)
              !conns;
            Core.drain core;
            List.iter flush_conn !conns);
        if Core.draining core && Core.pending core = 0 then begin
          let unflushed =
            List.exists (fun c -> c.alive && c.outbuf <> "") !conns
          in
          let expired =
            match !drain_deadline with
            | Some d -> Unix.gettimeofday () > d
            | None -> false
          in
          if (not unflushed) || expired then finished := true
        end
      done;
      Ok ()
