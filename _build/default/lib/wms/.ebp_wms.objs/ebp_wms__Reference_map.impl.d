lib/wms/reference_map.ml: Ebp_util Hashtbl
