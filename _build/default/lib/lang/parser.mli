(** Recursive-descent parser for MiniC.

    Grammar sketch (standard C expression precedence):

    {v
    program   := (global-decl | function)*
    function  := type ident '(' params ')' block
    decl      := ['static'] type ident ['[' int ']'] ['=' expr] ';'
    stmt      := decl | lvalue '=' expr ';' | expr ';' | 'if' ... | 'while' ...
               | 'for' '(' simple? ';' expr? ';' simple? ')' block
               | 'return' expr? ';' | 'break' ';' | 'continue' ';' | block
    v}

    Assignment is a statement, not an expression (assignment targets are
    recognized syntactically); [for] headers accept a declaration or an
    assignment in the init slot and an assignment or call in the step slot. *)

val parse : string -> (Ast.program, string) result
(** Lex and parse a full translation unit. Errors carry a line number. *)

val parse_expr : string -> (Ast.expr, string) result
(** Parse a single expression (used by tests). *)
