(* Access breakpoints: watching reads, not just writes.

   The paper's WMS answers "who modified this object?". The symmetric
   debugging question — "who is still *reading* this deprecated flag?" —
   falls out of the CodePatch design almost for free, because the same
   pass that checks store targets can check load targets. This example
   uses Ebp_wms.Access_code_patch to find every reader of a configuration
   global, then demonstrates independent read/write monitors on the same
   address.

   Run with: dune exec examples/read_watch.exe *)

module Interval = Ebp_util.Interval
module Machine = Ebp_machine.Machine
module Acp = Ebp_wms.Access_code_patch

let program =
  {|
int legacy_mode;     // deprecated flag: who still reads it?
int out;

int new_path(int x) {
  return x * 2;
}

int old_path(int x) {
  if (legacy_mode) {          // reader #1
    return x + x;
  }
  return new_path(x);
}

int audit() {
  return legacy_mode * 100;   // reader #2
}

int main() {
  legacy_mode = 1;            // a write, not a read
  out = old_path(21);
  out = out + audit();
  print_int(out);
  return 0;
}
|}

let () =
  let compiled =
    match Ebp_lang.Compiler.compile program with
    | Ok c -> c
    | Error e -> failwith ("compile error: " ^ e)
  in
  let debug = compiled.Ebp_lang.Compiler.debug in
  let patched = Acp.instrument compiled.Ebp_lang.Compiler.program in
  Printf.printf "instrumented %d stores and %d loads (%.0f%% code growth)\n\n"
    (Acp.patched_stores patched) (Acp.patched_loads patched)
    ((Acp.expansion patched -. 1.0) *. 100.0);
  let loader =
    Ebp_runtime.Loader.load
      { Ebp_lang.Compiler.program = Acp.program patched; debug }
  in
  let machine = Ebp_runtime.Loader.machine loader in
  let events = ref [] in
  let t =
    Acp.attach patched machine ~notify:(fun n -> events := n :: !events)
  in
  let flag = Option.get (Ebp_lang.Debug_info.global_by_name debug "legacy_mode") in
  let range =
    Interval.of_base_size ~base:flag.Ebp_lang.Debug_info.g_addr
      ~size:flag.Ebp_lang.Debug_info.g_size
  in
  (* Watch reads AND writes of the flag independently. *)
  (match Acp.install t ~on:`Both range with Ok () -> () | Error e -> failwith e);
  let result = Ebp_runtime.Loader.run loader in
  print_string result.Ebp_runtime.Loader.output;
  Printf.printf "\n%d reads, %d writes of legacy_mode:\n" (Acp.read_hits t)
    (Acp.write_hits t);
  List.iter
    (fun (n : Acp.notification) ->
      Printf.printf "  %s at pc %d\n"
        (match n.Acp.access with Acp.Read -> "READ " | Acp.Write -> "WRITE")
        n.Acp.pc)
    (List.rev !events)
