lib/trace/trace.mli: Ebp_util Format Object_desc
