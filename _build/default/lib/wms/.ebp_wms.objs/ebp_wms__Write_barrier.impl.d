lib/wms/write_barrier.ml: Ebp_machine Ebp_util Hashtbl List Monitor_map Option Timing
