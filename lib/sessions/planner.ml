module Trace = Ebp_trace.Trace
module Write_index = Ebp_trace.Write_index
module Metrics = Ebp_obs.Metrics

type choice = Use_scan | Build_index | Reuse_index

(* Why the planner was consulted. [Full] is the batch default; the other
   two mark the streaming pipeline's degraded-input plans: answering
   over the sealed prefix of an in-progress recording with an
   incrementally-maintained index ([Partial_index]), or replaying a
   time-travel seek restarted from a machine checkpoint instead of step
   0 ([Checkpoint_restart]). The reason does not change the cost model —
   the same three options are priced over whatever events/sessions are
   visible — but it is logged and counted so live and travel decisions
   are distinguishable in the metrics. *)
type reason = Full | Partial_index | Checkpoint_restart

type estimate = {
  events : int;
  sessions : int;
  domains : int;
  cached_index : bool;
  reason : reason;
  scan_cost : float;
  build_cost : float;
  reuse_cost : float;
  choice : choice;
}

let m_scan = Metrics.counter "planner.decision.scan"
let m_build = Metrics.counter "planner.decision.build"
let m_reuse = Metrics.counter "planner.decision.reuse"
let m_partial = Metrics.counter "planner.decision.partial_index"
let m_restart = Metrics.counter "planner.decision.checkpoint_restart"

(* The cost model. Unit: "events visited by one domain", calibrated
   against bench/main.ml's engine-comparison section rather than derived
   — the constants only need to rank the three options correctly near
   their crossover points, not predict wall-clock.

   - Scan replays every session in the same single pass, but per-event
     work grows with the sessions sharing the shard; with [d] domains the
     sessions split across shards while every shard still walks the whole
     trace. Empirically one pass costs ~1 plus ~1/32 per co-resident
     session:          scan  = events * (1 + sessions / domains / 32)
   - An indexed session replays by binary-searched range counts over its
     own postings: ~48 probes of log2(events) steps each (word + two page
     granularities, install/remove timeline walks), sessions split across
     domains:          reuse = (sessions / domains) * 48 * log2(events)
   - Building the index is one ~1.25x-weighted pass over the trace (the
     posting tables are hash inserts, heavier than a scan visit), chunked
     across domains, after which replay proceeds as reuse:
                       build = 1.25 * events / domains + reuse

   Reuse is only on the menu when a cached .widx exists; the planner
   never pays a speculative index load just to price it. *)
let estimate ?(reason = Full) ~events ~sessions ~domains ~cached_index () =
  let ev = float_of_int (max events 1) in
  let se = float_of_int (max sessions 0) in
  let d = float_of_int (max domains 1) in
  let log2_ev = log ev /. log 2. in
  let scan_cost = ev *. (1. +. (se /. d /. 32.)) in
  let reuse_cost = se /. d *. 48. *. log2_ev in
  let build_cost = (1.25 *. ev /. d) +. reuse_cost in
  let choice =
    if cached_index && reuse_cost <= build_cost && reuse_cost <= scan_cost then
      Reuse_index
    else if build_cost <= scan_cost then Build_index
    else Use_scan
  in
  { events; sessions; domains; cached_index; reason; scan_cost; build_cost;
    reuse_cost; choice }

let choice_name = function
  | Use_scan -> "scan"
  | Build_index -> "build"
  | Reuse_index -> "reuse"

let reason_name = function
  | Full -> "full"
  | Partial_index -> "partial_index"
  | Checkpoint_restart -> "checkpoint_restart"

let engine_of_choice = function
  | Use_scan -> Replay.Scan
  | Build_index | Reuse_index -> Replay.Indexed

(* The "planner: <choice> (" prefix is parsed by the benchmark's report
   assertions — extend inside the parentheses only. *)
let log_line e =
  Printf.sprintf
    "planner: %s (events=%d sessions=%d domains=%d cached=%b reason=%s cost \
     scan=%.3g build=%.3g reuse=%.3g)"
    (choice_name e.choice) e.events e.sessions e.domains e.cached_index
    (reason_name e.reason) e.scan_cost e.build_cost e.reuse_cost

let record_decision e =
  Metrics.incr
    (match e.choice with
    | Use_scan -> m_scan
    | Build_index -> m_build
    | Reuse_index -> m_reuse);
  match e.reason with
  | Full -> ()
  | Partial_index -> Metrics.incr m_partial
  | Checkpoint_restart -> Metrics.incr m_restart

type source = {
  cached : bool;
  load : unit -> Write_index.t option;
  store : Write_index.t -> unit;
}

let no_index_cache =
  { cached = false; load = (fun () -> None); store = ignore }

let replay ?(page_sizes = Replay.default_page_sizes) ?pool ?domains
    ?(keep_hitless = false) ?(index_source = no_index_cache) ?reason ?log
    trace =
  let go pool =
    let sessions = Discovery.discover trace in
    let ndomains =
      match pool with
      | Some p -> Ebp_util.Domain_pool.domains p
      | None -> 1
    in
    let est =
      estimate ?reason ~events:(Trace.length trace)
        ~sessions:(List.length sessions) ~domains:ndomains
        ~cached_index:index_source.cached ()
    in
    record_decision est;
    (match log with Some f -> f (log_line est) | None -> ());
    let build () =
      let index = Write_index.build ?pool ~page_sizes trace in
      index_source.store index;
      (Replay.Indexed, Some index)
    in
    let engine, index =
      match est.choice with
      | Use_scan -> (Replay.Scan, None)
      | Build_index -> build ()
      | Reuse_index -> (
          (* The probe said an entry exists; if it vanished or fails its
             integrity check between probe and load, degrade to a build —
             same engine, same report, just the amortization lost. *)
          match index_source.load () with
          | Some index -> (Replay.Indexed, Some index)
          | None -> build ())
    in
    let results = Replay.replay_all ~page_sizes ?pool ~engine ?index trace sessions in
    if keep_hitless then results
    else List.filter (fun (_, c) -> c.Counts.hits > 0) results
  in
  match (pool, domains) with
  | Some pool, _ -> go (Some pool)
  | None, (None | Some 1) -> go None
  | None, Some n ->
      Ebp_util.Domain_pool.with_pool ~domains:n (fun pool -> go (Some pool))
