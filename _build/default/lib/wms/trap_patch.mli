(** TrapPatch (TP) strategy: stores replaced by traps (§3.3, Figure 5).

    At "compile time" ({!instrument}) every explicit store instruction is
    replaced by a [Trap] carrying its original index — the mechanism gdb and
    dbx use for breakpoints. At run time the trap handler recovers the
    original store from the side table, performs the monitor lookup
    (charging [TPFaultHandler + SoftwareLookup]), notifies on a hit, and
    emulates the store.

    Every write in the program pays the trap cost whether or not it is
    anywhere near a monitor; that uniform tax is why the paper finds TP
    "unacceptably slow for most debugging applications" while noting its
    usefully low variance. *)

type patched

val instrument : Ebp_isa.Program.t -> patched
(** Replace every explicit store with a trap. The input must be resolved. *)

val program : patched -> Ebp_isa.Program.t
val patched_stores : patched -> int

type t

val attach :
  ?timing:Timing.t ->
  patched ->
  Ebp_machine.Machine.t ->
  notify:(Wms.notification -> unit) ->
  t
(** The machine must have been created from [program patched]. Takes over
    the machine's trap handler. *)

val strategy : t -> Wms.strategy
val stats : t -> Wms.stats
