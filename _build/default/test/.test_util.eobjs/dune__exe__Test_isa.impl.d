test/test_isa.ml: Alcotest Ebp_isa Fun List Printf QCheck2 QCheck_alcotest Result String
