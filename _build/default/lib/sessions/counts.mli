(** Counting variables (paper §7, Figure 2): the per-session totals the
    analytical models consume. VM-specific counters are computed once per
    page size (the paper reports 4 KiB and 8 KiB). *)

type vm = {
  page_size : int;
  protects : int;  (** VMProtect_σ: a page's monitor count went 0 → 1 *)
  unprotects : int;  (** VMUnprotect_σ: a page's monitor count went 1 → 0 *)
  active_page_misses : int;
      (** VMActivePageMiss_σ: monitor misses that wrote to a page holding
          an active monitor of this session *)
}

type t = {
  installs : int;  (** InstallMonitor_σ *)
  removes : int;  (** RemoveMonitor_σ *)
  hits : int;  (** MonitorHit_σ *)
  misses : int;  (** MonitorMiss_σ: every other write in the run *)
  vm : vm list;  (** one entry per replayed page size *)
}

val vm_for : t -> page_size:int -> vm
(** @raise Invalid_argument when no counters exist for the page size. *)

val pp : Format.formatter -> t -> unit
