lib/trace/object_desc.mli: Format
