(* Common write-monitor-service types (paper §2).

   A strategy, once attached to a machine, exposes the WMS interface:
   InstallMonitor / RemoveMonitor, with MonitorNotification delivered to
   the callback supplied at attach time. *)

type notification = {
  write : Ebp_util.Interval.t;  (** the byte range the hit store wrote *)
  pc : int;  (** program counter of the monitor hit *)
}

(* First-class handle so examples and tests can treat the four strategies
   uniformly. *)
type strategy = {
  name : string;
  install : Ebp_util.Interval.t -> (unit, string) result;
  remove : Ebp_util.Interval.t -> (unit, string) result;
  active_monitors : unit -> int;
  extras : unit -> (string * int) list;
      (* strategy-specific auxiliary counters, e.g. VM's page-miss faults *)
}

type stats = {
  mutable hits : int;  (** monitor notifications delivered *)
  mutable lookups : int;  (** software lookups performed *)
  mutable installs : int;
  mutable removes : int;
}

let fresh_stats () = { hits = 0; lookups = 0; installs = 0; removes = 0 }
