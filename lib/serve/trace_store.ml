module Metrics = Ebp_obs.Metrics
module Span = Ebp_obs.Span
module Trace_cache = Ebp_trace.Trace_cache
module Write_index = Ebp_trace.Write_index

let m_warm = Metrics.counter "serve.store.warm_hits"
let m_disk = Metrics.counter "serve.store.disk_hits"
let m_cold = Metrics.counter "serve.store.cold_records"
let m_evict = Metrics.counter "serve.store.evictions"
let m_resident = Metrics.gauge "serve.store.resident"
let m_load_ns = Metrics.histogram "serve.store.load_ns"

type entry = {
  trace : Ebp_trace.Trace.t;
  index : Write_index.t;
  mutable last_used : int;
}

type t = {
  cap : int;
  cache_dir : string option;
  page_sizes : int list;
  pool : Ebp_util.Domain_pool.t option;
  tbl : (string, entry) Hashtbl.t;
  mutable tick : int;
}

let create ?(capacity = 8) ?cache_dir
    ?(page_sizes = Ebp_sessions.Replay.default_page_sizes) ?pool () =
  {
    cap = max 1 capacity;
    cache_dir;
    page_sizes;
    pool;
    tbl = Hashtbl.create 16;
    tick = 0;
  }

let resident t = Hashtbl.length t.tbl
let capacity t = t.cap

let touch t e =
  t.tick <- t.tick + 1;
  e.last_used <- t.tick

let evict_to_fit t =
  while Hashtbl.length t.tbl >= t.cap do
    let victim =
      Hashtbl.fold
        (fun key e acc ->
          match acc with
          | Some (_, best) when best.last_used <= e.last_used -> acc
          | _ -> Some (key, e))
        t.tbl None
    in
    match victim with
    | None -> assert false (* length >= cap >= 1 *)
    | Some (key, _) ->
        Hashtbl.remove t.tbl key;
        Metrics.incr m_evict
  done

let insert t key trace index =
  evict_to_fit t;
  let e = { trace; index; last_used = 0 } in
  touch t e;
  Hashtbl.replace t.tbl key e;
  Metrics.set m_resident (float_of_int (Hashtbl.length t.tbl));
  e

(* Record [source] from scratch and persist it (best-effort) with the same
   base-time metadata the experiment engine stores, so a serve-populated
   cache entry is a first-class warm hit for [ebp experiment] too. *)
let record_cold t ~key ~source ~seed =
  match Ebp_trace.Recorder.record_source ~seed source with
  | Error _ as e -> e
  | Ok (result, trace, _debug) ->
      Metrics.incr m_cold;
      let index = Write_index.build ?pool:t.pool ~page_sizes:t.page_sizes trace in
      Option.iter
        (fun dir ->
          let base_ms =
            Ebp_machine.Cost_model.ms_of_cycles
              result.Ebp_runtime.Loader.cycles
          in
          ignore
            (Trace_cache.store ~dir ~key
               ~meta:(Printf.sprintf "%h" base_ms)
               trace
              : (unit, string) result);
          ignore
            (Trace_cache.store_index ~dir ~key ~page_sizes:t.page_sizes index
              : (unit, string) result))
        t.cache_dir;
      Ok (trace, index)

let load t ~key ~source ~seed =
  match t.cache_dir with
  | None -> record_cold t ~key ~source ~seed
  | Some dir -> (
      match Trace_cache.lookup ~dir ~key with
      | None -> record_cold t ~key ~source ~seed
      | Some (trace, _meta) ->
          Metrics.incr m_disk;
          let index =
            match
              Trace_cache.lookup_index ~dir ~key ~page_sizes:t.page_sizes
            with
            | Some index -> index
            | None ->
                let index =
                  Write_index.build ?pool:t.pool ~page_sizes:t.page_sizes trace
                in
                ignore
                  (Trace_cache.store_index ~dir ~key
                     ~page_sizes:t.page_sizes index
                    : (unit, string) result);
                index
          in
          Ok (trace, index))

let fetch t ~name ~source ~seed =
  let key = Trace_cache.make_key ~name ~source ~seed () in
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
      Metrics.incr m_warm;
      touch t e;
      Ok (e.trace, e.index)
  | None -> (
      let t0 = Span.now_ns () in
      match Span.with_span "serve.store.load" (fun () -> load t ~key ~source ~seed) with
      | Error _ as e -> e
      | Ok (trace, index) ->
          Metrics.observe m_load_ns (Span.now_ns () - t0);
          let e = insert t key trace index in
          Ok (e.trace, e.index))
