(** VirtualMemory (VM) strategy: page protection (§3.2, Figure 4).

    Installing a monitor write-protects every page it touches; the write
    fault handler looks the faulting range up in the monitor map, delivers a
    notification on a hit, {e emulates} the faulting store via the
    privileged memory interface, and continues after the faulting
    instruction. Stores that miss the monitors but land on a protected page
    (the paper's [VMActivePageMiss]) pay the full fault + lookup cost too —
    the strategy's Achilles heel.

    Per the model, installs and removes charge
    [VMUnprotect + SoftwareUpdate + VMProtect] for the protected WMS data
    page, plus [VMProtect]/[VMUnprotect] for each monitored page whose
    active-monitor count crosses zero. *)

type t

val attach :
  ?timing:Timing.t ->
  Ebp_machine.Machine.t ->
  notify:(Wms.notification -> unit) ->
  t
(** Takes over the machine's write-fault handler. The monitor map's page
    size follows the machine memory's page size. *)

val strategy : t -> Wms.strategy
val stats : t -> Wms.stats

val page_miss_faults : t -> int
(** Faults taken by stores that hit a protected page but no monitor. *)
