examples/strategy_comparison.mli:
