module I = Ebp_isa.Instr
module R = Ebp_isa.Reg
module Program = Ebp_isa.Program

type ctx = {
  mutable items : Program.item list;  (* reversed *)
  mutable count : int;
  mutable labels : (string * int) list;
  mutable next_label : int;
  func_names : string array;  (* indexed by function id *)
  global_addrs : int array;  (* indexed by global index *)
}

let emit ?(implicit = false) ctx instr =
  ctx.items <- { Program.instr; implicit } :: ctx.items;
  ctx.count <- ctx.count + 1

let def_label ctx name = ctx.labels <- (name, ctx.count) :: ctx.labels

let fresh ctx prefix =
  let n = ctx.next_label in
  ctx.next_label <- n + 1;
  Printf.sprintf ".%s%d" prefix n

let func_label name = "f_" ^ name
let treg d = R.t_ d

(* Temporary pushes are frame bookkeeping: implicit writes. *)
let push ctx reg =
  emit ctx (I.Alui (I.Add, R.sp, R.sp, -4));
  emit ~implicit:true ctx (I.Sw (reg, R.sp, 0))

(* Per-function generation state. *)
type fctx = {
  ctx : ctx;
  slot_loc : Debug_info.location array;
  ret_label : string;
  mutable loop_stack : (string * string) list;  (* (continue, break) *)
}

let var_location fc = function
  | Typed.V_local i -> fc.slot_loc.(i)
  | Typed.V_global i -> Debug_info.Static fc.ctx.global_addrs.(i)

let alu_of_binop = function
  | Ast.B_add -> (I.Add, false)
  | Ast.B_sub -> (I.Sub, false)
  | Ast.B_mul -> (I.Mul, false)
  | Ast.B_div -> (I.Div, false)
  | Ast.B_rem -> (I.Rem, false)
  | Ast.B_and -> (I.And, false)
  | Ast.B_or -> (I.Or, false)
  | Ast.B_xor -> (I.Xor, false)
  | Ast.B_shl -> (I.Sll, false)
  | Ast.B_shr -> (I.Srl, false)
  | Ast.B_eq -> (I.Seq, false)
  | Ast.B_ne -> (I.Sne, false)
  | Ast.B_lt -> (I.Slt, false)
  | Ast.B_le -> (I.Sle, false)
  | Ast.B_gt -> (I.Slt, true)  (* a > b  ==  b < a *)
  | Ast.B_ge -> (I.Sle, true)
  | Ast.B_land | Ast.B_lor -> invalid_arg "alu_of_binop: short-circuit op"

let max_depth = 7

(* Evaluate [e] into temporary register [treg d], with d in [0, max_depth].
   Binops at the depth ceiling spill the left operand to the stack (implicit
   write) and reload it into [v1]; calls save all live temporaries. *)
let rec eval fc d (e : Typed.texpr) =
  let ctx = fc.ctx in
  let rd = treg d in
  match e.Typed.te with
  | Typed.T_int v -> emit ctx (I.Li (rd, v))
  | Typed.T_load (Typed.TL_var vr) -> (
      match var_location fc vr with
      | Debug_info.Frame off -> emit ctx (I.Lw (rd, R.fp, off))
      | Debug_info.Static addr -> emit ctx (I.Lw (rd, R.zero, addr)))
  | Typed.T_load (Typed.TL_mem a) ->
      eval fc d a;
      emit ctx (I.Lw (rd, rd, 0))
  | Typed.T_addr (Typed.TL_var vr) -> (
      match var_location fc vr with
      | Debug_info.Frame off -> emit ctx (I.Alui (I.Add, rd, R.fp, off))
      | Debug_info.Static addr -> emit ctx (I.Li (rd, addr)))
  | Typed.T_addr (Typed.TL_mem a) -> eval fc d a
  | Typed.T_unop (op, e1) -> (
      eval fc d e1;
      match op with
      | Ast.U_neg -> emit ctx (I.Alu (I.Sub, rd, R.zero, rd))
      | Ast.U_not -> emit ctx (I.Alu (I.Seq, rd, rd, R.zero))
      | Ast.U_bnot -> emit ctx (I.Alui (I.Xor, rd, rd, -1)))
  | Typed.T_binop (Ast.B_land, e1, e2) ->
      let l_false = fresh ctx "and_false" and l_end = fresh ctx "and_end" in
      eval fc d e1;
      emit ctx (I.Br (I.Eq, rd, R.zero, I.Label l_false));
      eval fc d e2;
      emit ctx (I.Alu (I.Sne, rd, rd, R.zero));
      emit ctx (I.Jmp (I.Label l_end));
      def_label ctx l_false;
      emit ctx (I.Li (rd, 0));
      def_label ctx l_end
  | Typed.T_binop (Ast.B_lor, e1, e2) ->
      let l_true = fresh ctx "or_true" and l_end = fresh ctx "or_end" in
      eval fc d e1;
      emit ctx (I.Br (I.Ne, rd, R.zero, I.Label l_true));
      eval fc d e2;
      emit ctx (I.Alu (I.Sne, rd, rd, R.zero));
      emit ctx (I.Jmp (I.Label l_end));
      def_label ctx l_true;
      emit ctx (I.Li (rd, 1));
      def_label ctx l_end
  | Typed.T_binop (op, e1, e2) ->
      let alu, swapped = alu_of_binop op in
      if d < max_depth then begin
        eval fc d e1;
        eval fc (d + 1) e2;
        let r1, r2 = if swapped then (treg (d + 1), rd) else (rd, treg (d + 1)) in
        emit ctx (I.Alu (alu, rd, r1, r2))
      end
      else begin
        eval fc d e1;
        push ctx rd;
        eval fc d e2;
        emit ctx (I.Mv (R.v1, rd));
        emit ctx (I.Lw (rd, R.sp, 0));
        emit ctx (I.Alui (I.Add, R.sp, R.sp, 4));
        let r1, r2 = if swapped then (R.v1, rd) else (rd, R.v1) in
        emit ctx (I.Alu (alu, rd, r1, r2))
      end
  | Typed.T_call (fid, args) ->
      gen_call fc d (`User fid) args;
      emit ctx (I.Mv (rd, R.v0))
  | Typed.T_builtin (b, args) ->
      gen_call fc d (`Builtin b) args;
      if Typed.builtin_ret b <> Ast.T_void then emit ctx (I.Mv (rd, R.v0))

and gen_call fc d callee args =
  let ctx = fc.ctx in
  let nargs = List.length args in
  assert (nargs <= Abi.max_args);
  (* Argument evaluation reuses the whole temporary bank at depth 0, so the
     live temporaries t0..t(d-1) must be saved regardless of callee kind. *)
  for i = 0 to d - 1 do
    push ctx (treg i)
  done;
  List.iter
    (fun arg ->
      eval fc 0 arg;
      push ctx (treg 0))
    args;
  List.iteri
    (fun i _ ->
      emit ctx (I.Lw (R.of_int (R.to_int R.a0 + i), R.sp, 4 * (nargs - 1 - i))))
    args;
  if nargs > 0 then emit ctx (I.Alui (I.Add, R.sp, R.sp, 4 * nargs));
  (match callee with
  | `User fid -> emit ctx (I.Jal (I.Label (func_label ctx.func_names.(fid))))
  | `Builtin b -> emit ctx (I.Syscall (Abi.syscall_of_builtin b)));
  for i = d - 1 downto 0 do
    emit ctx (I.Lw (treg i, R.sp, 4 * (d - 1 - i)))
  done;
  if d > 0 then emit ctx (I.Alui (I.Add, R.sp, R.sp, 4 * d))

(* --- statements --- *)

let rec gen_stmt fc (s : Typed.tstmt) =
  let ctx = fc.ctx in
  match s with
  | Typed.TS_store (lv, e) -> (
      match lv with
      | Typed.TL_var vr -> (
          eval fc 0 e;
          match var_location fc vr with
          | Debug_info.Frame off -> emit ctx (I.Sw (treg 0, R.fp, off))
          | Debug_info.Static addr -> emit ctx (I.Sw (treg 0, R.zero, addr)))
      | Typed.TL_mem a ->
          eval fc 0 e;
          eval fc 1 a;
          emit ctx (I.Sw (treg 0, treg 1, 0)))
  | Typed.TS_expr e -> eval fc 0 e
  | Typed.TS_if (cond, then_blk, else_blk) ->
      let l_else = fresh ctx "else" and l_end = fresh ctx "endif" in
      eval fc 0 cond;
      emit ctx (I.Br (I.Eq, treg 0, R.zero, I.Label l_else));
      List.iter (gen_stmt fc) then_blk;
      emit ctx (I.Jmp (I.Label l_end));
      def_label ctx l_else;
      List.iter (gen_stmt fc) else_blk;
      def_label ctx l_end
  | Typed.TS_loop { cond; body; step } ->
      let l_top = fresh ctx "loop" in
      let l_step = fresh ctx "step" in
      let l_end = fresh ctx "endloop" in
      def_label ctx l_top;
      (match cond with
      | Some c ->
          eval fc 0 c;
          emit ctx (I.Br (I.Eq, treg 0, R.zero, I.Label l_end))
      | None -> ());
      fc.loop_stack <- (l_step, l_end) :: fc.loop_stack;
      List.iter (gen_stmt fc) body;
      fc.loop_stack <- List.tl fc.loop_stack;
      def_label ctx l_step;
      List.iter (gen_stmt fc) step;
      emit ctx (I.Jmp (I.Label l_top));
      def_label ctx l_end
  | Typed.TS_return e ->
      (match e with
      | Some e ->
          eval fc 0 e;
          emit ctx (I.Mv (R.v0, treg 0))
      | None -> ());
      emit ctx (I.Jmp (I.Label fc.ret_label))
  | Typed.TS_break -> (
      match fc.loop_stack with
      | (_, l_end) :: _ -> emit ctx (I.Jmp (I.Label l_end))
      | [] -> failwith "codegen: break outside loop")
  | Typed.TS_continue -> (
      match fc.loop_stack with
      | (l_step, _) :: _ -> emit ctx (I.Jmp (I.Label l_step))
      | [] -> failwith "codegen: continue outside loop")

(* --- functions --- *)

(* Lay out the frame: every non-static slot gets contiguous words below fp.
   Slot base offset = -frame_size + word_index * 4 (arrays grow upward). *)
let layout_function ~data_cursor (f : Typed.tfunc) =
  let n = Array.length f.Typed.tf_slots in
  let locs = Array.make n (Debug_info.Frame 0) in
  let frame_words = ref 0 in
  let cursor = ref data_cursor in
  Array.iteri
    (fun i slot ->
      if slot.Typed.sl_static then begin
        locs.(i) <- Debug_info.Static !cursor;
        cursor := !cursor + (slot.Typed.sl_words * Layout.word_size)
      end
      else begin
        locs.(i) <- Debug_info.Frame !frame_words;  (* word index for now *)
        frame_words := !frame_words + slot.Typed.sl_words
      end)
    f.Typed.tf_slots;
  let frame_size = !frame_words * Layout.word_size in
  Array.iteri
    (fun i slot ->
      if not slot.Typed.sl_static then
        match locs.(i) with
        | Debug_info.Frame w -> locs.(i) <- Debug_info.Frame ((w * 4) - frame_size)
        | Debug_info.Static _ -> assert false)
    f.Typed.tf_slots;
  (locs, frame_size, !cursor)

let gen_function ctx (f : Typed.tfunc) locs frame_size =
  def_label ctx (func_label f.Typed.tf_name);
  let ret_label = Printf.sprintf ".ret_%s" f.Typed.tf_name in
  let fc = { ctx; slot_loc = locs; ret_label; loop_stack = [] } in
  emit ctx (I.Alui (I.Add, R.sp, R.sp, -8));
  emit ~implicit:true ctx (I.Sw (R.ra, R.sp, 4));
  emit ~implicit:true ctx (I.Sw (R.fp, R.sp, 0));
  emit ctx (I.Mv (R.fp, R.sp));
  if frame_size > 0 then emit ctx (I.Alui (I.Add, R.sp, R.sp, -frame_size));
  emit ctx (I.Enter f.Typed.tf_id);
  (* Parameter spills: the incoming register arguments become ordinary
     stack locals. Implicit, as on SPARC (register-window spills). *)
  Array.iteri
    (fun i slot ->
      let p = slot.Typed.sl_param_index in
      if p >= 0 then
        match locs.(i) with
        | Debug_info.Frame off ->
            emit ~implicit:true ctx
              (I.Sw (R.of_int (R.to_int R.a0 + p), R.fp, off))
        | Debug_info.Static _ -> assert false)
    f.Typed.tf_slots;
  List.iter (gen_stmt fc) f.Typed.tf_body;
  (* Fall-through default return value. *)
  if f.Typed.tf_ret <> Ast.T_void then emit ctx (I.Li (R.v0, 0));
  def_label ctx ret_label;
  emit ctx (I.Leave f.Typed.tf_id);
  emit ctx (I.Mv (R.sp, R.fp));
  emit ctx (I.Lw (R.ra, R.sp, 4));
  emit ctx (I.Lw (R.fp, R.sp, 0));
  emit ctx (I.Alui (I.Add, R.sp, R.sp, 8));
  emit ctx I.Ret

let generate (prog : Typed.tprogram) =
  (* Data segment: globals first, then per-function statics. *)
  let global_addrs = Array.make (Array.length prog.Typed.t_globals) 0 in
  let cursor = ref Layout.data_base in
  let init_words = ref [] in
  Array.iteri
    (fun i (g : Typed.tglobal) ->
      global_addrs.(i) <- !cursor;
      if g.Typed.tg_init <> 0 then init_words := (!cursor, g.Typed.tg_init) :: !init_words;
      cursor := !cursor + (g.Typed.tg_words * Layout.word_size))
    prog.Typed.t_globals;
  let ctx =
    {
      items = [];
      count = 0;
      labels = [];
      next_label = 0;
      func_names = Array.map (fun f -> f.Typed.tf_name) prog.Typed.t_funcs;
      global_addrs;
    }
  in
  (* Entry stub. *)
  def_label ctx "_start";
  emit ctx (I.Li (R.sp, Layout.stack_top));
  emit ctx (I.Li (R.fp, Layout.stack_top));
  emit ctx (I.Jal (I.Label (func_label "main")));
  emit ctx I.Halt;
  let dbg_funcs =
    Array.map
      (fun (f : Typed.tfunc) ->
        let locs, frame_size, cursor' = layout_function ~data_cursor:!cursor f in
        (* Record static-local initializers. *)
        Array.iteri
          (fun i slot ->
            if slot.Typed.sl_static && slot.Typed.sl_static_init <> 0 then
              match locs.(i) with
              | Debug_info.Static addr ->
                  init_words := (addr, slot.Typed.sl_static_init) :: !init_words
              | Debug_info.Frame _ -> assert false)
          f.Typed.tf_slots;
        cursor := cursor';
        gen_function ctx f locs frame_size;
        let vars =
          Array.to_list
            (Array.mapi
               (fun i (slot : Typed.slot) ->
                 {
                   Debug_info.var_name = slot.Typed.sl_name;
                   size = slot.Typed.sl_words * Layout.word_size;
                   location = locs.(i);
                   is_param = slot.Typed.sl_param_index >= 0;
                   is_array = slot.Typed.sl_is_array;
                   is_static = slot.Typed.sl_static;
                 })
               f.Typed.tf_slots)
        in
        { Debug_info.id = f.Typed.tf_id; name = f.Typed.tf_name; vars })
      prog.Typed.t_funcs
  in
  let globals =
    Array.to_list
      (Array.mapi
         (fun i (g : Typed.tglobal) ->
           {
             Debug_info.g_name = g.Typed.tg_name;
             g_addr = global_addrs.(i);
             g_size = g.Typed.tg_words * Layout.word_size;
             g_is_array = g.Typed.tg_is_array;
           })
         prog.Typed.t_globals)
  in
  let program =
    Program.of_items ~labels:(List.rev ctx.labels) (List.rev ctx.items)
  in
  let program =
    match Program.resolve program with
    | Ok p -> p
    | Error msg -> failwith ("codegen: " ^ msg)
  in
  let dbg =
    {
      Debug_info.functions = dbg_funcs;
      globals;
      data_end = !cursor;
      init_words = List.rev !init_words;
    }
  in
  (program, dbg)
