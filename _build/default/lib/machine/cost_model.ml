type t = {
  alu : int;
  mul : int;
  div : int;
  load : int;
  store : int;
  branch : int;
  jump : int;
  call : int;
  syscall : int;
  trap_dispatch : int;
  chk : int;
  marker : int;
}

let default =
  {
    alu = 1;
    mul = 4;
    div = 12;
    load = 2;
    store = 2;
    branch = 1;
    jump = 1;
    call = 2;
    syscall = 20;
    trap_dispatch = 4;
    chk = 2;
    marker = 0;
  }

let clock_hz = 40_000_000.0

let cycles_of_us us = int_of_float (Float.round (us *. clock_hz /. 1_000_000.0))

let ms_of_cycles cycles = float_of_int cycles /. clock_hz *. 1000.0

let cost t (instr : Ebp_isa.Instr.t) =
  match instr with
  | Nop | Halt -> 1
  | Li _ | Mv _ -> t.alu
  | Alu (op, _, _, _) | Alui (op, _, _, _) -> (
      match op with Mul -> t.mul | Div | Rem -> t.div | _ -> t.alu)
  | Lw _ | Lb _ -> t.load
  | Sw _ | Sb _ -> t.store
  | Br _ -> t.branch
  | Jmp _ -> t.jump
  | Jal _ | Jalr _ | Ret -> t.call
  | Syscall _ -> t.syscall
  | Trap _ -> t.trap_dispatch
  | Chk _ -> t.chk
  | Enter _ | Leave _ -> t.marker
