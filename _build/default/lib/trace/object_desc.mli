(** Program-object descriptors: the [ObjectDesc] argument of the paper's
    install/remove trace events (§6). The phase-2 simulator uses them to
    decide which write monitors belong to the monitor session under study.

    - [Local] — one instantiation of an automatic variable (parameters
      included); [inst] is the activation number of the enclosing function,
      so recursion produces distinct descriptors that the session layer
      groups back together ("all instantiations of the variable belong to
      the same monitor session", §5).
    - [Local_static] — a function-scoped static: not automatic (excluded
      from OneLocalAuto) but included in AllLocalInFunc (§5).
    - [Global] — a global static variable.
    - [Heap] — one heap object. [context] is the dynamic function context
      at allocation time, innermost first; OneHeap keys on the allocating
      function (the head) plus [seq], AllHeapInFunc matches any function in
      the context. A realloc'd object keeps its descriptor (footnote 4). *)

type t =
  | Local of { func : string; var : string; inst : int }
  | Local_static of { func : string; var : string }
  | Global of { var : string }
  | Heap of { context : string list; seq : int }

val site : t -> string option
(** The allocating function of a heap object (head of its context). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Stable textual form, e.g. ["local:f.x#2"], ["heap:alloc<main#17"]. *)

val of_string : string -> t option
(** Inverse of {!to_string}; [None] on malformed input. *)
