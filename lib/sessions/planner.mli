(** Cost-based engine selection for phase-2 replay.

    The scan and indexed engines produce bit-identical reports but cross
    over in cost: indexed replay wins 5-6x on session-heavy workloads yet
    only breaks even when a long trace carries a handful of sessions (the
    EXPERIMENTS.md table), and a cached [.widx] shifts the crossover
    again by making the index free. This module prices the three options
    — scan, build-then-index, reuse-cached-index — from quantities that
    are known {e before} any replay work (trace length, discovered
    session count, domain count, cached-index availability), picks the
    cheapest, and logs the decision. [--engine scan|indexed] remains the
    override; the planner is what [--engine auto] (the default) runs.

    Correctness does not depend on the model: every branch funnels into
    {!Replay.replay_all}, whose engines are differentially tested, so a
    mispriced decision costs time, never accuracy. *)

type choice = Use_scan | Build_index | Reuse_index

(** Why the planner was consulted: a complete batch trace ([Full], the
    default), the sealed prefix of an in-progress streaming recording
    answered over an incrementally-maintained index ([Partial_index]),
    or a time-travel replay restarted from a machine checkpoint
    ([Checkpoint_restart]). The reason never changes the decision — it
    annotates the log line ([reason=...]) and bumps
    [planner.decision.partial_index] / [...checkpoint_restart] next to
    the choice counter, so streaming-mode decisions are observable. *)
type reason = Full | Partial_index | Checkpoint_restart

type estimate = {
  events : int;
  sessions : int;
  domains : int;
  cached_index : bool;
  reason : reason;
  scan_cost : float;  (** modeled cost of one scan pass, all sessions *)
  build_cost : float;  (** index build + indexed replay *)
  reuse_cost : float;  (** indexed replay off a cached index *)
  choice : choice;
}

val estimate :
  ?reason:reason ->
  events:int -> sessions:int -> domains:int -> cached_index:bool -> unit ->
  estimate
(** Pure — same inputs, same decision, so planned runs stay as
    reproducible as fixed-engine runs. [Reuse_index] is only ever chosen
    when [cached_index] is true. Costs are in arbitrary calibrated units;
    see the model comment in the implementation. *)

val choice_name : choice -> string
(** ["scan"], ["build"], or ["reuse"] — the token used in the log line
    and the [planner.decision.*] counter names. *)

val reason_name : reason -> string
(** ["full"], ["partial_index"], or ["checkpoint_restart"]. *)

val record_decision : estimate -> unit
(** Bump [planner.decision.<choice>] (and, for a non-[Full] reason,
    [planner.decision.<reason>]). {!replay} calls this itself; other
    surfaces that consult {!estimate} directly (the query front door)
    share the counters through it. *)

val engine_of_choice : choice -> Replay.engine

val log_line : estimate -> string
(** The one-line human rendering of an estimate, e.g.
    ["planner: build (events=... sessions=... ...)"] — what
    {!replay} feeds the [?log] callback. *)

(** How the planner sees the index cache: an existence probe (priced into
    the estimate), a loader, and a store for freshly built indexes.
    {!no_index_cache} (never cached, never stores) makes the planner
    usable without a cache directory. *)
type source = {
  cached : bool;
  load : unit -> Ebp_trace.Write_index.t option;
  store : Ebp_trace.Write_index.t -> unit;
}

val no_index_cache : source

val replay :
  ?page_sizes:int list ->
  ?pool:Ebp_util.Domain_pool.t ->
  ?domains:int ->
  ?keep_hitless:bool ->
  ?index_source:source ->
  ?reason:reason ->
  ?log:(string -> unit) ->
  Ebp_trace.Trace.t ->
  (Session.t * Counts.t) list
(** Discover sessions, {!estimate}, then replay with the chosen engine —
    the planner's counterpart of {!Replay.discover_and_replay}, with the
    same sharding ([?pool] / [?domains]) and [?keep_hitless] contract.
    A [Reuse_index] whose load misses (entry vanished or quarantined
    between probe and load) degrades to a build, never an error. The
    decision is counted in [planner.decision.{scan,build,reuse}] and,
    when [?log] is given, reported through it; there is no default
    output, so batch report bytes are unchanged. *)
