Corruption handling end to end: every cache artifact is sealed with a
checksum, damage is detected and quarantined (renamed *.corrupt), and
lookups degrade tier by tier — mmap'd columnar sidecar, canonical
entry, re-record — instead of failing.

  $ cat > tiny.mc <<'MC'
  > int g;
  > int main() {
  >   int i;
  >   for (i = 0; i < 10; i = i + 1) { g = g + i; }
  >   return 0;
  > }
  > MC
  $ ebp trace tiny.mc --cached --cache-dir cache 2>&1 >/dev/null
  phase 1: traced and cached (25 events)

A cached recording is two files — the canonical sealed entry and a
columnar sidecar that warm runs map instead of decoding:

  $ ls cache | sed -E 's/[0-9a-f]{32}/KEY/g'
  KEY.ebpt3
  KEY.trace

Flip one byte in the canonical entry's body:

  $ entry=$(ls cache/*.trace)
  $ printf '\377' | dd of="$entry" bs=1 seek=40 conv=notrunc status=none

The scanner reports the damage, quarantines the file, and exits 1; the
sidecar is sealed separately and scans intact:

  $ ebp cache verify --cache-dir cache > scan.out
  [1]
  $ sed -E 's/[0-9a-f]{32}/KEY/g' scan.out
  corrupt: KEY.trace (checksum mismatch) -> quarantined
  2 entries checked: 1 intact, 1 corrupt, 0 temp files
  $ ls cache | sed -E 's/[0-9a-f]{32}/KEY/g'
  KEY.ebpt3
  KEY.trace.corrupt

The quarantined corpse is not an entry: a re-scan is clean. And the
surviving sidecar holds the same recording, so losing the canonical
entry alone does not cost a re-record:

  $ ebp cache verify --cache-dir cache
  1 entries checked: 1 intact, 0 corrupt, 0 temp files
  $ ebp trace tiny.mc --cached --cache-dir cache 2>&1 >/dev/null
  phase 1: cache hit, no execution (25 events)

Corrupting the sidecar too leaves nothing to serve. The next cached run
quarantines it on the fly (stderr notice), treats the key as a miss,
and re-records through it:

  $ side=$(ls cache/*.ebpt3)
  $ printf 'XXXX' | dd of="$side" bs=1 seek=0 conv=notrunc status=none
  $ ebp trace tiny.mc --cached --cache-dir cache 2>&1 >/dev/null \
  >   | sed -E 's/[0-9a-f]{32}/KEY/g'
  ebp: quarantined corrupt cache entry KEY.ebpt3 (bad columnar magic)
  phase 1: traced and cached (25 events)
  $ ebp trace tiny.mc --cached --cache-dir cache 2>&1 >/dev/null
  phase 1: cache hit, no execution (25 events)

The experiment engine recovers the same way when its cached write index
is damaged — the report is identical to a cache-free run:

  $ ebp experiment --workloads circuit --only table1 --cache-dir cache 2>/dev/null >/dev/null
  $ widx=$(ls cache/*.widx)
  $ printf '\377' | dd of="$widx" bs=1 seek=40 conv=notrunc status=none
  $ ebp experiment --workloads circuit --only table1 --cache-dir cache 2>/dev/null >report1
  $ ebp experiment --workloads circuit --only table1 2>/dev/null >report2
  $ diff report1 report2

gc sweeps the quarantined corpses (all three of them) before anything
else, leaving a cache that scans clean:

  $ ebp cache gc --cache-dir cache --max-bytes 100000000 | sed -E 's/[0-9]+ bytes/N bytes/'
  removed 3 entries, reclaimed N bytes
  $ ebp cache verify --cache-dir cache
  5 entries checked: 5 intact, 0 corrupt, 0 temp files
