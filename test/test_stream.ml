(* Tests for the streaming record pipeline: sealed-block traces
   (Stream), the incrementally-maintained write index
   (Write_index.Incremental), and checkpointed time travel (Checkpoint).

   The load-bearing equivalences, each pinned here:
   - a completed stream decodes to a trace byte-identical (under
     Trace.encode) to the batch recorder's, across all five workloads
     and at adversarially small block sizes;
   - the per-block incremental index equals the batch Write_index.build
     of the full trace;
   - any byte prefix of a stream parses to the trace of its sealed
     blocks (prefix consistency), and corruption ends the prefix rather
     than corrupting it;
   - a checkpoint-restored seek reaches a machine state bit-identical
     (Checkpoint.state_digest) to a step-0 replay;
   - the three fault points (stream.seal, stream.index_merge,
     checkpoint.store) degrade exactly as docs/ROBUSTNESS.md says. *)

module Fault = Ebp_util.Fault
module Trace = Ebp_trace.Trace
module Stream = Ebp_trace.Stream
module Recorder = Ebp_trace.Recorder
module Write_index = Ebp_trace.Write_index
module Checkpoint = Ebp_trace.Checkpoint
module Trace_cache = Ebp_trace.Trace_cache
module Loader = Ebp_runtime.Loader
module Workload = Ebp_workloads.Workload
module Fuzz = Ebp_core.Fuzz

let page_sizes = Ebp_sessions.Replay.default_page_sizes

let with_rules ?seed rules f =
  Fault.configure ?seed rules;
  Fun.protect ~finally:Fault.reset f

let rule pattern trigger action = { Fault.pattern; trigger; action }

(* Two deterministic programs from the fuzzer's generator, knobbed for
   guaranteed event counts: [small] (heap churn + monitored globals, a
   few hundred events) crosses many 32-event blocks and keeps the O(n²)
   prefix sweep cheap; [mid] (hot write loops, several thousand events)
   gives checkpoint cadences something to sample. *)
let small_source =
  Fuzz.render
    (Fuzz.generate_knobbed
       ~knobs:{ Fuzz.gen_events = 0; gen_heap_churn = 8; gen_session_density = 4 }
       ~seed:5)

let small_seed = 5

let mid_source =
  Fuzz.render
    (Fuzz.generate_knobbed
       ~knobs:{ Fuzz.gen_events = 2; gen_heap_churn = 2; gen_session_density = 2 }
       ~seed:7)

let mid_seed = 7

let batch_trace ?fuel ~seed source =
  match Recorder.record_source ~seed ?fuel source with
  | Error msg -> Alcotest.failf "batch record failed: %s" msg
  | Ok (_res, trace, _dbg) -> trace

let stream_bytes ?fuel ?block_events ?on_seal ~seed source =
  let buf = Buffer.create 4096 in
  match
    Recorder.record_source_stream ~seed ?fuel ?block_events ?on_seal
      ~write:(Buffer.add_string buf) source
  with
  | Error msg -> Alcotest.failf "stream record failed: %s" msg
  | Ok (_res, events) -> (Buffer.contents buf, events)

(* --- stream vs batch, all five workloads --- *)

let test_workloads_identical () =
  List.iter
    (fun w ->
      let seed = w.Workload.seed and source = w.Workload.source in
      let batch = batch_trace ~seed source in
      let inc = Write_index.Incremental.create ~page_sizes in
      let bytes, events =
        stream_bytes ~seed source
          ~on_seal:(fun ~first:_ ~count ~nobjs iter ->
            Write_index.Incremental.add_block inc ~nobjs ~count iter)
      in
      Alcotest.(check int)
        (w.Workload.name ^ " event count")
        (Trace.length batch) events;
      (match Stream.read bytes with
      | Error msg -> Alcotest.failf "%s: stream read: %s" w.Workload.name msg
      | Ok streamed ->
          Alcotest.(check bool)
            (w.Workload.name ^ " streamed trace byte-identical")
            true
            (Trace.encode streamed = Trace.encode batch));
      match Write_index.Incremental.snapshot inc with
      | None -> Alcotest.failf "%s: incremental index degraded" w.Workload.name
      | Some idx ->
          Alcotest.(check bool)
            (w.Workload.name ^ " incremental index equals batch build")
            true
            (Write_index.equal idx (Write_index.build ~page_sizes batch)))
    Workload.all

(* Block size must not matter: tiny blocks exercise every boundary. *)
let test_block_size_irrelevant () =
  let batch = batch_trace ~seed:small_seed small_source in
  List.iter
    (fun block_events ->
      let bytes, _ = stream_bytes ~block_events ~seed:small_seed small_source in
      match Stream.read bytes with
      | Error msg -> Alcotest.failf "block_events=%d: %s" block_events msg
      | Ok streamed ->
          Alcotest.(check bool)
            (Printf.sprintf "block_events=%d identical" block_events)
            true
            (Trace.encode streamed = Trace.encode batch))
    [ 1; 7; 32; 1024; 1 lsl 20 ]

(* --- prefix consistency --- *)

let test_prefix_consistency () =
  let block_events = 32 in
  let bytes, events = stream_bytes ~block_events ~seed:small_seed small_source in
  Alcotest.(check bool) "several blocks" true (events > 3 * block_events);
  (* The complete image parses with complete=true. *)
  (match Stream.read_prefix bytes with
  | Error msg -> Alcotest.failf "full prefix: %s" msg
  | Ok p ->
      Alcotest.(check bool) "complete" true p.Stream.complete;
      Alcotest.(check int) "full high water" events p.Stream.high_water);
  (* Every truncation past the header parses; high water is monotone in
     the cut, never exceeds the cut's sealed blocks, and each prefix
     trace is a literal event-prefix of the full trace. *)
  let full = Result.get_ok (Stream.read bytes) in
  let full_enc = Trace.encode full in
  let prev = ref 0 in
  for cut = String.length Stream.magic + 2 to String.length bytes - 1 do
    match Stream.read_prefix (String.sub bytes 0 cut) with
    | Error msg -> Alcotest.failf "cut %d: %s" cut msg
    | Ok p ->
        if p.Stream.complete then Alcotest.failf "cut %d: claims complete" cut;
        if p.Stream.high_water < !prev then
          Alcotest.failf "cut %d: high water regressed %d -> %d" cut !prev
            p.Stream.high_water;
        prev := p.Stream.high_water;
        Alcotest.(check int)
          (Printf.sprintf "cut %d trace length" cut)
          p.Stream.high_water
          (Trace.length p.Stream.trace);
        (* Prefix-of-trace: re-recording the first [high_water] events
           would be circular; instead check the prefix replays as a
           prefix — its encoded events are a prefix of the full run's
           event sequence. *)
        let n = Trace.length p.Stream.trace in
        let agree = ref true in
        for i = 0 to n - 1 do
          Trace.get_raw p.Stream.trace i
            (fun ~tag ~obj ~lo ~hi ~pc ->
              Trace.get_raw full i (fun ~tag:t' ~obj:o' ~lo:l' ~hi:h' ~pc:p' ->
                  if
                    tag <> t' || obj <> o' || lo <> l' || hi <> h' || pc <> p'
                  then agree := false))
        done;
        if not !agree then Alcotest.failf "cut %d: prefix events diverge" cut
  done;
  ignore full_enc;
  (* Strict read of any truncation is an error. *)
  (match Stream.read (String.sub bytes 0 (String.length bytes - 1)) with
  | Ok _ -> Alcotest.fail "strict read accepted a truncated stream"
  | Error _ -> ());
  (* A missing header is a hard error even for the prefix reader. *)
  match Stream.read_prefix "EBPX" with
  | Ok _ -> Alcotest.fail "prefix reader accepted a bad header"
  | Error _ -> ()

let test_corruption_ends_prefix () =
  let block_events = 32 in
  let bytes, _ = stream_bytes ~block_events ~seed:small_seed small_source in
  let full = Result.get_ok (Stream.read_prefix bytes) in
  (* Flip one byte somewhere past the first block: the CRC must end the
     prefix at (or before) the corrupted record — never propagate bad
     events, never hard-error on what looks like a torn tail. *)
  let pos = String.length bytes / 2 in
  let b = Bytes.of_string bytes in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
  match Stream.read_prefix (Bytes.to_string b) with
  | Error _ -> () (* semantically-inconsistent corruption: also fine *)
  | Ok p ->
      Alcotest.(check bool) "not complete" false p.Stream.complete;
      Alcotest.(check bool) "prefix shrank" true
        (p.Stream.high_water < full.Stream.high_water)

(* --- checkpointed time travel --- *)

let compiled_of source =
  match Ebp_lang.Compiler.compile source with
  | Error msg -> Alcotest.failf "compile failed: %s" msg
  | Ok c -> c

(* Stream-record [source] while taking a checkpoint roughly every
   [every] events; returns the chain and the stream bytes. *)
let record_with_checkpoints ?(every = 100) ~seed source =
  let compiled = compiled_of source in
  let buf = Buffer.create 4096 in
  let writer = Stream.Writer.create ~write:(Buffer.add_string buf) () in
  let loader = Loader.load ~seed compiled in
  let recorder = Recorder.attach_stream writer loader in
  let chain = Checkpoint.create () in
  Checkpoint.track loader;
  ignore
    (Checkpoint.run_with_checkpoints ~every ~slice:512
       ~events:(fun () -> Stream.Writer.events writer)
       ~nobjs:(fun () -> Stream.Writer.object_count writer)
       chain loader recorder);
  Recorder.finish_events recorder;
  Stream.Writer.finish writer;
  (chain, Buffer.contents buf, fun () -> Loader.load ~seed compiled)

let step0_digest ~load ~event =
  let loader = load () in
  let counters = { Recorder.c_events = 0; c_objs = 0 } in
  ignore (Recorder.attach_sink (Recorder.counting_sink counters) loader);
  ignore (Checkpoint.seek loader counters ~event);
  Checkpoint.state_digest loader counters

let restart_digest chain ~load ~event =
  match Checkpoint.restore chain ~event ~load with
  | None -> None
  | Some r ->
      ignore (Checkpoint.seek r.Checkpoint.rs_loader r.Checkpoint.rs_counters ~event);
      Some (Checkpoint.state_digest r.Checkpoint.rs_loader r.Checkpoint.rs_counters)

let test_checkpoint_restart_equiv () =
  let chain, bytes, load =
    record_with_checkpoints ~every:100 ~seed:mid_seed mid_source
  in
  Alcotest.(check bool) "took checkpoints" true (Checkpoint.count chain >= 2);
  (* Checkpointing must not perturb the recording. *)
  let batch = batch_trace ~seed:mid_seed mid_source in
  let streamed = Result.get_ok (Stream.read bytes) in
  Alcotest.(check bool) "checkpointed stream still byte-identical" true
    (Trace.encode streamed = Trace.encode batch);
  let total = Trace.length batch in
  let stamps = Checkpoint.events chain in
  (* Targets straddle checkpoint stamps — including one exactly on the
     second stamp, where restart must come from the entry strictly
     before it. *)
  let targets =
    (List.hd stamps + 1) :: (List.hd stamps + 37)
    :: List.nth stamps 1
    :: [ total / 2; total - 1; total ]
  in
  List.iter
    (fun event ->
      match restart_digest chain ~load ~event with
      | None -> Alcotest.failf "event %d: no checkpoint found" event
      | Some d ->
          Alcotest.(check string)
            (Printf.sprintf "digest at event %d" event)
            (step0_digest ~load ~event) d)
    targets;
  (* At or before the first stamp there is nothing strictly earlier to
     restore from. *)
  Alcotest.(check bool) "no checkpoint strictly before first stamp" true
    (restart_digest chain ~load ~event:(List.hd stamps) = None)

let test_checkpoints_across_workloads () =
  (* The heap-heavy and the static-only shapes, with a realistic
     cadence; the other workloads ride the same code paths. *)
  List.iter
    (fun w ->
      let chain, _bytes, load =
        record_with_checkpoints ~every:50_000 ~seed:w.Workload.seed
          w.Workload.source
      in
      Alcotest.(check bool)
        (w.Workload.name ^ " took checkpoints")
        true
        (Checkpoint.count chain >= 1);
      let event = List.hd (List.rev (Checkpoint.events chain)) + 1_000 in
      match restart_digest chain ~load ~event with
      | None -> Alcotest.failf "%s: restore failed" w.Workload.name
      | Some d ->
          Alcotest.(check string)
            (w.Workload.name ^ " digest")
            (step0_digest ~load ~event) d)
    [ Workload.circuit; Workload.typeset ]

let test_checkpoint_codec () =
  let chain, _bytes, load =
    record_with_checkpoints ~every:100 ~seed:mid_seed mid_source
  in
  let chain' =
    match Checkpoint.decode (Checkpoint.encode chain) with
    | Error msg -> Alcotest.failf "decode: %s" msg
    | Ok c -> c
  in
  Alcotest.(check (list int))
    "stamps survive the codec"
    (Checkpoint.events chain) (Checkpoint.events chain');
  let event = List.hd (List.rev (Checkpoint.events chain)) in
  Alcotest.(check (option string))
    "decoded chain restores identically"
    (restart_digest chain ~load ~event)
    (restart_digest chain' ~load ~event);
  match Checkpoint.decode "not a chain" with
  | Ok _ -> Alcotest.fail "decoded garbage"
  | Error _ -> ()

let test_checkpoint_cache_roundtrip () =
  let dir = Filename.temp_file "ebp-ckpt-cache" "" in
  Sys.remove dir;
  let chain, _bytes, load =
    record_with_checkpoints ~every:100 ~seed:mid_seed mid_source
  in
  let key = Trace_cache.make_key ~name:"mid" ~source:mid_source ~seed:mid_seed () in
  Alcotest.(check bool) "not cached yet" false
    (Trace_cache.checkpoint_cached ~dir ~key);
  (match Trace_cache.store_checkpoints ~dir ~key chain with
  | Error msg -> Alcotest.failf "store: %s" msg
  | Ok () -> ());
  Alcotest.(check bool) "cached" true (Trace_cache.checkpoint_cached ~dir ~key);
  (match Trace_cache.lookup_checkpoints ~dir ~key with
  | None -> Alcotest.fail "lookup missed"
  | Some chain' ->
      let event = List.hd (List.rev (Checkpoint.events chain)) in
      Alcotest.(check (option string))
        "cached chain restores identically"
        (restart_digest chain ~load ~event)
        (restart_digest chain' ~load ~event));
  Array.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  Sys.rmdir dir

(* --- fault points --- *)

let test_fault_seal_transient () =
  (* One injected seal failure is absorbed by the writer's retries; the
     stream comes out byte-identical to the fault-free one. *)
  let clean, _ = stream_bytes ~block_events:32 ~seed:small_seed small_source in
  let faulted, _ =
    with_rules [ rule "stream.seal" (Fault.Nth 1) Fault.Fail ] (fun () ->
        stream_bytes ~block_events:32 ~seed:small_seed small_source)
  in
  Alcotest.(check bool) "retried seal, identical bytes" true (clean = faulted)

let test_fault_seal_persistent () =
  with_rules [ rule "stream.seal" Fault.Always Fault.Fail ] (fun () ->
      match
        Recorder.record_source_stream ~seed:small_seed ~block_events:32
          ~write:(fun _ -> ())
          small_source
      with
      | exception Fault.Injected _ -> ()
      | Ok _ -> Alcotest.fail "persistent seal fault did not propagate"
      | Error msg -> Alcotest.failf "unexpected error: %s" msg)

let test_fault_index_merge_degrades () =
  (* A merge fault degrades the incremental builder to None — the
     stream itself is untouched and callers replan without an index. *)
  let inc = Write_index.Incremental.create ~page_sizes in
  let clean, _ = stream_bytes ~block_events:32 ~seed:small_seed small_source in
  let bytes, _ =
    with_rules [ rule "stream.index_merge" (Fault.Nth 2) Fault.Fail ] (fun () ->
        stream_bytes ~block_events:32 ~seed:small_seed small_source
          ~on_seal:(fun ~first:_ ~count ~nobjs iter ->
            Write_index.Incremental.add_block inc ~nobjs ~count iter))
  in
  Alcotest.(check bool) "degraded to None" true
    (Write_index.Incremental.snapshot inc = None);
  Alcotest.(check bool) "stream unaffected" true (clean = bytes)

let test_fault_checkpoint_store_skips () =
  let clean_chain, _, _ =
    record_with_checkpoints ~every:100 ~seed:mid_seed mid_source
  in
  let chain, bytes, load =
    with_rules [ rule "checkpoint.store" (Fault.Nth 1) Fault.Fail ] (fun () ->
        record_with_checkpoints ~every:100 ~seed:mid_seed mid_source)
  in
  Alcotest.(check int) "one checkpoint skipped" 1 (Checkpoint.skipped chain);
  Alcotest.(check int) "chain is one shorter"
    (Checkpoint.count clean_chain - 1)
    (Checkpoint.count chain);
  (* The skipped entry's dirty pages accumulated into the next one, so
     restores stay exact. *)
  let batch = batch_trace ~seed:mid_seed mid_source in
  let streamed = Result.get_ok (Stream.read bytes) in
  Alcotest.(check bool) "recording unperturbed" true
    (Trace.encode streamed = Trace.encode batch);
  let event = List.hd (Checkpoint.events chain) + 13 in
  match restart_digest chain ~load ~event with
  | None -> Alcotest.fail "no checkpoint survived"
  | Some d ->
      Alcotest.(check string) "restore exact despite skip"
        (step0_digest ~load ~event) d

let () =
  Alcotest.run "stream"
    [
      ( "identity",
        [
          Alcotest.test_case "five workloads stream = batch" `Quick
            test_workloads_identical;
          Alcotest.test_case "block size irrelevant" `Quick
            test_block_size_irrelevant;
        ] );
      ( "prefix",
        [
          Alcotest.test_case "every truncation is a sealed prefix" `Quick
            test_prefix_consistency;
          Alcotest.test_case "corruption ends the prefix" `Quick
            test_corruption_ends_prefix;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "restart = step-0 (digests)" `Quick
            test_checkpoint_restart_equiv;
          Alcotest.test_case "workload shapes" `Quick
            test_checkpoints_across_workloads;
          Alcotest.test_case "codec round-trip" `Quick test_checkpoint_codec;
          Alcotest.test_case "trace-cache round-trip" `Quick
            test_checkpoint_cache_roundtrip;
        ] );
      ( "faults",
        [
          Alcotest.test_case "stream.seal transient is retried" `Quick
            test_fault_seal_transient;
          Alcotest.test_case "stream.seal persistent propagates" `Quick
            test_fault_seal_persistent;
          Alcotest.test_case "stream.index_merge degrades" `Quick
            test_fault_index_merge_degrades;
          Alcotest.test_case "checkpoint.store skips an entry" `Quick
            test_fault_checkpoint_store_skips;
        ] );
    ]
