(** On-disk content-addressed cache of program event traces.

    Phase 1 of the experiment is deterministic: the trace of a workload is
    a pure function of its source, its PRNG seed, and the machine fuel
    limit. Re-tracing on every experiment run therefore repeats work the
    binary codec already knows how to persist. This cache stores each trace
    once, under a key derived from exactly those inputs, so a warm run
    skips phase-1 machine execution entirely and goes straight to replay.

    {2 Key scheme}

    {!make_key} hashes the tuple (codec version, program name, source
    digest, seed, fuel) into a hex string:

    {[ MD5 ("ebp-trace-cache-v1" ^ name ^ MD5 (source) ^ seed ^ fuel) ]}

    Any input that could change the recorded events changes the key, so a
    stale entry can never be returned for modified source — entries need no
    invalidation, only garbage collection. The codec version is part of the
    hash: a future change to the binary trace format bumps the constant and
    orphans (rather than misparses) old entries.

    {2 Storage}

    One file per entry, [<dir>/<key>.trace]: a magic string, a small
    length-prefixed metadata string supplied by the caller (the experiment
    stores the base execution time there), then the {!Trace.write_binary}
    payload. Writes go to a temporary file in the same directory and are
    renamed into place, so concurrent producers of the same key race
    benignly. A corrupt, truncated, or unreadable entry is reported as a
    miss, never an error. *)

val default_dir : unit -> string
(** [$XDG_CACHE_HOME/ebp] when [XDG_CACHE_HOME] is set and absolute,
    otherwise [$HOME/.cache/ebp]; falls back to [.ebp-cache] in the working
    directory when neither variable is usable. The directory is not
    created until the first {!store}. *)

val make_key : name:string -> source:string -> seed:int -> ?fuel:int -> unit -> string
(** The cache key for a recording of [source] (a MiniC translation unit)
    under [name], [seed], and an optional machine [fuel] limit, per the key
    scheme above. The result is a fixed-width lowercase hex string, safe to
    use as a file name. *)

val store :
  dir:string -> key:string -> ?meta:string -> Trace.t -> (unit, string) result
(** [store ~dir ~key ~meta trace] persists [trace] (and the opaque [meta]
    string, default [""]) under [key], creating [dir] if needed. Returns
    [Error _] with a human-readable reason when the filesystem refuses;
    storing is always safe to skip, so callers typically degrade to a
    warning. *)

val lookup : dir:string -> key:string -> (Trace.t * string) option
(** [lookup ~dir ~key] is [Some (trace, meta)] when a well-formed entry for
    [key] exists, [None] otherwise (including on a corrupt entry or an
    unreadable directory). *)

(** {2 Write-index entries}

    The {!Write_index} of a trace is itself a pure function of the trace
    and the page-size list it was built with, so it is cached the same
    way: one [<dir>/<ikey>.widx] file per (trace key, page sizes) pair,
    where [ikey] rehashes the trace key together with the index codec
    version and the page sizes. A warm experiment run thereby skips both
    phase-1 tracing {e and} the index build. The same atomic
    temp-and-rename and miss-on-corruption rules apply. *)

val index_key : key:string -> page_sizes:int list -> string
(** [index_key ~key ~page_sizes] derives the index entry's key from a
    trace's {!make_key} result. Order of [page_sizes] is significant. *)

val store_index :
  dir:string ->
  key:string ->
  page_sizes:int list ->
  Write_index.t ->
  (unit, string) result
(** Persist an index built from the trace stored under [key] with exactly
    [page_sizes]. Same failure contract as {!store}. *)

val lookup_index :
  dir:string -> key:string -> page_sizes:int list -> Write_index.t option

(** {2 Garbage collection}

    Keys are content hashes over the codec version, so entries never go
    stale — the only maintenance a cache directory needs is reclaiming
    space. [ebp cache ls|clear|gc] drives the functions below.

    Every operation in this module updates the [trace_cache.*] metrics
    when {!Ebp_obs.Metrics} is enabled: hit/miss and byte counters for
    lookups and stores, latency histograms, and
    [trace_cache.gc_removed] / [trace_cache.gc_reclaimed_bytes] plus the
    [trace_cache.disk_bytes] gauge for the GC entry points. *)

type entry_kind =
  | Trace_entry  (** a [<key>.trace] phase-1 recording *)
  | Index_entry  (** a [<ikey>.widx] write index *)
  | Tmp_entry    (** a [.<key>*.tmp] temp file orphaned by an interrupted
                     store *)

type entry = {
  entry_file : string;  (** file name relative to the cache directory *)
  entry_kind : entry_kind;
  entry_bytes : int;
  entry_mtime : float;
}

val entries : dir:string -> entry list
(** Every cache-owned regular file in [dir] (unrecognised names are left
    alone), sorted oldest mtime first, ties broken by name — i.e. in
    eviction order. An unreadable directory is an empty list. *)

val clear : dir:string -> int * int
(** Remove every entry, temp files included. Returns
    [(removed, reclaimed_bytes)]; files that vanish concurrently are
    skipped, not errors. *)

val gc : dir:string -> max_bytes:int -> int * int
(** [gc ~dir ~max_bytes] first deletes all temp files (an interrupted
    store's litter — harmless to a store in flight, which degrades to a
    warning), then evicts live entries oldest-mtime-first until the
    directory's cache-owned footprint is at most [max_bytes]. Returns
    [(removed, reclaimed_bytes)]. *)
