lib/model/breakdown.mli: Format Strategy_model
