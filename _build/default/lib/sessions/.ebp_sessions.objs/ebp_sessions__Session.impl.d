lib/sessions/session.ml: Ebp_trace Format List Stdlib String
