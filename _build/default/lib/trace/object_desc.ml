(* Program-object descriptors: the [ObjectDesc] argument of the paper's
   InstallMonitorEvent/RemoveMonitorEvent (§6). The simulator uses them to
   decide which write monitors belong to the monitor session under study.

   - [Local]: one instantiation of an automatic variable (parameters
     included); [inst] is the activation number of the enclosing function,
     so recursion produces distinct descriptors that the session layer
     groups ("all instantiations of the variable belong to the same monitor
     session").
   - [Local_static]: a function-scoped static. Not automatic (excluded from
     OneLocalAuto) but part of AllLocalInFunc, which "includes local static
     variables" (§5).
   - [Heap]: one heap object. [context] is the dynamic function context at
     allocation time, innermost first — OneHeap keys on the allocating
     function (its head) plus [seq]; AllHeapInFunc matches any function in
     the context ("created by a function f and any other functions executing
     in the dynamic context of f"). A realloc'd object keeps its descriptor
     (footnote 4). *)

type t =
  | Local of { func : string; var : string; inst : int }
  | Local_static of { func : string; var : string }
  | Global of { var : string }
  | Heap of { context : string list; seq : int }

let site = function
  | Heap { context = f :: _; _ } -> Some f
  | Heap { context = []; _ } | Local _ | Local_static _ | Global _ -> None

let equal (a : t) (b : t) = a = b

let pp ppf = function
  | Local { func; var; inst } -> Format.fprintf ppf "local:%s.%s#%d" func var inst
  | Local_static { func; var } -> Format.fprintf ppf "static:%s.%s" func var
  | Global { var } -> Format.fprintf ppf "global:%s" var
  | Heap { context; seq } ->
      Format.fprintf ppf "heap:%s#%d" (String.concat "<" context) seq

let to_string t = Format.asprintf "%a" pp t

(* Inverse of [pp]; used by the text trace codec. *)
let of_string s =
  let split_once sep str =
    match String.index_opt str sep with
    | None -> None
    | Some i ->
        Some (String.sub str 0 i, String.sub str (i + 1) (String.length str - i - 1))
  in
  match split_once ':' s with
  | Some ("local", rest) -> (
      match split_once '.' rest with
      | Some (func, rest) -> (
          match split_once '#' rest with
          | Some (var, inst) ->
              Option.map
                (fun inst -> Local { func; var; inst })
                (int_of_string_opt inst)
          | None -> None)
      | None -> None)
  | Some ("static", rest) -> (
      match split_once '.' rest with
      | Some (func, var) -> Some (Local_static { func; var })
      | None -> None)
  | Some ("global", var) -> Some (Global { var })
  | Some ("heap", rest) -> (
      match split_once '#' rest with
      | Some (context, seq) ->
          Option.map
            (fun seq -> Heap { context = String.split_on_char '<' context; seq })
            (int_of_string_opt seq)
      | None -> None)
  | Some _ | None -> None
