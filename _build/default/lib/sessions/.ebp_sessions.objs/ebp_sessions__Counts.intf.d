lib/sessions/counts.mli: Format
