lib/wms/write_barrier.mli: Ebp_machine Ebp_util Timing
