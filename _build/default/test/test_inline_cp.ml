(* Tests for Ebp_wms.Inline_code_patch: the CodePatch variant whose check
   is real machine code walking a monitor map kept in debuggee memory. *)

module Interval = Ebp_util.Interval
module Prng = Ebp_util.Prng
module Instr = Ebp_isa.Instr
module Program = Ebp_isa.Program
module Machine = Ebp_machine.Machine
module Memory = Ebp_machine.Memory
module Icp = Ebp_wms.Inline_code_patch
module Reference_map = Ebp_wms.Reference_map
module Wms = Ebp_wms.Wms
module Debugger = Ebp_core.Debugger
module Loader = Ebp_runtime.Loader

let iv lo hi = Interval.make ~lo ~hi

let assemble src =
  match Ebp_isa.Asm.parse_resolved src with
  | Ok p -> p
  | Error e -> Alcotest.failf "assembly error: %s" e

(* --- instrumentation structure --- *)

let test_instrument_shape () =
  let p = assemble "  li t1, 8192\n  sw t0, 0(t1)\n  sb t0, 64(t1)\n  halt\n" in
  let patched = Icp.instrument p in
  Alcotest.(check int) "two stores" 2 (Icp.patched_stores patched);
  let p' = Icp.program patched in
  Alcotest.(check int) "13 instructions per stub" (Program.length p + 26)
    (Program.length p');
  (* The patched site jumps into the stub; the stub ends with the store
     and a jump back. *)
  match Program.get p' 1 with
  | Instr.Jmp (Instr.Abs s) -> (
      (match Program.get p' s with
      | Instr.Sw _ -> ()  (* the store runs first: notify-after-write *)
      | i -> Alcotest.failf "stub head: %s" (Instr.to_string i));
      (match Program.get p' (s + 1) with
      | Instr.Alui (Instr.Add, _, _, 0) -> ()
      | i -> Alcotest.failf "stub check head: %s" (Instr.to_string i));
      match Program.get p' (s + 12) with
      | Instr.Jmp (Instr.Abs 2) -> ()
      | i -> Alcotest.failf "stub return: %s" (Instr.to_string i))
  | i -> Alcotest.failf "site not patched: %s" (Instr.to_string i)

let test_original_site () =
  let p = assemble "  li t1, 8192\n  sw t0, 0(t1)\n  sw t0, 4(t1)\n  halt\n" in
  let patched = Icp.instrument p in
  let plen = Program.length p in
  Alcotest.(check (option int)) "first stub maps to store 1" (Some 1)
    (Icp.original_site patched plen);
  Alcotest.(check (option int)) "second stub maps to store 2" (Some 2)
    (Icp.original_site patched (plen + 13 + 5));
  Alcotest.(check (option int)) "original code has no site" None
    (Icp.original_site patched 0)

(* --- live behaviour on assembly --- *)

let scenario_src =
  {|
  li t1, 8192
  li t2, 16384
  li t3, 0
  li t4, 5
loop:
  slli t6, t3, 2
  add t5, t1, t6
  sw t3, 0(t5)
  add t5, t2, t6
  sw t3, 0(t5)
  addi t3, t3, 1
  blt t3, t4, loop
  halt
|}

let run_scenario ~monitor =
  let p = assemble scenario_src in
  let patched = Icp.instrument p in
  let m = Machine.create (Icp.program patched) in
  let hits = ref [] in
  let t =
    Icp.attach patched m ~notify:(fun n ->
        hits := (Interval.lo n.Wms.write, n.Wms.pc) :: !hits)
  in
  let s = Icp.strategy t in
  (match s.Wms.install monitor with Ok () -> () | Error e -> Alcotest.fail e);
  (match Machine.run m with
  | Machine.Halted _ -> ()
  | _ -> Alcotest.fail "run failed");
  (m, t, List.rev !hits)

let test_live_hits () =
  let _, t, hits = run_scenario ~monitor:(iv 8192 8211) in
  Alcotest.(check (list int)) "hit addresses" [ 8192; 8196; 8200; 8204; 8208 ]
    (List.map fst hits);
  Alcotest.(check int) "stats" 5 (Icp.stats t).Wms.hits;
  (* Notification pc is the original store index. *)
  List.iter (fun (_, pc) -> Alcotest.(check int) "pc is store site" 6 pc) hits

let test_live_memory_effects () =
  let m, _, _ = run_scenario ~monitor:(iv 8192 8211) in
  for i = 0 to 4 do
    Alcotest.(check int) "monitored array" i
      (Memory.load_word (Machine.memory m) (8192 + (4 * i)));
    Alcotest.(check int) "unmonitored array" i
      (Memory.load_word (Machine.memory m) (16384 + (4 * i)))
  done

let test_remove_stops_hits () =
  let p = assemble scenario_src in
  let patched = Icp.instrument p in
  let m = Machine.create (Icp.program patched) in
  let count = ref 0 in
  let t = Icp.attach patched m ~notify:(fun _ -> incr count) in
  let s = Icp.strategy t in
  ignore (s.Wms.install (iv 8192 8211));
  ignore (s.Wms.remove (iv 8192 8211));
  Alcotest.(check int) "no words left" 0 (Icp.monitored_words t);
  (match Machine.run m with Machine.Halted _ -> () | _ -> Alcotest.fail "run");
  Alcotest.(check int) "no hits after remove" 0 !count

(* --- the in-memory data structure --- *)

let test_structure_layout () =
  let p = assemble "  halt\n" in
  let patched = Icp.instrument p in
  let m = Machine.create (Icp.program patched) in
  let t = Icp.attach patched m ~notify:(fun _ -> ()) in
  let s = Icp.strategy t in
  ignore (s.Wms.install (iv 8192 8195));
  let mem = Machine.memory m in
  (* Chunk 0's L1 entry points at the first arena map. *)
  Alcotest.(check int) "L1[0]" Icp.arena_base (Memory.load_word mem Icp.l1_base);
  Alcotest.(check int) "map byte for word 2048" 1
    (Memory.load_byte mem (Icp.arena_base + (8192 / 4)));
  Alcotest.(check int) "neighbour byte clear" 0
    (Memory.load_byte mem (Icp.arena_base + (8196 / 4)));
  Alcotest.(check int) "one chunk mapped" 1 (Icp.mapped_chunks t);
  (* Another monitor in chunk 0 reuses its map. *)
  ignore (s.Wms.install (iv 0x0010_0000 0x0010_0003));
  Alcotest.(check int) "same chunk reused" 1 (Icp.mapped_chunks t);
  ignore (s.Wms.install (iv 0x0440_0000 0x0440_0003));
  Alcotest.(check int) "distinct chunk" 2 (Icp.mapped_chunks t)

let prop_structure_matches_reference =
  (* Random installs/removes: every word byte in memory must agree with
     the hash-set reference. *)
  QCheck2.Test.make ~name:"in-memory map matches reference" ~count:100
    QCheck2.Gen.(
      list_size (int_range 1 60)
        (triple (int_range 0 1) (int_range 0 4000) (int_range 0 10)))
    (fun ops ->
      let p = assemble "  halt\n" in
      let patched = Icp.instrument p in
      let m = Machine.create (Icp.program patched) in
      let t = Icp.attach patched m ~notify:(fun _ -> ()) in
      let s = Icp.strategy t in
      let reference = Reference_map.create () in
      List.iter
        (fun (kind, word, len) ->
          let range = iv (word * 4) ((word * 4) + (len * 4) + 3) in
          if kind = 0 then begin
            ignore (s.Wms.install range);
            Reference_map.install reference range
          end
          else begin
            ignore (s.Wms.remove range);
            Reference_map.remove reference range
          end)
        ops;
      let mem = Machine.memory m in
      Icp.monitored_words t = Reference_map.monitored_words reference
      && List.for_all
           (fun w ->
             let expected =
               if Reference_map.overlaps reference (iv (w * 4) ((w * 4) + 3)) then 1
               else 0
             in
             let l1 = Memory.load_word mem (Icp.l1_base + (w lsr 20 * 4)) in
             let actual = if l1 = 0 then 0 else Memory.load_byte mem (l1 + (w land 0xFFFFF)) in
             actual = expected)
           (List.init 4060 Fun.id))

(* --- equivalence with modeled CodePatch through the Debugger --- *)

let check_equivalent name src watch =
  let run kind =
    let d =
      match Debugger.load_source ~strategy:kind src with
      | Ok d -> d
      | Error e -> Alcotest.failf "compile: %s" e
    in
    watch d;
    let r = Debugger.run d in
    (match r.Loader.status with
    | Machine.Halted 0 -> ()
    | _ -> Alcotest.fail "program failed");
    ( List.map
        (fun (h : Debugger.hit) -> (h.Debugger.pc, Interval.lo h.Debugger.write))
        (Debugger.hits d),
      Debugger.cycles d )
  in
  let cp_hits, cp_cycles = run Debugger.Code_patch in
  let icp_hits, icp_cycles = run Debugger.Code_patch_inline in
  Alcotest.(check (list (pair int int))) (name ^ ": identical hits") cp_hits icp_hits;
  (cp_cycles, icp_cycles)

let test_equiv_minic () =
  let src =
    {|
int g;
int table[8];
int touch(int* p, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    p[i] = p[i] + i;
  }
  return p[0];
}
int main() {
  int* p;
  p = malloc(32);
  touch(p, 8);
  touch(table, 8);
  g = touch(p, 4);
  p = realloc(p, 64);
  p[9] = 9;
  free(p);
  print_int(g);
  return 0;
}
|}
  in
  let cp, icp =
    check_equivalent "minic program" src (fun d ->
        Result.get_ok (Debugger.watch_global d "g");
        Result.get_ok (Debugger.watch_global d "table");
        Debugger.watch_alloc d ~site:"main" ~nth:1)
  in
  (* The inline check's machine cost is far below the modeled 2.75us
     charge, so the real-code variant must be cheaper overall here. *)
  Alcotest.(check bool)
    (Printf.sprintf "inline cheaper (cp=%d icp=%d)" cp icp)
    true (icp < cp)

let test_equiv_local_watch () =
  let src =
    {|
int work(int n) {
  int acc;
  int i;
  acc = 0;
  for (i = 0; i < n; i = i + 1) { acc = acc + i; }
  return acc;
}
int main() { print_int(work(10) + work(20)); return 0; }
|}
  in
  let _ =
    check_equivalent "local watch" src (fun d ->
        Result.get_ok (Debugger.watch_local d ~func:"work" ~var:"acc"))
  in
  ()

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "inline_cp"
    [
      ( "instrumentation",
        [
          Alcotest.test_case "shape" `Quick test_instrument_shape;
          Alcotest.test_case "original_site" `Quick test_original_site;
        ] );
      ( "live",
        [
          Alcotest.test_case "hits" `Quick test_live_hits;
          Alcotest.test_case "memory effects" `Quick test_live_memory_effects;
          Alcotest.test_case "remove stops hits" `Quick test_remove_stops_hits;
        ] );
      ( "data structure",
        [
          Alcotest.test_case "layout" `Quick test_structure_layout;
          q prop_structure_matches_reference;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "minic program" `Quick test_equiv_minic;
          Alcotest.test_case "local watch" `Quick test_equiv_local_watch;
        ] );
    ]
