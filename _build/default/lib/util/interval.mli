(** Closed integer intervals [[lo, hi]] used to describe address ranges.

    An interval is well-formed when [lo <= hi]. All write monitors, write
    events, and memory regions in this library are described by closed
    byte-address intervals, matching the paper's (BA, EA) convention. *)

type t = private { lo : int; hi : int }

val make : lo:int -> hi:int -> t
(** [make ~lo ~hi] builds the interval [[lo, hi]].
    @raise Invalid_argument if [lo > hi]. *)

val of_base_size : base:int -> size:int -> t
(** [of_base_size ~base ~size] is [[base, base + size - 1]].
    @raise Invalid_argument if [size <= 0]. *)

val lo : t -> int
val hi : t -> int

val size : t -> int
(** Number of addresses covered; at least 1. *)

val contains : t -> int -> bool

val overlaps : t -> t -> bool
(** [overlaps a b] is true when [a] and [b] share at least one address. *)

val intersect : t -> t -> t option
(** Largest interval contained in both arguments, if any. *)

val subsumes : t -> t -> bool
(** [subsumes a b] is true when every address of [b] lies in [a]. *)

val compare : t -> t -> int
(** Order by [lo], then by [hi]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Renders as ["[0x1000,0x1fff]"]. *)

val to_string : t -> string
