lib/util/stats.ml: Array Float Format List
