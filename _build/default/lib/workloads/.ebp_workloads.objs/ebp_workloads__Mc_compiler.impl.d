lib/workloads/mc_compiler.ml:
