let strip_comment line =
  match String.index_opt line ';' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokenize line =
  (* Split on whitespace and commas; "(", ")" become separate tokens so that
     memory operands like "-4(fp)" parse uniformly. *)
  let buf = Buffer.create 8 in
  let tokens = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | ',' -> flush ()
      | '(' | ')' ->
          flush ();
          tokens := String.make 1 c :: !tokens
      | c -> Buffer.add_char buf c)
    line;
  flush ();
  List.rev !tokens

type operand = O_reg of Reg.t | O_imm of int | O_mem of int * Reg.t | O_sym of string

let parse_operands tokens =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | tok :: "(" :: reg :: ")" :: rest -> (
        match (int_of_string_opt tok, Reg.of_name reg) with
        | Some off, Some r -> go (O_mem (off, r) :: acc) rest
        | None, _ -> Error (Printf.sprintf "bad memory offset %S" tok)
        | _, None -> Error (Printf.sprintf "bad register %S" reg))
    | tok :: rest -> (
        match Reg.of_name tok with
        | Some r -> go (O_reg r :: acc) rest
        | None -> (
            match int_of_string_opt tok with
            | Some i -> go (O_imm i :: acc) rest
            | None -> go (O_sym tok :: acc) rest))
  in
  go [] tokens

let target_of = function
  | O_sym s when String.length s > 1 && s.[0] = '@' -> (
      match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
      | Some i -> Ok (Instr.Abs i)
      | None -> Error (Printf.sprintf "bad absolute target %S" s))
  | O_sym s -> Ok (Instr.Label s)
  | O_imm i -> Ok (Instr.Abs i)
  | O_reg _ | O_mem _ -> Error "expected a label or target"

let alu_ops =
  [
    ("add", Instr.Add); ("sub", Instr.Sub); ("mul", Instr.Mul); ("div", Instr.Div);
    ("rem", Instr.Rem); ("and", Instr.And); ("or", Instr.Or); ("xor", Instr.Xor);
    ("sll", Instr.Sll); ("srl", Instr.Srl); ("sra", Instr.Sra); ("slt", Instr.Slt);
    ("sle", Instr.Sle); ("seq", Instr.Seq); ("sne", Instr.Sne);
  ]

let conds =
  [
    ("beq", Instr.Eq); ("bne", Instr.Ne); ("blt", Instr.Lt); ("bge", Instr.Ge);
    ("bgt", Instr.Gt); ("ble", Instr.Le);
  ]

let parse_instr mnemonic operands =
  let open Instr in
  let err what = Error (Printf.sprintf "%s: %s" mnemonic what) in
  match (mnemonic, operands) with
  | "nop", [] -> Ok Nop
  | "halt", [] -> Ok Halt
  | "li", [ O_reg rd; O_imm i ] -> Ok (Li (rd, i))
  | "mv", [ O_reg rd; O_reg rs ] -> Ok (Mv (rd, rs))
  | "lw", [ O_reg rd; O_mem (off, rs) ] -> Ok (Lw (rd, rs, off))
  | "lb", [ O_reg rd; O_mem (off, rs) ] -> Ok (Lb (rd, rs, off))
  | "sw", [ O_reg rd; O_mem (off, rs) ] -> Ok (Sw (rd, rs, off))
  | "sb", [ O_reg rd; O_mem (off, rs) ] -> Ok (Sb (rd, rs, off))
  | "jmp", [ t ] -> Result.map (fun t -> Jmp t) (target_of t)
  | "jal", [ t ] -> Result.map (fun t -> Jal t) (target_of t)
  | "jalr", [ O_reg rs ] -> Ok (Jalr rs)
  | "ret", [] -> Ok Ret
  | "syscall", [ O_imm n ] -> Ok (Syscall n)
  | "trap", [ O_imm n ] -> Ok (Trap n)
  | "chk", [ O_mem (off, base); O_imm width ] -> Ok (Chk { base; off; width })
  | "enter", [ O_imm f ] -> Ok (Enter f)
  | "leave", [ O_imm f ] -> Ok (Leave f)
  | _, _ -> (
      match List.assoc_opt mnemonic conds with
      | Some c -> (
          match operands with
          | [ O_reg r1; O_reg r2; t ] ->
              Result.map (fun t -> Br (c, r1, r2, t)) (target_of t)
          | _ -> err "expects two registers and a target")
      | None -> (
          match List.assoc_opt mnemonic alu_ops with
          | Some op -> (
              match operands with
              | [ O_reg rd; O_reg r1; O_reg r2 ] -> Ok (Alu (op, rd, r1, r2))
              | _ -> err "expects three registers")
          | None ->
              (* Immediate ALU forms: "addi", "slti", ... *)
              let n = String.length mnemonic in
              if n > 1 && mnemonic.[n - 1] = 'i' then
                match List.assoc_opt (String.sub mnemonic 0 (n - 1)) alu_ops with
                | Some op -> (
                    match operands with
                    | [ O_reg rd; O_reg r1; O_imm imm ] ->
                        Ok (Alui (op, rd, r1, imm))
                    | _ -> err "expects two registers and an immediate")
                | None -> err "unknown mnemonic"
              else err "unknown mnemonic"))

let parse source =
  let lines = String.split_on_char '\n' source in
  let items = ref [] and labels = ref [] and count = ref 0 in
  let error = ref None in
  List.iteri
    (fun lineno line ->
      if !error = None then
        let line = String.trim (strip_comment line) in
        if line <> "" then
          if String.length line > 1 && line.[String.length line - 1] = ':' then
            labels := (String.sub line 0 (String.length line - 1), !count) :: !labels
          else begin
            let implicit = line.[0] = '!' in
            let line = if implicit then String.sub line 1 (String.length line - 1) else line in
            match tokenize line with
            | [] -> ()
            | mnemonic :: rest -> (
                match
                  Result.bind (parse_operands rest) (parse_instr mnemonic)
                with
                | Ok instr ->
                    items := { Program.instr; implicit } :: !items;
                    incr count
                | Error msg ->
                    error := Some (Printf.sprintf "line %d: %s" (lineno + 1) msg))
          end)
    lines;
  match !error with
  | Some msg -> Error msg
  | None -> Ok (Program.of_items ~labels:(List.rev !labels) (List.rev !items))

let parse_resolved source = Result.bind (parse source) Program.resolve

let print program =
  let buf = Buffer.create 1024 in
  let by_index = Hashtbl.create 16 in
  List.iter (fun (name, idx) -> Hashtbl.add by_index idx name) (Program.labels program);
  let n = Program.length program in
  for i = 0 to n - 1 do
    List.iter
      (fun name -> Buffer.add_string buf (name ^ ":\n"))
      (Hashtbl.find_all by_index i);
    let prefix = if Program.implicit program i then "  !" else "  " in
    Buffer.add_string buf (prefix ^ Instr.to_string (Program.get program i) ^ "\n")
  done;
  List.iter
    (fun (name, idx) -> if idx = n then Buffer.add_string buf (name ^ ":\n"))
    (Program.labels program);
  Buffer.contents buf
