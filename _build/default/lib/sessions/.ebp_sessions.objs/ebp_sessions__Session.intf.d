lib/sessions/session.mli: Ebp_trace Format
