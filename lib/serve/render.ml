let sessions_report results =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  List.iter
    (fun (s, c) ->
      Format.fprintf ppf "%-50s %a@."
        (Ebp_sessions.Session.to_string s)
        Ebp_sessions.Counts.pp c)
    results;
  Format.pp_print_flush ppf ();
  Buffer.add_string buf (Printf.sprintf "%d sessions\n" (List.length results));
  Buffer.contents buf

let model_report ?(timing = Ebp_wms.Timing.sparcstation2) results ~approaches =
  let module Model = Ebp_model.Strategy_model in
  let header = "Session" :: List.map Model.name approaches in
  let rows =
    List.map
      (fun (s, c) ->
        Ebp_sessions.Session.to_string s
        :: List.map
             (fun a ->
               Printf.sprintf "%.0f" (Model.overhead timing a c).Model.total_us)
             approaches)
      results
  in
  "Modeled overhead per session (microseconds)\n"
  ^ Ebp_util.Text_table.render ~header ~rows ()

let experiment_artifacts =
  [
    "full"; "table1"; "table2"; "table3"; "table4"; "fig7"; "fig8"; "fig9";
    "breakdown"; "expansion";
  ]

let experiment_report t ~artifact =
  let module E = Ebp_core.Experiment in
  match artifact with
  | "full" -> Ok (E.full_report t)
  | "table1" -> Ok (E.table1 t)
  | "table2" -> Ok (E.table2 t)
  | "table3" -> Ok (E.table3 t)
  | "table4" -> Ok (E.table4 t)
  | "fig7" -> Ok (E.figure t ~stat:E.Max)
  | "fig8" -> Ok (E.figure t ~stat:E.P90)
  | "fig9" -> Ok (E.figure t ~stat:E.T_mean)
  | "breakdown" -> Ok (E.breakdown_report t)
  | "expansion" -> Ok (E.code_expansion_report t)
  | other -> Error (Printf.sprintf "unknown artifact %S" other)
