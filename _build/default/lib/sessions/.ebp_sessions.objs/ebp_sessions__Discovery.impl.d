lib/sessions/discovery.ml: Array Ebp_trace Hashtbl Int List Session String
