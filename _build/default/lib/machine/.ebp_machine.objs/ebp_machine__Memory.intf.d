lib/machine/memory.mli: Ebp_util
