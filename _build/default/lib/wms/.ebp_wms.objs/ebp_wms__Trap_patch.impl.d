lib/wms/trap_patch.ml: Ebp_isa Ebp_machine Ebp_util Hashtbl List Monitor_map Timing Wms
