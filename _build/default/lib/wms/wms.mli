(** Common write-monitor-service types (paper §2).

    A strategy, once attached to a machine, exposes the WMS interface —
    InstallMonitor / RemoveMonitor — with MonitorNotification delivered to
    the callback supplied at attach time. *)

type notification = {
  write : Ebp_util.Interval.t;  (** the byte range the hit store wrote *)
  pc : int;  (** program counter of the monitor hit *)
}

(** First-class strategy handle, so clients (the {!Ebp_core.Debugger},
    examples, tests) can treat the strategies uniformly. *)
type strategy = {
  name : string;
  install : Ebp_util.Interval.t -> (unit, string) result;
  remove : Ebp_util.Interval.t -> (unit, string) result;
  active_monitors : unit -> int;
}

(** Operation counters every strategy maintains. *)
type stats = {
  mutable hits : int;  (** monitor notifications delivered *)
  mutable lookups : int;  (** software lookups performed *)
  mutable installs : int;
  mutable removes : int;
}

val fresh_stats : unit -> stats
