(** The full simulation experiment (paper Figure 1).

    {!run} executes both phases for every benchmark program: phase 1 traces
    each program once; phase 2 discovers all monitor sessions, replays the
    trace against them, and discards sessions with no hits. The report
    functions then regenerate each artifact of the paper's §8:

    - {!table1} — session counts by type and base execution time;
    - {!table2} — the timing variables in use;
    - {!table3} — mean counting variables per program;
    - {!table4} — relative-overhead statistics per program × approach;
    - {!figure} — Figures 7 (Max), 8 (90th percentile), 9 (trimmed mean)
      as ASCII bar charts;
    - {!breakdown_report} — mean share of each timing variable (§8);
    - {!code_expansion_report} — CodePatch static code growth (§8). *)

type program_data = {
  run : Ebp_workloads.Workload.run;
  sessions : (Ebp_sessions.Session.t * Ebp_sessions.Counts.t) list;
      (** discovered sessions with at least one monitor hit *)
}

type t = {
  programs : program_data list;
  timing : Ebp_wms.Timing.t;
  page_sizes : int list;
  approaches : Ebp_model.Strategy_model.approach list;
}

val run :
  ?workloads:Ebp_workloads.Workload.t list ->
  ?timing:Ebp_wms.Timing.t ->
  ?page_sizes:int list ->
  ?approaches:Ebp_model.Strategy_model.approach list ->
  ?fuel:int ->
  ?domains:int ->
  ?cache_dir:string ->
  ?engine:Ebp_sessions.Replay.engine ->
  ?log:(string -> unit) ->
  unit ->
  (t, string) result
(** Defaults: all five workloads, SPARCstation 2 timing, 4K and 8K pages.

    [~approaches] selects the model columns of tables 2/4, the figures, and
    the breakdown report (default: NH, VM and VB at each page size, TP,
    CP). Any VM/VB granularity an approach references is added to the
    replayed page sizes automatically. With a VB-free list the reports are
    byte-identical to the historical four-strategy output (the VB timing
    rows of table 2 and the VB extreme-point scan only appear when a VB
    approach is present).

    [~domains:n] (default 1) runs the experiment on a pool of [n] domains:
    phase 1 traces workloads concurrently, and each workload's phase-2
    replay is sharded across the pool
    ({!Ebp_sessions.Replay.replay_all}). Every report is bit-identical to
    the sequential engine's, whatever [n].

    [~cache_dir] enables the on-disk phase-1 trace cache
    ({!Ebp_trace.Trace_cache}): workloads whose trace is already cached
    perform no machine execution at all. Under the indexed engine the
    cache also persists each workload's {!Ebp_trace.Write_index}, so a
    warm run skips the index build too.

    [~engine] pins the phase-2 replay engine (see
    {!Ebp_sessions.Replay}). When omitted, the cost-based
    {!Ebp_sessions.Planner} chooses per workload from trace length,
    session count, domain count, and cached-index availability — logging
    its decision through the [planner.decision.*] counters. Engines and
    planner produce bit-identical reports, so the choice is invisible in
    the output.

    [~log] receives one deterministic, human-readable progress line per
    workload per phase (phase-1 lines state whether the trace was recorded
    or cache-loaded); default ignores them. *)

val relative_overheads :
  t -> program_data -> Ebp_model.Strategy_model.approach -> float array
(** Relative overhead of every session of a program under an approach, in
    session order. *)

type figure_stat = Max | P90 | T_mean

val table1 : t -> string
val table2 : t -> string
val table3 : t -> string
val table4 : t -> string
val figure : t -> stat:figure_stat -> string
val breakdown_report : t -> string
val code_expansion_report : t -> string

val extremes_report : ?top:int -> t -> string
(** §8's qualitative analysis of the extreme points: the most expensive
    sessions per program under NativeHardware and VirtualMemory (and, when
    a VB approach is in play, VirtualBreakpoint at its first granularity).
    The paper reports that NH's worst sessions monitor induction variables
    and heap-allocating functions, while VM's monitor local variables of
    functions toward the root of the call graph. *)

val full_report : t -> string
(** All of the above, in paper order. *)
