module Compiler = Ebp_lang.Compiler
module Loader = Ebp_runtime.Loader
module Machine = Ebp_machine.Machine
module Stream = Ebp_trace.Stream
module Recorder = Ebp_trace.Recorder
module Write_index = Ebp_trace.Write_index
module Metrics = Ebp_obs.Metrics

let m_jobs = Metrics.counter "serve.live.jobs"
let m_advances = Metrics.counter "serve.live.advances"
let m_completed = Metrics.counter "serve.live.completed"

(* One in-progress recording: a loader mid-run, streaming sealed blocks
   into an in-memory buffer, with the write index maintained
   incrementally block-by-block. The job is advanced cooperatively —
   each live query runs it a few fuel slices further — so the daemon
   never blocks longer than one slice per wait iteration. *)
type job = {
  writer : Stream.Writer.t;
  buf : Buffer.t;
  loader : Loader.t;
  recorder : Recorder.t;
  inc : Write_index.Incremental.builder;
  mutable fuel_left : int;
  mutable finished : bool;
}

type t = {
  jobs : (string, job) Hashtbl.t;
  block_events : int;
  page_sizes : int list;
}

let create ?(block_events = Stream.default_block_events)
    ?(page_sizes = Ebp_sessions.Replay.default_page_sizes) () =
  { jobs = Hashtbl.create 4; block_events; page_sizes }

(* Machine.run's default fuel: a live recording consumes exactly the
   budget a batch [Recorder.record] would, so the completed stream is
   byte-identical to the batch trace even for programs that hit it. *)
let total_fuel = 200_000_000
let slice = 262_144

let job_key ~name ~source ~seed =
  Printf.sprintf "%s\x00%s\x00%d" name (Digest.to_hex (Digest.string source)) seed

let start t ~source ~seed =
  match Compiler.compile source with
  | Error _ as e -> e
  | Ok compiled ->
      let buf = Buffer.create (1 lsl 16) in
      let writer =
        Stream.Writer.create ~block_events:t.block_events
          ~write:(Buffer.add_string buf) ()
      in
      let inc = Write_index.Incremental.create ~page_sizes:t.page_sizes in
      Stream.Writer.set_on_seal writer (fun ~first:_ ~count ~nobjs iter ->
          Write_index.Incremental.add_block inc ~nobjs ~count iter);
      let loader = Loader.load ~seed compiled in
      let recorder = Recorder.attach_stream writer loader in
      Metrics.incr m_jobs;
      Ok
        {
          writer;
          buf;
          loader;
          recorder;
          inc;
          fuel_left = total_fuel;
          finished = false;
        }

(* Advance until the sealed prefix strictly exceeds [min_events] or the
   run stops (halt, error, or total fuel) — strict, so polling with the
   previous high-water always observes progress. *)
let advance job ~min_events =
  while
    (not job.finished)
    && Stream.Writer.sealed_events job.writer <= min_events
  do
    let fuel = min slice job.fuel_left in
    let res = Loader.run ~fuel job.loader in
    job.fuel_left <- job.fuel_left - fuel;
    Metrics.incr m_advances;
    match res.Loader.status with
    | Machine.Out_of_fuel when job.fuel_left > 0 -> ()
    | _ ->
        Recorder.finish_events job.recorder;
        Stream.Writer.finish job.writer;
        job.finished <- true;
        Metrics.incr m_completed
  done

type prefix = {
  p_trace : Ebp_trace.Trace.t;
  p_index : Write_index.t option;  (** [None] when fault-degraded *)
  p_high_water : int;
  p_complete : bool;
}

let fetch t ~name ~source ~seed ~min_events =
  let key = job_key ~name ~source ~seed in
  let job =
    match Hashtbl.find_opt t.jobs key with
    | Some job -> Ok job
    | None ->
        Result.map
          (fun job ->
            Hashtbl.replace t.jobs key job;
            job)
          (start t ~source ~seed)
  in
  match job with
  | Error _ as e -> e
  | Ok job -> (
      advance job ~min_events;
      match Stream.read_prefix (Buffer.contents job.buf) with
      | Error _ as e -> e
      | Ok { Stream.trace; high_water; complete } ->
          Ok
            {
              p_trace = trace;
              p_index = Write_index.Incremental.snapshot job.inc;
              p_high_water = high_water;
              p_complete = complete;
            })

let jobs t = Hashtbl.length t.jobs
