test/test_model.ml: Alcotest Ebp_model Ebp_sessions Ebp_wms List
