module Interval = Ebp_util.Interval
module Machine = Ebp_machine.Machine
module Memory = Ebp_machine.Memory

type t = {
  machine : Machine.t;
  timing : Timing.t;
  map : Monitor_map.t;
  page_monitors : (int, int) Hashtbl.t;  (* page -> active monitor count *)
  stats : Wms.stats;
  mutable page_misses : int;
  notify : Wms.notification -> unit;
}

let on_write_fault t machine ~addr ~width ~value ~pc =
  let mem = Machine.memory machine in
  Machine.charge machine
    (Timing.cycles
       (t.timing.Timing.vm_fault_handler_us +. t.timing.Timing.software_lookup_us));
  t.stats.Wms.lookups <- t.stats.Wms.lookups + 1;
  (* Emulate the faulting instruction first (unprotect/step/reprotect
     collapses to a privileged store in the simulator): the notification
     must arrive after the write has succeeded — write monitors, not write
     barriers (§2). *)
  if width = 4 then Memory.privileged_store_word mem addr value
  else Memory.privileged_store_byte mem addr value;
  let range = Interval.of_base_size ~base:addr ~size:width in
  if Monitor_map.overlaps t.map range then begin
    t.stats.Wms.hits <- t.stats.Wms.hits + 1;
    t.notify { Wms.write = range; pc }
  end
  else t.page_misses <- t.page_misses + 1

let attach ?(timing = Timing.sparcstation2) machine ~notify =
  let mem = Machine.memory machine in
  let t =
    {
      machine;
      timing;
      map = Monitor_map.create ~page_size:(Memory.page_size mem) ();
      page_monitors = Hashtbl.create 32;
      stats = Wms.fresh_stats ();
      page_misses = 0;
      notify;
    }
  in
  Machine.set_write_fault_handler machine (Some (on_write_fault t));
  t

(* Cost of updating the WMS mapping, which lives on a protected page of the
   debuggee's address space: unprotect it, update, reprotect (§7.1.2). *)
let update_cost timing =
  Timing.cycles
    (timing.Timing.vm_unprotect_us +. timing.Timing.software_update_us
   +. timing.Timing.vm_protect_us)

let install t range =
  let mem = Machine.memory t.machine in
  Machine.charge t.machine (update_cost t.timing);
  Monitor_map.install t.map range;
  List.iter
    (fun page ->
      let count = Option.value ~default:0 (Hashtbl.find_opt t.page_monitors page) in
      Hashtbl.replace t.page_monitors page (count + 1);
      if count = 0 then begin
        Memory.protect mem ~page Memory.Read_only;
        Machine.charge t.machine (Timing.cycles t.timing.Timing.vm_protect_us)
      end)
    (Memory.pages_of_range mem range);
  t.stats.Wms.installs <- t.stats.Wms.installs + 1;
  Ok ()

let remove t range =
  let mem = Machine.memory t.machine in
  Machine.charge t.machine (update_cost t.timing);
  Monitor_map.remove t.map range;
  List.iter
    (fun page ->
      match Hashtbl.find_opt t.page_monitors page with
      | None -> ()
      | Some count ->
          if count <= 1 then begin
            Hashtbl.remove t.page_monitors page;
            Memory.protect mem ~page Memory.Read_write;
            Machine.charge t.machine (Timing.cycles t.timing.Timing.vm_unprotect_us)
          end
          else Hashtbl.replace t.page_monitors page (count - 1))
    (Memory.pages_of_range mem range);
  t.stats.Wms.removes <- t.stats.Wms.removes + 1;
  Ok ()

let strategy t =
  {
    Wms.name = "VirtualMemory";
    install = install t;
    remove = remove t;
    active_monitors = (fun () -> Monitor_map.active_pages t.map);
    extras = (fun () -> [ ("page_miss_faults", t.page_misses) ]);
  }

let stats t = t.stats
let page_miss_faults t = t.page_misses
