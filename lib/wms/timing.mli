(** Timing variables (paper Table 2).

    The measured cost, in microseconds, of each primitive operation a
    write-monitor-service implementation performs. {!sparcstation2} holds
    the paper's values, measured on a 40 MHz SPARCstation 2 under
    SunOS 4.1.1 with the Appendix A protocols. The analytical models are
    parametric in these values, and the live strategies charge them to the
    machine's cycle counter (at the simulated 40 MHz clock) so that live
    runs and model predictions agree. *)

type t = {
  software_update_us : float;
      (** update the address→monitor mapping on install/remove *)
  software_lookup_us : float;
      (** decide whether an address range intersects an active monitor *)
  nh_fault_handler_us : float;
      (** receive a user-level monitor-register fault and continue *)
  vm_fault_handler_us : float;
      (** receive a write fault, emulate the instruction, continue *)
  vm_protect_us : float;  (** protect one page *)
  vm_unprotect_us : float;  (** unprotect one page *)
  tp_fault_handler_us : float;
      (** receive a trap fault, emulate the instruction, continue *)
  context_switch_us : float;
      (** one process context switch — the cost of routing a fault through a
          debugger in a separate address space, ptrace-style (§3.4). Not a
          Table 2 value; estimated at 200 µs for a SunOS 4.1.1 workstation. *)
  vb_exit_us : float;
      (** one hypervisor exit — the VB strategy's trap cost when a guest
          store hits a write-protected data-view mapping (Price,
          "Virtual Breakpoints for x86/64"). Not a Table 2 value; an
          estimate, like {!context_switch_us}. *)
  vb_view_switch_us : float;
      (** switch the active second-level mapping between the code view and
          the data view to single-step the faulting store. Estimate. *)
  vb_view_update_us : float;
      (** change one page's protection in the hypervisor-maintained data
          view (guest-invisible; no guest TLB shootdown). Estimate. *)
}

val sparcstation2 : t
(** Table 2: update 22, lookup 2.75, NH fault 131, VM fault 561,
    protect 80, unprotect 299, TP fault 102 (all µs); context switch
    estimated at 200 µs. The VB hypervisor costs (exit 46, view switch 12,
    view update 35 µs) are estimates too — the paper's machine had no
    hardware virtualization, so they are scaled from the relative costs
    Price reports for EPT-based breakpoints. *)

val zero : t
(** All-zero costs (useful to isolate one term in tests). *)

val cycles : float -> int
(** Microseconds to cycles at the simulated clock
    ({!Ebp_machine.Cost_model.clock_hz}). *)

val pp : Format.formatter -> t -> unit
