(* Properties of the indexed replay engine against the scan engine, and
   of the Write_index binary codec. The scan engine is the correctness
   oracle (it is itself property-tested against a naive per-event
   simulation in test_sessions.ml); the indexed engine must agree with
   it bit-for-bit on every Counts field, at every page size, on traces
   that exercise the deliberately-preserved semantic quirks:

   - wide writes (3+ words, non-adjacent pages at small page sizes);
   - unguarded removes (no matching install) and double installs;
   - objects sharing words and pages, address reuse across objects. *)

module Interval = Ebp_util.Interval
module Object_desc = Ebp_trace.Object_desc
module Trace = Ebp_trace.Trace
module Write_index = Ebp_trace.Write_index
module Session = Ebp_sessions.Session
module Counts = Ebp_sessions.Counts
module Replay = Ebp_sessions.Replay
module Indexed_replay = Ebp_sessions.Indexed_replay

let iv lo hi = Interval.make ~lo ~hi
let page_sizes = [ 1024; 4096; 8192 ]

(* --- random traces --- *)

(* A small universe of objects with deliberately overlapping ranges:
   [b] spans a 1K page boundary, [wide] covers 11 words (wide-write
   sized), [x1]/[x2] are two instantiations at the same address (stack
   reuse), and [far] lives beyond 2^32 so 1K page indices exceed the
   old 22-bit packing. *)
let objects =
  [|
    (Object_desc.Global { var = "a" }, iv 0x1000 0x1003);
    (Object_desc.Global { var = "b" }, iv 0x13fc 0x1407);
    (Object_desc.Global { var = "wide" }, iv 0x2000 0x202b);
    (Object_desc.Heap { context = [ "f"; "main" ]; seq = 1 }, iv 0x3000 0x300b);
    (Object_desc.Local { func = "f"; var = "x"; inst = 1 }, iv 0x8000 0x8003);
    (Object_desc.Local { func = "f"; var = "x"; inst = 2 }, iv 0x8000 0x8003);
    (Object_desc.Local { func = "f"; var = "y"; inst = 1 }, iv 0x8004 0x8007);
    (Object_desc.Global { var = "far" }, iv 0x1_0000_1000 0x1_0000_100b);
  |]

let sessions_under_test =
  [
    Session.One_global_static { var = "a" };
    Session.One_global_static { var = "b" };
    Session.One_global_static { var = "wide" };
    Session.One_global_static { var = "far" };
    Session.One_heap { site = "f"; seq = 1 };
    Session.One_local_auto { func = "f"; var = "x" };
    Session.All_local_in_func { func = "f" };
    Session.All_heap_in_func { func = "main" };
  ]

(* Ops are unguarded on purpose: installs may repeat while live and
   removes may lack a matching install — both engines must agree on the
   scan engine's idempotent-word / refcounted-page treatment of them. *)
let trace_gen =
  let open QCheck2.Gen in
  let* ops =
    list_size (int_range 1 120)
      (triple (int_range 0 5) (int_range 0 7) (int_range 0 40))
  in
  return
    (let b = Trace.Builder.create () in
     List.iter
       (fun (kind, idx, jitter) ->
         let idx = idx mod Array.length objects in
         let obj, range = objects.(idx) in
         match kind with
         | 0 | 1 -> Trace.Builder.add_install b obj range
         | 2 -> Trace.Builder.add_remove b obj range
         | 3 ->
             (* Word-aligned 4-byte write near (sometimes on) the object. *)
             let lo = (Interval.lo range + (jitter * 412)) land lnot 3 in
             Trace.Builder.add_write b (iv lo (lo + 3)) ~pc:idx
         | 4 ->
             (* Wide write: 3+ words, crossing pages for small sizes. *)
             let lo = (Interval.lo range + (jitter * 512)) land lnot 3 in
             Trace.Builder.add_write b (iv lo (lo + 19 + (4 * jitter))) ~pc:idx
         | _ ->
             (* Unaligned narrow write spanning a word boundary. *)
             let lo = Interval.lo range + jitter in
             Trace.Builder.add_write b (iv lo (lo + 2)) ~pc:idx)
       ops;
     Trace.Builder.finish b)

(* --- indexed engine vs scan engine --- *)

let counts_equal (a : Counts.t) (b : Counts.t) = a = b

let prop_indexed_matches_scan =
  QCheck2.Test.make ~name:"indexed replay matches scan engine" ~count:300
    trace_gen (fun trace ->
      let scan = Replay.replay_shard ~page_sizes trace sessions_under_test in
      let index = Write_index.build ~page_sizes trace in
      let indexed =
        Indexed_replay.replay_shard ~index ~page_sizes trace
          sessions_under_test
      in
      List.length scan = List.length indexed
      && List.for_all2
           (fun (s1, c1) (s2, c2) -> Session.equal s1 s2 && counts_equal c1 c2)
           scan indexed)

(* The public entry points must agree too (replay_all builds the index
   itself; passing ?index must not change anything). *)
let prop_replay_all_engines_agree =
  QCheck2.Test.make ~name:"replay_all Scan = replay_all Indexed" ~count:60
    trace_gen (fun trace ->
      let scan =
        Replay.replay_all ~page_sizes ~engine:Replay.Scan trace
          sessions_under_test
      in
      let indexed =
        Replay.replay_all ~page_sizes ~engine:Replay.Indexed trace
          sessions_under_test
      in
      scan = indexed)

(* --- Session.index vs Session.matches --- *)

let prop_session_index_matches =
  QCheck2.Test.make ~name:"Session.index agrees with Session.matches"
    ~count:200
    QCheck2.Gen.(int_range 0 ((Array.length objects * 2) - 1))
    (fun i ->
      let obj, _ = objects.(i mod Array.length objects) in
      let lookup = Session.index sessions_under_test in
      let expected =
        List.mapi (fun j s -> (j, s)) sessions_under_test
        |> List.filter_map (fun (j, s) ->
               if Session.matches s obj then Some j else None)
      in
      lookup obj = expected)

(* --- codec round trip --- *)

let prop_codec_round_trip =
  QCheck2.Test.make ~name:"Write_index codec round-trips" ~count:60 trace_gen
    (fun trace ->
      let index = Write_index.build ~page_sizes trace in
      let path = Filename.temp_file "ebp_widx" ".bin" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let oc = open_out_bin path in
          Write_index.write_binary oc index;
          close_out oc;
          let ic = open_in_bin path in
          let back = Write_index.read_binary ic in
          close_in ic;
          match back with
          | Ok back -> Write_index.equal index back
          | Error msg -> QCheck2.Test.fail_reportf "codec: %s" msg))

(* --- pack-guard regression (40-bit page indices) --- *)

(* With 1 KiB pages, addresses beyond 2^32 have page indices beyond the
   22 bits the packed (session, page) key originally reserved; the old
   packing silently aliased page [p] with page [p + 2^22], crediting
   writes on one object's page to an unrelated session. The two objects
   below collide exactly that way. *)
let test_pack_guard_regression () =
  let near = Object_desc.Global { var = "near" } in
  let far = Object_desc.Global { var = "far" } in
  let near_lo = 0x5000 in
  let far_lo = near_lo + (1 lsl (22 + 10)) (* same 1K page mod 2^22 *) in
  let trace =
    let b = Trace.Builder.create () in
    Trace.Builder.add_install b near (iv near_lo (near_lo + 3));
    Trace.Builder.add_install b far (iv far_lo (far_lo + 3));
    (* Miss for "near", lands on "far"'s page. *)
    Trace.Builder.add_write b (iv (far_lo + 16) (far_lo + 19)) ~pc:0;
    Trace.Builder.finish b
  in
  let check engine =
    let results =
      Replay.replay_all ~page_sizes:[ 1024 ] ~engine trace
        [ Session.One_global_static { var = "near" };
          Session.One_global_static { var = "far" } ]
    in
    List.iter
      (fun (s, c) ->
        let vm = Counts.vm_for c ~page_size:1024 in
        match s with
        | Session.One_global_static { var = "near" } ->
            Alcotest.(check int) "near: write is off-page" 0
              vm.Counts.active_page_misses
        | _ ->
            Alcotest.(check int) "far: write is an active-page miss" 1
              vm.Counts.active_page_misses)
      results
  in
  check Replay.Scan;
  check Replay.Indexed

let test_pack_rejects_overflow () =
  (* Page indices past 40 bits cannot be represented; the scan engine
     must refuse rather than alias. *)
  let g = Object_desc.Global { var = "g" } in
  let lo = 1 lsl 51 in
  let trace =
    let b = Trace.Builder.create () in
    Trace.Builder.add_install b g (iv lo (lo + 3));
    Trace.Builder.finish b
  in
  Alcotest.check_raises "overflowing page index"
    (Invalid_argument
       "Replay: page index exceeds 40 bits (page size too small for this \
        address space)") (fun () ->
      ignore
        (Replay.replay_all ~page_sizes:[ 1024 ] ~engine:Replay.Scan trace
           [ Session.One_global_static { var = "g" } ]))

(* --- decoder hardening --- *)

let test_codec_mutation_fuzz () =
  (* A valid index blob under exhaustive single-bit flips and all
     mutated strict prefixes: [decode] must return [Error] or a
     (possibly different) [Ok] without ever raising — every array length
     it reads is clamped against the bytes present. Strict prefixes must
     always be [Error]: the field sequence is deterministic, so a
     truncated blob runs out of bytes mid-read. *)
  let trace =
    let b = Trace.Builder.create () in
    Array.iter
      (fun (o, range) ->
        Trace.Builder.add_install b o range;
        Trace.Builder.add_write b range ~pc:1;
        Trace.Builder.add_remove b o range)
      objects;
    Trace.Builder.finish b
  in
  let valid = Write_index.encode (Write_index.build ~page_sizes trace) in
  let len = String.length valid in
  for cut = 0 to len - 1 do
    match Write_index.decode (String.sub valid 0 cut) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "strict prefix of length %d/%d decoded" cut len
  done;
  for i = 0 to len - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string valid in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      match Write_index.decode (Bytes.unsafe_to_string b) with
      | Ok _ | Error _ -> ()
      | exception e ->
          Alcotest.failf "decode raised %s on bit %d of byte %d"
            (Printexc.to_string e) bit i
    done
  done

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "indexed"
    [
      ( "engine equivalence",
        [ q prop_indexed_matches_scan; q prop_replay_all_engines_agree ] );
      ("session index", [ q prop_session_index_matches ]);
      ( "codec",
        [
          q prop_codec_round_trip;
          Alcotest.test_case "mutation fuzz" `Quick test_codec_mutation_fuzz;
        ] );
      ( "pack guard",
        [
          Alcotest.test_case "1K pages past 2^32" `Quick
            test_pack_guard_regression;
          Alcotest.test_case "overflow rejected" `Quick
            test_pack_rejects_overflow;
        ] );
    ]
