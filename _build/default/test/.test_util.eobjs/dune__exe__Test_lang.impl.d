test/test_lang.ml: Alcotest Array Ebp_isa Ebp_lang Ebp_machine Ebp_runtime Int List Printf QCheck2 QCheck_alcotest Result String
