type t = int

let count = 32

let of_int i =
  if i < 0 || i >= count then
    invalid_arg (Printf.sprintf "Reg.of_int: %d outside [0,31]" i);
  i

let to_int t = t
let zero = 0
let ra = 1
let sp = 2
let fp = 3
let a0 = 4
let a1 = 5
let a2 = 6
let a3 = 7
let a4 = 8
let a5 = 9
let v0 = 10
let v1 = 11

let t_ i =
  if i < 0 || i > 7 then invalid_arg "Reg.t_: index outside [0,7]";
  12 + i

let s_ i =
  if i < 0 || i > 7 then invalid_arg "Reg.s_: index outside [0,7]";
  20 + i

let k0 = 28
let k1 = 29

(* Registers 30 and 31 are unnamed spares; [name] renders them as rNN. *)
let names =
  [|
    "zero"; "ra"; "sp"; "fp"; "a0"; "a1"; "a2"; "a3"; "a4"; "a5"; "v0"; "v1";
    "t0"; "t1"; "t2"; "t3"; "t4"; "t5"; "t6"; "t7"; "s0"; "s1"; "s2"; "s3";
    "s4"; "s5"; "s6"; "s7"; "k0"; "k1"; "r30"; "r31";
  |]

let name t = names.(t)

let of_name s =
  let found = ref None in
  Array.iteri (fun i n -> if n = s then found := Some i) names;
  (match !found with
  | Some _ -> ()
  | None ->
      if String.length s > 1 && s.[0] = 'r' then
        match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
        | Some i when i >= 0 && i < count -> found := Some i
        | Some _ | None -> ());
  !found

let equal = Int.equal
let compare = Int.compare
let pp ppf t = Format.pp_print_string ppf (name t)
