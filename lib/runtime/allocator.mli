(** First-fit free-list heap allocator.

    Plays the role of the C library's [malloc]/[free]/[realloc]. Its
    bookkeeping lives on the host side, not in simulated memory — mirroring
    the paper's setup where writes made by the standard library do not
    appear in the program event trace (§6). Allocation events are reported
    through a hook so the trace recorder can install and remove heap-object
    write monitors; following the paper's footnote 4, a [realloc] keeps the
    object's identity.

    Blocks are 4-byte aligned, so distinct objects never share a machine
    word and the word-granular monitor map cannot produce cross-object
    false hits. *)

type t

type event =
  | Alloc of { addr : int; size : int }
  | Free of { addr : int; size : int }
  | Realloc of { old_addr : int; old_size : int; new_addr : int; new_size : int }

val create : ?base:int -> ?limit:int -> unit -> t
(** Manage the byte range [[base, limit)]. Defaults to the MiniC heap
    segment ({!Ebp_lang.Layout.heap_base}..[heap_limit]).
    @raise Invalid_argument if the range is empty or misaligned. *)

val set_event_hook : t -> (event -> unit) option -> unit

val malloc : t -> int -> int option
(** [malloc t size] returns the address of a fresh block of at least [size]
    bytes, or [None] when the heap is exhausted. [size <= 0] allocates a
    minimal (4-byte) block, like most C libraries. *)

val free : t -> int -> (unit, string) result
(** Freeing an address that is not the base of a live block is an error. *)

val realloc : t -> int -> int -> copy:(src:int -> dst:int -> len:int -> unit) -> (int option, string) result
(** [realloc t addr size ~copy] resizes the block at [addr]. When the block
    moves, [copy] transfers the surviving prefix. [Ok None] means the heap
    is exhausted (the original block survives). [realloc t 0 size] behaves
    like [malloc]. *)

val size_of : t -> int -> int option
(** Size of the live block based at an address, if any. *)

val live_blocks : t -> (int * int) list
(** Live (address, size) pairs, ascending by address. *)

val live_bytes : t -> int
val free_bytes : t -> int

(** {2 Snapshots}

    Checkpoint support: capture and restore the free list and the live
    set. The event hook is untouched by both. *)

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
