type t = { lo : int; hi : int }

let make ~lo ~hi =
  if lo > hi then
    invalid_arg (Printf.sprintf "Interval.make: lo (%d) > hi (%d)" lo hi);
  { lo; hi }

let of_base_size ~base ~size =
  if size <= 0 then invalid_arg "Interval.of_base_size: size <= 0";
  { lo = base; hi = base + size - 1 }

let lo t = t.lo
let hi t = t.hi
let size t = t.hi - t.lo + 1
let contains t a = t.lo <= a && a <= t.hi
let overlaps a b = a.lo <= b.hi && b.lo <= a.hi

let intersect a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo <= hi then Some { lo; hi } else None

let subsumes a b = a.lo <= b.lo && b.hi <= a.hi

let compare a b =
  match Int.compare a.lo b.lo with 0 -> Int.compare a.hi b.hi | c -> c

let equal a b = a.lo = b.lo && a.hi = b.hi
let pp ppf t = Format.fprintf ppf "[0x%x,0x%x]" t.lo t.hi
let to_string t = Format.asprintf "%a" pp t
