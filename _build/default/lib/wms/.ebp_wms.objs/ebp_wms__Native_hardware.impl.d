lib/wms/native_hardware.ml: Ebp_machine Ebp_util Printf Timing Wms
