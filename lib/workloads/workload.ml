type t = {
  name : string;
  description : string;
  paper_analogue : string;
  source : string;
  seed : int;
  expected_output : string option;
  event_hint : int option;
}

module Metrics = Ebp_obs.Metrics
module Obs_span = Ebp_obs.Span

(* Phase-1 observability: how many workloads were actually traced (as
   opposed to served from the cache) and how many events those traces
   carry. The [phase1.record] span wraps compile + machine run + trace
   build, i.e. exactly the work a cache hit skips. *)
let m_runs = Metrics.counter "phase1.runs"
let m_events = Metrics.counter "phase1.events"

let compiler =
  {
    name = "compiler";
    description = "expression scanner/parser/constant-folder";
    paper_analogue = "GCC v1.4 compiling rtl.c";
    source = Mc_compiler.source;
    seed = 11;
    expected_output = Some "1724
802
1724
301
479
0
480
0
3438512
";
    event_hint = Some 200_000;
  }

let typeset =
  {
    name = "typeset";
    description = "dynamic-programming paragraph line breaker";
    paper_analogue = "CommonTeX v2.9 typesetting a 4-page document";
    source = Mc_typeset.source;
    seed = 22;
    expected_output = Some "14
455
54844
2456
";
    event_hint = Some 1_000_000;
  }

let circuit =
  {
    name = "circuit";
    description = "Gauss-Seidel transient nodal analysis";
    paper_analogue = "Spice v3c1 transient analysis of a differential pair";
    source = Mc_circuit.source;
    seed = 33;
    expected_output = Some "24
174
0
96
194306
";
    event_hint = Some 400_000;
  }

let lattice =
  {
    name = "lattice";
    description = "stencil relaxation over a global lattice";
    paper_analogue = "QCD quantum-chromodynamics simulation";
    source = Mc_lattice.source;
    seed = 44;
    expected_output = Some "20
24745
1100
81849
";
    event_hint = Some 1_800_000;
  }

let puzzle =
  {
    name = "puzzle";
    description = "best-first 8-puzzle search";
    paper_analogue = "BPS Bayesian problem solver (8-puzzle)";
    source = Mc_puzzle.source;
    seed = 55;
    expected_output = Some "1833
2879
764
45
1973
2879
";
    event_hint = Some 1_300_000;
  }

let all = [ compiler; typeset; circuit; lattice; puzzle ]

let by_name name = List.find_opt (fun w -> w.name = name) all

type run = {
  workload : t;
  compiled : Ebp_lang.Compiler.output;
  result : Ebp_runtime.Loader.run_result option;
  trace : Ebp_trace.Trace.t;
  base_ms : float;
}

let record ?fuel w =
  Obs_span.with_span ~args:[ ("workload", w.name) ] "phase1.record"
  @@ fun () ->
  Metrics.incr m_runs;
  match Ebp_lang.Compiler.compile w.source with
  | Error msg -> Error (Printf.sprintf "%s: compile error: %s" w.name msg)
  | Ok compiled -> (
      let loader = Ebp_runtime.Loader.load ~seed:w.seed compiled in
      let result, trace =
        Ebp_trace.Recorder.record ?hint:w.event_hint ?fuel loader
      in
      match result.Ebp_runtime.Loader.status with
      | Ebp_machine.Machine.Halted 0 -> (
          match result.Ebp_runtime.Loader.runtime_error with
          | Some msg -> Error (Printf.sprintf "%s: runtime error: %s" w.name msg)
          | None -> (
              match w.expected_output with
              | Some expected when expected <> result.Ebp_runtime.Loader.output ->
                  Error
                    (Printf.sprintf "%s: output mismatch:\nexpected:\n%s\ngot:\n%s"
                       w.name expected result.Ebp_runtime.Loader.output)
              | Some _ | None ->
                  Metrics.add m_events (Ebp_trace.Trace.length trace);
                  Ok
                    {
                      workload = w;
                      compiled;
                      result = Some result;
                      trace;
                      base_ms =
                        Ebp_machine.Cost_model.ms_of_cycles
                          result.Ebp_runtime.Loader.cycles;
                    }))
      | Ebp_machine.Machine.Halted code ->
          Error (Printf.sprintf "%s: exited with code %d" w.name code)
      | Ebp_machine.Machine.Out_of_fuel -> Error (Printf.sprintf "%s: out of fuel" w.name)
      | Ebp_machine.Machine.Machine_error msg ->
          Error (Printf.sprintf "%s: machine error: %s" w.name msg))

(* --- trace cache integration --- *)

module Trace_cache = Ebp_trace.Trace_cache

let cache_key ?fuel w =
  Trace_cache.make_key ~name:w.name ~source:w.source ~seed:w.seed ?fuel ()

(* The cached metadata is the base execution time as a hex float, which
   round-trips exactly through printing. *)
let meta_of_base_ms base_ms = Printf.sprintf "%h" base_ms

let base_ms_of_meta meta =
  match float_of_string_opt meta with
  | Some v when Float.is_finite v && v >= 0.0 -> Some v
  | Some _ | None -> None

let record_cached ?fuel ~cache_dir w =
  let key = cache_key ?fuel w in
  let record_and_store () =
    record ?fuel w
    |> Result.map (fun run ->
           (* Best-effort: a read-only cache directory degrades to record. *)
           ignore
             (Trace_cache.store ~dir:cache_dir ~key
                ~meta:(meta_of_base_ms run.base_ms) run.trace
               : (unit, string) result);
           run)
  in
  match Trace_cache.lookup ~dir:cache_dir ~key with
  | Some (trace, meta) -> (
      match base_ms_of_meta meta with
      | Some base_ms -> (
          (* The compiled program is still needed (code-expansion reports,
             instrumentation); compilation is pure and cheap next to the
             machine run the cache saves. *)
          match Ebp_lang.Compiler.compile w.source with
          | Error msg -> Error (Printf.sprintf "%s: compile error: %s" w.name msg)
          | Ok compiled ->
              Ok { workload = w; compiled; result = None; trace; base_ms })
      | None ->
          (* Unreadable metadata: treat as a miss and overwrite the entry. *)
          record_and_store ())
  | None -> record_and_store ()
