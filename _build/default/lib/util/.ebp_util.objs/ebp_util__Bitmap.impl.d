lib/util/bitmap.ml: Bytes Char Format Printf
