(** Executable programs: instruction sequences with symbolic labels.

    Instructions live in a flat array indexed by instruction address (the
    program counter counts instructions, not bytes — a Harvard-style code
    store, which is safe here because the paper's experiment only ever
    monitors data writes, never code). Each instruction carries an
    [implicit] flag: writes marked implicit are compiler-generated frame
    bookkeeping (saved [ra]/[fp], expression spills). The paper's traces
    exclude such writes ("implicit writes (e.g., register spilling) do not
    appear in the trace", §6), and instrumentation passes skip them too.

    A program whose control transfers are all {!Instr.Abs} is {e resolved}
    and can execute; {!resolve} converts labels. Instrumentation passes
    ({!Ebp_wms.Trap_patch}, {!Ebp_wms.Code_patch}) operate on resolved
    programs, replacing stores in place and appending stub code at the end
    so that no existing instruction index moves. *)

type item = { instr : Instr.t; implicit : bool }

type t

val of_items : ?labels:(string * int) list -> item list -> t
(** Build a program from instructions and label definitions (label name ->
    instruction index).
    @raise Invalid_argument on duplicate labels or out-of-range indices. *)

val of_instrs : ?labels:(string * int) list -> Instr.t list -> t
(** Like {!of_items} with every instruction explicit (non-implicit). *)

val length : t -> int
val get : t -> int -> Instr.t
val implicit : t -> int -> bool
val items : t -> item array
(** A copy of the underlying items. *)

val label_index : t -> string -> int option
val labels : t -> (string * int) list

val resolve : t -> (t, string) result
(** Replace every {!Instr.Label} target with the {!Instr.Abs} index it names.
    Returns [Error] naming the first undefined label. *)

val is_resolved : t -> bool

val set : t -> int -> Instr.t -> t
(** Functional single-instruction replacement (preserves the implicit flag).
    @raise Invalid_argument on an out-of-range index. *)

val append : t -> item list -> t * int
(** [append t extra] adds [extra] at the end, returning the new program and
    the index of the first appended instruction. *)

val stores : t -> (int * Instr.t) list
(** Indices and instructions of every non-implicit store, in program order. *)

val fold : (int -> item -> 'a -> 'a) -> t -> 'a -> 'a

val pp : Format.formatter -> t -> unit
(** Disassembly listing with label definitions interleaved. *)
