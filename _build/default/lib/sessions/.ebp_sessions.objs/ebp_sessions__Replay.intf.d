lib/sessions/replay.mli: Counts Ebp_trace Session
