(** NativeHardware (NH) strategy: CPU monitor registers (§3.1, Figure 3).

    Monitors live in the machine's hardware monitor registers; a store that
    overlaps one traps {e after} completing, and the fault handler delivers
    the notification, charging [NHFaultHandler] time. Installs and removes
    are free (the paper assumes user-accessible registers whose update cost
    "can be safely ignored").

    The decisive limitation is capacity: the machine has as many registers
    as it was created with (4 by default, like the i386/R4000), and
    {!Wms.strategy.install} fails with an error once they are exhausted —
    "no widely-used chip today supports more than four concurrent write
    monitors". *)

type t

val attach :
  ?timing:Timing.t ->
  Ebp_machine.Machine.t ->
  notify:(Wms.notification -> unit) ->
  t
(** Takes over the machine's monitor-fault handler. [timing] defaults to
    {!Timing.sparcstation2}. *)

val strategy : t -> Wms.strategy
val stats : t -> Wms.stats
val capacity : t -> int
