test/test_machine.ml: Alcotest Ebp_isa Ebp_machine Ebp_util Hashtbl List QCheck2 QCheck_alcotest String
