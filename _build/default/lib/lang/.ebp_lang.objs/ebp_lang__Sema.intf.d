lib/lang/sema.mli: Ast Typed
