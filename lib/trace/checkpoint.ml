module Machine = Ebp_machine.Machine
module Memory = Ebp_machine.Memory
module Loader = Ebp_runtime.Loader
module Allocator = Ebp_runtime.Allocator
module Fault = Ebp_util.Fault
module Metrics = Ebp_obs.Metrics

(* One checkpoint: the machine-above-memory state plus the pages dirtied
   since the PREVIOUS checkpoint. Memory at checkpoint [k] is therefore
   (fresh load image) overlaid with the page deltas of checkpoints
   0..k in order — a delta chain, like the sealed blocks it rides with. *)
type entry = {
  e_event : int;  (* trace timestamp when taken: events emitted so far *)
  e_nobjs : int;  (* objects registered so far *)
  e_loader : Loader.snapshot;
  e_recorder : Recorder.snapshot;
  e_pages : (int * bytes) list;
}

type t = { mutable entries_rev : entry list; mutable skipped : int }

let p_store = Fault.point "checkpoint.store"
let m_taken = Metrics.counter "checkpoint.taken"
let m_skipped = Metrics.counter "checkpoint.skipped"
let m_pages = Metrics.counter "checkpoint.pages"
let m_restores = Metrics.counter "checkpoint.restores"

let create () = { entries_rev = []; skipped = 0 }
let count t = List.length t.entries_rev
let skipped t = t.skipped
let events t = List.rev_map (fun e -> e.e_event) t.entries_rev

let track loader =
  Memory.set_dirty_tracking (Machine.memory (Loader.machine loader)) true

let take t ~event ~nobjs loader recorder =
  let mem = Machine.memory (Loader.machine loader) in
  match Fault.check p_store with
  | () ->
      let pages = Memory.take_dirty mem in
      t.entries_rev <-
        {
          e_event = event;
          e_nobjs = nobjs;
          e_loader = Loader.snapshot loader;
          e_recorder = Recorder.snapshot recorder;
          e_pages = pages;
        }
        :: t.entries_rev;
      Metrics.incr m_taken;
      Metrics.add m_pages (List.length pages)
  | exception Fault.Injected _ ->
      (* Fallback: skip this checkpoint. The dirty set is NOT drained, so
         the pages keep accumulating and the next successful checkpoint
         subsumes this one's delta — time travel merely re-executes from
         further back. [Fault.Killed] propagates. *)
      t.skipped <- t.skipped + 1;
      Metrics.incr m_skipped

(* Deepest checkpoint strictly before [event]; [entries_rev] is
   descending. Strict: a checkpoint stamped exactly [event] sits at a
   slice boundary, but the canonical machine-at-event-[event] (what a
   step-0 {!seek} reaches) is the {e first} instruction boundary where
   the counter got there — possibly several instructions earlier, when
   the counter plateaus. Restarting from the previous entry and seeking
   forward reproduces the canonical state; restarting from the
   equal-stamped entry would not. *)
let nearest t ~event =
  let rec pick = function
    | [] -> None
    | e :: rest -> if e.e_event < event then Some e else pick rest
  in
  pick t.entries_rev

type restored = {
  rs_loader : Loader.t;
  rs_counters : Recorder.counters;
  rs_recorder : Recorder.t;
}

let restore t ~event ~load =
  match nearest t ~event with
  | None -> None
  | Some target ->
      let loader = load () in
      let mem = Machine.memory (Loader.machine loader) in
      (* Overlay the page deltas oldest-first up to and including the
         target (physical identity — timestamps need not be distinct). *)
      let rec overlay = function
        | [] -> ()
        | e :: rest ->
            List.iter
              (fun (page, bytes) -> Memory.overlay_page mem ~page bytes)
              e.e_pages;
            if e != target then overlay rest
      in
      overlay (List.rev t.entries_rev);
      Loader.restore loader target.e_loader;
      let counters =
        { Recorder.c_events = target.e_event; c_objs = target.e_nobjs }
      in
      let recorder =
        Recorder.reattach (Recorder.counting_sink counters) loader
          target.e_recorder
      in
      Metrics.incr m_restores;
      Some { rs_loader = loader; rs_counters = counters; rs_recorder = recorder }

let seek ?(limit = max_int) loader counters ~event =
  let machine = Loader.machine loader in
  let steps = ref 0 in
  let stop = ref None in
  while
    !stop = None && counters.Recorder.c_events < event && !steps < limit
  do
    incr steps;
    stop := Machine.step machine
  done;
  !stop

(* --- state fingerprint (equivalence oracle for tests and bench) --- *)

let is_zero_page bytes =
  let n = Bytes.length bytes in
  let rec go i = i >= n || (Bytes.unsafe_get bytes i = '\000' && go (i + 1)) in
  go 0

let state_digest loader (counters : Recorder.counters) =
  let machine = Loader.machine loader in
  let al = Loader.allocator loader in
  let buf = Buffer.create 4096 in
  (* Machine snapshots are plain data (ints, arrays, intervals), so their
     Marshal bytes are deterministic. The allocator is fingerprinted via
     its sorted live set, not its hashtable (bucket layout depends on
     insertion history). *)
  Buffer.add_string buf (Marshal.to_string (Machine.snapshot machine) []);
  List.iter
    (fun (a, s) -> Buffer.add_string buf (Printf.sprintf "B%d:%d;" a s))
    (Allocator.live_blocks al);
  Buffer.add_string buf (Printf.sprintf "F%d;" (Allocator.free_bytes al));
  Buffer.add_string buf (Loader.output loader);
  Buffer.add_string buf
    (Printf.sprintf "E%d,O%d;" counters.Recorder.c_events counters.Recorder.c_objs);
  (* All-zero pages are skipped: an absent page reads as zeroes, and the
     restore path may materialize a different page set than a replay. *)
  Memory.fold_pages (Machine.memory machine) ~init:() ~f:(fun () idx bytes ->
      if not (is_zero_page bytes) then begin
        Buffer.add_string buf (Printf.sprintf "P%d:" idx);
        Buffer.add_bytes buf bytes
      end);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* --- checkpointed run driver --- *)

let default_slice = 262_144

(* Hooks run mid-instruction, so a machine snapshot is only consistent
   between instructions: drive the run in resumable fuel slices and
   sample the event count at slice boundaries. Cumulative machine
   counters make the final run_result identical to a single big run of
   the same total fuel. With [fuel] absent the run is unbounded (each
   slice gets fresh fuel) — pass an explicit total to mirror a bounded
   batch run. *)
let run_with_checkpoints ?(slice = default_slice) ?fuel ~every ~events ~nobjs
    t loader recorder =
  if every <= 0 then invalid_arg "Checkpoint.run_with_checkpoints: every <= 0";
  if slice <= 0 then invalid_arg "Checkpoint.run_with_checkpoints: slice <= 0";
  track loader;
  let remaining = ref fuel in
  let last = ref 0 in
  let rec loop () =
    let this = match !remaining with None -> slice | Some f -> min slice f in
    let res = Loader.run ~fuel:this loader in
    (match !remaining with
    | Some f -> remaining := Some (f - this)
    | None -> ());
    match res.Loader.status with
    | Machine.Out_of_fuel
      when (match !remaining with None -> true | Some f -> f > 0) ->
        let ev = events () in
        if ev - !last >= every then begin
          take t ~event:ev ~nobjs:(nobjs ()) loader recorder;
          last := ev
        end;
        loop ()
    | _ -> res
  in
  loop ()

(* --- serialization (Trace_cache storage) --- *)

let codec_version = "EBPK1"

let encode t =
  codec_version ^ Marshal.to_string (List.rev t.entries_rev, t.skipped) []

let decode s =
  let n = String.length codec_version in
  if String.length s < n || String.sub s 0 n <> codec_version then
    Error "checkpoint chain: bad magic"
  else
    match (Marshal.from_string s n : entry list * int) with
    | entries, skipped -> Ok { entries_rev = List.rev entries; skipped }
    | exception _ -> Error "checkpoint chain: malformed"
