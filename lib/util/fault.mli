(** Deterministic fault injection at named points.

    Every layer that touches the outside world (cache I/O, the binary
    codecs, pool task execution, the loader) declares {e fault points} —
    named places where a configured test or CLI run can deterministically
    inject failures: transient errors, bit flips, truncations, or a
    simulated process kill. Production runs pay one load and one branch
    per point ({!fires} returns [None] immediately while no configuration
    is active); configured runs draw from a single seeded PRNG so every
    fault sequence is reproducible from the seed.

    {2 Vocabulary}

    A {e point} is registered once, by name, at module-initialization
    time ([let p = Fault.point "trace_cache.store.io"]). A
    {e rule} attaches a trigger and an action to every point whose name
    matches its pattern (exact, or a [prefix.*] glob). {!configure}
    installs a rule set; {!reset} clears it.

    Each firing bumps the counter [fault.<point>] in {!Ebp_obs.Metrics},
    so `--metrics` output shows exactly which faults fired and how often.

    {2 Threading}

    Configuration must happen from a single domain while no other domain
    is inside a fault point (the enable flag is a plain bool, like
    {!Ebp_obs.Metrics.set_enabled}). Once configured, firing decisions
    take a mutex around the shared PRNG and per-point evaluation counts,
    so points are safe to evaluate from pool workers. *)

type point
(** A named fault-injection site. *)

type action =
  | Fail      (** raise {!Injected} — a transient, retryable error *)
  | Bit_flip  (** flip one PRNG-chosen bit of the data ({!mangle} only) *)
  | Truncate  (** cut the data to a PRNG-chosen prefix ({!mangle} only) *)
  | Kill      (** raise {!Killed} — a simulated crash; never retried *)

type trigger =
  | Always
  | Nth of int  (** fire on exactly the [n]-th evaluation (1-based) since
                    the last {!configure} *)
  | Probability of float  (** fire on each evaluation with probability
                              [p], from the configured seed *)

type rule = { pattern : string; trigger : trigger; action : action }
(** [pattern] is an exact point name, or [prefix.*] matching every point
    whose name starts with [prefix.] (a bare ["*"] matches everything). *)

exception Injected of string
(** A transient injected failure at the named point. Consumers treat it
    like a recoverable [Sys_error]: retry, degrade, or report. *)

exception Killed of string
(** A simulated crash at the named point. Consumers must {e not} clean up
    or retry — the point of a kill is to exercise what the next process
    finds on disk. *)

val point : string -> point
(** Register (or find) the fault point [name] and its [fault.<name>]
    counter. Idempotent, like {!Ebp_obs.Metrics.counter}. *)

val name : point -> string

val configure : ?seed:int -> rule list -> unit
(** Install [rules] (first match wins, in order) and reseed the fault
    PRNG (default seed 0). An empty list disables injection — the cost
    at every point returns to one branch. Resets per-point evaluation
    counts, so [Nth] triggers count from here. *)

val reset : unit -> unit
(** [configure []]. *)

val active : unit -> bool
(** Whether any rule set is installed. *)

val fires : point -> action option
(** Evaluate the point: [None] when disabled or the trigger does not
    fire; [Some action] (counted) when it does. The primitive under
    {!check} and {!mangle}, exposed for consumers with bespoke failure
    modes (e.g. a codec returning [Error] instead of raising). *)

val check : point -> unit
(** Raise {!Killed} if the point fires with {!Kill}, {!Injected} if it
    fires with any other action, nothing otherwise. For control points
    where data corruption is meaningless. *)

val mangle : point -> string -> string
(** Pass [data] through the point: unchanged when it does not fire;
    one bit flipped under {!Bit_flip}; cut to a strict prefix under
    {!Truncate} (empty input passes through); {!Injected} / {!Killed}
    under {!Fail} / {!Kill}. For data points on the store/load paths. *)

(** {2 CLI spec syntax}

    [--faults] accepts a compact spec: clauses separated by [;] or [,],
    each either [seed=N] or [PATTERN:TRIGGER:ACTION] with trigger
    [always], [nth=N], or [p=FLOAT] and action [fail], [bitflip],
    [truncate], or [kill]. Example:

    {[ seed=7;trace_cache.*:p=0.05:bitflip;pool.task:nth=3:fail ]} *)

val parse_spec : string -> (int * rule list, string) result
(** Parse the syntax above into [(seed, rules)] without installing it.
    The seed defaults to 0 when no [seed=] clause appears. *)

val configure_spec : string -> (unit, string) result
(** [parse_spec] then {!configure}. *)
