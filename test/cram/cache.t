The on-disk trace cache: a cold run records and stores the trace, a warm
run loads it without executing anything.

  $ cat > cached.mc <<'MC'
  > int g;
  > int main() {
  >   int i;
  >   for (i = 0; i < 20; i = i + 1) { g = g + i; }
  >   print_int(g);
  >   return 0;
  > }
  > MC
  $ ebp trace cached.mc --cached --cache-dir cache 2>&1 >/dev/null
  phase 1: traced and cached (45 events)
  $ ebp trace cached.mc --cached --cache-dir cache 2>&1 >/dev/null
  phase 1: cache hit, no execution (45 events)

The cached trace replays exactly like a live one:

  $ ebp sessions cached.mc | tail -n 1
  3 sessions

Editing the source changes the cache key, so a stale entry is never used:

  $ sed 's/< 20/< 21/' cached.mc > cached2.mc
  $ mv cached2.mc cached.mc
  $ ebp trace cached.mc --cached --cache-dir cache 2>&1 >/dev/null
  phase 1: traced and cached (47 events)

The experiment engine drives the same cache: with a warm cache, phase 1
performs zero machine execution, and the parallel engine (-j) prints the
same artifacts as the sequential one.

  $ ebp experiment --workloads circuit --only table1 --cache-dir cache -j 2 2>cold.err >cold.table
  $ cat cold.err
  phase 1 circuit    traced (329544 events)
  phase 2 circuit    103 sessions replayed
  $ ebp experiment --workloads circuit --only table1 --cache-dir cache -j 2 2>warm.err >warm.table
  $ cat warm.err
  phase 1 circuit    cache hit, no execution (329544 events)
  phase 2 circuit    103 sessions replayed
  $ diff cold.table warm.table
  $ ebp experiment --workloads circuit --only table1 2>/dev/null | diff - warm.table
