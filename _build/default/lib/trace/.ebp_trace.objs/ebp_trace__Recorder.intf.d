lib/trace/recorder.mli: Ebp_lang Ebp_runtime Trace
