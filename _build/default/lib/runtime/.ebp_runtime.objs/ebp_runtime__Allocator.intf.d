lib/runtime/allocator.mli:
