(** Per-instruction cycle costs.

    The machine accumulates a cycle count which the experiment converts to
    time via the clock rate. The defaults are generic single-issue RISC
    latencies; the absolute values only matter for base execution time
    (Table 1), since strategy overheads are charged separately from the
    paper's measured timing variables. *)

type t = {
  alu : int;
  mul : int;
  div : int;
  load : int;
  store : int;
  branch : int;
  jump : int;
  call : int;
  syscall : int;
  trap_dispatch : int;  (** machine-level cost of reaching the trap handler *)
  chk : int;  (** machine-level cost of the inline check instruction *)
  marker : int;  (** Enter/Leave markers; 0 = free, as the paper's
                     post-processing hooks are outside the measured program *)
}

val default : t

val clock_hz : float
(** Simulated clock rate: 40 MHz, matching the paper's SPARCstation 2. *)

val cycles_of_us : float -> int
(** Convert microseconds of modeled service time to machine cycles at
    {!clock_hz} (rounded to nearest). *)

val ms_of_cycles : int -> float
(** Convert a cycle count to milliseconds at {!clock_hz}. *)

val cost : t -> Ebp_isa.Instr.t -> int
