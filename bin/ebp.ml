(* ebp — command-line front end for the data-breakpoints experiment.

   Subcommands:
     list                      list the benchmark workloads
     run <workload|file.mc>    compile and run a MiniC program
     trace <workload> [-o F]   record a program event trace (--cached to
                               reuse the on-disk trace cache)
     sessions <workload>       discover monitor sessions and their counts
     experiment [--only T1..]  run the full experiment and print reports
                               (-j N for N domains, --cache-dir for the
                               phase-1 trace cache, --engine scan|indexed
                               for the phase-2 replay engine)
     serve                     run the resident trace service on a Unix
                               socket (LRU of decoded traces, bounded
                               admission queue, per-tenant fairness,
                               batch coalescing; docs/SERVICE.md)
     client <sub>              query a running serve daemon: ping,
                               sessions, experiment, stats, shutdown
     stats <file.ndjson>       render a metrics snapshot as tables
     cache ls|clear|gc|verify  inspect / clear / size-bound / integrity-check
                               the trace cache
     fuzz --seeds N            differential fuzzing with shrinking
     debug <workload>          interactive watchpoint debugger REPL
     disasm <file.mc>          compile a MiniC file and print its assembly

   trace, sessions and experiment all accept --metrics FILE (NDJSON
   snapshot of the Ebp_obs counters/histograms), --trace-events FILE
   (Chrome trace-event JSON for Perfetto), and --faults SPEC (seeded
   fault injection at the points cataloged in docs/ROBUSTNESS.md). *)

open Cmdliner

let exit_err msg =
  prerr_endline ("ebp: " ^ msg);
  exit 1

(* File errors must surface as one-line messages naming the offending
   path, never as an uncaught Sys_error backtrace (exit 125). *)
let read_file path =
  if Sys.file_exists path && Sys.is_directory path then
    exit_err (Printf.sprintf "%S is a directory" path);
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error msg -> exit_err (Printf.sprintf "cannot read %S: %s" path msg)

let source_of_arg arg =
  match Ebp_workloads.Workload.by_name arg with
  | Some w -> Ok (w.Ebp_workloads.Workload.source, w.Ebp_workloads.Workload.seed)
  | None ->
      if Sys.file_exists arg then Ok (read_file arg, 42)
      else Error (Printf.sprintf "no workload or file named %S" arg)

let write_file path content =
  if path = "-" then print_string content
  else
    try
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc content)
    with Sys_error msg ->
      exit_err (Printf.sprintf "cannot write %S: %s" path msg)

(* --- observability flags --- *)

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Collect metrics while the command runs and write an NDJSON \
           snapshot to $(docv) ($(b,-) for stdout). Render it with \
           $(b,ebp stats).")

let trace_events_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-events" ] ~docv:"FILE"
        ~doc:
          "Collect timing spans while the command runs and write Chrome \
           trace-event JSON to $(docv) ($(b,-) for stdout); load it in \
           Perfetto or chrome://tracing.")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Enable seeded fault injection while the command runs. $(docv) is \
           semicolon-separated clauses, each $(b,seed=N) or \
           $(b,PATTERN:TRIGGER:ACTION): TRIGGER is $(b,always), $(b,nth=N) \
           or $(b,p=F); ACTION is $(b,fail), $(b,bitflip), $(b,truncate) or \
           $(b,kill); PATTERN names a fault point, with $(b,*) globbing a \
           prefix (e.g. $(b,trace_cache.*:p=0.05:fail)). The point catalog \
           is in docs/ROBUSTNESS.md.")

let with_faults faults f =
  match faults with
  | None -> f ()
  | Some spec -> (
      match Ebp_util.Fault.configure_spec spec with
      | Error msg -> exit_err ("bad --faults spec: " ^ msg)
      | Ok () -> Fun.protect ~finally:Ebp_util.Fault.reset f)

(* Run [f] with the observability subsystem enabled when either output
   was requested, then write the requested artifacts. [f] exiting early
   via [exit_err] skips the writes — an error run has no snapshot worth
   keeping. *)
let with_obs ~metrics ~trace_events f =
  if metrics = None && trace_events = None then f ()
  else begin
    Ebp_obs.Metrics.set_enabled true;
    let result = f () in
    Ebp_obs.Metrics.set_enabled false;
    Option.iter
      (fun path ->
        write_file path (Ebp_obs.Export.to_ndjson (Ebp_obs.Metrics.snapshot ())))
      metrics;
    Option.iter
      (fun path -> write_file path (Ebp_obs.Span.to_trace_events ()))
      trace_events;
    result
  end

(* --- list --- *)

let list_cmd =
  let doc = "List the benchmark workloads." in
  let f () =
    List.iter
      (fun w ->
        Printf.printf "%-10s %s (stands in for %s)\n" w.Ebp_workloads.Workload.name
          w.Ebp_workloads.Workload.description w.Ebp_workloads.Workload.paper_analogue)
      Ebp_workloads.Workload.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const f $ const ())

(* --- run --- *)

let target_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD|FILE.mc")

let seed_arg =
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let run_cmd =
  let doc = "Compile and run a MiniC program or named workload." in
  let f target seed =
    match source_of_arg target with
    | Error msg -> exit_err msg
    | Ok (source, default_seed) -> (
        let seed = Option.value ~default:default_seed seed in
        match Ebp_runtime.Loader.run_source ~seed source with
        | Error msg -> exit_err msg
        | Ok r ->
            print_string r.Ebp_runtime.Loader.output;
            (match r.Ebp_runtime.Loader.runtime_error with
            | Some e -> exit_err ("runtime error: " ^ e)
            | None -> ());
            (match r.Ebp_runtime.Loader.status with
            | Ebp_machine.Machine.Halted code ->
                Printf.eprintf "[%d instructions, %d cycles, %.1f ms simulated]\n"
                  r.Ebp_runtime.Loader.instructions r.Ebp_runtime.Loader.cycles
                  (Ebp_machine.Cost_model.ms_of_cycles r.Ebp_runtime.Loader.cycles);
                exit code
            | Ebp_machine.Machine.Out_of_fuel -> exit_err "out of fuel"
            | Ebp_machine.Machine.Machine_error msg -> exit_err msg))
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const f $ target_arg $ seed_arg)

(* --- trace --- *)

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Trace cache directory (default: \\$XDG_CACHE_HOME/ebp or \
           ~/.cache/ebp).")

let trace_cmd =
  let doc = "Record a program event trace (phase 1)." in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write a binary trace to $(docv) instead of a summary to stdout.")
  in
  let text_arg =
    Arg.(value & flag & info [ "text" ] ~doc:"Dump the trace as text to stdout.")
  in
  let cached_arg =
    Arg.(
      value & flag
      & info [ "cached" ]
          ~doc:
            "Consult the on-disk trace cache: load the trace without \
             executing anything when it is already cached, record and \
             cache it otherwise.")
  in
  let stream_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "stream" ] ~docv:"FILE"
          ~doc:
            "Record through the streaming pipeline instead of the batch \
             builder: sealed, CRC'd blocks are written to $(docv) as the \
             program runs (format EBPB1, docs/STREAMING.md), so peak \
             memory is one block regardless of trace length. The \
             completed stream decodes to a trace byte-identical to the \
             batch recorder's.")
  in
  let block_events_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "block-events" ] ~docv:"N"
          ~doc:"Events per sealed block for $(b,--stream) (default 64Ki).")
  in
  let checkpoint_every_arg =
    Arg.(
      value & opt int 0
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:
            "With $(b,--stream), take a machine checkpoint every $(docv) \
             trace events and store the chain in the trace cache; \
             $(b,ebp travel) restarts replay from the nearest one instead \
             of step 0.")
  in
  let stream_record ~target ~source ~seed ~out ~block_events ~every ~cache_dir =
    (match block_events with
    | Some n when n <= 0 -> exit_err "--block-events must be positive"
    | _ -> ());
    if every < 0 then exit_err "--checkpoint-every must be non-negative";
    match Ebp_lang.Compiler.compile source with
    | Error msg -> exit_err msg
    | Ok compiled ->
        let oc =
          try open_out_bin out
          with Sys_error msg ->
            exit_err (Printf.sprintf "cannot write %S: %s" out msg)
        in
        Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
        let writer =
          Ebp_trace.Stream.Writer.create ?block_events
            ~write:(output_string oc) ()
        in
        let loader = Ebp_runtime.Loader.load ~seed compiled in
        let recorder = Ebp_trace.Recorder.attach_stream writer loader in
        if every = 0 then begin
          ignore (Ebp_runtime.Loader.run loader);
          Ebp_trace.Recorder.finish_events recorder;
          Ebp_trace.Stream.Writer.finish writer;
          Printf.eprintf "streamed %d events to %s\n"
            (Ebp_trace.Stream.Writer.events writer)
            out
        end
        else begin
          let chain = Ebp_trace.Checkpoint.create () in
          Ebp_trace.Checkpoint.track loader;
          ignore
            (Ebp_trace.Checkpoint.run_with_checkpoints ~every
               ~events:(fun () -> Ebp_trace.Stream.Writer.events writer)
               ~nobjs:(fun () -> Ebp_trace.Stream.Writer.object_count writer)
               chain loader recorder);
          Ebp_trace.Recorder.finish_events recorder;
          Ebp_trace.Stream.Writer.finish writer;
          let dir =
            Option.value cache_dir
              ~default:(Ebp_trace.Trace_cache.default_dir ())
          in
          let key =
            Ebp_trace.Trace_cache.make_key ~name:target ~source ~seed ()
          in
          (match Ebp_trace.Trace_cache.store_checkpoints ~dir ~key chain with
          | Ok () ->
              Printf.eprintf "streamed %d events to %s; %d checkpoints cached\n"
                (Ebp_trace.Stream.Writer.events writer)
                out
                (Ebp_trace.Checkpoint.count chain)
          | Error msg ->
              Printf.eprintf
                "streamed %d events to %s; checkpoint store failed: %s\n"
                (Ebp_trace.Stream.Writer.events writer)
                out msg)
        end
  in
  let f target out text cached stream block_events checkpoint_every cache_dir
      faults metrics trace_events =
    with_faults faults @@ fun () ->
    with_obs ~metrics ~trace_events @@ fun () ->
    match source_of_arg target with
    | Error msg -> exit_err msg
    | Ok (source, seed) when stream <> None ->
        if out <> None || text || cached then
          exit_err "--stream is exclusive with -o, --text, and --cached";
        stream_record ~target ~source ~seed ~out:(Option.get stream) ~block_events
          ~every:checkpoint_every ~cache_dir
    | Ok (source, seed) -> (
        let record () =
          match Ebp_trace.Recorder.record_source ~seed source with
          | Error msg -> exit_err msg
          | Ok (_result, trace, _debug) -> trace
        in
        let trace =
          if not cached then record ()
          else begin
            let dir =
              Option.value cache_dir
                ~default:(Ebp_trace.Trace_cache.default_dir ())
            in
            let key =
              Ebp_trace.Trace_cache.make_key ~name:target ~source ~seed ()
            in
            match Ebp_trace.Trace_cache.lookup ~dir ~key with
            | Some (trace, _meta) ->
                Printf.eprintf "phase 1: cache hit, no execution (%d events)\n"
                  (Ebp_trace.Trace.length trace);
                trace
            | None ->
                let trace = record () in
                (match Ebp_trace.Trace_cache.store ~dir ~key trace with
                | Ok () ->
                    Printf.eprintf "phase 1: traced and cached (%d events)\n"
                      (Ebp_trace.Trace.length trace)
                | Error msg ->
                    Printf.eprintf "phase 1: traced; cache store failed: %s\n"
                      msg);
                trace
          end
        in
        (match out with
        | Some path ->
            write_file path (Ebp_trace.Trace.encode trace);
            Printf.eprintf "wrote %d events to %s\n"
              (Ebp_trace.Trace.length trace) path
        | None -> ());
        if text then print_string (Ebp_trace.Trace.to_text trace)
        else if out = None then
          Format.printf "%a@." Ebp_trace.Trace.pp_stats
            (Ebp_trace.Trace.stats trace))
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const f $ target_arg $ out_arg $ text_arg $ cached_arg $ stream_arg
      $ block_events_arg $ checkpoint_every_arg $ cache_dir_arg $ faults_arg
      $ metrics_arg $ trace_events_arg)

let engine_arg =
  Arg.(
    value
    & opt
        (enum
           [
             ("auto", None);
             ("indexed", Some Ebp_sessions.Replay.Indexed);
             ("scan", Some Ebp_sessions.Replay.Scan);
           ])
        None
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Phase-2 replay engine: $(b,auto) (default; a cost model picks \
           per trace from its length, session count, domain count, and \
           cached-index availability), $(b,indexed) (preprocesses the \
           trace into a temporal write index and counts each session by \
           binary-searched range counts), or $(b,scan) (one pass over the \
           trace per shard). All three produce bit-identical results.")

(* --- model approaches (sessions --approaches, experiment --approaches) --- *)

let approaches_arg =
  Arg.(
    value
    & opt (some (list string)) None
    & info [ "approaches" ] ~docv:"NAMES"
        ~doc:
          "Comma-separated model approaches: $(b,NH), $(b,TP), $(b,CP), \
           $(b,VM-<size>) or $(b,VB-<size>) (size in bytes or $(i,n)K), \
           each optionally suffixed $(b,-rem) for the remote-debugger \
           variant. Example: $(b,NH,VM-4K,TP,CP,VB-4K).")

let parse_approaches names =
  List.map
    (fun n ->
      match Ebp_model.Strategy_model.of_name n with
      | Ok a -> a
      | Error msg -> exit_err msg)
    names

let rec approach_page_sizes a =
  match a with
  | Ebp_model.Strategy_model.VM ps | Ebp_model.Strategy_model.VB ps -> [ ps ]
  | Ebp_model.Strategy_model.Remote b -> approach_page_sizes b
  | Ebp_model.Strategy_model.NH | Ebp_model.Strategy_model.TP
  | Ebp_model.Strategy_model.CP ->
      []

(* --- sessions --- *)

let sessions_cmd =
  let doc =
    "Discover monitor sessions and replay a trace against them (phase 2). \
     The trace comes from running the program, or from a binary trace file \
     saved with $(b,ebp trace -o)."
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Include sessions with zero monitor hits.")
  in
  let from_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "from-trace" ] ~docv:"FILE"
          ~doc:"Replay a saved binary trace instead of running anything; the \
                positional argument is ignored.")
  in
  let f target all from engine approaches faults metrics trace_events =
    with_faults faults @@ fun () ->
    with_obs ~metrics ~trace_events @@ fun () ->
    let approaches = Option.map parse_approaches approaches in
    let page_sizes =
      let defaults = Ebp_sessions.Replay.default_page_sizes in
      match approaches with
      | None -> defaults
      | Some l ->
          defaults
          @ List.filter
              (fun ps -> not (List.mem ps defaults))
              (List.sort_uniq Int.compare
                 (List.concat_map approach_page_sizes l))
    in
    let trace =
      match from with
      | Some path -> (
          if not (Sys.file_exists path) then
            exit_err (Printf.sprintf "no trace file %S" path);
          match Ebp_trace.Trace.decode (read_file path) with
          | Ok t -> t
          | Error msg -> exit_err ("bad trace file: " ^ msg))
      | None -> (
          match source_of_arg target with
          | Error msg -> exit_err msg
          | Ok (source, seed) -> (
              match Ebp_trace.Recorder.record_source ~seed source with
              | Error msg -> exit_err msg
              | Ok (_result, trace, _debug) -> trace))
    in
    let results =
      match engine with
      | Some engine ->
          Ebp_sessions.Replay.discover_and_replay ~engine ~page_sizes
            ~keep_hitless:all trace
      | None -> Ebp_sessions.Planner.replay ~page_sizes ~keep_hitless:all trace
    in
    (* Render through the one path the serve daemon also uses, so batch
       and served reports stay byte-identical (test/cram/serve.t). *)
    print_string (Ebp_serve.Render.sessions_report results);
    match approaches with
    | None -> ()
    | Some approaches ->
        print_string (Ebp_serve.Render.model_report results ~approaches)
  in
  let target_or_dash =
    Arg.(value & pos 0 string "-" & info [] ~docv:"WORKLOAD|FILE.mc")
  in
  Cmd.v (Cmd.info "sessions" ~doc)
    Term.(
      const f $ target_or_dash $ all_arg $ from_arg $ engine_arg
      $ approaches_arg $ faults_arg $ metrics_arg $ trace_events_arg)

(* --- query --- *)

let query_cmd =
  let doc =
    "Run a trace query (docs/QUERY.md): predicates on pc, address range, \
     time window, and session liveness, with counts, group-bys, and \
     histograms. Compiled onto the write index or streamed over the trace; \
     both engines produce byte-identical output."
  in
  let expr_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"EXPR")
  in
  let target_or_dash =
    Arg.(value & pos 0 string "-" & info [] ~docv:"WORKLOAD|FILE.mc")
  in
  let from_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "from-trace" ] ~docv:"FILE"
          ~doc:"Query a saved binary trace instead of running anything; the \
                positional target is ignored.")
  in
  let qengine_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("auto", Ebp_query.Query.Auto);
               ("indexed", Ebp_query.Query.Indexed);
               ("scan", Ebp_query.Query.Scan);
             ])
          Ebp_query.Query.Auto
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Query engine: $(b,auto) (default; the replay cost model picks \
             from trace length, query shape, and cached-index \
             availability), $(b,indexed) (compiles the predicate onto \
             write-index posting lists), or $(b,scan) (one streaming pass \
             over the trace). All three produce byte-identical output.")
  in
  let format_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("table", Ebp_query.Query.Table); ("ndjson", Ebp_query.Query.Ndjson) ])
          Ebp_query.Query.Table
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:"Output format: $(b,table) (default) or $(b,ndjson).")
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Run the query through $(b,both) engines and fail unless they \
             agree (the differential oracle the fuzzer uses).")
  in
  let explain_arg =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:"Print the planner's cost-model decision to stderr.")
  in
  let cached_arg =
    Arg.(
      value & flag
      & info [ "cached" ]
          ~doc:
            "Consult the on-disk caches: reuse (or record and store) the \
             trace, and reuse (or build and store) its write index, so \
             repeated queries skip both phase 1 and the index build.")
  in
  let f target expr from engine format check explain cached cache_dir faults
      metrics trace_events =
    with_faults faults @@ fun () ->
    with_obs ~metrics ~trace_events @@ fun () ->
    let q =
      match Ebp_query.Query.parse expr with
      | Ok q -> q
      | Error e ->
          prerr_endline ("ebp: " ^ Ebp_query.Parser.error_line expr e);
          prerr_endline (Ebp_query.Parser.error_caret expr e);
          exit 1
    in
    (* [trace_key] is [Some key] only when the trace came from the cache
       path, which is what guarantees the index entry describes it. *)
    let trace, trace_key =
      match from with
      | Some path -> (
          if not (Sys.file_exists path) then
            exit_err (Printf.sprintf "no trace file %S" path);
          match Ebp_trace.Trace.decode (read_file path) with
          | Ok t -> (t, None)
          | Error msg -> exit_err ("bad trace file: " ^ msg))
      | None -> (
          match source_of_arg target with
          | Error msg -> exit_err msg
          | Ok (source, seed) -> (
              let record () =
                match Ebp_trace.Recorder.record_source ~seed source with
                | Error msg -> exit_err msg
                | Ok (_result, trace, _debug) -> trace
              in
              if not cached then (record (), None)
              else
                let dir =
                  Option.value cache_dir
                    ~default:(Ebp_trace.Trace_cache.default_dir ())
                in
                let key =
                  Ebp_trace.Trace_cache.make_key ~name:target ~source ~seed ()
                in
                match Ebp_trace.Trace_cache.lookup ~dir ~key with
                | Some (trace, _meta) ->
                    Printf.eprintf
                      "phase 1: cache hit, no execution (%d events)\n"
                      (Ebp_trace.Trace.length trace);
                    (trace, Some (dir, key))
                | None ->
                    let trace = record () in
                    (match Ebp_trace.Trace_cache.store ~dir ~key trace with
                    | Ok () ->
                        Printf.eprintf
                          "phase 1: traced and cached (%d events)\n"
                          (Ebp_trace.Trace.length trace)
                    | Error msg ->
                        Printf.eprintf
                          "phase 1: traced; cache store failed: %s\n" msg);
                    (trace, Some (dir, key))))
    in
    let page_sizes = Ebp_sessions.Replay.default_page_sizes in
    let index_source =
      match trace_key with
      | None -> Ebp_sessions.Planner.no_index_cache
      | Some (dir, key) ->
          {
            Ebp_sessions.Planner.cached =
              Ebp_trace.Trace_cache.index_cached ~dir ~key ~page_sizes;
            load =
              (fun () ->
                Ebp_trace.Trace_cache.lookup_index ~dir ~key ~page_sizes);
            store =
              (fun index ->
                match
                  Ebp_trace.Trace_cache.store_index ~dir ~key ~page_sizes
                    index
                with
                | Ok () | Error _ -> ());
          }
    in
    let log = if explain then Some prerr_endline else None in
    let execution =
      try
        if check then begin
          match Ebp_query.Query.check_engines trace q with
          | Ok execution ->
              prerr_endline "query: engines agree";
              execution
          | Error msg -> exit_err msg
        end
        else Ebp_query.Query.run ~engine ~index_source ?log trace q
      with Ebp_util.Fault.Injected msg ->
        exit_err ("injected fault: " ^ msg)
    in
    print_string
      (Ebp_query.Query.render ~format trace q execution.Ebp_query.Query.raw)
  in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(
      const f $ target_or_dash $ expr_arg $ from_arg $ qengine_arg $ format_arg
      $ check_arg $ explain_arg $ cached_arg $ cache_dir_arg $ faults_arg
      $ metrics_arg $ trace_events_arg)

(* --- experiment --- *)

let experiment_cmd =
  let doc = "Run the full simulation experiment and print the paper's artifacts." in
  let only_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "only" ] ~docv:"ARTIFACT"
          ~doc:
            "Print a single artifact: table1, table2, table3, table4, fig7, \
             fig8, fig9, breakdown, expansion.")
  in
  let workloads_arg =
    Arg.(
      value
      & opt (some (list string)) None
      & info [ "workloads" ] ~docv:"NAMES"
          ~doc:"Comma-separated subset of workloads to run.")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Run the experiment engine on $(docv) domains: workloads trace \
             in parallel and each replay is sharded. Output is identical \
             for every $(docv).")
  in
  let f only workloads jobs approaches cache_dir engine faults metrics
      trace_events =
    with_faults faults @@ fun () ->
    with_obs ~metrics ~trace_events @@ fun () ->
    let approaches = Option.map parse_approaches approaches in
    let workloads =
      match workloads with
      | None -> Ebp_workloads.Workload.all
      | Some names ->
          List.map
            (fun n ->
              match Ebp_workloads.Workload.by_name n with
              | Some w -> w
              | None -> exit_err (Printf.sprintf "unknown workload %S" n))
            names
    in
    match
      Ebp_core.Experiment.run ~workloads ?approaches ~domains:jobs ?cache_dir
        ?engine ~log:prerr_endline ()
    with
    | Error msg -> exit_err msg
    | Ok t -> (
        let artifact = Option.value only ~default:"full" in
        match Ebp_serve.Render.experiment_report t ~artifact with
        | Ok text -> print_string text
        | Error msg -> exit_err msg)
  in
  Cmd.v (Cmd.info "experiment" ~doc)
    Term.(
      const f $ only_arg $ workloads_arg $ jobs_arg $ approaches_arg
      $ cache_dir_arg $ engine_arg $ faults_arg $ metrics_arg
      $ trace_events_arg)

(* --- stats --- *)

let stats_cmd =
  let doc =
    "Render a metrics snapshot (the NDJSON written by $(b,--metrics)) as \
     human-readable tables."
  in
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE.ndjson" ~doc:"Snapshot file, or $(b,-) for stdin.")
  in
  let f path =
    let contents =
      if path = "-" then In_channel.input_all stdin
      else if Sys.file_exists path then read_file path
      else exit_err (Printf.sprintf "no snapshot file %S" path)
    in
    match Ebp_obs.Export.of_ndjson contents with
    | Error msg -> exit_err (Printf.sprintf "%s: %s" path msg)
    | Ok snapshot -> print_string (Ebp_util.Obs_report.render snapshot)
  in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const f $ file_arg)

(* --- cache --- *)

let cache_cmd =
  let dir_of cache_dir =
    Option.value cache_dir ~default:(Ebp_trace.Trace_cache.default_dir ())
  in
  let kind_name = function
    | Ebp_trace.Trace_cache.Trace_entry -> "trace"
    | Ebp_trace.Trace_cache.Index_entry -> "index"
    | Ebp_trace.Trace_cache.Columnar_entry -> "columnar"
    | Ebp_trace.Trace_cache.Checkpoint_entry -> "checkpoint"
    | Ebp_trace.Trace_cache.Tmp_entry -> "tmp"
    | Ebp_trace.Trace_cache.Corrupt_entry -> "corrupt"
  in
  let ls_cmd =
    let doc =
      "List the cache entries, a per-artifact-type size breakdown, and the \
       total size."
    in
    let f cache_dir =
      let dir = dir_of cache_dir in
      let entries = Ebp_trace.Trace_cache.entries ~dir in
      (* Name order for stable output; [gc] evicts by age, not name. *)
      let entries =
        List.sort
          (fun a b ->
            compare a.Ebp_trace.Trace_cache.entry_file
              b.Ebp_trace.Trace_cache.entry_file)
          entries
      in
      let rows =
        List.map
          (fun e ->
            [
              kind_name e.Ebp_trace.Trace_cache.entry_kind;
              string_of_int e.Ebp_trace.Trace_cache.entry_bytes;
              e.Ebp_trace.Trace_cache.entry_file;
            ])
          entries
      in
      if rows <> [] then
        print_string
          (Ebp_util.Text_table.render ~header:[ "kind"; "bytes"; "file" ] ~rows
             ());
      (* Per-kind breakdown in a fixed order (skipping absent kinds), so
         the columnar sidecars' disk cost is visible at a glance. *)
      List.iter
        (fun kind ->
          let n, bytes =
            List.fold_left
              (fun (n, b) e ->
                if e.Ebp_trace.Trace_cache.entry_kind = kind then
                  (n + 1, b + e.Ebp_trace.Trace_cache.entry_bytes)
                else (n, b))
              (0, 0) entries
          in
          if n > 0 then
            Printf.printf "%-8s %d entries, %d bytes\n" (kind_name kind) n
              bytes)
        [
          Ebp_trace.Trace_cache.Trace_entry;
          Ebp_trace.Trace_cache.Index_entry;
          Ebp_trace.Trace_cache.Columnar_entry;
          Ebp_trace.Trace_cache.Tmp_entry;
          Ebp_trace.Trace_cache.Corrupt_entry;
        ];
      let total =
        List.fold_left
          (fun acc e -> acc + e.Ebp_trace.Trace_cache.entry_bytes)
          0 entries
      in
      Printf.printf "%d entries, %d bytes\n" (List.length entries) total
    in
    Cmd.v (Cmd.info "ls" ~doc) Term.(const f $ cache_dir_arg)
  in
  let report (removed, reclaimed) =
    Printf.printf "removed %d entries, reclaimed %d bytes\n" removed reclaimed
  in
  let clear_cmd =
    let doc = "Remove every cache entry (temp files included)." in
    let f cache_dir metrics =
      with_obs ~metrics ~trace_events:None @@ fun () ->
      report (Ebp_trace.Trace_cache.clear ~dir:(dir_of cache_dir))
    in
    Cmd.v (Cmd.info "clear" ~doc) Term.(const f $ cache_dir_arg $ metrics_arg)
  in
  let gc_cmd =
    let doc =
      "Garbage-collect the cache: drop orphaned temp files, then evict \
       oldest entries until the cache fits in $(b,--max-bytes)."
    in
    let max_bytes_arg =
      Arg.(
        required
        & opt (some int) None
        & info [ "max-bytes" ] ~docv:"N"
            ~doc:"Target size for the cache directory, in bytes.")
    in
    let f cache_dir max_bytes metrics =
      if max_bytes < 0 then exit_err "--max-bytes must be non-negative";
      with_obs ~metrics ~trace_events:None @@ fun () ->
      report (Ebp_trace.Trace_cache.gc ~dir:(dir_of cache_dir) ~max_bytes)
    in
    Cmd.v (Cmd.info "gc" ~doc)
      Term.(const f $ cache_dir_arg $ max_bytes_arg $ metrics_arg)
  in
  let verify_cmd =
    let doc =
      "Check the integrity (checksum trailer and full decode) of every \
       cache entry, quarantining the corrupt ones as $(b,*.corrupt). Exits \
       1 when corruption was found."
    in
    let no_quarantine_arg =
      Arg.(
        value & flag
        & info [ "no-quarantine" ]
            ~doc:"Only report corrupt entries, do not rename them.")
    in
    let f cache_dir no_quarantine metrics =
      (* verify prints its own report; silence the stderr hook. *)
      Ebp_trace.Trace_cache.set_quarantine_log (fun ~file:_ ~reason:_ -> ());
      with_obs ~metrics ~trace_events:None @@ fun () ->
      let r =
        Ebp_trace.Trace_cache.verify ~quarantine:(not no_quarantine)
          ~dir:(dir_of cache_dir) ()
      in
      List.iter
        (fun (file, reason) ->
          Printf.printf "corrupt: %s (%s)%s\n" file reason
            (if no_quarantine then "" else " -> quarantined"))
        r.Ebp_trace.Trace_cache.corrupt;
      Printf.printf "%d entries checked: %d intact, %d corrupt, %d temp files\n"
        r.Ebp_trace.Trace_cache.checked r.Ebp_trace.Trace_cache.intact
        (List.length r.Ebp_trace.Trace_cache.corrupt)
        r.Ebp_trace.Trace_cache.tmp_litter;
      if r.Ebp_trace.Trace_cache.corrupt <> [] then exit 1
    in
    Cmd.v (Cmd.info "verify" ~doc)
      Term.(const f $ cache_dir_arg $ no_quarantine_arg $ metrics_arg)
  in
  let doc = "Inspect, garbage-collect, and integrity-check the on-disk trace cache." in
  Cmd.group (Cmd.info "cache" ~doc) [ ls_cmd; clear_cmd; gc_cmd; verify_cmd ]

(* --- fuzz --- *)

let fuzz_cmd =
  let doc =
    "Differential fuzzing: run generated MiniC programs through the \
     record / run-vs-record / step-vs-run / codec round-trip / \
     scan-vs-indexed / query-engines oracles, shrinking any failure to a \
     minimal reproducer. The $(b,--gen-*) knobs turn the generator into \
     a workload synthesizer (more events, heap churn, or monitored \
     globals per program)."
  in
  let seeds_arg =
    Arg.(
      value & opt int 100
      & info [ "seeds" ] ~docv:"N" ~doc:"Number of seeds to check.")
  in
  let start_arg =
    Arg.(
      value & opt int 0
      & info [ "start" ] ~docv:"S"
          ~doc:"First seed; the run covers seeds $(docv) .. $(docv)+N-1.")
  in
  let fuel_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "fuel" ] ~docv:"N"
          ~doc:"Instruction budget per execution (default 2,000,000).")
  in
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-failure" ] ~docv:"FILE"
          ~doc:
            "On failure, write the shrunk reproducer source to $(docv) \
             instead of stdout.")
  in
  let no_shrink_arg =
    Arg.(
      value & flag
      & info [ "no-shrink" ]
          ~doc:"Report the original failing program without shrinking it.")
  in
  let gen_events_arg =
    Arg.(
      value & opt int 0
      & info [ "gen-events" ] ~docv:"N"
          ~doc:
            "Append $(docv) hot write loops (~2k writes each) to every \
             generated program; raise $(b,--fuel) accordingly.")
  in
  let gen_heap_churn_arg =
    Arg.(
      value & opt int 0
      & info [ "gen-heap-churn" ] ~docv:"N"
          ~doc:"Append $(docv) malloc / write-loop / free groups.")
  in
  let gen_session_density_arg =
    Arg.(
      value & opt int 0
      & info [ "gen-session-density" ] ~docv:"N"
          ~doc:"Add $(docv) extra monitored globals, each with writes.")
  in
  let f seeds start fuel save no_shrink gen_events gen_heap_churn
      gen_session_density =
    if seeds < 0 then exit_err "--seeds must be non-negative";
    if gen_events < 0 || gen_heap_churn < 0 || gen_session_density < 0 then
      exit_err "--gen-* knobs must be non-negative";
    let knobs =
      { Ebp_core.Fuzz.gen_events; gen_heap_churn; gen_session_density }
    in
    let failure = ref None in
    (try
       for seed = start to start + seeds - 1 do
         match Ebp_core.Fuzz.check_seed ?fuel ~knobs seed with
         | Ok () ->
             let done_ = seed - start + 1 in
             if done_ mod 100 = 0 && done_ < seeds then
               Printf.eprintf "fuzz: %d/%d seeds ok\n%!" done_ seeds
         | Error f ->
             failure := Some f;
             raise Exit
       done
     with Exit -> ());
    match !failure with
    | None -> Printf.printf "fuzz: %d seeds, all oracles held\n" seeds
    | Some f ->
        Printf.eprintf "fuzz: seed %d failed oracle %s (%s)%s\n%!"
          f.Ebp_core.Fuzz.seed f.Ebp_core.Fuzz.oracle f.Ebp_core.Fuzz.detail
          (if no_shrink then "" else "; shrinking");
        let f = if no_shrink then f else Ebp_core.Fuzz.shrink ?fuel f in
        let reproducer =
          Printf.sprintf "// seed %d, oracle %s: %s\n%s%s" f.Ebp_core.Fuzz.seed
            f.Ebp_core.Fuzz.oracle f.Ebp_core.Fuzz.detail
            ((match f.Ebp_core.Fuzz.query with
             | Some q -> Printf.sprintf "// query: %s\n" q
             | None -> "")
            ^
            match f.Ebp_core.Fuzz.monitors with
            | Some ms -> Printf.sprintf "// monitors: %s\n" (String.concat " " ms)
            | None -> "")
            f.Ebp_core.Fuzz.source
        in
        (match save with
        | Some path ->
            write_file path reproducer;
            Printf.eprintf "fuzz: reproducer written to %s\n" path
        | None -> print_string reproducer);
        exit 1
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const f $ seeds_arg $ start_arg $ fuel_arg $ save_arg $ no_shrink_arg
      $ gen_events_arg $ gen_heap_churn_arg $ gen_session_density_arg)

(* --- travel --- *)

let travel_cmd =
  let doc =
    "Time-travel to a trace timestamp: restore the machine from the nearest \
     checkpoint of a recorded run and seek forward, timed against a full \
     step-0 replay of the same prefix. Both paths must reach a bit-identical \
     machine state (docs/STREAMING.md) — the command fails if the state \
     digests differ."
  in
  let event_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "event" ] ~docv:"W"
          ~doc:"Target trace timestamp (event count) to travel to.")
  in
  let every_arg =
    Arg.(
      value & opt int 100_000
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Checkpoint cadence in trace events when recording the run.")
  in
  let cached_arg =
    Arg.(
      value & flag
      & info [ "cached" ]
          ~doc:
            "Consult the trace cache for a stored checkpoint chain; record \
             the run and store one otherwise.")
  in
  let f target event every cached cache_dir faults metrics trace_events =
    with_faults faults @@ fun () ->
    with_obs ~metrics ~trace_events @@ fun () ->
    if event < 0 then exit_err "--event must be non-negative";
    if every <= 0 then exit_err "--checkpoint-every must be positive";
    match source_of_arg target with
    | Error msg -> exit_err msg
    | Ok (source, seed) -> (
        match Ebp_lang.Compiler.compile source with
        | Error msg -> exit_err msg
        | Ok compiled ->
            let module Ckpt = Ebp_trace.Checkpoint in
            let load () = Ebp_runtime.Loader.load ~seed compiled in
            let record_chain () =
              (* The stream bytes are discarded: travel only needs the
                 checkpoint chain, and the writer's event counter is the
                 checkpoint cadence clock. *)
              let writer =
                Ebp_trace.Stream.Writer.create ~write:(fun _ -> ()) ()
              in
              let loader = load () in
              let recorder = Ebp_trace.Recorder.attach_stream writer loader in
              let chain = Ckpt.create () in
              Ckpt.track loader;
              ignore
                (Ckpt.run_with_checkpoints ~every
                   ~events:(fun () -> Ebp_trace.Stream.Writer.events writer)
                   ~nobjs:(fun () ->
                     Ebp_trace.Stream.Writer.object_count writer)
                   chain loader recorder);
              Ebp_trace.Recorder.finish_events recorder;
              Ebp_trace.Stream.Writer.finish writer;
              chain
            in
            let chain =
              if not cached then record_chain ()
              else begin
                let dir =
                  Option.value cache_dir
                    ~default:(Ebp_trace.Trace_cache.default_dir ())
                in
                let key =
                  Ebp_trace.Trace_cache.make_key ~name:target ~source ~seed ()
                in
                match Ebp_trace.Trace_cache.lookup_checkpoints ~dir ~key with
                | Some chain ->
                    Printf.eprintf "checkpoints: cache hit (%d entries)\n"
                      (Ckpt.count chain);
                    chain
                | None ->
                    let chain = record_chain () in
                    (match
                       Ebp_trace.Trace_cache.store_checkpoints ~dir ~key chain
                     with
                    | Ok () ->
                        Printf.eprintf
                          "checkpoints: recorded and cached (%d entries)\n"
                          (Ckpt.count chain)
                    | Error msg ->
                        Printf.eprintf
                          "checkpoints: recorded; cache store failed: %s\n" msg);
                    chain
              end
            in
            let time f =
              let t0 = Unix.gettimeofday () in
              let r = f () in
              (r, (Unix.gettimeofday () -. t0) *. 1000.)
            in
            let digest0, step0_ms =
              time (fun () ->
                  let loader = load () in
                  let counters = { Ebp_trace.Recorder.c_events = 0; c_objs = 0 } in
                  ignore
                    (Ebp_trace.Recorder.attach_sink
                       (Ebp_trace.Recorder.counting_sink counters)
                       loader);
                  ignore (Ckpt.seek loader counters ~event);
                  Ckpt.state_digest loader counters)
            in
            let restart, restart_ms =
              time (fun () ->
                  match Ckpt.restore chain ~event ~load with
                  | None -> None
                  | Some r ->
                      let from = r.Ckpt.rs_counters.Ebp_trace.Recorder.c_events in
                      ignore
                        (Ckpt.seek r.Ckpt.rs_loader r.Ckpt.rs_counters ~event);
                      Some
                        ( from,
                          Ckpt.state_digest r.Ckpt.rs_loader r.Ckpt.rs_counters
                        ))
            in
            match restart with
            | None ->
                Printf.printf
                  "travel to event %d: no checkpoint precedes it (chain of \
                   %d); step-0 replay took %.1f ms\n"
                  event (Ckpt.count chain) step0_ms
            | Some (from, digest) ->
                Printf.printf
                  "travel to event %d: restart from checkpoint at event %d \
                   (chain of %d)\n\
                  \  checkpoint restart: %8.1f ms\n\
                  \  step-0 replay:      %8.1f ms\n\
                  \  speedup: %.1fx\n"
                  event from (Ckpt.count chain) restart_ms step0_ms
                  (step0_ms /. Float.max 1e-6 restart_ms);
                if digest <> digest0 then
                  exit_err
                    (Printf.sprintf
                       "state digests differ (restart %s, step-0 %s): \
                        checkpoint restore is not equivalent"
                       digest digest0)
                else print_endline "  state digests match")
  in
  Cmd.v (Cmd.info "travel" ~doc)
    Term.(
      const f $ target_arg $ event_arg $ every_arg $ cached_arg $ cache_dir_arg
      $ faults_arg $ metrics_arg $ trace_events_arg)

(* --- serve / client --- *)

module Proto = Ebp_serve.Protocol

let default_socket_path () =
  match Sys.getenv_opt "XDG_RUNTIME_DIR" with
  | Some d when d <> "" -> Filename.concat d "ebp.sock"
  | _ ->
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "ebp-%d.sock" (Unix.getuid ()))

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Unix-domain socket the service listens on (default: \
           \\$XDG_RUNTIME_DIR/ebp.sock, else a per-user socket in the \
           temp directory).")

let serve_cmd =
  let doc =
    "Run the resident trace service: a long-running daemon holding an LRU \
     of decoded traces and write indices, answering concurrent \
     $(b,ebp client) queries over a Unix-domain socket with bounded \
     admission, per-tenant fairness, and batch coalescing. The wire \
     protocol and ops runbook are in docs/SERVICE.md."
  in
  let queue_limit_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-limit" ] ~docv:"N"
          ~doc:
            "Admission-queue bound: at most $(docv) queries wait at once; \
             the rest are refused with an explicit Overloaded response \
             instead of buffering without bound.")
  in
  let lru_arg =
    Arg.(
      value & opt int 8
      & info [ "lru-capacity" ] ~docv:"N"
          ~doc:
            "How many decoded traces (with their write indices) stay \
             resident in memory; least-recently-used entries are evicted \
             past $(docv).")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Domain-pool width: each replay is sharded across $(docv) \
             domains, shared by all requests.")
  in
  let f socket queue_limit lru jobs cache_dir metrics faults =
    if queue_limit < 1 then exit_err "--queue-limit must be at least 1";
    if lru < 1 then exit_err "--lru-capacity must be at least 1";
    if jobs < 1 then exit_err "--jobs must be at least 1";
    let socket_path = Option.value socket ~default:(default_socket_path ()) in
    with_faults faults @@ fun () ->
    (* The daemon always runs with metrics on: the runbook's signals and
       the Stats_query response are served from this registry. *)
    Ebp_obs.Metrics.set_enabled true;
    let config =
      {
        Ebp_serve.Server.Core.queue_limit;
        lru_capacity = lru;
        domains = jobs;
        cache_dir;
        server_name = "ebp serve/1.0.0";
      }
    in
    let on_ready () =
      Printf.eprintf "ebp serve: listening on %s (pid %d)\n%!" socket_path
        (Unix.getpid ())
    in
    match Ebp_serve.Server.serve ~on_ready ~socket_path config () with
    | Error msg -> exit_err msg
    | Ok () ->
        Printf.eprintf "ebp serve: drained and stopped\n%!";
        Option.iter
          (fun path ->
            write_file path
              (Ebp_obs.Export.to_ndjson (Ebp_obs.Metrics.snapshot ())))
          metrics
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const f $ socket_arg $ queue_limit_arg $ lru_arg $ jobs_arg
      $ cache_dir_arg $ metrics_arg $ faults_arg)

let client_cmd =
  let tenant_arg =
    Arg.(
      value & opt string "default"
      & info [ "tenant" ] ~docv:"NAME"
          ~doc:
            "Tenant identity sent in the Hello frame; the server schedules \
             fairly across tenants and keeps per-tenant latency \
             histograms.")
  in
  let run_request socket tenant req on_ok =
    let socket_path = Option.value socket ~default:(default_socket_path ()) in
    match
      Ebp_serve.Client.with_client ~tenant ~socket_path (fun c ->
          Ebp_serve.Client.request c req)
    with
    | Error msg -> exit_err msg
    | Ok (Proto.Error_resp { code; message }) ->
        exit_err
          (Printf.sprintf "server error (%s): %s"
             (Proto.error_code_name code)
             message)
    | Ok (Proto.Overloaded { queued; limit }) ->
        exit_err
          (Printf.sprintf "server overloaded (%d queued, limit %d); retry later"
             queued limit)
    | Ok resp -> on_ok resp
  in
  let unexpected () = exit_err "unexpected response type from server" in
  let ping_cmd =
    let doc = "Round-trip one Ping frame." in
    let f socket tenant =
      run_request socket tenant Proto.Ping (function
        | Proto.Pong -> print_endline "pong"
        | _ -> unexpected ())
    in
    Cmd.v (Cmd.info "ping" ~doc) Term.(const f $ socket_arg $ tenant_arg)
  in
  let sessions_cmd =
    let doc =
      "Run a phase-2 session query on the server and print the report — \
       byte-identical to $(b,ebp sessions) for the same program."
    in
    let all_arg =
      Arg.(
        value & flag
        & info [ "all" ] ~doc:"Include sessions with zero monitor hits.")
    in
    let f socket tenant target all engine =
      match source_of_arg target with
      | Error msg -> exit_err msg
      | Ok (source, seed) ->
          let engine =
            match engine with
            | None -> "auto"
            | Some Ebp_sessions.Replay.Indexed -> "indexed"
            | Some Ebp_sessions.Replay.Scan -> "scan"
          in
          run_request socket tenant
            (Proto.Sessions_query
               { name = target; source; seed; engine; keep_hitless = all })
            (function
              | Proto.Report text -> print_string text
              | _ -> unexpected ())
    in
    Cmd.v (Cmd.info "sessions" ~doc)
      Term.(
        const f $ socket_arg $ tenant_arg $ target_arg $ all_arg $ engine_arg)
  in
  let experiment_cmd =
    let doc =
      "Run the experiment on the server and print one artifact — \
       byte-identical to $(b,ebp experiment)."
    in
    let only_arg =
      Arg.(
        value
        & opt (some string) None
        & info [ "only" ] ~docv:"ARTIFACT"
            ~doc:
              "Print a single artifact: table1, table2, table3, table4, \
               fig7, fig8, fig9, breakdown, expansion.")
    in
    let workloads_arg =
      Arg.(
        value
        & opt (some (list string)) None
        & info [ "workloads" ] ~docv:"NAMES"
            ~doc:"Comma-separated subset of workloads to run.")
    in
    let f socket tenant only workloads =
      let artifact = Option.value only ~default:"full" in
      let workloads = Option.value workloads ~default:[] in
      run_request socket tenant
        (Proto.Experiment_query { workloads; artifact })
        (function
          | Proto.Report text -> print_string text
          | _ -> unexpected ())
    in
    Cmd.v (Cmd.info "experiment" ~doc)
      Term.(const f $ socket_arg $ tenant_arg $ only_arg $ workloads_arg)
  in
  let query_cmd =
    let doc =
      "Run a trace query on the server and print the result — \
       byte-identical to $(b,ebp query) for the same program and \
       expression (docs/QUERY.md)."
    in
    let expr_arg =
      Arg.(required & pos 1 (some string) None & info [] ~docv:"EXPR")
    in
    let engine_arg =
      Arg.(
        value
        & opt (enum [ ("auto", "auto"); ("indexed", "indexed"); ("scan", "scan") ])
            "auto"
        & info [ "engine" ] ~docv:"ENGINE"
            ~doc:"Query engine: $(b,auto), $(b,indexed), or $(b,scan).")
    in
    let format_arg =
      Arg.(
        value
        & opt (enum [ ("table", "table"); ("ndjson", "ndjson") ]) "table"
        & info [ "format" ] ~docv:"FORMAT"
            ~doc:"Output format: $(b,table) or $(b,ndjson).")
    in
    let f socket tenant target expr engine format =
      match source_of_arg target with
      | Error msg -> exit_err msg
      | Ok (source, seed) ->
          run_request socket tenant
            (Proto.Query { name = target; source; seed; expr; engine; format })
            (function
              | Proto.Report text -> print_string text
              | _ -> unexpected ())
    in
    Cmd.v (Cmd.info "query" ~doc)
      Term.(
        const f $ socket_arg $ tenant_arg $ target_arg $ expr_arg $ engine_arg
        $ format_arg)
  in
  let live_query_cmd =
    let doc =
      "Run a query against the server's $(i,live) streaming recording of a \
       program: the server advances the recording past $(b,--min-events), \
       then answers over the sealed prefix. The report carries an explicit \
       high-water mark (printed to stderr); once the recording completes it \
       is byte-identical to $(b,ebp client query) (docs/STREAMING.md)."
    in
    let expr_arg =
      Arg.(required & pos 1 (some string) None & info [] ~docv:"EXPR")
    in
    let format_arg =
      Arg.(
        value
        & opt (enum [ ("table", "table"); ("ndjson", "ndjson") ]) "table"
        & info [ "format" ] ~docv:"FORMAT"
            ~doc:"Output format: $(b,table) or $(b,ndjson).")
    in
    let min_events_arg =
      Arg.(
        value & opt int 0
        & info [ "min-events" ] ~docv:"N"
            ~doc:
              "Advance the recording until its sealed prefix strictly \
               exceeds $(docv) events (or the run completes). Pass the \
               previous reply's high-water mark to poll for progress.")
    in
    let f socket tenant target expr format min_events =
      match source_of_arg target with
      | Error msg -> exit_err msg
      | Ok (source, seed) ->
          run_request socket tenant
            (Proto.Live_query
               { name = target; source; seed; expr; format; min_events })
            (function
              | Proto.Live_report { report; high_water; complete } ->
                  Printf.eprintf "live: high_water=%d complete=%b\n" high_water
                    complete;
                  print_string report
              | _ -> unexpected ())
    in
    Cmd.v (Cmd.info "live-query" ~doc)
      Term.(
        const f $ socket_arg $ tenant_arg $ target_arg $ expr_arg $ format_arg
        $ min_events_arg)
  in
  let stats_cmd =
    let doc =
      "Fetch the server's live metrics snapshot and render it as tables \
       (or dump the raw NDJSON with $(b,--raw))."
    in
    let raw_arg =
      Arg.(
        value & flag
        & info [ "raw" ]
            ~doc:"Print the NDJSON snapshot instead of rendered tables.")
    in
    let f socket tenant raw =
      run_request socket tenant Proto.Stats_query (function
        | Proto.Stats ndjson -> (
            if raw then print_string ndjson
            else
              match Ebp_obs.Export.of_ndjson ndjson with
              | Error msg -> exit_err ("bad snapshot from server: " ^ msg)
              | Ok snapshot ->
                  print_string (Ebp_util.Obs_report.render snapshot))
        | _ -> unexpected ())
    in
    Cmd.v (Cmd.info "stats" ~doc)
      Term.(const f $ socket_arg $ tenant_arg $ raw_arg)
  in
  let shutdown_cmd =
    let doc =
      "Ask the server to shut down gracefully: it stops accepting, drains \
       queued queries, flushes replies, and exits."
    in
    let f socket tenant =
      run_request socket tenant Proto.Shutdown (function
        | Proto.Shutdown_ack -> print_endline "server shutting down"
        | _ -> unexpected ())
    in
    Cmd.v (Cmd.info "shutdown" ~doc) Term.(const f $ socket_arg $ tenant_arg)
  in
  let doc = "Query a running $(b,ebp serve) daemon over its socket." in
  Cmd.group (Cmd.info "client" ~doc)
    [
      ping_cmd; sessions_cmd; query_cmd; live_query_cmd; experiment_cmd;
      stats_cmd; shutdown_cmd;
    ]

(* --- debug --- *)

let debug_cmd =
  let doc = "Interactive watchpoint debugger (scriptable via a pipe)." in
  let f target seed =
    match source_of_arg target with
    | Error msg -> exit_err msg
    | Ok (source, default_seed) ->
        exit (Debug_repl.run ~source ~seed:(Option.value ~default:default_seed seed))
  in
  Cmd.v (Cmd.info "debug" ~doc) Term.(const f $ target_arg $ seed_arg)

(* --- disasm --- *)

let disasm_cmd =
  let doc = "Compile a MiniC program and print its assembly listing." in
  let patch_arg =
    Arg.(
      value
      & opt (some (enum [ ("tp", `Tp); ("cp", `Cp); ("hcp", `Hcp) ])) None
      & info [ "patch" ] ~docv:"STRATEGY"
          ~doc:
            "Show the program after an instrumentation pass: $(b,tp) \
             (TrapPatch), $(b,cp) (CodePatch), or $(b,hcp) (CodePatch with \
             loop hoisting).")
  in
  let f target patch =
    match source_of_arg target with
    | Error msg -> exit_err msg
    | Ok (source, _seed) -> (
        match Ebp_lang.Compiler.compile source with
        | Error msg -> exit_err msg
        | Ok compiled ->
            let base = compiled.Ebp_lang.Compiler.program in
            let program =
              match patch with
              | None -> base
              | Some `Tp -> Ebp_wms.Trap_patch.program (Ebp_wms.Trap_patch.instrument base)
              | Some `Cp -> Ebp_wms.Code_patch.program (Ebp_wms.Code_patch.instrument base)
              | Some `Hcp ->
                  let patched = Ebp_wms.Hoisted_code_patch.instrument base in
                  Printf.eprintf "; %d stores, %d hoisted, %d loops optimized\n"
                    (Ebp_wms.Hoisted_code_patch.patched_stores patched)
                    (Ebp_wms.Hoisted_code_patch.hoisted_stores patched)
                    (Ebp_wms.Hoisted_code_patch.loops_optimized patched);
                  Ebp_wms.Hoisted_code_patch.program patched
            in
            print_string (Ebp_isa.Asm.print program))
  in
  Cmd.v (Cmd.info "disasm" ~doc) Term.(const f $ target_arg $ patch_arg)

let () =
  (* Corruption should be visible wherever a command trips over it. *)
  Ebp_trace.Trace_cache.set_quarantine_log (fun ~file ~reason ->
      Printf.eprintf "ebp: quarantined corrupt cache entry %s (%s)\n%!" file
        reason);
  let doc = "Efficient data breakpoints: write-monitor-service experiment" in
  let info = Cmd.info "ebp" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; run_cmd; trace_cmd; sessions_cmd; query_cmd; travel_cmd;
            experiment_cmd; serve_cmd; client_cmd; stats_cmd; cache_cmd;
            fuzz_cmd; disasm_cmd; debug_cmd;
          ]))
