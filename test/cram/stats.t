Observability end to end: --metrics writes an NDJSON snapshot, --trace-events
writes Chrome trace-event JSON, ebp stats renders a snapshot as tables, and
ebp cache inspects and garbage-collects the trace cache. Counters on the
simulated machine are exact, so everything below is stable; only wall-clock
durations are scrubbed.

  $ cat > obs.mc <<'MC'
  > int g;
  > int main() {
  >   int i;
  >   for (i = 0; i < 20; i = i + 1) { g = g + i; }
  >   print_int(g);
  >   return 0;
  > }
  > MC

A replay with metrics and spans enabled. Without --engine the
cost-based planner picks one; on a trace this small it picks the scan
engine, and the decision lands in the counters below:

  $ ebp sessions obs.mc --metrics m.ndjson --trace-events te.json | tail -n 1
  3 sessions

The snapshot leads with a format line and holds one JSON object per metric:

  $ head -n 1 m.ndjson
  {"type":"meta","format":"ebp-metrics","version":1}
  $ grep -c '"type":"counter"' m.ndjson > /dev/null && echo has-counters
  has-counters

ebp stats renders it. The counters table is exact on the simulated
machine; the timings table is wall-clock, so we only check which span
histograms it carries.

  $ ebp stats m.ndjson | sed -n '1,/^$/p'
  counters
  counter                              value  per-domain
  -----------------------------------  -----  ----------
  checkpoint.pages                         0            
  checkpoint.restores                      0            
  checkpoint.skipped                       0            
  checkpoint.taken                         0            
  fault.checkpoint.store                   0            
  fault.loader.run                         0            
  fault.pool.task                          0            
  fault.query.compile                      0            
  fault.query.parse                        0            
  fault.serve.accept                       0            
  fault.serve.frame.decode                 0            
  fault.serve.read                         0            
  fault.serve.write                        0            
  fault.stream.index_merge                 0            
  fault.stream.seal                        0            
  fault.trace.codec.decode                 0            
  fault.trace.codec.map                    0            
  fault.trace_cache.lookup.data            0            
  fault.trace_cache.store.data             0            
  fault.trace_cache.store.io               0            
  fault.trace_cache.store.kill_rename      0            
  fault.trace_cache.store.kill_tmp         0            
  fault.trace_cache.store.kill_write       0            
  fault.write_index.codec.decode           0            
  index.build.chunks                       0            
  index.incremental.blocks                 0            
  index.incremental.degraded               0            
  loader.cycles                          439            
  loader.instructions                    291            
  loader.runs                              1            
  machine.steps                          291            
  machine.stores                          44            
  phase1.events                            0            
  phase1.runs                              0            
  planner.decision.build                   0            
  planner.decision.checkpoint_restart      0            
  planner.decision.partial_index           0            
  planner.decision.reuse                   0            
  planner.decision.scan                    1            
  pool.busy_ns                             0            
  pool.task_retries                        0            
  pool.tasks                               0            
  query.parse_errors                       0            
  query.runs                               0            
  replay.indexed.range_queries             0            
  replay.indexed.segments                  0            
  replay.scan.blocks_skipped               0            
  replay.scan.writes                      41            
  replay.scan.writes_skipped               0            
  replay.sessions                          3            
  replay.shards                            1            
  serve.accepts                            0            
  serve.batches                            0            
  serve.bytes_in                           0            
  serve.bytes_out                          0            
  serve.coalesced                          0            
  serve.conn_errors                        0            
  serve.live.advances                      0            
  serve.live.completed                     0            
  serve.live.jobs                          0            
  serve.overloaded                         0            
  serve.queries                            0            
  serve.requests                           0            
  serve.store.cold_records                 0            
  serve.store.disk_hits                    0            
  serve.store.evictions                    0            
  serve.store.warm_hits                    0            
  stream.blocks_sealed                     0            
  stream.events_sealed                     0            
  stream.seal.retries                      0            
  trace.codec.bytes_in                     0            
  trace.codec.bytes_out                    0            
  trace.codec.columnar_bytes_out           0            
  trace.codec.mapped_bytes                 0            
  trace_cache.bytes_read                   0            
  trace_cache.bytes_written                0            
  trace_cache.checkpoint_hits              0            
  trace_cache.checkpoint_misses            0            
  trace_cache.gc_reclaimed_bytes           0            
  trace_cache.gc_removed                   0            
  trace_cache.hits                         0            
  trace_cache.index_hits                   0            
  trace_cache.index_misses                 0            
  trace_cache.mapped_hits                  0            
  trace_cache.misses                       0            
  trace_cache.quarantined                  0            
  trace_cache.store_retries                0            
  
  $ ebp stats m.ndjson | grep -oE 'span\.[a-z._]+' | sort
  span.loader.run
  span.replay.scan.shard

The trace-event export is the Chrome array format: one complete event
per span plus per-domain metadata records.

  $ grep -o '"ph":"X"' te.json | wc -l | tr -d ' '
  2
  $ grep -o '"ph":"M"' te.json | wc -l | tr -d ' '
  2
  $ grep -o '"name":"replay.scan.shard"' te.json | wc -l | tr -d ' '
  1

The cache subcommand. A cold cached trace run stores the canonical
entry plus its mmap'able columnar sidecar, and ls breaks the disk cost
down per artifact type:

  $ ebp trace obs.mc --cached --cache-dir cache --metrics cold.ndjson 2>/dev/null >/dev/null
  $ grep '"name":"trace_cache.misses"' cold.ndjson | grep -o '"value":[0-9]*'
  "value":1
  $ ebp cache ls --cache-dir cache | grep entries | sed -E 's/[0-9]+ bytes/N bytes/'
  trace    1 entries, N bytes
  columnar 1 entries, N bytes
  2 entries, N bytes

A warm run hits it:

  $ ebp trace obs.mc --cached --cache-dir cache --metrics warm.ndjson 2>/dev/null >/dev/null
  $ grep '"name":"trace_cache.hits"' warm.ndjson | grep -o '"value":[0-9]*'
  "value":1

gc to a zero-byte budget evicts everything — the entry and its sidecar
go together — and reports what it reclaimed, through both the exit
message and the gc metrics:

  $ ebp cache gc --cache-dir cache --max-bytes 0 --metrics gc.ndjson | sed -E 's/reclaimed [0-9]+ bytes/reclaimed N bytes/'
  removed 2 entries, reclaimed N bytes
  $ grep '"name":"trace_cache.gc_removed"' gc.ndjson | grep -o '"value":[0-9]*'
  "value":2
  $ ebp cache ls --cache-dir cache
  0 entries, 0 bytes
  $ ebp cache clear --cache-dir cache
  removed 0 entries, reclaimed 0 bytes
