module Interval = Ebp_util.Interval

type event =
  | Install of { obj : Object_desc.t; range : Interval.t }
  | Remove of { obj : Object_desc.t; range : Interval.t }
  | Write of { range : Interval.t; pc : int }

(* Packed storage: 4 ints per event — tagged object word, lo, hi, pc.
   The tag lives in the low 2 bits of the first word; the object id (or 0
   for writes) in the remaining bits. *)
let stride = 4
let tag_install = 0
let tag_remove = 1
let tag_write = 2

(* Two physical layouts behind one abstract type:

   - [Heap]: the classic interleaved [int array] (4 ints per event). The
     builder, the text codec, and the EBPT2 binary decoder all produce
     this form.
   - [Mapped]: the EBPT3 columnar form — four struct-of-arrays columns
     read in place from an mmap'd file as int Bigarrays, plus per-block
     min/max summaries. Nothing is decoded on load and nothing lives on
     the OCaml heap except the (small) object side table, so a mapped
     trace is shareable read-only across domains and across server
     tenants for free. See the EBPT3 codec comment below. *)

type int_column = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type mapped = {
  m_w0 : int_column;
  m_lo : int_column;
  m_hi : int_column;
  m_pc : int_column;
  (* 4 ints per block: install/remove count, write count, min write lo,
     max write hi. *)
  m_summaries : int_column;
  m_block_events : int;
  (* Bounds of every install/remove range in the trace ([max_int] /
     [min_int] when there are none): anything a session can monitor lies
     inside, so a pure-write block disjoint from these bounds cannot
     produce hits or page touches. *)
  m_install_lo : int;
  m_install_hi : int;
}

type storage = Heap of int array | Mapped of mapped

type t = {
  storage : storage;
  count : int;
  objs : Object_desc.t array;
}

module Builder = struct
  type builder = {
    mutable data : int array;
    mutable count : int;
    mutable objs : Object_desc.t list;  (* reversed *)
    mutable obj_count : int;
    intern : (Object_desc.t, int) Hashtbl.t;
  }

  type t = builder

  let create ?(hint = 1024) () =
    { data = Array.make (max 16 hint * stride) 0; count = 0; objs = [];
      obj_count = 0; intern = Hashtbl.create 64 }

  let ensure b =
    let needed = (b.count + 1) * stride in
    if needed > Array.length b.data then begin
      let bigger = Array.make (max needed (2 * Array.length b.data)) 0 in
      Array.blit b.data 0 bigger 0 (b.count * stride);
      b.data <- bigger
    end

  (* [register] appends without consulting the intern table: the recorder
     mints a fresh descriptor per activation, so an intern lookup would
     hash two strings only to miss. Callers that might see the same
     descriptor twice go through [intern] instead; both draw ids from the
     same sequence, so they can be mixed as long as no descriptor is fed
     to both. *)
  let register b obj =
    let id = b.obj_count in
    b.objs <- obj :: b.objs;
    b.obj_count <- id + 1;
    id

  let intern b obj =
    match Hashtbl.find_opt b.intern obj with
    | Some id -> id
    | None ->
        let id = register b obj in
        Hashtbl.add b.intern obj id;
        id

  let push b w0 lo hi pc =
    ensure b;
    let base = b.count * stride in
    b.data.(base) <- w0;
    b.data.(base + 1) <- lo;
    b.data.(base + 2) <- hi;
    b.data.(base + 3) <- pc;
    b.count <- b.count + 1

  let add_install_id b id ~lo ~hi = push b ((id lsl 2) lor tag_install) lo hi (-1)

  let add_remove_id b id ~lo ~hi = push b ((id lsl 2) lor tag_remove) lo hi (-1)

  let add_install b obj range =
    add_install_id b (intern b obj) ~lo:(Interval.lo range) ~hi:(Interval.hi range)

  let add_remove b obj range =
    add_remove_id b (intern b obj) ~lo:(Interval.lo range) ~hi:(Interval.hi range)

  let add_write b range ~pc =
    push b tag_write (Interval.lo range) (Interval.hi range) pc

  let add_write_raw b ~lo ~hi ~pc = push b tag_write lo hi pc

  let length b = b.count
  let object_count b = b.obj_count

  let finish b =
    let used = b.count * stride in
    {
      (* A well-hinted builder lands exactly full: hand the buffer over
         without the copy. The builder must not be reused after. *)
      storage =
        Heap
          (if Array.length b.data = used then b.data
           else Array.sub b.data 0 used);
      count = b.count;
      objs = Array.of_list (List.rev b.objs);
    }
end

let length t = t.count
let is_mapped t = match t.storage with Mapped _ -> true | Heap _ -> false

let install_bounds t =
  match t.storage with
  | Mapped m when m.m_install_lo <= m.m_install_hi ->
      Some (m.m_install_lo, m.m_install_hi)
  | _ -> None

(* Column access, one closure per column: cold consumers (the codecs,
   [get]) dispatch on the storage once and then read either layout
   through the same shape. The hot iterators below specialize the whole
   loop per layout instead. *)
let column_getter t j =
  match t.storage with
  | Heap data -> fun i -> Array.unsafe_get data ((i * stride) + j)
  | Mapped m ->
      let c =
        match j with
        | 0 -> m.m_w0
        | 1 -> m.m_lo
        | 2 -> m.m_hi
        | _ -> m.m_pc
      in
      fun i -> Bigarray.Array1.unsafe_get c i

let get t i =
  if i < 0 || i >= t.count then invalid_arg "Trace.get: index out of range";
  let word j = (column_getter t j) i in
  let w0 = word 0 in
  let tag = w0 land 3 in
  let range = Interval.make ~lo:(word 1) ~hi:(word 2) in
  if tag = tag_write then Write { range; pc = word 3 }
  else
    let obj = t.objs.(w0 lsr 2) in
    if tag = tag_install then Install { obj; range } else Remove { obj; range }

let get_raw t i f =
  if i < 0 || i >= t.count then invalid_arg "Trace.get_raw: index out of range";
  let word j = (column_getter t j) i in
  let w0 = word 0 in
  let tag = w0 land 3 in
  f ~tag
    ~obj:(if tag = tag_write then -1 else w0 lsr 2)
    ~lo:(word 1) ~hi:(word 2)
    ~pc:(if tag = tag_write then word 3 else -1)

let iter t f =
  for i = 0 to t.count - 1 do
    f (get t i)
  done

let iter_raw_range t ~start ~stop f =
  if start < 0 || stop > t.count || start > stop then
    invalid_arg "Trace.iter_raw_range: bad event range";
  match t.storage with
  | Heap data ->
      for i = start to stop - 1 do
        let base = i * stride in
        let w0 = Array.unsafe_get data base in
        let tag = w0 land 3 in
        f ~tag
          ~obj:(if tag = tag_write then -1 else w0 lsr 2)
          ~lo:(Array.unsafe_get data (base + 1))
          ~hi:(Array.unsafe_get data (base + 2))
          ~pc:(if tag = tag_write then Array.unsafe_get data (base + 3) else -1)
      done
  | Mapped m ->
      let w0s = m.m_w0 and los = m.m_lo and his = m.m_hi and pcs = m.m_pc in
      for i = start to stop - 1 do
        let w0 = Bigarray.Array1.unsafe_get w0s i in
        let tag = w0 land 3 in
        f ~tag
          ~obj:(if tag = tag_write then -1 else w0 lsr 2)
          ~lo:(Bigarray.Array1.unsafe_get los i)
          ~hi:(Bigarray.Array1.unsafe_get his i)
          ~pc:(if tag = tag_write then Bigarray.Array1.unsafe_get pcs i else -1)
      done

let iter_raw t f = iter_raw_range t ~start:0 ~stop:t.count f

let iter_raw_skipping t ~skip ~on_skip f =
  match t.storage with
  | Heap _ -> iter_raw t f
  | Mapped m ->
      let s = m.m_summaries in
      let nblocks = Bigarray.Array1.dim s / 4 in
      for b = 0 to nblocks - 1 do
        let base = 4 * b in
        let meta = s.{base} and writes = s.{base + 1} in
        if meta = 0 && writes > 0
           && skip ~min_lo:s.{base + 2} ~max_hi:s.{base + 3}
        then on_skip ~writes
        else
          iter_raw_range t ~start:(b * m.m_block_events)
            ~stop:(min t.count ((b + 1) * m.m_block_events))
            f
      done

let object_count t = Array.length t.objs
let object_of_id t id = t.objs.(id)
let objects t = Array.copy t.objs

type stats = {
  events : int;
  installs : int;
  removes : int;
  writes : int;
  distinct_objects : int;
  write_bytes : int;
}

let stats t =
  let installs = ref 0 and removes = ref 0 and writes = ref 0 and bytes = ref 0 in
  iter_raw t (fun ~tag ~obj:_ ~lo ~hi ~pc:_ ->
      if tag = tag_install then incr installs
      else if tag = tag_remove then incr removes
      else begin
        incr writes;
        bytes := !bytes + (hi - lo + 1)
      end);
  {
    events = t.count;
    installs = !installs;
    removes = !removes;
    writes = !writes;
    distinct_objects = Array.length t.objs;
    write_bytes = !bytes;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "events=%d installs=%d removes=%d writes=%d objects=%d write_bytes=%d"
    s.events s.installs s.removes s.writes s.distinct_objects s.write_bytes

(* --- text codec --- *)

let to_text t =
  let buf = Buffer.create (t.count * 24) in
  iter t (fun event ->
      (match event with
      | Install { obj; range } ->
          Buffer.add_string buf
            (Printf.sprintf "I %s %d %d" (Object_desc.to_string obj)
               (Interval.lo range) (Interval.hi range))
      | Remove { obj; range } ->
          Buffer.add_string buf
            (Printf.sprintf "R %s %d %d" (Object_desc.to_string obj)
               (Interval.lo range) (Interval.hi range))
      | Write { range; pc } ->
          Buffer.add_string buf
            (Printf.sprintf "W %d %d %d" (Interval.lo range) (Interval.hi range) pc));
      Buffer.add_char buf '\n');
  Buffer.contents buf

let of_text text =
  let b = Builder.create () in
  let error = ref None in
  List.iteri
    (fun lineno line ->
      if !error = None && String.trim line <> "" then
        let fail msg = error := Some (Printf.sprintf "line %d: %s" (lineno + 1) msg) in
        match String.split_on_char ' ' (String.trim line) with
        | [ "W"; lo; hi; pc ] -> (
            match (int_of_string_opt lo, int_of_string_opt hi, int_of_string_opt pc) with
            | Some lo, Some hi, Some pc when lo <= hi ->
                Builder.add_write b (Interval.make ~lo ~hi) ~pc
            | _ -> fail "bad write event")
        | [ tag; obj; lo; hi ] when tag = "I" || tag = "R" -> (
            match
              (Object_desc.of_string obj, int_of_string_opt lo, int_of_string_opt hi)
            with
            | Some obj, Some lo, Some hi when lo <= hi ->
                let range = Interval.make ~lo ~hi in
                if tag = "I" then Builder.add_install b obj range
                else Builder.add_remove b obj range
            | _ -> fail "bad install/remove event")
        | _ -> fail "unrecognized event")
    (String.split_on_char '\n' text);
  match !error with Some msg -> Error msg | None -> Ok (Builder.finish b)

(* --- binary codec ---

   EBPT2 is a struct-of-arrays layout: after the header, each event field
   is one contiguous column, encoded with LEB128 varints.

     magic "EBPT2"
     uvarint nobjs, then per object: uvarint length + descriptor string
     uvarint count
     column 1: w0 (tagged object word) as uvarint, per event
     column 2: lo, zigzag-varint delta against the previous event's lo
     column 3: hi - lo as uvarint (store widths: almost always 0 or 3)
     column 4: pc, zigzag-varint delta against the previous *write*'s pc,
               write events only (install/remove pcs are -1 by
               construction and are reconstructed, not stored)

   Both delta chains start from 0. Traces have strong spatial (lo) and
   code (pc) locality, so a write event typically costs 4-6 bytes against
   the 32 of the old fixed-width codec. Varints are chains of 7-bit
   groups, low first, high bit = continuation; zigzag maps sign bit to
   bit 0 ((v lsl 1) lxor (v asr 62) on 63-bit ints) so small negative
   deltas stay short. *)

module Metrics = Ebp_obs.Metrics
module Obs_span = Ebp_obs.Span

let m_bytes_out = Metrics.counter "trace.codec.bytes_out"
let m_bytes_in = Metrics.counter "trace.codec.bytes_in"
let m_columnar_out = Metrics.counter "trace.codec.columnar_bytes_out"
let m_mapped_bytes = Metrics.counter "trace.codec.mapped_bytes"

let codec_version = "EBPT2"

let add_uvarint buf v =
  let rec go v =
    if 0 <= v && v < 0x80 then Buffer.add_char buf (Char.unsafe_chr v)
    else begin
      Buffer.add_char buf (Char.unsafe_chr (0x80 lor (v land 0x7f)));
      go (v lsr 7)
    end
  in
  go v

let[@inline] zigzag v = (v lsl 1) lxor (v asr 62)
let[@inline] unzigzag v = (v lsr 1) lxor (- (v land 1))

let add_svarint buf v = add_uvarint buf (zigzag v)

let encode t =
  Obs_span.with_span "codec.encode" @@ fun () ->
  let w0_at = column_getter t 0
  and lo_at = column_getter t 1
  and hi_at = column_getter t 2
  and pc_at = column_getter t 3 in
  let buf = Buffer.create (64 + (t.count * 6)) in
  Buffer.add_string buf codec_version;
  add_uvarint buf (Array.length t.objs);
  Array.iter
    (fun obj ->
      let s = Object_desc.to_string obj in
      add_uvarint buf (String.length s);
      Buffer.add_string buf s)
    t.objs;
  add_uvarint buf t.count;
  for i = 0 to t.count - 1 do
    add_uvarint buf (w0_at i)
  done;
  let prev_lo = ref 0 in
  for i = 0 to t.count - 1 do
    let lo = lo_at i in
    add_svarint buf (lo - !prev_lo);
    prev_lo := lo
  done;
  for i = 0 to t.count - 1 do
    add_uvarint buf (hi_at i - lo_at i)
  done;
  let prev_pc = ref 0 in
  for i = 0 to t.count - 1 do
    if w0_at i land 3 = tag_write then begin
      let pc = pc_at i in
      add_svarint buf (pc - !prev_pc);
      prev_pc := pc
    end
  done;
  let s = Buffer.contents buf in
  Metrics.add m_bytes_out (String.length s);
  s

exception Malformed of string

let p_decode = Ebp_util.Fault.point "trace.codec.decode"

let decode s =
  Obs_span.with_span "codec.decode" @@ fun () ->
  match Ebp_util.Fault.fires p_decode with
  | Some _ -> Error "injected fault at trace.codec.decode"
  | None ->
  let len = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Malformed msg) in
  let next_byte () =
    if !pos >= len then fail "truncated trace";
    let b = Char.code (String.unsafe_get s !pos) in
    incr pos;
    b
  in
  let read_uvarint () =
    let rec go shift acc =
      (* 9 groups cover all 63 bits; a longer chain is corrupt. *)
      if shift > 56 then fail "oversized varint in trace";
      let b = next_byte () in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b < 0x80 then acc else go (shift + 7) acc
    in
    go 0 0
  in
  let read_svarint () = unzigzag (read_uvarint ()) in
  match
    if len < String.length codec_version
       || String.sub s 0 (String.length codec_version) <> codec_version
    then Error "bad trace magic"
    else begin
      pos := String.length codec_version;
      let nobjs = read_uvarint () in
      if nobjs < 0 || nobjs > len - !pos then fail "bad object count in trace";
      let objs =
        Array.init nobjs (fun _ ->
            let slen = read_uvarint () in
            if slen < 0 || slen > len - !pos then fail "truncated trace";
            let str = String.sub s !pos slen in
            pos := !pos + slen;
            match Object_desc.of_string str with
            | Some o -> o
            | None -> fail "bad object descriptor in trace")
      in
      let count = read_uvarint () in
      (* Every event spends at least 3 bytes across its columns, so the
         count is bounded by the remaining payload — this rejects corrupt
         headers before the allocation below. *)
      if count < 0 || count > len - !pos then fail "bad event count in trace";
      let data = Array.make (count * stride) 0 in
      for i = 0 to count - 1 do
        let w0 = read_uvarint () in
        let tag = w0 land 3 in
        if tag > tag_write then fail "bad event tag in trace";
        if tag <> tag_write && w0 lsr 2 >= nobjs then
          fail "bad object id in trace";
        data.(i * stride) <- w0
      done;
      let prev_lo = ref 0 in
      for i = 0 to count - 1 do
        let lo = !prev_lo + read_svarint () in
        data.((i * stride) + 1) <- lo;
        prev_lo := lo
      done;
      for i = 0 to count - 1 do
        let base = i * stride in
        data.(base + 2) <- data.(base + 1) + read_uvarint ()
      done;
      let prev_pc = ref 0 in
      for i = 0 to count - 1 do
        let base = i * stride in
        if data.(base) land 3 = tag_write then begin
          let pc = !prev_pc + read_svarint () in
          data.(base + 3) <- pc;
          prev_pc := pc
        end
        else data.(base + 3) <- -1
      done;
      if !pos <> len then fail "trailing bytes in trace";
      Metrics.add m_bytes_in len;
      Ok { storage = Heap data; count; objs }
    end
  with
  | result -> result
  | exception Malformed msg -> Error msg

let write_binary oc t = output_string oc (encode t)

let read_binary ic = decode (In_channel.input_all ic)

(* --- EBPT3: the mmap-able columnar layout ---

   EBPT3 lays the same four columns out as raw 8-byte little-endian
   words, 8-byte aligned, so a warm load is a single [Unix.map_file]:
   no per-event decode, no OCaml-heap allocation proportional to the
   trace, and the page cache shares one physical copy across every
   domain and every process that maps it. The price is size (32 B/event
   against EBPT2's ~5) — EBPT3 files are cache sidecars of the compact
   canonical entry, never the only copy.

     bytes 0-7    magic "EBPT3\0\0\0"
     bytes 8-71   8 header words (8-byte LE):
                    count, nobjs, meta_len, objs_len,
                    block_events, nblocks, install_lo, install_hi
     then         meta bytes (opaque caller string, as Trace_cache meta)
     then         object table: a varint string pool (the distinct
                  function/variable names), then per object a tag byte
                  plus varint pool indices and integers
     pad to 8
     then         block summaries: nblocks x 4 words
                    (install/remove count, write count, min write lo,
                     max write hi) over blocks of [block_events] events
     then         columns w0, lo, hi, pc: count words each
     trailer      "EBPZ" + 8-byte LE CRC-32 of everything before it

   [decode_columnar] verifies everything including the CRC (it is what
   [ebp cache verify] and the fuzzer's columnar oracle run).
   [map_columnar] is the hot path: it validates the header, the object
   table, the exact file length, the trailer magic, and the whole w0
   column (tags and object ids), but — deliberately — not the CRC of the
   column payload: checksumming tens of megabytes on every warm load
   would cost more than the decode it replaces. Full-payload integrity
   is the job of the sealed write path, [ebp cache verify], and — when
   fault injection is active, which is exactly when bytes get mangled in
   flight — [~verify:true]. docs/PERFORMANCE.md states the tradeoff.

   The summaries give consumers block skipping: a block whose summary
   shows no install/remove events and whose write range cannot overlap
   [install_lo, install_hi] (the bounds of everything monitorable) can
   only contribute its write count, never a hit — [iter_raw_skipping]
   above exploits exactly that. Words are native-endian in memory and
   little-endian in the file, so the format assumes a little-endian
   host, like every other fixed-width codec in this repo. *)

let columnar_version = "EBPT3"
let columnar_magic = "EBPT3\x00\x00\x00"
let columnar_block_events = 4096
let columnar_header_len = 8 + (8 * 8)
let columnar_trailer_magic = "EBPZ"
let columnar_trailer_len = 12

let p_map = Ebp_util.Fault.point "trace.codec.map"

let align8 n = (n + 7) land lnot 7

(* The columnar object table. EBPT2 stores each descriptor's printed
   form and re-parses it on load; at half a million descriptors
   (lattice) that parse costs more than mapping every column combined.
   EBPT3 stores descriptors directly: a pool of the distinct strings
   (function and variable names repeat across activations, so the pool
   stays tiny), then per descriptor a tag byte plus varint pool indices
   and integers. Loading allocates each distinct name once and one
   record per descriptor — nothing is parsed from text. *)

let encode_obj_table objs =
  let body = Buffer.create 256 and pool_buf = Buffer.create 256 in
  let pool = Hashtbl.create 64 in
  let npool = ref 0 in
  let sidx s =
    match Hashtbl.find_opt pool s with
    | Some i -> i
    | None ->
        let i = !npool in
        incr npool;
        Hashtbl.add pool s i;
        add_uvarint pool_buf (String.length s);
        Buffer.add_string pool_buf s;
        i
  in
  Array.iter
    (fun (obj : Object_desc.t) ->
      match obj with
      | Local { func; var; inst } ->
          let func = sidx func in
          let var = sidx var in
          Buffer.add_char body '\x00';
          add_uvarint body func;
          add_uvarint body var;
          add_uvarint body inst
      | Local_static { func; var } ->
          let func = sidx func in
          let var = sidx var in
          Buffer.add_char body '\x01';
          add_uvarint body func;
          add_uvarint body var
      | Global { var } ->
          let var = sidx var in
          Buffer.add_char body '\x02';
          add_uvarint body var
      | Heap { context; seq } ->
          let ctx = List.map sidx context in
          Buffer.add_char body '\x03';
          add_uvarint body (List.length ctx);
          List.iter (add_uvarint body) ctx;
          add_uvarint body seq)
    objs;
  let out =
    Buffer.create (10 + Buffer.length pool_buf + Buffer.length body)
  in
  add_uvarint out !npool;
  Buffer.add_buffer out pool_buf;
  Buffer.add_buffer out body;
  Buffer.contents out

(* Strictly bounds-checked against [objs_end]; raises [Malformed] and
   demands the table fill its region exactly, like every other columnar
   length check. *)
let decode_obj_table ~nobjs blob ~pos:pos0 ~objs_end =
  let fail msg = raise (Malformed msg) in
  let pos = ref pos0 in
  let next_byte () =
    if !pos >= objs_end then fail "truncated columnar object table";
    let b = Char.code (String.unsafe_get blob !pos) in
    incr pos;
    b
  in
  (* One closure for the whole table, not one per varint: at half a
     million descriptors a per-call [go] closure would dominate the
     load's allocation. *)
  let rec uvarint shift acc =
    if shift > 56 then fail "oversized varint in columnar object table";
    let b = next_byte () in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b < 0x80 then acc else uvarint (shift + 7) acc
  in
  let read_uvarint () = uvarint 0 0 in
  if nobjs > objs_end - pos0 then fail "bad object count in columnar trace";
  let npool = read_uvarint () in
  if npool < 0 || npool > objs_end - !pos then
    fail "bad columnar string pool";
  let pool =
    Array.init npool (fun _ ->
        let slen = read_uvarint () in
        if slen < 0 || slen > objs_end - !pos then
          fail "truncated columnar string pool";
        let s = String.sub blob !pos slen in
        pos := !pos + slen;
        s)
  in
  let str () =
    let i = read_uvarint () in
    if i < 0 || i >= npool then
      fail "bad string index in columnar object table";
    pool.(i)
  in
  let objs =
    Array.init nobjs (fun _ ->
        match next_byte () with
        | 0 ->
            let func = str () in
            let var = str () in
            let inst = read_uvarint () in
            Object_desc.Local { func; var; inst }
        | 1 ->
            let func = str () in
            let var = str () in
            Object_desc.Local_static { func; var }
        | 2 -> Object_desc.Global { var = str () }
        | 3 ->
            let n = read_uvarint () in
            if n < 0 || n > objs_end - !pos then
              fail "bad heap context in columnar object table";
            let context = ref [] in
            for _ = 1 to n do
              context := str () :: !context
            done;
            let seq = read_uvarint () in
            Object_desc.Heap { context = List.rev !context; seq }
        | _ -> fail "bad object tag in columnar trace")
  in
  if !pos <> objs_end then fail "trailing bytes in columnar object table";
  objs

(* Per-block summaries plus the global install bounds, computed from
   either storage. Shared by the encoder and the decoder's consistency
   check, so a corrupt summary can never silently disable or misdirect
   block skipping. *)
let compute_summaries t =
  let be = columnar_block_events in
  let nblocks = (t.count + be - 1) / be in
  let sums = Array.make (nblocks * 4) 0 in
  let ilo = ref max_int and ihi = ref min_int in
  for b = 0 to nblocks - 1 do
    let meta = ref 0 and writes = ref 0 in
    let mn = ref max_int and mx = ref min_int in
    iter_raw_range t ~start:(b * be) ~stop:(min t.count ((b + 1) * be))
      (fun ~tag ~obj:_ ~lo ~hi ~pc:_ ->
        if tag = tag_write then begin
          incr writes;
          if lo < !mn then mn := lo;
          if hi > !mx then mx := hi
        end
        else begin
          incr meta;
          if lo < !ilo then ilo := lo;
          if hi > !ihi then ihi := hi
        end);
    let base = 4 * b in
    sums.(base) <- !meta;
    sums.(base + 1) <- !writes;
    sums.(base + 2) <- (if !writes = 0 then 0 else !mn);
    sums.(base + 3) <- (if !writes = 0 then -1 else !mx)
  done;
  (sums, !ilo, !ihi)

let encode_columnar ?(meta = "") t =
  Obs_span.with_span "codec.encode_columnar" @@ fun () ->
  let count = t.count in
  let nobjs = Array.length t.objs in
  let objs_blob = encode_obj_table t.objs in
  let objs_len = String.length objs_blob in
  let meta_len = String.length meta in
  let sums, install_lo, install_hi = compute_summaries t in
  let nblocks = Array.length sums / 4 in
  let data_off = align8 (columnar_header_len + meta_len + objs_len) in
  let body_len = data_off + ((Array.length sums + (4 * count)) * 8) in
  let buf = Bytes.make (body_len + columnar_trailer_len) '\x00' in
  Bytes.blit_string columnar_magic 0 buf 0 8;
  let set_word pos v = Bytes.set_int64_le buf pos (Int64.of_int v) in
  List.iteri
    (fun i v -> set_word (8 + (8 * i)) v)
    [ count; nobjs; meta_len; objs_len; columnar_block_events; nblocks;
      install_lo; install_hi ];
  Bytes.blit_string meta 0 buf columnar_header_len meta_len;
  Bytes.blit_string objs_blob 0 buf (columnar_header_len + meta_len) objs_len;
  Array.iteri (fun i v -> set_word (data_off + (8 * i)) v) sums;
  let cols_off = data_off + (Array.length sums * 8) in
  for j = 0 to 3 do
    let get = column_getter t j in
    let base = cols_off + (j * count * 8) in
    for i = 0 to count - 1 do
      Bytes.set_int64_le buf (base + (8 * i)) (Int64.of_int (get i))
    done
  done;
  let body = Bytes.unsafe_to_string buf in
  Bytes.blit_string columnar_trailer_magic 0 buf body_len 4;
  Bytes.set_int64_le buf (body_len + 4)
    (Int64.of_int (Ebp_util.Crc32.sub body ~pos:0 ~len:body_len));
  Metrics.add m_columnar_out (Bytes.length buf);
  Bytes.unsafe_to_string buf

(* Header parsing and structural validation shared by the full decoder
   and the mapping loader. Returns everything needed to locate the
   column region. *)
type columnar_header = {
  h_count : int;
  h_nobjs : int;
  h_meta_len : int;
  h_objs_len : int;
  h_block_events : int;
  h_nblocks : int;
  h_install_lo : int;
  h_install_hi : int;
  h_data_off : int;
  h_body_len : int;
}

let parse_columnar_header ~file_len first_bytes =
  (* [first_bytes] must hold at least the fixed header. *)
  let fail msg = raise (Malformed msg) in
  if file_len < columnar_header_len + columnar_trailer_len then
    fail "columnar trace too short";
  if String.sub first_bytes 0 8 <> columnar_magic then
    fail "bad columnar magic";
  let word i = Int64.to_int (String.get_int64_le first_bytes (8 + (8 * i))) in
  let h_count = word 0 and h_nobjs = word 1 in
  let h_meta_len = word 2 and h_objs_len = word 3 in
  let h_block_events = word 4 and h_nblocks = word 5 in
  let h_install_lo = word 6 and h_install_hi = word 7 in
  let h_body_len = file_len - columnar_trailer_len in
  if h_count < 0 || h_nobjs < 0 || h_meta_len < 0 || h_objs_len < 0 then
    fail "negative size in columnar header";
  if h_block_events <= 0 then fail "bad columnar block size";
  if h_nblocks <> (h_count + h_block_events - 1) / h_block_events then
    fail "bad columnar block count";
  if h_meta_len > h_body_len || h_objs_len > h_body_len - h_meta_len then
    fail "columnar header out of bounds";
  let h_data_off = align8 (columnar_header_len + h_meta_len + h_objs_len) in
  if h_count > (h_body_len - h_data_off) / (8 * stride)
     || h_data_off + (((4 * h_nblocks) + (stride * h_count)) * 8) <> h_body_len
  then fail "columnar length does not match header";
  {
    h_count; h_nobjs; h_meta_len; h_objs_len; h_block_events; h_nblocks;
    h_install_lo; h_install_hi; h_data_off; h_body_len;
  }

let check_w0 ~nobjs w0 =
  let tag = w0 land 3 in
  if tag > tag_write then raise (Malformed "bad event tag in columnar trace");
  if tag <> tag_write && w0 lsr 2 >= nobjs then
    raise (Malformed "bad object id in columnar trace")

let decode_columnar s =
  Obs_span.with_span "codec.decode_columnar" @@ fun () ->
  let fail msg = raise (Malformed msg) in
  match
    let len = String.length s in
    let h = parse_columnar_header ~file_len:len s in
    (* Trailer first: like the cache's sealed entries, corruption is
       caught before anything is sized or decoded from the payload. *)
    if String.sub s h.h_body_len 4 <> columnar_trailer_magic then
      fail "missing columnar checksum trailer";
    if String.get_int64_le s (len - 8)
       <> Int64.of_int (Ebp_util.Crc32.sub s ~pos:0 ~len:h.h_body_len)
    then fail "columnar checksum mismatch";
    let meta = String.sub s columnar_header_len h.h_meta_len in
    let objs =
      decode_obj_table ~nobjs:h.h_nobjs s
        ~pos:(columnar_header_len + h.h_meta_len)
        ~objs_end:(columnar_header_len + h.h_meta_len + h.h_objs_len)
    in
    let sums_off = h.h_data_off in
    let cols_off = sums_off + (4 * h.h_nblocks * 8) in
    let data = Array.make (h.h_count * stride) 0 in
    for j = 0 to 3 do
      let base = cols_off + (j * h.h_count * 8) in
      for i = 0 to h.h_count - 1 do
        data.((i * stride) + j) <-
          Int64.to_int (String.get_int64_le s (base + (8 * i)))
      done
    done;
    for i = 0 to h.h_count - 1 do
      check_w0 ~nobjs:h.h_nobjs data.(i * stride)
    done;
    let t = { storage = Heap data; count = h.h_count; objs } in
    (* The summaries drive block skipping; a mismatch would silently
       change which events replay visits, so they are re-derived and
       compared, not trusted. *)
    let sums, install_lo, install_hi = compute_summaries t in
    if install_lo <> h.h_install_lo || install_hi <> h.h_install_hi then
      fail "columnar install bounds mismatch";
    Array.iteri
      (fun i v ->
        if Int64.to_int (String.get_int64_le s (sums_off + (8 * i))) <> v then
          fail "columnar block summary mismatch")
      sums;
    Metrics.add m_bytes_in (String.length s);
    Ok (t, meta)
  with
  | result -> result
  | exception Malformed msg -> Error msg

let really_read fd buf =
  let n = Bytes.length buf in
  let got = ref 0 in
  (try
     while !got < n do
       let r = Unix.read fd buf !got (n - !got) in
       if r = 0 then got := n (* short file: caught by length checks *)
       else got := !got + r
     done
   with Unix.Unix_error _ -> raise (Malformed "unreadable columnar trace"));
  Bytes.unsafe_to_string buf

let map_columnar ?(verify = false) path =
  Obs_span.with_span "codec.map" @@ fun () ->
  (* Raises [Fault.Injected] (a transient, retryable miss — the cache
     falls back to the decoded entry without quarantining) rather than
     returning [Error], which means "this file is bad". *)
  Ebp_util.Fault.check p_map;
  if verify then
    (* The slow, fully-checked load: everything [decode_columnar]
       rejects, this rejects. Used under fault injection, where mangled
       bytes are the point. *)
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error msg -> Error msg
    | s -> decode_columnar s
  else
    match
      let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
      Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
      let file_len = (Unix.fstat fd).Unix.st_size in
      if file_len < columnar_header_len + columnar_trailer_len then
        raise (Malformed "columnar trace too short");
      let first = really_read fd (Bytes.create columnar_header_len) in
      let h = parse_columnar_header ~file_len first in
      (* meta + object table, read (not mapped): they are small and land
         on the heap as ordinary values either way. *)
      let blob = really_read fd (Bytes.create (h.h_meta_len + h.h_objs_len)) in
      let meta = String.sub blob 0 h.h_meta_len in
      let objs =
        decode_obj_table ~nobjs:h.h_nobjs blob ~pos:h.h_meta_len
          ~objs_end:(h.h_meta_len + h.h_objs_len)
      in
      ignore (Unix.lseek fd (file_len - columnar_trailer_len) Unix.SEEK_SET);
      let trailer = really_read fd (Bytes.create 4) in
      if trailer <> columnar_trailer_magic then
        raise (Malformed "missing columnar checksum trailer");
      let nsums = 4 * h.h_nblocks in
      let dims = nsums + (stride * h.h_count) in
      let arr =
        if dims = 0 then
          Bigarray.Array1.create Bigarray.int Bigarray.c_layout 0
        else
          Bigarray.array1_of_genarray
            (Unix.map_file fd ~pos:(Int64.of_int h.h_data_off) Bigarray.int
               Bigarray.c_layout false [| dims |])
      in
      let sub pos len = Bigarray.Array1.sub arr pos len in
      let m =
        {
          m_summaries = sub 0 nsums;
          m_w0 = sub nsums h.h_count;
          m_lo = sub (nsums + h.h_count) h.h_count;
          m_hi = sub (nsums + (2 * h.h_count)) h.h_count;
          m_pc = sub (nsums + (3 * h.h_count)) h.h_count;
          m_block_events = h.h_block_events;
          m_install_lo = h.h_install_lo;
          m_install_hi = h.h_install_hi;
        }
      in
      (* One pass over the w0 column: every tag and object id is checked
         up front (they index OCaml arrays later), and the pages of the
         hottest column are faulted in while we are at it. The other
         three columns are plain integers — any value is safe. *)
      for i = 0 to h.h_count - 1 do
        check_w0 ~nobjs:h.h_nobjs (Bigarray.Array1.unsafe_get m.m_w0 i)
      done;
      Metrics.add m_mapped_bytes file_len;
      Ok ({ storage = Mapped m; count = h.h_count; objs }, meta)
    with
    | result -> result
    | exception Malformed msg -> Error msg
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
    | exception Sys_error msg -> Error msg
