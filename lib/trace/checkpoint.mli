(** Machine checkpoints for time travel over recorded runs.

    A checkpoint chain is taken while a (streaming) recording runs:
    every entry captures the loader state above memory
    ({!Ebp_runtime.Loader.snapshot}), the recorder's bookkeeping
    ({!Recorder.snapshot}), and the memory pages dirtied {e since the
    previous entry} ({!Ebp_machine.Memory.take_dirty}). Restoring to
    trace timestamp [w] means: fresh deterministic [load ()], overlay
    the page deltas of every entry up to the nearest checkpoint strictly
    before [w], restore the loader/recorder snapshots, then {!seek}
    forward — re-executing only the tail instead of the whole prefix
    from step 0.

    Checkpoints are taken at instruction boundaries only (recorder hooks
    run mid-instruction, when the machine state is not consistent):
    {!run_with_checkpoints} drives the run in resumable fuel slices and
    samples at slice boundaries.

    Faults: [checkpoint.store] (see docs/ROBUSTNESS.md) makes {!take}
    skip the entry; the un-drained dirty set accumulates into the next
    successful checkpoint, so the chain stays correct and time travel
    merely re-executes from further back. *)

type t

val create : unit -> t

val track : Ebp_runtime.Loader.t -> unit
(** Turn on dirty-page tracking for the loader's memory. Call right
    after [load], before running, so the first checkpoint's delta covers
    everything written since the load image. *)

val take : t -> event:int -> nobjs:int -> Ebp_runtime.Loader.t -> Recorder.t -> unit
(** Append a checkpoint stamped with the recording's current (event,
    object) counts. Must be called between instructions. *)

val count : t -> int
val skipped : t -> int
(** Checkpoints dropped by [checkpoint.store] fault injection. *)

val events : t -> int list
(** Ascending trace timestamps of the chain's entries. *)

(** A restored execution: the rebuilt loader, the counting sink's
    counters (pre-loaded with the checkpoint's event/object counts), and
    the re-attached recorder. *)
type restored = {
  rs_loader : Ebp_runtime.Loader.t;
  rs_counters : Recorder.counters;
  rs_recorder : Recorder.t;
}

val restore :
  t -> event:int -> load:(unit -> Ebp_runtime.Loader.t) -> restored option
(** Rebuild the machine at the nearest checkpoint strictly before trace
    timestamp [event] (strict, so the follow-up {!seek} always stops at
    the same instruction boundary a step-0 seek would — an entry stamped
    exactly [event] sits at a slice boundary that may be {e past} that
    point). [load] must deterministically reproduce the original load
    (same program, same seed). [None] when no checkpoint strictly
    precedes [event] — fall back to a step-0 replay. *)

val seek :
  ?limit:int ->
  Ebp_runtime.Loader.t -> Recorder.counters -> event:int ->
  Ebp_machine.Machine.stop_reason option
(** Single-step forward until the event counter reaches [event] (or the
    machine stops, or [limit] instructions ran). Stops at the first
    instruction boundary where [c_events >= event]. *)

val state_digest : Ebp_runtime.Loader.t -> Recorder.counters -> string
(** Hex fingerprint of the full execution state — registers, counters,
    function stack, allocator live set, output, non-zero memory pages,
    and the event/object counts. Equal digests between a
    checkpoint-restored seek and a step-0 replay are the time-travel
    equivalence oracle used by tests and bench. *)

val run_with_checkpoints :
  ?slice:int ->
  ?fuel:int ->
  every:int ->
  events:(unit -> int) ->
  nobjs:(unit -> int) ->
  t -> Ebp_runtime.Loader.t -> Recorder.t ->
  Ebp_runtime.Loader.run_result
(** Run the loader to completion (or total [fuel]), taking a checkpoint
    whenever the recording has grown by at least [every] events since
    the last one, sampled every [slice] instructions (default 256Ki).
    [events]/[nobjs] read the attached sink's counts (e.g.
    {!Stream.Writer.events}/[object_count]). The returned result is
    identical to a single [Loader.run ?fuel] of the same total. *)

val codec_version : string
(** Serialization format tag — part of the {!Trace_cache} checkpoint
    key, so a format change orphans rather than misparses old chains. *)

val encode : t -> string
(** Serialize the chain (plain-data snapshots; no closures). Seal with
    {!Trace_cache} for storage — see [store_checkpoints]. *)

val decode : string -> (t, string) result
