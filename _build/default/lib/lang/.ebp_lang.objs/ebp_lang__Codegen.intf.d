lib/lang/codegen.mli: Debug_info Ebp_isa Typed
