lib/trace/trace.ml: Array Buffer Bytes Ebp_util Format Hashtbl List Object_desc Printf String
