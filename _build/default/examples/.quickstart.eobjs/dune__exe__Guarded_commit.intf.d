examples/guarded_commit.mli:
