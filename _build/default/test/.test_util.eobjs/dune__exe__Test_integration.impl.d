test/test_integration.ml: Alcotest Array Ebp_core Ebp_isa Ebp_lang Ebp_machine Ebp_model Ebp_runtime Ebp_sessions Ebp_trace Ebp_util Ebp_wms Ebp_workloads Hashtbl Lazy List Printf Result String
