lib/core/experiment.ml: Array Buffer Ebp_isa Ebp_lang Ebp_model Ebp_sessions Ebp_util Ebp_wms Ebp_workloads Float List Printf Result String
