module P = Protocol

type t = { fd : Unix.file_descr; inbuf : Buffer.t; mutable open_ : bool }

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let write_all fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write_substring fd s !pos (len - !pos)
  done

let send t req =
  match write_all t.fd (P.encode_request req) with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "send failed: %s" (Unix.error_message e))

(* Read until the buffer holds one complete frame. The server answers
   requests in order, one response frame each. *)
let read_response t =
  let chunk = Bytes.create 65536 in
  let rec try_decode () =
    let s = Buffer.contents t.inbuf in
    match P.decode ~buf:s ~pos:0 ~len:(String.length s) with
    | `Corrupt msg -> Error (Printf.sprintf "corrupt frame from server: %s" msg)
    | `Frame (frame, consumed) -> (
        let rest = String.sub s consumed (String.length s - consumed) in
        Buffer.clear t.inbuf;
        Buffer.add_string t.inbuf rest;
        match frame with
        | P.Response r -> Ok r
        | P.Request _ -> Error "server sent a request frame")
    | `Need_more -> (
        match Unix.read t.fd chunk 0 (Bytes.length chunk) with
        | exception Unix.Unix_error (e, _, _) ->
            Error (Printf.sprintf "read failed: %s" (Unix.error_message e))
        | 0 -> Error "connection closed by server"
        | n ->
            Buffer.add_subbytes t.inbuf chunk 0 n;
            try_decode ())
  in
  try_decode ()

let request t req =
  if not t.open_ then Error "client is closed"
  else match send t req with Error _ as e -> e | Ok () -> read_response t

let connect ?(tenant = "default") ?(retries = 40) ?(retry_delay = 0.05)
    ~socket_path () =
  let addr = Unix.ADDR_UNIX socket_path in
  let rec attempt n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> Ok fd
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if n > 0 then begin
          Unix.sleepf retry_delay;
          attempt (n - 1)
        end
        else
          Error
            (Printf.sprintf "cannot connect to %s: %s" socket_path
               (Unix.error_message e))
  in
  match attempt retries with
  | Error _ as e -> e
  | Ok fd -> (
      let t = { fd; inbuf = Buffer.create 256; open_ = true } in
      match
        request t (P.Hello { tenant; max_version = P.protocol_version })
      with
      | Ok (P.Hello_ok _) -> Ok t
      | Ok (P.Error_resp { message; _ }) ->
          close t;
          Error (Printf.sprintf "server refused hello: %s" message)
      | Ok _ ->
          close t;
          Error "unexpected response to hello"
      | Error msg ->
          close t;
          Error msg)

let with_client ?tenant ?retries ~socket_path f =
  match connect ?tenant ?retries ~socket_path () with
  | Error _ as e -> e
  | Ok t -> Fun.protect ~finally:(fun () -> close t) (fun () -> f t)
