lib/lang/compiler.mli: Debug_info Ebp_isa
