(* Per-domain span buffers mirror the Metrics shards: each domain appends
   to its own list (no lock) and registers the buffer once, under the
   registry-style mutex, on first use. Export merges and sorts. *)

type event = {
  name : string;
  args : (string * string) list;
  tid : int;
  ts : int; (* ns *)
  dur : int; (* ns *)
}

type buffer = {
  dom : int;
  mutable events : event list; (* newest first *)
  hist_memo : (string, Metrics.histogram) Hashtbl.t;
      (* span name -> [span.<name>] histogram, cached domain-locally so
         the registry mutex is only taken on a domain's first use of a
         name *)
}

let mutex = Mutex.create ()
let buffers = ref ([] : buffer list)

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let b =
        { dom = (Domain.self () :> int); events = []; hist_memo = Hashtbl.create 16 }
      in
      Mutex.lock mutex;
      buffers := b :: !buffers;
      Mutex.unlock mutex;
      b)

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let hist_for b name =
  match Hashtbl.find_opt b.hist_memo name with
  | Some h -> h
  | None ->
      let h = Metrics.histogram ("span." ^ name) in
      Hashtbl.add b.hist_memo name h;
      h

let with_span ?(args = []) name f =
  if not (Metrics.is_enabled ()) then f ()
  else begin
    let b = Domain.DLS.get buffer_key in
    let ts = now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let dur = now_ns () - ts in
        b.events <- { name; args; tid = b.dom; ts; dur } :: b.events;
        Metrics.observe (hist_for b name) dur)
      f
  end

let all_events () =
  Mutex.lock mutex;
  let buffers = !buffers in
  Mutex.unlock mutex;
  List.concat_map (fun b -> b.events) buffers
  |> List.sort (fun a b ->
         if a.ts <> b.ts then compare a.ts b.ts else compare a.tid b.tid)

let events () = List.map (fun e -> (e.name, e.tid, e.ts, e.dur)) (all_events ())

let to_trace_events () =
  let events = all_events () in
  let t0 = match events with [] -> 0 | e :: _ -> e.ts in
  let us ns = Float.of_int ns /. 1e3 in
  let meta name tid label =
    Json.Obj
      [
        ("name", Json.Str name);
        ("ph", Json.Str "M");
        ("pid", Json.Int 1);
        ("tid", Json.Int tid);
        ("args", Json.Obj [ ("name", Json.Str label) ]);
      ]
  in
  let tids = List.sort_uniq compare (List.map (fun e -> e.tid) events) in
  let metadata =
    meta "process_name" 0 "ebp"
    :: List.map (fun tid -> meta "thread_name" tid (Printf.sprintf "domain %d" tid)) tids
  in
  let complete e =
    Json.Obj
      ([
         ("name", Json.Str e.name);
         ("cat", Json.Str "ebp");
         ("ph", Json.Str "X");
         ("pid", Json.Int 1);
         ("tid", Json.Int e.tid);
         ("ts", Json.Float (us (e.ts - t0)));
         ("dur", Json.Float (us e.dur));
       ]
      @
      match e.args with
      | [] -> []
      | args ->
          [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) args)) ])
  in
  Json.to_string (Json.List (metadata @ List.map complete events))

let reset () =
  Mutex.lock mutex;
  List.iter (fun b -> b.events <- []) !buffers;
  Mutex.unlock mutex
