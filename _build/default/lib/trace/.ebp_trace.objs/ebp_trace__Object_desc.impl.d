lib/trace/object_desc.ml: Format Option String
