(* Tests for Ebp_sessions: session matching, discovery, and the phase-2
   replay's counting variables — including hand-computed scenarios and a
   property check of replay_all against a naive per-event oracle. *)

module Interval = Ebp_util.Interval
module Object_desc = Ebp_trace.Object_desc
module Trace = Ebp_trace.Trace
module Session = Ebp_sessions.Session
module Discovery = Ebp_sessions.Discovery
module Counts = Ebp_sessions.Counts
module Replay = Ebp_sessions.Replay

let iv lo hi = Interval.make ~lo ~hi

(* --- Session.matches --- *)

let local ~func ~var ~inst = Object_desc.Local { func; var; inst }

let test_matches_one_local_auto () =
  let s = Session.One_local_auto { func = "f"; var = "x" } in
  Alcotest.(check bool) "inst 1" true (Session.matches s (local ~func:"f" ~var:"x" ~inst:1));
  Alcotest.(check bool) "inst 9 (all instantiations)" true
    (Session.matches s (local ~func:"f" ~var:"x" ~inst:9));
  Alcotest.(check bool) "other var" false
    (Session.matches s (local ~func:"f" ~var:"y" ~inst:1));
  Alcotest.(check bool) "other func" false
    (Session.matches s (local ~func:"g" ~var:"x" ~inst:1));
  Alcotest.(check bool) "statics are not automatic" false
    (Session.matches s (Object_desc.Local_static { func = "f"; var = "x" }))

let test_matches_all_local_in_func () =
  let s = Session.All_local_in_func { func = "f" } in
  Alcotest.(check bool) "any local" true
    (Session.matches s (local ~func:"f" ~var:"anything" ~inst:3));
  Alcotest.(check bool) "includes statics (§5)" true
    (Session.matches s (Object_desc.Local_static { func = "f"; var = "n" }));
  Alcotest.(check bool) "other func" false
    (Session.matches s (local ~func:"g" ~var:"x" ~inst:1));
  Alcotest.(check bool) "not globals" false
    (Session.matches s (Object_desc.Global { var = "f" }))

let test_matches_one_heap () =
  let s = Session.One_heap { site = "alloc"; seq = 7 } in
  Alcotest.(check bool) "match" true
    (Session.matches s (Object_desc.Heap { context = [ "alloc"; "main" ]; seq = 7 }));
  Alcotest.(check bool) "wrong seq" false
    (Session.matches s (Object_desc.Heap { context = [ "alloc"; "main" ]; seq = 8 }));
  Alcotest.(check bool) "wrong site" false
    (Session.matches s (Object_desc.Heap { context = [ "other"; "main" ]; seq = 7 }))

let test_matches_all_heap_in_func () =
  let s = Session.All_heap_in_func { func = "build" } in
  Alcotest.(check bool) "direct allocator" true
    (Session.matches s (Object_desc.Heap { context = [ "build"; "main" ]; seq = 1 }));
  Alcotest.(check bool) "dynamic context (§5)" true
    (Session.matches s (Object_desc.Heap { context = [ "alloc"; "build"; "main" ]; seq = 2 }));
  Alcotest.(check bool) "unrelated" false
    (Session.matches s (Object_desc.Heap { context = [ "main" ]; seq = 3 }))

let test_matches_global () =
  let s = Session.One_global_static { var = "g" } in
  Alcotest.(check bool) "match" true (Session.matches s (Object_desc.Global { var = "g" }));
  Alcotest.(check bool) "other" false (Session.matches s (Object_desc.Global { var = "h" }))

(* --- Discovery --- *)

let build_trace events =
  let b = Trace.Builder.create () in
  List.iter
    (fun e ->
      match e with
      | `I (obj, lo, hi) -> Trace.Builder.add_install b obj (iv lo hi)
      | `R (obj, lo, hi) -> Trace.Builder.add_remove b obj (iv lo hi)
      | `W (lo, hi) -> Trace.Builder.add_write b (iv lo hi) ~pc:0)
    events;
  Trace.Builder.finish b

let test_discovery () =
  let x1 = local ~func:"f" ~var:"x" ~inst:1 in
  let x2 = local ~func:"f" ~var:"x" ~inst:2 in
  let st = Object_desc.Local_static { func = "g"; var = "s" } in
  let gl = Object_desc.Global { var = "tbl" } in
  let h1 = Object_desc.Heap { context = [ "alloc"; "main" ]; seq = 1 } in
  let h2 = Object_desc.Heap { context = [ "alloc"; "main" ]; seq = 2 } in
  let trace =
    build_trace
      [ `I (x1, 0, 3); `R (x1, 0, 3); `I (x2, 0, 3); `R (x2, 0, 3);
        `I (st, 100, 103); `I (gl, 200, 207); `I (h1, 300, 311);
        `I (h2, 320, 331); `R (h1, 300, 311); `R (h2, 320, 331);
        `R (st, 100, 103); `R (gl, 200, 207) ]
  in
  let sessions = Discovery.discover trace in
  let by_kind = Discovery.count_by_kind sessions in
  Alcotest.(check int) "one OneLocalAuto (two instantiations)" 1
    (List.assoc Session.K_one_local_auto by_kind);
  (* f has locals; g has the static: two AllLocalInFunc. *)
  Alcotest.(check int) "AllLocalInFunc" 2 (List.assoc Session.K_all_local_in_func by_kind);
  Alcotest.(check int) "globals" 1 (List.assoc Session.K_one_global_static by_kind);
  Alcotest.(check int) "OneHeap per object" 2 (List.assoc Session.K_one_heap by_kind);
  (* alloc and main both appear in heap contexts. *)
  Alcotest.(check int) "AllHeapInFunc" 2 (List.assoc Session.K_all_heap_in_func by_kind)

(* --- Replay: hand-computed scenario --- *)

(* Object layout: global g at [0x1000, 0x1003]; heap object h at
   [0x2000, 0x200b] installed then removed mid-trace. Writes:
     w1 hits g, w2 hits h, w3 misses everything, w4 to h's range after
     its removal (a miss), w5 to g's page but not g (VM page miss). *)
let scenario () =
  let g = Object_desc.Global { var = "g" } in
  let h = Object_desc.Heap { context = [ "main" ]; seq = 1 } in
  build_trace
    [
      `I (g, 0x1000, 0x1003);
      `I (h, 0x2000, 0x200b);
      `W (0x1000, 0x1003) (* w1: hit g *);
      `W (0x2004, 0x2007) (* w2: hit h *);
      `W (0x5000, 0x5003) (* w3: miss *);
      `R (h, 0x2000, 0x200b);
      `W (0x2004, 0x2007) (* w4: h gone -> miss *);
      `W (0x1ffc, 0x1fff) (* w5: g's 8K page (0x1000-0x2fff? no) *);
      `R (g, 0x1000, 0x1003);
    ]

let test_replay_global_session () =
  let trace = scenario () in
  let c = Replay.replay trace (Session.One_global_static { var = "g" }) in
  Alcotest.(check int) "installs" 1 c.Counts.installs;
  Alcotest.(check int) "removes" 1 c.Counts.removes;
  Alcotest.(check int) "hits" 1 c.Counts.hits;
  Alcotest.(check int) "misses = writes - hits" 4 c.Counts.misses;
  let vm4 = Counts.vm_for c ~page_size:4096 in
  Alcotest.(check int) "4K protects" 1 vm4.Counts.protects;
  Alcotest.(check int) "4K unprotects" 1 vm4.Counts.unprotects;
  (* w5 at 0x1ffc is on g's 4K page [0x1000,0x1fff]: one active-page miss. *)
  Alcotest.(check int) "4K active page misses" 1 vm4.Counts.active_page_misses;
  let vm8 = Counts.vm_for c ~page_size:8192 in
  (* 8K page [0, 0x1fff] also covers w5 but not w3/w2/w4 (0x2000+). *)
  Alcotest.(check int) "8K active page misses" 1 vm8.Counts.active_page_misses

let test_replay_heap_session () =
  let trace = scenario () in
  let c = Replay.replay trace (Session.One_heap { site = "main"; seq = 1 }) in
  Alcotest.(check int) "installs" 1 c.Counts.installs;
  Alcotest.(check int) "hits (removal respected)" 1 c.Counts.hits;
  Alcotest.(check int) "misses" 4 c.Counts.misses;
  let vm4 = Counts.vm_for c ~page_size:4096 in
  (* w4 lands on h's former page after removal: the page is no longer
     protected, so no active-page miss. w5 at 0x1ffc is on page 0x1000
     which never held h. *)
  Alcotest.(check int) "no active page misses" 0 vm4.Counts.active_page_misses

let test_replay_8k_false_sharing () =
  (* h at 0x2000 lives on 8K page 1 ([0x2000,0x3fff]); a write at 0x3000
     misses at 4K but is an active-page miss at 8K — the false sharing that
     makes VM-8K worse than VM-4K. *)
  let h = Object_desc.Heap { context = [ "main" ]; seq = 1 } in
  let trace =
    build_trace
      [ `I (h, 0x2000, 0x200b); `W (0x3000, 0x3003); `R (h, 0x2000, 0x200b) ]
  in
  let c = Replay.replay trace (Session.One_heap { site = "main"; seq = 1 }) in
  Alcotest.(check int) "4K: not an active page miss" 0
    (Counts.vm_for c ~page_size:4096).Counts.active_page_misses;
  Alcotest.(check int) "8K: active page miss" 1
    (Counts.vm_for c ~page_size:8192).Counts.active_page_misses

let test_replay_cross_page_monitor () =
  (* A monitor spanning a page boundary protects both pages. *)
  let g = Object_desc.Global { var = "big" } in
  let trace =
    build_trace [ `I (g, 0x1ff8, 0x2007); `W (0x3000, 0x3003); `R (g, 0x1ff8, 0x2007) ]
  in
  let c = Replay.replay trace (Session.One_global_static { var = "big" }) in
  let vm4 = Counts.vm_for c ~page_size:4096 in
  Alcotest.(check int) "two pages protected" 2 vm4.Counts.protects;
  Alcotest.(check int) "two pages unprotected" 2 vm4.Counts.unprotects

let test_replay_word_granularity () =
  (* Monitors are word-aligned: a byte write to another byte of a
     monitored word still hits (footnote 7). *)
  let g = Object_desc.Global { var = "g" } in
  let trace =
    build_trace [ `I (g, 0x1001, 0x1001); `W (0x1003, 0x1003); `W (0x1004, 0x1004) ]
  in
  let c = Replay.replay trace (Session.One_global_static { var = "g" }) in
  Alcotest.(check int) "same-word byte hits" 1 c.Counts.hits;
  Alcotest.(check int) "next word misses" 1 c.Counts.misses

let test_replay_all_heap_in_func () =
  let h1 = Object_desc.Heap { context = [ "alloc"; "build"; "main" ]; seq = 1 } in
  let h2 = Object_desc.Heap { context = [ "other"; "main" ]; seq = 2 } in
  let trace =
    build_trace
      [
        `I (h1, 0x2000, 0x2007);
        `I (h2, 0x3000, 0x3007);
        `W (0x2000, 0x2003) (* hits h1 *);
        `W (0x3000, 0x3003) (* hits h2 *);
      ]
  in
  let c = Replay.replay trace (Session.All_heap_in_func { func = "build" }) in
  Alcotest.(check int) "only h1 belongs" 1 c.Counts.installs;
  Alcotest.(check int) "one hit" 1 c.Counts.hits;
  let c_main = Replay.replay trace (Session.All_heap_in_func { func = "main" }) in
  Alcotest.(check int) "main covers both" 2 c_main.Counts.installs;
  Alcotest.(check int) "two hits" 2 c_main.Counts.hits

let test_replay_multiple_sessions_consistent () =
  (* replay_all must equal per-session replay. *)
  let trace = scenario () in
  let sessions =
    [
      Session.One_global_static { var = "g" };
      Session.One_heap { site = "main"; seq = 1 };
      Session.All_heap_in_func { func = "main" };
    ]
  in
  let together = Replay.replay_all trace sessions in
  List.iter
    (fun (s, c) ->
      let alone = Replay.replay trace s in
      if c <> alone then
        Alcotest.failf "session %s differs between replay_all and replay"
          (Session.to_string s))
    together

let test_discover_and_replay_filters_hitless () =
  let g = Object_desc.Global { var = "quiet" } in
  let h = Object_desc.Global { var = "busy" } in
  let trace =
    build_trace
      [ `I (g, 0x1000, 0x1003); `I (h, 0x2000, 0x2003); `W (0x2000, 0x2003) ]
  in
  let kept = Replay.discover_and_replay trace in
  Alcotest.(check int) "only the busy session" 1 (List.length kept);
  (match kept with
  | [ (Session.One_global_static { var = "busy" }, _) ] -> ()
  | _ -> Alcotest.fail "wrong session kept");
  let all = Replay.discover_and_replay ~keep_hitless:true trace in
  Alcotest.(check int) "both without filtering" 2 (List.length all)

(* --- Oracle property: replay_all vs a naive per-session simulation --- *)

let naive_replay trace session ~page_size =
  let active = ref [] in
  let installs = ref 0 and removes = ref 0 and hits = ref 0 and misses = ref 0 in
  let protects = ref 0 and unprotects = ref 0 and apm = ref 0 in
  let page_count = Hashtbl.create 16 in
  let word_align r = iv (Interval.lo r land lnot 3) (Interval.hi r lor 3) in
  let pages r =
    let first = Interval.lo r / page_size and last = Interval.hi r / page_size in
    List.init (last - first + 1) (fun i -> first + i)
  in
  Trace.iter trace (fun event ->
      match event with
      | Trace.Install { obj; range } ->
          if Session.matches session obj then begin
            incr installs;
            let range = word_align range in
            active := range :: !active;
            List.iter
              (fun pg ->
                let c = Option.value ~default:0 (Hashtbl.find_opt page_count pg) in
                Hashtbl.replace page_count pg (c + 1);
                if c = 0 then incr protects)
              (pages range)
          end
      | Trace.Remove { obj; range } ->
          if Session.matches session obj then begin
            incr removes;
            let range = word_align range in
            active := List.filter (fun r -> not (Interval.equal r range)) !active;
            List.iter
              (fun pg ->
                match Hashtbl.find_opt page_count pg with
                | Some 1 ->
                    Hashtbl.remove page_count pg;
                    incr unprotects
                | Some c -> Hashtbl.replace page_count pg (c - 1)
                | None -> ())
              (pages range)
          end
      | Trace.Write { range; _ } ->
          let range = word_align range in
          if List.exists (fun r -> Interval.overlaps r range) !active then incr hits
          else begin
            incr misses;
            if List.exists (fun pg -> Hashtbl.mem page_count pg) (pages range) then
              incr apm
          end);
  (!installs, !removes, !hits, !misses, !protects, !unprotects, !apm)

let trace_gen =
  (* Random traces over a small universe of objects so install/remove pair
     up naturally and writes hit often enough to be interesting. *)
  let open QCheck2.Gen in
  let objects =
    [|
      (Object_desc.Global { var = "a" }, iv 0x1000 0x1003);
      (Object_desc.Global { var = "b" }, iv 0x1ff8 0x2007);
      (Object_desc.Heap { context = [ "f"; "main" ]; seq = 1 }, iv 0x3000 0x302b);
      (local ~func:"f" ~var:"x" ~inst:1, iv 0x8000 0x8003);
      (local ~func:"f" ~var:"x" ~inst:2, iv 0x8100 0x8103);
    |]
  in
  let* ops = list_size (int_range 1 80) (pair (int_range 0 4) (int_range 0 5)) in
  return
    (let b = Trace.Builder.create () in
     let live = Array.make (Array.length objects) false in
     List.iter
       (fun (kind, idx) ->
         let idx = idx mod Array.length objects in
         let obj, range = objects.(idx) in
         match kind with
         | 0 | 3 ->
             if not live.(idx) then begin
               Trace.Builder.add_install b obj range;
               live.(idx) <- true
             end
         | 1 ->
             if live.(idx) then begin
               Trace.Builder.add_remove b obj range;
               live.(idx) <- false
             end
         | _ ->
             (* Write somewhere near the object, sometimes exactly on it. *)
             let lo =
               if kind = 2 then Interval.lo range
               else (Interval.lo range + (idx * 812)) land lnot 3
             in
             Trace.Builder.add_write b (iv lo (lo + 3)) ~pc:idx)
       ops;
     Trace.Builder.finish b)

let sessions_under_test =
  [
    Session.One_global_static { var = "a" };
    Session.One_global_static { var = "b" };
    Session.One_heap { site = "f"; seq = 1 };
    Session.One_local_auto { func = "f"; var = "x" };
    Session.All_heap_in_func { func = "main" };
  ]

let prop_replay_matches_oracle =
  QCheck2.Test.make ~name:"replay_all matches naive oracle" ~count:150 trace_gen
    (fun trace ->
      let results = Replay.replay_all ~page_sizes:[ 4096 ] trace sessions_under_test in
      List.for_all
        (fun (s, c) ->
          let i, r, h, m, p, u, apm = naive_replay trace s ~page_size:4096 in
          let vm = Counts.vm_for c ~page_size:4096 in
          c.Counts.installs = i && c.Counts.removes = r && c.Counts.hits = h
          && c.Counts.misses = m && vm.Counts.protects = p
          && vm.Counts.unprotects = u && vm.Counts.active_page_misses = apm)
        results)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "sessions"
    [
      ( "matching",
        [
          Alcotest.test_case "OneLocalAuto" `Quick test_matches_one_local_auto;
          Alcotest.test_case "AllLocalInFunc" `Quick test_matches_all_local_in_func;
          Alcotest.test_case "OneHeap" `Quick test_matches_one_heap;
          Alcotest.test_case "AllHeapInFunc" `Quick test_matches_all_heap_in_func;
          Alcotest.test_case "OneGlobalStatic" `Quick test_matches_global;
        ] );
      ("discovery", [ Alcotest.test_case "kinds and dedup" `Quick test_discovery ]);
      ( "replay",
        [
          Alcotest.test_case "global session" `Quick test_replay_global_session;
          Alcotest.test_case "heap session" `Quick test_replay_heap_session;
          Alcotest.test_case "8K false sharing" `Quick test_replay_8k_false_sharing;
          Alcotest.test_case "cross-page monitor" `Quick test_replay_cross_page_monitor;
          Alcotest.test_case "word granularity" `Quick test_replay_word_granularity;
          Alcotest.test_case "AllHeapInFunc" `Quick test_replay_all_heap_in_func;
          Alcotest.test_case "replay_all consistent" `Quick
            test_replay_multiple_sessions_consistent;
          Alcotest.test_case "hitless filtered" `Quick
            test_discover_and_replay_filters_hitless;
          q prop_replay_matches_oracle;
        ] );
    ]
