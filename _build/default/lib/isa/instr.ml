type target = Label of string | Abs of int

type alu_op =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Sll
  | Srl
  | Sra
  | Slt
  | Sle
  | Seq
  | Sne

type cond = Eq | Ne | Lt | Ge | Gt | Le

type t =
  | Nop
  | Halt
  | Li of Reg.t * int
  | Mv of Reg.t * Reg.t
  | Alu of alu_op * Reg.t * Reg.t * Reg.t
  | Alui of alu_op * Reg.t * Reg.t * int
  | Lw of Reg.t * Reg.t * int
  | Lb of Reg.t * Reg.t * int
  | Sw of Reg.t * Reg.t * int
  | Sb of Reg.t * Reg.t * int
  | Br of cond * Reg.t * Reg.t * target
  | Jmp of target
  | Jal of target
  | Jalr of Reg.t
  | Ret
  | Syscall of int
  | Trap of int
  | Chk of { base : Reg.t; off : int; width : int }
  | Enter of int
  | Leave of int

let is_store = function Sw _ | Sb _ -> true | _ -> false

let store_width = function Sw _ -> Some 4 | Sb _ -> Some 1 | _ -> None

let branch_target = function
  | Br (_, _, _, t) | Jmp t | Jal t -> Some t
  | Nop | Halt | Li _ | Mv _ | Alu _ | Alui _ | Lw _ | Lb _ | Sw _ | Sb _
  | Jalr _ | Ret | Syscall _ | Trap _ | Chk _ | Enter _ | Leave _ ->
      None

let with_target t target =
  match t with
  | Br (c, r1, r2, _) -> Br (c, r1, r2, target)
  | Jmp _ -> Jmp target
  | Jal _ -> Jal target
  | Nop | Halt | Li _ | Mv _ | Alu _ | Alui _ | Lw _ | Lb _ | Sw _ | Sb _
  | Jalr _ | Ret | Syscall _ | Trap _ | Chk _ | Enter _ | Leave _ ->
      invalid_arg "Instr.with_target: instruction has no target"

let equal (a : t) (b : t) = a = b

let alu_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Sll -> "sll"
  | Srl -> "srl"
  | Sra -> "sra"
  | Slt -> "slt"
  | Sle -> "sle"
  | Seq -> "seq"
  | Sne -> "sne"

let cond_name = function
  | Eq -> "beq"
  | Ne -> "bne"
  | Lt -> "blt"
  | Ge -> "bge"
  | Gt -> "bgt"
  | Le -> "ble"

let pp_target ppf = function
  | Label l -> Format.pp_print_string ppf l
  | Abs i -> Format.fprintf ppf "@%d" i

let pp ppf = function
  | Nop -> Format.pp_print_string ppf "nop"
  | Halt -> Format.pp_print_string ppf "halt"
  | Li (rd, imm) -> Format.fprintf ppf "li %a, %d" Reg.pp rd imm
  | Mv (rd, rs) -> Format.fprintf ppf "mv %a, %a" Reg.pp rd Reg.pp rs
  | Alu (op, rd, r1, r2) ->
      Format.fprintf ppf "%s %a, %a, %a" (alu_name op) Reg.pp rd Reg.pp r1
        Reg.pp r2
  | Alui (op, rd, r1, imm) ->
      Format.fprintf ppf "%si %a, %a, %d" (alu_name op) Reg.pp rd Reg.pp r1 imm
  | Lw (rd, rs, off) -> Format.fprintf ppf "lw %a, %d(%a)" Reg.pp rd off Reg.pp rs
  | Lb (rd, rs, off) -> Format.fprintf ppf "lb %a, %d(%a)" Reg.pp rd off Reg.pp rs
  | Sw (rd, rs, off) -> Format.fprintf ppf "sw %a, %d(%a)" Reg.pp rd off Reg.pp rs
  | Sb (rd, rs, off) -> Format.fprintf ppf "sb %a, %d(%a)" Reg.pp rd off Reg.pp rs
  | Br (c, r1, r2, t) ->
      Format.fprintf ppf "%s %a, %a, %a" (cond_name c) Reg.pp r1 Reg.pp r2
        pp_target t
  | Jmp t -> Format.fprintf ppf "jmp %a" pp_target t
  | Jal t -> Format.fprintf ppf "jal %a" pp_target t
  | Jalr rs -> Format.fprintf ppf "jalr %a" Reg.pp rs
  | Ret -> Format.pp_print_string ppf "ret"
  | Syscall n -> Format.fprintf ppf "syscall %d" n
  | Trap n -> Format.fprintf ppf "trap %d" n
  | Chk { base; off; width } ->
      Format.fprintf ppf "chk %d(%a), %d" off Reg.pp base width
  | Enter f -> Format.fprintf ppf "enter %d" f
  | Leave f -> Format.fprintf ppf "leave %d" f

let to_string t = Format.asprintf "%a" pp t
