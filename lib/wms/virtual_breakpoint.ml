module Interval = Ebp_util.Interval
module Machine = Ebp_machine.Machine
module Memory = Ebp_machine.Memory

type t = {
  machine : Machine.t;
  timing : Timing.t;
  granularity : int;
  map : Monitor_map.t;
  unit_monitors : (int, int) Hashtbl.t;  (* view unit -> active monitor count *)
  page_refs : (int, int) Hashtbl.t;  (* machine page -> occupied-unit count *)
  stats : Wms.stats;
  mutable view_switches : int;
  mutable view_misses : int;
  notify : Wms.notification -> unit;
}

(* One hypervisor exit: switch to the data view, emulate the store there,
   switch back. The simulator collapses the single-step to a privileged
   store; the notification arrives after the write has succeeded (write
   monitors, not write barriers, §2). *)
let on_view_fault t machine ~addr ~width ~value ~pc =
  let mem = Machine.memory machine in
  Machine.charge machine
    (Timing.cycles
       (t.timing.Timing.vb_exit_us +. t.timing.Timing.vb_view_switch_us
      +. t.timing.Timing.software_lookup_us));
  t.stats.Wms.lookups <- t.stats.Wms.lookups + 1;
  t.view_switches <- t.view_switches + 1;
  if width = 4 then Memory.privileged_store_word mem addr value
  else Memory.privileged_store_byte mem addr value;
  let range = Interval.of_base_size ~base:addr ~size:width in
  if Monitor_map.overlaps t.map range then begin
    t.stats.Wms.hits <- t.stats.Wms.hits + 1;
    t.notify { Wms.write = range; pc }
  end
  else t.view_misses <- t.view_misses + 1

let attach ?(timing = Timing.sparcstation2) ?granularity machine ~notify =
  let mem = Machine.memory machine in
  let granularity =
    match granularity with Some g -> g | None -> Memory.page_size mem
  in
  let t =
    {
      machine;
      timing;
      granularity;
      map = Monitor_map.create ~page_size:granularity ();
      unit_monitors = Hashtbl.create 32;
      page_refs = Hashtbl.create 32;
      stats = Wms.fresh_stats ();
      view_switches = 0;
      view_misses = 0;
      notify;
    }
  in
  Machine.set_view_fault_handler machine (Some (on_view_fault t));
  t

let units_of_range t range =
  let first = Interval.lo range / t.granularity
  and last = Interval.hi range / t.granularity in
  List.init (last - first + 1) (fun i -> first + i)

let pages_of_unit t mem u =
  Memory.pages_of_range mem
    (Interval.of_base_size ~base:(u * t.granularity) ~size:t.granularity)

(* The mapping lives in the hypervisor, not on a protected debuggee page:
   updating it is one view update plus the software update — no
   unprotect/reprotect pair (contrast Virtual_memory.update_cost). *)
let update_cost timing =
  Timing.cycles
    (timing.Timing.vb_view_update_us +. timing.Timing.software_update_us)

let ref_page t mem page =
  let count = Option.value ~default:0 (Hashtbl.find_opt t.page_refs page) in
  Hashtbl.replace t.page_refs page (count + 1);
  if count = 0 then Memory.view_protect mem ~page Memory.Read_only

let unref_page t mem page =
  match Hashtbl.find_opt t.page_refs page with
  | None -> ()
  | Some count ->
      if count <= 1 then begin
        Hashtbl.remove t.page_refs page;
        Memory.view_protect mem ~page Memory.Read_write
      end
      else Hashtbl.replace t.page_refs page (count - 1)

let install t range =
  let mem = Machine.memory t.machine in
  Machine.charge t.machine (update_cost t.timing);
  Monitor_map.install t.map range;
  List.iter
    (fun u ->
      let count = Option.value ~default:0 (Hashtbl.find_opt t.unit_monitors u) in
      Hashtbl.replace t.unit_monitors u (count + 1);
      if count = 0 then begin
        (* One view update per unit transition, whatever the unit's page
           span — the hypervisor batches the mapping change. *)
        Machine.charge t.machine (Timing.cycles t.timing.Timing.vb_view_update_us);
        List.iter (ref_page t mem) (pages_of_unit t mem u)
      end)
    (units_of_range t range);
  t.stats.Wms.installs <- t.stats.Wms.installs + 1;
  Ok ()

let remove t range =
  let mem = Machine.memory t.machine in
  Machine.charge t.machine (update_cost t.timing);
  Monitor_map.remove t.map range;
  List.iter
    (fun u ->
      match Hashtbl.find_opt t.unit_monitors u with
      | None -> ()
      | Some count ->
          if count <= 1 then begin
            Hashtbl.remove t.unit_monitors u;
            Machine.charge t.machine
              (Timing.cycles t.timing.Timing.vb_view_update_us);
            List.iter (unref_page t mem) (pages_of_unit t mem u)
          end
          else Hashtbl.replace t.unit_monitors u (count - 1))
    (units_of_range t range);
  t.stats.Wms.removes <- t.stats.Wms.removes + 1;
  Ok ()

let strategy t =
  {
    Wms.name = "VirtualBreakpoint";
    install = install t;
    remove = remove t;
    active_monitors = (fun () -> Monitor_map.active_pages t.map);
    extras =
      (fun () ->
        [
          ("view_switch_faults", t.view_switches);
          ("view_miss_faults", t.view_misses);
        ]);
  }

let stats t = t.stats
let view_switch_faults t = t.view_switches
let view_miss_faults t = t.view_misses
