lib/sessions/replay.ml: Array Counts Discovery Ebp_trace Hashtbl List Option Session
