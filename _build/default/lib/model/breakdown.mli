(** Overhead breakdown by timing variable (paper §8, penultimate analysis).

    "For each program we calculated the mean, over all monitor sessions, of
    the percentage of time taken by each of the operations corresponding to
    our timing variables." The paper reports NHFaultHandler at 100% for NH,
    VMFaultHandler at 86–97% for VM-4K, TPFaultHandler at ~97% for TP, and
    SoftwareLookup at 98–99% for CP. *)

val mean_percentages :
  Strategy_model.overhead list -> (string * float) list
(** Mean share (in percent) of each timing variable across the given
    session overheads. Sessions with zero total overhead are skipped.
    Sorted descending by share. *)

val pp : Format.formatter -> (string * float) list -> unit
