lib/wms/wms.mli: Ebp_util
