(* Entry layout: a sealed body plus a 12-byte integrity trailer.

     body    = magic, 8-byte LE meta length, meta bytes, Trace.encode payload
     trailer = "EBPZ", 8-byte LE CRC-32 of body

   (Index entries seal a Write_index.encode body the same way.) The CRC
   is verified before any decoding, so truncation and bit flips are
   detected up front instead of surfacing as decoder errors — or worse,
   silently decoding to different events. A failed check quarantines the
   file (renamed [*.corrupt], counted, surfaced through the quarantine
   hook) and reads as a miss, so the caller transparently re-records.

   The version string below is hashed into every key and includes the
   trace codec version, so a format change (like the v2 -> v3 trailer
   addition) silently orphans old entries instead of misreading them. *)

(* v4: the trace key also owns two sidecar artifact families — the EBPT3
   columnar image ([<key>.ebpt3], self-sealed, loaded by mmap) and the
   write index ([<key>.<ikey>.widx], key-prefixed so GC can associate it
   with its trace). Including the columnar codec version here orphans
   every v3-era entry, including old bare [<ikey>.widx] files, which the
   orphan sweep in {!gc} then reclaims. *)
let version =
  "ebp-trace-cache-v4:" ^ Trace.codec_version ^ "+" ^ Trace.columnar_version
let magic = "EBPC3"
let trailer_magic = "EBPZ"
let trailer_len = 12

module Metrics = Ebp_obs.Metrics
module Span = Ebp_obs.Span
module Fault = Ebp_util.Fault
module Crc32 = Ebp_util.Crc32

(* Cache observability: hit/miss counters and latency histograms for both
   entry kinds, byte traffic, corruption/retry accounting, and what
   garbage collection reclaimed. All updates are no-ops (one branch)
   until Metrics.set_enabled. *)
let m_hits = Metrics.counter "trace_cache.hits"
let m_misses = Metrics.counter "trace_cache.misses"
let m_mapped_hits = Metrics.counter "trace_cache.mapped_hits"
let m_index_hits = Metrics.counter "trace_cache.index_hits"
let m_index_misses = Metrics.counter "trace_cache.index_misses"
let m_ckpt_hits = Metrics.counter "trace_cache.checkpoint_hits"
let m_ckpt_misses = Metrics.counter "trace_cache.checkpoint_misses"
let m_bytes_read = Metrics.counter "trace_cache.bytes_read"
let m_bytes_written = Metrics.counter "trace_cache.bytes_written"
let m_lookup_ns = Metrics.histogram "trace_cache.lookup_ns"
let m_store_ns = Metrics.histogram "trace_cache.store_ns"
let m_gc_removed = Metrics.counter "trace_cache.gc_removed"
let m_gc_reclaimed = Metrics.counter "trace_cache.gc_reclaimed_bytes"
let m_quarantined = Metrics.counter "trace_cache.quarantined"
let m_retries = Metrics.counter "trace_cache.store_retries"
let g_disk_bytes = Metrics.gauge "trace_cache.disk_bytes"

(* Fault points (see docs/ROBUSTNESS.md for the catalog). The store path
   distinguishes a transient I/O failure (retried), data corruption in
   flight (mangles the sealed bytes, so the CRC catches it on lookup),
   and three kill sites bracketing the write protocol; the lookup path
   has one data point mangling what was read. *)
let p_store_io = Fault.point "trace_cache.store.io"
let p_store_data = Fault.point "trace_cache.store.data"
let p_kill_tmp = Fault.point "trace_cache.store.kill_tmp"
let p_kill_write = Fault.point "trace_cache.store.kill_write"
let p_kill_rename = Fault.point "trace_cache.store.kill_rename"
let p_lookup_data = Fault.point "trace_cache.lookup.data"

let timed hist f =
  if not (Metrics.is_enabled ()) then f ()
  else begin
    let started_ns = Span.now_ns () in
    Fun.protect
      ~finally:(fun () -> Metrics.observe hist (Span.now_ns () - started_ns))
      f
  end

let default_dir () =
  let absolute p = String.length p > 0 && p.[0] = '/' in
  match Sys.getenv_opt "XDG_CACHE_HOME" with
  | Some dir when absolute dir -> Filename.concat dir "ebp"
  | _ -> (
      match Sys.getenv_opt "HOME" with
      | Some home when absolute home ->
          Filename.concat (Filename.concat home ".cache") "ebp"
      | _ -> ".ebp-cache")

let make_key ~name ~source ~seed ?fuel () =
  let fuel = match fuel with None -> "unlimited" | Some n -> string_of_int n in
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [ version; name; Digest.to_hex (Digest.string source);
            string_of_int seed; fuel ]))

let entry_path ~dir ~key = Filename.concat dir (key ^ ".trace")
let columnar_path ~dir ~key = Filename.concat dir (key ^ ".ebpt3")

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.is_directory dir -> ()
  end

(* --- sealing --- *)

let seal body =
  let t = Bytes.create trailer_len in
  Bytes.blit_string trailer_magic 0 t 0 4;
  Bytes.set_int64_le t 4 (Int64.of_int (Crc32.string body));
  body ^ Bytes.unsafe_to_string t

let unseal data =
  let n = String.length data in
  if n < trailer_len then Error "entry shorter than its checksum trailer"
  else if String.sub data (n - trailer_len) 4 <> trailer_magic then
    Error "missing checksum trailer"
  else
    let body_len = n - trailer_len in
    (* Compare all 8 stored bytes: a CRC-32 occupies the low 4, so the
       high 4 must be zero — masking them off would let flips there pass. *)
    let stored = String.get_int64_le data (n - 8) in
    if stored <> Int64.of_int (Crc32.sub data ~pos:0 ~len:body_len) then
      Error "checksum mismatch"
    else Ok (String.sub data 0 body_len)

let parse_entry body =
  let hdr = String.length magic + 8 in
  if String.length body < hdr then Error "entry header truncated"
  else if String.sub body 0 (String.length magic) <> magic then
    Error "bad entry magic"
  else
    let mlen = Int64.to_int (String.get_int64_le body (String.length magic)) in
    (* A corrupt meta length must never size an allocation: clamp it
       against the bytes actually present and report a miss. *)
    if mlen < 0 || mlen > String.length body - hdr then
      Error "meta length out of bounds"
    else
      let meta = String.sub body hdr mlen in
      Result.map
        (fun trace -> (trace, meta))
        (Trace.decode
           (String.sub body (hdr + mlen) (String.length body - hdr - mlen)))

(* --- quarantine --- *)

let quarantine_log = ref (fun ~file:_ ~reason:_ -> ())
let set_quarantine_log f = quarantine_log := f

let quarantine ~dir ~file ~reason =
  Metrics.incr m_quarantined;
  (try
     Sys.rename (Filename.concat dir file) (Filename.concat dir (file ^ ".corrupt"))
   with Sys_error _ -> ());
  !quarantine_log ~file ~reason

(* --- the store protocol --- *)

(* Write the sealed bytes to a fresh temp file and rename it into place.
   A [Fault.Killed] is a simulated crash: it must leave whatever litter a
   real kill at that site would (an empty temp file, a partial temp file,
   a complete-but-unrenamed temp file) for the crash-consistency tests —
   so only non-kill failures clean up the temp file. Lookups never see a
   partial entry either way: the rename is the commit point. *)
let write_entry ~path ~tmp data =
  let oc = open_out_bin tmp in
  (match
     Fault.check p_kill_tmp;
     let half = String.length data / 2 in
     output_substring oc data 0 half;
     Fault.check p_kill_write;
     output_substring oc data half (String.length data - half);
     Metrics.add m_bytes_written (String.length data)
   with
  | () -> close_out oc
  | exception e ->
      close_out_noerr oc;
      raise e);
  Fault.check p_kill_rename;
  Sys.rename tmp path

let max_store_attempts = 3

(* Transient failures (a Sys_error from the filesystem, an injected
   [Fail]) are retried with exponential backoff; corruption injected by
   [p_store_data] is NOT an error here — the sealed-then-mangled bytes
   land on disk and the CRC catches them at lookup time, which is the
   scenario the fault exists to create. *)
let store_file ~dir ~path data =
  let rec attempt n =
    match
      Fault.check p_store_io;
      let data = Fault.mangle p_store_data data in
      mkdir_p dir;
      let tmp =
        Filename.temp_file ~temp_dir:dir ("." ^ Filename.basename path) ".tmp"
      in
      (try write_entry ~path ~tmp data with
      | Fault.Killed _ as e -> raise e (* simulated crash: leave the litter *)
      | e ->
          (try if Sys.file_exists tmp then Sys.remove tmp with Sys_error _ -> ());
          raise e)
    with
    | () -> Ok ()
    | exception ((Sys_error _ | Fault.Injected _) as e) ->
        if n + 1 < max_store_attempts then begin
          Metrics.incr m_retries;
          Unix.sleepf (0.001 *. float_of_int (1 lsl n));
          attempt (n + 1)
        end
        else
          Error
            (match e with
            | Sys_error msg -> msg
            | Fault.Injected pt -> "injected fault at " ^ pt
            | _ -> assert false)
  in
  attempt 0

let entry_bytes_of ~meta trace =
  let payload = Trace.encode trace in
  let buf =
    Buffer.create (String.length magic + 8 + String.length meta
                   + String.length payload + trailer_len)
  in
  Buffer.add_string buf magic;
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int (String.length meta));
  Buffer.add_bytes buf b;
  Buffer.add_string buf meta;
  Buffer.add_string buf payload;
  seal (Buffer.contents buf)

(* The compact EBPT2 entry is canonical and written first — the crash
   fault points fire during its protocol, so a simulated kill leaves the
   cache exactly as sparse as before sidecars existed. The columnar
   sidecar is pure acceleration: its store is best-effort (a cache with
   only the canonical entry is merely slower), but a [Killed] still
   propagates — a simulated crash is a crash wherever it lands. *)
let store ~dir ~key ?(meta = "") trace =
  timed m_store_ns @@ fun () ->
  match store_file ~dir ~path:(entry_path ~dir ~key) (entry_bytes_of ~meta trace)
  with
  | Error _ as e -> e
  | Ok () ->
      (match
         store_file ~dir
           ~path:(columnar_path ~dir ~key)
           (Trace.encode_columnar ~meta trace)
       with
      | Ok () | Error _ -> ());
      Ok ()

let index_key ~key ~page_sizes =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          (version :: key :: Write_index.codec_version
          :: List.map string_of_int page_sizes)))

(* Key-prefixed ([<key>.<ikey>.widx]) so the GC can group an index with
   the trace it was built from; [ikey] still hashes the page sizes and
   codec versions, so distinct configurations coexist. *)
let index_path ~dir ~key ~page_sizes =
  Filename.concat dir (key ^ "." ^ index_key ~key ~page_sizes ^ ".widx")

let index_cached ~dir ~key ~page_sizes =
  Sys.file_exists (index_path ~dir ~key ~page_sizes)

let store_index ~dir ~key ~page_sizes index =
  timed m_store_ns @@ fun () ->
  store_file ~dir
    ~path:(index_path ~dir ~key ~page_sizes)
    (seal (Write_index.encode index))

(* Checkpoint chains are keyed like indices: [<key>.<ckey>.ckpt], with
   [ckey] rehashing the trace key and the checkpoint codec version, and
   the [<key>.] prefix tying the chain to its recording for the GC's
   orphan sweep. A chain is only meaningful next to the trace it was
   taken during (same program, seed, fuel — exactly what [key] hashes). *)
let checkpoint_key ~key =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00" [ version; key; Checkpoint.codec_version ]))

let checkpoint_path ~dir ~key =
  Filename.concat dir (key ^ "." ^ checkpoint_key ~key ^ ".ckpt")

let checkpoint_cached ~dir ~key = Sys.file_exists (checkpoint_path ~dir ~key)

let store_checkpoints ~dir ~key chain =
  timed m_store_ns @@ fun () ->
  store_file ~dir ~path:(checkpoint_path ~dir ~key)
    (seal (Checkpoint.encode chain))

(* --- lookups --- *)

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | data -> Some data
  | exception Sys_error _ -> None

(* Shared load path: read the whole file, pass it through the lookup
   fault point, verify the trailer, then parse. An absent or unreadable
   file is a plain miss; an injected transient read fault is a miss that
   leaves the (possibly fine) entry alone; a failed integrity check or
   parse quarantines the file and falls back to a miss, which makes the
   caller re-record. *)
let load_entry ~dir ~file parse =
  match read_file (Filename.concat dir file) with
  | None -> None
  | Some data -> (
      match Fault.mangle p_lookup_data data with
      | exception Fault.Injected _ -> None
      | data -> (
          Metrics.add m_bytes_read (String.length data);
          match Result.bind (unseal data) parse with
          | Ok v -> Some v
          | Error reason ->
              quarantine ~dir ~file ~reason;
              None))

let lookup_decoded ~dir ~key =
  timed m_lookup_ns @@ fun () ->
  let found = load_entry ~dir ~file:(key ^ ".trace") parse_entry in
  Metrics.incr (match found with Some _ -> m_hits | None -> m_misses);
  found

(* The mapped tier: try to mmap the EBPT3 sidecar before paying for a
   decode of the canonical entry. Under fault injection the mapping
   verifies the full checksum (injected corruption targets exactly the
   bytes the fast path trusts); a bad sidecar is quarantined and the
   decoded path takes over, so the tier can only ever cost a fallback,
   never an answer. *)
let lookup_mapped ~dir ~key =
  let file = key ^ ".ebpt3" in
  if not (Sys.file_exists (Filename.concat dir file)) then None
  else
    match
      Trace.map_columnar ~verify:(Fault.active ())
        (Filename.concat dir file)
    with
    | exception Fault.Injected _ -> None
    | Ok (trace, meta) ->
        Metrics.incr m_mapped_hits;
        Some (trace, meta)
    | Error reason ->
        quarantine ~dir ~file ~reason;
        None

let lookup ~dir ~key =
  timed m_lookup_ns @@ fun () ->
  let found =
    match lookup_mapped ~dir ~key with
    | Some _ as hit -> hit
    | None -> load_entry ~dir ~file:(key ^ ".trace") parse_entry
  in
  Metrics.incr (match found with Some _ -> m_hits | None -> m_misses);
  found

let lookup_index ~dir ~key ~page_sizes =
  timed m_lookup_ns @@ fun () ->
  let file = Filename.basename (index_path ~dir ~key ~page_sizes) in
  let found = load_entry ~dir ~file Write_index.decode in
  Metrics.incr (match found with Some _ -> m_index_hits | None -> m_index_misses);
  found

let lookup_checkpoints ~dir ~key =
  timed m_lookup_ns @@ fun () ->
  let file = Filename.basename (checkpoint_path ~dir ~key) in
  let found = load_entry ~dir ~file Checkpoint.decode in
  Metrics.incr (match found with Some _ -> m_ckpt_hits | None -> m_ckpt_misses);
  found

(* Garbage collection. The odoc contract is that entries never need
   invalidation (keys are content hashes over the codec version), only
   reclamation — so GC is pure space management: drop temp-file litter
   from interrupted stores and quarantined corpses, then evict
   coldest-first by mtime. *)

type entry_kind =
  | Trace_entry
  | Index_entry
  | Columnar_entry
  | Checkpoint_entry
  | Tmp_entry
  | Corrupt_entry

type entry = {
  entry_file : string;
  entry_kind : entry_kind;
  entry_bytes : int;
  entry_mtime : float;
}

let classify file =
  (* Quarantined corpses first ([<key>.trace.corrupt] must not count as a
     trace); temp files look like [.<key>.traceNNNNN.tmp]. *)
  if Filename.check_suffix file ".corrupt" then Some Corrupt_entry
  else if Filename.check_suffix file ".trace" then Some Trace_entry
  else if Filename.check_suffix file ".widx" then Some Index_entry
  else if Filename.check_suffix file ".ebpt3" then Some Columnar_entry
  else if Filename.check_suffix file ".ckpt" then Some Checkpoint_entry
  else if Filename.check_suffix file ".tmp" && String.length file > 0
          && file.[0] = '.' then Some Tmp_entry
  else None

(* The trace key a sidecar belongs to. Traces own themselves; new-style
   index names are [<key>.<ikey>.widx], so the key is the leading dot
   component — which also classifies a pre-v4 bare [<ikey>.widx] as
   owned by a key that has no trace, i.e. an orphan. *)
let owner_key e =
  match e.entry_kind with
  | Trace_entry -> Some (Filename.chop_suffix e.entry_file ".trace")
  | Columnar_entry -> Some (Filename.chop_suffix e.entry_file ".ebpt3")
  | Index_entry | Checkpoint_entry -> (
      match String.index_opt e.entry_file '.' with
      | Some i -> Some (String.sub e.entry_file 0 i)
      | None -> None)
  | Tmp_entry | Corrupt_entry -> None

let entries ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | files ->
      Array.to_list files
      |> List.filter_map (fun file ->
             match classify file with
             | None -> None
             | Some entry_kind -> (
                 match Unix.stat (Filename.concat dir file) with
                 | exception Unix.Unix_error _ -> None
                 | st when st.Unix.st_kind <> Unix.S_REG -> None
                 | st ->
                     Some
                       {
                         entry_file = file;
                         entry_kind;
                         entry_bytes = st.Unix.st_size;
                         entry_mtime = st.Unix.st_mtime;
                       }))
      |> List.sort (fun a b ->
             match compare a.entry_mtime b.entry_mtime with
             | 0 -> compare a.entry_file b.entry_file
             | c -> c)

let remove_entry ~dir e =
  match Sys.remove (Filename.concat dir e.entry_file) with
  | () ->
      Metrics.incr m_gc_removed;
      Metrics.add m_gc_reclaimed e.entry_bytes;
      true
  | exception Sys_error _ -> false

let total_bytes es =
  List.fold_left (fun acc e -> acc + e.entry_bytes) 0 es

let clear ~dir =
  let removed, reclaimed =
    List.fold_left
      (fun (n, b) e ->
        if remove_entry ~dir e then (n + 1, b + e.entry_bytes) else (n, b))
      (0, 0) (entries ~dir)
  in
  Metrics.set g_disk_bytes (float_of_int (total_bytes (entries ~dir)));
  (removed, reclaimed)

let gc ~dir ~max_bytes =
  let litter, live =
    List.partition
      (fun e -> e.entry_kind = Tmp_entry || e.entry_kind = Corrupt_entry)
      (entries ~dir)
  in
  (* A sidecar (.widx, .ebpt3) whose owning trace entry is gone — deleted
     by hand, evicted by an older GC, or stranded by the v4 renaming — is
     dead weight no lookup will ever reach: reclaim it with the litter. *)
  let trace_keys = Hashtbl.create 64 in
  List.iter
    (fun e ->
      if e.entry_kind = Trace_entry then
        match owner_key e with
        | Some k -> Hashtbl.replace trace_keys k ()
        | None -> ())
    live;
  let orphans, live =
    List.partition
      (fun e ->
        e.entry_kind <> Trace_entry
        && not
             (match owner_key e with
             | Some k -> Hashtbl.mem trace_keys k
             | None -> false))
      live
  in
  let drop acc e =
    let n, b = acc in
    if remove_entry ~dir e then (n + 1, b + e.entry_bytes) else acc
  in
  let acc = List.fold_left drop (0, 0) (litter @ orphans) in
  (* Evict whole ownership groups (trace + its sidecars), coldest trace
     first — [live] is oldest-mtime-first and every survivor has an owner
     in [trace_keys], so walking it and deleting each entry's entire
     group on first contact preserves the old coldest-first order while
     never leaving a freshly-orphaned sidecar behind. *)
  let group_of key =
    List.filter (fun e -> owner_key e = Some key) live
  in
  let evicted = Hashtbl.create 16 in
  let acc, _ =
    List.fold_left
      (fun ((n, b), remaining) e ->
        let key = Option.get (owner_key e) in
        if Hashtbl.mem evicted key || remaining <= max_bytes then
          ((n, b), remaining)
        else begin
          Hashtbl.add evicted key ();
          List.fold_left
            (fun ((n, b), remaining) e ->
              if remove_entry ~dir e then
                ((n + 1, b + e.entry_bytes), remaining - e.entry_bytes)
              else ((n, b), remaining))
            ((n, b), remaining)
            (group_of key)
        end)
      (acc, total_bytes live)
      live
  in
  Metrics.set g_disk_bytes (float_of_int (total_bytes (entries ~dir)));
  acc

(* --- integrity scan --- *)

type verify_report = {
  checked : int;
  intact : int;
  corrupt : (string * string) list;
  tmp_litter : int;
}

let verify ?(quarantine = true) ~dir () =
  let quarantine_one ~file ~reason =
    if quarantine then
      (* Reuse the lookup path's quarantine so the counter and hook see
         scans and lookups alike. *)
      (Metrics.incr m_quarantined;
       (try
          Sys.rename (Filename.concat dir file)
            (Filename.concat dir (file ^ ".corrupt"))
        with Sys_error _ -> ());
       !quarantine_log ~file ~reason)
  in
  let checked = ref 0 and intact = ref 0 and tmp_litter = ref 0 in
  let corrupt = ref [] in
  List.iter
    (fun e ->
      match e.entry_kind with
      | Tmp_entry -> incr tmp_litter
      | Corrupt_entry -> ()
      | Trace_entry | Index_entry | Columnar_entry | Checkpoint_entry -> (
          incr checked;
          let result =
            match read_file (Filename.concat dir e.entry_file) with
            | None -> Error "unreadable"
            | Some data -> (
                (* EBPT3 files are self-sealed: the decoder verifies its
                   own CRC trailer (and more — the mmap fast path trusts
                   it, so this is where a damaged sidecar gets caught). *)
                match e.entry_kind with
                | Columnar_entry ->
                    Result.map ignore (Trace.decode_columnar data)
                | Trace_entry ->
                    Result.bind (unseal data) (fun body ->
                        Result.map ignore (parse_entry body))
                | Checkpoint_entry ->
                    Result.bind (unseal data) (fun body ->
                        Result.map ignore (Checkpoint.decode body))
                | _ ->
                    Result.bind (unseal data) (fun body ->
                        Result.map ignore (Write_index.decode body)))
          in
          match result with
          | Ok () -> incr intact
          | Error reason ->
              corrupt := (e.entry_file, reason) :: !corrupt;
              quarantine_one ~file:e.entry_file ~reason))
    (entries ~dir);
  {
    checked = !checked;
    intact = !intact;
    corrupt =
      List.sort (fun (a, _) (b, _) -> String.compare a b) !corrupt;
    tmp_litter = !tmp_litter;
  }
