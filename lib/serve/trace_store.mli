(** The daemon's resident tier: an LRU of decoded traces and their write
    indices, shared read-only across requests.

    Three tiers answer a fetch, cheapest first:

    + {b warm} — the (trace, index) pair is already resident; the request
      pays a hash lookup.
    + {b disk} — the {!Ebp_trace.Trace_cache} under [cache_dir] holds the
      entry. When its EBPT3 columnar sidecar is intact the "load" is an
      [mmap] — the resident tier then caches the {e mapping}, one
      page-cache copy shared with every other process mapping the same
      file, not a decoded copy; otherwise the request pays an EBPT2
      decode. Either way an index build happens only when no [.widx]
      entry exists yet (the built index is stored back), chunked across
      the server's pool when one is supplied.
    + {b cold} — nothing anywhere; the program is recorded from source,
      then stored to both tiers (best-effort on disk).

    Entries are immutable once resident — {!Ebp_trace.Trace.t} and
    {!Ebp_trace.Write_index.t} are deeply immutable — so one resident
    entry can back any number of concurrent replays, including shards on
    pool domains, without copies or locks. Eviction is strict LRU on
    fetch order, bounded by [capacity] entries.

    Every outcome is counted when {!Ebp_obs.Metrics} is enabled:
    [serve.store.warm_hits], [serve.store.disk_hits],
    [serve.store.cold_records], [serve.store.evictions], the
    [serve.store.resident] gauge, and the [serve.store.load_ns] histogram
    of miss-path latencies. *)

type t

val create :
  ?capacity:int ->
  ?cache_dir:string ->
  ?page_sizes:int list ->
  ?pool:Ebp_util.Domain_pool.t ->
  unit ->
  t
(** [capacity] is the resident-entry bound (default 8, clamped below at
    1). [cache_dir] enables the disk tier; without it every LRU miss
    re-records. [page_sizes] parameterizes the write indices (default
    {!Ebp_sessions.Replay.default_page_sizes}). [pool] — typically the
    server's replay pool — parallelizes index builds on the miss paths;
    the store never outlives it. *)

val fetch :
  t ->
  name:string ->
  source:string ->
  seed:int ->
  (Ebp_trace.Trace.t * Ebp_trace.Write_index.t, string) result
(** The (trace, write index) of one recorded run of [source], resident
    after this call. The key is {!Ebp_trace.Trace_cache.make_key}, so the
    disk tier is shared with — and populated for — the batch CLI and the
    experiment engine (including the base-time metadata a warm
    [ebp experiment] needs). [Error _] reports compile or runtime
    failures of the program itself. *)

val resident : t -> int
(** Number of entries currently decoded in memory. *)

val capacity : t -> int
