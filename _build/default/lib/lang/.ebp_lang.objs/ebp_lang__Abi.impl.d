lib/lang/abi.ml: Typed
