(* Temporal write index: the trace preprocessed, once, into sorted
   posting lists so that phase-2 replay can answer "how many writes
   touched word w (page p) between events a and b?" with two binary
   searches instead of a scan. See the .mli for the shape and
   docs/PARALLELISM.md for how it is shared across domains. *)

(* --- small growable int vector (build-time only) --- *)

module Vec = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 8 0; len = 0 }

  let push v x =
    if v.len = Array.length v.data then begin
      let bigger = Array.make (2 * v.len) 0 in
      Array.blit v.data 0 bigger 0 v.len;
      v.data <- bigger
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1
end

(* --- posting lists, CSR form --- *)

(* [keys] sorted distinct; the events of key [keys.(i)] are
   [data.(offs.(i)) .. data.(offs.(i+1)) - 1]), sorted ascending (they are
   appended in trace order at build time). *)
type posting = { keys : int array; offs : int array; data : int array }

(* Merge per-chunk tables into one posting. The chunks cover disjoint,
   ascending event ranges, so concatenating a key's per-chunk runs in
   chunk order yields the same ascending event list a single-pass build
   appends — the serial build is just the one-chunk case of this
   function, which is what makes parallel and serial indexes structurally
   identical (and [equal] is structural). *)
let posting_of_tables (tbls : (int, Vec.t) Hashtbl.t list) =
  let keyset = Hashtbl.create 4096 in
  List.iter
    (fun tbl -> Hashtbl.iter (fun k _ -> Hashtbl.replace keyset k ()) tbl)
    tbls;
  let keys = Array.of_seq (Hashtbl.to_seq_keys keyset) in
  Array.sort Int.compare keys;
  let nkeys = Array.length keys in
  let offs = Array.make (nkeys + 1) 0 in
  for i = 0 to nkeys - 1 do
    let len =
      List.fold_left
        (fun acc tbl ->
          match Hashtbl.find_opt tbl keys.(i) with
          | Some v -> acc + v.Vec.len
          | None -> acc)
        0 tbls
    in
    offs.(i + 1) <- offs.(i) + len
  done;
  let data = Array.make offs.(nkeys) 0 in
  Array.iteri
    (fun i key ->
      let dst = ref offs.(i) in
      List.iter
        (fun tbl ->
          match Hashtbl.find_opt tbl key with
          | Some v ->
              Array.blit v.Vec.data 0 data !dst v.Vec.len;
              dst := !dst + v.Vec.len
          | None -> ())
        tbls)
    keys;
  { keys; offs; data }

let find_key p key =
  let rec go lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let k = p.keys.(mid) in
      if k = key then Some mid else if k < key then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length p.keys)

let has_key p key = find_key p key <> None

(* First index in [data[lo, hi)] holding a value >= x. *)
let lower_bound data lo hi x =
  let lo = ref lo and hi = ref hi in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Array.unsafe_get data mid < x then lo := mid + 1 else hi := mid
  done;
  !lo

let posting_count p key ~after ~before =
  match find_key p key with
  | None -> 0
  | Some i ->
      let lo = p.offs.(i) and hi = p.offs.(i + 1) in
      lower_bound p.data lo hi before - lower_bound p.data lo hi (after + 1)

(* Key-slice access: consumers that monitor a word/page RANGE iterate only
   the keys present in the posting — i.e. only words that were ever
   written — instead of probing every word of the range. *)

let key_range p ~lo ~hi =
  let n = Array.length p.keys in
  (lower_bound p.keys 0 n lo, lower_bound p.keys 0 n (hi + 1))

let key_count p = Array.length p.keys
let key_lower_bound p x = lower_bound p.keys 0 (Array.length p.keys) x

(* First index holding a key > x — [key_range]'s upper edge without the
   [x + 1] that overflows at [max_int]. *)
let key_upper_bound p x =
  let lo = ref 0 and hi = ref (Array.length p.keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Array.unsafe_get p.keys mid <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let key_at p i = p.keys.(i)

let count_at p i ~after ~before =
  let lo = p.offs.(i) and hi = p.offs.(i + 1) in
  lower_bound p.data lo hi before - lower_bound p.data lo hi (after + 1)

(* Total count over a whole run of windows (flattened open intervals,
   sorted and disjoint). Adaptive: two binary searches per window when
   windows are few relative to the key's events, one linear merge of the
   two sorted runs when they are not (a monitor re-installed on every
   call can have as many windows as the key has writes — per-window
   searching would cost windows × log instead of linear). *)
let count_within p i ~windows =
  let lo = p.offs.(i) and hi = p.offs.(i + 1) in
  let len = hi - lo and n = Array.length windows / 2 in
  if n = 0 || len = 0 then 0
  else begin
    let log2_len =
      let l = ref 0 and v = ref len in
      while !v > 1 do
        incr l;
        v := !v lsr 1
      done;
      !l
    in
    if 2 * n * log2_len < len + n then begin
      let acc = ref 0 in
      for k = 0 to n - 1 do
        acc :=
          !acc
          + lower_bound p.data lo hi windows.((2 * k) + 1)
          - lower_bound p.data lo hi (windows.(2 * k) + 1)
      done;
      !acc
    end
    else begin
      let acc = ref 0 and d = ref lo in
      for k = 0 to n - 1 do
        let a = windows.(2 * k) and b = windows.((2 * k) + 1) in
        while !d < hi && Array.unsafe_get p.data !d <= a do
          incr d
        done;
        while !d < hi && Array.unsafe_get p.data !d < b do
          incr d;
          incr acc
        done
      done;
      !acc
    end
  end

let positions_at p i ~after ~before =
  let lo = p.offs.(i) and hi = p.offs.(i + 1) in
  let a = lower_bound p.data lo hi (after + 1) in
  let b = lower_bound p.data lo hi before in
  Array.sub p.data a (b - a)

let positions p key ~after ~before =
  match find_key p key with
  | None -> [||]
  | Some i -> positions_at p i ~after ~before

(* --- position-set algebra ---

   The compiled query engine represents a predicate's result as the
   sorted, duplicate-free array of matching write positions; boolean
   connectives become merges over these sets. Inputs are sorted arrays
   (posting slices are; [union] additionally deduplicates, since a
   two-word write appears under both of its word keys). Results are
   always fresh arrays — inputs are never mutated, so posting data can
   be passed through directly. *)
module Pos_set = struct
  let empty = [||]

  let union ls =
    let total = List.fold_left (fun acc l -> acc + Array.length l) 0 ls in
    if total = 0 then empty
    else begin
      let buf = Array.make total 0 in
      let dst = ref 0 in
      List.iter
        (fun l ->
          Array.blit l 0 buf !dst (Array.length l);
          dst := !dst + Array.length l)
        ls;
      Array.sort Int.compare buf;
      let w = ref 1 in
      for r = 1 to total - 1 do
        if buf.(r) <> buf.(!w - 1) then begin
          buf.(!w) <- buf.(r);
          incr w
        end
      done;
      Array.sub buf 0 !w
    end

  let inter a b =
    let na = Array.length a and nb = Array.length b in
    let out = Array.make (min na nb) 0 in
    let i = ref 0 and j = ref 0 and w = ref 0 in
    while !i < na && !j < nb do
      let x = a.(!i) and y = b.(!j) in
      if x < y then incr i
      else if x > y then incr j
      else begin
        out.(!w) <- x;
        incr w;
        incr i;
        incr j
      end
    done;
    Array.sub out 0 !w

  let diff a b =
    let na = Array.length a and nb = Array.length b in
    let out = Array.make na 0 in
    let i = ref 0 and j = ref 0 and w = ref 0 in
    while !i < na do
      let x = a.(!i) in
      while !j < nb && b.(!j) < x do
        incr j
      done;
      if !j < nb && b.(!j) = x then incr i
      else begin
        out.(!w) <- x;
        incr w;
        incr i
      end
    done;
    Array.sub out 0 !w

  let within a ~lo ~hi =
    let n = Array.length a in
    let i = lower_bound a 0 n lo in
    let j = lower_bound a 0 n (hi + 1) in
    Array.sub a i (j - i)
end

(* --- the index --- *)

type page_view = {
  page_size : int;
  page_shift : int;
  (* Writes touching page p, where "touching" means p is the first or last
     page of the write's range — the scan engine's page_write semantics. *)
  page_writes : posting;
  (* Writes whose range spans exactly the pages (p, p+1), keyed by p. *)
  page_spans : posting;
  (* Writes spanning non-adjacent first/last pages: (event, first, last)
     triples, flattened. Vanishingly rare (write wider than a page). *)
  wide_pages : int array;
}

type t = {
  events : int;
  total_writes : int;
  (* Narrow (<= 2 word) writes touching word w. *)
  word_writes : posting;
  (* Narrow writes spanning the word boundary (w, w+1), keyed by w. *)
  word_spans : posting;
  (* Writes covering 3+ words: (event, first_word, last_word) triples.
     Machine stores are at most 4 bytes, so this is empty for recorded
     traces; synthetic traces may populate it. *)
  wide_words : int array;
  (* Every write (narrow and wide), keyed by pc; each write appears
     exactly once, so the concatenated data is a permutation of all
     write positions. Added in EBPW2 for the query engine. *)
  pc_writes : posting;
  (* Per interned object, its install/remove timeline: stride-3 records
     ((event lsl 1) lor tag, lo, hi) with tag 0 = install, 1 = remove.
     [obj_offs] is in records, so object o's records live at
     obj_data[3*obj_offs.(o) .. 3*obj_offs.(o+1) - 1]. *)
  obj_offs : int array;
  obj_data : int array;
  pages : page_view array;
}

let codec_version = "EBPW2"

let log2_exact n =
  let rec go i v = if v = 1 then i else go (i + 1) (v lsr 1) in
  if n <= 0 || n land (n - 1) <> 0 then
    invalid_arg "Write_index: page size must be a positive power of two"
  else go 0 n

(* Per-chunk build state: the single-pass tables of the original serial
   build, restricted to one contiguous event range. Event positions are
   global trace positions, so chunks can be merged by concatenation. *)
type chunk = {
  c_writes : int;
  c_word : (int, Vec.t) Hashtbl.t;
  c_word_span : (int, Vec.t) Hashtbl.t;
  c_wide : Vec.t;
  c_pc : (int, Vec.t) Hashtbl.t;
  c_objs : Vec.t array;
  c_pages : (int * int * (int, Vec.t) Hashtbl.t * (int, Vec.t) Hashtbl.t * Vec.t) list;
}

(* The chunk pass over an arbitrary event source: [iter f] must call [f]
   once per event, in order. [start] is the global position of the first
   event, so chunk positions always live in trace coordinates and chunks
   merge by concatenation. [nobjs] bounds the object ids the source may
   mention — for a full-trace chunk that is [Trace.object_count]; for an
   incrementally sealed block it is the objects registered so far. *)
let build_chunk_iter ~page_sizes ~nobjs ~start iter =
  let obj_vecs = Array.init nobjs (fun _ -> Vec.create ()) in
  let word_tbl : (int, Vec.t) Hashtbl.t = Hashtbl.create 4096 in
  let word_span_tbl : (int, Vec.t) Hashtbl.t = Hashtbl.create 64 in
  let pc_tbl : (int, Vec.t) Hashtbl.t = Hashtbl.create 1024 in
  let wide_words = Vec.create () in
  let push tbl key x =
    let v =
      match Hashtbl.find_opt tbl key with
      | Some v -> v
      | None ->
          let v = Vec.create () in
          Hashtbl.add tbl key v;
          v
    in
    Vec.push v x
  in
  let page_builders =
    List.map
      (fun page_size ->
        ( page_size,
          log2_exact page_size,
          (Hashtbl.create 1024 : (int, Vec.t) Hashtbl.t),
          (Hashtbl.create 64 : (int, Vec.t) Hashtbl.t),
          Vec.create () ))
      page_sizes
  in
  let total_writes = ref 0 in
  let pos = ref start in
  iter (fun ~tag ~obj ~lo ~hi ~pc ->
      let t = !pos in
      incr pos;
      if tag <= 1 then begin
        let v = obj_vecs.(obj) in
        Vec.push v ((t lsl 1) lor tag);
        Vec.push v lo;
        Vec.push v hi
      end
      else begin
        incr total_writes;
        push pc_tbl pc t;
        let fw = lo lsr 2 and lw = hi lsr 2 in
        if lw - fw <= 1 then begin
          push word_tbl fw t;
          if lw <> fw then begin
            push word_tbl lw t;
            push word_span_tbl fw t
          end
        end
        else begin
          Vec.push wide_words t;
          Vec.push wide_words fw;
          Vec.push wide_words lw
        end;
        List.iter
          (fun (_, shift, wtbl, stbl, wide) ->
            let fp = lo lsr shift and lp = hi lsr shift in
            push wtbl fp t;
            if lp <> fp then begin
              push wtbl lp t;
              if lp = fp + 1 then push stbl fp t
              else begin
                Vec.push wide t;
                Vec.push wide fp;
                Vec.push wide lp
              end
            end)
          page_builders
      end);
  {
    c_writes = !total_writes;
    c_word = word_tbl;
    c_word_span = word_span_tbl;
    c_wide = wide_words;
    c_pc = pc_tbl;
    c_objs = obj_vecs;
    c_pages = page_builders;
  }

let build_chunk ~page_sizes trace ~start ~stop =
  build_chunk_iter ~page_sizes ~nobjs:(Trace.object_count trace) ~start
    (fun f -> Trace.iter_raw_range trace ~start ~stop f)

let concat_vecs vecs =
  let total = List.fold_left (fun acc v -> acc + v.Vec.len) 0 vecs in
  let out = Array.make total 0 in
  let dst = ref 0 in
  List.iter
    (fun v ->
      Array.blit v.Vec.data 0 out !dst v.Vec.len;
      dst := !dst + v.Vec.len)
    vecs;
  out

(* Chunks below this many events are not worth a pool round-trip. *)
let parallel_threshold = 8192
let chunk_target = 4096

let m_build_chunks = Ebp_obs.Metrics.counter "index.build.chunks"

(* An object id beyond a chunk's vector array means the object was
   registered after the chunk was sealed (incremental builds only): it
   has no timeline entries in that chunk, so it reads as empty. For the
   batch build every chunk is sized to the full object count and this
   branch never fires. *)
let empty_vec = { Vec.data = [||]; len = 0 }
let chunk_obj c o = if o < Array.length c.c_objs then c.c_objs.(o) else empty_vec

(* Merge chunks covering disjoint ascending event ranges, in order. The
   serial build is the one-chunk case; incremental per-block builds reuse
   exactly this merge, which is what makes the streaming index
   structurally identical to the batch one. *)
let merge_chunks ~events ~nobjs chunks =
  let obj_offs = Array.make (nobjs + 1) 0 in
  for o = 0 to nobjs - 1 do
    obj_offs.(o + 1) <-
      obj_offs.(o)
      + List.fold_left (fun acc c -> acc + ((chunk_obj c o).Vec.len / 3)) 0 chunks
  done;
  let obj_data = Array.make (3 * obj_offs.(nobjs)) 0 in
  for o = 0 to nobjs - 1 do
    let dst = ref (3 * obj_offs.(o)) in
    List.iter
      (fun c ->
        let v = chunk_obj c o in
        Array.blit v.Vec.data 0 obj_data !dst v.Vec.len;
        dst := !dst + v.Vec.len)
      chunks
  done;
  {
    events;
    total_writes = List.fold_left (fun acc c -> acc + c.c_writes) 0 chunks;
    word_writes = posting_of_tables (List.map (fun c -> c.c_word) chunks);
    word_spans = posting_of_tables (List.map (fun c -> c.c_word_span) chunks);
    wide_words = concat_vecs (List.map (fun c -> c.c_wide) chunks);
    pc_writes = posting_of_tables (List.map (fun c -> c.c_pc) chunks);
    obj_offs;
    obj_data;
    pages =
      Array.of_list
        (List.mapi
           (fun i (page_size, page_shift, _, _, _) ->
             {
               page_size;
               page_shift;
               page_writes =
                 posting_of_tables
                   (List.map
                      (fun c ->
                        let _, _, wtbl, _, _ = List.nth c.c_pages i in
                        wtbl)
                      chunks);
               page_spans =
                 posting_of_tables
                   (List.map
                      (fun c ->
                        let _, _, _, stbl, _ = List.nth c.c_pages i in
                        stbl)
                      chunks);
               wide_pages =
                 concat_vecs
                   (List.map
                      (fun c ->
                        let _, _, _, _, wide = List.nth c.c_pages i in
                        wide)
                      chunks);
             })
           (List.hd chunks).c_pages);
  }

let build ?pool ~page_sizes trace =
  (* The whole build is one span: it is the warm-run cost the .widx cache
     exists to amortize, so its duration is worth a timeline entry. *)
  Ebp_obs.Span.with_span "index.build" @@ fun () ->
  let events = Trace.length trace in
  let nobjs = Trace.object_count trace in
  let nchunks, chunks =
    match pool with
    | Some pool
      when Ebp_util.Domain_pool.domains pool > 1 && events >= parallel_threshold ->
        let n =
          min (Ebp_util.Domain_pool.domains pool)
            (max 1 (events / chunk_target))
        in
        let bound i = events * i / n in
        ( n,
          Ebp_util.Domain_pool.map pool
            (fun i ->
              build_chunk ~page_sizes trace ~start:(bound i)
                ~stop:(bound (i + 1)))
            (List.init n Fun.id) )
    | _ -> (1, [ build_chunk ~page_sizes trace ~start:0 ~stop:events ])
  in
  Ebp_obs.Metrics.add m_build_chunks nchunks;
  merge_chunks ~events ~nobjs chunks

(* --- incremental (streaming) builds ---

   One chunk per sealed block, appended as the recording runs; a snapshot
   merges whatever is sealed so far through the same [merge_chunks] the
   batch build uses, so the snapshot over a prefix is [equal] to
   [build] over that prefix trace. Peak state is the per-block tables —
   O(block), not O(trace) — plus the sealed chunks themselves, which are
   exactly the posting data the final index needs anyway. *)

module Incremental = struct
  type builder = {
    page_sizes : int list;
    mutable chunks_rev : chunk list;
    mutable ev_count : int;
    mutable nobjs : int;
    mutable degraded : bool;
  }

  let p_merge = Ebp_util.Fault.point "stream.index_merge"
  let m_blocks = Ebp_obs.Metrics.counter "index.incremental.blocks"
  let m_degraded = Ebp_obs.Metrics.counter "index.incremental.degraded"

  let create ~page_sizes =
    { page_sizes; chunks_rev = []; ev_count = 0; nobjs = 0; degraded = false }

  let events b = b.ev_count
  let degraded b = b.degraded

  let add_block b ~nobjs ~count iter =
    let start = b.ev_count in
    b.ev_count <- start + count;
    b.nobjs <- max b.nobjs nobjs;
    if not b.degraded then begin
      match
        try
          Ebp_util.Fault.check p_merge;
          None
        with Ebp_util.Fault.Injected msg -> Some msg
      with
      | Some _ ->
          (* Fallback semantics: the incremental index is dropped for the
             rest of the recording and consumers batch-build over the
             prefix trace instead — a slower answer, never a wrong one. *)
          b.degraded <- true;
          b.chunks_rev <- [];
          Ebp_obs.Metrics.incr m_degraded
      | None ->
          let chunk =
            build_chunk_iter ~page_sizes:b.page_sizes ~nobjs ~start iter
          in
          b.chunks_rev <- chunk :: b.chunks_rev;
          Ebp_obs.Metrics.incr m_blocks
    end

  let snapshot b =
    if b.degraded then None
    else
      let chunks =
        match List.rev b.chunks_rev with
        | [] ->
            [
              build_chunk_iter ~page_sizes:b.page_sizes ~nobjs:0 ~start:0
                (fun _ -> ());
            ]
        | cs -> cs
      in
      Some (merge_chunks ~events:b.ev_count ~nobjs:b.nobjs chunks)
end

(* --- accessors --- *)

let events t = t.events
let total_writes t = t.total_writes
let object_count t = Array.length t.obj_offs - 1

let iter_object_timeline t o f =
  if o < 0 || o >= object_count t then
    invalid_arg "Write_index.iter_object_timeline: object id out of range";
  for k = t.obj_offs.(o) to t.obj_offs.(o + 1) - 1 do
    let base = 3 * k in
    let packed = t.obj_data.(base) in
    f ~ev:(packed lsr 1)
      ~is_install:(packed land 1 = 0)
      ~lo:t.obj_data.(base + 1)
      ~hi:t.obj_data.(base + 2)
  done

let word_writes t = t.word_writes
let word_spans t = t.word_spans
let pc_writes t = t.pc_writes
let page_writes v = v.page_writes
let page_spans v = v.page_spans

(* Each write has exactly one pc, so the pc posting's data is a
   permutation of all write positions: sorting a copy is the full
   position universe without rescanning the trace. *)
let all_write_positions t =
  let u = Array.copy t.pc_writes.data in
  Array.sort Int.compare u;
  u

let count_word_writes t ~word ~after ~before =
  posting_count t.word_writes word ~after ~before

let count_word_spans t ~word ~after ~before =
  posting_count t.word_spans word ~after ~before

let has_word_spans t ~word = has_key t.word_spans word

let iter_wide_word_writes t f =
  let n = Array.length t.wide_words / 3 in
  for i = 0 to n - 1 do
    f ~ev:t.wide_words.(3 * i)
      ~first:t.wide_words.((3 * i) + 1)
      ~last:t.wide_words.((3 * i) + 2)
  done

let page_sizes t = Array.to_list (Array.map (fun v -> v.page_size) t.pages)

let page_view t ~page_size =
  Array.find_opt (fun v -> v.page_size = page_size) t.pages

let page_shift v = v.page_shift

let count_page_writes v ~page ~after ~before =
  posting_count v.page_writes page ~after ~before

let count_page_spans v ~page ~after ~before =
  posting_count v.page_spans page ~after ~before

let has_page_spans v ~page = has_key v.page_spans page

let iter_wide_page_writes v f =
  let n = Array.length v.wide_pages / 3 in
  for i = 0 to n - 1 do
    f ~ev:v.wide_pages.(3 * i)
      ~first:v.wide_pages.((3 * i) + 1)
      ~last:v.wide_pages.((3 * i) + 2)
  done

let equal (a : t) (b : t) = a = b

(* --- binary codec --- *)

(* 8-byte LE ints, whole structure built in (or parsed from) one string:
   the in-memory form is what Trace_cache seals under a CRC trailer, so
   the codec never touches a channel except through thin wrappers. *)

let buf_int buf v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int v);
  Buffer.add_bytes buf b

let buf_array buf arr =
  let n = Array.length arr in
  let b = Bytes.create ((n + 1) * 8) in
  Bytes.set_int64_le b 0 (Int64.of_int n);
  for i = 0 to n - 1 do
    Bytes.set_int64_le b ((i + 1) * 8) (Int64.of_int arr.(i))
  done;
  Buffer.add_bytes buf b

let buf_posting buf p =
  buf_array buf p.keys;
  buf_array buf p.offs;
  buf_array buf p.data

let encode t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf codec_version;
  buf_int buf t.events;
  buf_int buf t.total_writes;
  buf_posting buf t.word_writes;
  buf_posting buf t.word_spans;
  buf_array buf t.wide_words;
  buf_posting buf t.pc_writes;
  buf_array buf t.obj_offs;
  buf_array buf t.obj_data;
  buf_int buf (Array.length t.pages);
  Array.iter
    (fun v ->
      buf_int buf v.page_size;
      buf_posting buf v.page_writes;
      buf_posting buf v.page_spans;
      buf_array buf v.wide_pages)
    t.pages;
  Buffer.contents buf

let write_binary oc t = output_string oc (encode t)

exception Malformed of string

let p_decode = Ebp_util.Fault.point "write_index.codec.decode"

(* Adversarial-input contract (see test_indexed.ml's mutation fuzzer):
   [decode] may accept or reject a mutated blob, but it must never raise,
   hang, or allocate unboundedly — every count is clamped against the
   bytes actually present before anything is sized from it. *)
let decode s =
  match Ebp_util.Fault.fires p_decode with
  | Some _ -> Error "injected fault at write_index.codec.decode"
  | None -> (
      let len = String.length s in
      let pos = ref 0 in
      let read_int () =
        if !pos + 8 > len then raise (Malformed "truncated int");
        let v = Int64.to_int (String.get_int64_le s !pos) in
        pos := !pos + 8;
        v
      in
      let read_array () =
        let n = read_int () in
        (* At most (len - pos) / 8 elements can be present: clamping here
           bounds the allocation a corrupt count can drive. *)
        if n < 0 || n > (len - !pos) / 8 then raise (Malformed "bad array length");
        let arr =
          Array.init n (fun i -> Int64.to_int (String.get_int64_le s (!pos + (i * 8))))
        in
        pos := !pos + (n * 8);
        arr
      in
      let check_monotone what arr =
        for i = 0 to Array.length arr - 2 do
          if arr.(i) > arr.(i + 1) then
            raise (Malformed (what ^ " offsets not monotone"))
        done
      in
      let read_posting () =
        let keys = read_array () in
        let offs = read_array () in
        let data = read_array () in
        if Array.length offs <> Array.length keys + 1 then
          raise (Malformed "posting offsets do not match keys");
        if Array.length offs > 0 && offs.(0) <> 0 then
          raise (Malformed "posting offsets do not start at zero");
        check_monotone "posting" offs;
        if offs.(Array.length keys) <> Array.length data then
          raise (Malformed "posting data does not match offsets");
        { keys; offs; data }
      in
      try
        if len < String.length codec_version
           || String.sub s 0 (String.length codec_version) <> codec_version
        then Error "bad write-index magic"
        else begin
          pos := String.length codec_version;
          let events = read_int () in
          let total_writes = read_int () in
          let word_writes = read_posting () in
          let word_spans = read_posting () in
          let wide_words = read_array () in
          let pc_writes = read_posting () in
          let obj_offs = read_array () in
          let obj_data = read_array () in
          if Array.length wide_words mod 3 <> 0 then
            raise (Malformed "bad wide-word list length");
          if Array.length pc_writes.data <> total_writes then
            raise (Malformed "pc posting does not cover the writes");
          if Array.length obj_offs = 0 then
            raise (Malformed "empty object offsets");
          check_monotone "object" obj_offs;
          if obj_offs.(0) <> 0
             || 3 * obj_offs.(Array.length obj_offs - 1)
                <> Array.length obj_data
          then raise (Malformed "object data does not match offsets");
          let npages = read_int () in
          if npages < 0 || npages > 64 then raise (Malformed "bad page-view count");
          let pages =
            Array.init npages (fun _ ->
                let page_size = read_int () in
                let page_shift =
                  try log2_exact page_size
                  with Invalid_argument _ -> raise (Malformed "bad page size")
                in
                let page_writes = read_posting () in
                let page_spans = read_posting () in
                let wide_pages = read_array () in
                if Array.length wide_pages mod 3 <> 0 then
                  raise (Malformed "bad wide-page list length");
                { page_size; page_shift; page_writes; page_spans; wide_pages })
          in
          if !pos <> len then Error "trailing bytes in write index"
          else
            Ok
              {
                events;
                total_writes;
                word_writes;
                word_spans;
                wide_words;
                pc_writes;
                obj_offs;
                obj_data;
                pages;
              }
        end
      with Malformed msg -> Error ("malformed write index: " ^ msg))

let read_binary ic = decode (In_channel.input_all ic)
