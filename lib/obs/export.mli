(** Serialization of metric snapshots: newline-delimited JSON, one metric
    per line, self-describing via a [type] field.

    The format, versioned by a leading meta line:

    {v
    {"type":"meta","format":"ebp-metrics","version":1}
    {"type":"counter","name":"trace_cache.hits","value":5,"domains":[[0,3],[2,2]]}
    {"type":"gauge","name":"trace_cache.disk_bytes","value":81920.0}
    {"type":"histogram","name":"span.index.build","count":5,"sum":..,"min":..,"max":..,"buckets":[[24,2],[25,3]]}
    v}

    [domains] is the per-domain counter breakdown (omitted when no
    domain contributed); histogram [buckets] pairs are
    [(bucket index, count)] with the geometry of {!Metrics.bucket_upper}.
    NDJSON is greppable, appendable, and streams — and {!of_ndjson} reads
    it back, so a saved snapshot can be re-rendered later
    ([ebp stats FILE]). *)

val to_ndjson : Metrics.snapshot -> string
(** Render a snapshot; lines are ordered counters, gauges, histograms,
    each alphabetically, so equal snapshots serialize identically. *)

val of_ndjson : string -> (Metrics.snapshot, string) result
(** Parse what {!to_ndjson} produced. Unknown [type] lines are skipped
    (forward compatibility); a malformed line or a wrong [format] is an
    error naming the line number. *)
