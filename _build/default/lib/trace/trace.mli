(** Program event traces (phase 1 of the paper's experiment, Figure 1).

    A trace is the session-independent record of one program run:

    - [Install (obj, range)] — a monitorable object came to life at [range];
    - [Remove (obj, range)] — it died (or moved, for realloc);
    - [Write (range, pc)] — a user-code store wrote [range].

    Install/Remove events exist for {e every} object any monitor session
    might care about; the phase-2 replay filters them per session. Writes
    from system calls, the allocator, and implicit frame bookkeeping are
    absent by construction (§6).

    Traces can hold millions of events, so they are stored packed (four
    integers per event, object descriptors interned in a side table); use
    {!iter_raw} for throughput-critical consumers. *)

type event =
  | Install of { obj : Object_desc.t; range : Ebp_util.Interval.t }
  | Remove of { obj : Object_desc.t; range : Ebp_util.Interval.t }
  | Write of { range : Ebp_util.Interval.t; pc : int }

type t

(** Growable trace under construction. *)
module Builder : sig
  type trace := t
  type t

  val create : unit -> t
  val add_install : t -> Object_desc.t -> Ebp_util.Interval.t -> unit
  val add_remove : t -> Object_desc.t -> Ebp_util.Interval.t -> unit
  val add_write : t -> Ebp_util.Interval.t -> pc:int -> unit
  val length : t -> int
  val finish : t -> trace
end

val length : t -> int
val get : t -> int -> event
val iter : t -> (event -> unit) -> unit

(** Raw iteration: [tag] 0 = install, 1 = remove, 2 = write; [obj] is an
    object id valid for {!object_of_id}, or [-1] for writes; the write range
    is [[lo, hi]]; [pc] is [-1] for install/remove. *)
val iter_raw : t -> (tag:int -> obj:int -> lo:int -> hi:int -> pc:int -> unit) -> unit

val object_count : t -> int
val object_of_id : t -> int -> Object_desc.t
val objects : t -> Object_desc.t array
(** All interned descriptors, indexed by object id. *)

(** Summary counts. *)
type stats = {
  events : int;
  installs : int;
  removes : int;
  writes : int;
  distinct_objects : int;
  write_bytes : int;  (** total bytes written *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

(** {2 Serialization} *)

val to_text : t -> string
(** One event per line: ["I <obj> <lo> <hi>"], ["R <obj> <lo> <hi>"],
    ["W <lo> <hi> <pc>"]. *)

val of_text : string -> (t, string) result

val write_binary : out_channel -> t -> unit
val read_binary : in_channel -> (t, string) result
(** Compact length-prefixed binary codec ("EBPT1" magic). *)
