module Interval = Ebp_util.Interval

type t = { mutable monitors : Interval.t list }

let create () = { monitors = [] }

(* Widen to word boundaries so semantics match Monitor_map (footnote 7). *)
let word_align range =
  Interval.make
    ~lo:(Interval.lo range land lnot 3)
    ~hi:(Interval.hi range lor 3)

let install t range = t.monitors <- word_align range :: t.monitors

let remove t range =
  let aligned = word_align range in
  let rec go acc = function
    | [] -> Error (Printf.sprintf "no monitor installed at %s" (Interval.to_string aligned))
    | m :: rest when Interval.equal m aligned ->
        t.monitors <- List.rev_append acc rest;
        Ok ()
    | m :: rest -> go (m :: acc) rest
  in
  go [] t.monitors

let overlaps t range =
  let aligned = word_align range in
  List.exists (fun m -> Interval.overlaps m aligned) t.monitors

let active_monitors t = List.length t.monitors
let is_empty t = t.monitors = []
