module Interval = Ebp_util.Interval
module Machine = Ebp_machine.Machine
module Reg = Ebp_isa.Reg
module Program = Ebp_isa.Program
module Debug_info = Ebp_lang.Debug_info
module Loader = Ebp_runtime.Loader
module Allocator = Ebp_runtime.Allocator
module Wms = Ebp_wms.Wms

type strategy_kind =
  | Native_hardware
  | Virtual_memory
  | Trap_patch
  | Code_patch
  | Code_patch_hoisted
  | Code_patch_inline
  | Virtual_breakpoint

let strategy_name = function
  | Native_hardware -> "NativeHardware"
  | Virtual_memory -> "VirtualMemory"
  | Trap_patch -> "TrapPatch"
  | Code_patch -> "CodePatch"
  | Code_patch_hoisted -> "CodePatch+hoist"
  | Code_patch_inline -> "CodePatch-inline"
  | Virtual_breakpoint -> "VirtualBreakpoint"

type hit = {
  write : Interval.t;
  pc : int;
  func : string option;
  instr : Ebp_isa.Instr.t option;
  value : int;
}

type alloc_watch = {
  aw_site : string;
  aw_nth : int;
  mutable aw_seen : int;
  mutable aw_range : Interval.t option;  (* armed range, tracked across realloc *)
}

type t = {
  loader : Loader.t;
  debug : Debug_info.t;
  original : Program.t;  (* un-instrumented program, for attribution *)
  strategy : Wms.strategy;
  site_of : (int, int) Hashtbl.t;  (* instrumented pc -> original pc *)
  func_starts : (int * string) array;  (* ascending by index *)
  mutable local_watches : (string * string) list;  (* (func, var) *)
  mutable active_locals : ((string * string) * Interval.t) list list;
      (* per live activation: the watched-local monitors it armed *)
  mutable alloc_watches : alloc_watch list;
  mutable hits : hit list;  (* reversed *)
  mutable errors : string list;  (* reversed *)
  mutable user_on_hit : (hit -> unit) option;
  mutable break_pred : (hit -> bool) option;
  mutable break_hit : hit option;
  mutable extras_published : (string * int) list;  (* metric -> last value *)
}

let func_starts_of program =
  let starts =
    List.filter_map
      (fun (label, idx) ->
        if String.length label > 2 && String.sub label 0 2 = "f_" then
          Some (idx, String.sub label 2 (String.length label - 2))
        else None)
      (Program.labels program)
  in
  Array.of_list (List.sort (fun (a, _) (b, _) -> Int.compare a b) starts)

let function_at t pc =
  let starts = t.func_starts in
  let n = Array.length starts in
  let rec search lo hi best =
    if lo > hi then best
    else
      let mid = (lo + hi) / 2 in
      let idx, name = starts.(mid) in
      if idx <= pc then search (mid + 1) hi (Some name) else search lo (mid - 1) best
  in
  if pc < 0 || pc >= Program.length t.original then None
  else search 0 (n - 1) None

let record_error t msg = t.errors <- msg :: t.errors

let deliver_hit t (n : Wms.notification) =
  let pc =
    match Hashtbl.find_opt t.site_of n.Wms.pc with Some orig -> orig | None -> n.Wms.pc
  in
  let machine = Loader.machine t.loader in
  let value =
    (* The write has completed (or been emulated) by notification time; a
       sub-word write is reported with its containing word's value. *)
    let addr = Interval.lo n.Wms.write in
    Ebp_machine.Memory.load_word (Machine.memory machine) (addr land lnot 3)
  in
  let hit =
    {
      write = n.Wms.write;
      pc;
      func = function_at t pc;
      instr =
        (if pc >= 0 && pc < Program.length t.original then
           Some (Program.get t.original pc)
         else None);
      value;
    }
  in
  t.hits <- hit :: t.hits;
  (match t.user_on_hit with Some f -> f hit | None -> ());
  match t.break_pred with
  | Some pred when t.break_hit = None && pred hit ->
      t.break_hit <- Some hit;
      Machine.halt machine 42
  | Some _ | None -> ()

let var_range ~fp (v : Debug_info.variable) =
  match v.Debug_info.location with
  | Debug_info.Frame off -> Interval.of_base_size ~base:(fp + off) ~size:v.Debug_info.size
  | Debug_info.Static addr -> Interval.of_base_size ~base:addr ~size:v.Debug_info.size

let on_enter t machine fid =
  let func = Debug_info.find_func t.debug fid in
  let fname = func.Debug_info.name in
  let watched_vars =
    List.filter_map
      (fun (f, v) -> if f = fname then Some v else None)
      t.local_watches
  in
  let installed =
    List.filter_map
      (fun var ->
        match
          List.find_opt
            (fun (v : Debug_info.variable) ->
              v.Debug_info.var_name = var && not v.Debug_info.is_static)
            func.Debug_info.vars
        with
        | None -> None
        | Some v -> (
            let range = var_range ~fp:(Machine.get_reg machine Reg.fp) v in
            match t.strategy.Wms.install range with
            | Ok () -> Some ((fname, var), range)
            | Error msg ->
                record_error t
                  (Printf.sprintf "arming %s.%s: %s" fname var msg);
                None))
      watched_vars
  in
  t.active_locals <- installed :: t.active_locals

let on_leave t _machine _fid =
  match t.active_locals with
  | installed :: rest ->
      List.iter
        (fun ((f, v), range) ->
          match t.strategy.Wms.remove range with
          | Ok () -> ()
          | Error msg -> record_error t (Printf.sprintf "disarming %s.%s: %s" f v msg))
        installed;
      t.active_locals <- rest
  | [] -> ()

let context_head t machine =
  match Machine.func_stack machine with
  | fid :: _ -> Some (Debug_info.find_func t.debug fid).Debug_info.name
  | [] -> None

let on_alloc_event t event =
  let machine = Loader.machine t.loader in
  match event with
  | Allocator.Alloc { addr; size } ->
      let site = context_head t machine in
      List.iter
        (fun aw ->
          if Some aw.aw_site = site then begin
            aw.aw_seen <- aw.aw_seen + 1;
            if aw.aw_seen = aw.aw_nth && aw.aw_range = None then begin
              let range = Interval.of_base_size ~base:addr ~size in
              match t.strategy.Wms.install range with
              | Ok () -> aw.aw_range <- Some range
              | Error msg ->
                  record_error t
                    (Printf.sprintf "arming heap %s#%d: %s" aw.aw_site aw.aw_nth msg)
            end
          end)
        t.alloc_watches
  | Allocator.Free { addr; size = _ } ->
      List.iter
        (fun aw ->
          match aw.aw_range with
          | Some range when Interval.lo range = addr ->
              (match t.strategy.Wms.remove range with
              | Ok () -> ()
              | Error msg -> record_error t ("disarming heap watch: " ^ msg));
              aw.aw_range <- None
          | Some _ | None -> ())
        t.alloc_watches
  | Allocator.Realloc { old_addr; old_size = _; new_addr; new_size } ->
      List.iter
        (fun aw ->
          match aw.aw_range with
          | Some range when Interval.lo range = old_addr ->
              (match t.strategy.Wms.remove range with
              | Ok () -> ()
              | Error msg -> record_error t ("re-arming heap watch: " ^ msg));
              let range = Interval.of_base_size ~base:new_addr ~size:new_size in
              (match t.strategy.Wms.install range with
              | Ok () -> aw.aw_range <- Some range
              | Error msg ->
                  record_error t ("re-arming heap watch: " ^ msg);
                  aw.aw_range <- None)
          | Some _ | None -> ())
        t.alloc_watches

let load ?(strategy = Code_patch) ?timing ?seed ?monitor_reg_count
    (compiled : Ebp_lang.Compiler.output) =
  let original = compiled.Ebp_lang.Compiler.program in
  let site_of = Hashtbl.create 64 in
  let exec_program, make_strategy =
    match strategy with
    | Code_patch ->
        let patched = Ebp_wms.Code_patch.instrument original in
        (* Map each stub's Chk site (second stub slot) back to the
           original store index. *)
        let ilen = Program.length original in
        List.iteri
          (fun i (store_idx, _) ->
            Hashtbl.replace site_of (ilen + (3 * i) + 1) store_idx)
          (Program.stores original);
        ( Ebp_wms.Code_patch.program patched,
          fun machine notify ->
            Ebp_wms.Code_patch.strategy
              (Ebp_wms.Code_patch.attach ?timing patched machine ~notify) )
    | Code_patch_hoisted ->
        let patched = Ebp_wms.Hoisted_code_patch.instrument original in
        let hp = Ebp_wms.Hoisted_code_patch.program patched in
        (* Translate every per-store check pc back to its original site. *)
        for pc = Program.length original to Program.length hp - 1 do
          match Ebp_wms.Hoisted_code_patch.original_site patched pc with
          | Some orig -> Hashtbl.replace site_of pc orig
          | None -> ()
        done;
        ( hp,
          fun machine notify ->
            Ebp_wms.Hoisted_code_patch.strategy
              (Ebp_wms.Hoisted_code_patch.attach ?timing patched machine ~notify) )
    | Code_patch_inline ->
        let patched = Ebp_wms.Inline_code_patch.instrument original in
        ( Ebp_wms.Inline_code_patch.program patched,
          fun machine notify ->
            Ebp_wms.Inline_code_patch.strategy
              (Ebp_wms.Inline_code_patch.attach ?timing patched machine ~notify) )
    | Trap_patch ->
        let patched = Ebp_wms.Trap_patch.instrument original in
        ( Ebp_wms.Trap_patch.program patched,
          fun machine notify ->
            Ebp_wms.Trap_patch.strategy
              (Ebp_wms.Trap_patch.attach ?timing patched machine ~notify) )
    | Virtual_memory ->
        ( original,
          fun machine notify ->
            Ebp_wms.Virtual_memory.strategy
              (Ebp_wms.Virtual_memory.attach ?timing machine ~notify) )
    | Native_hardware ->
        ( original,
          fun machine notify ->
            Ebp_wms.Native_hardware.strategy
              (Ebp_wms.Native_hardware.attach ?timing machine ~notify) )
    | Virtual_breakpoint ->
        ( original,
          fun machine notify ->
            Ebp_wms.Virtual_breakpoint.strategy
              (Ebp_wms.Virtual_breakpoint.attach ?timing machine ~notify) )
  in
  let loader =
    Loader.load ?seed ?monitor_reg_count
      { Ebp_lang.Compiler.program = exec_program;
        debug = compiled.Ebp_lang.Compiler.debug }
  in
  let machine = Loader.machine loader in
  let rec t =
    lazy
      {
        loader;
        debug = compiled.Ebp_lang.Compiler.debug;
        original;
        strategy = make_strategy machine (fun n -> deliver_hit (Lazy.force t) n);
        site_of;
        func_starts = func_starts_of original;
        local_watches = [];
        active_locals = [];
        alloc_watches = [];
        hits = [];
        errors = [];
        user_on_hit = None;
        break_pred = None;
        break_hit = None;
        extras_published = [];
      }
  in
  let t = Lazy.force t in
  Machine.set_enter_hook machine (Some (on_enter t));
  Machine.set_leave_hook machine (Some (on_leave t));
  Allocator.set_event_hook (Loader.allocator loader) (Some (on_alloc_event t));
  t

let load_source ?strategy ?timing ?seed ?monitor_reg_count source =
  Result.map
    (load ?strategy ?timing ?seed ?monitor_reg_count)
    (Ebp_lang.Compiler.compile source)

let watch_global t name =
  match Debug_info.global_by_name t.debug name with
  | None -> Error (Printf.sprintf "no global named %s" name)
  | Some g ->
      t.strategy.Wms.install
        (Interval.of_base_size ~base:g.Debug_info.g_addr ~size:g.Debug_info.g_size)

let watch_local t ~func ~var =
  match Debug_info.func_by_name t.debug func with
  | None -> Error (Printf.sprintf "no function named %s" func)
  | Some f ->
      let known =
        List.exists
          (fun (v : Debug_info.variable) ->
            v.Debug_info.var_name = var && not v.Debug_info.is_static)
          f.Debug_info.vars
      in
      if not known then Error (Printf.sprintf "no local %s in %s" var func)
      else begin
        t.local_watches <- (func, var) :: t.local_watches;
        Ok ()
      end

let watch_alloc t ~site ~nth =
  t.alloc_watches <-
    { aw_site = site; aw_nth = nth; aw_seen = 0; aw_range = None } :: t.alloc_watches

let on_hit t f = t.user_on_hit <- Some f
let break_when t pred = t.break_pred <- Some pred
let break_hit t = t.break_hit

let run ?fuel t =
  let result = Loader.run ?fuel t.loader in
  (* Surface strategy-specific auxiliary counters (page misses, view
     switches, ...) through the metrics registry so `ebp stats` renders
     them uniformly. Counters are cumulative, so publish the delta since
     the previous run. *)
  List.iter
    (fun (key, v) ->
      let name = Printf.sprintf "wms.%s.%s" t.strategy.Wms.name key in
      let prev =
        match List.assoc_opt name t.extras_published with Some p -> p | None -> 0
      in
      if v <> prev then begin
        Ebp_obs.Metrics.add (Ebp_obs.Metrics.counter name) (v - prev);
        t.extras_published <-
          (name, v) :: List.remove_assoc name t.extras_published
      end)
    (t.strategy.Wms.extras ());
  result

let hits t = List.rev t.hits
let errors t = List.rev t.errors
let cycles t = Machine.cycles (Loader.machine t.loader)
let strategy t = t.strategy
let loader t = t.loader
