(** Sparse, paged byte-addressable memory with per-page write protection.

    This is the substrate for the VirtualMemory strategy: the WMS write
    protects the pages a monitor resides on and catches the resulting write
    faults. Pages are materialized on demand and zero-filled, so a machine
    with a 4 GiB address space costs only what it touches.

    Word accesses are 4-byte little-endian and must be aligned. Stores
    truncate to 32 bits; word loads sign-extend, byte loads zero-extend.

    Protected stores raise {!Write_fault}; they never modify memory. The
    privileged accessors bypass protection — they model the fault handler
    (or the debugger) emulating the faulting instruction.

    Each page additionally carries a second, independent protection — the
    {e data view} — modelling the hypervisor-maintained shadow mapping of
    the VB strategy (Price, {e Virtual Breakpoints for x86/64},
    {{:https://arxiv.org/pdf/1801.09250}arXiv:1801.09250}). A store must
    clear both domains: the guest protection faults first
    ({!Write_fault}), then the view ({!View_fault}). The view is invisible
    to guest-level primitives — {!protection}, {!protected_page_count} and
    mprotect-style {!protect} never observe or touch it. *)

type t

type protection = Read_write | Read_only

exception Write_fault of { addr : int; width : int }

exception View_fault of { addr : int; width : int }
(** A store cleared the guest protection but hit a write-protected page in
    the hypervisor's data view — a hypervisor exit, not a guest fault. *)

exception Bad_address of { addr : int; what : string }
(** Raised on negative, out-of-space, or (for words) unaligned addresses. *)

val create : ?page_size:int -> unit -> t
(** [page_size] must be a positive power of two (default 4096). *)

val page_size : t -> int

val page_of : t -> int -> int
(** Page index containing a byte address. *)

val pages_of_range : t -> Ebp_util.Interval.t -> int list
(** Ascending page indices covering an address interval. *)

val load_word : t -> int -> int
val load_byte : t -> int -> int

val store_word : t -> int -> int -> unit
(** [store_word t addr v]: respects protection. @raise Write_fault *)

val store_byte : t -> int -> int -> unit

val privileged_store_word : t -> int -> int -> unit
val privileged_store_byte : t -> int -> int -> unit

val protect : t -> page:int -> protection -> unit
val protection : t -> page:int -> protection

val protect_range : t -> Ebp_util.Interval.t -> protection -> unit
(** Apply a protection to every page covering the interval. *)

val protected_page_count : t -> int
(** Number of pages currently read-only. *)

val view_protect : t -> page:int -> protection -> unit
(** Change one page's protection in the hypervisor data view. Guest
    protection and guest-visible accessors are unaffected. *)

val view_protection : t -> page:int -> protection

val view_protected_page_count : t -> int
(** Number of pages currently read-only in the data view. *)

val materialized_pages : t -> int
(** Number of pages backed by storage (diagnostics). *)

val fold_pages : t -> init:'a -> f:('a -> int -> bytes -> 'a) -> 'a
(** Fold over materialized pages in ascending index order. The [bytes]
    are the live page buffer — callers must not mutate them. Note that
    an all-zero materialized page is semantically identical to an absent
    one; consumers comparing memories should skip zero pages. *)

(** {2 Dirty-page tracking}

    Checkpoint support: with tracking on, every store (protected,
    privileged, or faulted-through) marks its page dirty, and
    {!take_dirty} drains the set as page snapshots. Off by default; the
    cost when off is one branch per store. *)

val set_dirty_tracking : t -> bool -> unit
(** Enable/disable tracking. Does not clear an already-collected dirty
    set — {!take_dirty} does. *)

val dirty_tracking : t -> bool

val take_dirty : t -> (int * bytes) list
(** The pages written since the last [take_dirty] (or since tracking
    began), as [(page index, page contents copy)] in ascending index
    order, and clear the set. *)

val overlay_page : t -> page:int -> bytes -> unit
(** Replace one page's contents (protection is untouched) — the restore
    half of {!take_dirty}.
    @raise Invalid_argument if [bytes] is not exactly one page. *)
