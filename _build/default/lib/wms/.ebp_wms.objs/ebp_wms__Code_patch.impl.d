lib/wms/code_patch.ml: Ebp_isa Ebp_machine Ebp_util List Monitor_map Timing Wms
