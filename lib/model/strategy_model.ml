module Timing = Ebp_wms.Timing
module Counts = Ebp_sessions.Counts

type approach = NH | VM of int | TP | CP | VB of int | Remote of approach

let rec name = function
  | NH -> "NH"
  | VM ps when ps mod 1024 = 0 -> Printf.sprintf "VM-%dK" (ps / 1024)
  | VM ps -> Printf.sprintf "VM-%d" ps
  | TP -> "TP"
  | CP -> "CP"
  | VB g when g mod 1024 = 0 -> Printf.sprintf "VB-%dK" (g / 1024)
  | VB g -> Printf.sprintf "VB-%d" g
  | Remote a -> name a ^ "-rem"

let rec long_name = function
  | NH -> "NativeHardware"
  | VM ps when ps mod 1024 = 0 -> Printf.sprintf "VirtualMemory-%dK" (ps / 1024)
  | VM ps -> Printf.sprintf "VirtualMemory-%d" ps
  | TP -> "TrapPatch"
  | CP -> "CodePatch"
  | VB g when g mod 1024 = 0 -> Printf.sprintf "VirtualBreakpoint-%dK" (g / 1024)
  | VB g -> Printf.sprintf "VirtualBreakpoint-%d" g
  | Remote a -> long_name a ^ "-remote"

let default_approaches = [ NH; VM 4096; VM 8192; TP; CP; VB 4096; VB 8192 ]

let of_name s =
  let size_of str =
    match int_of_string_opt str with
    | Some n when n > 0 -> Some n
    | _ ->
        if String.length str > 1 && str.[String.length str - 1] = 'K' then
          match int_of_string_opt (String.sub str 0 (String.length str - 1)) with
          | Some n when n > 0 -> Some (n * 1024)
          | _ -> None
        else None
  in
  let sized prefix rest =
    match size_of rest with
    | Some n -> Ok n
    | None ->
        Error
          (Printf.sprintf "%s-%s: expected a positive size in bytes or <n>K"
             prefix rest)
  in
  let rec go s =
    if String.length s > 4 && String.ends_with ~suffix:"-rem" s then
      match go (String.sub s 0 (String.length s - 4)) with
      | Ok CP -> Error "CP-rem: CP generates no faults to forward (§3.4)"
      | Ok (Remote _) -> Error (s ^ ": nested -rem is not supported")
      | Ok a -> Ok (Remote a)
      | Error _ as e -> e
    else
      match s with
      | "NH" -> Ok NH
      | "TP" -> Ok TP
      | "CP" -> Ok CP
      | _ when String.starts_with ~prefix:"VM-" s ->
          Result.map
            (fun n -> VM n)
            (sized "VM" (String.sub s 3 (String.length s - 3)))
      | _ when String.starts_with ~prefix:"VB-" s ->
          Result.map
            (fun n -> VB n)
            (sized "VB" (String.sub s 3 (String.length s - 3)))
      | _ ->
          Error
            (Printf.sprintf
               "unknown approach %S (expected NH, TP, CP, VM-<size> or \
                VB-<size>, optionally suffixed with -rem)"
               s)
  in
  go s

type overhead = {
  hit_us : float;
  miss_us : float;
  install_us : float;
  remove_us : float;
  total_us : float;
  breakdown : (string * float) list;
}

let f = float_of_int

let finish ~hit_us ~miss_us ~install_us ~remove_us ~breakdown =
  let breakdown = List.filter (fun (_, v) -> v <> 0.0) breakdown in
  {
    hit_us;
    miss_us;
    install_us;
    remove_us;
    total_us = hit_us +. miss_us +. install_us +. remove_us;
    breakdown;
  }

(* Fault-driven events that would cross the address-space boundary under
   the §3.4 ptrace-style arrangement, split into (hit-side, miss-side):
   each pays a context-switch round trip. *)
let remote_faults approach (c : Counts.t) =
  match approach with
  | NH -> (c.Counts.hits, 0)
  | VM page_size ->
      (c.Counts.hits, (Counts.vm_for c ~page_size).Counts.active_page_misses)
  | TP -> (c.Counts.hits, c.Counts.misses)
  | VB granularity ->
      ( c.Counts.hits,
        (Counts.vm_for c ~page_size:granularity).Counts.active_page_misses )
  | CP | Remote _ ->
      invalid_arg "Strategy_model: Remote applies to NH, VM, TP, VB only"

let rec overhead (t : Timing.t) approach (c : Counts.t) =
  match approach with
  | Remote base ->
      let o = overhead t base c in
      let hit_faults, miss_faults = remote_faults base c in
      (* Under VB the debugger already lives outside the guest: delivering a
         notification out-of-guest costs one extra hypervisor exit per fault
         (the exit cost doubles), not a SunOS context-switch round trip. *)
      let label, per_fault =
        match base with
        | VB _ -> ("VBRemoteExit", t.Timing.vb_exit_us)
        | _ -> ("ContextSwitch", 2.0 *. t.Timing.context_switch_us)
      in
      let hit_switch = f hit_faults *. per_fault in
      let miss_switch = f miss_faults *. per_fault in
      {
        hit_us = o.hit_us +. hit_switch;
        miss_us = o.miss_us +. miss_switch;
        install_us = o.install_us;
        remove_us = o.remove_us;
        total_us = o.total_us +. hit_switch +. miss_switch;
        breakdown = (label, hit_switch +. miss_switch) :: o.breakdown;
      }
  | NH ->
      let hit_us = f c.Counts.hits *. t.Timing.nh_fault_handler_us in
      finish ~hit_us ~miss_us:0.0 ~install_us:0.0 ~remove_us:0.0
        ~breakdown:[ ("NHFaultHandler", hit_us) ]
  | VM page_size ->
      let vm = Counts.vm_for c ~page_size in
      let faults = c.Counts.hits + vm.Counts.active_page_misses in
      let hit_us =
        f c.Counts.hits *. (t.Timing.vm_fault_handler_us +. t.Timing.software_lookup_us)
      in
      let miss_us =
        f vm.Counts.active_page_misses
        *. (t.Timing.vm_fault_handler_us +. t.Timing.software_lookup_us)
      in
      let update_triple =
        t.Timing.vm_unprotect_us +. t.Timing.software_update_us +. t.Timing.vm_protect_us
      in
      let install_us =
        (f c.Counts.installs *. update_triple)
        +. (f vm.Counts.protects *. t.Timing.vm_protect_us)
      in
      let remove_us =
        (f c.Counts.removes *. update_triple)
        +. (f vm.Counts.unprotects *. t.Timing.vm_unprotect_us)
      in
      finish ~hit_us ~miss_us ~install_us ~remove_us
        ~breakdown:
          [
            ("VMFaultHandler", f faults *. t.Timing.vm_fault_handler_us);
            ("SoftwareLookup", f faults *. t.Timing.software_lookup_us);
            ( "SoftwareUpdate",
              f (c.Counts.installs + c.Counts.removes) *. t.Timing.software_update_us );
            ( "VMProtect",
              f (c.Counts.installs + c.Counts.removes + vm.Counts.protects)
              *. t.Timing.vm_protect_us );
            ( "VMUnprotect",
              f (c.Counts.installs + c.Counts.removes + vm.Counts.unprotects)
              *. t.Timing.vm_unprotect_us );
          ]
  | TP ->
      let writes = c.Counts.hits + c.Counts.misses in
      let per_write = t.Timing.tp_fault_handler_us +. t.Timing.software_lookup_us in
      let hit_us = f c.Counts.hits *. per_write in
      let miss_us = f c.Counts.misses *. per_write in
      let install_us = f c.Counts.installs *. t.Timing.software_update_us in
      let remove_us = f c.Counts.removes *. t.Timing.software_update_us in
      finish ~hit_us ~miss_us ~install_us ~remove_us
        ~breakdown:
          [
            ("TPFaultHandler", f writes *. t.Timing.tp_fault_handler_us);
            ("SoftwareLookup", f writes *. t.Timing.software_lookup_us);
            ( "SoftwareUpdate",
              f (c.Counts.installs + c.Counts.removes) *. t.Timing.software_update_us );
          ]
  | CP ->
      let writes = c.Counts.hits + c.Counts.misses in
      let hit_us = f c.Counts.hits *. t.Timing.software_lookup_us in
      let miss_us = f c.Counts.misses *. t.Timing.software_lookup_us in
      let install_us = f c.Counts.installs *. t.Timing.software_update_us in
      let remove_us = f c.Counts.removes *. t.Timing.software_update_us in
      finish ~hit_us ~miss_us ~install_us ~remove_us
        ~breakdown:
          [
            ("SoftwareLookup", f writes *. t.Timing.software_lookup_us);
            ( "SoftwareUpdate",
              f (c.Counts.installs + c.Counts.removes) *. t.Timing.software_update_us );
          ]
  | VB granularity ->
      (* Same fault-generating sets as VM at page size [granularity] — any
         store into a view-protected unit exits to the hypervisor — but
         priced with hypervisor costs, and no guest-visible protect or
         unprotect syscalls: the data view lives outside the guest, so view
         updates replace both the mapping change and the mprotect pair. *)
      let vm = Counts.vm_for c ~page_size:granularity in
      let faults = c.Counts.hits + vm.Counts.active_page_misses in
      let per_fault =
        t.Timing.vb_exit_us +. t.Timing.vb_view_switch_us
        +. t.Timing.software_lookup_us
      in
      let hit_us = f c.Counts.hits *. per_fault in
      let miss_us = f vm.Counts.active_page_misses *. per_fault in
      let update_pair = t.Timing.vb_view_update_us +. t.Timing.software_update_us in
      let install_us =
        (f c.Counts.installs *. update_pair)
        +. (f vm.Counts.protects *. t.Timing.vb_view_update_us)
      in
      let remove_us =
        (f c.Counts.removes *. update_pair)
        +. (f vm.Counts.unprotects *. t.Timing.vb_view_update_us)
      in
      finish ~hit_us ~miss_us ~install_us ~remove_us
        ~breakdown:
          [
            ("VBExit", f faults *. t.Timing.vb_exit_us);
            ("VBViewSwitch", f faults *. t.Timing.vb_view_switch_us);
            ("SoftwareLookup", f faults *. t.Timing.software_lookup_us);
            ( "SoftwareUpdate",
              f (c.Counts.installs + c.Counts.removes) *. t.Timing.software_update_us );
            ( "VBViewUpdate",
              f
                (c.Counts.installs + c.Counts.removes + vm.Counts.protects
               + vm.Counts.unprotects)
              *. t.Timing.vb_view_update_us );
          ]

let relative overhead ~base_ms =
  if base_ms <= 0.0 then invalid_arg "Strategy_model.relative: base_ms <= 0";
  overhead.total_us /. (base_ms *. 1000.0)
