lib/isa/asm.ml: Buffer Hashtbl Instr List Printf Program Reg Result String
