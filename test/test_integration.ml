(* Integration tests: workloads end-to-end, live-strategy vs phase-2-replay
   agreement (DESIGN.md X1), the Debugger facade, and the experiment
   pipeline's qualitative shape (the paper's §8/§9 conclusions). *)

module Interval = Ebp_util.Interval
module Stats = Ebp_util.Stats
module Machine = Ebp_machine.Machine
module Loader = Ebp_runtime.Loader
module Trace = Ebp_trace.Trace
module Recorder = Ebp_trace.Recorder
module Session = Ebp_sessions.Session
module Counts = Ebp_sessions.Counts
module Replay = Ebp_sessions.Replay
module Model = Ebp_model.Strategy_model
module Workload = Ebp_workloads.Workload
module Experiment = Ebp_core.Experiment
module Debugger = Ebp_core.Debugger

(* --- workloads --- *)

let test_all_workloads_self_check () =
  (* Workload.record verifies exit status and the pinned self-check
     output; failure of either fails here. *)
  List.iter
    (fun w ->
      match Workload.record w with
      | Ok run ->
          Alcotest.(check bool)
            (w.Workload.name ^ " produced events")
            true
            (Trace.length run.Workload.trace > 1000)
      | Error msg -> Alcotest.fail msg)
    Workload.all

let record_cached =
  let tbl = Hashtbl.create 8 in
  fun w ->
    match Hashtbl.find_opt tbl w.Workload.name with
    | Some run -> run
    | None -> (
        match Workload.record w with
        | Ok run ->
            Hashtbl.add tbl w.Workload.name run;
            run
        | Error msg -> Alcotest.fail msg)

let test_heapless_workloads () =
  (* The paper's Table 1 signature: CTeX and QCD have no heap sessions. *)
  List.iter
    (fun (w, expect_heap) ->
      let run = record_cached w in
      let has_heap =
        Array.exists
          (function Ebp_trace.Object_desc.Heap _ -> true | _ -> false)
          (Trace.objects run.Workload.trace)
      in
      Alcotest.(check bool) (w.Workload.name ^ " heap presence") expect_heap has_heap)
    [ (Workload.typeset, false); (Workload.lattice, false);
      (Workload.compiler, true); (Workload.circuit, true); (Workload.puzzle, true) ]

let test_workload_traces_balanced () =
  List.iter
    (fun w ->
      let run = record_cached w in
      let s = Trace.stats run.Workload.trace in
      Alcotest.(check int) (w.Workload.name ^ " installs=removes") s.Trace.installs
        s.Trace.removes)
    [ Workload.compiler; Workload.circuit ]

let test_workload_by_name () =
  Alcotest.(check bool) "known" true (Workload.by_name "puzzle" <> None);
  Alcotest.(check bool) "unknown" true (Workload.by_name "nope" = None);
  Alcotest.(check int) "five workloads" 5 (List.length Workload.all)

(* --- live vs replay agreement (X1) --- *)

let validation_src =
  {|
int g;
int table[8];

int fill(int* t, int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    t[i] = i * 3;
  }
  return n;
}

int churn(int rounds) {
  int acc;
  int r;
  acc = 0;
  for (r = 0; r < rounds; r = r + 1) {
    g = g + r;
    acc = acc + g;
  }
  return acc;
}

int main() {
  int* p;
  fill(table, 8);
  p = malloc(24);
  fill(p, 6);
  churn(10);
  p[2] = 99;
  free(p);
  return 0;
}
|}

let compile_ok src =
  match Ebp_lang.Compiler.compile src with
  | Ok c -> c
  | Error e -> Alcotest.failf "compile error: %s" e

let replay_hits session =
  let compiled = compile_ok validation_src in
  let loader = Loader.load compiled in
  let _, trace = Recorder.record loader in
  (Replay.replay trace session).Counts.hits

let live_hits strategy ~watch =
  let compiled = compile_ok validation_src in
  let dbg = Debugger.load ~strategy compiled in
  watch dbg;
  let r = Debugger.run dbg in
  (match r.Loader.status with
  | Machine.Halted 0 -> ()
  | _ -> Alcotest.fail "validation program failed");
  Alcotest.(check (list string)) "no arming errors" [] (Debugger.errors dbg);
  List.length (Debugger.hits dbg)

let all_strategies =
  [ Debugger.Native_hardware; Debugger.Virtual_memory; Debugger.Trap_patch;
    Debugger.Code_patch; Debugger.Code_patch_hoisted; Debugger.Code_patch_inline;
    Debugger.Virtual_breakpoint ]

let check_live_matches_replay name session watch =
  let expected = replay_hits session in
  Alcotest.(check bool) (name ^ " session has hits") true (expected > 0);
  List.iter
    (fun strategy ->
      let live = live_hits strategy ~watch in
      Alcotest.(check int)
        (Printf.sprintf "%s under %s" name (Debugger.strategy_name strategy))
        expected live)
    all_strategies

let test_live_vs_replay_global () =
  check_live_matches_replay "OneGlobalStatic(g)"
    (Session.One_global_static { var = "g" })
    (fun dbg -> Result.get_ok (Debugger.watch_global dbg "g"))

let test_live_vs_replay_global_array () =
  check_live_matches_replay "OneGlobalStatic(table)"
    (Session.One_global_static { var = "table" })
    (fun dbg -> Result.get_ok (Debugger.watch_global dbg "table"))

let test_live_vs_replay_local () =
  check_live_matches_replay "OneLocalAuto(churn.acc)"
    (Session.One_local_auto { func = "churn"; var = "acc" })
    (fun dbg -> Result.get_ok (Debugger.watch_local dbg ~func:"churn" ~var:"acc"))

let test_live_vs_replay_heap () =
  check_live_matches_replay "OneHeap(main#1)"
    (Session.One_heap { site = "main"; seq = 1 })
    (fun dbg -> Debugger.watch_alloc dbg ~site:"main" ~nth:1)

(* --- Debugger facade --- *)

let test_debugger_attribution () =
  let dbg =
    match Debugger.load_source validation_src with
    | Ok d -> d
    | Error e -> Alcotest.fail e
  in
  Result.get_ok (Debugger.watch_global dbg "g");
  ignore (Debugger.run dbg);
  let hits = Debugger.hits dbg in
  Alcotest.(check bool) "has hits" true (hits <> []);
  List.iter
    (fun (h : Debugger.hit) ->
      Alcotest.(check (option string)) "g is written in churn" (Some "churn") h.Debugger.func;
      match h.Debugger.instr with
      | Some i -> Alcotest.(check bool) "instr is a store" true (Ebp_isa.Instr.is_store i)
      | None -> Alcotest.fail "missing instruction")
    hits

let test_debugger_unknown_targets () =
  let dbg = Debugger.load (compile_ok validation_src) in
  Alcotest.(check bool) "unknown global" true
    (Result.is_error (Debugger.watch_global dbg "nope"));
  Alcotest.(check bool) "unknown local" true
    (Result.is_error (Debugger.watch_local dbg ~func:"churn" ~var:"nope"));
  Alcotest.(check bool) "unknown func" true
    (Result.is_error (Debugger.watch_local dbg ~func:"nope" ~var:"x"))

let test_debugger_nh_capacity_errors () =
  let dbg =
    Debugger.load ~strategy:Debugger.Native_hardware ~monitor_reg_count:2
      (compile_ok validation_src)
  in
  (* 3 watches > 2 registers; the third arming fails but execution
     continues. Globals arm eagerly, so errors surface immediately. *)
  Result.get_ok (Debugger.watch_global dbg "g");
  Result.get_ok (Debugger.watch_global dbg "table");
  Alcotest.(check bool) "third global fails to arm" true
    (Result.is_error (Debugger.watch_global dbg "g"))

let test_debugger_heap_watch_follows_realloc () =
  let src =
    {|
int main() {
  int* p;
  p = malloc(8);
  p[0] = 1;
  p = realloc(p, 400);
  p[50] = 2;
  free(p);
  return 0;
}
|}
  in
  let dbg =
    match Debugger.load_source src with Ok d -> d | Error e -> Alcotest.fail e
  in
  Debugger.watch_alloc dbg ~site:"main" ~nth:1;
  ignore (Debugger.run dbg);
  Alcotest.(check int) "hits before and after realloc" 2
    (List.length (Debugger.hits dbg))

(* --- experiment shape (the paper's conclusions, §8/§9) --- *)

let experiment =
  lazy
    (match
       Experiment.run ~workloads:[ Workload.compiler; Workload.circuit ] ()
     with
    | Ok t -> t
    | Error e -> Alcotest.failf "experiment failed: %s" e)

let summaries pd t =
  List.map
    (fun a -> (a, Stats.summarize (Experiment.relative_overheads t pd a)))
    t.Experiment.approaches

let test_shape_cp_low_and_flat () =
  let t = Lazy.force experiment in
  List.iter
    (fun pd ->
      let s = List.assoc Model.CP (summaries pd t) in
      let name = pd.Experiment.run.Workload.workload.Workload.name in
      Alcotest.(check bool) (name ^ ": CP t-mean acceptable (< 30x)") true
        (s.Stats.t_mean < 30.0);
      (* "CodePatch exhibited extremely low variance": the 90th percentile
         stays within 2x of the minimum. *)
      Alcotest.(check bool) (name ^ ": CP low variance") true
        (s.Stats.p90 < s.Stats.min *. 2.0 +. 1.0))
    t.Experiment.programs

let test_shape_tp_uniformly_slow () =
  let t = Lazy.force experiment in
  List.iter
    (fun pd ->
      let all = summaries pd t in
      let tp = List.assoc Model.TP all in
      let cp = List.assoc Model.CP all in
      let name = pd.Experiment.run.Workload.workload.Workload.name in
      Alcotest.(check bool) (name ^ ": TP unacceptably slow (> 30x)") true
        (tp.Stats.t_mean > 30.0);
      Alcotest.(check bool) (name ^ ": TP >> CP") true
        (tp.Stats.t_mean > cp.Stats.t_mean *. 5.0);
      Alcotest.(check bool) (name ^ ": TP flat") true
        (tp.Stats.max < tp.Stats.min *. 1.5))
    t.Experiment.programs

let test_shape_vm_heavy_tailed () =
  let t = Lazy.force experiment in
  List.iter
    (fun pd ->
      let all = summaries pd t in
      let vm4 = List.assoc (Model.VM 4096) all in
      let vm8 = List.assoc (Model.VM 8192) all in
      let cp = List.assoc Model.CP all in
      let name = pd.Experiment.run.Workload.workload.Workload.name in
      Alcotest.(check bool) (name ^ ": VM max far above CP max") true
        (vm4.Stats.max > cp.Stats.max *. 5.0);
      Alcotest.(check bool) (name ^ ": VM-8K >= VM-4K (t-mean)") true
        (vm8.Stats.t_mean >= vm4.Stats.t_mean -. 1e-9);
      Alcotest.(check bool) (name ^ ": VM heavy-tailed (max >> t-mean)") true
        (vm4.Stats.max > vm4.Stats.t_mean *. 3.0))
    t.Experiment.programs

let test_shape_vb_strictly_below_vm () =
  (* VB takes exactly VM's fault set at each granularity but pays an
     exit + view switch instead of a guest trap + signal dispatch, so
     its overhead distribution sits below VM's across the board. *)
  let t = Lazy.force experiment in
  List.iter
    (fun pd ->
      let all = summaries pd t in
      let name = pd.Experiment.run.Workload.workload.Workload.name in
      List.iter
        (fun g ->
          let vm = List.assoc (Model.VM g) all in
          let vb = List.assoc (Model.VB g) all in
          Alcotest.(check bool)
            (Printf.sprintf "%s: VB t-mean <= VM t-mean at %d" name g)
            true
            (vb.Stats.t_mean <= vm.Stats.t_mean +. 1e-9);
          Alcotest.(check bool)
            (Printf.sprintf "%s: VB max < VM max at %d" name g)
            true (vb.Stats.max < vm.Stats.max))
        [ 4096; 8192 ])
    t.Experiment.programs

let test_shape_nh_cheap_means_extreme_maxima () =
  let t = Lazy.force experiment in
  List.iter
    (fun pd ->
      let s = List.assoc Model.NH (summaries pd t) in
      let name = pd.Experiment.run.Workload.workload.Workload.name in
      Alcotest.(check bool) (name ^ ": NH t-mean tiny (< 1x)") true
        (s.Stats.t_mean < 1.0);
      Alcotest.(check bool) (name ^ ": NH has expensive outliers") true
        (s.Stats.max > 10.0))
    t.Experiment.programs

let test_shape_cp_beats_nh_on_worst_case () =
  (* §9: "for the most demanding monitor sessions, [CP] provided better
     performance than even NativeHardware". *)
  let t = Lazy.force experiment in
  List.iter
    (fun pd ->
      let all = summaries pd t in
      let nh = List.assoc Model.NH all in
      let cp = List.assoc Model.CP all in
      Alcotest.(check bool)
        (pd.Experiment.run.Workload.workload.Workload.name ^ ": CP max < NH max")
        true (cp.Stats.max < nh.Stats.max))
    t.Experiment.programs

let test_code_expansion_modest () =
  (* §8: the paper estimates 12-15% code expansion on SPARC. Our ISA stubs
     are 3 instructions per store; assert the same order of magnitude. *)
  List.iter
    (fun w ->
      let run = record_cached w in
      let e =
        Ebp_wms.Code_patch.expansion_of_program
          run.Workload.compiled.Ebp_lang.Compiler.program
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s expansion %.1f%% within [5%%, 45%%]" w.Workload.name
           ((e -. 1.0) *. 100.0))
        true
        (e > 1.05 && e < 1.45))
    [ Workload.compiler; Workload.typeset; Workload.circuit ]

let test_reports_render () =
  let t = Lazy.force experiment in
  List.iter
    (fun (name, text) ->
      Alcotest.(check bool) (name ^ " non-empty") true (String.length text > 100))
    [
      ("table1", Experiment.table1 t);
      ("table2", Experiment.table2 t);
      ("table3", Experiment.table3 t);
      ("table4", Experiment.table4 t);
      ("fig7", Experiment.figure t ~stat:Experiment.Max);
      ("fig8", Experiment.figure t ~stat:Experiment.P90);
      ("fig9", Experiment.figure t ~stat:Experiment.T_mean);
      ("breakdown", Experiment.breakdown_report t);
      ("expansion", Experiment.code_expansion_report t);
      ("full", Experiment.full_report t);
    ]

let test_breakdown_dominated_by_expected_variables () =
  (* §8: NH 100% NHFaultHandler; TP ~97% TPFaultHandler; CP 98-99%
     SoftwareLookup. *)
  let t = Lazy.force experiment in
  let pd = List.hd t.Experiment.programs in
  let dominant approach =
    let overheads =
      List.map
        (fun (_, c) -> Model.overhead t.Experiment.timing approach c)
        pd.Experiment.sessions
    in
    match Ebp_model.Breakdown.mean_percentages overheads with
    | (var, pct) :: _ -> (var, pct)
    | [] -> Alcotest.fail "no breakdown"
  in
  (match dominant Model.NH with
  | "NHFaultHandler", pct -> Alcotest.(check (float 1e-6)) "NH 100%" 100.0 pct
  | v, _ -> Alcotest.failf "NH dominated by %s" v);
  (match dominant Model.TP with
  | "TPFaultHandler", pct ->
      Alcotest.(check bool) "TP ~97%" true (pct > 95.0 && pct < 99.0)
  | v, _ -> Alcotest.failf "TP dominated by %s" v);
  (match dominant Model.CP with
  | "SoftwareLookup", pct -> Alcotest.(check bool) "CP > 95%" true (pct > 95.0)
  | v, _ -> Alcotest.failf "CP dominated by %s" v);
  match dominant (Model.VM 4096) with
  | "VMFaultHandler", pct -> Alcotest.(check bool) "VM fault-dominated" true (pct > 60.0)
  | v, _ -> Alcotest.failf "VM dominated by %s" v


let test_debugger_value_capture () =
  (* The §2 ordering: notification after the write succeeds, so the hit
     carries the NEW value — under every strategy. *)
  let src =
    {|
int g;
int main() {
  g = 7;
  g = g * 6;
  return 0;
}
|}
  in
  List.iter
    (fun strategy ->
      let dbg =
        match Debugger.load_source ~strategy src with
        | Ok d -> d
        | Error e -> Alcotest.fail e
      in
      Result.get_ok (Debugger.watch_global dbg "g");
      ignore (Debugger.run dbg);
      let values = List.map (fun (h : Debugger.hit) -> h.Debugger.value) (Debugger.hits dbg) in
      Alcotest.(check (list int))
        (Debugger.strategy_name strategy ^ " new values")
        [ 7; 42 ] values)
    (Debugger.Code_patch_hoisted :: Debugger.Code_patch_inline :: all_strategies)

let test_debugger_break_when () =
  let src =
    {|
int g;
int main() {
  int i;
  for (i = 0; i < 100; i = i + 1) {
    g = g + i;
  }
  print_int(g);
  return 0;
}
|}
  in
  let dbg =
    match Debugger.load_source src with Ok d -> d | Error e -> Alcotest.fail e
  in
  Result.get_ok (Debugger.watch_global dbg "g");
  (* Suspend when g first exceeds 100: 0+1+...+14 = 105. *)
  Debugger.break_when dbg (fun h -> h.Debugger.value > 100);
  let r = Debugger.run dbg in
  (match r.Loader.status with
  | Machine.Halted 42 -> ()
  | _ -> Alcotest.fail "expected conditional-breakpoint stop");
  match Debugger.break_hit dbg with
  | Some h ->
      Alcotest.(check int) "stopped at the first qualifying value" 105 h.Debugger.value;
      Alcotest.(check (option string)) "in main" (Some "main") h.Debugger.func
  | None -> Alcotest.fail "no break hit recorded"

let () =
  Alcotest.run "integration"
    [
      ( "workloads",
        [
          Alcotest.test_case "self checks" `Slow test_all_workloads_self_check;
          Alcotest.test_case "heapless signature" `Slow test_heapless_workloads;
          Alcotest.test_case "balanced traces" `Slow test_workload_traces_balanced;
          Alcotest.test_case "by name" `Quick test_workload_by_name;
        ] );
      ( "live vs replay",
        [
          Alcotest.test_case "global scalar" `Quick test_live_vs_replay_global;
          Alcotest.test_case "global array" `Quick test_live_vs_replay_global_array;
          Alcotest.test_case "local" `Quick test_live_vs_replay_local;
          Alcotest.test_case "heap object" `Quick test_live_vs_replay_heap;
        ] );
      ( "debugger",
        [
          Alcotest.test_case "attribution" `Quick test_debugger_attribution;
          Alcotest.test_case "unknown targets" `Quick test_debugger_unknown_targets;
          Alcotest.test_case "NH capacity errors" `Quick
            test_debugger_nh_capacity_errors;
          Alcotest.test_case "heap watch across realloc" `Quick
            test_debugger_heap_watch_follows_realloc;
          Alcotest.test_case "value capture" `Quick test_debugger_value_capture;
          Alcotest.test_case "conditional breakpoint" `Quick test_debugger_break_when;
        ] );
      ( "experiment shape",
        [
          Alcotest.test_case "CP low and flat" `Slow test_shape_cp_low_and_flat;
          Alcotest.test_case "TP uniformly slow" `Slow test_shape_tp_uniformly_slow;
          Alcotest.test_case "VM heavy-tailed" `Slow test_shape_vm_heavy_tailed;
          Alcotest.test_case "VB strictly below VM" `Slow
            test_shape_vb_strictly_below_vm;
          Alcotest.test_case "NH cheap but spiky" `Slow
            test_shape_nh_cheap_means_extreme_maxima;
          Alcotest.test_case "CP beats NH worst case" `Slow
            test_shape_cp_beats_nh_on_worst_case;
          Alcotest.test_case "code expansion" `Slow test_code_expansion_modest;
          Alcotest.test_case "reports render" `Slow test_reports_render;
          Alcotest.test_case "breakdown variables" `Slow
            test_breakdown_dominated_by_expected_variables;
        ] );
    ]
