type loop = { header : int; back_edge : int }

let target_of instr =
  match Instr.branch_target instr with
  | Some (Instr.Abs t) -> Some t
  | Some (Instr.Label l) -> invalid_arg ("Cfg: unresolved label " ^ l)
  | None -> None

let defined_regs (instr : Instr.t) =
  match instr with
  | Instr.Li (rd, _) | Instr.Mv (rd, _) | Instr.Alu (_, rd, _, _)
  | Instr.Alui (_, rd, _, _) | Instr.Lw (rd, _, _) | Instr.Lb (rd, _, _) ->
      [ rd ]
  | Instr.Jal _ | Instr.Jalr _ -> [ Reg.ra ]
  | Instr.Syscall _ -> [ Reg.v0; Reg.v1 ]
  | Instr.Nop | Instr.Halt | Instr.Sw _ | Instr.Sb _ | Instr.Br _
  | Instr.Jmp _ | Instr.Ret | Instr.Trap _ | Instr.Chk _ | Instr.Enter _
  | Instr.Leave _ ->
      []

let reg_invariant prog ~lo ~hi reg =
  Reg.equal reg Reg.zero
  ||
  let rec go i =
    i > hi
    || ((not (List.exists (Reg.equal reg) (defined_regs (Program.get prog i))))
       && go (i + 1))
  in
  go lo

(* Would accepting [header, back_edge] as a loop be sound? *)
let self_contained prog ~header ~back_edge =
  let n = Program.length prog in
  let ok = ref (header > 0) in
  for i = header to back_edge do
    (match Program.get prog i with
    | Instr.Jal _ | Instr.Jalr _ | Instr.Ret -> ok := false
    | _ -> ());
    match target_of (Program.get prog i) with
    | Some t when t < header -> ok := false
    | Some _ | None -> ()
  done;
  (* No branch from outside may land strictly inside the region. *)
  for i = 0 to n - 1 do
    if i < header || i > back_edge then
      match target_of (Program.get prog i) with
      | Some t when t > header && t <= back_edge -> ok := false
      | Some _ | None -> ()
  done;
  !ok

let loops prog =
  if not (Program.is_resolved prog) then invalid_arg "Cfg.loops: unresolved program";
  let n = Program.length prog in
  let found = ref [] in
  let seen_headers = Hashtbl.create 8 in
  (* Scan backward edges; for a shared header keep the smallest body, which
     is found first when scanning back edges in ascending order. *)
  for u = 0 to n - 1 do
    match target_of (Program.get prog u) with
    | Some h
      when h <= u
           && (not (Hashtbl.mem seen_headers h))
           && self_contained prog ~header:h ~back_edge:u ->
        Hashtbl.add seen_headers h ();
        found := { header = h; back_edge = u } :: !found
    | Some _ | None -> ()
  done;
  List.sort
    (fun a b ->
      Int.compare (a.back_edge - a.header) (b.back_edge - b.header))
    !found

let innermost_containing loops idx =
  (* [loops] is sorted innermost-first. *)
  List.find_opt (fun l -> l.header <= idx && idx <= l.back_edge) loops
