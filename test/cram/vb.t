The fifth strategy: virtualization-based breakpoints (VB), after Price,
"Virtual Breakpoints for x86/64" (arXiv:1801.09250). VB takes exactly
VirtualMemory's fault sets at each granularity — same protects,
unprotects and active-page misses — but each fault costs an exit plus a
view switch instead of a guest trap, signal dispatch and mprotect
traffic. The default experiment now carries seven approach columns.

  $ ebp experiment --workloads circuit --only table4 --cache-dir cache 2>/dev/null
  Table 4: relative overhead statistics over 103 sessions per program
  Program  Statistic     NH  VM-4K  VM-8K   TP    CP  VB-4K  VB-8K
  -------  ---------  -----  -----  -----  ---  ----  -----  -----
  circuit        Min   0.00   0.01   0.18  142  3.72   0.00   0.02
                 Max    171    742    742  142  3.95  80.00  80.00
              T-Mean   0.05  62.70  65.71  142  3.72   9.06   9.37
                Mean   3.53    135    138  142  3.73  14.55  14.84
                 90%   3.01    737    737  142  3.73  79.48  79.48
                 98%  24.90    742    742  142  3.75  79.97  79.97

Table 2 prices the three VB timing variables alongside the paper's:

  $ ebp experiment --workloads circuit --only table2 --cache-dir cache 2>/dev/null
  Table 2: timing variable data (microseconds)
  Timing Variable  Time (us)
  ---------------  ---------
  SoftwareUpdate       22.00
  SoftwareLookup        2.75
  NHFaultHandler      131.00
  VMFaultHandler      561.00
  VMProtectPage        80.00
  VMUnprotectPage     299.00
  TPFaultHandler      102.00
  VBExit               46.00
  VBViewSwitch         12.00
  VBViewUpdate         35.00

The extremes report gains a VB entry: the same sessions that blow up
under VM-4K cap out almost an order of magnitude lower under VB-4K:

  $ ebp experiment --workloads circuit --only full --cache-dir cache 2>/dev/null | sed -n '/Extreme points/,$p'
  Extreme points: most expensive sessions (Section 8 discussion)
    circuit:
      NH worst:
           171.1x  AllLocalInFunc(solve_pass)
           130.9x  OneLocalAuto(solve_pass.j)
            25.7x  OneLocalAuto(solve_pass.acc)
             4.7x  AllHeapInFunc(main)
      VM-4K worst:
           742.1x  AllLocalInFunc(main)
           742.1x  OneLocalAuto(main.i)
           742.1x  OneLocalAuto(main.checksum)
           740.8x  AllLocalInFunc(solve_pass)
      VB-4K worst:
            80.0x  AllLocalInFunc(solve_pass)
            80.0x  AllLocalInFunc(main)
            80.0x  OneLocalAuto(main.i)
            80.0x  OneLocalAuto(main.checksum)

Restricting --approaches to the original five columns must reproduce
the pre-VB report byte for byte — the VB rows in table 2 and the VB
entry in the extremes render only when a VB approach is requested:

  $ ebp experiment --workloads circuit --only table4 --cache-dir cache --approaches NH,VM-4K,VM-8K,TP,CP 2>/dev/null
  Table 4: relative overhead statistics over 103 sessions per program
  Program  Statistic     NH  VM-4K  VM-8K   TP    CP
  -------  ---------  -----  -----  -----  ---  ----
  circuit        Min   0.00   0.01   0.18  142  3.72
                 Max    171    742    742  142  3.95
              T-Mean   0.05  62.70  65.71  142  3.72
                Mean   3.53    135    138  142  3.73
                 90%   3.01    737    737  142  3.73
                 98%  24.90    742    742  142  3.75
  $ ebp experiment --workloads circuit --only table2 --cache-dir cache --approaches NH,VM-4K,VM-8K,TP,CP 2>/dev/null | tail -3
  VMProtectPage        80.00
  VMUnprotectPage     299.00
  TPFaultHandler      102.00

The sessions command models any approach list on demand, including the
remote (-rem) forms; Remote VB forwards each event with one extra exit
rather than a full context-switch round trip:

  $ cat > tiny.mc <<'MC'
  > int g;
  > int a[8];
  > int main() {
  >   int i;
  >   for (i = 0; i < 12; i = i + 1) { g = g + i; a[i & 7] = g; }
  >   return 0;
  > }
  > MC
  $ ebp sessions tiny.mc --approaches NH,CP,VB-4K,VB-4K-rem 2>&1 | sed -n '/Modeled overhead/,$p'
  Modeled overhead per session (microseconds)
  Session                 NH   CP  VB-4K  VB-4K-rem
  --------------------  ----  ---  -----  ---------
  OneLocalAuto(main.i)  1703  146    974       1572
  AllLocalInFunc(main)  1703  146    974       1572
  OneGlobalStatic(g)    1572  146   1642       2746
  OneGlobalStatic(a)    1572  146   1642       2746

Bad approach names are rejected up front, with the §3.4 rule intact
(CodePatch generates no faults to forward):

  $ ebp sessions tiny.mc --approaches CP-rem
  ebp: CP-rem: CP generates no faults to forward (§3.4)
  [1]
  $ ebp sessions tiny.mc --approaches QP-4K
  ebp: unknown approach "QP-4K" (expected NH, TP, CP, VM-<size> or VB-<size>, optionally suffixed with -rem)
  [1]
