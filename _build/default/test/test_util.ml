(* Tests for Ebp_util: intervals, bitmaps, PRNG, statistics, rendering. *)

module Interval = Ebp_util.Interval
module Bitmap = Ebp_util.Bitmap
module Prng = Ebp_util.Prng
module Stats = Ebp_util.Stats
module Text_table = Ebp_util.Text_table
module Bar_chart = Ebp_util.Bar_chart

let iv lo hi = Interval.make ~lo ~hi

(* --- Interval --- *)

let test_interval_basics () =
  let i = iv 4 7 in
  Alcotest.(check int) "lo" 4 (Interval.lo i);
  Alcotest.(check int) "hi" 7 (Interval.hi i);
  Alcotest.(check int) "size" 4 (Interval.size i);
  Alcotest.(check bool) "contains lo" true (Interval.contains i 4);
  Alcotest.(check bool) "contains hi" true (Interval.contains i 7);
  Alcotest.(check bool) "not contains" false (Interval.contains i 8);
  Alcotest.(check int) "singleton size" 1 (Interval.size (iv 5 5))

let test_interval_invalid () =
  Alcotest.check_raises "lo > hi" (Invalid_argument "Interval.make: lo (3) > hi (2)")
    (fun () -> ignore (iv 3 2));
  Alcotest.check_raises "size 0"
    (Invalid_argument "Interval.of_base_size: size <= 0") (fun () ->
      ignore (Interval.of_base_size ~base:0 ~size:0))

let test_interval_of_base_size () =
  let i = Interval.of_base_size ~base:100 ~size:4 in
  Alcotest.(check int) "lo" 100 (Interval.lo i);
  Alcotest.(check int) "hi" 103 (Interval.hi i)

let test_interval_overlaps () =
  Alcotest.(check bool) "disjoint" false (Interval.overlaps (iv 0 3) (iv 4 7));
  Alcotest.(check bool) "touching" true (Interval.overlaps (iv 0 4) (iv 4 7));
  Alcotest.(check bool) "nested" true (Interval.overlaps (iv 0 10) (iv 3 5));
  Alcotest.(check bool) "symmetric" true (Interval.overlaps (iv 3 5) (iv 0 10))

let test_interval_intersect () =
  (match Interval.intersect (iv 0 5) (iv 3 9) with
  | Some i -> Alcotest.(check string) "intersection" "[0x3,0x5]" (Interval.to_string i)
  | None -> Alcotest.fail "expected overlap");
  Alcotest.(check bool) "disjoint -> None" true
    (Interval.intersect (iv 0 2) (iv 5 9) = None)

let test_interval_subsumes () =
  Alcotest.(check bool) "yes" true (Interval.subsumes (iv 0 10) (iv 2 9));
  Alcotest.(check bool) "equal" true (Interval.subsumes (iv 0 10) (iv 0 10));
  Alcotest.(check bool) "no" false (Interval.subsumes (iv 2 9) (iv 0 10))

let interval_gen =
  QCheck2.Gen.(
    let* lo = int_range 0 10_000 in
    let* len = int_range 1 200 in
    return (iv lo (lo + len - 1)))

let prop_overlap_symmetric =
  QCheck2.Test.make ~name:"interval overlap is symmetric" ~count:500
    QCheck2.Gen.(pair interval_gen interval_gen)
    (fun (a, b) -> Interval.overlaps a b = Interval.overlaps b a)

let prop_intersect_consistent =
  QCheck2.Test.make ~name:"intersect agrees with overlaps" ~count:500
    QCheck2.Gen.(pair interval_gen interval_gen)
    (fun (a, b) ->
      match Interval.intersect a b with
      | Some i ->
          Interval.overlaps a b && Interval.subsumes a i && Interval.subsumes b i
      | None -> not (Interval.overlaps a b))

(* --- Bitmap --- *)

let test_bitmap_set_get () =
  let b = Bitmap.create 100 in
  Alcotest.(check bool) "initially clear" false (Bitmap.get b 50);
  Bitmap.set b 50;
  Alcotest.(check bool) "set" true (Bitmap.get b 50);
  Alcotest.(check bool) "neighbour untouched" false (Bitmap.get b 51);
  Bitmap.clear b 50;
  Alcotest.(check bool) "cleared" false (Bitmap.get b 50)

let test_bitmap_ranges () =
  let b = Bitmap.create 64 in
  Bitmap.set_range b ~lo:10 ~hi:20;
  Alcotest.(check int) "count" 11 (Bitmap.count b);
  Alcotest.(check bool) "any inside" true (Bitmap.any_in_range b ~lo:0 ~hi:10);
  Alcotest.(check bool) "any outside" false (Bitmap.any_in_range b ~lo:0 ~hi:9);
  Alcotest.(check bool) "any above" false (Bitmap.any_in_range b ~lo:21 ~hi:63);
  Bitmap.clear_range b ~lo:10 ~hi:15;
  Alcotest.(check int) "after clear" 5 (Bitmap.count b);
  Alcotest.(check bool) "empty check" false (Bitmap.is_empty b);
  Bitmap.clear_range b ~lo:0 ~hi:63;
  Alcotest.(check bool) "now empty" true (Bitmap.is_empty b)

let test_bitmap_bounds () =
  let b = Bitmap.create 8 in
  Alcotest.check_raises "oob get" (Invalid_argument "Bitmap.get: index 8 out of [0,8)")
    (fun () -> ignore (Bitmap.get b 8));
  Alcotest.check_raises "negative" (Invalid_argument "Bitmap.set: index -1 out of [0,8)")
    (fun () -> Bitmap.set b (-1))

let prop_bitmap_matches_set =
  (* Bitmap vs a reference implementation using a Hashtbl-set. *)
  let op_gen =
    QCheck2.Gen.(
      let* kind = int_range 0 2 in
      let* lo = int_range 0 199 in
      let* hi = int_range lo 199 in
      return (kind, lo, hi))
  in
  QCheck2.Test.make ~name:"bitmap matches reference set" ~count:200
    QCheck2.Gen.(list_size (int_range 1 60) op_gen)
    (fun ops ->
      let b = Bitmap.create 200 in
      let reference = Hashtbl.create 64 in
      List.for_all
        (fun (kind, lo, hi) ->
          match kind with
          | 0 ->
              Bitmap.set_range b ~lo ~hi;
              for i = lo to hi do
                Hashtbl.replace reference i ()
              done;
              true
          | 1 ->
              Bitmap.clear_range b ~lo ~hi;
              for i = lo to hi do
                Hashtbl.remove reference i
              done;
              true
          | _ ->
              let expect =
                let rec go i = i <= hi && (Hashtbl.mem reference i || go (i + 1)) in
                go lo
              in
              Bitmap.any_in_range b ~lo ~hi = expect
              && Bitmap.count b = Hashtbl.length reference)
        ops)

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_bounds () =
  let p = Prng.create 3 in
  for _ = 1 to 1000 do
    let v = Prng.int p 17 in
    if v < 0 || v >= 17 then Alcotest.fail "out of bounds"
  done;
  for _ = 1 to 1000 do
    let v = Prng.int_in p ~lo:(-5) ~hi:5 in
    if v < -5 || v > 5 then Alcotest.fail "int_in out of bounds"
  done

let test_prng_float () =
  let p = Prng.create 9 in
  for _ = 1 to 1000 do
    let f = Prng.float p in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of [0,1)"
  done

let test_prng_shuffle_permutes () =
  let p = Prng.create 11 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle p a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_prng_errors () =
  let p = Prng.create 1 in
  Alcotest.check_raises "bad bound" (Invalid_argument "Prng.int: bound <= 0")
    (fun () -> ignore (Prng.int p 0));
  Alcotest.check_raises "empty pick" (Invalid_argument "Prng.pick: empty array")
    (fun () -> ignore (Prng.pick p [||]))

(* --- Stats --- *)

let test_percentile_simple () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  Alcotest.(check (float 1e-9)) "p0 = min" 1.0 (Stats.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100 = max" 5.0 (Stats.percentile xs 100.0);
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p25 interpolates" 2.0 (Stats.percentile xs 25.0)

let test_percentile_unsorted_input () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  Alcotest.(check (float 1e-9)) "median of unsorted" 3.0 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "input unchanged" 5.0 xs.(0)

let test_mean_stddev () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.mean xs);
  Alcotest.(check (float 1e-9)) "stddev" 2.0 (Stats.stddev xs)

let test_trimmed_mean () =
  (* One huge outlier must not survive a 10-90 trim. *)
  let xs = Array.append (Array.make 99 1.0) [| 1000.0 |] in
  let t = Stats.trimmed_mean xs ~lo_pct:10.0 ~hi_pct:90.0 in
  Alcotest.(check (float 1e-9)) "outlier trimmed" 1.0 t;
  Alcotest.(check bool) "mean keeps outlier" true (Stats.mean xs > 10.0)

let test_summarize () =
  let s = Stats.summarize [| 3.0; 1.0; 2.0 |] in
  Alcotest.(check int) "n" 3 s.Stats.n;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
  Alcotest.(check (float 1e-9)) "max" 3.0 s.Stats.max;
  Alcotest.(check (float 1e-9)) "mean" 2.0 s.Stats.mean

let test_stats_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty input")
    (fun () -> ignore (Stats.mean [||]))

let prop_percentile_monotone =
  QCheck2.Test.make ~name:"percentile is monotone in p" ~count:300
    QCheck2.Gen.(
      pair
        (array_size (int_range 1 50) (float_bound_exclusive 1000.0))
        (pair (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)))
    (fun (xs, (p1, p2)) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile xs lo <= Stats.percentile xs hi +. 1e-9)

let prop_mean_between_min_max =
  QCheck2.Test.make ~name:"summary orders min <= t_mean/mean <= max" ~count:300
    QCheck2.Gen.(array_size (int_range 1 60) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Stats.summarize xs in
      s.Stats.min <= s.Stats.mean +. 1e-9
      && s.Stats.mean <= s.Stats.max +. 1e-9
      && s.Stats.min <= s.Stats.t_mean +. 1e-9
      && s.Stats.t_mean <= s.Stats.max +. 1e-9)

(* --- Text_table / Bar_chart --- *)

let test_table_render () =
  let out =
    Text_table.render ~header:[ "Name"; "N" ]
      ~rows:[ [ "alpha"; "1" ]; [ "b"; "22" ] ]
      ()
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "line count" 5 (List.length lines);
  Alcotest.(check string) "header" "Name    N" (List.nth lines 0);
  Alcotest.(check string) "row right-aligned" "alpha   1" (List.nth lines 2)

let test_table_pads_short_rows () =
  let out = Text_table.render ~header:[ "A"; "B" ] ~rows:[ [ "x" ] ] () in
  Alcotest.(check bool) "renders" true (String.length out > 0);
  Alcotest.check_raises "wide row rejected"
    (Invalid_argument "Text_table.render: row wider than header") (fun () ->
      ignore (Text_table.render ~header:[ "A" ] ~rows:[ [ "x"; "y" ] ] ()))

let test_bar_chart () =
  let out =
    Bar_chart.render ~title:"t"
      ~groups:
        [
          {
            Bar_chart.name = "g";
            series =
              [
                { Bar_chart.label = "a"; value = 10.0 };
                { Bar_chart.label = "b"; value = 5.0 };
              ];
          };
        ]
      ()
  in
  Alcotest.(check bool) "mentions labels" true
    (String.length out > 0
    && String.split_on_char '\n' out |> List.exists (fun l -> String.trim l = "g"));
  Alcotest.check_raises "negative value"
    (Invalid_argument "Bar_chart.render: negative value") (fun () ->
      ignore
        (Bar_chart.render ~title:"t"
           ~groups:
             [
               {
                 Bar_chart.name = "g";
                 series = [ { Bar_chart.label = "a"; value = -1.0 } ];
               };
             ]
           ()))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "util"
    [
      ( "interval",
        [
          Alcotest.test_case "basics" `Quick test_interval_basics;
          Alcotest.test_case "invalid" `Quick test_interval_invalid;
          Alcotest.test_case "of_base_size" `Quick test_interval_of_base_size;
          Alcotest.test_case "overlaps" `Quick test_interval_overlaps;
          Alcotest.test_case "intersect" `Quick test_interval_intersect;
          Alcotest.test_case "subsumes" `Quick test_interval_subsumes;
          q prop_overlap_symmetric;
          q prop_intersect_consistent;
        ] );
      ( "bitmap",
        [
          Alcotest.test_case "set/get" `Quick test_bitmap_set_get;
          Alcotest.test_case "ranges" `Quick test_bitmap_ranges;
          Alcotest.test_case "bounds" `Quick test_bitmap_bounds;
          q prop_bitmap_matches_set;
        ] );
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "float range" `Quick test_prng_float;
          Alcotest.test_case "shuffle permutes" `Quick test_prng_shuffle_permutes;
          Alcotest.test_case "errors" `Quick test_prng_errors;
        ] );
      ( "stats",
        [
          Alcotest.test_case "percentile simple" `Quick test_percentile_simple;
          Alcotest.test_case "percentile unsorted" `Quick test_percentile_unsorted_input;
          Alcotest.test_case "mean/stddev" `Quick test_mean_stddev;
          Alcotest.test_case "trimmed mean" `Quick test_trimmed_mean;
          Alcotest.test_case "summarize" `Quick test_summarize;
          Alcotest.test_case "empty input" `Quick test_stats_empty;
          q prop_percentile_monotone;
          q prop_mean_between_min_max;
        ] );
      ( "rendering",
        [
          Alcotest.test_case "table" `Quick test_table_render;
          Alcotest.test_case "table row widths" `Quick test_table_pads_short_rows;
          Alcotest.test_case "bar chart" `Quick test_bar_chart;
        ] );
    ]
