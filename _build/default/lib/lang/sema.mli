(** Semantic analysis: name resolution, type checking, loop desugaring.

    Typing follows early-C permissiveness where it does not affect code
    generation: pointers and integers may be assigned and compared across
    each other. The checks that matter are enforced strictly — every name
    must resolve, call arities must match, pointer arithmetic is scaled by
    the 4-byte element size, [ptr - ptr] divides by the element size, and
    global/static initializers must be compile-time constants.

    A [main] function with no parameters must exist. Functions may have at
    most 6 parameters (the register calling convention). *)

val analyze : Ast.program -> (Typed.tprogram, string) result
(** Errors are prefixed with the offending line or function name. *)

val const_eval : Ast.expr -> int option
(** Evaluate a constant integer expression (literals and arithmetic only). *)
