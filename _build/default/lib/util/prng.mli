(** Deterministic pseudo-random number generator (SplitMix64).

    Every random choice in the experiment — workload inputs, the Appendix A
    "random element with/without replacement" benchmark protocol — draws from
    an explicit generator state so that runs are reproducible. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds give equal streams. *)

val copy : t -> t

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform in the closed range [[lo, hi]].
    @raise Invalid_argument if [lo > hi]. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [[0, 1)]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array ("RandYesReplace" of Appendix A).
    @raise Invalid_argument on an empty array. *)
