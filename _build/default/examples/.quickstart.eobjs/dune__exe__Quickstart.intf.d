examples/quickstart.mli:
