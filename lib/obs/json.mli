(** A minimal JSON tree, writer, and parser — just enough for the
    observability exporters (NDJSON metric snapshots and Chrome trace
    events) without an external dependency.

    Integers are kept distinct from floats so counters round-trip
    exactly. The parser accepts standard JSON (objects, arrays, strings
    with escapes, numbers, booleans, null); it is strict — trailing
    garbage after the value is an error. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering with full string escaping. *)

val of_string : string -> (t, string) result
(** Parse one JSON value; [Error] carries a message with a character
    offset. *)

(** {1 Accessors} — each returns [None] on a kind mismatch. *)

val member : string -> t -> t option
val to_int : t -> int option
val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option
