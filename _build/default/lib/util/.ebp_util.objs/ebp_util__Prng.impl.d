lib/util/prng.ml: Array Int64
