(* The tier-1 differential fuzzing gate. A fixed window of seeds runs
   through every oracle on each [dune runtest] — cheap (a seed costs well
   under a millisecond) but it exercises the whole stack: generator,
   compiler, both interpreters, recorder, both codecs, both replay
   engines. Any failure here is a real cross-layer disagreement, and
   [ebp fuzz] reproduces it from the printed seed. *)

module Fuzz = Ebp_core.Fuzz

let seed_lo = 0
let seed_hi = 127

let test_fixed_seed_batch () =
  for seed = seed_lo to seed_hi do
    match Fuzz.check_seed seed with
    | Ok () -> ()
    | Error f ->
        Alcotest.failf "seed %d failed oracle %s: %s\n%s" f.Fuzz.seed
          f.Fuzz.oracle f.Fuzz.detail f.Fuzz.source
  done

let test_generator_deterministic () =
  for seed = 0 to 31 do
    let a = Fuzz.render (Fuzz.generate ~seed) in
    let b = Fuzz.render (Fuzz.generate ~seed) in
    Alcotest.(check string) (Printf.sprintf "seed %d renders stably" seed) a b
  done;
  (* Not a strict requirement of the API, but if many adjacent seeds
     collapse to one program the batch above tests nothing. *)
  let distinct =
    List.sort_uniq compare
      (List.init 32 (fun seed -> Fuzz.render (Fuzz.generate ~seed)))
  in
  Alcotest.(check bool) "seeds produce varied programs" true
    (List.length distinct > 24)

(* Knobs are a workload synthesizer: the base program must be untouched
   (default knobs are byte-identical, and turning knobs only appends
   units), and a knobbed program must still pass every oracle — the
   synthesized workloads feed the query bench, so divergence there would
   poison the numbers. *)
let test_knobs_extend () =
  let seed = 7 in
  let base = Fuzz.generate ~seed in
  Alcotest.(check string) "default knobs are byte-identical"
    (Fuzz.render base)
    (Fuzz.render (Fuzz.generate_knobbed ~knobs:Fuzz.default_knobs ~seed));
  let knobs =
    { Fuzz.gen_events = 2; gen_heap_churn = 3; gen_session_density = 2 }
  in
  let knobbed = Fuzz.generate_knobbed ~knobs ~seed in
  let prefix n xs = List.filteri (fun i _ -> i < n) xs in
  Alcotest.(check (list string)) "base globals are a prefix"
    base.Fuzz.globals
    (prefix (List.length base.Fuzz.globals) knobbed.Fuzz.globals);
  Alcotest.(check int) "extra globals appended"
    (List.length base.Fuzz.globals + 3 (* 2 scalars + qhot *))
    (List.length knobbed.Fuzz.globals);
  let base_groups = List.length base.Fuzz.main_body in
  Alcotest.(check (list string)) "base statement groups untouched"
    (prefix (base_groups - 2) base.Fuzz.main_body)
    (prefix (base_groups - 2) knobbed.Fuzz.main_body);
  Alcotest.(check int) "one group per knob unit"
    (base_groups + 2 + 3 + 2)
    (List.length knobbed.Fuzz.main_body);
  match Fuzz.check_program ~seed knobbed with
  | Ok () -> ()
  | Error f ->
      Alcotest.failf "knobbed program failed oracle %s: %s" f.Fuzz.oracle
        f.Fuzz.detail

(* The strategy-equivalence oracle standalone: every generated program
   has at least the scalars g0,g1, so an explicit monitor subset must
   agree across the five strategies just like the default set does. *)
let test_strategy_equivalence () =
  let source = Fuzz.render (Fuzz.generate ~seed:3) in
  (match Fuzz.check_strategies ~seed:3 source with
  | Ok () -> ()
  | Error d -> Alcotest.failf "strategies diverged: %s" d);
  match Fuzz.check_strategies ~seed:3 ~monitors:[ "g0" ] source with
  | Ok () -> ()
  | Error d -> Alcotest.failf "strategies diverged on g0 alone: %s" d

let test_render_shape () =
  let src = Fuzz.render (Fuzz.generate ~seed:1) in
  let contains_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has main" true (contains_sub src "int main");
  Alcotest.(check bool) "returns 0" true (contains_sub src "return 0;")

let test_shrink_minimizes () =
  (* A handcrafted failure of the "record" oracle: one poison statement
     buried among droppable noise. Shrink must keep failing the same
     oracle while never growing the program, and the fixpoint must have
     dropped the independent noise units. *)
  let program =
    {
      Fuzz.globals = [ "int g0;"; "int g1;" ];
      funcs = [ ("f0", [ "return a + b;" ]) ];
      main_body =
        [
          "g0 = f0(1, 2);";
          "g1 = g0 + 39;";
          "return 1;" (* the bug: non-zero exit *);
        ];
    }
  in
  let source = Fuzz.render program in
  let failure =
    match Fuzz.check_source ~seed:0 source with
    | Error (oracle, detail, query) ->
        { Fuzz.seed = 0; oracle; detail; query; monitors = None; program;
          source }
    | Ok () -> Alcotest.fail "poison program unexpectedly passed"
  in
  Alcotest.(check string) "record oracle caught it" "record"
    failure.Fuzz.oracle;
  let size p =
    List.length p.Fuzz.globals
    + List.fold_left (fun n (_, b) -> n + List.length b) 0 p.Fuzz.funcs
    + List.length p.Fuzz.main_body
  in
  let shrunk = Fuzz.shrink failure in
  Alcotest.(check string) "same oracle after shrink" "record"
    shrunk.Fuzz.oracle;
  Alcotest.(check bool) "shrink never grows" true
    (size shrunk.Fuzz.program <= size failure.Fuzz.program);
  (match Fuzz.check_source ~seed:0 shrunk.Fuzz.source with
  | Error ("record", _, _) -> ()
  | Error (oracle, detail, _) ->
      Alcotest.failf "shrunk program fails different oracle %s: %s" oracle
        detail
  | Ok () -> Alcotest.fail "shrunk program no longer fails");
  (* The noise units are independent of the bug, so the fixpoint must
     have removed them all: no globals, no helpers, one statement. *)
  Alcotest.(check int) "globals dropped" 0
    (List.length shrunk.Fuzz.program.Fuzz.globals);
  Alcotest.(check int) "helpers dropped" 0
    (List.length shrunk.Fuzz.program.Fuzz.funcs);
  Alcotest.(check int) "main reduced to the bug" 1
    (List.length shrunk.Fuzz.program.Fuzz.main_body)

let () =
  Alcotest.run "fuzz"
    [
      ( "differential gate",
        [
          Alcotest.test_case
            (Printf.sprintf "seeds %d-%d pass all oracles" seed_lo seed_hi)
            `Quick test_fixed_seed_batch;
          Alcotest.test_case "five strategies notify identically" `Quick
            test_strategy_equivalence;
        ] );
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick
            test_generator_deterministic;
          Alcotest.test_case "renders a runnable shape" `Quick
            test_render_shape;
          Alcotest.test_case "knobs only append units" `Quick
            test_knobs_extend;
        ] );
      ( "shrinker",
        [ Alcotest.test_case "minimizes to the bug" `Quick test_shrink_minimizes ] );
    ]
