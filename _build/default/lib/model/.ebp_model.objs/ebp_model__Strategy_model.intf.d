lib/model/strategy_model.mli: Ebp_sessions Ebp_wms
