module Interval = Ebp_util.Interval

type t = (int, unit) Hashtbl.t

let create () = Hashtbl.create 64

let word_extent range = (Interval.lo range lsr 2, Interval.hi range lsr 2)

let install t range =
  let lo, hi = word_extent range in
  for w = lo to hi do
    Hashtbl.replace t w ()
  done

let remove t range =
  let lo, hi = word_extent range in
  for w = lo to hi do
    Hashtbl.remove t w
  done

let overlaps t range =
  let lo, hi = word_extent range in
  let rec go w = w <= hi && (Hashtbl.mem t w || go (w + 1)) in
  go lo

let monitored_words t = Hashtbl.length t
let is_empty t = Hashtbl.length t = 0
