examples/heap_corruption.ml: Ebp_core Ebp_runtime Ebp_util List Option Printf
