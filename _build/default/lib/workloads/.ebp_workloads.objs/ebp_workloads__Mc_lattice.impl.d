lib/workloads/mc_lattice.ml:
