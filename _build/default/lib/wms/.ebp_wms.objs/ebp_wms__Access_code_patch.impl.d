lib/wms/access_code_patch.ml: Ebp_isa Ebp_machine Ebp_util Hashtbl List Monitor_map Timing
