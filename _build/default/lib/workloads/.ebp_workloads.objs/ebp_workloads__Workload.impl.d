lib/workloads/workload.ml: Ebp_lang Ebp_machine Ebp_runtime Ebp_trace List Mc_circuit Mc_compiler Mc_lattice Mc_puzzle Mc_typeset Printf
