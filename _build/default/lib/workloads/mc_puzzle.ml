(* BPS analogue: best-first search arranging 8 numbers on a 3x3 grid into
   ascending order by sliding them through the empty cell (the paper's
   exact problem, §6, solved greedily rather than with Bayesian evidence).

   Matches BPS's trace signature: thousands of small heap nodes — BPS
   dominates the OneHeap session count in Table 1 (4184 of 4476 sessions) —
   allocated from a single constructor reached through several dynamic
   contexts, with most writes coming from node initialization and sorted
   open-list insertion.

   Node layout (56 bytes, int* view "v" / int** view "node"):
   words 0-8 grid, word 9 g-cost, word 10 h-cost, word 11 f = g + h,
   word 12 link to the next open-list node (via the int** view). *)

let source =
  {|
// puzzle: 8-puzzle best-first search (BPS analogue)

int expansions;
int generated;
int max_open;
int goal_found;
int goal_depth;
int open_len;
int dup_hits;
int closed_count;

int** open_head;
int closed[8192];     // open-addressing set of visited state codes

int heuristic(int* g) {
  int i;
  int tile;
  int d;
  int want;
  d = 0;
  for (i = 0; i < 9; i = i + 1) {
    tile = g[i];
    if (tile != 0) {
      want = tile - 1;       // goal: 1 2 3 / 4 5 6 / 7 8 _
      d = d + abs_m(i / 3 - want / 3) + abs_m(i % 3 - want % 3);
    }
  }
  return d;
}

int abs_m(int x) {
  if (x < 0) {
    return 0 - x;
  }
  return x;
}

int** make_node(int* grid, int g) {
  int** node;
  int* v;
  int i;
  node = malloc(56);
  v = node;
  for (i = 0; i < 9; i = i + 1) {
    v[i] = grid[i];
  }
  v[9] = g;
  v[10] = heuristic(v);
  v[11] = v[9] + v[10];
  node[12] = 0;
  generated = generated + 1;
  return node;
}

// Sorted insertion by f; ties broken toward newer nodes.
void insert_open(int** node) {
  int* v;
  int* cv;
  int** cur;
  int** nxt;
  v = node;
  open_len = open_len + 1;
  if (open_len > max_open) {
    max_open = open_len;
  }
  if (open_head == 0) {
    open_head = node;
    return;
  }
  cv = open_head;
  if (v[11] <= cv[11]) {
    node[12] = open_head;
    open_head = node;
    return;
  }
  cur = open_head;
  nxt = cur[12];
  while (nxt != 0) {
    cv = nxt;
    if (v[11] <= cv[11]) {
      node[12] = nxt;
      cur[12] = node;
      return;
    }
    cur = nxt;
    nxt = cur[12];
  }
  cur[12] = node;
}

// Exact state code: 9 base-9 digits fit well inside 31 bits.
int encode(int* g) {
  int i;
  int code;
  code = 0;
  for (i = 8; i >= 0; i = i - 1) {
    code = code * 9 + g[i];
  }
  return code;
}

// Returns 1 when the state was already visited, else records it.
int check_closed(int* g) {
  int code;
  int h;
  int probes;
  code = encode(g) + 1;   // avoid 0, the empty-slot marker
  h = code % 8192;
  if (h < 0) {
    h = h + 8192;
  }
  probes = 0;
  while (probes < 8192) {
    if (closed[h] == code) {
      dup_hits = dup_hits + 1;
      return 1;
    }
    if (closed[h] == 0) {
      closed[h] = code;
      closed_count = closed_count + 1;
      return 0;
    }
    h = (h + 1) % 8192;
    probes = probes + 1;
  }
  return 0;
}

int** pop_open() {
  int** node;
  node = open_head;
  if (node != 0) {
    open_head = node[12];
    open_len = open_len - 1;
  }
  return node;
}

// Expand one node: slide the blank in each legal direction.
void expand(int** node) {
  int* v;
  int blank;
  int i;
  int dir;
  int target;
  int tmp[9];
  int** child;
  int* cv;
  v = node;
  blank = 0;
  for (i = 0; i < 9; i = i + 1) {
    if (v[i] == 0) {
      blank = i;
    }
  }
  for (dir = 0; dir < 4; dir = dir + 1) {
    target = 0 - 1;
    if (dir == 0 && blank >= 3) {
      target = blank - 3;
    }
    if (dir == 1 && blank < 6) {
      target = blank + 3;
    }
    if (dir == 2 && blank % 3 > 0) {
      target = blank - 1;
    }
    if (dir == 3 && blank % 3 < 2) {
      target = blank + 1;
    }
    if (target >= 0) {
      for (i = 0; i < 9; i = i + 1) {
        tmp[i] = v[i];
      }
      tmp[blank] = tmp[target];
      tmp[target] = 0;
      if (check_closed(tmp) == 0) {
        child = make_node(tmp, v[9] + 1);
        cv = child;
        if (cv[10] == 0) {
          goal_found = 1;
          goal_depth = cv[9];
        }
        insert_open(child);
      }
    }
  }
  expansions = expansions + 1;
}

// Solve one scrambled instance; returns the solution depth (0 if the
// expansion budget ran out).
int solve_instance(int seed, int budget) {
  int start[9];
  int i;
  int moves;
  int blank;
  int target;
  int t;
  int** node;
  int prev;
  int spent;
  srand(seed);
  // Reset per-instance search state.
  for (i = 0; i < 8192; i = i + 1) {
    closed[i] = 0;
  }
  open_head = 0;
  open_len = 0;
  goal_found = 0;
  goal_depth = 0;
  // Start from the goal and scramble with random legal moves, never
  // undoing the previous move, so the start state is genuinely deep.
  for (i = 0; i < 8; i = i + 1) {
    start[i] = i + 1;
  }
  start[8] = 0;
  blank = 8;
  prev = 0 - 1;
  for (moves = 0; moves < 400; moves = moves + 1) {
    target = 0 - 1;
    t = rand(4);
    if (t == 0 && blank >= 3) {
      target = blank - 3;
    }
    if (t == 1 && blank < 6) {
      target = blank + 3;
    }
    if (t == 2 && blank % 3 > 0) {
      target = blank - 1;
    }
    if (t == 3 && blank % 3 < 2) {
      target = blank + 1;
    }
    if (target >= 0 && target != prev) {
      start[blank] = start[target];
      start[target] = 0;
      prev = blank;
      blank = target;
    }
  }
  check_closed(start);
  insert_open(make_node(start, 0));
  spent = 0;
  while (goal_found == 0 && spent < budget) {
    node = pop_open();
    if (node == 0) {
      goal_found = 0 - 1;
    } else {
      expand(node);
      spent = spent + 1;
    }
  }
  return goal_depth;
}

int main() {
  int depth_sum;
  depth_sum = 0;
  depth_sum = depth_sum + solve_instance(8892, 2000);
  depth_sum = depth_sum + solve_instance(4117, 2000);
  print_int(expansions);
  print_int(generated);
  print_int(max_open);
  print_int(depth_sum);
  print_int(dup_hits);
  print_int(closed_count);
  return 0;
}
|}
