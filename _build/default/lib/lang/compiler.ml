type output = { program : Ebp_isa.Program.t; debug : Debug_info.t }

let compile source =
  Result.bind (Parser.parse source) (fun ast ->
      Result.map
        (fun typed ->
          let program, debug = Codegen.generate typed in
          { program; debug })
        (Sema.analyze ast))
