test/test_sessions.mli:
