lib/lang/ast.ml: Format
