module Trace = Ebp_trace.Trace
module Write_index = Ebp_trace.Write_index
module Bitmap = Ebp_util.Bitmap
module Metrics = Ebp_obs.Metrics
module Obs_span = Ebp_obs.Span

(* Replay observability, at shard granularity only: counters are bumped
   once per shard (never per event), so the enabled cost is noise and the
   disabled cost is a handful of branches per replay call. The
   scan-vs-indexed pair [replay.scan.writes] / [replay.indexed.writes]
   (see {!Indexed_replay}) quantifies how much event scanning the index
   turns into range arithmetic. *)
let m_sessions = Metrics.counter "replay.sessions"
let m_shards = Metrics.counter "replay.shards"
let m_writes_scanned = Metrics.counter "replay.scan.writes"
let m_blocks_skipped = Metrics.counter "replay.scan.blocks_skipped"
let m_writes_skipped = Metrics.counter "replay.scan.writes_skipped"

let default_page_sizes = [ 4096; 8192 ]

type engine = Scan | Indexed

(* Reverse index value: a small mutable set of session ids. Most words are
   monitored by a handful of sessions (a heap word belongs to one OneHeap
   session plus its enclosing AllHeapInFunc sessions), so a list carries
   the members; crowded sets — pages shared by hundreds of co-located
   sessions — lazily grow a bitmap so membership stays O(1) instead of
   degrading linearly with co-location. *)
type id_set = {
  mutable ids : int list;
  mutable size : int;
  mutable bits : Bitmap.t option;
}

let promote_threshold = 8

let set_mem s id =
  match s.bits with
  | Some b -> Bitmap.get b id
  | None -> List.memq id s.ids

let set_add ~nsessions s id =
  if not (set_mem s id) then begin
    s.ids <- id :: s.ids;
    s.size <- s.size + 1;
    match s.bits with
    | Some b -> Bitmap.set b id
    | None ->
        if s.size > promote_threshold then begin
          let b = Bitmap.create nsessions in
          List.iter (Bitmap.set b) s.ids;
          s.bits <- Some b
        end
  end

let set_remove s id =
  if set_mem s id then begin
    s.ids <- List.filter (fun x -> x != id) s.ids;
    s.size <- s.size - 1;
    match s.bits with Some b -> Bitmap.clear b id | None -> ()
  end

(* Per page size state: page-index maps for protection-transition counting
   and the "write touched an active page" statistic. *)
type page_state = {
  page_size : int;
  page_shift : int;
  (* (session, page) -> number of active monitors of that session on page.
     Key packed as session lsl page_index_bits lor page. *)
  counts : (int, int) Hashtbl.t;
  (* page -> sessions with at least one active monitor there *)
  active : (int, id_set) Hashtbl.t;
  protects : int array;
  unprotects : int array;
  touches : int array;  (* writes landing on an active page, per session *)
}

let log2_exact n =
  let rec go i v = if v = 1 then i else go (i + 1) (v lsr 1) in
  if n <= 0 || n land (n - 1) <> 0 then
    invalid_arg "Replay: page size must be a positive power of two"
  else go 0 n

let make_page_state nsessions page_size =
  {
    page_size;
    page_shift = log2_exact page_size;
    counts = Hashtbl.create 1024;
    active = Hashtbl.create 1024;
    protects = Array.make nsessions 0;
    unprotects = Array.make nsessions 0;
    touches = Array.make nsessions 0;
  }

(* 40 page-index bits cover a 32-bit space down to 1-byte pages (1 KiB
   pages need 22 bits — exactly what a 22-bit shift would have collided
   on); sessions stay well under the remaining 2^22. The guard turns an
   address space larger than the packing into an error instead of silent
   key collisions. *)
let page_index_bits = 40

let pack session page =
  if page lsr page_index_bits <> 0 then
    invalid_arg
      "Replay: page index exceeds 40 bits (page size too small for this \
       address space)";
  (session lsl page_index_bits) lor page

let page_install ~nsessions ps session ~lo ~hi =
  let first = lo lsr ps.page_shift and last = hi lsr ps.page_shift in
  for page = first to last do
    let key = pack session page in
    let count = Option.value ~default:0 (Hashtbl.find_opt ps.counts key) in
    Hashtbl.replace ps.counts key (count + 1);
    if count = 0 then begin
      ps.protects.(session) <- ps.protects.(session) + 1;
      let set =
        match Hashtbl.find_opt ps.active page with
        | Some s -> s
        | None ->
            let s = { ids = []; size = 0; bits = None } in
            Hashtbl.add ps.active page s;
            s
      in
      set_add ~nsessions set session
    end
  done

let page_remove ps session ~lo ~hi =
  let first = lo lsr ps.page_shift and last = hi lsr ps.page_shift in
  for page = first to last do
    let key = pack session page in
    match Hashtbl.find_opt ps.counts key with
    | None -> ()
    | Some count ->
        if count <= 1 then begin
          Hashtbl.remove ps.counts key;
          ps.unprotects.(session) <- ps.unprotects.(session) + 1;
          match Hashtbl.find_opt ps.active page with
          | Some set ->
              set_remove set session;
              if set.ids = [] then Hashtbl.remove ps.active page
          | None -> ()
        end
        else Hashtbl.replace ps.counts key (count - 1)
  done

(* [scratch] is a caller-owned all-clear bitmap used to skip sessions
   already touched on the write's first page; it is left all-clear. *)
let page_write ps scratch ~lo ~hi touch =
  let first = lo lsr ps.page_shift and last = hi lsr ps.page_shift in
  if last = first then
    match Hashtbl.find_opt ps.active first with
    | Some set -> List.iter touch set.ids
    | None -> ()
  else begin
    let first_ids =
      match Hashtbl.find_opt ps.active first with
      | Some set -> set.ids
      | None -> []
    in
    List.iter
      (fun id ->
        Bitmap.set scratch id;
        touch id)
      first_ids;
    (match Hashtbl.find_opt ps.active last with
    | Some set ->
        (* Avoid double-counting sessions active on both touched pages. *)
        List.iter (fun id -> if not (Bitmap.get scratch id) then touch id) set.ids
    | None -> ());
    List.iter (Bitmap.clear scratch) first_ids
  end

(* One shard: the original single-pass replay over an arbitrary subset of
   the sessions. Every per-session quantity (installs, hits, page
   transitions...) depends only on the trace and that session — never on
   which other sessions share the pass — and [total_writes] is a property
   of the trace alone, so replaying a subset yields exactly the rows the
   full pass would have produced for it. That independence is what makes
   the sharded parallel replay below bit-identical to the sequential one. *)
let replay_shard ~page_sizes trace sessions =
  Obs_span.with_span "replay.scan.shard" @@ fun () ->
  let sessions_arr = Array.of_list sessions in
  let nsessions = Array.length sessions_arr in
  (* Which sessions does each interned object belong to? Precomputed per
     object id, so the per-event work is a list walk. *)
  let objs = Trace.objects trace in
  let obj_sessions =
    Array.map
      (fun obj ->
        let acc = ref [] in
        for s = nsessions - 1 downto 0 do
          if Session.matches sessions_arr.(s) obj then acc := s :: !acc
        done;
        !acc)
      objs
  in
  let installs = Array.make nsessions 0 in
  let removes = Array.make nsessions 0 in
  let hits = Array.make nsessions 0 in
  (* word index -> sessions actively monitoring that word *)
  let word_sessions : (int, id_set) Hashtbl.t = Hashtbl.create 4096 in
  let page_states = List.map (make_page_state nsessions) page_sizes in
  let total_writes = ref 0 in
  let word_install session ~lo ~hi =
    for w = lo lsr 2 to hi lsr 2 do
      let set =
        match Hashtbl.find_opt word_sessions w with
        | Some s -> s
        | None ->
            let s = { ids = []; size = 0; bits = None } in
            Hashtbl.add word_sessions w s;
            s
      in
      set_add ~nsessions set session
    done
  in
  let word_remove session ~lo ~hi =
    for w = lo lsr 2 to hi lsr 2 do
      match Hashtbl.find_opt word_sessions w with
      | Some set ->
          set_remove set session;
          if set.ids = [] then Hashtbl.remove word_sessions w
      | None -> ()
    done
  in
  (* Per-write hit dedup (a write can touch two monitored words): a shared
     scratch bitmap plus an undo list, O(1) membership however many
     sessions co-locate on the written words. *)
  let scratch = Bitmap.create (max 1 nsessions) in
  let hit_marks = ref [] in
  (* Block skipping on mapped traces: monitored words and active pages
     only ever lie inside the trace's global install bounds, so a block
     of pure writes whose range is disjoint from those bounds at the
     COARSEST granularity in play (words are 4 bytes; pages are coarser)
     can contribute nothing but its write count — and coarse-page
     disjointness implies disjointness at every finer granularity,
     because a coarse page is a whole number of fine pages. Only
     [total_writes] moves, so the resulting counts are bit-identical to
     the full scan's. *)
  let blocks_skipped = ref 0 and writes_skipped = ref 0 in
  let skip =
    match Trace.install_bounds trace with
    | None -> fun ~min_lo:_ ~max_hi:_ -> false
    | Some (ilo, ihi) ->
        let shift =
          List.fold_left (fun acc ps -> max acc ps.page_shift) 2 page_states
        in
        fun ~min_lo ~max_hi ->
          max_hi lsr shift < ilo lsr shift || min_lo lsr shift > ihi lsr shift
  in
  let on_skip ~writes =
    total_writes := !total_writes + writes;
    incr blocks_skipped;
    writes_skipped := !writes_skipped + writes
  in
  Trace.iter_raw_skipping trace ~skip ~on_skip (fun ~tag ~obj ~lo ~hi ~pc:_ ->
      if tag = 0 then
        List.iter
          (fun s ->
            installs.(s) <- installs.(s) + 1;
            word_install s ~lo ~hi;
            List.iter (fun ps -> page_install ~nsessions ps s ~lo ~hi) page_states)
          obj_sessions.(obj)
      else if tag = 1 then
        List.iter
          (fun s ->
            removes.(s) <- removes.(s) + 1;
            word_remove s ~lo ~hi;
            List.iter (fun ps -> page_remove ps s ~lo ~hi) page_states)
          obj_sessions.(obj)
      else begin
        incr total_writes;
        let first_word = lo lsr 2 and last_word = hi lsr 2 in
        for w = first_word to last_word do
          match Hashtbl.find_opt word_sessions w with
          | Some set ->
              List.iter
                (fun s ->
                  if not (Bitmap.get scratch s) then begin
                    Bitmap.set scratch s;
                    hit_marks := s :: !hit_marks;
                    hits.(s) <- hits.(s) + 1
                  end)
                set.ids
          | None -> ()
        done;
        (match !hit_marks with
        | [] -> ()
        | marks ->
            List.iter (Bitmap.clear scratch) marks;
            hit_marks := []);
        List.iter
          (fun ps ->
            page_write ps scratch ~lo ~hi (fun s ->
                ps.touches.(s) <- ps.touches.(s) + 1))
          page_states
      end);
  Metrics.incr m_shards;
  Metrics.add m_sessions nsessions;
  Metrics.add m_writes_scanned !total_writes;
  Metrics.add m_blocks_skipped !blocks_skipped;
  Metrics.add m_writes_skipped !writes_skipped;
  List.mapi
    (fun s session ->
      let vm =
        List.map
          (fun ps ->
            {
              Counts.page_size = ps.page_size;
              protects = ps.protects.(s);
              unprotects = ps.unprotects.(s);
              (* Every hit lands on an active page, so misses-on-active-pages
                 = touches - hits. *)
              active_page_misses = ps.touches.(s) - hits.(s);
            })
          page_states
      in
      ( session,
        {
          Counts.installs = installs.(s);
          removes = removes.(s);
          hits = hits.(s);
          misses = !total_writes - hits.(s);
          vm;
        } ))
    sessions

(* Split [xs] into at most [n] contiguous runs of near-equal length,
   preserving order; concatenating the result restores [xs]. *)
let split_contiguous n xs =
  let arr = Array.of_list xs in
  let len = Array.length arr in
  List.filter
    (fun shard -> shard <> [])
    (List.init n (fun i ->
         let lo = len * i / n and hi = len * (i + 1) / n in
         Array.to_list (Array.sub arr lo (hi - lo))))

let replay_all ?(page_sizes = default_page_sizes) ?pool ?domains
    ?(engine = Indexed) ?index trace sessions =
  (* The index is built once (or taken prebuilt) and shared immutably by
     every shard; only the session list is split across domains. The
     build itself also uses the pool when one is in play — per-chunk
     tables merged into a structurally identical index. *)
  let go pool_opt =
    let shard_fn =
      match engine with
      | Scan -> replay_shard ~page_sizes trace
      | Indexed ->
          let index =
            match index with
            | Some idx -> idx
            | None -> Write_index.build ?pool:pool_opt ~page_sizes trace
          in
          Indexed_replay.replay_shard ~index ~page_sizes trace
    in
    match pool_opt with
    | None -> shard_fn sessions
    | Some pool ->
        let n = min (Ebp_util.Domain_pool.domains pool) (List.length sessions) in
        if n <= 1 then shard_fn sessions
        else
          List.concat
            (Ebp_util.Domain_pool.map pool shard_fn (split_contiguous n sessions))
  in
  match (pool, domains) with
  | Some pool, _ -> go (Some pool)
  | None, (None | Some 1) -> go None
  | None, Some n ->
      Ebp_util.Domain_pool.with_pool ~domains:n (fun pool -> go (Some pool))

let replay ?page_sizes ?engine ?index trace session =
  match replay_all ?page_sizes ?engine ?index trace [ session ] with
  | [ (_, counts) ] -> counts
  | _ -> assert false

let discover_and_replay ?page_sizes ?pool ?domains ?engine ?index
    ?(keep_hitless = false) trace =
  let sessions = Discovery.discover trace in
  let results = replay_all ?page_sizes ?pool ?domains ?engine ?index trace sessions in
  if keep_hitless then results
  else List.filter (fun (_, c) -> c.Counts.hits > 0) results
