module Timing = Ebp_wms.Timing
module Counts = Ebp_sessions.Counts

type approach = NH | VM of int | TP | CP | Remote of approach

let rec name = function
  | NH -> "NH"
  | VM ps when ps mod 1024 = 0 -> Printf.sprintf "VM-%dK" (ps / 1024)
  | VM ps -> Printf.sprintf "VM-%d" ps
  | TP -> "TP"
  | CP -> "CP"
  | Remote a -> name a ^ "-rem"

let rec long_name = function
  | NH -> "NativeHardware"
  | VM ps when ps mod 1024 = 0 -> Printf.sprintf "VirtualMemory-%dK" (ps / 1024)
  | VM ps -> Printf.sprintf "VirtualMemory-%d" ps
  | TP -> "TrapPatch"
  | CP -> "CodePatch"
  | Remote a -> long_name a ^ "-remote"

let default_approaches = [ NH; VM 4096; VM 8192; TP; CP ]

type overhead = {
  hit_us : float;
  miss_us : float;
  install_us : float;
  remove_us : float;
  total_us : float;
  breakdown : (string * float) list;
}

let f = float_of_int

let finish ~hit_us ~miss_us ~install_us ~remove_us ~breakdown =
  let breakdown = List.filter (fun (_, v) -> v <> 0.0) breakdown in
  {
    hit_us;
    miss_us;
    install_us;
    remove_us;
    total_us = hit_us +. miss_us +. install_us +. remove_us;
    breakdown;
  }

(* Fault-driven events that would cross the address-space boundary under
   the §3.4 ptrace-style arrangement, split into (hit-side, miss-side):
   each pays a context-switch round trip. *)
let remote_faults approach (c : Counts.t) =
  match approach with
  | NH -> (c.Counts.hits, 0)
  | VM page_size ->
      (c.Counts.hits, (Counts.vm_for c ~page_size).Counts.active_page_misses)
  | TP -> (c.Counts.hits, c.Counts.misses)
  | CP | Remote _ -> invalid_arg "Strategy_model: Remote applies to NH, VM, TP only"

let rec overhead (t : Timing.t) approach (c : Counts.t) =
  match approach with
  | Remote base ->
      let o = overhead t base c in
      let hit_faults, miss_faults = remote_faults base c in
      let round_trip = 2.0 *. t.Timing.context_switch_us in
      let hit_switch = f hit_faults *. round_trip in
      let miss_switch = f miss_faults *. round_trip in
      {
        hit_us = o.hit_us +. hit_switch;
        miss_us = o.miss_us +. miss_switch;
        install_us = o.install_us;
        remove_us = o.remove_us;
        total_us = o.total_us +. hit_switch +. miss_switch;
        breakdown = ("ContextSwitch", hit_switch +. miss_switch) :: o.breakdown;
      }
  | NH ->
      let hit_us = f c.Counts.hits *. t.Timing.nh_fault_handler_us in
      finish ~hit_us ~miss_us:0.0 ~install_us:0.0 ~remove_us:0.0
        ~breakdown:[ ("NHFaultHandler", hit_us) ]
  | VM page_size ->
      let vm = Counts.vm_for c ~page_size in
      let faults = c.Counts.hits + vm.Counts.active_page_misses in
      let hit_us =
        f c.Counts.hits *. (t.Timing.vm_fault_handler_us +. t.Timing.software_lookup_us)
      in
      let miss_us =
        f vm.Counts.active_page_misses
        *. (t.Timing.vm_fault_handler_us +. t.Timing.software_lookup_us)
      in
      let update_triple =
        t.Timing.vm_unprotect_us +. t.Timing.software_update_us +. t.Timing.vm_protect_us
      in
      let install_us =
        (f c.Counts.installs *. update_triple)
        +. (f vm.Counts.protects *. t.Timing.vm_protect_us)
      in
      let remove_us =
        (f c.Counts.removes *. update_triple)
        +. (f vm.Counts.unprotects *. t.Timing.vm_unprotect_us)
      in
      finish ~hit_us ~miss_us ~install_us ~remove_us
        ~breakdown:
          [
            ("VMFaultHandler", f faults *. t.Timing.vm_fault_handler_us);
            ("SoftwareLookup", f faults *. t.Timing.software_lookup_us);
            ( "SoftwareUpdate",
              f (c.Counts.installs + c.Counts.removes) *. t.Timing.software_update_us );
            ( "VMProtect",
              f (c.Counts.installs + c.Counts.removes + vm.Counts.protects)
              *. t.Timing.vm_protect_us );
            ( "VMUnprotect",
              f (c.Counts.installs + c.Counts.removes + vm.Counts.unprotects)
              *. t.Timing.vm_unprotect_us );
          ]
  | TP ->
      let writes = c.Counts.hits + c.Counts.misses in
      let per_write = t.Timing.tp_fault_handler_us +. t.Timing.software_lookup_us in
      let hit_us = f c.Counts.hits *. per_write in
      let miss_us = f c.Counts.misses *. per_write in
      let install_us = f c.Counts.installs *. t.Timing.software_update_us in
      let remove_us = f c.Counts.removes *. t.Timing.software_update_us in
      finish ~hit_us ~miss_us ~install_us ~remove_us
        ~breakdown:
          [
            ("TPFaultHandler", f writes *. t.Timing.tp_fault_handler_us);
            ("SoftwareLookup", f writes *. t.Timing.software_lookup_us);
            ( "SoftwareUpdate",
              f (c.Counts.installs + c.Counts.removes) *. t.Timing.software_update_us );
          ]
  | CP ->
      let writes = c.Counts.hits + c.Counts.misses in
      let hit_us = f c.Counts.hits *. t.Timing.software_lookup_us in
      let miss_us = f c.Counts.misses *. t.Timing.software_lookup_us in
      let install_us = f c.Counts.installs *. t.Timing.software_update_us in
      let remove_us = f c.Counts.removes *. t.Timing.software_update_us in
      finish ~hit_us ~miss_us ~install_us ~remove_us
        ~breakdown:
          [
            ("SoftwareLookup", f writes *. t.Timing.software_lookup_us);
            ( "SoftwareUpdate",
              f (c.Counts.installs + c.Counts.removes) *. t.Timing.software_update_us );
          ]

let relative overhead ~base_ms =
  if base_ms <= 0.0 then invalid_arg "Strategy_model.relative: base_ms <= 0";
  overhead.total_us /. (base_ms *. 1000.0)
