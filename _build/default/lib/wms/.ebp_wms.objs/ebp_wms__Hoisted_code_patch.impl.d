lib/wms/hoisted_code_patch.ml: Array Ebp_isa Ebp_machine Ebp_util Hashtbl List Monitor_map Option Timing Wms
