lib/wms/virtual_memory.mli: Ebp_machine Timing Wms
