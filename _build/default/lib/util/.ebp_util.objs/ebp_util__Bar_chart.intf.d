lib/util/bar_chart.mli:
