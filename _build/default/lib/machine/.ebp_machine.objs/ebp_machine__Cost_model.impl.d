lib/machine/cost_model.ml: Ebp_isa Float
