lib/lang/debug_info.mli: Format
