module Interval = Ebp_util.Interval
module Machine = Ebp_machine.Machine
module Memory = Ebp_machine.Memory

type verdict = Allow | Deny

type attempt = { write : Interval.t; value : int; pc : int; guarded : bool }

type t = {
  machine : Machine.t;
  timing : Timing.t;
  map : Monitor_map.t;
  page_guards : (int, int) Hashtbl.t;  (* page -> guarded-range count *)
  decide : attempt -> verdict;
  mutable allowed : int;
  mutable denied : int;
  mutable bystanders : int;
}

let on_write_fault t machine ~addr ~width ~value ~pc =
  let mem = Machine.memory machine in
  Machine.charge machine
    (Timing.cycles
       (t.timing.Timing.vm_fault_handler_us +. t.timing.Timing.software_lookup_us));
  let write = Interval.of_base_size ~base:addr ~size:width in
  let guarded = Monitor_map.overlaps t.map write in
  let verdict =
    if guarded then t.decide { write; value; pc; guarded }
    else begin
      t.bystanders <- t.bystanders + 1;
      Allow
    end
  in
  match verdict with
  | Allow ->
      if guarded then t.allowed <- t.allowed + 1;
      if width = 4 then Memory.privileged_store_word mem addr value
      else Memory.privileged_store_byte mem addr value
  | Deny ->
      (* The store is suppressed: that is the point of a barrier. *)
      t.denied <- t.denied + 1

let attach ?(timing = Timing.sparcstation2) machine ~decide =
  let mem = Machine.memory machine in
  let t =
    {
      machine;
      timing;
      map = Monitor_map.create ~page_size:(Memory.page_size mem) ();
      page_guards = Hashtbl.create 16;
      decide;
      allowed = 0;
      denied = 0;
      bystanders = 0;
    }
  in
  Machine.set_write_fault_handler machine (Some (on_write_fault t));
  t

let guard t range =
  let mem = Machine.memory t.machine in
  Monitor_map.install t.map range;
  List.iter
    (fun page ->
      let count = Option.value ~default:0 (Hashtbl.find_opt t.page_guards page) in
      Hashtbl.replace t.page_guards page (count + 1);
      if count = 0 then Memory.protect mem ~page Memory.Read_only)
    (Memory.pages_of_range mem range);
  Ok ()

let unguard t range =
  let mem = Machine.memory t.machine in
  Monitor_map.remove t.map range;
  List.iter
    (fun page ->
      match Hashtbl.find_opt t.page_guards page with
      | None -> ()
      | Some count ->
          if count <= 1 then begin
            Hashtbl.remove t.page_guards page;
            Memory.protect mem ~page Memory.Read_write
          end
          else Hashtbl.replace t.page_guards page (count - 1))
    (Memory.pages_of_range mem range);
  Ok ()

let allowed t = t.allowed
let denied t = t.denied
let bystanders t = t.bystanders
