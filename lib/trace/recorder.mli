(** Trace generation (phase 1): run an instrumented program once and record
    its program event trace.

    This is the OCaml equivalent of the paper's assembly post-processing
    (§6): it attaches to a loaded program and

    - installs monitors for globals and static locals at start of run;
    - on every function entry, installs monitors for that activation's
      automatic variables (from debug info + the live frame pointer), and
      removes them on exit — "write monitors for automatic variables are
      installed and removed on function boundaries";
    - tracks heap objects through the allocator's event hook, preserving
      object identity across [realloc];
    - records a [Write] event for every explicit user-code store (implicit
      frame bookkeeping and allocator writes never appear).

    At {!finish}, Remove events are emitted for everything still live so
    install/remove counts balance. *)

type t

val attach : ?hint:int -> Ebp_runtime.Loader.t -> t
(** Install hooks on the loader's machine and allocator. The recorder owns
    the machine's store/enter/leave hooks and the allocator's event hook
    from this point. [hint] sizes the trace builder to the expected event
    count (see {!Trace.Builder.create}). *)

val finish : t -> Trace.t
(** Emit final removes and freeze the trace. Call after the run completes. *)

val record :
  ?hint:int -> ?fuel:int -> Ebp_runtime.Loader.t ->
  Ebp_runtime.Loader.run_result * Trace.t
(** Convenience: attach, run, finish. *)

val record_source :
  ?seed:int -> ?fuel:int -> string ->
  (Ebp_runtime.Loader.run_result * Trace.t * Ebp_lang.Debug_info.t, string) result
(** Compile MiniC source and record a run of it. *)
