(** Hand-written lexer for MiniC.

    Supports decimal and [0x] hexadecimal integer literals, [//] line
    comments, and [/* ... */] block comments. *)

type spanned = { token : Token.t; line : int }

val tokenize : string -> (spanned list, string) result
(** The resulting list always ends with {!Token.Eof}. Errors include the
    1-based line number. *)
