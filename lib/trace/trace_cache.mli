(** On-disk content-addressed cache of program event traces.

    Phase 1 of the experiment is deterministic: the trace of a workload is
    a pure function of its source, its PRNG seed, and the machine fuel
    limit. Re-tracing on every experiment run therefore repeats work the
    binary codec already knows how to persist. This cache stores each trace
    once, under a key derived from exactly those inputs, so a warm run
    skips phase-1 machine execution entirely and goes straight to replay.

    {2 Key scheme}

    {!make_key} hashes the tuple (codec version, program name, source
    digest, seed, fuel) into a hex string:

    {[ MD5 ("ebp-trace-cache-v4:EBPT2+EBPT3" ^ name ^ MD5 (source) ^ seed ^ fuel) ]}

    Any input that could change the recorded events changes the key, so a
    stale entry can never be returned for modified source — entries need no
    invalidation, only garbage collection. The codec version is part of the
    hash: a change to the binary trace format (or to the entry format
    itself, as the v2 → v3 trailer addition was) bumps the constant and
    orphans (rather than misparses) old entries.

    {2 Storage and integrity}

    One file per entry, [<dir>/<key>.trace]: a magic string, a small
    length-prefixed metadata string supplied by the caller (the experiment
    stores the base execution time there), then the {!Trace.encode}
    payload — all sealed under a 12-byte trailer (["EBPZ"] plus the 8-byte
    LE CRC-32 of everything before it). Writes go to a temporary file in
    the same directory and are renamed into place, so a reader never
    observes a partial entry and concurrent producers of the same key race
    benignly; transient [Sys_error]s during a store are retried with
    exponential backoff (counted in [trace_cache.store_retries]).

    The trailer is verified {e before} any decoding, so truncation and bit
    flips on disk are caught up front. A corrupt entry is quarantined —
    renamed [<file>.corrupt], counted in [trace_cache.quarantined],
    surfaced through {!set_quarantine_log} — and reported as a miss, never
    an error, so the caller transparently re-records. An unreadable file
    or directory is a plain miss.

    {2 The mapped tier}

    Next to each canonical entry, {!store} writes a best-effort
    [<key>.ebpt3] sidecar: the same trace in the {!Trace.map_columnar}
    zero-copy columnar layout. {!lookup} maps the sidecar when present
    (counted in [trace_cache.mapped_hits]) and only decodes the EBPT2
    entry when it is absent, damaged (quarantined like any entry), or a
    fault is injected at [trace.codec.map]. Sidecars are disposable
    acceleration: deleting one costs a slower next load, nothing else,
    and {!gc} reclaims any left orphaned by a vanished trace. *)

val default_dir : unit -> string
(** [$XDG_CACHE_HOME/ebp] when [XDG_CACHE_HOME] is set and absolute,
    otherwise [$HOME/.cache/ebp]; falls back to [.ebp-cache] in the working
    directory when neither variable is usable. The directory is not
    created until the first {!store}. *)

val make_key : name:string -> source:string -> seed:int -> ?fuel:int -> unit -> string
(** The cache key for a recording of [source] (a MiniC translation unit)
    under [name], [seed], and an optional machine [fuel] limit, per the key
    scheme above. The result is a fixed-width lowercase hex string, safe to
    use as a file name. *)

val store :
  dir:string -> key:string -> ?meta:string -> Trace.t -> (unit, string) result
(** [store ~dir ~key ~meta trace] persists [trace] (and the opaque [meta]
    string, default [""]) under [key], creating [dir] if needed. Returns
    [Error _] with a human-readable reason when the filesystem (or an
    injected fault) refuses after the retries are exhausted; storing is
    always safe to skip, so callers typically degrade to a warning. *)

val lookup : dir:string -> key:string -> (Trace.t * string) option
(** [lookup ~dir ~key] is [Some (trace, meta)] when an entry for [key]
    exists and passes its integrity check, [None] otherwise (quarantining
    the file first if it exists but is corrupt). Prefers the mapped
    columnar sidecar (see the mapped tier above), so the returned trace
    usually satisfies {!Trace.is_mapped}. *)

val lookup_decoded : dir:string -> key:string -> (Trace.t * string) option
(** {!lookup} restricted to the canonical EBPT2 entry — always a decoded
    heap trace, never a mapping. For consumers that must not hold the
    file open (and the benchmark's decode-vs-map comparison). *)

val set_quarantine_log : (file:string -> reason:string -> unit) -> unit
(** Install the hook called (synchronously, possibly from a pool worker)
    each time an entry is quarantined, with the entry's file name relative
    to its cache directory and a human-readable reason. Default: ignore.
    The CLI points this at stderr. *)

(** {2 Write-index entries}

    The {!Write_index} of a trace is itself a pure function of the trace
    and the page-size list it was built with, so it is cached the same
    way: one [<dir>/<key>.<ikey>.widx] file per (trace key, page sizes)
    pair, where [ikey] rehashes the trace key together with the index
    codec version and the page sizes, and the [<key>.] prefix ties the
    file to its trace for the GC's orphan sweep. A warm experiment run
    thereby skips both phase-1 tracing {e and} the index build. The same
    sealing, atomic temp-and-rename, retry, and quarantine-on-corruption
    rules apply. *)

val index_key : key:string -> page_sizes:int list -> string
(** [index_key ~key ~page_sizes] derives the index entry's key from a
    trace's {!make_key} result. Order of [page_sizes] is significant. *)

val store_index :
  dir:string ->
  key:string ->
  page_sizes:int list ->
  Write_index.t ->
  (unit, string) result
(** Persist an index built from the trace stored under [key] with exactly
    [page_sizes]. Same failure contract as {!store}. *)

val lookup_index :
  dir:string -> key:string -> page_sizes:int list -> Write_index.t option

val index_cached : dir:string -> key:string -> page_sizes:int list -> bool
(** Whether an index entry for [(key, page_sizes)] is on disk — a cheap
    existence probe (no read, no integrity check; a damaged entry still
    reports [true] and resolves to a miss at {!lookup_index} time). The
    replay planner prices index reuse with this. *)

(** {2 Checkpoint-chain entries}

    A {!Checkpoint.t} chain taken during a recording is stored next to
    the trace as [<dir>/<key>.<ckey>.ckpt] — key-prefixed like index
    entries so the GC groups it with (and orphan-sweeps it against) the
    owning trace. The chain is only meaningful for the exact recording
    [key] names (same program, seed, fuel), which the key scheme already
    guarantees. Same sealing, atomic rename, retry, and
    quarantine-on-corruption rules as every other entry. *)

val checkpoint_key : key:string -> string

val store_checkpoints :
  dir:string -> key:string -> Checkpoint.t -> (unit, string) result
(** Same failure contract as {!store}; the [checkpoint.store] fault
    point additionally governs taking individual checkpoints (see
    {!Checkpoint.take}), while this store goes through the shared
    [trace_cache.store.*] points. *)

val lookup_checkpoints : dir:string -> key:string -> Checkpoint.t option

val checkpoint_cached : dir:string -> key:string -> bool
(** Existence probe, like {!index_cached} — the replay planner prices
    checkpoint-restart with this. *)

(** {2 Garbage collection}

    Keys are content hashes over the codec version, so entries never go
    stale — the only maintenance a cache directory needs is reclaiming
    space. [ebp cache ls|clear|gc|verify] drives the functions below.

    Every operation in this module updates the [trace_cache.*] metrics
    when {!Ebp_obs.Metrics} is enabled: hit/miss and byte counters for
    lookups and stores, latency histograms, quarantine and store-retry
    counters, and [trace_cache.gc_removed] /
    [trace_cache.gc_reclaimed_bytes] plus the [trace_cache.disk_bytes]
    gauge for the GC entry points. *)

type entry_kind =
  | Trace_entry  (** a [<key>.trace] phase-1 recording *)
  | Index_entry  (** a [<key>.<ikey>.widx] write index *)
  | Columnar_entry  (** a [<key>.ebpt3] zero-copy columnar sidecar *)
  | Checkpoint_entry  (** a [<key>.<ckey>.ckpt] checkpoint chain *)
  | Tmp_entry    (** a [.<key>*.tmp] temp file orphaned by an interrupted
                     store *)
  | Corrupt_entry
      (** a [*.corrupt] file quarantined by a failed integrity check *)

type entry = {
  entry_file : string;  (** file name relative to the cache directory *)
  entry_kind : entry_kind;
  entry_bytes : int;
  entry_mtime : float;
}

val entries : dir:string -> entry list
(** Every cache-owned regular file in [dir] (unrecognised names are left
    alone), sorted oldest mtime first, ties broken by name — i.e. in
    eviction order. An unreadable directory is an empty list. *)

val clear : dir:string -> int * int
(** Remove every entry, temp files and quarantined corpses included.
    Returns [(removed, reclaimed_bytes)]; files that vanish concurrently
    are skipped, not errors. *)

val gc : dir:string -> max_bytes:int -> int * int
(** [gc ~dir ~max_bytes] first deletes all temp files (an interrupted
    store's litter — harmless to a store in flight, which degrades to a
    warning), quarantined corpses, and orphaned sidecars ([.widx] or
    [.ebpt3] files whose owning [<key>.trace] is gone), then evicts live
    entries oldest-mtime-first until the directory's cache-owned
    footprint is at most [max_bytes] — evicting whole ownership groups
    (a trace together with its sidecars) so it never mints new orphans.
    Returns [(removed, reclaimed_bytes)]. *)

(** {2 Integrity scan} *)

type verify_report = {
  checked : int;  (** trace, index, and columnar entries examined *)
  intact : int;
  corrupt : (string * string) list;
      (** (file, reason), sorted by file name; already quarantined if
          requested *)
  tmp_litter : int;  (** orphaned temp files seen (left for {!gc}) *)
}

val verify : ?quarantine:bool -> dir:string -> unit -> verify_report
(** [verify ~dir ()] re-checks the trailer CRC and decodes every trace,
    index, and columnar entry in [dir], quarantining the failures exactly
    as a lookup would (pass [~quarantine:false] to only report).
    Columnar sidecars get the {e full} {!Trace.decode_columnar} check —
    including the payload CRC the mmap fast path deliberately skips, so
    this scan is the integrity backstop for the mapped tier.
    Already-quarantined [*.corrupt] files are skipped. Drives
    [ebp cache verify]. *)
