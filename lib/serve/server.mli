(** The resident trace service: admission control, per-tenant fairness,
    batch coalescing, and the Unix-domain-socket event loop behind
    [ebp serve].

    The module is layered so the scheduling policy is testable without a
    socket:

    - {!Core} is the service state machine. {!Core.submit} answers
      control requests immediately and admits queries to a {e bounded}
      queue — a full queue returns {!Protocol.Overloaded} to the caller
      synchronously; nothing in the server buffers without bound.
      {!Core.dispatch_one} picks the next tenant round-robin, {e
      coalesces} every queued query identical to the picked one (any
      tenant) into the same batch, executes once on the shared
      {!Ebp_util.Domain_pool}, and replies to every member.
    - {!serve} wraps a {!Core.t} in a [select]-based event loop on a
      Unix-domain socket: length-prefixed {!Protocol} frames in, one
      response frame per request out, many concurrent connections, no
      thread per client.

    Operational metrics ([serve.*] — queue delay, per-tenant latency,
    warm/cold store tiers, coalesce and overload counts) are cataloged in
    [docs/SERVICE.md], as are the graceful-shutdown and crash-recovery
    stories. Fault points: [serve.accept], [serve.read], [serve.write],
    and [serve.frame.decode]. *)

module Core : sig
  type config = {
    queue_limit : int;  (** max queries admitted and not yet answered *)
    lru_capacity : int;  (** resident decoded traces ({!Trace_store}) *)
    domains : int;  (** pool width for sharded replays and experiments *)
    cache_dir : string option;  (** disk tier; [None] = in-memory only *)
    server_name : string;  (** advertised in [Hello_ok] *)
  }

  val default_config : config
  (** queue 64, LRU 8, 1 domain, no disk tier, ["ebp serve/1.0.0"]. *)

  type t

  val create : config -> t
  (** Also creates the domain pool; release it with {!shutdown}. *)

  val submit :
    t -> tenant:string -> reply:(Protocol.response -> unit) -> Protocol.request -> unit
  (** Feed one request in. [reply] is invoked exactly once per request —
      immediately for control requests ([Hello]/[Ping]/[Stats_query]/
      [Shutdown]), for a rejected query ([Overloaded] on a full queue,
      [Error_resp Shutting_down] while draining), and from a later
      {!dispatch_one} for an admitted query. *)

  val pending : t -> int
  (** Queries admitted and not yet dispatched. *)

  val draining : t -> bool
  (** True once a [Shutdown] request was accepted: queued queries still
      run to completion, new ones are refused. *)

  val request_shutdown : t -> unit
  (** Enter draining without a [Shutdown] frame (signal handler path). *)

  val dispatch_one : t -> bool
  (** Run one coalesced batch: pop the round-robin-next tenant's oldest
      query, absorb every identical queued query, execute once, reply to
      all. [false] when the queue was empty. *)

  val drain : t -> unit
  (** {!dispatch_one} until the queue is empty. *)

  val shutdown : t -> unit
  (** {!drain}, then release the domain pool. The core must not be used
      afterwards. *)
end

val serve :
  ?on_ready:(unit -> unit) ->
  socket_path:string ->
  Core.config ->
  unit ->
  (unit, string) result
(** Run the daemon on [socket_path] until a graceful shutdown completes:
    bind (refusing to start when a live daemon already owns the path;
    replacing a stale socket file), call [on_ready] once accepting,
    then loop. On [Shutdown] (or SIGTERM/SIGINT) the listener closes
    immediately — new connections are refused by the OS — queued queries
    drain, replies flush, and the socket file is unlinked. [Error _] is
    reserved for setup failures (bad path, address in use). *)
