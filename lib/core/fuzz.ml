(* Differential fuzzing over generated MiniC programs.

   The generator is deterministic from its seed and emits programs as
   lists of droppable source units (a global declaration, a helper
   function, one statement group of main) so the shrinker can delete
   units wholesale and re-render, instead of mutating text. Programs are
   closed-world by construction: loops are bounded, recursion depth is
   masked, division and modulo are by positive constants, array and heap
   subscripts are masked to power-of-two bounds — so every generated
   program halts with exit code 0 well inside the default fuel, and any
   oracle failure is a real divergence, not an unlucky program.

   The oracles are the redundancies the codebase already maintains:
   [Machine.run] vs the single-[step] loop (independent execution loops),
   recorded vs unrecorded execution (tracing must not perturb the run),
   the EBPT2, EBPT3 and EBPW1 codec round-trips, and the scan vs indexed
   replay engines. *)

module Prng = Ebp_util.Prng
module Machine = Ebp_machine.Machine
module Loader = Ebp_runtime.Loader
module Trace = Ebp_trace.Trace
module Write_index = Ebp_trace.Write_index
module Replay = Ebp_sessions.Replay

type program = {
  globals : string list;
  funcs : (string * string list) list;  (* name, body lines *)
  main_body : string list;
}

let render p =
  let b = Buffer.create 1024 in
  List.iter (fun g -> Buffer.add_string b (g ^ "\n")) p.globals;
  List.iter
    (fun (name, body) ->
      Buffer.add_string b (Printf.sprintf "\nint %s(int a, int b) {\n" name);
      List.iter (fun l -> Buffer.add_string b ("  " ^ l ^ "\n")) body;
      Buffer.add_string b "}\n")
    p.funcs;
  Buffer.add_string b "\nint main() {\n";
  List.iter (fun l -> Buffer.add_string b ("  " ^ l ^ "\n")) p.main_body;
  Buffer.add_string b "}\n";
  Buffer.contents b

let generate ~seed =
  let g = Prng.create seed in
  let rand n = Prng.int g n in
  let pick xs = List.nth xs (rand (List.length xs)) in
  let n_scalars = 2 + rand 3 in
  let n_arrays = 1 + rand 2 in
  let arr_sizes = Array.init n_arrays (fun _ -> pick [ 8; 16; 32 ]) in
  let globals =
    List.init n_scalars (fun i -> Printf.sprintf "int g%d;" i)
    @ List.init n_arrays (fun i -> Printf.sprintf "int arr%d[%d];" i arr_sizes.(i))
  in
  let scalars = List.init n_scalars (fun i -> Printf.sprintf "g%d" i) in
  (* Integer expressions over [vars]: every division/modulo is by a
     positive constant, shifts are by small constants. *)
  let rec expr vars depth =
    if depth = 0 || rand 3 = 0 then
      match rand 3 with
      | 0 -> string_of_int (rand 201 - 100)
      | _ -> if vars = [] then string_of_int (rand 50) else pick vars
    else
      let a = expr vars (depth - 1) in
      match rand 10 with
      | 0 -> Printf.sprintf "(%s + %s)" a (expr vars (depth - 1))
      | 1 -> Printf.sprintf "(%s - %s)" a (expr vars (depth - 1))
      | 2 -> Printf.sprintf "(%s * %s)" a (expr vars (depth - 1))
      | 3 -> Printf.sprintf "(%s ^ %s)" a (expr vars (depth - 1))
      | 4 -> Printf.sprintf "(%s & %s)" a (expr vars (depth - 1))
      | 5 -> Printf.sprintf "(%s | %s)" a (expr vars (depth - 1))
      | 6 -> Printf.sprintf "(%s << %d)" a (rand 5)
      | 7 -> Printf.sprintf "(%s >> %d)" a (rand 5)
      | 8 -> Printf.sprintf "(%s / %d)" a (1 + rand 9)
      | _ -> Printf.sprintf "(%s %% %d)" a (1 + rand 9)
  in
  let n_funcs = 1 + rand 3 in
  let func i =
    let ai = rand n_arrays in
    let mask = arr_sizes.(ai) - 1 in
    let mid =
      match rand 3 with
      | 0 ->
          Printf.sprintf "for (i = 0; i < %d; i = i + 1) { x = x + ((%s) ^ i); }"
            (1 + rand 8)
            (expr [ "a"; "b"; "x" ] 1)
      | 1 ->
          Printf.sprintf "if (%s > %s) { x = x - b; } else { x = x + a; }"
            (pick [ "a"; "b"; "x" ])
            (pick [ "a"; "b"; "x" ])
      | _ ->
          Printf.sprintf "x = x + arr%d[%s & %d];" ai
            (pick [ "a"; "b"; "x" ])
            mask
    in
    ( Printf.sprintf "f%d" i,
      [ "int x;"; "int i;";
        Printf.sprintf "x = %s;" (expr [ "a"; "b" ] 2);
        mid; "return x;" ] )
  in
  let funcs =
    List.init n_funcs func
    @ [ ("r0", [ "if (a <= 0) { return b; }"; "return r0(a - 1, b + (a ^ b));" ]) ]
  in
  let mvars = "t" :: scalars in
  let group () =
    match rand 8 with
    | 0 -> Printf.sprintf "t = t + %s;" (expr mvars 3)
    | 1 ->
        let gv = pick scalars in
        Printf.sprintf "%s = %s; t = t + %s;" gv (expr mvars 3) gv
    | 2 ->
        let a = rand n_arrays in
        let mask = arr_sizes.(a) - 1 in
        Printf.sprintf
          "for (i = 0; i < %d; i = i + 1) { arr%d[i & %d] = %s + i; } t = t + \
           arr%d[%d];"
          (4 + rand 12) a mask (expr mvars 2) a
          (rand arr_sizes.(a))
    | 3 ->
        Printf.sprintf
          "i = 0; while (i < %d) { i = i + 1; if ((i & 3) == %d) { continue; } \
           t = t + (i * %d); if (i > %d) { break; } }"
          (5 + rand 10) (rand 4) (1 + rand 5) (3 + rand 10)
    | 4 ->
        Printf.sprintf "t = t + f%d(%s, %s);" (rand n_funcs) (expr mvars 1)
          (expr mvars 1)
    | 5 ->
        Printf.sprintf "t = t + r0((%s) & 7, %s);" (expr mvars 1) (expr mvars 1)
    | 6 ->
        let words = pick [ 8; 16 ] in
        let idx = rand words in
        Printf.sprintf
          "p = malloc(%d); if (p != 0) { p[%d] = %s; t = t + p[%d]; free(p); }"
          (words * 4) idx (expr mvars 2) idx
    | _ -> Printf.sprintf "srand(%d); t = t + rand(%d);" (rand 1000) (1 + rand 50)
  in
  let n_groups = 4 + rand 5 in
  {
    globals;
    funcs;
    main_body =
      [ "int t;"; "int i;"; "int* p;"; "t = 0;" ]
      @ List.init n_groups (fun _ -> group ())
      @ [ "print_int(t);"; "return 0;" ];
  }

(* --- oracles --- *)

let default_fuel = 2_000_000

let status_str = function
  | Machine.Halted n -> Printf.sprintf "halted %d" n
  | Machine.Out_of_fuel -> "out of fuel"
  | Machine.Machine_error m -> "machine error: " ^ m

let check_source ?(fuel = default_fuel) ~seed source =
  let ( let* ) = Result.bind in
  let fail oracle fmt = Printf.ksprintf (fun d -> Error (oracle, d)) fmt in
  let* recorded, trace =
    match Ebp_trace.Recorder.record_source ~seed ~fuel source with
    | Error msg -> fail "record" "compile error: %s" msg
    | Ok (r, trace, _debug) -> (
        match (r.Loader.runtime_error, r.Loader.status) with
        | Some e, _ -> fail "record" "runtime error: %s" e
        | None, Machine.Halted 0 -> Ok (r, trace)
        | None, st -> fail "record" "status: %s" (status_str st))
  in
  (* Recording must not perturb execution. *)
  let* plain =
    match Loader.run_source ~seed ~fuel source with
    | Error msg -> fail "run-vs-record" "compile error: %s" msg
    | Ok r ->
        if r.Loader.status <> recorded.Loader.status then
          fail "run-vs-record" "status: %s vs %s" (status_str r.Loader.status)
            (status_str recorded.Loader.status)
        else if r.Loader.cycles <> recorded.Loader.cycles then
          fail "run-vs-record" "cycles: %d vs %d" r.Loader.cycles
            recorded.Loader.cycles
        else if r.Loader.instructions <> recorded.Loader.instructions then
          fail "run-vs-record" "instructions: %d vs %d" r.Loader.instructions
            recorded.Loader.instructions
        else if r.Loader.output <> recorded.Loader.output then
          fail "run-vs-record" "output: %S vs %S" r.Loader.output
            recorded.Loader.output
        else Ok r
  in
  (* [Machine.run]'s batch loop vs the single-step loop. *)
  let* () =
    match Ebp_lang.Compiler.compile source with
    | Error msg -> fail "step-vs-run" "compile error: %s" msg
    | Ok compiled ->
        let t = Loader.load ~seed compiled in
        let m = Loader.machine t in
        let rec drive budget =
          if budget = 0 then Machine.Out_of_fuel
          else
            match Machine.step m with
            | None -> drive (budget - 1)
            | Some r -> r
        in
        let status = drive fuel in
        if status <> plain.Loader.status then
          fail "step-vs-run" "status: %s vs %s" (status_str status)
            (status_str plain.Loader.status)
        else if Machine.cycles m <> plain.Loader.cycles then
          fail "step-vs-run" "cycles: %d vs %d" (Machine.cycles m)
            plain.Loader.cycles
        else if Machine.instructions_executed m <> plain.Loader.instructions
        then
          fail "step-vs-run" "instructions: %d vs %d"
            (Machine.instructions_executed m)
            plain.Loader.instructions
        else if Loader.output t <> plain.Loader.output then
          fail "step-vs-run" "output: %S vs %S" (Loader.output t)
            plain.Loader.output
        else Ok ()
  in
  let* () =
    let bytes = Trace.encode trace in
    match Trace.decode bytes with
    | Error msg -> fail "trace-codec" "decode: %s" msg
    | Ok trace' ->
        if Trace.encode trace' <> bytes then
          fail "trace-codec" "round-trip: re-encoded bytes differ"
        else Ok ()
  in
  (* The columnar codec must agree with the canonical EBPT2 bytes: a
     fully-checked decode of the EBPT3 image round-trips the metadata and
     re-encodes (canonically) to the same EBPT2 bytes. *)
  let* () =
    let bytes = Trace.encode_columnar ~meta:"fuzz" trace in
    match Trace.decode_columnar bytes with
    | Error msg -> fail "columnar-codec" "decode: %s" msg
    | Ok (trace', meta) ->
        if meta <> "fuzz" then
          fail "columnar-codec" "meta: %S round-tripped as %S" "fuzz" meta
        else if Trace.encode trace' <> Trace.encode trace then
          fail "columnar-codec" "round-trip: canonical bytes differ"
        else Ok ()
  in
  let page_sizes = Replay.default_page_sizes in
  let* index =
    let index = Write_index.build ~page_sizes trace in
    match Write_index.decode (Write_index.encode index) with
    | Error msg -> fail "index-codec" "decode: %s" msg
    | Ok index' ->
        if not (Write_index.equal index index') then
          fail "index-codec" "round-trip: index differs"
        else Ok index
  in
  let scan = Replay.discover_and_replay ~page_sizes ~engine:Replay.Scan trace in
  let indexed =
    Replay.discover_and_replay ~page_sizes ~engine:Replay.Indexed ~index trace
  in
  if scan <> indexed then
    if List.length scan <> List.length indexed then
      fail "scan-vs-indexed" "session count: %d vs %d" (List.length scan)
        (List.length indexed)
    else
      let diverging =
        List.find_opt
          (fun ((s, c), (s', c')) -> not (Ebp_sessions.Session.equal s s') || c <> c')
          (List.combine scan indexed)
      in
      match diverging with
      | Some ((s, _), _) ->
          fail "scan-vs-indexed" "counts differ for %s"
            (Ebp_sessions.Session.to_string s)
      | None -> fail "scan-vs-indexed" "results differ"
  else Ok ()

type failure = {
  seed : int;
  oracle : string;
  detail : string;
  program : program;
  source : string;
}

let check_program ?fuel ~seed program =
  let source = render program in
  match check_source ?fuel ~seed source with
  | Ok () -> Ok ()
  | Error (oracle, detail) -> Error { seed; oracle; detail; program; source }

let check_seed ?fuel seed = check_program ?fuel ~seed (generate ~seed)

(* --- shrinking --- *)

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Two failures count as "the same bug" when the oracle matches and the
   detail agrees up to its first ':' — specific numbers (cycle counts,
   error positions) may drift as the program shrinks, but a candidate
   that fails a different oracle (or turns a divergence into a compile
   error) is a different bug and is rejected. *)
let same_class f (oracle, detail) =
  let head s =
    match String.index_opt s ':' with Some i -> String.sub s 0 i | None -> s
  in
  f.oracle = oracle && head f.detail = head detail

let drop_nth xs n = List.filteri (fun i _ -> i <> n) xs

(* Deleting a function also deletes every line calling it, so the
   candidate stays closed. *)
let without_func p name =
  let calls l = contains_sub l (name ^ "(") in
  {
    globals = p.globals;
    funcs =
      List.filter_map
        (fun (n, body) ->
          if n = name then None
          else Some (n, List.filter (fun l -> not (calls l)) body))
        p.funcs;
    main_body = List.filter (fun l -> not (calls l)) p.main_body;
  }

let candidates p =
  List.init (List.length p.main_body) (fun i ->
      { p with main_body = drop_nth p.main_body i })
  @ List.map (fun (name, _) -> without_func p name) p.funcs
  @ List.concat
      (List.mapi
         (fun j (_, body) ->
           List.init (List.length body) (fun i ->
               {
                 p with
                 funcs =
                   List.mapi
                     (fun j' (n, b) ->
                       if j = j' then (n, drop_nth b i) else (n, b))
                     p.funcs;
               }))
         p.funcs)
  @ List.init (List.length p.globals) (fun i ->
        { p with globals = drop_nth p.globals i })

let shrink ?fuel f =
  (* Greedy fixpoint: take the first accepted deletion and restart. Every
     acceptance removes at least one source unit, so this terminates. *)
  let rec fix f =
    let rec try_candidates = function
      | [] -> f
      | p :: rest -> (
          match check_program ?fuel ~seed:f.seed p with
          | Ok () -> try_candidates rest
          | Error f' ->
              if same_class f (f'.oracle, f'.detail) then fix f'
              else try_candidates rest)
    in
    try_candidates (candidates f.program)
  in
  fix f
