(** A miniature source-level debugger built on the write monitor service —
    the paper's end goal ("our hope is that data breakpoints will be
    routinely supported in future debuggers", §9).

    [Debugger.load] prepares a compiled MiniC program for execution under
    one of the four WMS strategies (instrumenting the code for the patching
    strategies). Data breakpoints can then be set on source-level objects:

    - {!watch_global} — a global variable, armed immediately;
    - {!watch_local} — a local of a function: armed at every activation,
      disarmed on return (monitors for automatic variables live on function
      boundaries, §6);
    - {!watch_alloc} — the [n]th heap object allocated by a function: armed
      when the allocation happens, follows [realloc], disarmed on [free].

    Monitor notifications become {!hit} records carrying the write range,
    the program counter, and the enclosing function name. *)

type strategy_kind =
  | Native_hardware
  | Virtual_memory
  | Trap_patch
  | Code_patch
  | Code_patch_hoisted
      (** CodePatch with the §9 loop-invariant check hoisting *)
  | Code_patch_inline
      (** CodePatch with the check compiled to real machine code walking an
          in-debuggee-memory monitor map (no modeled lookup charge) *)
  | Virtual_breakpoint
      (** {!Ebp_wms.Virtual_breakpoint}: hypervisor split code/data views
          (Price, arXiv:1801.09250) — no code patching, no guest-visible
          protection changes *)

val strategy_name : strategy_kind -> string

type hit = {
  write : Ebp_util.Interval.t;
  pc : int;
  func : string option;  (** function containing the write, when known *)
  instr : Ebp_isa.Instr.t option;  (** the offending instruction *)
  value : int;  (** the value now stored at the written location — write
                    monitors notify after the write succeeds (§2), so this
                    is the new value *)
}

type t

val load :
  ?strategy:strategy_kind ->
  ?timing:Ebp_wms.Timing.t ->
  ?seed:int ->
  ?monitor_reg_count:int ->
  Ebp_lang.Compiler.output ->
  t
(** Default strategy: [Code_patch]. [monitor_reg_count] only matters for
    [Native_hardware] (default 4, as in §3.1). *)

val load_source :
  ?strategy:strategy_kind ->
  ?timing:Ebp_wms.Timing.t ->
  ?seed:int ->
  ?monitor_reg_count:int ->
  string ->
  (t, string) result
(** Compile MiniC source and {!load} it. *)

val watch_global : t -> string -> (unit, string) result
(** Fails on an unknown global or when the strategy is out of capacity. *)

val watch_local : t -> func:string -> var:string -> (unit, string) result
(** Fails on an unknown variable. Capacity failures at activation time are
    recorded in {!errors} (execution continues, as a debugger would). *)

val watch_alloc : t -> site:string -> nth:int -> unit
(** Arm a pending watch on the [nth] (1-based) allocation whose innermost
    allocating function is [site]. *)

val on_hit : t -> (hit -> unit) -> unit
(** Called on every monitor notification, in addition to {!hits} recording. *)

val break_when : t -> (hit -> bool) -> unit
(** Conditional data breakpoint: stop the program (exit code 42) at the
    first hit satisfying the predicate — e.g. "suspend execution whenever a
    certain object is modified" to a particular value (§1). The triggering
    hit is retrievable via {!hits}/{!break_hit}. *)

val break_hit : t -> hit option
(** The hit that satisfied {!break_when}, if the run stopped on one. *)

val run : ?fuel:int -> t -> Ebp_runtime.Loader.run_result

val hits : t -> hit list
(** All hits, in execution order. *)

val errors : t -> string list
(** Install/remove failures encountered during the run (e.g. NativeHardware
    register exhaustion), oldest first. *)

val cycles : t -> int
val strategy : t -> Ebp_wms.Wms.strategy
val loader : t -> Ebp_runtime.Loader.t

val function_at : t -> int -> string option
(** Function whose code contains an instruction index, from the compiler's
    [f_<name>] labels. *)
