lib/lang/token.ml:
