(** Plain-text table rendering for the experiment reports.

    The benchmark harness reprints the paper's tables; this module renders
    aligned ASCII tables with a header row. *)

type align = Left | Right

val render :
  ?align:align list ->
  header:string list ->
  rows:string list list ->
  unit ->
  string
(** [render ~header ~rows ()] lays out [header] and [rows] in columns padded
    to the widest cell. [align] gives per-column alignment (default: first
    column left, others right); when shorter than the column count, the last
    entry is repeated. Rows shorter than the header are padded with empty
    cells; longer rows raise.
    @raise Invalid_argument if a row is wider than the header. *)
