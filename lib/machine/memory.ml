module Interval = Ebp_util.Interval

type protection = Read_write | Read_only

(* [prot] is the guest-visible protection (what mprotect would set);
   [view] is the hypervisor-maintained data-view protection the VB
   strategy uses — a second shadow domain the guest cannot observe.
   Stores must clear both; [prot] faults first (the guest page fault is
   delivered before any hypervisor exit). *)
type page = { bytes : Bytes.t; mutable prot : protection; mutable view : protection }

(* [cache_idx]/[cache_page] memoize the last page touched: workload
   memory traffic is strongly page-local, so most accesses skip the
   hashtable probe. The cache is never stale — pages are never removed
   from [pages], and [protect] mutates the shared page record in place. *)
(* [dirty] collects the pages written since the last [take_dirty] while
   [track_dirty] is on (the checkpointing recorder turns it on; every
   other consumer pays one untaken branch per store). [last_dirty_idx]
   memoizes the last marked page, like the access cache: consecutive
   stores to one page skip the hashtable. *)
type t = {
  page_size : int;
  page_shift : int;
  pages : (int, page) Hashtbl.t;
  mutable cache_idx : int;
  mutable cache_page : page;
  mutable track_dirty : bool;
  dirty : (int, unit) Hashtbl.t;
  mutable last_dirty_idx : int;
}

exception Write_fault of { addr : int; width : int }
exception View_fault of { addr : int; width : int }
exception Bad_address of { addr : int; what : string }

let address_space = 1 lsl 32

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ?(page_size = 4096) () =
  if not (is_power_of_two page_size) then
    invalid_arg "Memory.create: page_size must be a positive power of two";
  let rec log2 n = if n = 1 then 0 else 1 + log2 (n lsr 1) in
  {
    page_size;
    page_shift = log2 page_size;
    pages = Hashtbl.create 64;
    (* Page indices are non-negative, so -1 never hits; the dummy page is
       unreachable through the cache. *)
    cache_idx = -1;
    cache_page = { bytes = Bytes.empty; prot = Read_write; view = Read_write };
    track_dirty = false;
    dirty = Hashtbl.create 64;
    last_dirty_idx = -1;
  }

let page_size t = t.page_size

let check_addr _t addr width what =
  if addr < 0 || addr + width > address_space then
    raise (Bad_address { addr; what });
  if width = 4 && addr land 3 <> 0 then
    raise (Bad_address { addr; what = what ^ ": unaligned word access" })

let page_of t addr = addr lsr t.page_shift

let pages_of_range t range =
  let first = page_of t (Interval.lo range) and last = page_of t (Interval.hi range) in
  List.init (last - first + 1) (fun i -> first + i)

(* Materializing lookup: absent pages spring into writable existence. *)
let find_page t idx =
  if t.cache_idx = idx then t.cache_page
  else begin
    let p =
      match Hashtbl.find_opt t.pages idx with
      | Some p -> p
      | None ->
          let p =
            { bytes = Bytes.make t.page_size '\000'; prot = Read_write; view = Read_write }
          in
          Hashtbl.add t.pages idx p;
          p
    in
    t.cache_idx <- idx;
    t.cache_page <- p;
    p
  end

(* A word access never spans pages because page sizes are power-of-two
   multiples of the word size and word accesses are aligned. *)

let[@inline] byte_at p off = Char.code (Bytes.unsafe_get p.bytes off)

let[@inline] word_at p off =
  let b i = Char.code (Bytes.unsafe_get p.bytes (off + i)) in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  if v land 0x80000000 <> 0 then v - address_space else v

(* Loads do not materialize pages: an absent page reads as zeroes. *)

let load_byte t addr =
  check_addr t addr 1 "load_byte";
  let idx = page_of t addr in
  if t.cache_idx = idx then byte_at t.cache_page (addr land (t.page_size - 1))
  else
    match Hashtbl.find t.pages idx with
    | p ->
        t.cache_idx <- idx;
        t.cache_page <- p;
        byte_at p (addr land (t.page_size - 1))
    | exception Not_found -> 0

let load_word t addr =
  check_addr t addr 4 "load_word";
  let idx = page_of t addr in
  if t.cache_idx = idx then word_at t.cache_page (addr land (t.page_size - 1))
  else
    match Hashtbl.find t.pages idx with
    | p ->
        t.cache_idx <- idx;
        t.cache_page <- p;
        word_at p (addr land (t.page_size - 1))
    | exception Not_found -> 0

let[@inline] set_byte p off v = Bytes.unsafe_set p.bytes off (Char.unsafe_chr (v land 0xff))

let[@inline] set_word p off v =
  Bytes.unsafe_set p.bytes off (Char.unsafe_chr (v land 0xff));
  Bytes.unsafe_set p.bytes (off + 1) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set p.bytes (off + 2) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set p.bytes (off + 3) (Char.unsafe_chr ((v lsr 24) land 0xff))

let[@inline] mark_dirty t idx =
  if t.track_dirty && idx <> t.last_dirty_idx then begin
    t.last_dirty_idx <- idx;
    Hashtbl.replace t.dirty idx ()
  end

let raw_store_byte t addr v =
  let idx = page_of t addr in
  mark_dirty t idx;
  set_byte (find_page t idx) (addr land (t.page_size - 1)) v

let raw_store_word t addr v =
  let idx = page_of t addr in
  mark_dirty t idx;
  set_word (find_page t idx) (addr land (t.page_size - 1)) v

let store_byte t addr v =
  check_addr t addr 1 "store_byte";
  let idx = page_of t addr in
  let p = find_page t idx in
  if p.prot <> Read_write then raise (Write_fault { addr; width = 1 });
  if p.view <> Read_write then raise (View_fault { addr; width = 1 });
  mark_dirty t idx;
  set_byte p (addr land (t.page_size - 1)) v

let store_word t addr v =
  check_addr t addr 4 "store_word";
  let idx = page_of t addr in
  let p = find_page t idx in
  if p.prot <> Read_write then raise (Write_fault { addr; width = 4 });
  if p.view <> Read_write then raise (View_fault { addr; width = 4 });
  mark_dirty t idx;
  set_word p (addr land (t.page_size - 1)) v

let privileged_store_byte t addr v =
  check_addr t addr 1 "privileged_store_byte";
  raw_store_byte t addr v

let privileged_store_word t addr v =
  check_addr t addr 4 "privileged_store_word";
  raw_store_word t addr v

let protect t ~page prot = (find_page t page).prot <- prot

let protection t ~page =
  match Hashtbl.find_opt t.pages page with
  | None -> Read_write
  | Some p -> p.prot

let protect_range t range prot =
  List.iter (fun page -> protect t ~page prot) (pages_of_range t range)

let protected_page_count t =
  Hashtbl.fold (fun _ p acc -> if p.prot = Read_only then acc + 1 else acc) t.pages 0

let view_protect t ~page prot = (find_page t page).view <- prot

let view_protection t ~page =
  match Hashtbl.find_opt t.pages page with
  | None -> Read_write
  | Some p -> p.view

let view_protected_page_count t =
  Hashtbl.fold (fun _ p acc -> if p.view = Read_only then acc + 1 else acc) t.pages 0

let materialized_pages t = Hashtbl.length t.pages

let fold_pages t ~init ~f =
  let idxs = Hashtbl.fold (fun k _ acc -> k :: acc) t.pages [] in
  let idxs = List.sort Int.compare idxs in
  List.fold_left (fun acc idx -> f acc idx (Hashtbl.find t.pages idx).bytes) init idxs

(* --- dirty-page tracking (checkpoint support) --- *)

let set_dirty_tracking t on =
  t.track_dirty <- on;
  t.last_dirty_idx <- -1

let dirty_tracking t = t.track_dirty

let take_dirty t =
  let idxs = Hashtbl.fold (fun k () acc -> k :: acc) t.dirty [] in
  let idxs = List.sort Int.compare idxs in
  let out =
    (* A dirty page is always materialized (it was stored to), so
       [find_page] never creates one here. *)
    List.map (fun idx -> (idx, Bytes.copy (find_page t idx).bytes)) idxs
  in
  Hashtbl.reset t.dirty;
  t.last_dirty_idx <- -1;
  out

let overlay_page t ~page bytes =
  if Bytes.length bytes <> t.page_size then
    invalid_arg "Memory.overlay_page: bytes must be one page";
  Bytes.blit bytes 0 (find_page t page).bytes 0 t.page_size
