examples/page_size_sweep.mli:
