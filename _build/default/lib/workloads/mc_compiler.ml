(* GCC analogue: token processing, symbol interning, recursive expression
   tree construction, folding, and teardown.

   Matches GCC's trace signature: heap-heavy (hundreds of tree nodes built
   and freed through a recursive allocator, giving deep AllHeapInFunc
   contexts), a populated global symbol table, and bursty write behaviour.

   MiniC has no structs or casts; heap records are accessed through two
   pointer views of the same block — an int* view ("v") for scalar fields
   and an int** view ("node") for child pointers — relying on the
   language's K&R-style assignment permissiveness. Layout of a tree node
   (12 bytes): word 0 = tag (0 leaf, 1..4 operator), words 1-2 = leaf value
   and spare, or left/right child pointers. *)

let source =
  {|
// compiler: expression scanner/parser/folder (GCC analogue)

int sym_table[512];   // open-addressing hash of interned names
int sym_vals[512];
int sym_count;
int sym_probes;
int node_count;
int fold_count;
int free_count;
int parse_errors;
int checksum;
int code_buf[4096];   // emitted (opcode, operand) pairs
int code_len;
int vm_stack[256];
int vm_mismatches;
int vm_runs;

int intern(int name) {
  int h;
  int i;
  h = (name * 40503) % 512;
  if (h < 0) {
    h = h + 512;
  }
  i = 0;
  while (i < 512) {
    sym_probes = sym_probes + 1;
    if (sym_table[h] == 0) {
      sym_table[h] = name;
      sym_vals[h] = name % 97;
      sym_count = sym_count + 1;
      return h;
    }
    if (sym_table[h] == name) {
      return h;
    }
    h = (h + 1) % 512;
    i = i + 1;
  }
  parse_errors = parse_errors + 1;
  return 0 - 1;
}

int** alloc_node(int tag) {
  int** node;
  int* v;
  node = malloc(12);
  v = node;
  v[0] = tag;
  node_count = node_count + 1;
  return node;
}

int** parse_expr(int depth) {
  int** node;
  int* v;
  int r;
  r = rand(100);
  if (depth <= 0 || r < 35) {
    node = alloc_node(0);
    v = node;
    v[1] = 1 + rand(999);
    if (rand(100) < 40) {
      intern(v[1] * 3 + 11);
    }
    return node;
  }
  node = alloc_node(1 + rand(4));
  node[1] = parse_expr(depth - 1);
  node[2] = parse_expr(depth - 1);
  return node;
}

int eval_expr(int** node) {
  int* v;
  int a;
  int b;
  int op;
  v = node;
  op = v[0];
  if (op == 0) {
    return v[1];
  }
  a = eval_expr(node[1]);
  b = eval_expr(node[2]);
  if (op == 1) {
    return (a + b) % 999983;
  }
  if (op == 2) {
    return (a - b) % 999983;
  }
  if (op == 3) {
    return a * b % 999983;
  }
  if (b == 0) {
    return a;
  }
  return a / b;
}

// Constant folding: collapse operator nodes whose children are leaves.
int fold_expr(int** node) {
  int* v;
  int* lv;
  int* rv;
  int folded;
  v = node;
  if (v[0] == 0) {
    return 0;
  }
  folded = fold_expr(node[1]);
  folded = folded + fold_expr(node[2]);
  lv = node[1];
  rv = node[2];
  if (lv[0] == 0 && rv[0] == 0) {
    free(node[1]);
    free(node[2]);
    v[1] = (lv[1] + rv[1]) % 999983;
    v[0] = 0;
    fold_count = fold_count + 1;
    free_count = free_count + 2;
    return folded + 1;
  }
  return folded;
}

int free_tree(int** node) {
  int* v;
  int n;
  v = node;
  n = 1;
  if (v[0] != 0) {
    n = n + free_tree(node[1]);
    n = n + free_tree(node[2]);
  }
  free(node);
  return n;
}

void emit(int op, int arg) {
  if (code_len < 4094) {
    code_buf[code_len] = op;
    code_buf[code_len + 1] = arg;
    code_len = code_len + 2;
  }
}

// Code generation: postorder walk emitting a stack-machine program.
void gen_code(int** node) {
  int* v;
  v = node;
  if (v[0] == 0) {
    emit(1, v[1]);
    return;
  }
  gen_code(node[1]);
  gen_code(node[2]);
  emit(2, v[0]);
}

// Execute the emitted stack program; must agree with eval_expr.
int run_code() {
  int sp;
  int i;
  int op;
  int a;
  int b;
  int r;
  sp = 0;
  for (i = 0; i < code_len; i = i + 2) {
    op = code_buf[i];
    if (op == 1) {
      vm_stack[sp] = code_buf[i + 1];
      sp = sp + 1;
    } else {
      b = vm_stack[sp - 1];
      a = vm_stack[sp - 2];
      op = code_buf[i + 1];
      if (op == 1) {
        r = (a + b) % 999983;
      } else {
        if (op == 2) {
          r = (a - b) % 999983;
        } else {
          if (op == 3) {
            r = a * b % 999983;
          } else {
            if (b == 0) {
              r = a;
            } else {
              r = a / b;
            }
          }
        }
      }
      sp = sp - 1;
      vm_stack[sp - 1] = r;
    }
  }
  vm_runs = vm_runs + 1;
  return vm_stack[0];
}

int main() {
  int i;
  int pass;
  int direct;
  int compiled;
  int** t;
  srand(1992);
  checksum = 0;
  for (i = 0; i < 120; i = i + 1) {
    t = parse_expr(5);
    direct = eval_expr(t);
    checksum = (checksum + direct) % 1000000007;
    code_len = 0;
    gen_code(t);
    for (pass = 0; pass < 4; pass = pass + 1) {
      compiled = run_code();
      if (compiled != direct) {
        vm_mismatches = vm_mismatches + 1;
      }
    }
    fold_expr(t);
    checksum = (checksum + eval_expr(t)) % 1000000007;
    free_count = free_count + free_tree(t);
  }
  print_int(node_count);
  print_int(fold_count);
  print_int(free_count);
  print_int(sym_count);
  print_int(sym_probes);
  print_int(parse_errors);
  print_int(vm_runs);
  print_int(vm_mismatches);
  print_int(checksum);
  return 0;
}
|}
