lib/lang/debug_info.ml: Array Format List Printf
