(** Common write-monitor-service types (paper §2).

    A strategy, once attached to a machine, exposes the WMS interface —
    InstallMonitor / RemoveMonitor — with MonitorNotification delivered to
    the callback supplied at attach time. *)

type notification = {
  write : Ebp_util.Interval.t;  (** the byte range the hit store wrote *)
  pc : int;  (** program counter of the monitor hit *)
}

(** First-class strategy handle, so clients (the {!Ebp_core.Debugger},
    examples, tests) can treat the strategies uniformly. *)
type strategy = {
  name : string;
  install : Ebp_util.Interval.t -> (unit, string) result;
  remove : Ebp_util.Interval.t -> (unit, string) result;
  active_monitors : unit -> int;
  extras : unit -> (string * int) list;
      (** strategy-specific auxiliary counters beyond the common {!stats} —
          e.g. VirtualMemory's [page_miss_faults], VirtualBreakpoint's
          [view_switch_faults]/[view_miss_faults] — as stable snake_case
          keys, rendered uniformly by [ebp stats] and the debug REPL.
          Strategies without extras return []. *)
}

(** Operation counters every strategy maintains. *)
type stats = {
  mutable hits : int;  (** monitor notifications delivered *)
  mutable lookups : int;  (** software lookups performed *)
  mutable installs : int;
  mutable removes : int;
}

val fresh_stats : unit -> stats
