(** Scoped timing spans, recorded per domain and exportable as Chrome
    trace-event JSON (loadable in Perfetto or [chrome://tracing]).

    A span is a named interval of wall-clock time on one domain:

    {[
      Span.with_span "phase2.replay" (fun () -> ...)
    ]}

    When the subsystem is disabled ({!Metrics.is_enabled} = false),
    [with_span] is a branch and a tail call. Enabled, each completed span
    is appended to the calling domain's buffer (no lock) and its duration
    is observed into the histogram [span.<name>] in the {!Metrics}
    registry, so span populations show up in metric snapshots as well as
    on the timeline.

    Span names are dotted lowercase paths naming subsystem then
    operation ([phase1.workload], [index.build], [pool.task]); treat the
    name as a low-cardinality label and carry per-instance detail in
    [args]. Nested [with_span] calls produce properly nested intervals
    (the export uses complete events, so viewers reconstruct the stack
    from containment). *)

val now_ns : unit -> int
(** Wall-clock nanoseconds (from [Unix.gettimeofday], so microsecond
    granularity). Monotonic in practice over a run; used for every span
    timestamp. *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()], recording a span covering its
    execution — also when [f] raises. [args] become the trace event's
    [args] object. Disabled, it is exactly [f ()] plus one branch. *)

val events : unit -> (string * int * int * int) list
(** All recorded spans as [(name, domain_id, start_ns, dur_ns)], merged
    across domains, ordered by start time. Same visibility caveat as
    {!Metrics.snapshot}: quiesce other domains first. *)

val to_trace_events : unit -> string
(** The recorded spans as a Chrome trace-event JSON array: one complete
    ([ph = "X"]) event per span with [pid] 1 and [tid] the domain id,
    timestamps in microseconds relative to the earliest span, plus
    metadata events naming the process and each domain. Open the file
    with {{:https://ui.perfetto.dev}Perfetto} or [chrome://tracing]. *)

val reset : unit -> unit
(** Drop all recorded spans. Only call while no other domain is
    recording. *)
