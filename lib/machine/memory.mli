(** Sparse, paged byte-addressable memory with per-page write protection.

    This is the substrate for the VirtualMemory strategy: the WMS write
    protects the pages a monitor resides on and catches the resulting write
    faults. Pages are materialized on demand and zero-filled, so a machine
    with a 4 GiB address space costs only what it touches.

    Word accesses are 4-byte little-endian and must be aligned. Stores
    truncate to 32 bits; word loads sign-extend, byte loads zero-extend.

    Protected stores raise {!Write_fault}; they never modify memory. The
    privileged accessors bypass protection — they model the fault handler
    (or the debugger) emulating the faulting instruction. *)

type t

type protection = Read_write | Read_only

exception Write_fault of { addr : int; width : int }
exception Bad_address of { addr : int; what : string }
(** Raised on negative, out-of-space, or (for words) unaligned addresses. *)

val create : ?page_size:int -> unit -> t
(** [page_size] must be a positive power of two (default 4096). *)

val page_size : t -> int

val page_of : t -> int -> int
(** Page index containing a byte address. *)

val pages_of_range : t -> Ebp_util.Interval.t -> int list
(** Ascending page indices covering an address interval. *)

val load_word : t -> int -> int
val load_byte : t -> int -> int

val store_word : t -> int -> int -> unit
(** [store_word t addr v]: respects protection. @raise Write_fault *)

val store_byte : t -> int -> int -> unit

val privileged_store_word : t -> int -> int -> unit
val privileged_store_byte : t -> int -> int -> unit

val protect : t -> page:int -> protection -> unit
val protection : t -> page:int -> protection

val protect_range : t -> Ebp_util.Interval.t -> protection -> unit
(** Apply a protection to every page covering the interval. *)

val protected_page_count : t -> int
(** Number of pages currently read-only. *)

val materialized_pages : t -> int
(** Number of pages backed by storage (diagnostics). *)

val fold_pages : t -> init:'a -> f:('a -> int -> bytes -> 'a) -> 'a
(** Fold over materialized pages in ascending index order. The [bytes]
    are the live page buffer — callers must not mutate them. Note that
    an all-zero materialized page is semantically identical to an absent
    one; consumers comparing memories should skip zero pages. *)

(** {2 Dirty-page tracking}

    Checkpoint support: with tracking on, every store (protected,
    privileged, or faulted-through) marks its page dirty, and
    {!take_dirty} drains the set as page snapshots. Off by default; the
    cost when off is one branch per store. *)

val set_dirty_tracking : t -> bool -> unit
(** Enable/disable tracking. Does not clear an already-collected dirty
    set — {!take_dirty} does. *)

val dirty_tracking : t -> bool

val take_dirty : t -> (int * bytes) list
(** The pages written since the last [take_dirty] (or since tracking
    began), as [(page index, page contents copy)] in ascending index
    order, and clear the set. *)

val overlay_page : t -> page:int -> bytes -> unit
(** Replace one page's contents (protection is untouched) — the restore
    half of {!take_dirty}.
    @raise Invalid_argument if [bytes] is not exactly one page. *)
