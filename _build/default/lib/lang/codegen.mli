(** Code generation from the typed IR to the simulated ISA.

    The generated code deliberately mirrors the paper's compilation setup
    (§6): no variable lives in a register — every read loads from memory and
    every assignment is a store instruction — matching "No variables were
    allocated to registers". Frame-management stores (saved [ra]/[fp],
    parameter spills, temporary pushes) are marked {e implicit} so that the
    trace generator and the instrumentation passes skip them, just as the
    paper's traces exclude register spills.

    Calling convention: arguments in [a0]–[a5], result in [v0]; [fp] points
    at the saved-[fp] slot; locals at negative [fp] offsets. [Enter]/[Leave]
    markers are placed where [fp] is valid for the new frame. Execution
    starts at instruction 0 ([_start]), which sets up the stack, calls
    [main], and halts with [main]'s return value. *)

val generate : Typed.tprogram -> Ebp_isa.Program.t * Debug_info.t
(** The returned program is resolved (no symbolic labels remain).
    @raise Failure on internal inconsistencies (a sema bug). *)
