(* Tests for the cost-based replay planner: the pure cost model must pick
   each branch on the workload shapes it was calibrated for, the chosen
   branch must be observable (planner.decision.* counters, the ?log
   line), and — whatever it picks — the report must be bit-identical to
   both fixed engines. *)

module Interval = Ebp_util.Interval
module Prng = Ebp_util.Prng
module Object_desc = Ebp_trace.Object_desc
module Trace = Ebp_trace.Trace
module Write_index = Ebp_trace.Write_index
module Replay = Ebp_sessions.Replay
module Planner = Ebp_sessions.Planner
module Metrics = Ebp_obs.Metrics

let iv lo hi = Interval.make ~lo ~hi

(* --- the pure model, table-driven ---

   One row per calibration point; the expectation documents the regime
   the model must keep recognizing. Numbers sit well inside each regime,
   not on a crossover, so harmless re-calibrations don't flip them. *)

let model_table =
  [
    (* events, sessions, domains, cached, expected *)
    (2_000, 10, 1, false, Planner.Use_scan);
    (2_000, 10, 1, true, Planner.Use_scan);
    (* a cached index makes indexed replay free of its build cost *)
    (100_000, 500, 1, true, Planner.Reuse_index);
    (100_000, 500, 4, true, Planner.Reuse_index);
    (* no cache: a long, session-heavy trace amortizes a cold build *)
    (1_000_000, 300, 1, false, Planner.Build_index);
    (1_000_000, 300, 4, false, Planner.Build_index);
    (* few sessions never justify touching an index, however long *)
    (1_000_000, 2, 1, false, Planner.Use_scan);
  ]

let test_model_table () =
  List.iter
    (fun (events, sessions, domains, cached_index, expected) ->
      let e = Planner.estimate ~events ~sessions ~domains ~cached_index () in
      Alcotest.(check string)
        (Printf.sprintf "events=%d sessions=%d domains=%d cached=%b" events
           sessions domains cached_index)
        (Planner.choice_name expected)
        (Planner.choice_name e.Planner.choice);
      if e.Planner.choice = Planner.Reuse_index then
        Alcotest.(check bool) "reuse only when cached" true cached_index)
    model_table

let test_model_pure () =
  let e () =
    Planner.estimate ~events:50_000 ~sessions:40 ~domains:2 ~cached_index:true
      ()
  in
  Alcotest.(check bool) "same inputs, same estimate" true (e () = e ())

(* --- end-to-end: each branch forced by a real trace ---

   Synthetic traces shaped to land squarely in one regime each. The
   session count is whatever discovery finds, so each test first checks
   the trace really is in the regime it claims. *)

let make_trace ~objects ~events ~seed =
  let prng = Prng.create seed in
  let b = Trace.Builder.create ~hint:(events + (2 * objects)) () in
  let descs =
    Array.init objects (fun i ->
        let base = 0x1000 + (i * 0x100) in
        (Object_desc.Global { var = Printf.sprintf "g%d" i }, iv base (base + 7)))
  in
  Array.iter (fun (obj, range) -> Trace.Builder.add_install b obj range) descs;
  for i = 0 to events - 1 do
    let lo =
      if Prng.int prng 4 = 0 then
        (* on some monitored object *)
        let _, range = descs.(Prng.int prng objects) in
        Interval.lo range + (4 * Prng.int prng 2)
      else 0x100000 + (4 * Prng.int prng 0x1000)
    in
    Trace.Builder.add_write b (iv lo (lo + 3)) ~pc:(i mod 211)
  done;
  Array.iter (fun (obj, range) -> Trace.Builder.add_remove b obj range) descs;
  Trace.Builder.finish b

let counter_value snap name =
  match
    List.find_opt (fun (n, _, _) -> String.equal n name) snap.Metrics.counters
  with
  | Some (_, total, _) -> total
  | None -> 0

(* Run the planner on [trace], asserting it picks [expected] (visible in
   the counter and the log line) and that its report is bit-identical to
   both fixed engines. *)
let check_branch name ?index_source trace expected =
  let sessions = Ebp_sessions.Discovery.discover trace in
  let e =
    Planner.estimate ~events:(Trace.length trace)
      ~sessions:(List.length sessions) ~domains:1
      ~cached_index:
        (match index_source with Some s -> s.Planner.cached | None -> false)
      ()
  in
  Alcotest.(check string)
    (name ^ ": trace lands in the claimed regime")
    (Planner.choice_name expected)
    (Planner.choice_name e.Planner.choice);
  Metrics.reset ();
  Metrics.set_enabled true;
  let logged = ref [] in
  let planned =
    Fun.protect
      ~finally:(fun () -> Metrics.set_enabled false)
      (fun () ->
        Planner.replay ?index_source ~log:(fun l -> logged := l :: !logged)
          trace)
  in
  let snap = Metrics.snapshot () in
  Metrics.reset ();
  let decision = "planner.decision." ^ Planner.choice_name expected in
  Alcotest.(check int) (name ^ ": " ^ decision ^ " counted") 1
    (counter_value snap decision);
  (match !logged with
  | [ line ] ->
      let prefix = "planner: " ^ Planner.choice_name expected in
      Alcotest.(check string)
        (name ^ ": log line names the decision")
        prefix
        (String.sub line 0 (String.length prefix))
  | lines -> Alcotest.failf "%s: %d log lines" name (List.length lines));
  let scan = Replay.discover_and_replay ~engine:Replay.Scan trace in
  let indexed = Replay.discover_and_replay ~engine:Replay.Indexed trace in
  Alcotest.(check bool) (name ^ ": identical to fixed scan") true
    (planned = scan);
  Alcotest.(check bool) (name ^ ": identical to fixed indexed") true
    (planned = indexed);
  Alcotest.(check string)
    (name ^ ": marshalled bytes match the scan engine")
    (Digest.to_hex (Digest.string (Marshal.to_string scan [])))
    (Digest.to_hex (Digest.string (Marshal.to_string planned [])))

let test_branch_scan () =
  check_branch "short trace" (make_trace ~objects:8 ~events:1_500 ~seed:11)
    Planner.Use_scan

let test_branch_build () =
  check_branch "cold index amortized"
    (make_trace ~objects:48 ~events:60_000 ~seed:12)
    Planner.Build_index

let test_branch_reuse () =
  let trace = make_trace ~objects:48 ~events:60_000 ~seed:13 in
  let index = Write_index.build ~page_sizes:Replay.default_page_sizes trace in
  let stored = ref 0 in
  let source =
    {
      Planner.cached = true;
      load = (fun () -> Some index);
      store = (fun _ -> incr stored);
    }
  in
  check_branch "session-heavy with cached index" ~index_source:source trace
    Planner.Reuse_index;
  Alcotest.(check int) "reuse stores nothing back" 0 !stored

let test_reuse_degrades_to_build () =
  (* A cached probe whose load then misses (entry quarantined between
     probe and load) must degrade to a build — and store the result. *)
  let trace = make_trace ~objects:48 ~events:60_000 ~seed:14 in
  let stored = ref [] in
  let source =
    {
      Planner.cached = true;
      load = (fun () -> None);
      store = (fun ix -> stored := ix :: !stored);
    }
  in
  let planned = Planner.replay ~index_source:source trace in
  Alcotest.(check int) "freshly built index stored" 1 (List.length !stored);
  Alcotest.(check bool) "still identical to fixed scan" true
    (planned = Replay.discover_and_replay ~engine:Replay.Scan trace)

(* --- decision reasons (streaming pipeline observability) --- *)

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let test_reason_default_full () =
  let e =
    Planner.estimate ~events:1_000 ~sessions:4 ~domains:1 ~cached_index:false
      ()
  in
  Alcotest.(check string) "default reason" "full"
    (Planner.reason_name e.Planner.reason);
  Alcotest.(check bool) "log line carries it" true
    (contains (Planner.log_line e) "reason=full")

(* A non-Full reason must surface in its counter and the log line while
   leaving the decision — and the report — untouched. *)
let check_reason reason =
  let name = Planner.reason_name reason in
  let trace = make_trace ~objects:8 ~events:1_500 ~seed:15 in
  Metrics.reset ();
  Metrics.set_enabled true;
  let logged = ref [] in
  let planned =
    Fun.protect
      ~finally:(fun () -> Metrics.set_enabled false)
      (fun () ->
        Planner.replay ~reason ~log:(fun l -> logged := l :: !logged) trace)
  in
  let snap = Metrics.snapshot () in
  Metrics.reset ();
  Alcotest.(check int)
    (name ^ ": planner.decision." ^ name ^ " counted")
    1
    (counter_value snap ("planner.decision." ^ name));
  Alcotest.(check int)
    (name ^ ": the choice is still counted")
    1
    (counter_value snap "planner.decision.scan");
  (match !logged with
  | [ line ] ->
      Alcotest.(check bool)
        (name ^ ": log line names the reason")
        true
        (contains line ("reason=" ^ name))
  | lines -> Alcotest.failf "%s: %d log lines" name (List.length lines));
  Alcotest.(check bool)
    (name ^ ": report unchanged by the reason")
    true
    (planned = Replay.discover_and_replay ~engine:Replay.Scan trace)

let test_reason_partial_index () = check_reason Planner.Partial_index
let test_reason_checkpoint_restart () = check_reason Planner.Checkpoint_restart

let () =
  Alcotest.run "planner"
    [
      ( "model",
        [
          Alcotest.test_case "calibration table" `Quick test_model_table;
          Alcotest.test_case "pure" `Quick test_model_pure;
        ] );
      ( "branches",
        [
          Alcotest.test_case "scan" `Quick test_branch_scan;
          Alcotest.test_case "build" `Quick test_branch_build;
          Alcotest.test_case "reuse" `Quick test_branch_reuse;
          Alcotest.test_case "reuse degrades to build" `Quick
            test_reuse_degrades_to_build;
        ] );
      ( "reasons",
        [
          Alcotest.test_case "default full" `Quick test_reason_default_full;
          Alcotest.test_case "partial_index" `Quick test_reason_partial_index;
          Alcotest.test_case "checkpoint_restart" `Quick
            test_reason_checkpoint_restart;
        ] );
    ]
