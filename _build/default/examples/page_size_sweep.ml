(* How page size affects the VirtualMemory strategy.

   One of the paper's stated reasons for simulating rather than
   prototyping (§4): "we are interested in how page size affects the
   performance of strategies based on virtual memory protection, and a
   simulator allows us to change the page size easily."

   This example replays the [circuit] workload's trace at page sizes from
   1 KiB to 16 KiB and reports the VM strategy's mean and maximum relative
   overhead, alongside CodePatch as the page-size-independent yardstick.
   Larger pages mean more false sharing — more unrelated writes landing on
   protected pages (VMActivePageMiss) — so VM only gets worse as pages
   grow, while CP is flat by construction.

   Run with: dune exec examples/page_size_sweep.exe *)

module Model = Ebp_model.Strategy_model
module Stats = Ebp_util.Stats

let page_sizes = [ 1024; 2048; 4096; 8192; 16384 ]

let () =
  let workload = Ebp_workloads.Workload.circuit in
  print_endline ("workload: " ^ workload.Ebp_workloads.Workload.name);
  let run =
    match Ebp_workloads.Workload.record workload with
    | Ok r -> r
    | Error msg -> failwith msg
  in
  let sessions =
    Ebp_sessions.Replay.discover_and_replay ~page_sizes
      run.Ebp_workloads.Workload.trace
  in
  Printf.printf "%d monitor sessions, base %.1f ms\n\n" (List.length sessions)
    run.Ebp_workloads.Workload.base_ms;
  let timing = Ebp_wms.Timing.sparcstation2 in
  let summarize approach =
    Stats.summarize
      (Array.of_list
         (List.map
            (fun (_, counts) ->
              Model.relative
                (Model.overhead timing approach counts)
                ~base_ms:run.Ebp_workloads.Workload.base_ms)
            sessions))
  in
  Printf.printf "%-10s %12s %12s %12s\n" "approach" "t-mean" "mean" "max";
  List.iter
    (fun ps ->
      let s = summarize (Model.VM ps) in
      Printf.printf "%-10s %11.2fx %11.2fx %11.2fx\n"
        (Printf.sprintf "VM-%dK" (ps / 1024))
        s.Stats.t_mean s.Stats.mean s.Stats.max)
    page_sizes;
  let cp = summarize Model.CP in
  Printf.printf "%-10s %11.2fx %11.2fx %11.2fx   (page-size independent)\n" "CP"
    cp.Stats.t_mean cp.Stats.mean cp.Stats.max
