module Interval = Ebp_util.Interval
module Instr = Ebp_isa.Instr
module Program = Ebp_isa.Program
module Machine = Ebp_machine.Machine

type patched = {
  prog : Program.t;
  original_length : int;
  store_count : int;
}

(* Each stub is [original store; Chk effective-address; Jmp back] — the
   check runs after the write so the notification arrives once the write
   has succeeded (write monitors, not barriers, §2). The base register is
   still intact at check time: stores define no registers. The replaced
   site becomes a jump to the stub, so the net growth is three
   instructions per store. *)
let stub_for instr ~return_to =
  let base, off, width =
    match instr with
    | Instr.Sw (_, rs, off) -> (rs, off, 4)
    | Instr.Sb (_, rs, off) -> (rs, off, 1)
    | _ -> invalid_arg "Code_patch: not a store"
  in
  [
    { Program.instr; implicit = false };
    { Program.instr = Instr.Chk { base; off; width }; implicit = false };
    { Program.instr = Instr.Jmp (Instr.Abs return_to); implicit = false };
  ]

let instrument prog =
  if not (Program.is_resolved prog) then
    invalid_arg "Code_patch.instrument: program has unresolved labels";
  let original_length = Program.length prog in
  let stores = Program.stores prog in
  let patched =
    List.fold_left
      (fun prog (idx, instr) ->
        let prog, stub_start = Program.append prog (stub_for instr ~return_to:(idx + 1)) in
        Program.set prog idx (Instr.Jmp (Instr.Abs stub_start)))
      prog stores
  in
  { prog = patched; original_length; store_count = List.length stores }

let program p = p.prog
let patched_stores p = p.store_count

let expansion p =
  float_of_int (Program.length p.prog) /. float_of_int p.original_length

let expansion_of_program prog =
  let stores = List.length (Program.stores prog) in
  float_of_int (Program.length prog + (3 * stores)) /. float_of_int (Program.length prog)

type t = {
  machine : Machine.t;
  timing : Timing.t;
  map : Monitor_map.t;
  stats : Wms.stats;
  notify : Wms.notification -> unit;
}

let on_chk t machine ~range ~pc =
  Machine.charge machine (Timing.cycles t.timing.Timing.software_lookup_us);
  t.stats.Wms.lookups <- t.stats.Wms.lookups + 1;
  if Monitor_map.overlaps t.map range then begin
    t.stats.Wms.hits <- t.stats.Wms.hits + 1;
    t.notify { Wms.write = range; pc }
  end

let attach ?(timing = Timing.sparcstation2) _patched machine ~notify =
  let t =
    { machine; timing; map = Monitor_map.create (); stats = Wms.fresh_stats ();
      notify }
  in
  Machine.set_chk_handler machine (Some (on_chk t));
  t

let install t range =
  Machine.charge t.machine (Timing.cycles t.timing.Timing.software_update_us);
  Monitor_map.install t.map range;
  t.stats.Wms.installs <- t.stats.Wms.installs + 1;
  Ok ()

let remove t range =
  Machine.charge t.machine (Timing.cycles t.timing.Timing.software_update_us);
  Monitor_map.remove t.map range;
  t.stats.Wms.removes <- t.stats.Wms.removes + 1;
  Ok ()

let strategy t =
  {
    Wms.name = "CodePatch";
    install = install t;
    remove = remove t;
    active_monitors = (fun () -> Monitor_map.monitored_words t.map);
    extras = (fun () -> []);
  }

let stats t = t.stats
