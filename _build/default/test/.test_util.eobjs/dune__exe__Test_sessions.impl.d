test/test_sessions.ml: Alcotest Array Ebp_sessions Ebp_trace Ebp_util Hashtbl List Option QCheck2 QCheck_alcotest
