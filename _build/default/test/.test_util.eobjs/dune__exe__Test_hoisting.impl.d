test/test_hoisting.ml: Alcotest Ebp_core Ebp_isa Ebp_lang Ebp_machine Ebp_runtime Ebp_util Ebp_wms Ebp_workloads List Option Printf Result
