(* Address-space layout of compiled MiniC programs.

   The machine's address space is sparse, so these regions cost nothing
   until touched. Code lives outside data memory (instruction indices),
   which is safe for this experiment: the paper never monitors code. *)

let data_base = 0x0001_0000
(* Globals and static locals, allocated upward from [data_base]. *)

let heap_base = 0x0010_0000
let heap_size = 0x0040_0000 (* 4 MiB *)
let heap_limit = heap_base + heap_size

let stack_top = 0x00F0_0000
(* The stack grows down from [stack_top]; a 4 MiB gap separates it from the
   heap so stray pointer bugs fault loudly instead of corrupting silently. *)

let word_size = 4
