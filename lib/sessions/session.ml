module Object_desc = Ebp_trace.Object_desc

type t =
  | One_local_auto of { func : string; var : string }
  | All_local_in_func of { func : string }
  | One_global_static of { var : string }
  | One_heap of { site : string; seq : int }
  | All_heap_in_func of { func : string }

type kind =
  | K_one_local_auto
  | K_all_local_in_func
  | K_one_global_static
  | K_one_heap
  | K_all_heap_in_func

let kind = function
  | One_local_auto _ -> K_one_local_auto
  | All_local_in_func _ -> K_all_local_in_func
  | One_global_static _ -> K_one_global_static
  | One_heap _ -> K_one_heap
  | All_heap_in_func _ -> K_all_heap_in_func

let kind_name = function
  | K_one_local_auto -> "OneLocalAuto"
  | K_all_local_in_func -> "AllLocalInFunc"
  | K_one_global_static -> "OneGlobalStatic"
  | K_one_heap -> "OneHeap"
  | K_all_heap_in_func -> "AllHeapInFunc"

let all_kinds =
  [ K_one_local_auto; K_all_local_in_func; K_one_global_static; K_one_heap;
    K_all_heap_in_func ]

let matches t (obj : Object_desc.t) =
  match (t, obj) with
  | One_local_auto { func; var }, Object_desc.Local l ->
      String.equal l.func func && String.equal l.var var
  | All_local_in_func { func }, Object_desc.Local l -> String.equal l.func func
  | All_local_in_func { func }, Object_desc.Local_static l ->
      String.equal l.func func
  | One_global_static { var }, Object_desc.Global g -> String.equal g.var var
  | One_heap { site; seq }, Object_desc.Heap h -> (
      seq = h.seq
      && match h.context with f :: _ -> String.equal f site | [] -> false)
  | All_heap_in_func { func }, Object_desc.Heap h ->
      List.exists (String.equal func) h.context
  | ( ( One_local_auto _ | All_local_in_func _ | One_global_static _
      | One_heap _ | All_heap_in_func _ ),
      ( Object_desc.Local _ | Object_desc.Local_static _ | Object_desc.Global _
      | Object_desc.Heap _ ) ) ->
      false

let compare (a : t) (b : t) = Stdlib.compare a b
let equal (a : t) (b : t) = a = b

(* Inverted matching: every arm of [matches] above is keyed on object
   attributes, so an object determines its matching sessions directly —
   a handful of candidate session values to hash, instead of a test
   against every session of the study. [index sessions] must agree with
   [matches] exactly: for any [obj], [index sessions obj] is the
   ascending list of positions [i] with [matches (nth sessions i) obj]. *)
let index sessions =
  let tbl : (t, int list) Hashtbl.t = Hashtbl.create 256 in
  List.iteri
    (fun i s -> Hashtbl.replace tbl s (i :: Option.value ~default:[] (Hashtbl.find_opt tbl s)))
    sessions;
  let positions s = Option.value ~default:[] (Hashtbl.find_opt tbl s) in
  fun (obj : Object_desc.t) ->
    let candidates =
      match obj with
      | Object_desc.Local l ->
          [ One_local_auto { func = l.func; var = l.var };
            All_local_in_func { func = l.func } ]
      | Object_desc.Local_static l -> [ All_local_in_func { func = l.func } ]
      | Object_desc.Global g -> [ One_global_static { var = g.var } ]
      | Object_desc.Heap h ->
          let one =
            match h.context with
            | f :: _ -> [ One_heap { site = f; seq = h.seq } ]
            | [] -> []
          in
          (* A function appearing twice in the context must yield its
             AllHeapInFunc candidate once, like [List.exists] does. *)
          let rec uniq seen = function
            | [] -> []
            | f :: rest ->
                if List.exists (String.equal f) seen then uniq seen rest
                else All_heap_in_func { func = f } :: uniq (f :: seen) rest
          in
          one @ uniq [] h.context
    in
    List.sort_uniq Int.compare
      (List.concat_map positions candidates)

let pp ppf = function
  | One_local_auto { func; var } -> Format.fprintf ppf "OneLocalAuto(%s.%s)" func var
  | All_local_in_func { func } -> Format.fprintf ppf "AllLocalInFunc(%s)" func
  | One_global_static { var } -> Format.fprintf ppf "OneGlobalStatic(%s)" var
  | One_heap { site; seq } -> Format.fprintf ppf "OneHeap(%s#%d)" site seq
  | All_heap_in_func { func } -> Format.fprintf ppf "AllHeapInFunc(%s)" func

let to_string t = Format.asprintf "%a" pp t
