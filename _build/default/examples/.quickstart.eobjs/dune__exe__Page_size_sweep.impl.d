examples/page_size_sweep.ml: Array Ebp_model Ebp_sessions Ebp_util Ebp_wms Ebp_workloads List Printf
